package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/kvstore"
)

// herdWaiters is the acceptance configuration: 512 concurrent misses on one
// key must reach the backend exactly once, with the other 511 coalesced
// onto the leader's flight.
const herdWaiters = 512

// Herd measures thundering-herd protection on the read-through tier: 512
// goroutines miss the same key at once while the backend load is parked, so
// every waiter is forced to decide between loading itself and joining the
// in-flight load. The singleflight row must show exactly one backend load;
// the baseline row repeats the stampede against the raw backend (no
// coalescing) and shows the 512x load amplification a cache without flight
// coalescing would hand its backend.
func Herd(sc Scale) *Table {
	sc = sc.withDefaults()
	t := &Table{
		ID: "herd",
		Title: fmt.Sprintf("thundering herd: %d concurrent misses on one key, parked backend",
			herdWaiters),
		Headers: []string{"config", "waiters", "backend_loads", "coalesced", "release_to_done"},
	}

	payload := backend.EncodeCols([][]byte{[]byte("hot-value")})

	// Row 1: GetOrLoad through the loader. The mock's gate holds the leader's
	// load open until every other waiter has parked on the flight, so the
	// count is exact, not racy: 1 load, waiters-1 coalesced.
	{
		m := backend.NewMock(0)
		m.Seed("hot", payload)
		st, err := kvstore.Open(kvstore.Config{Workers: sc.Workers, Backend: m})
		if err != nil {
			panic(err)
		}
		release := m.Hang()
		var wg sync.WaitGroup
		for i := 0; i < herdWaiters; i++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sess := st.Session(w % sc.Workers)
				defer sess.Close()
				if _, _, err := sess.GetOrLoad(context.Background(), []byte("hot")); err != nil {
					panic(err)
				}
			}(i)
		}
		deadline := time.Now().Add(30 * time.Second)
		for st.LoaderStats().HerdCoalesced < herdWaiters-1 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		start := time.Now()
		release()
		wg.Wait()
		el := time.Since(start)
		ls := st.LoaderStats()
		t.Rows = append(t.Rows, []string{
			"getorload singleflight",
			fmt.Sprintf("%d", herdWaiters),
			fmt.Sprintf("%d", m.LoadsFor("hot")),
			fmt.Sprintf("%d", ls.HerdCoalesced),
			el.Round(time.Microsecond).String(),
		})
		st.Close()
	}

	// Row 2: the same stampede with no coalescing — every waiter calls the
	// backend directly. A 2ms simulated backend keeps the loads genuinely
	// concurrent rather than serialized by scheduling.
	{
		m := backend.NewMock(0)
		m.Seed("hot", payload)
		m.SetLatency(2 * time.Millisecond)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < herdWaiters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, _, _, err := m.Load(context.Background(), []byte("hot")); err != nil {
					panic(err)
				}
			}()
		}
		wg.Wait()
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{
			"no coalescing (direct)",
			fmt.Sprintf("%d", herdWaiters),
			fmt.Sprintf("%d", m.LoadsFor("hot")),
			"0",
			el.Round(time.Microsecond).String(),
		})
	}

	t.Notes = append(t.Notes,
		"the singleflight row must report exactly 1 backend load and waiters-1 coalesced — the gate holds the leader's load open until every waiter has parked, so the count is deterministic",
		"release_to_done is the time from releasing the parked backend to the last waiter returning (flight fan-out cost)")
	return t
}
