package a

import "sync/atomic"

// nodeHeader mirrors the core node header: its version word's bits encode
// the locking protocol, so mutating calls live here, next to the helpers
// that define the bit layout.
type nodeHeader struct {
	version atomic.Uint64
}

func (h *nodeHeader) setVersion(v uint64) { // clean: version.go owns the bits
	h.version.Store(v)
}

func (h *nodeHeader) loadVersion() uint64 {
	return h.version.Load()
}
