// Package repro reproduces "Cache Craftiness for Fast Multicore Key-Value
// Storage" (Mao, Kohler, Morris — EuroSys 2012): the Masstree in-memory
// key-value store, its substrates (logging, checkpointing, networking), the
// paper's baseline data structures, and a benchmark harness that regenerates
// every table and figure of the paper's evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results. The implementation lives under internal/; runnable entry points
// are under cmd/ and examples/.
package repro
