package wire

import (
	"bytes"
	"testing"
)

// Fuzz targets for the decoders: arbitrary bytes must never panic, and the
// count sanity bounds must keep a tiny input from provoking a huge
// allocation (claimed counts are capped by what the body could honestly
// hold). Corpora are seeded from the encoders so the fuzzer starts on the
// happy path and mutates outward.

func seedRequestBodies(f *testing.F) {
	batches := [][]Request{
		{},
		{{Op: OpGet, Key: []byte("key"), Cols: []int{0, 1}}},
		{
			{Op: OpPut, Key: []byte("k"), Puts: []ColData{{Col: 0, Data: []byte("data")}}},
			{Op: OpCas, Key: []byte("c"), ExpectVersion: 99, Puts: []ColData{{Col: 2, Data: []byte("x")}}},
			{Op: OpRemove, Key: []byte("gone")},
			{Op: OpGetRange, Key: []byte("start"), N: 10, Cols: []int{1}},
			{Op: OpStats},
		},
		{
			{Op: OpPutTTL, Key: []byte("ttl"), TTL: 300, Puts: []ColData{{Col: 0, Data: []byte("d")}}},
			{Op: OpTouch, Key: []byte("ttl"), TTL: 60},
			{Op: OpGetOrLoad, Key: []byte("miss"), Cols: []int{0}},
		},
	}
	for _, reqs := range batches {
		frame, err := AppendRequests(nil, reqs)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:]) // body without the length header
	}
}

func FuzzDecodeRequest(f *testing.F) {
	seedRequestBodies(f)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		var strict DecodeBuf
		sreqs, serr := ParseRequests(body, &strict)
		var lenient DecodeBuf
		lreqs, claimed, lerr := ParseRequestsLenient(body, &lenient)
		// Lenient accepts a superset of strict: whenever strict succeeds,
		// lenient must decode the identical full batch.
		if serr == nil {
			if lerr != nil {
				t.Fatalf("strict ok but lenient failed: %v", lerr)
			}
			if len(lreqs) != len(sreqs) || claimed != len(sreqs) {
				t.Fatalf("lenient decoded %d/%d, strict %d", len(lreqs), claimed, len(sreqs))
			}
		}
		if lerr == nil && len(lreqs) > claimed {
			t.Fatalf("decoded %d > claimed %d", len(lreqs), claimed)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	batches := [][]Response{
		{},
		{{Status: StatusOK, Version: 1, Cols: [][]byte{[]byte("v")}}},
		{
			{Status: StatusNotFound},
			{Status: StatusConflict, Version: 7},
			{Status: StatusOK, Pairs: []Pair{{Key: []byte("k"), Cols: [][]byte{[]byte("a"), nil}}}},
		},
	}
	for _, resps := range batches {
		frame, err := AppendResponses(nil, resps)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var d RespDecodeBuf
		resps, err := ParseResponses(body, &d)
		if err == nil {
			// Decoded responses must re-encode without panicking.
			if _, err := AppendResponses(nil, resps); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}

// FuzzV2Frame covers the v2 connection preamble: hello detection/decoding
// and the tagged header. Whatever the bytes, the readers must fail cleanly
// (no panic) and never confuse a v1 frame, a v2 frame, and a hello.
func FuzzV2Frame(f *testing.F) {
	f.Add(AppendHello(nil, Version2))
	if tagged, err := AppendTaggedRequests(nil, 1, []Request{{Op: OpGet, Key: []byte("k")}}); err == nil {
		f.Add(tagged)
	}
	if v1, err := AppendRequests(nil, []Request{{Op: OpStats}}); err == nil {
		f.Add(v1)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		isHello := IsHelloPrefix(b)
		if _, err := ReadHello(bytes.NewReader(b)); err == nil && !isHello {
			t.Fatal("ReadHello accepted bytes IsHelloPrefix rejects")
		}
		tag, n, err := ReadTaggedHeader(bytes.NewReader(b))
		_ = tag
		if err == nil {
			if isHello {
				t.Fatal("bytes parsed as both hello and tagged header")
			}
			if n < 0 || n > MaxMessage {
				t.Fatalf("tagged body length %d out of bounds", n)
			}
			var d DecodeBuf
			rest := b[taggedHeaderSize:]
			if len(rest) >= n {
				body, err := ReadTaggedRequestBody(bytes.NewReader(rest), n, &d)
				if err == nil {
					ParseRequestsLenient(body, &d)
				}
			}
		}
	})
}
