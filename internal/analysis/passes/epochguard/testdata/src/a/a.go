// Package a is the epochguard golden fixture: a miniature epoch/tree world
// with the recognition conventions of internal/epoch and internal/core (pin
// methods Enter/Exit on a type named Handle, read methods on a type named
// Tree), exercising both diagnostics, the //masstree:pinned contract, and
// the clean bracketing idioms.
package a

type Handle struct{}

func (h *Handle) Enter() {}
func (h *Handle) Exit()  {}

type Tree struct{}

func (t *Tree) Get(key []byte) ([]byte, bool) { return nil, false }
func (t *Tree) Scan(start []byte, n int)      {}

type store struct {
	tree *Tree
	h    *Handle
}

func (s *store) badGet(key []byte) {
	s.tree.Get(key) // want `tree read s\.tree\.Get outside an epoch pin \(Handle\.Enter\)`
}

func (s *store) badScan() {
	s.tree.Scan(nil, 10) // want `tree read s\.tree\.Scan outside an epoch pin \(Handle\.Enter\)`
}

func (s *store) goodGet(key []byte) { // clean: deferred Exit runs at return
	s.h.Enter()
	defer s.h.Exit()
	s.tree.Get(key)
}

func (s *store) exitThenRead(key []byte) {
	s.h.Enter()
	s.tree.Get(key) // clean: inside the pin
	s.h.Exit()
	s.tree.Get(key) // want `tree read s\.tree\.Get outside an epoch pin \(Handle\.Enter\)`
}

// maybe pins on only one branch; the merged state may be unpinned.
func (s *store) maybe(key []byte, pin bool) {
	if pin {
		s.h.Enter()
	}
	s.tree.Get(key) // want `tree read s\.tree\.Get outside an epoch pin \(Handle\.Enter\)`
}

// pinnedRead's caller holds the pin; reads inside are bracketed by contract.
//
//masstree:pinned
func (s *store) pinnedRead(key []byte) { // clean: entry state is pinned
	s.tree.Get(key)
}

func (s *store) badCall(key []byte) {
	s.pinnedRead(key) // want `call to pinnedRead \(masstree:pinned\) without an epoch pin`
}

func (s *store) goodCall(key []byte) { // clean: pin held across the contract call
	s.h.Enter()
	s.pinnedRead(key)
	s.h.Exit()
}

// Function literals run at an unknown time and are not analyzed; reads in
// them must live in named, annotated functions.
func (s *store) inLit(key []byte) func() { // clean
	return func() {
		s.tree.Get(key)
	}
}

func (s *store) allowed(key []byte) { // clean: the allow covers the unpinned scan
	s.tree.Scan(key, 1) //lint:allow epochguard startup-only scan before any concurrent reclamation exists
}
