// Package netfault is a TCP proxy fault injector: a Proxy listens on its
// own address, forwards byte streams to a real listener, and injects
// network pathologies between them on command — added latency, dropped
// chunks, a blackhole that accepts connections but never moves a byte, a
// refuse mode that resets new connections immediately, mid-stream byte
// truncation, and connection resets — then heals back to clean forwarding.
//
// It exists so cluster tests can torture a client against *network*
// failures (slow node, partitioned node, dead node, garbage-truncating
// node) without touching the server process: the server stays healthy and
// reachable on its real address the whole time, which is exactly the
// partition illusion a real network fault presents. Faults are applied at
// chunk granularity in the copy loops, not at the packet level — close
// enough for protocol-robustness testing, and fully deterministic where it
// matters (TruncateAfter cuts at an exact byte offset).
//
// Typical scenario wiring:
//
//	p, _ := netfault.New(serverAddr) // proxy in front of a live server
//	c, _ := client.DialConn(p.Addr())
//	p.Blackhole()                    // partition: conns freeze, dials hang
//	... client must time out, fail fast, mark the node down ...
//	p.Heal()                         // network recovers
//	... client must re-dial and resume without restart ...
//
// A Proxy also supports retargeting (SetTarget) so a "node" can be killed
// and reborn on a fresh listener while the client keeps dialing one stable
// address — the proxy is the node's network identity, the listener behind
// it is an incarnation.
package netfault

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault modes. Exactly one is active at a time (plus latency/drop/truncate
// modifiers, which compose with Forward).
const (
	// ModeForward passes bytes through, subject to latency/drop/truncate.
	ModeForward = int32(iota)
	// ModeBlackhole accepts new connections but never dials upstream and
	// never delivers a byte in either direction on existing ones: the
	// TCP-level picture of a partition or a silently dead host. Clients
	// hang until their own deadlines fire.
	ModeBlackhole
	// ModeRefuse resets new connections immediately (accept, then close
	// with linger 0) and kills existing ones: the picture of a dead
	// process whose kernel still answers — clients fail fast.
	ModeRefuse
)

// Proxy is one fault-injectable TCP forwarding point. All control methods
// are safe to call concurrently with live traffic.
type Proxy struct {
	ln net.Listener

	target atomic.Value // string; upstream address

	mode      atomic.Int32
	latency   atomic.Int64 // ns added before each forwarded chunk
	dropEvery atomic.Int64 // drop every Nth chunk (0 = never)
	dropCtr   atomic.Int64
	truncate  atomic.Int64 // bytes still allowed through (-1 = unlimited)

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // every live conn, both sides
	frozen map[net.Conn]struct{} // conns frozen by FreezeConns
	closed bool
	wg     sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, conns: make(map[net.Conn]struct{})}
	p.target.Store(target)
	p.truncate.Store(-1)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the real server.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget repoints the upstream address for future connections — the
// seam for killing a server and rebirthing it on a new listener while the
// proxy keeps the node's stable network identity.
func (p *Proxy) SetTarget(target string) { p.target.Store(target) }

// SetLatency adds d before each forwarded chunk in both directions
// (0 removes it). Models a slow node or congested path.
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// DropEvery silently discards every nth forwarded chunk (n <= 0 disables).
// Over TCP this desynchronizes the byte stream, so the peer sees protocol
// garbage — a deliberately rude fault that protocol decoding must survive
// by failing the connection, not by misparsing.
func (p *Proxy) DropEvery(n int) {
	p.dropCtr.Store(0)
	p.dropEvery.Store(int64(n))
}

// TruncateAfter lets n more bytes through (each direction draws from the
// same budget), then kills every connection — a mid-message cut at an
// exact offset. n < 0 removes the limit.
func (p *Proxy) TruncateAfter(n int) { p.truncate.Store(int64(n)) }

// Blackhole partitions the node: existing connections freeze (bytes are
// swallowed, nothing is delivered, nothing is closed) and new connections
// are accepted but never answered. Heal unfreezes new connections only;
// frozen ones stay dead until a side gives up, exactly like real TCP
// flows orphaned by a partition.
func (p *Proxy) Blackhole() { p.mode.Store(ModeBlackhole) }

// Refuse makes the node look dead-with-a-live-kernel: existing
// connections are reset now and new ones are reset on arrival.
func (p *Proxy) Refuse() {
	p.mode.Store(ModeRefuse)
	p.KillConns()
}

// FreezeConns freezes every connection alive right now — their bytes are
// swallowed in both directions from here on — while new connections keep
// forwarding cleanly. This is the orphaned-flow fault: a transient
// partition strands established TCP flows (the peer never learns; only its
// own deadlines save it) while fresh connections route fine. It is the
// scenario hedged reads exist for. Heal unfreezes nothing (the flows are
// lost, as in life); it only stops future freezes from applying.
func (p *Proxy) FreezeConns() {
	p.mu.Lock()
	if p.frozen == nil {
		p.frozen = make(map[net.Conn]struct{})
	}
	for c := range p.conns {
		p.frozen[c] = struct{}{}
	}
	p.mu.Unlock()
}

func (p *Proxy) isFrozen(c net.Conn) bool {
	p.mu.Lock()
	_, ok := p.frozen[c]
	p.mu.Unlock()
	return ok
}

// KillConns resets every live connection (linger 0 where supported)
// without changing the mode — a one-shot connection storm.
func (p *Proxy) KillConns() {
	p.mu.Lock()
	for c := range p.conns {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Close()
	}
	p.mu.Unlock()
}

// Heal restores clean forwarding: mode back to Forward, latency, drop and
// truncation cleared. Connections already frozen or reset are not
// resurrected — clients re-dial, as they would after a real recovery.
func (p *Proxy) Heal() {
	p.latency.Store(0)
	p.dropEvery.Store(0)
	p.truncate.Store(-1)
	p.mode.Store(ModeForward)
}

// Close shuts the proxy down and severs every connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.KillConns()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		switch p.mode.Load() {
		case ModeRefuse:
			if tc, ok := down.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			down.Close()
			continue
		case ModeBlackhole:
			// Hold the connection open and silent: the dial succeeded at
			// the TCP level, but no hello/response will ever come. The
			// register below lets KillConns/Close reap it.
			if !p.register(down) {
				down.Close()
				continue
			}
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				io.Copy(io.Discard, down)
				p.unregister(down)
				down.Close()
			}()
			continue
		}
		up, err := net.DialTimeout("tcp", p.target.Load().(string), 2*time.Second)
		if err != nil {
			down.Close()
			continue
		}
		if !p.register(down) || !p.register(up) {
			down.Close()
			up.Close()
			continue
		}
		p.wg.Add(2)
		go p.pipe(down, up)
		go p.pipe(up, down)
	}
}

func (p *Proxy) register(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) unregister(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	delete(p.frozen, c)
	p.mu.Unlock()
}

// pipe forwards src→dst one chunk at a time, consulting the fault state
// before each delivery. Closing either end tears both down.
func (p *Proxy) pipe(src, dst net.Conn) {
	defer p.wg.Done()
	defer func() {
		p.unregister(src)
		p.unregister(dst)
		src.Close()
		dst.Close()
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if p.isFrozen(src) || p.isFrozen(dst) {
				continue // orphaned flow: bytes vanish, nothing closes
			}
			if !p.deliver(dst, buf[:n]) {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// deliver applies the active faults to one chunk and reports whether the
// connection should stay up.
func (p *Proxy) deliver(dst net.Conn, chunk []byte) bool {
	if d := p.latency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	switch p.mode.Load() {
	case ModeBlackhole:
		// Swallow silently but keep reading: the sender's writes succeed
		// into the void, which is what a partition looks like until the
		// peer's read deadline fires.
		return true
	case ModeRefuse:
		return false
	}
	if every := p.dropEvery.Load(); every > 0 && p.dropCtr.Add(1)%every == 0 {
		return true // chunk vanishes; stream is now desynchronized
	}
	if budget := p.truncate.Load(); budget >= 0 {
		remaining := budget - int64(len(chunk))
		if remaining < 0 {
			remaining = 0
		}
		if !p.truncate.CompareAndSwap(budget, remaining) {
			// A concurrent deliver raced the budget; take the simple exit
			// and cut here — truncation only needs to be approximately
			// placed when two directions race, exact when one flows.
			return false
		}
		if int64(len(chunk)) > budget {
			dst.Write(chunk[:budget])
			return false
		}
	}
	_, err := dst.Write(chunk)
	return err == nil
}
