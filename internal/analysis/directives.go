package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The repository's machine-checked contract annotations. They live in doc
// comments (function and type declarations) or at the end of a statement's
// line, and are verified by the analyzers in this suite:
//
//	//masstree:locked n [m ...]     function contract: the named params (the
//	                                receiver counts, by its name) are locked
//	                                on entry and must still be locked at
//	                                every return (lockpair)
//	//masstree:unlocks n [m ...]    locked on entry, released on every path
//	                                by return (lockpair)
//	//masstree:returns-locked       the returned node, when non-nil, is
//	                                locked; callers must nil-check before
//	                                relying on it (lockpair)
//	//masstree:acquires n.h         statement annotation: this statement
//	                                acquires the named lock by some means
//	                                the analyzer cannot see (constructor
//	                                lock bits) (lockpair)
//	//masstree:releases n.h        statement annotation: this statement
//	                                releases the named lock (lockpair)
//	//masstree:pinned               function contract: the caller holds an
//	                                epoch pin (Handle.Enter) across this
//	                                call; tree reads inside are therefore
//	                                bracketed (epochguard)
//	//masstree:noalloc              function contract: steady-state
//	                                execution performs zero heap
//	                                allocations; allocation sources inside
//	                                are flagged (noalloc)
//	//masstree:scratch              type contract: byte slices handed out
//	                                by this type alias reusable memory and
//	                                must not be stored past the next
//	                                reuse/Release (scratchalias)

// FuncFacts are the masstree: contract annotations of one function.
type FuncFacts struct {
	Locked        []string // locked on entry, locked at return
	Unlocks       []string // locked on entry, released at return
	ReturnsLocked bool
	Pinned        bool
	NoAlloc       bool
}

// Empty reports whether the function carries no annotations.
func (f FuncFacts) Empty() bool {
	return len(f.Locked) == 0 && len(f.Unlocks) == 0 &&
		!f.ReturnsLocked && !f.Pinned && !f.NoAlloc
}

// FuncFactsOf parses the masstree: directives in a function's doc comment.
func FuncFactsOf(fd *ast.FuncDecl) FuncFacts {
	var facts FuncFacts
	if fd == nil || fd.Doc == nil {
		return facts
	}
	for _, c := range fd.Doc.List {
		verb, args, ok := cutDirective(c.Text)
		if !ok {
			continue
		}
		switch verb {
		case "locked":
			facts.Locked = append(facts.Locked, strings.Fields(args)...)
		case "unlocks":
			facts.Unlocks = append(facts.Unlocks, strings.Fields(args)...)
		case "returns-locked":
			facts.ReturnsLocked = true
		case "pinned":
			facts.Pinned = true
		case "noalloc":
			facts.NoAlloc = true
		}
	}
	return facts
}

// LineDirective is a masstree: directive attached to a statement's line.
type LineDirective struct {
	Verb string // "acquires" or "releases"
	Args string
}

// LineDirectives maps line numbers of a file to the statement-level
// masstree: directives on them.
func LineDirectives(fset *token.FileSet, file *ast.File) map[int][]LineDirective {
	m := map[int][]LineDirective{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			verb, args, ok := cutDirective(c.Text)
			if !ok {
				continue
			}
			if verb != "acquires" && verb != "releases" {
				continue
			}
			line := fset.Position(c.Pos()).Line
			m[line] = append(m[line], LineDirective{Verb: verb, Args: strings.TrimSpace(args)})
		}
	}
	return m
}

// IsScratchType reports whether the type declaration carries
// //masstree:scratch, consulting both the TypeSpec's doc and the enclosing
// GenDecl's (a single-spec `type X struct{...}` attaches the comment to the
// GenDecl).
func IsScratchType(gd *ast.GenDecl, spec *ast.TypeSpec) bool {
	for _, doc := range []*ast.CommentGroup{spec.Doc, spec.Comment, gd.Doc} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if verb, _, ok := cutDirective(c.Text); ok && verb == "scratch" {
				return true
			}
		}
	}
	return false
}

func cutDirective(text string) (verb, args string, ok bool) {
	rest, ok := strings.CutPrefix(text, "//masstree:")
	if !ok {
		return "", "", false
	}
	verb, args, _ = strings.Cut(rest, " ")
	return verb, args, true
}

// FuncDecls maps every declared function and method in the load to its
// syntax, so analyzers can read a callee's contract annotations across
// package boundaries (all repository packages are loaded from source).
func FuncDecls(pkgs []*Package) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

// CalleeOf resolves a call expression to the *types.Func it invokes, or nil
// for calls through function values, builtins, and conversions.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
