package core

import (
	"fmt"
	"testing"

	"repro/internal/value"
)

// TestGetAllocFree locks in the read path's zero-allocation guarantee
// (§4.8's cache-craftiness discipline applied to the Go heap: a get must
// not create garbage). Covers inline keys, suffix keys, and keys that
// descend through deeper trie layers.
func TestGetAllocFree(t *testing.T) {
	tree := New()
	keys := [][]byte{
		[]byte("short"),
		[]byte("exactly8"),
		[]byte("a-key-longer-than-eight-bytes"),
		[]byte("prefix-shared-aaaaaaaaaaaaaaaa"),
		[]byte("prefix-shared-bbbbbbbbbbbbbbbb"), // forces a deeper layer
	}
	for i, k := range keys {
		tree.Put(k, value.New([]byte(fmt.Sprintf("val%d", i))))
	}
	for i := 0; i < 1000; i++ { // grow the tree so descents span levels
		tree.Put([]byte(fmt.Sprintf("filler%06d", i)), value.New([]byte("x")))
	}
	missing := []byte("prefix-shared-cccccccccccccccc")

	allocs := testing.AllocsPerRun(200, func() {
		for _, k := range keys {
			if _, ok := tree.Get(k); !ok {
				t.Fatalf("key %q missing", k)
			}
		}
		if _, ok := tree.Get(missing); ok {
			t.Fatal("phantom key")
		}
	})
	if allocs != 0 {
		t.Fatalf("Get allocates %.1f times per run, want 0", allocs)
	}
}

// TestGetBatchIntoAllocFree verifies the batched lookup is allocation-free
// once its scratch is warmed to the batch size.
func TestGetBatchIntoAllocFree(t *testing.T) {
	tree := New()
	const n = 64
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("batch-key-%06d", i*37%n))
		tree.Put(keys[i], value.New([]byte("v")))
	}
	vals := make([]*value.Value, n)
	found := make([]bool, n)
	var sc BatchScratch

	allocs := testing.AllocsPerRun(200, func() {
		tree.GetBatchInto(keys, vals, found, &sc)
		for i := range found {
			if !found[i] {
				t.Fatalf("key %d missing", i)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("GetBatchInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestGetBatchIntoMatchesGet checks batched results against single gets.
func TestGetBatchIntoMatchesGet(t *testing.T) {
	tree := New()
	for i := 0; i < 500; i++ {
		tree.Put([]byte(fmt.Sprintf("k%05d", i)), value.New([]byte(fmt.Sprintf("v%05d", i))))
	}
	keys := [][]byte{
		[]byte("k00042"), []byte("k00400"), []byte("absent"),
		[]byte("k00001"), []byte("k00499"), []byte("k00042"),
	}
	vals, found := tree.GetBatch(keys)
	for i, k := range keys {
		v, ok := tree.Get(k)
		if ok != found[i] || v != vals[i] {
			t.Fatalf("key %q: batch (%v,%v) != get (%v,%v)", k, vals[i], found[i], v, ok)
		}
	}
}
