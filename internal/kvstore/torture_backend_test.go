package kvstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/value"
	"repro/internal/vfs"
)

// Backend-fault torture: the crash-at-every-boundary harness from
// torture_test.go, with a read-through backend under fault injection. The
// workload interleaves read-through loads, deterministic evictions that
// spill through the write-behind queue, and mock fault phases (error burst,
// hang, hard outage, heal, re-fail). The model extends the base invariants:
//
//   - Singleflight holds under every fault: per key, one flight generation
//     makes exactly one backend load, and no key ever has two loads in
//     flight at once (MaxConcurrentLoads == 1), crash or no crash.
//   - Acked writes survive a backend outage during eviction: a spill that
//     fails upstream loses only the backend copy — the WAL still replays
//     the write, so recovery must not lose it (the base verify covers this
//     because an evicted key is a clean drop, never a lost ack).
//   - The breaker is live across its whole lifecycle: it opens under the
//     burst, a half-open probe closes it on heal, and it re-opens when the
//     backend fails again after having recovered.
//   - Read-through after recovery cannot invent data: a key loaded from
//     the backend into a recovered store must carry some state the live
//     store actually applied.

const tbWriteBehindDepth = 32

var errTortureOutage = errors.New("injected backend outage")

// tortureBackend bundles the base harness with the faulty backend tier.
type tortureBackend struct {
	*torture
	mock *backend.Mock
	be   *backend.Wrapped
	sess *Session
}

// recordLoaded folds a value the loader installed into the model history
// (duplicate versions are already-known states and are skipped).
func (tb *tortureBackend) recordLoaded(key string, v *value.Value) {
	if v == nil {
		return
	}
	h := tb.histOf(key)
	for _, st := range h.states {
		if !st.tomb && st.ver == v.Version() {
			h.dropped = false
			return
		}
	}
	h.states = append(h.states, kvState{ver: v.Version(), data: joinCols(v.Cols())})
	h.dropped = false
}

// recordResident snapshots key's current tree state into the model (used
// after a herd where some other goroutine's flight did the install).
func (tb *tortureBackend) recordResident(key string) {
	if v, ok := tb.s.tree.Get([]byte(key)); ok {
		tb.recordLoaded(key, v)
	}
}

func (tb *tortureBackend) getOrLoad(key string) (*value.Value, error) {
	v, _, err := tb.sess.GetOrLoad(context.Background(), []byte(key))
	if err == nil {
		tb.recordLoaded(key, v)
	}
	return v, err
}

// workload drives the fault phases. FS crashes surface as vfs.ErrCrashed
// from the first ack/ckpt they break, exactly like the base workload; all
// backend-side assertions are filesystem-independent and hold regardless of
// where a crash lands.
func (tb *tortureBackend) workload() error {
	// Phase 1: read-through population — every seeded key is exactly one
	// backend load, and a re-read stays in the tree.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("bk%02d", i)
		tb.mock.Seed(k, backend.EncodeCols([][]byte{[]byte(fmt.Sprintf("seed-%02d", i))}))
		v, err := tb.getOrLoad(k)
		if err != nil {
			return fmt.Errorf("load %s: %w", k, err)
		}
		if v == nil {
			return fmt.Errorf("seeded key %s answered a miss", k)
		}
	}
	if _, err := tb.getOrLoad("bk03"); err != nil {
		return err
	}
	if n := tb.mock.LoadsFor("bk03"); n != 1 {
		return fmt.Errorf("re-read of resident bk03 reloaded (loads=%d, want 1)", n)
	}
	if err := tb.ack(); err != nil {
		return err
	}

	// Phase 2: evict + spill + herd. The eviction spills bk00 upstream;
	// after the drain the next generation of misses is a herd parked on a
	// hung backend — release must yield exactly one load.
	if !tb.s.evictKey([]byte("bk00")) {
		return fmt.Errorf("deterministic evict of bk00 failed")
	}
	tb.histOf("bk00").dropped = true
	if !tb.s.DrainWriteBehind(5 * time.Second) {
		return fmt.Errorf("write-behind drain stalled")
	}
	before := tb.mock.LoadsFor("bk00")
	release := tb.mock.Hang()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ss := tb.s.Session(0)
			defer ss.Close()
			ss.GetOrLoad(context.Background(), []byte("bk00"))
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the herd park on the flight
	release()
	wg.Wait()
	if n := tb.mock.LoadsFor("bk00"); n != before+1 {
		return fmt.Errorf("herd generation made %d backend loads, want 1", n-before)
	}
	tb.recordResident("bk00")
	if err := tb.ack(); err != nil {
		return err
	}
	if err := tb.ckpt(); err != nil {
		return err
	}

	// Phase 3: hard outage. An acked key evicted while the backend is down
	// loses only its upstream copy — the WAL keeps the ack. Misses fail,
	// three in a row trip the breaker.
	tb.putSimple("w00", "w00-acked")
	tb.putSimple("w01", "w01-acked")
	if err := tb.ack(); err != nil {
		return err
	}
	tb.mock.SetError(errTortureOutage)
	if !tb.s.evictKey([]byte("w00")) {
		return fmt.Errorf("deterministic evict of w00 failed")
	}
	tb.histOf("w00").dropped = true
	if !tb.s.DrainWriteBehind(5 * time.Second) {
		return fmt.Errorf("outage drain stalled (failed spills must still complete)")
	}
	opens := tb.be.Stats().BreakerOpens
	for i := 0; i < 6; i++ {
		if _, err := tb.getOrLoad(fmt.Sprintf("miss-%d", i)); err == nil {
			return fmt.Errorf("miss %d during outage did not error", i)
		}
	}
	if got := tb.be.Stats().BreakerOpens; got < opens+1 {
		return fmt.Errorf("breaker did not open under the burst (opens=%d)", got)
	}

	// Phase 4: heal. The next admitted half-open probe succeeds and closes
	// the circuit; loads flow again.
	tb.mock.SetError(nil)
	tb.mock.Seed("heal", backend.EncodeCols([][]byte{[]byte("healed")}))
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := tb.getOrLoad("heal")
		if err == nil && v != nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("backend did not heal within 5s (last: %v)", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := tb.ack(); err != nil {
		return err
	}

	// Phase 5: re-fail. Having recovered once, the breaker must trip again
	// — a one-shot breaker that heals permanently open or permanently
	// closed fails here.
	reopens := tb.be.Stats().BreakerOpens
	tb.mock.SetError(errTortureOutage)
	deadline = time.Now().Add(5 * time.Second)
	for tb.be.Stats().BreakerOpens <= reopens {
		tb.getOrLoad("miss-refail")
		if time.Now().After(deadline) {
			return fmt.Errorf("breaker did not reopen after recovery")
		}
		time.Sleep(time.Millisecond)
	}
	tb.mock.SetError(nil)

	// Singleflight held through every phase: no key ever had two loads in
	// flight at once, herd, outage, and heal included.
	if n := tb.mock.MaxConcurrentLoads(); n > 1 {
		return fmt.Errorf("duplicate in-flight loads for one key (max %d)", n)
	}

	// Phase 6: applied but never acknowledged.
	tb.putSimple("pending-backend", "p1")
	return nil
}

// verifyBackend re-opens one crash image with the (healed) backend attached
// and checks the read-through integration: a key the backend still holds
// loads back carrying only data the live store actually applied.
func (tb *tortureBackend) verifyBackend(img *vfs.MemFS, label string) {
	t := tb.t
	r, err := Open(Config{
		Dir: tortureDir, Workers: 1, FS: img, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: 1,
		Backend: tb.mock, WriteBehind: tbWriteBehindDepth, MaxStale: time.Minute,
	})
	if err != nil {
		t.Fatalf("%s: recovery with backend failed: %v", label, err)
	}
	defer r.Close()
	ss := r.Session(0)
	defer ss.Close()
	for _, k := range []string{"bk00", "bk03", "w00", "heal"} {
		if tb.hist[k] == nil {
			continue // the crash aborted the workload before this key existed
		}
		v, _, err := ss.GetOrLoad(context.Background(), []byte(k))
		if err != nil {
			t.Fatalf("%s: GetOrLoad(%s) after recovery: %v", label, k, err)
		}
		if v == nil {
			continue // absent upstream and dropped locally — a legal clean drop
		}
		got := joinCols(v.Cols())
		okState := false
		for _, st := range tb.hist[k].states {
			if !st.tomb && st.data == got {
				okState = true
				break
			}
		}
		if !okState {
			t.Fatalf("%s: key %q read %q after recovery, matching no applied state", label, k, got)
		}
	}
}

// runTortureBackend executes the backend-fault workload with a crash armed
// at boundary crashAt (0 = disarmed), then verifies every crash image with
// the base model and again with the backend re-attached.
func runTortureBackend(t *testing.T, crashAt int) (ops int, crashed bool) {
	mem := vfs.NewMemFS()
	fault := vfs.NewFault(mem)
	fault.CrashAt(crashAt)
	mock := backend.NewMock(0)
	be := backend.Wrap(mock, backend.WrapConfig{
		Timeout:         250 * time.Millisecond,
		BreakerFailures: 3,
		BreakerOpenFor:  25 * time.Millisecond,
	})
	tt := &torture{t: t, mem: mem, fault: fault, hist: map[string]*keyHist{}, workers: 1, parts: 1}
	tb := &tortureBackend{torture: tt, mock: mock, be: be}
	s, err := Open(Config{
		Dir: tortureDir, Workers: 1, FS: fault, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: 1,
		Backend: be, WriteBehind: tbWriteBehindDepth, MaxStale: time.Minute,
	})
	if err != nil {
		if !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("crashAt=%d: open: %v", crashAt, err)
		}
	} else {
		tt.s = s
		tb.sess = s.Session(0)
		if werr := tb.workload(); werr != nil && !errors.Is(werr, vfs.ErrCrashed) {
			t.Fatalf("crashAt=%d: workload: %v", crashAt, werr)
		}
		// Heal before Close: a crash mid-outage-phase must not wedge the
		// final write-behind drain behind a dead backend.
		mock.SetError(nil)
		tb.sess.Close()
		if cerr := s.Close(); cerr == nil && !fault.Crashed() {
			tt.promote()
		}
	}
	ops, crashed = fault.Ops(), fault.Crashed()
	for _, img := range crashImages {
		c := mem.Clone()
		c.Crash(img.keep)
		tt.verify(c, fmt.Sprintf("backend/crashAt=%d/%s", crashAt, img.name))
		c2 := mem.Clone()
		c2.Crash(img.keep)
		tb.verifyBackend(c2, fmt.Sprintf("backendmode/crashAt=%d/%s", crashAt, img.name))
	}
	return ops, crashed
}

// TestBackendFaultTorture runs the backend-fault workload disarmed (the
// fault phases themselves must pass) and then crashes at a sampled set of
// boundaries. The slowtest variant enumerates every boundary.
func TestBackendFaultTorture(t *testing.T) {
	total, crashed := runTortureBackend(t, 0)
	if crashed {
		t.Fatal("disarmed run crashed")
	}
	t.Logf("backend workload executes %d crash boundaries x %d images", total, len(crashImages))
	stride := total / 12
	if stride < 1 {
		stride = 1
	}
	for i := 1; i <= total; i += stride {
		runTortureBackend(t, i)
	}
}
