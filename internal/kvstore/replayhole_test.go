package kvstore

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/wal"
)

// TestPartialColumnReplayHole is executable documentation of the known
// theoretical recovery hole recorded in ROADMAP.md:
//
// Two workers writing *partial-column* puts to the same key through
// different logs can replay a later delta without an earlier one if the
// earlier log vanishes entirely: an empty or missing log contributes no
// constraint to the recovery cutoff t = min over logs of the log's maximum
// durable timestamp, so nothing stops replay from applying worker B's
// column-1 delta (ts_b) onto a state that never saw worker A's column-0
// delta (ts_a < ts_b). The paper's recovery has the same property. It is
// unreachable for full-value puts (the later record carries the whole
// value) and for single-writer-per-key workloads (both records share one
// log, and a log loses only suffixes) — which is why the torture model
// writes each key through one worker. A fix would add per-record
// prev-version links or column-complete records; until then this test is
// skipped and its body shows exactly the sequence that breaks.
func TestPartialColumnReplayHole(t *testing.T) {
	t.Skip("known hole (see ROADMAP.md): a vanished log lifts no cutoff constraint, so a later " +
		"partial-column delta replays without the earlier one; unreachable for full-value puts " +
		"and single-writer-per-key workloads; fix = prev-version links or column-complete records")

	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 2, SyncWrites: true, FlushInterval: time.Hour, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("shared")
	// Worker 0 writes column 0, worker 1 then writes column 1 of the same
	// key: two partial-column deltas in two different logs, ts_a < ts_b.
	s.Put(0, key, []value.ColPut{{Col: 0, Data: []byte("from-worker-0")}})
	s.Put(1, key, []value.ColPut{{Col: 1, Data: []byte("from-worker-1")}})
	if err := s.Flush(); err != nil { // both deltas durable and acknowledged
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The adversity: worker 0's log vanishes wholesale (lost directory
	// entry, dead device — not a torn suffix). Worker 1's log survives.
	files, err := wal.ListLogFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if f.Worker == 0 {
			if err := os.Remove(filepath.Join(f.Path)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Recovery has only worker 1's log: its maximum timestamp bounds the
	// cutoff from below and nothing represents worker 0, so ts_b replays —
	// onto a state missing the ts_a delta it was built on.
	r, err := Open(Config{Dir: dir, Workers: 2, SyncWrites: true, FlushInterval: time.Hour, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cols, ok := r.Get(key, nil)
	if !ok {
		t.Fatal("key lost entirely")
	}
	// This is the assertion that fails today: column 0's acknowledged data
	// is gone while column 1's later delta survived — a mixed state no
	// serial execution produced.
	if len(cols) < 2 || string(cols[0]) != "from-worker-0" || string(cols[1]) != "from-worker-1" {
		t.Fatalf("partial-column replay hole reproduced: recovered %q, want both columns intact", cols)
	}
}
