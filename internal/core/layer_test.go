package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

// TestLayerRootSplitLazyFix forces a layer-1 B+-tree to split (so the
// next_layer pointer stored in the layer-0 border node goes stale) and
// verifies lookups keep working and repair the pointer lazily (§4.6.4:
// "other roots ... are updated lazily during later operations").
func TestLayerRootSplitLazyFix(t *testing.T) {
	tr := New()
	// All keys share an 8-byte prefix; their remainders populate a layer-1
	// tree which must split once it exceeds one border node (15 keys).
	const n = 200
	for i := 0; i < n; i++ {
		put(tr, fmt.Sprintf("PREFIX00-%06d", i), fmt.Sprintf("v%d", i))
	}
	if s := tr.Stats(); s.LayerCreations == 0 || s.Splits == 0 {
		t.Fatalf("expected layer creation and layer-tree splits: %+v", s)
	}
	for i := 0; i < n; i++ {
		mustGet(t, tr, fmt.Sprintf("PREFIX00-%06d", i), fmt.Sprintf("v%d", i))
	}
	checkInvariants(t, tr)
}

// TestDeepLayerChain builds a key set that forces several trie layers and
// then removes everything, exercising recursive layer collapse.
func TestDeepLayerChain(t *testing.T) {
	tr := New()
	base := "0123456789abcdef0123456789abcdef" // 32 bytes -> up to 4 layers
	var keys []string
	for i := 0; i < 50; i++ {
		keys = append(keys, fmt.Sprintf("%s-%04d", base, i))
	}
	// Also intermediate-length prefixes of the shared stem.
	for l := 1; l < len(base); l += 5 {
		keys = append(keys, base[:l])
	}
	for i, k := range keys {
		put(tr, k, fmt.Sprintf("v%d", i))
	}
	for i, k := range keys {
		mustGet(t, tr, k, fmt.Sprintf("v%d", i))
	}
	checkInvariants(t, tr)
	for _, k := range keys {
		if _, ok := tr.Remove([]byte(k)); !ok {
			t.Fatalf("remove %q failed", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len=%d", tr.Len())
	}
	// Collapse may require several passes (inner layers empty first).
	for i := 0; i < 10 && tr.PendingMaintenance() > 0; i++ {
		tr.Maintain()
	}
	checkInvariants(t, tr)
	// Tree remains fully usable.
	put(tr, base+"-new", "fresh")
	mustGet(t, tr, base+"-new", "fresh")
}

// TestRemoveCascadeThroughInteriors deletes a contiguous key range so whole
// subtrees (border nodes plus interior ancestors) disappear.
func TestRemoveCascadeThroughInteriors(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		put(tr, fmt.Sprintf("k%06d", i), "v")
	}
	// Remove the middle 80%.
	for i := n / 10; i < n*9/10; i++ {
		if _, ok := tr.Remove([]byte(fmt.Sprintf("k%06d", i))); !ok {
			t.Fatalf("remove %d failed", i)
		}
	}
	if s := tr.Stats(); s.NodeDeletes == 0 {
		t.Fatal("expected interior/border node deletions")
	}
	checkInvariants(t, tr)
	for i := 0; i < n/10; i++ {
		mustGet(t, tr, fmt.Sprintf("k%06d", i), "v")
	}
	for i := n * 9 / 10; i < n; i++ {
		mustGet(t, tr, fmt.Sprintf("k%06d", i), "v")
	}
	// Scans stay correct across the removed gap.
	got := tr.GetRange([]byte(fmt.Sprintf("k%06d", n/10-2)), 5)
	if len(got) != 5 {
		t.Fatalf("range returned %d", len(got))
	}
	if string(got[2].Key) != fmt.Sprintf("k%06d", n*9/10) {
		t.Fatalf("scan did not skip the removed gap: %q", got[2].Key)
	}
}

// TestQuickOpSequences drives random short op sequences from testing/quick
// against a map model — a complement to the seeded model tests, with quick
// generating adversarial key bytes.
func TestQuickOpSequences(t *testing.T) {
	type op struct {
		Kind byte
		Key  []byte
	}
	f := func(ops []op) bool {
		tr := New()
		model := map[string]int{}
		for i, o := range ops {
			if len(o.Key) > 40 {
				o.Key = o.Key[:40]
			}
			switch o.Kind % 3 {
			case 0:
				tr.Put(o.Key, value.New([]byte{byte(i)}))
				model[string(o.Key)] = i
			case 1:
				v, ok := tr.Get(o.Key)
				want, wantOK := model[string(o.Key)]
				if ok != wantOK {
					return false
				}
				if ok && v.Bytes()[0] != byte(want) {
					return false
				}
			case 2:
				_, ok := tr.Remove(o.Key)
				_, wantOK := model[string(o.Key)]
				if ok != wantOK {
					return false
				}
				delete(model, string(o.Key))
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, want := range model {
			v, ok := tr.Get([]byte(k))
			if !ok || v.Bytes()[0] != byte(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestScanResumesAfterExactKey checks GetRange boundary semantics at layer
// boundaries: starting exactly at a key that is also a layer prefix.
func TestScanResumesAfterExactKey(t *testing.T) {
	tr := New()
	put(tr, "ABCDEFGH", "exact8")  // stored inline at layer 0 (ord 8)
	put(tr, "ABCDEFGHxx", "long1") // layer entry under same slice
	put(tr, "ABCDEFGHyy", "long2")
	put(tr, "ABCDEFGA", "before")
	put(tr, "ABCDEFGZ", "after")

	got := tr.GetRange([]byte("ABCDEFGH"), 10)
	want := []string{"ABCDEFGH", "ABCDEFGHxx", "ABCDEFGHyy", "ABCDEFGZ"}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs: %v", len(got), got)
	}
	for i, w := range want {
		if string(got[i].Key) != w {
			t.Fatalf("pair %d = %q, want %q", i, got[i].Key, w)
		}
	}
	// Start strictly inside the layer.
	got = tr.GetRange([]byte("ABCDEFGHxy"), 10)
	if len(got) != 2 || string(got[0].Key) != "ABCDEFGHyy" {
		t.Fatalf("mid-layer start wrong: %v", got)
	}
}
