package wal

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/value"
	"repro/internal/vfs"
)

// recordsEqual compares the serialized fields of two records (everything
// but the recovery-populated Worker and the format-derived Prev/Unlinked).
func recordsEqual(a, b Record) bool {
	if a.TS != b.TS || a.Op != b.Op || !bytes.Equal(a.Key, b.Key) || a.Expiry != b.Expiry {
		return false
	}
	if len(a.Puts) != len(b.Puts) {
		return false
	}
	for i := range a.Puts {
		if a.Puts[i].Col != b.Puts[i].Col || !bytes.Equal(a.Puts[i].Data, b.Puts[i].Data) {
			return false
		}
	}
	return true
}

// TestV1LogRecoversUnderV2Reader lays down a genuine MTLOG1 log (via the
// retained legacy encoder) and checks the v2 reader recovers exactly the
// records the v1 reader would have: same field values, same cutoff, with
// every record flagged Unlinked so replay merges it unvalidated.
func TestV1LogRecoversUnderV2Reader(t *testing.T) {
	mem := vfs.NewMemFS()
	dir := "d"
	if err := mem.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{TS: 5, Op: OpInsert, Key: []byte("a"), Puts: []value.ColPut{{Col: 0, Data: []byte("a0")}}},
		{TS: 7, Op: OpPut, Key: []byte("a"), Puts: []value.ColPut{{Col: 1, Data: []byte("a1")}}},
		{TS: 9, Op: OpPutTTL, Key: []byte("t"), Puts: []value.ColPut{{Col: 0, Data: []byte("tv")}}, Expiry: 12345},
		{TS: 11, Op: OpRemove, Key: []byte("gone")},
	}
	logPath := filepath.Join(dir, LogFileName(0, 1))
	if err := WriteLegacyLogFS(mem, logPath, append(want, Record{TS: 20, Op: OpMark})); err != nil {
		t.Fatal(err)
	}
	res, err := RecoverDirFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cutoff != 20 || res.MaxTS != 20 {
		t.Fatalf("cutoff/maxTS = %d/%d, want 20/20", res.Cutoff, res.MaxTS)
	}
	if res.MissingLogs != 0 {
		t.Fatalf("MissingLogs = %d for a pre-logset directory, want 0 (check disabled)", res.MissingLogs)
	}
	if len(res.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(res.Records), len(want))
	}
	for i, r := range res.Records {
		if !recordsEqual(r, want[i]) {
			t.Errorf("record %d = %+v, want fields of %+v", i, r, want[i])
		}
		if !r.Unlinked {
			t.Errorf("record %d parsed from a v1 log is not Unlinked", i)
		}
		if r.Prev != 0 {
			t.Errorf("record %d has Prev = %d, want 0 (v1 carries no links)", i, r.Prev)
		}
		if r.Worker != 0 {
			t.Errorf("record %d Worker = %d, want 0 (the log's worker)", i, r.Worker)
		}
	}
}

// TestMixedV1V2DirReplays puts a v1 log and a v2 log in one directory —
// the upgrade-in-place picture: an old generation written before the
// format change, a new generation after — and checks both parse into one
// consistent record stream with per-format link semantics.
func TestMixedV1V2DirReplays(t *testing.T) {
	mem := vfs.NewMemFS()
	dir := "d"
	if err := mem.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Worker 0, generation 1: legacy format. The trailing mark keeps this
	// quieter log from dragging the cutoff below the v2 log's records.
	v1recs := []Record{
		{TS: 10, Op: OpPut, Key: []byte("k"), Puts: []value.ColPut{{Col: 0, Data: []byte("old")}}},
		{TS: 50, Op: OpMark},
	}
	if err := WriteLegacyLogFS(mem, filepath.Join(dir, LogFileName(0, 1)), v1recs); err != nil {
		t.Fatal(err)
	}
	// Worker 1, generation 1: current format, a linked put chained to the
	// v1 record's version.
	w, err := newWriter(mem, dir, 1, 1, true, DefaultFlushInterval, true)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendPut(20, 10, []byte("k"), []value.ColPut{{Col: 1, Data: []byte("new")}})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := RecoverDirFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cutoff != 20 {
		t.Fatalf("cutoff = %d, want 20 (min of 50 and 20)", res.Cutoff)
	}
	byTS := map[uint64]Record{}
	for _, r := range res.Records {
		byTS[r.TS] = r
	}
	if len(byTS) != 2 {
		t.Fatalf("recovered %d records, want 2 (ts 10 and 20): %+v", len(byTS), res.Records)
	}
	r10, r20 := byTS[10], byTS[20]
	if !r10.Unlinked || r10.Worker != 0 {
		t.Errorf("v1 record: Unlinked=%v Worker=%d, want true/0", r10.Unlinked, r10.Worker)
	}
	if r20.Unlinked || r20.Prev != 10 || r20.Worker != 1 {
		t.Errorf("v2 record: Unlinked=%v Prev=%d Worker=%d, want false/10/1", r20.Unlinked, r20.Prev, r20.Worker)
	}
}

// TestMissingLogDetection checks the logset file distinguishes a vanished
// log (file absent: counted) from a worker that never logged (file present,
// possibly empty: not counted), and that rotation keeps the expectation
// consistent with what DropBefore leaves behind.
func TestMissingLogDetection(t *testing.T) {
	mem := vfs.NewMemFS()
	dir := "d"
	if err := mem.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	set, err := OpenSetFS(mem, dir, 3, 1, true, DefaultFlushInterval)
	if err != nil {
		t.Fatal(err)
	}
	set.Writer(0).AppendPut(1, 0, []byte("a"), []value.ColPut{{Col: 0, Data: []byte("v")}})
	// Worker 1 logs; worker 2 never does — its file exists but is empty.
	set.Writer(1).AppendPut(2, 0, []byte("b"), []value.ColPut{{Col: 0, Data: []byte("v")}})
	if err := set.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := RecoverDirFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissingLogs != 0 {
		t.Fatalf("intact directory: MissingLogs = %d, want 0", res.MissingLogs)
	}
	// The adversity: worker 1's log vanishes wholesale.
	if err := mem.Remove(filepath.Join(dir, LogFileName(1, 1))); err != nil {
		t.Fatal(err)
	}
	mem.SyncDir(dir)
	res, err = RecoverDirFS(mem, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissingLogs != 1 {
		t.Fatalf("after removing worker 1's log: MissingLogs = %d, want 1", res.MissingLogs)
	}

	// Rotation advances the expectation before any reclamation: dropping
	// the old generation after a rotate must not read as missing logs.
	mem2 := vfs.NewMemFS()
	if err := mem2.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	set2, err := OpenSetFS(mem2, dir, 2, 1, true, DefaultFlushInterval)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := set2.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := set2.DropBefore(gen); err != nil {
		t.Fatal(err)
	}
	mem2.SyncDir(dir)
	if err := set2.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = RecoverDirFS(mem2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissingLogs != 0 {
		t.Fatalf("after rotate+drop: MissingLogs = %d, want 0", res.MissingLogs)
	}
}

// FuzzRecordV2 fuzzes the versioned record parser, seeded from both the v2
// and the legacy v1 encoder. Properties: the parser never panics, never
// consumes more bytes than given, and any record it accepts round-trips
// through the matching encoder back to the same bytes (so parse ∘ encode is
// the identity on accepted inputs — a corrupt record can be rejected but
// never silently rewritten).
func FuzzRecordV2(f *testing.F) {
	puts := []value.ColPut{{Col: 0, Data: []byte("col0")}, {Col: 3, Data: nil}}
	seeds := [][]byte{
		appendRecord(nil, 7, 3, OpPut, []byte("key"), puts, 0),
		appendRecord(nil, 9, 0, OpPutTTL, []byte("ttl"), puts, 1234),
		appendRecord(nil, 11, 0, OpInsert, []byte("ins"), puts, 0),
		appendRecord(nil, 13, 0, OpRemove, []byte("gone"), nil, 0),
		appendRecord(nil, 15, 0, OpMark, nil, nil, 0),
		appendRecordV1(nil, 7, OpPut, []byte("key"), puts, 0),
		appendRecordV1(nil, 9, OpPutTTL, []byte("ttl"), puts, 1234),
		appendRecordV1(nil, 11, OpInsert, []byte("ins"), puts, 0),
	}
	for _, s := range seeds {
		f.Add(s, false)
		f.Add(s, true)
	}
	f.Fuzz(func(t *testing.T, b []byte, v1 bool) {
		r, n := parseRecord(b, v1)
		if n == 0 {
			return
		}
		if n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		var re []byte
		if v1 {
			re = appendRecordV1(nil, r.TS, r.Op, r.Key, r.Puts, r.Expiry)
		} else {
			re = appendRecord(nil, r.TS, r.Prev, r.Op, r.Key, r.Puts, r.Expiry)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, b[:n])
		}
		if v1 != r.Unlinked {
			t.Fatalf("v1=%v but Unlinked=%v", v1, r.Unlinked)
		}
	})
}
