package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/value"
)

// appendRec adapts a Record struct to the in-place encoder for tests.
func appendRec(buf []byte, r *Record) []byte {
	return appendRecord(buf, r.TS, r.Prev, r.Op, r.Key, r.Puts, r.Expiry)
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{TS: 1, Op: OpPut, Key: []byte("k"), Puts: []value.ColPut{{Col: 0, Data: []byte("v")}}},
		{TS: 2, Op: OpPut, Key: []byte(""), Puts: []value.ColPut{{Col: 3, Data: nil}, {Col: 0, Data: []byte("x")}}},
		{TS: 3, Op: OpRemove, Key: []byte("gone")},
		{TS: 1 << 60, Op: OpPut, Key: bytes.Repeat([]byte{0}, 300), Puts: []value.ColPut{{Col: 9, Data: bytes.Repeat([]byte("d"), 5000)}}},
	}
	var buf []byte
	for i := range recs {
		buf = appendRec(buf, &recs[i])
	}
	for i := range recs {
		r, n := parseRecord(buf, false)
		if n == 0 {
			t.Fatalf("record %d failed to parse", i)
		}
		if r.TS != recs[i].TS || r.Op != recs[i].Op || !bytes.Equal(r.Key, recs[i].Key) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, recs[i])
		}
		if len(r.Puts) != len(recs[i].Puts) {
			t.Fatalf("record %d puts mismatch", i)
		}
		for j := range r.Puts {
			if r.Puts[j].Col != recs[i].Puts[j].Col || !bytes.Equal(r.Puts[j].Data, recs[i].Puts[j].Data) {
				t.Fatalf("record %d put %d mismatch", i, j)
			}
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatal("leftover bytes")
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(ts uint64, key []byte, col uint8, data []byte) bool {
		r := Record{TS: ts, Op: OpPut, Key: key, Puts: []value.ColPut{{Col: int(col), Data: data}}}
		buf := appendRec(nil, &r)
		got, n := parseRecord(buf, false)
		if n != len(buf) {
			return false
		}
		// normalize nil/empty
		keyEq := bytes.Equal(got.Key, key)
		dataEq := bytes.Equal(got.Puts[0].Data, data)
		return got.TS == ts && keyEq && got.Puts[0].Col == int(col) && dataEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTornRecordStopsParse(t *testing.T) {
	r1 := Record{TS: 1, Op: OpPut, Key: []byte("a"), Puts: []value.ColPut{{Col: 0, Data: []byte("1")}}}
	r2 := Record{TS: 2, Op: OpPut, Key: []byte("b"), Puts: []value.ColPut{{Col: 0, Data: []byte("2")}}}
	buf := appendRec(nil, &r1)
	full := appendRec(append([]byte(nil), buf...), &r2)
	for cut := len(buf) + 1; cut < len(full); cut++ {
		log := append(append([]byte(nil), fileMagic...), full[:cut]...)
		recs, err := parseLog(log)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 1 || recs[0].TS != 1 {
			t.Fatalf("cut %d: got %d records", cut, len(recs))
		}
	}
	// Corrupt a byte mid-first-record: zero records.
	bad := append(append([]byte(nil), fileMagic...), buf...)
	bad[len(fileMagic)+10] ^= 0xff
	recs, _ := parseLog(bad)
	if len(recs) != 0 {
		t.Fatal("corrupt record should not parse")
	}
}

func TestWriterFlushAndReload(t *testing.T) {
	dir := t.TempDir()
	set, err := OpenSet(dir, 2, 1, false, time.Hour) // no auto flush
	if err != nil {
		t.Fatal(err)
	}
	set.Writer(0).Append(&Record{TS: 1, Op: OpPut, Key: []byte("a"), Puts: []value.ColPut{{Col: 0, Data: []byte("1")}}})
	set.Writer(1).Append(&Record{TS: 2, Op: OpPut, Key: []byte("b"), Puts: []value.ColPut{{Col: 0, Data: []byte("2")}}})
	if err := set.Flush(); err != nil {
		t.Fatal(err)
	}
	set.Writer(0).Append(&Record{TS: 3, Op: OpRemove, Key: []byte("a")})
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Cutoff = min(max per worker) = min(3, 2) = 2 → record TS 3 dropped.
	if res.Cutoff != 2 {
		t.Fatalf("cutoff = %d, want 2", res.Cutoff)
	}
	if res.MaxTS != 3 {
		t.Fatalf("maxTS = %d, want 3", res.MaxTS)
	}
	if len(res.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(res.Records))
	}
}

func TestRecoverCutoffDropsUnackedTail(t *testing.T) {
	dir := t.TempDir()
	set, _ := OpenSet(dir, 2, 1, false, time.Hour)
	// Worker 0 durably logged through TS 10; worker 1 only through TS 5.
	for ts := uint64(1); ts <= 10; ts++ {
		set.Writer(0).Append(&Record{TS: ts, Op: OpPut, Key: []byte{byte(ts)}, Puts: []value.ColPut{{Col: 0, Data: []byte("x")}}})
	}
	for ts := uint64(1); ts <= 5; ts++ {
		set.Writer(1).Append(&Record{TS: ts + 100, Op: OpPut, Key: []byte{byte(ts)}, Puts: []value.ColPut{{Col: 0, Data: []byte("y")}}})
	}
	set.Close()
	res, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cutoff != 10 {
		t.Fatalf("cutoff = %d, want 10", res.Cutoff)
	}
	for _, r := range res.Records {
		if r.TS > res.Cutoff {
			t.Fatalf("record beyond cutoff survived: %d", r.TS)
		}
	}
	if len(res.Records) != 10 {
		t.Fatalf("got %d records, want 10", len(res.Records))
	}
}

func TestEmptyLogDoesNotConstrainCutoff(t *testing.T) {
	dir := t.TempDir()
	set, _ := OpenSet(dir, 2, 1, false, time.Hour)
	set.Writer(0).Append(&Record{TS: 7, Op: OpPut, Key: []byte("k"), Puts: []value.ColPut{{Col: 0, Data: []byte("v")}}})
	set.Close()
	res, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cutoff != 7 || len(res.Records) != 1 {
		t.Fatalf("cutoff=%d records=%d", res.Cutoff, len(res.Records))
	}
}

func TestRotateAndDrop(t *testing.T) {
	dir := t.TempDir()
	set, _ := OpenSet(dir, 1, 1, false, time.Hour)
	set.Writer(0).Append(&Record{TS: 1, Op: OpPut, Key: []byte("old"), Puts: []value.ColPut{{Col: 0, Data: []byte("1")}}})
	gen, err := set.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	set.Writer(0).Append(&Record{TS: 2, Op: OpPut, Key: []byte("new"), Puts: []value.ColPut{{Col: 0, Data: []byte("2")}}})
	set.Flush()
	if err := set.DropBefore(gen); err != nil {
		t.Fatal(err)
	}
	set.Close()
	files, _ := ListLogFiles(dir)
	if len(files) != 1 || files[0].Gen != gen {
		t.Fatalf("files after drop: %+v", files)
	}
	res, _ := RecoverDir(dir)
	if len(res.Records) != 1 || string(res.Records[0].Key) != "new" {
		t.Fatalf("post-drop records: %+v", res.Records)
	}
}

func TestBackgroundFlush(t *testing.T) {
	dir := t.TempDir()
	set, _ := OpenSet(dir, 1, 1, false, 5*time.Millisecond)
	set.Writer(0).Append(&Record{TS: 1, Op: OpPut, Key: []byte("k"), Puts: []value.ColPut{{Col: 0, Data: []byte("v")}}})
	deadline := time.Now().Add(2 * time.Second)
	for {
		b, _ := os.ReadFile(filepath.Join(dir, LogFileName(0, 1)))
		if len(b) > len(fileMagic) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never wrote the record")
		}
		time.Sleep(2 * time.Millisecond)
	}
	set.Close()
}

func TestReplayOrderPerKey(t *testing.T) {
	res := &RecoveryResult{
		Records: []Record{
			{TS: 5, Op: OpPut, Key: []byte("a")},
			{TS: 1, Op: OpPut, Key: []byte("a")},
			{TS: 3, Op: OpPut, Key: []byte("b")},
			{TS: 2, Op: OpPut, Key: []byte("a")},
			{TS: 4, Op: OpPut, Key: []byte("b")},
		},
	}
	got := map[string][]uint64{}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	res.Replay(4, func(r Record) {
		<-mu
		got[string(r.Key)] = append(got[string(r.Key)], r.TS)
		mu <- struct{}{}
	})
	if !reflect.DeepEqual(got["a"], []uint64{1, 2, 5}) {
		t.Fatalf("key a order: %v", got["a"])
	}
	if !reflect.DeepEqual(got["b"], []uint64{3, 4}) {
		t.Fatalf("key b order: %v", got["b"])
	}
}

// TestAppendPutBatchRoundTrip checks the single-lock batched append encodes
// records identically to one-at-a-time appends.
func TestAppendPutBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	set, _ := OpenSet(dir, 1, 1, false, time.Hour)
	keys := [][]byte{[]byte("ka"), []byte("kb"), []byte("kc")}
	puts := [][]value.ColPut{
		{{Col: 0, Data: []byte("va")}},
		{{Col: 1, Data: []byte("vb")}, {Col: 0, Data: nil}},
		{{Col: 0, Data: []byte("vc")}},
	}
	ts := []uint64{3, 1, 2}
	set.Writer(0).AppendPutBatch(keys, puts, ts, []uint64{5, 0, 6}, []bool{false, true, false})
	set.Close()
	res, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(res.Records))
	}
	// Cutoff = max TS in the log (3), even though the final record is TS 2.
	if res.Cutoff != 3 {
		t.Fatalf("cutoff = %d, want per-log max 3", res.Cutoff)
	}
	wantOps := []Op{OpPut, OpInsert, OpPut}
	for i, r := range res.Records {
		if r.TS != ts[i] || string(r.Key) != string(keys[i]) || len(r.Puts) != len(puts[i]) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
		if r.Op != wantOps[i] {
			t.Fatalf("record %d op = %d, want %d (insert flag)", i, r.Op, wantOps[i])
		}
	}
}

// TestFlushErrorRecorded proves a failed flush is not dropped on the floor:
// the error count rises and the last error is retained for FlushStats.
func TestFlushErrorRecorded(t *testing.T) {
	dir := t.TempDir()
	set, _ := OpenSet(dir, 1, 1, false, time.Hour)
	w := set.Writer(0)
	w.f.Close() // sabotage the file: the next flush's write must fail
	w.AppendPut(1, 0, []byte("k"), []value.ColPut{{Col: 0, Data: []byte("v")}})
	if err := w.Flush(); err == nil {
		t.Fatal("flush on a closed file should fail")
	}
	n, last := w.FlushStats()
	if n != 1 || last == nil {
		t.Fatalf("FlushStats = %d,%v want 1,non-nil", n, last)
	}
	sn, slast := set.FlushStats()
	if sn != 1 || slast == nil {
		t.Fatalf("Set.FlushStats = %d,%v", sn, slast)
	}
	w.f = nil // avoid double close noise
	set.Close()
}

// TestAppendAllocFree pins the scratch-encoded append path at zero
// steady-state allocations once the double buffers are warm.
func TestAppendAllocFree(t *testing.T) {
	dir := t.TempDir()
	set, _ := OpenSet(dir, 1, 1, false, time.Hour)
	defer set.Close()
	w := set.Writer(0)
	key := []byte("alloc-test-key")
	puts := []value.ColPut{{Col: 0, Data: []byte("alloc-test-column-data")}}
	// Warm both halves of the double buffer past the measured volume.
	for round := 0; round < 2; round++ {
		for i := 0; i < 300; i++ {
			w.AppendPut(uint64(i), 0, key, puts)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		w.AppendPut(7, 0, key, puts)
	})
	if allocs != 0 {
		t.Fatalf("AppendPut allocates %.1f times per run, want 0", allocs)
	}
}

// TestFlushFailureRetainsRecords proves a failed flush does not drop the
// swapped-out batch: once the device recovers, the next flush writes the
// retained records in their original order.
func TestFlushFailureRetainsRecords(t *testing.T) {
	dir := t.TempDir()
	set, _ := OpenSet(dir, 1, 1, false, time.Hour)
	w := set.Writer(0)
	w.AppendPut(1, 0, []byte("kept"), []value.ColPut{{Col: 0, Data: []byte("v1")}})
	w.f.Close() // device "fails"
	if err := w.Flush(); err == nil {
		t.Fatal("flush on a closed file should fail")
	}
	w.AppendPut(2, 0, []byte("later"), []value.ColPut{{Col: 0, Data: []byte("v2")}})
	if err := w.openFile(true); err != nil { // device "recovers"
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	set.Close()
	res, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || res.Records[0].TS != 1 || res.Records[1].TS != 2 {
		t.Fatalf("records after failed-then-recovered flush: %+v", res.Records)
	}
}

// TestAppendAllocFreeAcrossFlushes extends the steady-state pin across
// group commits: the double buffers must keep their full capacity through
// swap/write cycles, so append+flush rounds allocate nothing once warm.
func TestAppendAllocFreeAcrossFlushes(t *testing.T) {
	dir := t.TempDir()
	set, _ := OpenSet(dir, 1, 1, false, time.Hour)
	defer set.Close()
	w := set.Writer(0)
	key := []byte("alloc-flush-key")
	puts := []value.ColPut{{Col: 0, Data: []byte("alloc-flush-column-data")}}
	for round := 0; round < 2; round++ { // warm both buffer halves
		for i := 0; i < 150; i++ {
			w.AppendPut(uint64(i), 0, key, puts)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 100; i++ {
			w.AppendPut(7, 0, key, puts)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("append+flush cycle allocates %.1f times per run, want 0 (buffer capacity eroding?)", allocs)
	}
}
