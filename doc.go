// Package repro reproduces "Cache Craftiness for Fast Multicore Key-Value
// Storage" (Mao, Kohler, Morris — EuroSys 2012): the Masstree in-memory
// key-value store, its substrates (logging, checkpointing, networking), the
// paper's baseline data structures, and a benchmark harness that regenerates
// every table and figure of the paper's evaluation.
//
// Both halves of the request pipeline are batched and allocation-free in
// steady state. Reads: scratch-aliasing wire decoding, PALM-style batched
// lookups (§4.8), and arena-appended responses. Writes: runs of puts
// descend the tree in key order sharing one border-node lock acquisition
// per run (core.PutBatchInto), each put builds a single packed value
// allocation (value.BuildAt), versions come from per-worker loosely
// synchronized clocks instead of a global counter (§5.1, kvstore's
// shardedClock), and log records are encoded directly into per-worker
// double-buffered logs whose flushes never block appenders (§5, wal).
//
// The transport is protocol v2 (internal/wire): a hello exchange negotiates
// the version (clients that send no hello speak v1 verbatim), after which
// every frame carries a sequence tag and many batches ride one connection
// at once. The async client (client.Conn, Go/Wait) pipelines tagged batches
// behind one another, and the server turns each v2 connection into a
// reader → executor → writer pipeline over a recycled scratch ring, so
// decoding frame N+1 overlaps executing frame N and writing frame N−1 —
// batching fills each message, pipelining fills the gaps between messages
// (§7: "batched query support is vital on these benchmarks"). The API also
// exposes record versions end to end: gets return the value's version and
// OpCas applies a put only if the version still matches (checked under the
// same border-node lock as the write), giving clients lock-free
// read-modify-write across the network.
//
// Persistence (§5) is parallel end to end. A checkpoint partitions the key
// space into T disjoint ranges at evenly spaced key ranks and writes T part
// files concurrently (ckpt-<ts>-partK.ckpt, each with its own CRC footer);
// a small manifest (ckpt-<ts>.mf) is renamed into place and the directory
// fsynced as the commit point, and only then is older log and checkpoint
// state reclaimed. Recovery runs the same pipeline backwards: parts load
// concurrently with chunked batched tree inserts, log files parse
// one-goroutine-per-file, and replay partitions keys across cores.
// Checkpoint start synchronizes the per-worker clocks and drains the
// draw-to-append windows, so replay can prove every record at or below the
// checkpoint timestamp redundant and skip it (replaying one could resurrect
// a key whose remove only the checkpoint remembers).
//
// Log records are version-chained (the MTLOG2 format; MTLOG1 logs still
// recover, their records replaying unvalidated). Every partial put carries
// prev — the version it replaced, read in the same border-lock critical
// section that drew its own version — and a put over a value stamped
// through a different worker's log is logged column-complete with prev ==
// 0, a chain anchor (inserts and Touch anchor too). Replay applies a
// partial record only when its prev matches the replayed state; a broken
// link rolls the key back to its last anchored prefix instead of merging
// columns from different versions, and the rollback is counted in
// recovery's broken_chains. A logset file names the expected per-worker
// logs (committed by rename before any reclamation), so a log vanishing
// wholesale — which the paper's min-over-logs cutoff cannot see, since a
// missing log imposes no constraint — surfaces as missing_logs. Both
// counters ride the server's Stats op. The walchain analyzer proves the
// draw/read/append window statically, and the multi-writer crash torture
// (TestCrashTortureMultiWriter) proves end to end that keys whose columns
// span logs recover to exact applied states at every crash boundary, even
// with a whole log removed.
//
// Cache mode (internal/cache) makes the store the memcached-class server
// the paper benchmarks against (§1, §6): Config.MaxBytes bounds the
// accounted live bytes — per-worker cache-line-padded counters fed by the
// packed value sizes, one atomic add per put or remove — and an
// S3-FIFO-inspired policy (small probationary FIFO, main FIFO, ghost list
// of evicted key hashes) evicts cold keys from the maintenance loop, with
// over-budget writers throttled into helping (HelpEnforce) so the bound
// holds even when writers outrun the maintenance goroutine. The hot paths
// feed the policy without locks it could contend on: puts append admission
// events to per-worker double-buffered rings, gets store key hashes into
// per-worker lossy access rings. TTLs ride in the packed value header
// (value.BuildTTLAt): reads treat a lapsed value as absent immediately
// (lazy expiry) and an incremental background sweep reclaims it.
// Protocol v2 carries PutTTL and Touch (v1 semantics are untouched), and
// the Stats op reports bytes_live, evictions, expirations, and ghost_hits.
//
// Cache-mode persistence semantics: evictions and expirations are clean
// drops — they write no WAL remove — so a crash may replay a dropped key
// back (its put record is still in the log), which is correct for a cache:
// recovery replays, then re-enforces the byte bound before serving, and a
// replayed TTL value simply re-expires (the expiry is in the logged value,
// wal.OpPutTTL). Checkpoints skip expired entries, so once a checkpoint
// supersedes the logs a dropped key is gone for good. What cache mode never
// does is lose an acked write it did not drop — the eviction-enabled crash
// torture (TestCrashTortureEviction) proves that at every filesystem
// boundary, and the clean-drop path still lifts the remove floor under the
// border lock so a re-inserted key's versions stay above the dropped
// value's and replay order is preserved.
//
// The backend tier (internal/backend) turns cache mode into a CDN-style
// read-through front for a slow source of truth. Backend is a three-call
// seam (Load/Store/Delete); backend.Wrap decorates any implementation with
// per-attempt timeouts, bounded jittered retries, a concurrency limiter,
// and a circuit breaker, and backend.NewFile ships a vfs-backed reference
// implementation (-backend file:<dir> on the server). Session.GetOrLoad is
// the read surface: a resident hit costs nothing (allocation-free, pinned
// by test), a miss funnels into a per-key singleflight so a thundering
// herd of concurrent misses triggers exactly one backend load — 512
// racing misses, 1 load, 511 coalesced (BENCH_backend.json) — and
// authoritative misses are negative-cached so absent hot keys cannot herd
// either. Loaded values install through the ordinary put path, so they are
// logged, versioned, and cache-accounted like any put. Writes flow the
// other way through the bounded write-behind queue: eviction's clean drops
// and Remove's tombstones enqueue, an async drainer pushes them upstream,
// and an in-flight spill stays visible to loads so read-through can never
// resurrect a pre-spill value. When the backend dies the store degrades
// instead of hanging: the breaker fails misses fast, expired-but-resident
// values within Config.MaxStale are served marked stale (stale-if-error;
// the TTL sweep defers physically removing them for exactly this reserve),
// and OpGetOrLoad reports the distinction on the wire (StatusStale).
// Graceful shutdown drains in dependency order — stop accepting, flush the
// WAL, drain the write-behind queue, final checkpoint — and exits nonzero
// if any budget lapses.
//
// Cluster mode (internal/cluster) is the client-side sharding layer: a
// cluster.Cluster consistent-hashes keys across N servers (a deterministic
// virtual-node ring — FNV-1a finalized with splitmix64 — pinned by golden
// tests, because changing the hash is a resharding event) and speaks
// pipelined v2 to each through a small per-node connection pool.
// GetBatch/PutBatch split by owner shard, fan out concurrently, and merge
// replies in request order; a single-owner batch is forwarded verbatim, so
// a Cluster over one node is byte-identical to a plain client.Conn.
// Failure is the design center: per-node health follows the breaker
// pattern (consecutive transport failures trip a node Down, after which
// its shard fails fast with ErrNodeDown — no dial, no timeout, no parked
// goroutine — until a single probe loop's dial+ping heals it, with zero
// client restarts), Config.DialTimeout bounds connect+hello so a
// blackholed address cannot hang construction or recovery, optional
// hedged reads escape orphaned TCP flows by racing a fresh dial to the
// same owner after HedgeAfter, and optional ReadFailover trades strict
// shard ownership for availability by retrying idempotent reads once on
// the ring successor. internal/netfault is the matching TCP-proxy fault
// injector (latency, blackhole, refuse, freeze, truncate, reset, retarget,
// heal); the partition-torture harness drives a live workload over three
// proxied nodes through kill/partition/slow/heal schedules and asserts no
// acked write is lost, no reply comes from the wrong shard, dead-shard ops
// stay inside one timeout budget with bounded goroutines, and healed nodes
// rejoin — see BENCH_cluster.json for the fan-out and hedged-p99 numbers.
// masstree-client -addrs a,b,c routes the CLI through the same ring.
//
// Observability (internal/obs) makes the store explain itself without
// perturbing what it explains. Every timed stage — get/put/batch/scan/
// CAS/getorload server-side, WAL flush, checkpoint write, each recovery
// phase, backend loads, eviction passes, cluster per-node RPC — records
// into a log-bucketed latency histogram (64 power-of-two buckets; bucket b
// covers [2^b, 2^(b+1)) ns) whose record path is one bits.Len64 and two
// atomic adds into a per-worker cache-line-padded shard: ~14ns, zero
// allocations (//masstree:noalloc, enforced by the noalloc analyzer and the
// AllocsPerRun pins, which run with instrumentation armed — BENCH_obs.json
// measures the end-to-end overhead as noise). Snapshots merge shards
// lock-free and extract p50/p90/p99/p999. Alongside the histograms runs the
// flight recorder: fixed-size per-worker rings of binary trace events for
// internal transitions (breaker trips/heals, evictions, WAL flush retries
// and errors, checkpoint steps, recovery chain-rollbacks, node health
// changes), dumpable on demand — the torture harnesses dump it on first
// failure, so a failed crash image ships its own story. The data surfaces
// three ways, all rendered from the same snapshot so they cannot disagree:
// the wire Stats op gains lat_<stage>_count/_sum/_p50/_p90/_p99/_p999 and
// per-bucket lat_<stage>_b<i> keys (all base-10 integers — v1 clients that
// ParseInt every value keep working, pinned by stats_compat_test);
// cluster.StatsAggregate sums the bucket keys across nodes and re-derives
// the quantiles from the merged distribution (never averaging per-node
// quantiles, and labeling partial aggregates via stats_partial); and
// masstree-server's opt-in -admin listener serves /metrics (hand-rolled
// Prometheus text exposition), /varz (JSON with full histograms),
// /flightrecorder, and stdlib /debug/pprof — never on the data-plane port.
// masstree-client stats renders it grouped by subsystem, with -json for
// machines.
//
// Everything under wal and checkpoint reaches the disk through internal/vfs,
// an injectable filesystem seam. vfs.MemFS models crash consistency the way
// a conservative POSIX filesystem behaves (unsynced file data is lost;
// directory operations are volatile — and may survive in any subset — until
// the directory is fsynced), and vfs.Fault numbers every write, fsync,
// rename, create, and dir-sync as a crash boundary. The torture tests in
// internal/kvstore enumerate those boundaries during a put/checkpoint/put
// workload, kill the store at each one, recover from several legal crash
// images, and check the result against a model of acknowledged writes — no
// lost acks, no resurrections, exact per-key versions. New crash scenarios
// are written the same way: build a store on a Fault-wrapped MemFS, arm
// CrashAt(n), Crash(keep) into a disk image, reopen, and assert.
//
// The invariants those paragraphs lean on — locks released on every path,
// tree reads bracketed by epoch pins, hot paths allocation-free, scratch
// aliases never stored past reuse, atomic fields never touched plainly —
// are machine-checked. internal/analysis is a dependency-free
// go/analysis-style suite whose six passes (lockpair, epochguard, noalloc,
// scratchalias, atomicfield, walchain) verify them at build time; `go run
// ./cmd/masstree-lint ./...` must exit clean and CI enforces it. Contracts
// are declared where the code is:
//
//	//masstree:locked n        n is locked on entry and at every return
//	//masstree:unlocks n       n is locked on entry, released on every path
//	//masstree:returns-locked  the non-nil result is locked; nil-check it
//	//masstree:acquires n.h    this statement acquires n.h invisibly
//	//masstree:releases n.h    this statement releases n.h invisibly
//	//masstree:pinned          the caller holds an epoch pin across this call
//	//masstree:noalloc         steady state performs zero heap allocations
//	//masstree:scratch         this type hands out aliases of reusable memory
//
// Deliberate exceptions carry //lint:allow <analyzer> <reason> on the
// offending line or the line above; the reason is mandatory, and a bare
// allow is itself a finding. Each analyzer is backed by golden fixtures
// under its testdata/src (run with the ordinary go test).
//
// See DESIGN.md for the system inventory: the package map, the invariant
// catalog behind the analyzers, the numbered paper-to-Go substitutions,
// and the experiment index. Measured results live in the committed
// BENCH_*.json snapshots at the repository root (BENCH_pipeline.json,
// BENCH_writepath.json, BENCH_pipeline_v2.json, BENCH_recovery.json,
// BENCH_cache.json, BENCH_backend.json, BENCH_cluster.json,
// BENCH_replaychain.json, BENCH_obs.json — read-path, write-path,
// pipelining, restart, cache-mode, herd-coalescing, cluster
// fan-out/hedging, chained-WAL cost/recovery, and instrumentation-overhead
// numbers respectively). The implementation lives under
// internal/; runnable entry points are under cmd/ and examples/
// (examples/pipeline demonstrates the async client and CAS;
// examples/cachefront the bounded cache; examples/readthrough the backend
// tier under faults).
package repro
