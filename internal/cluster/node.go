package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
)

// Node health states, reported numerically in stats (node<i>_state) so
// pre-existing integer-parsing stats consumers keep working — the same
// rule breaker_state follows server-side. The state machine mirrors the
// backend breaker in internal/backend/wrap.go: Up≈closed, Down≈open,
// Probing≈half-open.
const (
	// NodeUp: operations route to the node normally.
	NodeUp = int32(0)
	// NodeDown: the node accumulated Config.NodeFailures consecutive
	// transport failures; operations fail fast with ErrNodeDown (no dial,
	// no timeout wait, no goroutine parked) until the cool-down lapses and
	// a probe succeeds.
	NodeDown = int32(1)
	// NodeProbing: the cool-down lapsed and the probe loop is testing the
	// node with a fresh dial + ping. Operations still fail fast — one
	// probe, not a thundering herd of retriers, decides recovery.
	NodeProbing = int32(2)
)

// ErrNodeDown is returned (wrapped with the node address) for operations
// against a node whose breaker is open. It is the fail-fast signal: the
// caller spent no timeout budget and parked no goroutine.
var ErrNodeDown = fmt.Errorf("cluster: node down")

// node is one cluster member as the client sees it: a stable address, a
// small pool of pipelined v2 connections, and a breaker-style health state
// fed by transport outcomes and the probe loop.
type node struct {
	addr string
	cfg  *Config
	idx  int           // node index in Config.Addrs order (stats, hist shard)
	rec  *obs.Recorder // cluster flight recorder; health transitions trace here

	state atomic.Int32

	mu        sync.Mutex
	conns     []*client.Conn // fixed-size pool; nil slots dial lazily
	next      int            // round-robin cursor over pool slots
	fails     int            // consecutive transport failures while Up
	downSince time.Time
	downUntil time.Time // earliest probe after a trip
	closed    bool

	trips atomic.Uint64 // times the node was marked Down
}

func newNode(addr string, cfg *Config) *node {
	return &node{addr: addr, cfg: cfg, conns: make([]*client.Conn, cfg.PoolSize)}
}

// dialOpts are the options every pooled connection is built with: the
// cluster's op timeout becomes the per-batch I/O deadline (a frozen node
// fails every in-flight op within budget) and the dial timeout bounds
// connect+hello (a blackholed address cannot hang pool fill or probing).
func (n *node) dialOpts() []client.ConnOption {
	opts := []client.ConnOption{client.WithDialTimeout(n.cfg.DialTimeout)}
	if n.cfg.OpTimeout > 0 {
		opts = append(opts, client.WithTimeout(n.cfg.OpTimeout))
	}
	if n.cfg.Window > 0 {
		opts = append(opts, client.WithWindow(n.cfg.Window))
	}
	return opts
}

// conn returns a healthy pooled connection (round-robin over the slots),
// dialing the slot lazily if empty. Fails fast with ErrNodeDown when the
// node is not Up.
func (n *node) conn() (*client.Conn, error) {
	if s := n.state.Load(); s != NodeUp {
		return nil, fmt.Errorf("%w (%s)", ErrNodeDown, n.addr)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("cluster: closed")
	}
	slot := n.next
	n.next = (slot + 1) % len(n.conns)
	c := n.conns[slot]
	n.mu.Unlock()
	if c != nil {
		return c, nil
	}
	// Dial outside the lock: a slow handshake must not serialize the pool.
	// Losing a fill race just closes the extra connection.
	c, err := client.DialConn(n.addr, n.dialOpts()...)
	if err != nil {
		n.feedback(nil, err)
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("cluster: closed")
	}
	if n.conns[slot] == nil {
		n.conns[slot] = c
	} else {
		old := c
		c = n.conns[slot]
		n.mu.Unlock()
		old.Close()
		return c, nil
	}
	n.mu.Unlock()
	return c, nil
}

// dialFresh opens a brand-new connection outside the pool — the hedged
// read's escape hatch from bad per-connection state (a frozen flow, a deep
// queue). Fails fast when the node is not Up.
func (n *node) dialFresh() (*client.Conn, error) {
	if n.state.Load() != NodeUp {
		return nil, fmt.Errorf("%w (%s)", ErrNodeDown, n.addr)
	}
	c, err := client.DialConn(n.addr, n.dialOpts()...)
	if err != nil {
		n.feedback(nil, err)
	}
	return c, err
}

// donate offers a fresh healthy connection to the pool; a full pool means
// it is simply closed. Called after a hedge win so the proven-good
// connection replaces whatever slot a timeout is about to vacate.
func (n *node) donate(c *client.Conn) {
	n.mu.Lock()
	if !n.closed {
		for i, pc := range n.conns {
			if pc == nil {
				n.conns[i] = c
				n.mu.Unlock()
				return
			}
		}
	}
	n.mu.Unlock()
	c.Close()
}

// feedback records one operation outcome against the node's health. A
// transport error discards the failed connection (its sticky error dooms
// every future batch on it anyway) and counts toward the trip threshold;
// success resets the streak. Status-level results (NotFound, Conflict,
// even StatusError) are not failures — the node answered.
func (n *node) feedback(c *client.Conn, err error) {
	if err == nil {
		n.mu.Lock()
		n.fails = 0
		n.mu.Unlock()
		return
	}
	var stale *client.Conn
	n.mu.Lock()
	if c != nil {
		for i, pc := range n.conns {
			if pc == c {
				n.conns[i] = nil
				stale = c
				break
			}
		}
	}
	tripped := false
	if n.state.Load() == NodeUp {
		n.fails++
		if n.fails >= n.cfg.NodeFailures {
			n.fails = 0
			n.downSince = time.Now()
			n.downUntil = n.downSince.Add(n.cfg.DownFor)
			n.state.Store(NodeDown)
			tripped = true
		}
	}
	n.mu.Unlock()
	if stale != nil {
		stale.Close()
	}
	if tripped {
		n.trips.Add(1)
		n.rec.Record(n.idx, obs.EvNodeDown, uint64(n.idx), n.trips.Load())
	}
}

// probe is the health loop's visit: for a Down node past its cool-down it
// dials fresh and pings (OpStats); success seeds the pool with the probe
// connection and restores Up, failure re-arms the cool-down. Returns true
// if the node transitioned back to Up.
func (n *node) probe() bool {
	n.mu.Lock()
	if n.closed || n.state.Load() != NodeDown || time.Now().Before(n.downUntil) {
		n.mu.Unlock()
		return false
	}
	n.state.Store(NodeProbing)
	n.mu.Unlock()
	n.rec.Record(n.idx, obs.EvNodeProbing, uint64(n.idx), n.trips.Load())

	c, err := client.DialConn(n.addr, n.dialOpts()...)
	if err == nil {
		_, err = c.Stats() // a full request round-trip, not just a handshake
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		if c != nil {
			c.Close()
		}
		n.state.Store(NodeDown)
		return false
	}
	if err != nil {
		if c != nil {
			c.Close()
		}
		n.downUntil = time.Now().Add(n.cfg.DownFor)
		n.state.Store(NodeDown)
		return false
	}
	// Recovered: the probe connection becomes pool slot 0 (unless racing
	// state already filled it, which cannot happen while !Up, so keep it).
	if n.conns[0] == nil {
		n.conns[0] = c
	} else {
		c.Close()
	}
	n.fails = 0
	n.state.Store(NodeUp)
	n.rec.Record(n.idx, obs.EvNodeUp, uint64(n.idx), n.trips.Load())
	return true
}

// close tears down the node's pool.
func (n *node) close() {
	n.mu.Lock()
	n.closed = true
	conns := n.conns
	n.conns = make([]*client.Conn, len(conns))
	n.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}
