package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/netfault"
)

// proxied wraps every test node in a netfault proxy; the cluster dials the
// proxies, so each node's network can be tortured independently.
func proxied(t *testing.T, nodes []testNode) ([]*netfault.Proxy, []string) {
	t.Helper()
	proxies := make([]*netfault.Proxy, len(nodes))
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		p, err := netfault.New(n.addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		proxies[i] = p
		addrs[i] = p.Addr()
	}
	return proxies, addrs
}

// TestDialTimeoutBlackhole pins the satellite fix: DialConn against an
// address that accepts the TCP handshake but never answers the hello (a
// blackholed proxy) must fail within the dial budget instead of hanging
// forever — without WithDialTimeout, cluster construction or a node
// reconnect would wedge on one dark address.
func TestDialTimeoutBlackhole(t *testing.T) {
	nodes := startNodes(t, 1)
	p, err := netfault.New(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Blackhole()

	start := time.Now()
	_, err = client.DialConn(p.Addr(), client.WithDialTimeout(150*time.Millisecond))
	el := time.Since(start)
	if err == nil {
		t.Fatal("DialConn succeeded against a blackhole")
	}
	if el > time.Second {
		t.Fatalf("DialConn took %v against a blackhole; the dial timeout did not cover the hello", el)
	}

	// Sanity: with the blackhole healed the same timeout dials fine.
	p.Heal()
	c, err := client.DialConn(p.Addr(), client.WithDialTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatalf("post-heal dial: %v", err)
	}
	c.Close()
}

// TestNodeTripFailFastHeal walks the breaker lifecycle end to end: a
// blackholed node costs timeout-budget failures until it trips Down, after
// which operations fail fast (ErrNodeDown, microseconds not seconds); when
// the network heals, the probe loop restores the node and operations
// succeed again — all without constructing a new Cluster.
func TestNodeTripFailFastHeal(t *testing.T) {
	nodes := startNodes(t, 1)
	proxies, addrs := proxied(t, nodes)
	cfg := fastConfig(addrs)
	cfg.OpTimeout = 300 * time.Millisecond
	cfg.DialTimeout = 200 * time.Millisecond
	cl := newCluster(t, cfg)

	key := []byte("k")
	if _, err := cl.PutSimple(key, []byte("v")); err != nil {
		t.Fatal(err)
	}

	proxies[0].Blackhole()
	// Ops fail with the timeout until NodeFailures consecutive failures
	// trip the breaker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, _, err := cl.Get(key, nil)
		if err == nil {
			t.Fatal("read succeeded through a blackhole")
		}
		if errors.Is(err, ErrNodeDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node never tripped Down")
		}
	}
	if st := cl.ClusterStats(); st.Nodes[0].State != NodeDown && st.Nodes[0].State != NodeProbing {
		t.Fatalf("node state %d after trip", st.Nodes[0].State)
	}

	// Tripped: failures must now be fail-fast, nowhere near OpTimeout.
	start := time.Now()
	const fastOps = 50
	for i := 0; i < fastOps; i++ {
		if _, _, _, err := cl.Get(key, nil); err == nil {
			t.Fatal("read succeeded while node down")
		}
	}
	if el := time.Since(start); el > cfg.OpTimeout {
		t.Fatalf("%d fail-fast ops took %v (> one OpTimeout %v): not failing fast",
			fastOps, el, cfg.OpTimeout)
	}

	// Heal the network; the probe loop must bring the node back Up and the
	// data written before the fault must still be there.
	proxies[0].Heal()
	deadline = time.Now().Add(10 * time.Second)
	for {
		vals, _, ok, err := cl.Get(key, nil)
		if err == nil {
			if !ok || string(vals[0]) != "v" {
				t.Fatalf("healed read lost data: %q %v", vals, ok)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never healed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := cl.ClusterStats(); st.Nodes[0].State != NodeUp || st.Nodes[0].Trips == 0 {
		t.Fatalf("post-heal state %d trips %d", st.Nodes[0].State, st.Nodes[0].Trips)
	}
}

// TestHedgedReadWins freezes the pool's established flows (the
// orphaned-flow fault: a transient partition strands live TCP connections
// while new dials route fine) and checks a hedged read escapes on a fresh
// connection in ~HedgeAfter instead of waiting out the full OpTimeout.
func TestHedgedReadWins(t *testing.T) {
	nodes := startNodes(t, 1)
	proxies, addrs := proxied(t, nodes)
	cfg := fastConfig(addrs)
	cfg.OpTimeout = 2 * time.Second
	cfg.HedgeAfter = 50 * time.Millisecond
	cfg.NodeFailures = 100 // the frozen flows' timeouts must not trip the node mid-test
	cl := newCluster(t, cfg)

	key := []byte("hot")
	if _, err := cl.PutSimple(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Warm both pool slots so the frozen set covers the whole pool.
	for i := 0; i < 2; i++ {
		if _, _, ok, err := cl.Get(key, nil); err != nil || !ok {
			t.Fatalf("warm get: %v %v", ok, err)
		}
	}

	proxies[0].FreezeConns()
	start := time.Now()
	vals, _, ok, err := cl.Get(key, nil)
	el := time.Since(start)
	if err != nil || !ok || string(vals[0]) != "v" {
		t.Fatalf("hedged get: %q %v %v", vals, ok, err)
	}
	if el >= cfg.OpTimeout {
		t.Fatalf("hedged read took %v — it waited out the frozen flow instead of hedging", el)
	}
	st := cl.ClusterStats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedges=%d hedge_wins=%d after a frozen-pool read", st.Hedges, st.HedgeWins)
	}
}

// TestReadFailover pins the retry-once-elsewhere policy: with the owner
// down, an idempotent read fails over to the ring successor and gets the
// successor's (degraded, possibly-miss) answer instead of an error; writes
// never fail over.
func TestReadFailover(t *testing.T) {
	nodes := startNodes(t, 3)
	proxies, addrs := proxied(t, nodes)
	cfg := fastConfig(addrs)
	cfg.OpTimeout = 300 * time.Millisecond
	cfg.DialTimeout = 200 * time.Millisecond
	cfg.ReadFailover = true
	cfg.DownFor = time.Hour // keep the owner down for the whole test
	cl := newCluster(t, cfg)

	// Find a key owned by node 0 and write it while healthy.
	var key []byte
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("fo-%d", i))
		if cl.Owner(k) == 0 {
			key = k
			break
		}
	}
	if _, err := cl.PutSimple(key, []byte("owner-copy")); err != nil {
		t.Fatal(err)
	}

	proxies[0].Blackhole()
	// Drive the owner to Down (the first reads burn the timeout).
	deadline := time.Now().Add(10 * time.Second)
	for cl.ClusterStats().Nodes[0].State != NodeDown {
		cl.Get(key, nil)
		if time.Now().After(deadline) {
			t.Fatal("owner never tripped")
		}
	}

	// With the owner down, the read fails over to the successor: no error,
	// but a miss — the successor does not hold the owner's keys. That is
	// the documented degraded contract.
	failoversBefore := cl.ClusterStats().Failovers
	vals, _, ok, err := cl.Get(key, nil)
	if err != nil {
		t.Fatalf("failover read errored: %v", err)
	}
	if ok {
		t.Fatalf("successor unexpectedly held the owner's key: %q", vals)
	}
	if got := cl.ClusterStats().Failovers; got <= failoversBefore {
		t.Fatalf("failovers did not advance: %d -> %d", failoversBefore, got)
	}

	// Writes must NOT fail over: a put for the dead owner's shard errors.
	if _, err := cl.PutSimple(key, []byte("must-not-land-elsewhere")); err == nil {
		t.Fatal("write to a dead shard succeeded — it must have landed off-owner")
	}
	// And indeed no other node may hold the key.
	for ni := 1; ni < 3; ni++ {
		sess := nodes[ni].store.Session(0)
		_, ok := sess.GetValue(key)
		sess.Close()
		if ok {
			t.Fatalf("write leaked onto node %d", ni)
		}
	}
}
