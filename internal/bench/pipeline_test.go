package bench

import (
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/server"
	"repro/internal/wire"
)

// startPipelineServer starts an in-memory store and TCP server preloaded
// with nkeys single-column values, returning a connected v1 client.
func startPipelineServer(b *testing.B, nkeys int) *client.Client {
	b.Helper()
	c, err := client.Dial(startPipelineServerAddr(b, nkeys))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

func pipelineKey(i int) []byte {
	return []byte(fmt.Sprintf("key%016d", i))
}

// BenchmarkServerRoundTrip measures one client round trip carrying a batch
// of requests, reporting allocs/op for the whole client+server pipeline.
// This is the end-to-end path the paper's system benchmarks exercise:
// batched queries over a long-lived TCP connection (§7).
func BenchmarkServerRoundTrip(b *testing.B) {
	const nkeys = 4096
	const batch = 64

	b.Run("get64", func(b *testing.B) {
		c := startPipelineServer(b, nkeys)
		reqs := make([]wire.Request, batch)
		for i := range reqs {
			reqs[i] = wire.Request{Op: wire.OpGet, Key: pipelineKey(i * 7 % nkeys)}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resps, err := c.DoReuse(reqs)
			if err != nil {
				b.Fatal(err)
			}
			if len(resps) != batch || resps[0].Status != wire.StatusOK {
				b.Fatalf("bad responses: %d status %d", len(resps), resps[0].Status)
			}
		}
		reportPerRequest(b, batch)
	})

	b.Run("mixed64", func(b *testing.B) {
		c := startPipelineServer(b, nkeys)
		reqs := make([]wire.Request, batch)
		for i := range reqs {
			if i%8 == 7 {
				reqs[i] = wire.Request{Op: wire.OpPut, Key: pipelineKey(i * 13 % nkeys),
					Puts: []wire.ColData{{Col: 0, Data: []byte("updated-column-data")}}}
			} else {
				reqs[i] = wire.Request{Op: wire.OpGet, Key: pipelineKey(i * 13 % nkeys)}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resps, err := c.DoReuse(reqs)
			if err != nil {
				b.Fatal(err)
			}
			if len(resps) != batch {
				b.Fatalf("got %d responses", len(resps))
			}
		}
		reportPerRequest(b, batch)
	})
}

// reportPerRequest adds a derived requests/s metric so the snapshot reads in
// the paper's units (the batch amortizes one round trip over `batch` ops).
func reportPerRequest(b *testing.B, batch int) {
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// startPipelineServerAddr starts the preloaded store and server, returning
// its address for benchmarks that dial their own connections.
func startPipelineServerAddr(b *testing.B, nkeys int) string {
	b.Helper()
	store, err := kvstore.Open(kvstore.Config{MaintainEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(store, 2)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	for i := 0; i < nkeys; i++ {
		store.PutSimple(0, pipelineKey(i), []byte("value-of-some-plausible-length"))
	}
	return srv.Addr().String()
}

// BenchmarkPipelinedRoundTrip compares the blocking v1 client (one frame in
// flight: the client idles during execution, the server idles during the
// client's turnaround) against the v2 pipelined Conn at several window
// depths on the same 64-get batch. Window 1 isolates the v2 framing cost;
// deeper windows overlap the client's encode, the server's three pipeline
// stages, and the wire, which is where the paper's "batched query support
// is vital" turns into sustained throughput rather than per-round-trip
// latency.
func BenchmarkPipelinedRoundTrip(b *testing.B) {
	const nkeys = 4096
	const batch = 64
	mkReqs := func() []wire.Request {
		reqs := make([]wire.Request, batch)
		for i := range reqs {
			reqs[i] = wire.Request{Op: wire.OpGet, Key: pipelineKey(i * 7 % nkeys)}
		}
		return reqs
	}

	b.Run("blocking-do", func(b *testing.B) {
		c := startPipelineServer(b, nkeys)
		reqs := mkReqs()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resps, err := c.DoReuse(reqs)
			if err != nil {
				b.Fatal(err)
			}
			if len(resps) != batch || resps[0].Status != wire.StatusOK {
				b.Fatalf("bad responses: %d status %d", len(resps), resps[0].Status)
			}
		}
		reportPerRequest(b, batch)
	})

	for _, window := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("conn-window%d", window), func(b *testing.B) {
			addr := startPipelineServerAddr(b, nkeys)
			c, err := client.DialConn(addr, client.WithWindow(window))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			reqs := mkReqs()
			wait := func(p *client.Pending) {
				resps, err := p.Wait()
				if err != nil {
					b.Fatal(err)
				}
				if len(resps) != batch || resps[0].Status != wire.StatusOK {
					b.Fatalf("bad responses: %d", len(resps))
				}
				p.Release()
			}
			// Keep `window` batches in flight: wait for the oldest before
			// issuing the next once the ring is full.
			ring := make([]*client.Pending, 0, window)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(ring) == window {
					wait(ring[0])
					ring = append(ring[:0], ring[1:]...)
				}
				ring = append(ring, c.Go(reqs))
			}
			for _, p := range ring {
				wait(p)
			}
			reportPerRequest(b, batch)
		})
	}
}
