// Cachefront: Masstree as a memcached-class bounded cache (§1, §6 compare
// against memcached; this is the store actually serving that role). The
// store runs in cache mode — Config.MaxBytes bounds the accounted live
// bytes — while an S3-FIFO-inspired policy evicts cold keys from the
// maintenance loop and TTLs expire stale entries, so a hot zipfian working
// set far larger than memory serves indefinitely at a bounded footprint.
//
//	go run ./examples/cachefront
//
// The same mode is available over the network: `masstree-server
// -max-bytes 67108864` plus client.Conn.PutTTL/Touch (protocol v2), with
// `masstree-client stats` showing bytes_live/evictions/ghost_hits.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/kvstore"
	"repro/internal/workload"
)

func main() {
	const (
		maxBytes = 32 << 20 // 32 MiB budget
		valSize  = 2048
		nkeys    = 50_000 // ~100 MiB footprint: 3x over budget
		ops      = 150_000
	)
	store, err := kvstore.Open(kvstore.Config{
		MaintainEvery: time.Millisecond, // fast ticks so eviction/sweep are visible
		MaxBytes:      maxBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	sess := store.Session(0)
	defer sess.Close()

	// A cache-aside loop: get; on miss, "recompute" and fill with a TTL so
	// stale entries age out even if they stay hot.
	val := make([]byte, valSize)
	ttl := uint64(time.Now().Add(time.Hour).UnixNano())
	zipf := workload.ZipfKeys(7, nkeys)
	hits, misses := 0, 0
	for i := 0; i < ops; i++ {
		k := zipf.Next()
		if _, ok := sess.Get(k, nil); ok {
			hits++
			continue
		}
		misses++
		sess.PutSimpleTTL(k, val, ttl)
	}

	st := store.CacheStats()
	fmt.Printf("served %d ops over a %.0f MiB working set in a %d MiB cache\n",
		ops, float64(nkeys*valSize)/(1<<20), maxBytes>>20)
	fmt.Printf("  hit rate     %.1f%% (%d hits / %d misses)\n",
		100*float64(hits)/float64(hits+misses), hits, misses)
	fmt.Printf("  bytes_live   %d (budget %d — never exceeded by more than one eviction batch)\n",
		st.BytesLive, int64(maxBytes))
	fmt.Printf("  evictions    %d (S3-FIFO: cold keys drop, the zipfian head stays)\n", st.Evictions)
	fmt.Printf("  ghost_hits   %d (recurring keys re-admitted straight to the main queue)\n", st.GhostHits)
	fmt.Printf("  keys resident %d of %d\n", store.Len(), nkeys)

	// TTLs expire without explicit deletes: a short-lived entry vanishes
	// from reads the moment its deadline passes (lazy expiry), and the
	// background sweep reclaims it for good.
	sess.PutSimpleTTL([]byte("session:42"), []byte("logged-in"), uint64(time.Now().Add(50*time.Millisecond).UnixNano()))
	if _, ok := sess.Get([]byte("session:42"), nil); !ok {
		log.Fatal("fresh TTL key should be visible")
	}
	time.Sleep(120 * time.Millisecond)
	if _, ok := sess.Get([]byte("session:42"), nil); ok {
		log.Fatal("expired TTL key should read as absent")
	}
	fmt.Println("session:42 expired on schedule; expirations =", store.CacheStats().Expirations)
}
