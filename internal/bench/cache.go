package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/workload"
)

// cacheValSize is the experiment's value payload: kilobyte-class objects,
// the memcached-style regime the cache mode targets.
const cacheValSize = 1024

// Cache measures bounded-memory serving under skew: a zipfian hot-key
// read-mostly workload with TTL refreshes, run twice over the same trace
// parameters — once unbounded (the store only grows) and once in cache mode
// with a byte budget a fraction of the working set. The cache-mode row must
// hold bytes_live at the bound (S3-FIFO evictions + TTL sweeps from the
// maintenance loop) while keeping the hot head of the distribution
// resident, which is what the hit rate reports.
func Cache(sc Scale) *Table {
	sc = sc.withDefaults()
	footprint := int64(sc.Keys) * cacheValSize
	budget := footprint / 4
	if budget > 64<<20 {
		budget = 64 << 20 // the acceptance configuration
	}
	if budget < 1<<18 {
		budget = 1 << 18
	}
	t := &Table{
		ID: "cache",
		Title: fmt.Sprintf("cache mode: zipfian hot-key TTL workload, %d keys x %dB (%.0f MiB footprint)",
			sc.Keys, cacheValSize, float64(footprint)/(1<<20)),
		Headers: []string{"config", "ops/s", "hit_rate", "bytes_peak", "evictions", "ghost_hits", "expirations"},
	}
	for _, mode := range []struct {
		name     string
		maxBytes int64
	}{
		{"unbounded", 0},
		{fmt.Sprintf("cache %dMiB", budget>>20), budget},
	} {
		row := runCacheWorkload(sc, mode.maxBytes)
		t.Rows = append(t.Rows, append([]string{mode.name}, row...))
	}
	t.Notes = append(t.Notes,
		"mix: 90% get (miss fills with a plain put), 10% put with a 1h TTL; zipfian theta 0.99",
		"bytes_peak is sampled bytes_live; the cache row must stay within one eviction batch of the budget")
	return t
}

func runCacheWorkload(sc Scale, maxBytes int64) []string {
	st, err := kvstore.Open(kvstore.Config{
		Workers:       sc.Workers,
		MaintainEvery: time.Millisecond,
		MaxBytes:      int(maxBytes),
	})
	if err != nil {
		panic(err)
	}
	defer st.Close()

	var hits, misses, peak atomic.Int64
	val := make([]byte, cacheValSize)
	perWorker := sc.Ops / sc.Workers
	if perWorker == 0 {
		perWorker = 1
	}
	future := uint64(time.Now().Add(time.Hour).UnixNano())
	gens := make([]workload.KeyGen, sc.Workers)
	for w := range gens {
		gens[w] = workload.ZipfKeys(int64(31+w), uint64(sc.Keys))
	}
	sessions := make([]*kvstore.Session, sc.Workers)
	for w := range sessions {
		sessions[w] = st.Session(w)
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	ops := measure(sc.Workers, perWorker, func(w, i int) {
		sess := sessions[w]
		k := gens[w].Next()
		if i%10 == 0 {
			sess.PutSimpleTTL(k, val, future)
		} else if _, ok := sess.Get(k, nil); ok {
			hits.Add(1)
		} else {
			misses.Add(1)
			sess.PutSimple(k, val)
		}
		if i%256 == 0 {
			if live := st.CacheStats().BytesLive; live > peak.Load() {
				peak.Store(live)
			}
		}
	})
	cs := st.CacheStats()
	if live := cs.BytesLive; live > peak.Load() {
		peak.Store(live)
	}
	total := hits.Load() + misses.Load()
	if total == 0 {
		total = 1
	}
	return []string{
		fmt.Sprintf("%.0f", ops),
		fmt.Sprintf("%.4f", float64(hits.Load())/float64(total)),
		fmt.Sprintf("%d", peak.Load()),
		fmt.Sprintf("%d", cs.Evictions),
		fmt.Sprintf("%d", cs.GhostHits),
		fmt.Sprintf("%d", cs.Expirations),
	}
}
