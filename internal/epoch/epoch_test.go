package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRetireRunsAfterTwoAdvances(t *testing.T) {
	var m Manager
	ran := false
	m.Retire(func() { ran = true })
	if !m.Advance() {
		t.Fatal("advance failed with no handles")
	}
	if ran {
		t.Fatal("callback ran after one advance")
	}
	if !m.Advance() {
		t.Fatal("second advance failed")
	}
	if !ran {
		t.Fatal("callback did not run after two advances")
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d", m.Pending())
	}
}

func TestActiveReaderPinsEpoch(t *testing.T) {
	var m Manager
	h := m.Register()
	h.Enter()
	e := m.Epoch()
	ran := false
	m.Retire(func() { ran = true })
	// The reader entered at the current epoch, so one advance succeeds...
	if !m.Advance() {
		t.Fatal("first advance should succeed (reader is current)")
	}
	// ...but now the reader's local epoch is stale and pins further advances.
	if m.Advance() {
		t.Fatal("advance should fail with a stale active reader")
	}
	if ran {
		t.Fatal("callback ran while a reader could still hold references")
	}
	h.Exit()
	if !m.Advance() {
		t.Fatal("advance should succeed after reader exit")
	}
	if !ran {
		t.Fatal("callback should have run")
	}
	if m.Epoch() < e+2 {
		t.Fatalf("epoch did not advance: %d -> %d", e, m.Epoch())
	}
}

func TestBarrierDrains(t *testing.T) {
	var m Manager
	var n atomic.Int32
	for i := 0; i < 10; i++ {
		m.Retire(func() { n.Add(1) })
	}
	m.Barrier()
	if n.Load() != 10 {
		t.Fatalf("ran %d callbacks, want 10", n.Load())
	}
}

func TestUnregister(t *testing.T) {
	var m Manager
	h := m.Register()
	h.Enter()
	m.Advance() // h now stale
	if m.Advance() {
		t.Fatal("stale handle should pin")
	}
	m.Unregister(h)
	if !m.Advance() {
		t.Fatal("unregistered handle should not pin")
	}
}

// TestConcurrentReadersAndReclaim runs readers entering/exiting while a
// reclaimer retires callbacks and advances; all callbacks must eventually
// run and none may run while its retire-epoch readers are still inside.
func TestConcurrentReadersAndReclaim(t *testing.T) {
	var m Manager
	const readers = 4
	var wg sync.WaitGroup
	var stop atomic.Bool
	var inside atomic.Int64 // readers currently in a critical section
	var violations atomic.Int64

	for r := 0; r < readers; r++ {
		h := m.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				h.Enter()
				inside.Add(1)
				inside.Add(-1)
				h.Exit()
			}
		}()
	}

	var retired, ran atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			m.Retire(func() { ran.Add(1) })
			retired.Add(1)
			m.Advance()
		}
		stop.Store(true)
	}()
	wg.Wait()
	m.Barrier()
	if ran.Load() != retired.Load() {
		t.Fatalf("ran %d of %d retired callbacks", ran.Load(), retired.Load())
	}
	if violations.Load() != 0 {
		t.Fatal("epoch violation")
	}
}

func TestEpochStartsAtOne(t *testing.T) {
	var m Manager
	h := m.Register()
	h.Enter()
	if got := m.Epoch(); got == 0 {
		t.Fatal("epoch should initialize on first use")
	}
	h.Exit()
}
