package occ

import (
	"sync"
	"testing"
)

func TestBits(t *testing.T) {
	var v Version
	v.Init(BorderBit | RootBit)
	s := v.Load()
	if !Border(s) || !Root(s) || Locked(s) || Deleted(s) {
		t.Fatalf("bits wrong: %#x", s)
	}
	v.Lock()
	if !Locked(v.Load()) {
		t.Fatal("not locked")
	}
	v.MarkDeleted()
	v.Unlock()
	if !Deleted(v.Load()) || Locked(v.Load()) {
		t.Fatal("deleted/unlock wrong")
	}
}

func TestCounters(t *testing.T) {
	var v Version
	v0 := v.Load()
	v.Lock()
	v.Unlock()
	if Changed(v0, v.Load()) {
		t.Fatal("clean lock/unlock changed version")
	}
	v.Lock()
	v.MarkInserting()
	v.Unlock()
	v1 := v.Load()
	if !Changed(v0, v1) {
		t.Fatal("vinsert bump not visible")
	}
	if VSplit(v1) != VSplit(v0) {
		t.Fatal("vinsert leaked into vsplit")
	}
	v.Lock()
	v.MarkSplitting()
	v.Unlock()
	if VSplit(v.Load()) == VSplit(v1) {
		t.Fatal("vsplit not bumped")
	}
}

func TestStableWaitsForDirty(t *testing.T) {
	var v Version
	v.Lock()
	v.MarkSplitting()
	done := make(chan uint64)
	go func() { done <- v.Stable() }()
	v.Unlock()
	if s := <-done; s&DirtyMask != 0 {
		t.Fatal("stable returned dirty")
	}
}

func TestMutualExclusion(t *testing.T) {
	var v Version
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v.Lock()
				counter++
				v.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 16000 {
		t.Fatalf("counter %d: lock not mutually exclusive", counter)
	}
}
