// Package scratchalias flags byte slices that alias a reusable scratch
// buffer — a type annotated //masstree:scratch, like wire.DecodeBuf,
// wire.RespDecodeBuf, or the server's connScratch — being stored somewhere
// that outlives the buffer's next reuse. Decoded requests, responses, and
// their Key/Data fields alias the connection's arenas and are valid only
// until the next decode; stashing one in a struct field, global, map, or
// channel is the use-after-reuse bug class PR 7's deep clones guard against.
//
// The analysis is an intra-procedural taint pass. Sources: calls that take
// or run on a scratch-typed value, and field reads of one. Taint propagates
// through assignment, indexing, slicing, field access, composite literals,
// and non-spread append. Sanitizers — the documented copy idioms — clear
// it: append(dst, src...) over bytes, bytes.Clone, string conversion, and
// copy. Sinks: assignments into struct fields (except the scratch's own),
// globals, field-rooted map or slice elements, and channel sends.
package scratchalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the scratchalias pass.
var Analyzer = &analysis.Analyzer{
	Name: "scratchalias",
	Doc:  "flag values aliasing //masstree:scratch buffers stored past the buffer's reuse",
	Run:  run,
}

func run(pass *analysis.Pass) {
	scratch := scratchTypes(pass.All)
	if len(scratch) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, scratch, fd)
			}
		}
	}
}

// scratchTypes collects every //masstree:scratch-annotated named type in
// the load.
func scratchTypes(pkgs []*analysis.Package) map[*types.TypeName]bool {
	set := map[*types.TypeName]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !analysis.IsScratchType(gd, ts) {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						set[tn] = true
					}
				}
			}
		}
	}
	return set
}

type checker struct {
	pass     *analysis.Pass
	info     *types.Info
	scratch  map[*types.TypeName]bool
	tainted  map[*types.Var]bool
	ptrParam map[*types.Var]bool
}

func checkFunc(pass *analysis.Pass, scratch map[*types.TypeName]bool, fd *ast.FuncDecl) {
	c := &checker{pass: pass, info: pass.Pkg.Info, scratch: scratch,
		tainted: map[*types.Var]bool{}, ptrParam: map[*types.Var]bool{}}

	// Pointer-typed parameters (including the receiver): a store through one
	// lands in caller-owned memory, so lifetime responsibility sits at the
	// call site, not here. The caller's own stores are still checked.
	collectPtrParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := c.info.Defs[name].(*types.Var); ok {
					if _, ptr := v.Type().Underlying().(*types.Pointer); ptr {
						c.ptrParam[v] = true
					}
				}
			}
		}
	}
	collectPtrParams(fd.Recv)
	collectPtrParams(fd.Type.Params)

	// Fixpoint over assignments: a variable assigned a tainted value is
	// tainted (flow-insensitive; later clean reassignments do not untaint,
	// which errs on the side of reporting).
	for {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range a.Lhs {
				id := rootIdent(lhs) // p.Key = ... taints the local p
				if id == nil || id.Name == "_" {
					continue
				}
				v := c.localVar(id)
				if v == nil || c.tainted[v] {
					continue
				}
				var rhs ast.Expr
				if len(a.Lhs) == len(a.Rhs) {
					rhs = a.Rhs[i]
				} else if len(a.Rhs) == 1 {
					rhs = a.Rhs[0] // multi-value call: taint flows to all
				}
				if rhs != nil && c.taintedExpr(rhs) {
					c.tainted[v] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	// Sinks.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					rhs = n.Rhs[i]
				}
				if rhs == nil || !c.canAlias(rhs) || !c.taintedExpr(rhs) {
					continue
				}
				if c.scratchValued(rhs) {
					continue // the scratch object itself (pool/free-list management)
				}
				if sink, what := c.sinkLHS(lhs); sink {
					c.pass.Reportf(rhs.Pos(), "stores a slice aliasing a scratch buffer into %s; copy it first (append(dst, v...) or bytes.Clone)", what)
				}
			}
		case *ast.SendStmt:
			if c.canAlias(n.Value) && !c.scratchValued(n.Value) && c.taintedExpr(n.Value) {
				c.pass.Reportf(n.Value.Pos(), "sends a slice aliasing a scratch buffer on a channel; copy it first (append(dst, v...) or bytes.Clone)")
			}
		}
		return true
	})
}

// localVar resolves an identifier to a function-local variable.
func (c *checker) localVar(id *ast.Ident) *types.Var {
	if v, ok := c.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.info.Uses[id].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
		return v
	}
	return nil
}

// sinkLHS reports whether assigning to lhs stores the value beyond the
// current call frame: struct fields (other than the scratch's own),
// globals, and elements of field-rooted slices or maps.
func (c *checker) sinkLHS(lhs ast.Expr) (bool, string) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if v, ok := c.info.Uses[l.Sel].(*types.Var); ok && v.IsField() {
			if c.scratchExpr(l.X) {
				return false, "" // the scratch's own arena fields
			}
			if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
				if pv, ok := c.info.Uses[id].(*types.Var); ok && c.ptrParam[pv] {
					return false, "" // store through a pointer parameter: caller-owned
				}
				if v := c.localVar(id); v != nil {
					if _, ptr := v.Type().Underlying().(*types.Pointer); !ptr {
						return false, "" // field of a frame-local struct: taints the local instead
					}
				}
			}
			return true, "field " + l.Sel.Name
		}
		if v, ok := c.info.Uses[l.Sel].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			return true, "package variable " + l.Sel.Name
		}
	case *ast.IndexExpr:
		if sink, what := c.sinkLHS(l.X); sink {
			return true, "element of " + what
		}
		if _, ok := c.info.Types[l.X].Type.Underlying().(*types.Map); ok {
			return true, "map"
		}
	case *ast.Ident:
		if v, ok := c.info.Uses[l].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true, "package variable " + v.Name()
		}
	case *ast.StarExpr:
		return c.sinkLHS(l.X)
	}
	return false, ""
}

// taintedExpr reports whether the expression's value may alias a scratch
// buffer.
func (c *checker) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := c.info.Uses[e].(*types.Var); ok {
			return c.tainted[v]
		}
	case *ast.IndexExpr:
		return c.taintedExpr(e.X)
	case *ast.SliceExpr:
		return c.taintedExpr(e.X)
	case *ast.StarExpr:
		return c.taintedExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.taintedExpr(e.X)
		}
	case *ast.SelectorExpr:
		// A field of a scratch value aliases its arenas; a field of a
		// tainted value (req.Key) carries the taint.
		if c.scratchExpr(e.X) {
			return true
		}
		return c.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.taintedExpr(el) {
				return true
			}
		}
	case *ast.CallExpr:
		return c.taintedCall(e)
	}
	return false
}

func (c *checker) taintedCall(call *ast.CallExpr) bool {
	// Builtins and sanitizers.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := c.info.Uses[id].(*types.Builtin); builtin {
			if id.Name == "append" {
				if call.Ellipsis != token.NoPos {
					return false // append(dst, src...): copies the bytes
				}
				for _, arg := range call.Args {
					if c.taintedExpr(arg) {
						return true // append(dst, slice): stores the alias
					}
				}
			}
			return false
		}
	}
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		if isString(tv.Type) {
			return false // string(b): copies
		}
		return len(call.Args) == 1 && c.taintedExpr(call.Args[0])
	}
	if callee := analysis.CalleeOf(c.info, call); callee != nil {
		if callee.Pkg() != nil && callee.Pkg().Path() == "bytes" && callee.Name() == "Clone" {
			return false
		}
		// Methods on a scratch value and calls handed one return aliases.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.scratchExpr(sel.X) {
			return true
		}
	}
	for _, arg := range call.Args {
		if c.scratchExpr(arg) {
			return true
		}
	}
	return false
}

// rootIdent walks field/index/star/paren chains to the base identifier, so
// an assignment like p.Key = v or p[i].Key = v resolves to p.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// scratchValued reports whether e's value is a scratch object itself (or a
// pointer or slice of them) rather than an alias into its arenas. Storing
// the object — a free list, a pool — is lifecycle management, not a leak.
func (c *checker) scratchValued(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	return ok && c.scratch[n.Obj()]
}

// scratchExpr reports whether the expression's type is (or points to) a
// scratch-annotated type.
func (c *checker) scratchExpr(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return c.scratchType(tv.Type)
}

func (c *checker) scratchType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return c.scratch[n.Obj()]
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// canAlias reports whether a value of e's type can hold a reference into a
// scratch buffer. Scalars extracted from a tainted slice (b[0], a decoded
// length) and strings (conversion copies; no safe way to alias bytes) carry
// no alias, nor do error values by convention (wrapping copies or formats).
func (c *checker) canAlias(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	if !ok || tv.Type == nil {
		return true // unknown: stay conservative and report
	}
	return typeCanAlias(tv.Type, 0)
}

func typeCanAlias(t types.Type, depth int) bool {
	if depth > 8 {
		return true
	}
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeCanAlias(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return typeCanAlias(u.Elem(), depth+1)
	}
	return true
}
