package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/value"
)

// TestGrowShrinkWaves repeatedly grows the tree (forcing splits) and then
// drains it (forcing node deletions and layer collapses) from multiple
// goroutines, the hostile interleaving for split/remove coordination.
func TestGrowShrinkWaves(t *testing.T) {
	tr := New()
	const workers = 4
	const span = 1200
	for wave := 0; wave < 3; wave++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < span; i += workers {
					k := []byte(fmt.Sprintf("wave-%06d-suffix", i))
					tr.Put(k, value.New(k))
				}
			}(w)
		}
		wg.Wait()
		if tr.Len() != span {
			t.Fatalf("wave %d: Len=%d want %d", wave, tr.Len(), span)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < span; i += workers {
					k := []byte(fmt.Sprintf("wave-%06d-suffix", i))
					if _, ok := tr.Remove(k); !ok {
						panic(fmt.Sprintf("wave remove lost %q", k))
					}
				}
			}(w)
		}
		wg.Wait()
		if tr.Len() != 0 {
			t.Fatalf("wave %d: Len=%d after drain", wave, tr.Len())
		}
		tr.Maintain()
		checkInvariants(t, tr)
	}
	if s := tr.Stats(); s.Splits == 0 || s.NodeDeletes == 0 {
		t.Fatalf("waves did not exercise splits+deletes: %+v", s)
	}
}

// TestConcurrentSplitRemoveSameRegion focuses splits and removes on one
// narrow key region so they collide on the same border nodes.
func TestConcurrentSplitRemoveSameRegion(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 300; round++ {
				base := (w*300 + round) % 60
				for i := 0; i < 20; i++ {
					k := []byte(fmt.Sprintf("R%02d-%02d", base, i))
					tr.Put(k, value.New(k))
				}
				for i := 0; i < 20; i++ {
					k := []byte(fmt.Sprintf("R%02d-%02d", base, i))
					tr.Remove(k)
				}
			}
		}(w)
	}
	wg.Wait()
	tr.Maintain()
	checkInvariants(t, tr)
}
