package kvstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/value"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// snapshotState captures key -> (version, joined columns) from a store.
func snapshotState(s *Store) map[string]kvState {
	out := map[string]kvState{}
	s.Tree().Scan(nil, func(k []byte, v *value.Value) bool {
		out[string(k)] = kvState{ver: v.Version(), data: joinCols(v.Cols())}
		return true
	})
	return out
}

func diffStates(t *testing.T, label string, want, got map[string]kvState) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d keys, want %d", label, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: key %q missing", label, k)
		}
		if g.ver != w.ver {
			t.Fatalf("%s: key %q version %d, want %d", label, k, g.ver, w.ver)
		}
		if g.data != w.data {
			t.Fatalf("%s: key %q = %q, want %q", label, k, g.data, w.data)
		}
	}
}

// TestMultiPartEqualsSinglePartQuiesced: on a quiesced store, a T-part
// checkpoint and a T=1 checkpoint recover byte-identical state — same
// keys, same column values, same versions.
func TestMultiPartEqualsSinglePartQuiesced(t *testing.T) {
	mem := vfs.NewMemFS()
	open := func() *Store {
		s, err := Open(Config{Dir: tortureDir, Workers: 2, FS: mem, FlushInterval: time.Hour, MaintainEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("key-%06d", rng.Intn(3000))
		if i%5 == 0 {
			key = fmt.Sprintf("deep/layered/key/prefix-%06d", rng.Intn(1000))
		}
		puts := []value.ColPut{{Col: rng.Intn(3), Data: []byte(fmt.Sprintf("v%d", i))}}
		s.Put(i%2, []byte(key), puts)
	}
	want := snapshotState(s)

	if _, n, err := s.CheckpointN(4); err != nil || n != len(want) {
		t.Fatalf("4-part checkpoint: n=%d err=%v (want %d entries)", n, err, len(want))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover from the 4-part checkpoint (plus empty logs).
	r1 := open()
	diffStates(t, "recovered from 4 parts", want, snapshotState(r1))

	// Checkpoint the recovered state with a single part and recover again.
	if _, n, err := r1.CheckpointN(1); err != nil || n != len(want) {
		t.Fatalf("1-part checkpoint: n=%d err=%v", n, err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := open()
	defer r2.Close()
	diffStates(t, "recovered from 1 part", want, snapshotState(r2))
}

// TestMultiPartCheckpointUnderConcurrentWrites: the fuzzy multi-part scan
// runs while writers mutate the tree; checkpoint + log replay must still
// recover exactly the final pre-shutdown state, for T=4 and T=1 alike.
func TestMultiPartCheckpointUnderConcurrentWrites(t *testing.T) {
	for _, parts := range []int{1, 4} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			mem := vfs.NewMemFS()
			cfg := Config{Dir: tortureDir, Workers: 3, FS: mem, FlushInterval: 2 * time.Millisecond, MaintainEvery: -1}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				s.PutSimple(i%3, []byte(fmt.Sprintf("pre-%05d", i)), []byte("seed"))
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := []byte(fmt.Sprintf("pre-%05d", rng.Intn(2500)))
						if i%7 == 0 {
							s.Remove(w, k)
						} else {
							s.PutSimple(w, k, []byte(fmt.Sprintf("w%d-%d", w, i)))
						}
					}
				}(w)
			}
			// Two fuzzy checkpoints while the writers hammer.
			for c := 0; c < 2; c++ {
				if _, _, err := s.CheckpointN(parts); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			wg.Wait()
			want := snapshotState(s)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			r, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			diffStates(t, "fuzzy checkpoint + log replay", want, snapshotState(r))
		})
	}
}

// TestFuzzyCheckpointGroundTruth partitions the key space per worker so
// every key has exactly one writer, making each key's final state exactly
// the last operation its writer issued — an independent ground truth the
// live tree and the recovered tree are both checked against, with fuzzy
// multi-part checkpoints racing the writers. This caught two real bugs:
// core.remove not dirtying the node version (scans emitted removed keys
// into checkpoints), and replay resurrecting puts whose superseding
// remove's log record had been reclaimed by a checkpoint.
func TestFuzzyCheckpointGroundTruth(t *testing.T) {
	type lastOp struct {
		present bool
		ver     uint64
		data    string
	}
	for round := 0; round < 5; round++ {
		mem := vfs.NewMemFS()
		cfg := Config{Dir: tortureDir, Workers: 3, FS: mem, FlushInterval: 2 * time.Millisecond, MaintainEvery: -1}
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			s.PutSimple(i%3, []byte(fmt.Sprintf("pre-%05d", i)), []byte("seed"))
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		truth := make([]map[string]lastOp, 3)
		for w := 0; w < 3; w++ {
			truth[w] = map[string]lastOp{}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*3 + w)))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := fmt.Sprintf("pre-%05d", w*1000+rng.Intn(800))
					if i%7 == 0 {
						if s.Remove(w, []byte(k)) {
							truth[w][k] = lastOp{}
						}
					} else {
						d := fmt.Sprintf("w%d-%d", w, i)
						ver := s.PutSimple(w, []byte(k), []byte(d))
						truth[w][k] = lastOp{present: true, ver: ver, data: d}
					}
				}
			}(w)
		}
		for c := 0; c < 2; c++ {
			if _, _, err := s.CheckpointN(4); err != nil {
				t.Fatal(err)
			}
		}
		close(stop)
		wg.Wait()

		check := func(label string, got map[string]kvState) {
			for w := 0; w < 3; w++ {
				for k, op := range truth[w] {
					g, ok := got[k]
					switch {
					case op.present && (!ok || g.ver != op.ver || g.data != op.data):
						t.Fatalf("round %d %s: key %q got %+v want %+v", round, label, k, g, op)
					case !op.present && ok:
						t.Fatalf("round %d %s: removed key %q present at ver %d", round, label, k, g.ver)
					}
				}
			}
		}
		check("live", snapshotState(s))
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		check("recovered", snapshotState(r))
		r.Close()
	}
}

// TestLegacyCheckpointReplaysBelowItsTimestamp: the replay-skip rule
// (drop records with ts <= checkpoint timestamp) is only sound for
// manifest-format checkpoints, whose writer synchronized the clocks and
// drained the draw-to-append windows first. A legacy single-file
// checkpoint from an earlier incarnation could have missed a write whose
// lagging-shard timestamp is below the checkpoint's — that record must
// still replay under the version guard, or upgrading loses it.
func TestLegacyCheckpointReplaysBelowItsTimestamp(t *testing.T) {
	mem := vfs.NewMemFS()
	if err := mem.MkdirAll(tortureDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A log whose only record carries ts=90 — below the checkpoint's 100.
	set, err := wal.OpenSetFS(mem, tortureDir, 1, 1, false, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	set.Writer(0).AppendPut(90, 0, []byte("lagged"), []value.ColPut{{Col: 0, Data: []byte("v90")}})
	set.Writer(0).AppendMark(100)
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	// A legacy checkpoint at ts=100 that does NOT contain the key (the old
	// fuzzy scan missed it).
	other := checkpoint.Entry{Key: []byte("other"), Value: value.NewAt(50, []byte("x"))}
	emitted := false
	if _, _, err := checkpoint.WriteFS(mem, tortureDir, 100, func() (checkpoint.Entry, bool) {
		if emitted {
			return checkpoint.Entry{}, false
		}
		emitted = true
		return other, true
	}); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Config{Dir: tortureDir, Workers: 1, FS: mem, MaintainEvery: -1, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, ok := r.Get([]byte("lagged"), nil)
	if !ok || string(got[0]) != "v90" {
		t.Fatalf("record below a legacy checkpoint's timestamp not replayed: %q, %v", got, ok)
	}
}

// TestPartitionBoundsDisjointCover: the sampled range bounds are strictly
// increasing, so the part scans are disjoint and cover the key space, and
// a checkpoint written that way holds each key exactly once.
func TestPartitionBoundsDisjointCover(t *testing.T) {
	mem := vfs.NewMemFS()
	s, err := Open(Config{Dir: tortureDir, Workers: 1, FS: mem, FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("%05d", i)), []byte("x"))
	}
	bounds := s.partitionBounds(8)
	if len(bounds) != 7 {
		t.Fatalf("got %d bounds, want 7", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if string(bounds[i-1]) >= string(bounds[i]) {
			t.Fatalf("bounds not strictly increasing: %q >= %q", bounds[i-1], bounds[i])
		}
	}
	if _, n, err := s.Checkpoint(); err != nil || n != 4096 {
		t.Fatalf("checkpoint wrote %d entries, err %v; want 4096 (each key exactly once)", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Config{Dir: tortureDir, Workers: 1, FS: mem, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 4096 {
		t.Fatalf("recovered %d keys, want 4096", r.Len())
	}
}
