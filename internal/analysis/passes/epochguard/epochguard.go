// Package epochguard verifies that every core.Tree read or scan reachable
// from the kvstore is bracketed by an epoch pin (Handle.Enter/Exit). The
// tree's optimistic readers dereference nodes that writers may retire; the
// epoch pin is what keeps retired memory alive, so an unpinned read is a
// use-after-reclaim waiting for the right interleaving.
//
// The analysis runs a forward dataflow over each function's CFG with a
// may-be-unpinned state. Handle.Enter() pins, Handle.Exit() unpins, and a
// deferred Exit is correctly treated as running at return, not at the defer
// statement. Functions annotated //masstree:pinned start pinned — their
// contract is that the caller holds the pin — and calls to pinned-annotated
// functions from possibly-unpinned states are themselves flagged, which
// makes the contract transitive.
//
// Tree reads are method calls named Get, GetBatch, GetBatchInto, Scan,
// ScanInto, or GetRange on a type named Tree; pins are Enter/Exit on a type
// named Handle. Function literals are not analyzed (they run at an unknown
// time); tree reads inside them must live in a named, annotated function.
package epochguard

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the epochguard pass.
var Analyzer = &analysis.Analyzer{
	Name:     "epochguard",
	Doc:      "check that core.Tree reads are bracketed by an epoch pin (Handle.Enter/Exit)",
	Packages: []string{"internal/kvstore"},
	Run:      run,
}

var treeReads = map[string]bool{
	"Get": true, "GetBatch": true, "GetBatchInto": true,
	"Scan": true, "ScanInto": true, "GetRange": true,
}

func run(pass *analysis.Pass) {
	decls := analysis.FuncDecls(pass.All)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeFunc(pass, fd, decls)
		}
	}
}

// state is the set of pin conditions a path may be in.
type state struct{ pinned, unpinned bool }

func (s state) union(o state) state {
	return state{s.pinned || o.pinned, s.unpinned || o.unpinned}
}

func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) {
	info := pass.Pkg.Info
	entry := state{unpinned: true}
	if analysis.FuncFactsOf(fd).Pinned {
		entry = state{pinned: true}
	}

	g := cfg.New(fd.Body, func(call *ast.CallExpr) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		_, builtin := info.Uses[id].(*types.Builtin)
		return builtin && id.Name == "panic"
	})

	in := make([]state, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	in[g.Entry.Index], seen[g.Entry.Index] = entry, true
	reported := map[ast.Node]bool{}

	work := []*cfg.Block{g.Entry}
	queued := map[int]bool{g.Entry.Index: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		s := in[b.Index]
		for _, n := range b.Nodes {
			s = transfer(pass, info, decls, reported, s, n)
		}
		for _, e := range b.Succs {
			merged := s
			if seen[e.To.Index] {
				merged = in[e.To.Index].union(s)
			}
			if merged != in[e.To.Index] || !seen[e.To.Index] {
				in[e.To.Index], seen[e.To.Index] = merged, true
				if !queued[e.To.Index] {
					queued[e.To.Index] = true
					work = append(work, e.To)
				}
			}
		}
	}
}

func transfer(pass *analysis.Pass, info *types.Info, decls map[*types.Func]*ast.FuncDecl, reported map[ast.Node]bool, s state, node ast.Node) state {
	if _, ok := node.(*ast.DeferStmt); ok {
		return s // deferred Enter/Exit runs at return, not here
	}
	var calls []*ast.CallExpr
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	for _, call := range calls {
		sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		callee := analysis.CalleeOf(info, call)
		if sel != nil && callee != nil && callee.Signature().Recv() != nil {
			recv := namedRecvName(callee)
			switch {
			case recv == "Handle" && sel.Sel.Name == "Enter":
				s = state{pinned: true}
				continue
			case recv == "Handle" && sel.Sel.Name == "Exit":
				s = state{unpinned: true}
				continue
			case recv == "Tree" && treeReads[sel.Sel.Name]:
				if s.unpinned && !reported[call] {
					reported[call] = true
					pass.Reportf(call.Pos(), "tree read %s.%s outside an epoch pin (Handle.Enter)", exprName(sel.X), sel.Sel.Name)
				}
				continue
			}
		}
		if callee != nil && analysis.FuncFactsOf(decls[callee]).Pinned {
			if s.unpinned && !reported[call] {
				reported[call] = true
				pass.Reportf(call.Pos(), "call to %s (masstree:pinned) without an epoch pin", callee.Name())
			}
		}
	}
	return s
}

// namedRecvName returns the name of a method's receiver's named type.
func namedRecvName(fn *types.Func) string {
	recv := fn.Signature().Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	}
	return "tree"
}
