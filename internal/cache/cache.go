// Package cache is the kvstore's cache mode: memory accounting, an
// S3-FIFO-inspired eviction policy, and the hot-path feeds that keep both
// off the store's put/get critical sections.
//
// The paper pitches Masstree as memcached-class storage (§1, §6 benchmarks
// against memcached), but a store that can only grow cannot serve a cache
// workload. This package bounds it. Three pieces, each designed so the
// store's zero-allocation hot paths stay zero-allocation:
//
// Accounting: per-worker cache-line-padded byte counters fed by the packed
// value sizes (value.Value.Size). A put or remove costs exactly one atomic
// add on the worker's own shard; the live total is summed only by the
// maintenance loop, stats, and an occasional overshoot probe.
//
// Admission and access feeds: the policy structures are owned exclusively
// by the store's maintenance goroutine, so the hot paths never lock them.
// Puts record (hash, key, size) events into per-worker double-buffered
// admission rings (a short per-worker mutex held only to append into a
// reused arena — amortized zero allocations); gets record key hashes into
// per-worker lossy access rings (one atomic add + one atomic store, no
// lock at all, overwrites under pressure are deliberate). The maintenance
// loop drains both and applies them to the policy.
//
// Eviction: S3-FIFO (Yang et al., "FIFO queues are all you need for cache
// eviction", adapted from the sfcache exemplar): a small probationary FIFO
// (~10% of the byte budget), a main FIFO, and a ghost list of recently
// evicted key hashes. New keys enter small; a key evicted from small whose
// hash is still in ghost re-enters directly into main (one cheap second
// chance that makes the policy scan-resistant — a burst of one-touch keys
// washes through small without displacing the hot main set). Eviction
// decisions are made here; the actual removal goes through the store's
// border-lock remove path via a callback, as a clean drop: no WAL record
// is written, so a crash may replay an evicted key back, and recovery
// re-enforces the bound (see kvstore's cache-mode documentation).
package cache

import (
	"sync"
	"sync/atomic"
)

// Hash returns the policy's 64-bit key hash (FNV-1a, inlined so hashing a
// key on the hot path costs no allocation and no interface dispatch). The
// zero hash is reserved to mean "empty access-ring slot", so keys hashing
// to 0 are nudged onto a fixed non-zero value.
func Hash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	if h == 0 {
		return 1
	}
	return h
}

// byteShard is one worker's byte counter, padded to a cache line so
// neighboring workers' accounting adds never false-share.
type byteShard struct {
	n   atomic.Int64
	ops atomic.Uint64 // put counter driving the occasional overshoot probe
	_   [48]byte
}

// admitEvent is one hot-path policy event: a put (admit or refresh) or a
// remove (forget). The key bytes live in the ring's arena at [off, off+klen).
type admitEvent struct {
	hash uint64
	size int64
	off  int32
	klen int32
	kind uint8
}

const (
	evPut uint8 = iota
	evRemove
)

// admitRing is one worker's double-buffered admission feed. Producers
// append under a short mutex into reused slices; the maintenance loop swaps
// the buffers out and processes them without holding the producer side up.
type admitRing struct {
	mu    sync.Mutex
	ev    []admitEvent
	arena []byte
	drops int64 // events shed past maxRingEvents (counted, not silent)
	_     [24]byte
}

// maxRingEvents bounds how many events one ring buffers between maintenance
// drains. Past it, further events are dropped (and counted): the policy's
// view of those keys goes stale — they may dodge eviction until a later put
// refreshes them — but memory stays bounded and accounting (which is
// separate) stays exact.
const maxRingEvents = 1 << 16

// accessRingSize is the per-worker lossy access window. Bigger remembers
// more distinct hot hashes between drains; overwrites just lose frequency
// signal, never correctness.
const accessRingSize = 256

// accessRing records key hashes of reads, lossily: one atomic add and one
// atomic store per get, no lock. Slots overwritten before a drain lose
// their signal, which S3-FIFO tolerates by design (its frequency bits
// saturate at tiny values anyway).
type accessRing struct {
	pos   atomic.Uint64
	slots [accessRingSize]atomic.Uint64
}

// entry is one tracked key in small or main. Owned by the maintenance loop.
type entry struct {
	hash  uint64
	key   []byte
	size  int64
	freq  uint8
	small bool
	dead  bool // forgotten (removed/evicted) while still queued
}

// fifo is a slice-backed FIFO of entries with an advancing head.
type fifo struct {
	q    []*entry
	head int
}

func (f *fifo) push(e *entry) { f.q = append(f.q, e) }

func (f *fifo) pop() *entry {
	if f.head >= len(f.q) {
		return nil
	}
	e := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 >= len(f.q) {
		n := copy(f.q, f.q[f.head:])
		f.q = f.q[:n]
		f.head = 0
	}
	return e
}

func (f *fifo) len() int { return len(f.q) - f.head }

// Stats is a snapshot of the cache counters the server exports.
type Stats struct {
	BytesLive   int64 // accounted live bytes (packed value sizes)
	Evictions   int64 // keys dropped by the S3-FIFO policy
	Expirations int64 // keys dropped by the TTL sweep
	GhostHits   int64 // re-admissions that hit the ghost list
	AdmitDrops  int64 // admission events shed by full rings
}

// Cache is one store's cache-mode state. Accounting (Account/BytesLive) is
// always active; the eviction policy engages only when maxBytes > 0.
// Account, NotePut, NoteAccess, NoteRemove, and HelpEnforce are safe for
// any concurrency; Maintain and Seed serialize on the internal maintenance
// mutex with each other and with helpers.
type Cache struct {
	maxBytes int64
	shards   []byteShard
	rings    []admitRing
	access   []accessRing
	wake     chan struct{}
	// needHelp latches when an accounting probe sees the budget exceeded;
	// writers observing it run HelpEnforce, the synchronous backpressure
	// that bounds overshoot even when the maintenance goroutine is starved
	// for CPU by the very writers causing the overshoot.
	needHelp atomic.Bool

	// Policy state, guarded by maintMu: normally only the store's
	// maintenance loop takes it (uncontended), but an over-budget writer
	// may TryLock it to evict inline (HelpEnforce).
	maintMu             sync.Mutex
	entries             map[uint64]*entry
	small, main         fifo
	smallBytes          int64
	mainBytes           int64
	ghost               map[uint64]struct{}
	ghostQ              []uint64
	ghostHead           int
	evBuf               []admitEvent // swap buffers for ring drains
	arenaBuf            []byte
	evictions           atomic.Int64
	expirations         atomic.Int64
	ghostHits           atomic.Int64
	lowWater, highWater int64
	smallTarget         int64
}

// New creates the cache state for a store with the given worker count.
// maxBytes <= 0 means accounting only (no eviction policy, no rings).
func New(workers, maxBytes int) *Cache {
	if workers < 1 {
		workers = 1
	}
	c := &Cache{
		maxBytes: int64(maxBytes),
		// One extra shard for the maintenance/recovery context (eviction
		// decrements, recovery seeding) so it never contends with worker 0.
		shards: make([]byteShard, workers+1),
	}
	if maxBytes > 0 {
		c.rings = make([]admitRing, workers)
		c.access = make([]accessRing, workers)
		c.wake = make(chan struct{}, 1)
		c.entries = make(map[uint64]*entry)
		c.ghost = make(map[uint64]struct{})
		// Evict down to lowWater once over maxBytes, so each wakeup frees a
		// batch instead of shaving single values; probe for overshoot at
		// highWater. One "eviction batch" is therefore maxBytes/32.
		c.lowWater = c.maxBytes - c.maxBytes/32
		c.highWater = c.maxBytes
		c.smallTarget = c.maxBytes / 10
	}
	return c
}

// EvictionEnabled reports whether a byte budget (and thus the policy) is
// configured.
func (c *Cache) EvictionEnabled() bool { return c.maxBytes > 0 }

// MaxBytes returns the configured byte budget (0 = unbounded).
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// Wake returns the channel the maintenance loop should select on for early
// eviction wakeups; nil when eviction is disabled (a nil channel never
// fires in a select, so callers need no special case).
func (c *Cache) Wake() <-chan struct{} { return c.wake }

// maintShard indexes the extra accounting shard reserved for maintenance
// and recovery contexts.
func (c *Cache) maintShard() int { return len(c.shards) - 1 }

// Account adds delta bytes to worker's accounting shard: one atomic add on
// a cache line no other worker touches. Every put, remove, eviction, and
// expiry must pass through here with the packed-size delta it caused.
// Workers out of range (the maintenance context passes -1) use the reserved
// shard. Occasionally (every 64 puts per shard) the live total is probed
// and, if it exceeds the budget, the maintenance loop is woken early — the
// backpressure that keeps overshoot to one eviction batch even when the
// write rate outruns the maintenance tick.
func (c *Cache) Account(worker int, delta int64) {
	i := worker
	if i < 0 || i >= len(c.shards)-1 {
		i = c.maintShard()
	}
	sh := &c.shards[i]
	sh.n.Add(delta)
	if c.maxBytes <= 0 || delta <= 0 {
		return
	}
	if sh.ops.Add(1)&63 == 0 && c.BytesLive() > c.highWater {
		c.needHelp.Store(true)
		c.kick()
	}
}

// HelpEnforce is the write path's synchronous backpressure: when an
// accounting probe has flagged the budget exceeded, the calling writer
// blocks on the maintenance mutex and evicts down to the low watermark
// itself. Blocking (not TryLock) is the point — writers that outrun the
// maintenance goroutine (a single CPU, or many writer cores against one
// evictor) are throttled behind the eviction they necessitate, which is
// what bounds overshoot to roughly one probe window plus one eviction
// batch. One atomic load when the flag is clear, so the steady-state put
// path pays nothing. evict is the same callback Maintain takes.
func (c *Cache) HelpEnforce(evict func(key []byte) bool) {
	if c.entries == nil || !c.needHelp.Load() {
		return
	}
	c.maintMu.Lock()
	c.needHelp.Store(false)
	c.drainAdmits()
	c.enforce(evict) // no-op if a prior holder already got us under budget
	c.maintMu.Unlock()
}

// kick wakes the maintenance loop without blocking.
func (c *Cache) kick() {
	if c.wake == nil {
		return
	}
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// BytesLive sums the accounting shards.
func (c *Cache) BytesLive() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].n.Load()
	}
	return n
}

// NotePut records a put's admission event for the policy: key (copied into
// the ring's arena), its hash, and the new packed size. No-op unless
// eviction is enabled. Amortized allocation-free: the ring's slices are
// retained and reused across drains.
func (c *Cache) NotePut(worker int, key []byte, size int) {
	if c.rings == nil {
		return
	}
	c.note(worker, key, Hash(key), int64(size), evPut)
}

// NoteRemove records an explicit remove so the policy forgets the key.
func (c *Cache) NoteRemove(worker int, key []byte) {
	if c.rings == nil {
		return
	}
	c.note(worker, key, Hash(key), 0, evRemove)
}

func (c *Cache) note(worker int, key []byte, hash uint64, size int64, kind uint8) {
	r := &c.rings[worker%len(c.rings)]
	r.mu.Lock()
	if len(r.ev) >= maxRingEvents {
		r.drops++
		r.mu.Unlock()
		c.kick()
		return
	}
	off := len(r.arena)
	r.arena = append(r.arena, key...)
	r.ev = append(r.ev, admitEvent{hash: hash, size: size, off: int32(off), klen: int32(len(key)), kind: kind})
	half := len(r.ev) >= maxRingEvents/2
	r.mu.Unlock()
	if half {
		c.kick()
	}
}

// NoteAccess records a read of key for frequency tracking: one atomic add
// and one atomic store into the worker's lossy ring. No-op unless eviction
// is enabled (checked before hashing, so plain stores pay one branch).
func (c *Cache) NoteAccess(worker int, key []byte) {
	if c.access == nil {
		return
	}
	r := &c.access[worker%len(c.access)]
	i := r.pos.Add(1)
	r.slots[i%accessRingSize].Store(Hash(key))
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	var drops int64
	for i := range c.rings {
		r := &c.rings[i]
		r.mu.Lock()
		drops += r.drops
		r.mu.Unlock()
	}
	return Stats{
		BytesLive:   c.BytesLive(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
		GhostHits:   c.ghostHits.Load(),
		AdmitDrops:  drops,
	}
}

// NoteExpirations counts TTL-sweep drops (the sweep lives in the store,
// which owns the tree scan; the counter lives here with its siblings).
func (c *Cache) NoteExpirations(n int64) { c.expirations.Add(n) }

// Seed admits one key directly into the policy, bypassing the rings. Only
// for recovery, before any concurrent access exists: recovered keys enter
// the small queue in scan order and the first post-recovery Maintain
// re-enforces the bound over them.
func (c *Cache) Seed(key []byte, size int) {
	if c.entries == nil {
		return
	}
	c.maintMu.Lock()
	c.applyPut(Hash(key), key, int64(size))
	c.maintMu.Unlock()
}

// Maintain drains the admission and access feeds into the policy and, when
// the accounted total exceeds the budget, evicts down to the low watermark.
// evict must remove the key from the store (border-lock remove path,
// accounting decrement included) and report whether it did; it runs once
// per victim, outside any cache lock. Only the store's maintenance context
// may call Maintain.
func (c *Cache) Maintain(evict func(key []byte) bool) {
	if c.entries == nil {
		return
	}
	c.maintMu.Lock()
	c.needHelp.Store(false)
	c.drainAccess()
	c.drainAdmits()
	c.enforce(evict)
	c.maintMu.Unlock()
}

func (c *Cache) drainAccess() {
	for i := range c.access {
		r := &c.access[i]
		for j := range r.slots {
			h := r.slots[j].Swap(0)
			if h == 0 {
				continue
			}
			if e := c.entries[h]; e != nil && !e.dead && e.freq < 3 {
				e.freq++
			}
		}
	}
}

func (c *Cache) drainAdmits() {
	for i := range c.rings {
		r := &c.rings[i]
		r.mu.Lock()
		ev, arena := r.ev, r.arena
		r.ev, r.arena = c.evBuf[:0], c.arenaBuf[:0]
		r.mu.Unlock()
		for k := range ev {
			e := &ev[k]
			key := arena[e.off : e.off+e.klen]
			switch e.kind {
			case evPut:
				c.applyPut(e.hash, key, e.size)
			case evRemove:
				c.applyRemove(e.hash)
			}
		}
		// Hand the drained buffers back as next drain's swap-in pair.
		c.evBuf, c.arenaBuf = ev, arena
	}
}

// applyPut admits a new key (small queue; main directly on a ghost hit) or
// refreshes a tracked one.
func (c *Cache) applyPut(hash uint64, key []byte, size int64) {
	if e := c.entries[hash]; e != nil && !e.dead {
		// Refresh: accounting already charged the delta; the policy updates
		// its queue-occupancy mirror and treats the overwrite as an access.
		if e.small {
			c.smallBytes += size - e.size
		} else {
			c.mainBytes += size - e.size
		}
		e.size = size
		if e.freq < 3 {
			e.freq++
		}
		return
	}
	e := &entry{hash: hash, key: append([]byte(nil), key...), size: size}
	if _, hit := c.ghost[hash]; hit {
		c.ghostHits.Add(1)
		delete(c.ghost, hash)
		e.small = false
		c.main.push(e)
		c.mainBytes += size
	} else {
		e.small = true
		c.small.push(e)
		c.smallBytes += size
	}
	c.entries[hash] = e
}

func (c *Cache) applyRemove(hash uint64) {
	e := c.entries[hash]
	if e == nil || e.dead {
		return
	}
	c.forget(e)
}

// forget marks a queued entry dead and unindexes it; the queues skip dead
// entries lazily when they reach the head.
func (c *Cache) forget(e *entry) {
	e.dead = true
	if e.small {
		c.smallBytes -= e.size
	} else {
		c.mainBytes -= e.size
	}
	delete(c.entries, e.hash)
}

// enforce evicts until the accounted total is at or below the low
// watermark (or the policy runs out of candidates — untracked keys can
// keep the total above water; they are the store's to re-admit via later
// puts).
func (c *Cache) enforce(evict func(key []byte) bool) {
	if c.maxBytes <= 0 || c.BytesLive() <= c.maxBytes {
		return
	}
	// Bound the work: every iteration either evicts, promotes, or discards
	// a dead entry, and each entry can be promoted at most once per pass.
	budget := 2*(c.small.len()+c.main.len()) + 8
	for c.BytesLive() > c.lowWater && budget > 0 {
		budget--
		victim := c.pickVictim()
		if victim == nil {
			return // nothing tracked is evictable
		}
		if evict(victim.key) {
			c.evictions.Add(1)
		}
		// Evicted or already gone from the store: either way the policy
		// forgets it. Only small-queue evictions enter the ghost list —
		// a ghost hit is the signal "this key came right back after its
		// probation ended", which is what earns direct main admission.
		if victim.small {
			c.ghostAdd(victim.hash)
		}
		c.forget(victim)
	}
}

// pickVictim runs the S3-FIFO scan: pop from small while it is over its
// target share (promoting touched entries to main), otherwise from main
// (reinserting touched entries with decayed frequency).
func (c *Cache) pickVictim() *entry {
	for {
		fromSmall := c.small.len() > 0 && (c.smallBytes > c.smallTarget || c.main.len() == 0)
		if fromSmall {
			e := c.small.pop()
			if e == nil || e.dead {
				if e == nil {
					return nil
				}
				continue
			}
			if e.freq > 0 {
				// Touched during probation: promote to main.
				e.freq = 0
				e.small = false
				c.smallBytes -= e.size
				c.mainBytes += e.size
				c.main.push(e)
				continue
			}
			return e
		}
		e := c.main.pop()
		if e == nil {
			// Main empty; fall back to small even under its target.
			if c.small.len() == 0 {
				return nil
			}
			continue
		}
		if e.dead {
			continue
		}
		if e.freq > 0 {
			e.freq--
			c.main.push(e)
			continue
		}
		return e
	}
}

// ghostAdd remembers an evicted hash, bounded by the live entry count (at
// least a small floor) so the ghost list scales with the working set.
func (c *Cache) ghostAdd(hash uint64) {
	limit := len(c.entries)
	if limit < 1024 {
		limit = 1024
	}
	for len(c.ghost) >= limit && c.ghostHead < len(c.ghostQ) {
		old := c.ghostQ[c.ghostHead]
		c.ghostHead++
		delete(c.ghost, old)
	}
	if c.ghostHead > 64 && c.ghostHead*2 >= len(c.ghostQ) {
		n := copy(c.ghostQ, c.ghostQ[c.ghostHead:])
		c.ghostQ = c.ghostQ[:n]
		c.ghostHead = 0
	}
	if _, ok := c.ghost[hash]; ok {
		return
	}
	c.ghost[hash] = struct{}{}
	c.ghostQ = append(c.ghostQ, hash)
}
