package server

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/wire"
)

func startServer(t *testing.T, dir string) (*Server, string) {
	t.Helper()
	cfg := kvstore.Config{MaintainEvery: -1}
	if dir != "" {
		cfg.Dir = dir
		cfg.Workers = 2
	}
	store, err := kvstore.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 2)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return srv, srv.Addr().String()
}

func TestEndToEnd(t *testing.T) {
	_, addr := startServer(t, "")
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.PutSimple([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get([]byte("hello"), nil)
	if err != nil || !ok || string(got[0]) != "world" {
		t.Fatalf("get: %q %v %v", got, ok, err)
	}
	if _, ok, _ := c.Get([]byte("missing"), nil); ok {
		t.Fatal("phantom key")
	}
	existed, err := c.Remove([]byte("hello"))
	if err != nil || !existed {
		t.Fatalf("remove: %v %v", existed, err)
	}
	if _, ok, _ := c.Get([]byte("hello"), nil); ok {
		t.Fatal("key survived remove")
	}
}

func TestBatchedQueries(t *testing.T) {
	_, addr := startServer(t, "")
	c, _ := client.Dial(addr)
	defer c.Close()

	const batch = 100
	reqs := make([]wire.Request, batch)
	for i := range reqs {
		reqs[i] = wire.Request{
			Op:   wire.OpPut,
			Key:  []byte(fmt.Sprintf("k%03d", i)),
			Puts: []wire.ColData{{Col: 0, Data: []byte(fmt.Sprintf("v%d", i))}},
		}
	}
	resps, err := c.Do(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Status != wire.StatusOK {
			t.Fatalf("put %d status %d", i, r.Status)
		}
	}
	// Versions within one connection's batch must be increasing (same log).
	for i := 1; i < batch; i++ {
		if resps[i].Version <= resps[i-1].Version {
			t.Fatalf("versions not increasing: %d then %d", resps[i-1].Version, resps[i].Version)
		}
	}
	gets := make([]wire.Request, batch)
	for i := range gets {
		gets[i] = wire.Request{Op: wire.OpGet, Key: []byte(fmt.Sprintf("k%03d", i))}
	}
	resps, err = c.Do(gets)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Status != wire.StatusOK || string(r.Cols[0]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d: %+v", i, r)
		}
	}
}

func TestRangeOverNetwork(t *testing.T) {
	_, addr := startServer(t, "")
	c, _ := client.Dial(addr)
	defer c.Close()
	for i := 0; i < 30; i++ {
		c.Put([]byte(fmt.Sprintf("k%03d", i)), []wire.ColData{
			{Col: 0, Data: []byte("a")}, {Col: 1, Data: []byte(fmt.Sprintf("b%d", i))},
		})
	}
	pairs, err := c.GetRange([]byte("k010"), 5, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for i, p := range pairs {
		if string(p.Key) != fmt.Sprintf("k%03d", 10+i) || string(p.Cols[0]) != fmt.Sprintf("b%d", 10+i) {
			t.Fatalf("pair %d: %q %q", i, p.Key, p.Cols)
		}
	}
}

func TestManyConcurrentClients(t *testing.T) {
	_, addr := startServer(t, "")
	const clients = 8
	const perClient = 300
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				k := []byte(fmt.Sprintf("c%d-%04d", ci, i))
				if _, err := c.PutSimple(k, k); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < perClient; i++ {
				k := []byte(fmt.Sprintf("c%d-%04d", ci, i))
				got, ok, err := c.Get(k, nil)
				if err != nil || !ok || !bytes.Equal(got[0], k) {
					t.Errorf("get %q: %v %v %v", k, got, ok, err)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
}

func TestServerPersistsThroughRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 2)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, _ := client.Dial(srv.Addr().String())
	for i := 0; i < 100; i++ {
		c.PutSimple([]byte(fmt.Sprintf("p%03d", i)), []byte("v"))
	}
	c.Close()
	srv.Close()
	store.Close()

	store2, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Len() != 100 {
		t.Fatalf("recovered %d keys over restart", store2.Len())
	}
}

func TestMalformedInputDropsConnection(t *testing.T) {
	_, addr := startServer(t, "")
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Another connection sends garbage; the valid client must be unaffected.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("\xff\xff\xff\xffgarbage-that-is-not-a-frame"))
	raw.Close()
	if _, err := c.PutSimple([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("valid client affected: %v", err)
	}
}

func TestStatsOverNetwork(t *testing.T) {
	_, addr := startServer(t, "")
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		c.PutSimple([]byte(fmt.Sprintf("s%03d", i)), []byte("v"))
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["keys"] != 100 {
		t.Fatalf("stats keys = %d, want 100", stats["keys"])
	}
	if stats["splits"] < 1 {
		t.Fatalf("stats splits = %d, expected at least one split", stats["splits"])
	}
	if _, ok := stats["root_retries"]; !ok {
		t.Fatal("missing root_retries metric")
	}
}
