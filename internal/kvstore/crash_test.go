package kvstore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/value"
)

// crash simulates a crash: flush OS buffers but skip the clean-shutdown
// marks, leaving the logs exactly as a power failure after the last group
// commit would.
func crash(t *testing.T, s *Store) {
	t.Helper()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tear down without marks: close files directly via the wal set.
	close(s.stop)
	s.wg.Wait()
	if err := s.logs.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryConservativeCutoff(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	// Worker 1 logs a single early record; worker 0 keeps writing on its own
	// clock shard (ts 1..10 on log 0, ts 1 on log 1, with background clock
	// synchronization disabled by openDir). The cutoff is the slowest log's
	// maximum timestamp, so everything beyond it must be dropped.
	s.PutSimple(1, []byte("b0"), []byte("x")) // ts 1 on log 1
	for i := 0; i < 10; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("a%d", i)), []byte("y")) // ts 1..10 on log 0
	}
	crash(t, s)

	r := openDir(t, dir)
	defer r.Close()
	// Cutoff = min(max of log0=10, max of log1=1) = 1: b0 survives, and of
	// worker 0's updates only a0 (ts 1 on its shard) makes the cut.
	if r.Len() != 2 {
		t.Fatalf("recovered %d keys, want 2 (conservative cutoff)", r.Len())
	}
	if _, ok := r.Get([]byte("b0"), nil); !ok {
		t.Fatal("b0 lost")
	}
	if _, ok := r.Get([]byte("a0"), nil); !ok {
		t.Fatal("a0 (within cutoff) lost")
	}
	if _, ok := r.Get([]byte("a5"), nil); ok {
		t.Fatal("a5 (beyond cutoff) resurrected")
	}
}

func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	for i := 0; i < 100; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	crash(t, s)

	// Tear the last few bytes off worker 0's log, as an interrupted write
	// would.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "log-0000") {
			p := filepath.Join(dir, e.Name())
			b, _ := os.ReadFile(p)
			os.WriteFile(p, b[:len(b)-7], 0o644)
		}
	}

	r := openDir(t, dir)
	defer r.Close()
	// The torn record (k099) is gone; everything before it survives.
	if r.Len() != 99 {
		t.Fatalf("recovered %d keys, want 99", r.Len())
	}
	if _, ok := r.Get([]byte("k099"), nil); ok {
		t.Fatal("torn record resurrected")
	}
}

func TestReopenAfterCleanCloseTwice(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	s.PutSimple(0, []byte("k"), []byte("v1"))
	s.Close()
	s2 := openDir(t, dir)
	s2.PutSimple(0, []byte("k"), []byte("v2"))
	s2.Close()
	s3 := openDir(t, dir)
	defer s3.Close()
	got, ok := s3.Get([]byte("k"), nil)
	if !ok || string(got[0]) != "v2" {
		t.Fatalf("after two generations: %q %v", got, ok)
	}
}

func TestRecoverySurvivesCheckpointPlusCrash(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	for i := 0; i < 200; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("k%03d", i)), []byte("pre"))
	}
	if _, _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("k%03d", i)), []byte("post"))
	}
	crash(t, s)

	r := openDir(t, dir)
	defer r.Close()
	if r.Len() != 200 {
		t.Fatalf("recovered %d keys", r.Len())
	}
	// Worker 1 logged nothing post-checkpoint, so its generation-2 log is
	// empty and does not constrain the cutoff; worker 0's updates survive.
	got, ok := r.Get([]byte("k000"), nil)
	if !ok || string(got[0]) != "post" {
		t.Fatalf("k000 = %q,%v want post", got, ok)
	}
	got, _ = r.Get([]byte("k100"), nil)
	if string(got[0]) != "pre" {
		t.Fatalf("k100 = %q want pre", got)
	}
}

func TestBackgroundFlushDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 1, FlushInterval: 2 * time.Millisecond, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.PutSimple(0, []byte("k"), []byte("v"))
	time.Sleep(50 * time.Millisecond) // let the background flusher run
	// Simulate a hard crash with no explicit flush at all.
	close(s.stop)
	s.wg.Wait()
	s.logs.Close()

	r := openDir(t, dir)
	defer r.Close()
	if _, ok := r.Get([]byte("k"), nil); !ok {
		t.Fatal("update lost despite background flush")
	}
}

// TestRecoveryInterleavedPutBatchRemove drives interleaved batched puts and
// removes through multiple workers, then proves recovery replays to the
// exact pre-crash state: same key set, same bytes, and — the sharded-clock
// invariant — every key's recovered version equals its pre-crash version,
// so per-key updates replayed in version order. A clean shutdown writes
// timestamp marks, so nothing is beyond the cutoff.
func TestRecoveryInterleavedPutBatchRemove(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 3, FlushInterval: 5 * time.Millisecond, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 3
	const rounds = 40
	const batch = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.Session(w)
			defer sess.Close()
			rng := rand.New(rand.NewSource(int64(w) * 99))
			keys := make([][]byte, batch)
			puts := make([][]value.ColPut, batch)
			flat := make([]value.ColPut, batch)
			for r := 0; r < rounds; r++ {
				for i := range keys {
					// Overlapping key space across workers, layered keys
					// included; values identify writer and round.
					keys[i] = []byte(fmt.Sprintf("shared-prefix-%04d", rng.Intn(300)))
					flat[i] = value.ColPut{Col: 0, Data: []byte(fmt.Sprintf("w%d-r%03d-%d", w, r, i))}
					puts[i] = flat[i : i+1]
				}
				sess.PutBatchInto(keys, puts)
				// Interleave removes so re-inserts must version past them.
				if r%4 == w%4 {
					sess.Remove([]byte(fmt.Sprintf("shared-prefix-%04d", rng.Intn(300))))
				}
			}
		}(w)
	}
	wg.Wait()

	// Snapshot the exact pre-crash state: key -> (version, bytes).
	type kvstate struct {
		ver  uint64
		data string
	}
	want := map[string]kvstate{}
	s.Tree().Scan(nil, func(k []byte, v *value.Value) bool {
		want[string(k)] = kvstate{v.Version(), string(v.Bytes())}
		return true
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDir(t, dir)
	defer r.Close()
	if r.Len() != len(want) {
		t.Fatalf("recovered %d keys, want %d", r.Len(), len(want))
	}
	got := 0
	r.Tree().Scan(nil, func(k []byte, v *value.Value) bool {
		w, ok := want[string(k)]
		if !ok {
			t.Fatalf("recovered unexpected key %q", k)
		}
		if v.Version() != w.ver {
			t.Fatalf("key %q recovered at version %d, want %d (per-key version order broken)", k, v.Version(), w.ver)
		}
		if string(v.Bytes()) != w.data {
			t.Fatalf("key %q = %q, want %q", k, v.Bytes(), w.data)
		}
		got++
		return true
	})
	if got != len(want) {
		t.Fatalf("scanned %d keys, want %d", got, len(want))
	}
}

// TestIdleLogMarksKeepCutoffFresh: a worker that stops writing must not pin
// the recovery cutoff at its last put — the maintenance loop's periodic
// timestamp marks lift every log's durable maximum to the synchronized
// clock, so the busy workers' tails survive a crash.
func TestIdleLogMarksKeepCutoffFresh(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 2, FlushInterval: 2 * time.Millisecond, MaintainEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.PutSimple(1, []byte("idle-worker-key"), []byte("x")) // log 1 then goes idle
	for i := 0; i < 10; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("busy%02d", i)), []byte("y"))
	}
	time.Sleep(60 * time.Millisecond) // several maintenance ticks: marks + flushes
	crash(t, s)

	r := openDir(t, dir)
	defer r.Close()
	// Without marks the cutoff would be log 1's last put (ts 1) and the busy
	// worker's tail would vanish; with marks everything survives.
	if r.Len() != 11 {
		t.Fatalf("recovered %d keys, want 11 (idle log pinned the cutoff)", r.Len())
	}
}

// TestCheckpointClockSeedSurvivesRemoves: remove timestamps live in no
// value, so after a checkpoint reclaims the logs that recorded them the
// clock must be seeded from the checkpoint's start timestamp — otherwise a
// post-recovery checkpoint could carry a lower start timestamp than the
// surviving older one and the next restart would restore stale state
// (resurrecting the removed keys).
func TestCheckpointClockSeedSurvivesRemoves(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	for i := 0; i < 10; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("ck%02d", i)), []byte("v"))
	}
	for i := 1; i < 10; i++ {
		s.Remove(0, []byte(fmt.Sprintf("ck%02d", i))) // lifts the clock past the puts
	}
	if _, _, err := s.Checkpoint(); err != nil { // reclaims the logs
		t.Fatal(err)
	}
	crash(t, s)

	r := openDir(t, dir)
	r.PutSimple(0, []byte("post-recovery"), []byte("new"))
	if _, _, err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	f := openDir(t, dir)
	defer f.Close()
	if f.Len() != 2 {
		t.Fatalf("final state has %d keys, want 2 (ck00 + post-recovery)", f.Len())
	}
	if _, ok := f.Get([]byte("post-recovery"), nil); !ok {
		t.Fatal("post-recovery write lost to a stale checkpoint")
	}
	if _, ok := f.Get([]byte("ck05"), nil); ok {
		t.Fatal("removed key resurrected by a stale checkpoint")
	}
}
