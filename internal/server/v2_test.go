package server

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/wire"
)

func dialConn(t *testing.T, addr string, opts ...client.ConnOption) *client.Conn {
	t.Helper()
	c, err := client.DialConn(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestConnEndToEnd(t *testing.T) {
	_, addr := startServer(t, "")
	c := dialConn(t, addr)

	v1, err := c.PutSimple([]byte("hello"), []byte("world"))
	if err != nil || v1 == 0 {
		t.Fatalf("put: %d %v", v1, err)
	}
	got, ver, ok, err := c.Get([]byte("hello"), nil)
	if err != nil || !ok || string(got[0]) != "world" {
		t.Fatalf("get: %q %v %v", got, ok, err)
	}
	if ver != v1 {
		t.Fatalf("get version %d, put returned %d", ver, v1)
	}
	if _, _, ok, _ := c.Get([]byte("missing"), nil); ok {
		t.Fatal("phantom key")
	}

	// CAS through the async client: success, then conflict.
	v2, ok, err := c.CasPut([]byte("hello"), v1, []wire.ColData{{Col: 0, Data: []byte("world2")}})
	if err != nil || !ok || v2 <= v1 {
		t.Fatalf("cas: %d %v %v", v2, ok, err)
	}
	cur, ok, err := c.CasPut([]byte("hello"), v1, []wire.ColData{{Col: 0, Data: []byte("stale")}})
	if err != nil || ok || cur != v2 {
		t.Fatalf("stale cas: ver=%d ok=%v err=%v want ver=%d", cur, ok, err, v2)
	}
	if got, _, _, _ := c.Get([]byte("hello"), nil); string(got[0]) != "world2" {
		t.Fatalf("stale cas mutated value: %q", got)
	}

	// Range + stats + remove round out the wrapper surface.
	pairs, err := c.GetRange([]byte("h"), 10, nil)
	if err != nil || len(pairs) != 1 || string(pairs[0].Key) != "hello" {
		t.Fatalf("getrange: %v %v", pairs, err)
	}
	stats, err := c.Stats()
	if err != nil || stats["keys"] != 1 {
		t.Fatalf("stats: %v %v", stats, err)
	}
	existed, err := c.Remove([]byte("hello"))
	if err != nil || !existed {
		t.Fatalf("remove: %v %v", existed, err)
	}
}

// Many goroutines share one Conn, each pipelining its own keys; tag
// matching must route every response to its issuer.
func TestConnConcurrent(t *testing.T) {
	_, addr := startServer(t, "")
	c := dialConn(t, addr, client.WithWindow(8))

	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := []byte(fmt.Sprintf("g%02d-key%03d", g, i))
				val := []byte(fmt.Sprintf("g%02d-val%03d", g, i))
				if _, err := c.PutSimple(key, val); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				got, _, ok, err := c.Get(key, nil)
				if err != nil || !ok || string(got[0]) != string(val) {
					t.Errorf("get %q: %q %v %v", key, got, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// A Go that outlives several others must still find its response: issue a
// window's worth of batches, wait for them out of order.
func TestConnOutOfOrderWait(t *testing.T) {
	_, addr := startServer(t, "")
	c := dialConn(t, addr, client.WithWindow(8))

	var pendings []*client.Pending
	for i := 0; i < 8; i++ {
		pendings = append(pendings, c.Go([]wire.Request{
			{Op: wire.OpPut, Key: []byte(fmt.Sprintf("k%d", i)),
				Puts: []wire.ColData{{Col: 0, Data: []byte(fmt.Sprintf("v%d", i))}}},
		}))
	}
	// Wait newest-first: responses arrived tag-ordered, Wait order must not
	// matter.
	for i := len(pendings) - 1; i >= 0; i-- {
		resps, err := pendings[i].Wait()
		if err != nil || len(resps) != 1 || resps[0].Status != wire.StatusOK {
			t.Fatalf("pending %d: %v %v", i, resps, err)
		}
		pendings[i].Release()
	}
	for i := 0; i < 8; i++ {
		got, _, ok, _ := c.Get([]byte(fmt.Sprintf("k%d", i)), nil)
		if !ok || string(got[0]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: %q %v", i, got, ok)
		}
	}
}

// The v1 client and a v2 Conn with window 1 must see identical responses
// for the same operation sequence against identically seeded stores.
func TestInteropV1V2Identical(t *testing.T) {
	_, addr1 := startServer(t, "")
	_, addr2 := startServer(t, "")
	v1c, err := client.Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer v1c.Close()
	v2c := dialConn(t, addr2, client.WithWindow(1))

	batches := [][]wire.Request{
		{
			{Op: wire.OpPut, Key: []byte("a"), Puts: []wire.ColData{{Col: 0, Data: []byte("1")}, {Col: 1, Data: []byte("x")}}},
			{Op: wire.OpPut, Key: []byte("b"), Puts: []wire.ColData{{Col: 0, Data: []byte("2")}}},
			{Op: wire.OpPut, Key: []byte("c"), Puts: []wire.ColData{{Col: 0, Data: []byte("3")}}},
		},
		{
			{Op: wire.OpGet, Key: []byte("a")},
			{Op: wire.OpGet, Key: []byte("b"), Cols: []int{0}},
			{Op: wire.OpGet, Key: []byte("nope")},
			{Op: wire.OpCas, Key: []byte("fresh"), ExpectVersion: 0, Puts: []wire.ColData{{Col: 0, Data: []byte("created")}}},
			{Op: wire.OpCas, Key: []byte("fresh"), ExpectVersion: 0, Puts: []wire.ColData{{Col: 0, Data: []byte("stale")}}},
			{Op: wire.OpRemove, Key: []byte("c")},
			{Op: wire.OpRemove, Key: []byte("never")},
			{Op: wire.OpGetRange, Key: nil, N: 10},
		},
	}
	for bi, reqs := range batches {
		r1, err := v1c.Do(reqs)
		if err != nil {
			t.Fatalf("batch %d via v1: %v", bi, err)
		}
		r2, err := v2c.Do(reqs)
		if err != nil {
			t.Fatalf("batch %d via v2: %v", bi, err)
		}
		// Response contents must match exactly — same statuses, versions
		// (both stores start from the same clock), columns, and pairs. The
		// v2 frame differs only by its tag header, which the client strips.
		if !reflect.DeepEqual(normalizeResps(r1), normalizeResps(r2)) {
			t.Fatalf("batch %d diverged:\nv1: %+v\nv2: %+v", bi, r1, r2)
		}
	}
}

// normalizeResps maps empty and nil slices together so DeepEqual compares
// contents, not alloc-path artifacts.
func normalizeResps(in []wire.Response) []wire.Response {
	out := make([]wire.Response, len(in))
	for i, r := range in {
		if len(r.Cols) == 0 {
			r.Cols = nil
		}
		if len(r.Pairs) == 0 {
			r.Pairs = nil
		}
		for j := range r.Cols {
			if len(r.Cols[j]) == 0 {
				r.Cols[j] = nil
			}
		}
		out[i] = r
	}
	return out
}

// A malformed request (unknown opcode) inside a decodable frame must fail
// alone with StatusError — the rest of the batch executes, the connection
// survives, and the errored_requests stat counts it. The decoder cannot
// re-sync past an unknown opcode's unknown payload, so everything from the
// first bad request onward is errored.
func TestMalformedRequestSurvivesV1(t *testing.T) {
	testMalformedRequestSurvives(t, func(t *testing.T, addr string) doer {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	})
}

func TestMalformedRequestSurvivesV2(t *testing.T) {
	testMalformedRequestSurvives(t, func(t *testing.T, addr string) doer {
		return dialConn(t, addr)
	})
}

type doer interface {
	Do([]wire.Request) ([]wire.Response, error)
	Stats() (map[string]int64, error)
}

func testMalformedRequestSurvives(t *testing.T, dial func(*testing.T, string) doer) {
	_, addr := startServer(t, "")
	c := dial(t, addr)

	// Request 1 of 3 is an unknown opcode: the encoder emits op+key with no
	// payload, exactly what a newer client speaking an op this server does
	// not know would send.
	reqs := []wire.Request{
		{Op: wire.OpPut, Key: []byte("good"), Puts: []wire.ColData{{Col: 0, Data: []byte("v")}}},
		{Op: wire.OpCode(99), Key: []byte("bad")},
		{Op: wire.OpGet, Key: []byte("good")},
	}
	resps, err := c.Do(reqs)
	if err != nil {
		t.Fatalf("connection died on malformed request: %v", err)
	}
	if len(resps) != 3 {
		t.Fatalf("got %d responses, want 3", len(resps))
	}
	if resps[0].Status != wire.StatusOK {
		t.Fatalf("good put errored: status %d", resps[0].Status)
	}
	if resps[1].Status != wire.StatusError || resps[2].Status != wire.StatusError {
		t.Fatalf("undecodable tail statuses %d,%d want %d,%d",
			resps[1].Status, resps[2].Status, wire.StatusError, wire.StatusError)
	}

	// The connection survives: the next (well-formed) batch works.
	resps, err = c.Do([]wire.Request{{Op: wire.OpGet, Key: []byte("good")}})
	if err != nil || resps[0].Status != wire.StatusOK || string(resps[0].Cols[0]) != "v" {
		t.Fatalf("connection unusable after malformed request: %v %+v", err, resps)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["errored_requests"] != 2 {
		t.Fatalf("errored_requests = %d, want 2", stats["errored_requests"])
	}
}

// CAS linearizability across the network: goroutines on separate
// connections CAS-increment one key; no update may be lost. Run under
// -race in CI.
func TestCasIncrementOverNetwork(t *testing.T) {
	_, addr := startServer(t, "")
	seed := dialConn(t, addr)
	if _, ok, err := seed.CasPut([]byte("ctr"), 0, []wire.ColData{{Col: 0, Data: []byte("0")}}); !ok || err != nil {
		t.Fatalf("seed: %v %v", ok, err)
	}

	const goroutines = 4
	const increments = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.DialConn(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < increments; i++ {
				for {
					cols, ver, ok, err := c.Get([]byte("ctr"), nil)
					if err != nil || !ok {
						t.Errorf("get: %v %v", ok, err)
						return
					}
					var n int
					fmt.Sscanf(string(cols[0]), "%d", &n)
					_, ok, err = c.CasPut([]byte("ctr"), ver,
						[]wire.ColData{{Col: 0, Data: []byte(fmt.Sprint(n + 1))}})
					if err != nil {
						t.Errorf("cas: %v", err)
						return
					}
					if ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	cols, _, _, err := seed.Get([]byte("ctr"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprint(goroutines * increments); string(cols[0]) != want {
		t.Fatalf("lost updates: counter %q want %q", cols[0], want)
	}
}

// The async client's steady state is allocation-pinned: a Go/Wait/Release
// cycle reuses the connection's encode buffer, a recycled Pending, and its
// decode scratch. The measured budget covers the whole process (client,
// server pipeline, and the runtime's netpoll machinery — the latter is why
// the bound is not zero).
func TestConnSteadyStateAllocs(t *testing.T) {
	_, addr := startServer(t, "")
	c := dialConn(t, addr)

	const batch = 16
	reqs := make([]wire.Request, batch)
	for i := range reqs {
		key := []byte(fmt.Sprintf("alloc-key-%04d", i))
		if _, err := c.PutSimple(key, []byte("alloc-test-value")); err != nil {
			t.Fatal(err)
		}
		reqs[i] = wire.Request{Op: wire.OpGet, Key: key}
	}
	roundTrip := func() {
		p := c.Go(reqs)
		resps, err := p.Wait()
		if err != nil || len(resps) != batch || resps[0].Status != wire.StatusOK {
			t.Fatalf("round trip: %v (%d resps)", err, len(resps))
		}
		p.Release()
	}
	for i := 0; i < 50; i++ {
		roundTrip() // warm every buffer, map bucket, and goroutine stack
	}
	allocs := testing.AllocsPerRun(300, roundTrip)
	// ~2 allocs/op of poller noise is the historical floor for this
	// process-wide measurement (see BENCH_pipeline.json); 8 leaves slack
	// without masking a real per-op allocation regression in the client.
	if allocs > 8 {
		t.Fatalf("steady-state Go/Wait/Release allocates %.1f per round trip, want <= 8", allocs)
	}
}

// A batch that cannot be encoded (past wire.MaxMessage) fails alone: no
// bytes reach the wire, so the Conn — and other traffic on it — stays
// usable.
func TestConnOversizedBatchFailsAlone(t *testing.T) {
	_, addr := startServer(t, "")
	c := dialConn(t, addr)

	huge := make([]byte, 64<<20+1) // one ColPut past MaxMessage
	p := c.Go([]wire.Request{{Op: wire.OpPut, Key: []byte("big"),
		Puts: []wire.ColData{{Col: 0, Data: huge}}}})
	if _, err := p.Wait(); err == nil {
		t.Fatal("oversized batch succeeded")
	}
	p.Release()

	if _, err := c.PutSimple([]byte("small"), []byte("v")); err != nil {
		t.Fatalf("connection poisoned by oversized batch: %v", err)
	}
	if got, _, ok, err := c.Get([]byte("small"), nil); err != nil || !ok || string(got[0]) != "v" {
		t.Fatalf("get after oversized batch: %q %v %v", got, ok, err)
	}
}
