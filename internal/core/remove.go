package core

import (
	"bytes"

	"repro/internal/value"
)

// Remove deletes key from the tree, returning the removed value (§3:
// remove; §4.6.5). Removal just shrinks the permutation — the key and value
// memory are not cleared, so a concurrent get may still return the removed
// value, which is correct for overlapping operations. Border nodes that
// become empty are unlinked and deleted, along with any resulting empty
// interior ancestors; the initial (leftmost) node of each B+-tree is never
// deleted. Empty trie layers are collapsed later by Maintain (the paper's
// epoch-scheduled reclamation tasks).
func (t *Tree) Remove(key []byte) (*value.Value, bool) {
	return t.remove(key, nil)
}

// RemoveWith is Remove with a callback that runs under the owning border
// node's lock just before the key is unlinked. The kvstore uses it to assign
// the remove's log timestamp atomically with the removal, so replay order
// matches execution order even across remove/re-insert races (§5).
func (t *Tree) RemoveWith(key []byte, fn func(old *value.Value)) (*value.Value, bool) {
	if fn == nil {
		return t.remove(key, nil)
	}
	return t.remove(key, func(old *value.Value) bool { fn(old); return true })
}

// RemoveIf removes key only if pred, evaluated on the current value under
// the owning border node's lock, returns true. This is the remove-for-
// eviction hook: callers decide on a value they read optimistically and the
// predicate runs against the value actually being unlinked. How much it
// re-checks is the caller's policy — the kvstore's TTL sweep re-validates
// expiry so a racing fresh put is never dropped by a stale deadline, while
// its eviction path removes unconditionally (a cache may evict any key at
// any moment, so evicting a just-put value is semantically the same as
// evicting it right after). Returns the removed value and whether the
// removal happened.
func (t *Tree) RemoveIf(key []byte, pred func(old *value.Value) bool) (*value.Value, bool) {
	return t.remove(key, pred)
}

func (t *Tree) remove(key []byte, fn func(old *value.Value) bool) (*value.Value, bool) {
restart:
	root := t.rootHeader()
	k := key
	depth := 0
	for {
		slice := keySlice(k)
		ord := keyOrd(k)
		n := t.lockBorder(root, slice)
		if n == nil {
			goto restart
		}
		perm := n.perm()
		rank, found := n.searchRank(perm, slice, ord)
		if !found {
			n.h.unlock()
			return nil, false
		}
		slot := perm.slot(rank)
		switch kl := n.keylen[slot].Load(); kl {
		case klLayer:
			lvp := n.loadLV(slot)
			n.h.unlock()
			root = t.resolveLayer(n, slot, lvp)
			k = k[8:]
			depth++
			continue
		case klSuffix:
			var suf []byte
			if sp := n.suffix[slot].Load(); sp != nil {
				suf = *sp
			}
			if !bytes.Equal(suf, k[8:]) {
				n.h.unlock()
				return nil, false
			}
		case klUnstable:
			panic("core: unstable slot observed under lock")
		}
		old := (*value.Value)(n.loadLV(slot))
		if fn != nil && !fn(old) {
			n.h.unlock()
			return nil, false
		}
		// Dirty the version before unlinking (§4.6.5): a concurrent reader
		// or scanner that snapshotted the permutation while this key was
		// live must fail its version validation and retry, or it would
		// return (or checkpoint!) a key that no longer exists. The unlock
		// increments vinsert, so post-remove validations fail too.
		n.h.markInserting()
		np := perm.remove(rank)
		n.permutation.Store(uint64(np))
		t.count.Add(-1)
		if np.count() == 0 {
			t.emptyBorder(n, key, depth) // unlocks n
		} else {
			n.h.unlock()
		}
		return old, true
	}
}

// emptyBorder handles a border node that has just become empty. n is locked
// on entry and unlocked on return. The initial leftmost node of a tree is
// kept (it anchors lowkey = -inf); if it is the root of an empty layer-h
// tree (h >= 1), a collapse task is scheduled instead (§4.6.5: full trees
// are not cleaned up right away because that requires locking two layers).
//
//masstree:unlocks n
func (t *Tree) emptyBorder(n *borderNode, key []byte, depth int) {
	if n.lowOrd < 0 {
		if depth > 0 && isRoot(n.h.version.Load()) && n.next.Load() == nil {
			t.scheduleCollapse(key[:depth*8])
		}
		n.h.unlock()
		return
	}
	t.removeBorder(n)
}

// removeBorder unlinks the empty, locked, non-leftmost border node n from
// the border list and from its parent, deleting empty interior ancestors
// recursively. Locks are taken left-to-right and then up the tree; when that
// order cannot be honored directly we release and revalidate, because a
// concurrent insert may revive the node while it is unlocked.
//
//masstree:unlocks n
func (t *Tree) removeBorder(n *borderNode) {
	var p *borderNode
	for {
		p = n.prev.Load()
		if p.h.tryLock() {
			if n.prev.Load() == p && !isDeleted(p.h.version.Load()) {
				break
			}
			p.h.unlock()
			continue
		}
		// Lock order is left-to-right: release n, take p then n, revalidate.
		n.h.unlock()
		p.h.lock()
		n.h.lock()
		if n.perm().count() != 0 || isDeleted(n.h.version.Load()) {
			// Revived by a concurrent insert (or already gone): abort.
			p.h.unlock()
			n.h.unlock()
			return
		}
		if n.prev.Load() != p || isDeleted(p.h.version.Load()) {
			p.h.unlock()
			continue
		}
		break
	}

	// Holding p's and n's locks: unlink n. next's prev pointer is protected
	// by n's (its previous sibling's) lock, which we hold.
	n.h.markSplitting() // range moves to p: readers must retry from the root
	n.h.markDeleted()
	next := n.next.Load()
	p.next.Store(next)
	if next != nil {
		next.prev.Store(p)
	}
	p.h.unlock()

	parent := n.h.lockParent()
	n.h.unlock()
	t.stats.NodeDeletes.Add(1)
	if parent != nil {
		t.removeChild(parent, &n.h)
	}
}

// removeChild removes the given child from the locked interior node p,
// shifting keys and children down. If p loses its last child it is deleted
// and removed from its own parent, recursively. p is unlocked on return.
//
//masstree:unlocks p
func (t *Tree) removeChild(p *interiorNode, child *nodeHeader) {
	nk := int(p.nkeys.Load())
	idx := -1
	for i := 0; i <= nk; i++ {
		if p.child[i].Load() == child {
			idx = i
			break
		}
	}
	if idx < 0 {
		// The child is no longer linked here (an interior split moved it and
		// removal raced ahead); nothing to do.
		p.h.unlock()
		return
	}
	p.h.markSplitting() // ranges shift: force readers to retry from the root
	if nk == 0 {
		// Removing the only child empties p: delete p as well.
		p.h.markDeleted()
		gp := p.h.lockParent()
		p.h.unlock()
		t.stats.NodeDeletes.Add(1)
		if gp != nil {
			t.removeChild(gp, &p.h)
		}
		return
	}
	if idx == 0 {
		for i := 0; i < nk-1; i++ {
			p.keyslice[i].Store(p.keyslice[i+1].Load())
		}
		for i := 0; i < nk; i++ {
			p.child[i].Store(p.child[i+1].Load())
		}
	} else {
		for i := idx - 1; i < nk-1; i++ {
			p.keyslice[i].Store(p.keyslice[i+1].Load())
		}
		for i := idx; i < nk; i++ {
			p.child[i].Store(p.child[i+1].Load())
		}
	}
	p.nkeys.Store(int32(nk - 1))
	p.h.unlock()
}

// scheduleCollapse queues a maintenance task to remove the (possibly) empty
// trie layer reached by the given key prefix (a multiple of 8 bytes).
func (t *Tree) scheduleCollapse(prefix []byte) {
	cp := append([]byte(nil), prefix...)
	t.maintMu.Lock()
	t.maint = append(t.maint, cp)
	t.maintMu.Unlock()
}

// PendingMaintenance returns the number of queued layer-collapse tasks.
func (t *Tree) PendingMaintenance() int {
	t.maintMu.Lock()
	defer t.maintMu.Unlock()
	return len(t.maint)
}

// Maintain runs queued maintenance tasks (empty-layer collapse), returning
// how many layers were collapsed. The paper schedules these through
// epoch-based reclamation; the kvstore invokes Maintain from its epoch
// ticker, and tests call it directly.
func (t *Tree) Maintain() int {
	t.maintMu.Lock()
	tasks := t.maint
	t.maint = nil
	t.maintMu.Unlock()
	done := 0
	for _, prefix := range tasks {
		if t.collapseLayer(prefix) {
			done++
		}
	}
	return done
}

// collapseLayer removes the trie layer at the given key prefix if it is
// still a single empty border node. It locks the owning border node in the
// parent layer and then the layer root — the only place two layers are
// locked together, always parent before child, so it cannot deadlock with
// normal operations (which lock at most one layer at a time, §4.6.5).
func (t *Tree) collapseLayer(prefix []byte) bool {
	root := t.rootHeader()
	k := prefix
	for {
		slice := keySlice(k)
		n, _ := t.findBorder(root, slice)
		n.h.lock()
		if isDeleted(n.h.version.Load()) {
			n.h.unlock()
			return false
		}
		for {
			next := n.next.Load()
			if next == nil || !next.keyGEqLowkey(slice) {
				break
			}
			next.h.lock()
			n.h.unlock()
			n = next
			if isDeleted(n.h.version.Load()) {
				n.h.unlock()
				return false
			}
		}
		perm := n.perm()
		rank, found := n.searchRank(perm, slice, 9)
		if !found {
			n.h.unlock()
			return false
		}
		slot := perm.slot(rank)
		if n.keylen[slot].Load() != klLayer {
			n.h.unlock()
			return false
		}
		if len(k) > 8 {
			// Intermediate layer: descend.
			lvp := n.loadLV(slot)
			n.h.unlock()
			root = t.resolveLayer(n, slot, lvp)
			k = k[8:]
			continue
		}

		// Final layer link. Collapse only if the layer is still one empty
		// border node; anything else was revived or grew.
		child := ascendToRoot((*nodeHeader)(n.loadLV(slot)))
		if !isBorder(child.version.Load()) {
			n.h.unlock()
			return false
		}
		b := child.border()
		b.h.lock()
		if isDeleted(b.h.version.Load()) || b.perm().count() != 0 || b.next.Load() != nil {
			b.h.unlock()
			n.h.unlock()
			return false
		}
		b.h.markSplitting()
		b.h.markDeleted()
		b.h.unlock()

		np := perm.remove(rank)
		n.permutation.Store(uint64(np))
		t.stats.LayerCollapses.Add(1)
		if np.count() == 0 {
			t.emptyBorder(n, prefix, len(prefix)/8-1) // unlocks n
		} else {
			n.h.unlock()
		}
		return true
	}
}
