package core

import (
	"unsafe"

	"repro/internal/value"
)

// borderEntry is a writer-local snapshot of one border-node key used while
// redistributing keys during a split. slot is the entry's slot in the old
// node, or -1 for the key being inserted.
type borderEntry struct {
	slot  int
	slice uint64
	kl    uint32
	suf   *[]byte
	lv    unsafe.Pointer
}

// splitInsert splits the full, locked border node n while inserting the new
// key at the given rank (paper Figure 5 plus §4.3's sequential-insert
// optimization). It releases all locks before returning.
//
//masstree:unlocks n
func (t *Tree) splitInsert(n *borderNode, rank int, slice uint64, k []byte, v *value.Value) {
	perm := n.perm()
	cnt := perm.count()

	// Gather existing keys plus the pending key, in key order.
	var ents [width + 1]borderEntry
	for i := 0; i < cnt; i++ {
		slot := perm.slot(i)
		pos := i
		if i >= rank {
			pos = i + 1
		}
		var suf *[]byte
		kl := n.keylen[slot].Load()
		if kl == klSuffix {
			suf = n.suffix[slot].Load()
		}
		ents[pos] = borderEntry{
			slot:  slot,
			slice: n.keyslice[slot].Load(),
			kl:    kl,
			suf:   suf,
			lv:    n.loadLV(slot),
		}
	}
	pend := borderEntry{slot: -1, slice: slice, lv: unsafe.Pointer(v)}
	if len(k) <= 8 {
		pend.kl = uint32(len(k))
	} else {
		suf := append([]byte(nil), k[8:]...)
		pend.kl = klSuffix
		pend.suf = &suf
	}
	ents[rank] = pend
	total := cnt + 1

	// Pick the split point. All keys sharing a slice must stay in one node
	// (§4.2), so the boundary must fall where the slice changes. A slice
	// group holds at most 10 keys, so a full node always has a boundary.
	// The sequential-insert optimization: appending to the rightmost node
	// leaves the old keys in place and moves only the new key (§4.3).
	splitAt := total / 2
	if rank == cnt && n.next.Load() == nil {
		splitAt = total - 1
	}
	splitAt = sliceBoundary(ents[:total], splitAt)

	left, right := ents[:splitAt], ents[splitAt:total]

	n.h.markSplitting()
	n2 := newBorder(false, true) //masstree:acquires n2.h
	n2.h.markSplitting()
	n2.lowSlice = right[0].slice
	n2.lowOrd = ordOf(right[0].kl)

	// Fill the new sibling; it is invisible until linked.
	for i, e := range right {
		n2.keyslice[i].Store(e.slice)
		n2.keylen[i].Store(e.kl)
		n2.suffix[i].Store(e.suf)
		n2.storeLV(i, e.lv)
		n2.usedMask |= 1 << uint(i)
	}
	n2.permutation.Store(uint64(identityPerm(len(right))))

	// Rebuild n's side. Entries keep their slots; the pending key (if it
	// stayed left) takes any slot not used by the left side — readers using
	// the old permutation that race with the overwrite are forced to retry
	// by the splitting bit.
	var idx [width]int
	usedLeft := uint16(0)
	pendPos := -1
	for i, e := range left {
		if e.slot < 0 {
			pendPos = i
			continue
		}
		idx[i] = e.slot
		usedLeft |= 1 << uint(e.slot)
	}
	if pendPos >= 0 {
		slot := -1
		for s := 0; s < width; s++ {
			if usedLeft&(1<<uint(s)) == 0 {
				slot = s
				break
			}
		}
		idx[pendPos] = slot
		usedLeft |= 1 << uint(slot)
		n.keyslice[slot].Store(pend.slice)
		n.keylen[slot].Store(pend.kl)
		n.suffix[slot].Store(pend.suf)
		n.storeLV(slot, pend.lv)
	}
	// The permutation's tail is the free list; it must hold exactly the
	// slots not referenced by the live region or future inserts would claim
	// live slots.
	fi := len(left)
	for s := 0; s < width; s++ {
		if usedLeft&(1<<uint(s)) == 0 {
			idx[fi] = s
			fi++
		}
	}
	n.usedMask = (1 << width) - 1
	n.permutation.Store(uint64(pack(idx, len(left))))

	// Link the sibling into the border list. oldNext's prev pointer is
	// protected by n's lock, which we hold (§4.5).
	oldNext := n.next.Load()
	n2.next.Store(oldNext)
	n2.prev.Store(n)
	if oldNext != nil {
		oldNext.prev.Store(n2)
	}
	n.next.Store(n2)

	t.stats.Splits.Add(1)
	t.ascend(&n.h, &n2.h, n2.lowSlice)
}

// identityPerm returns a permutation with the first count slots live in slot
// order.
func identityPerm(count int) permutation {
	return permutation(uint64(emptyPermutation())&^0xf | uint64(count))
}

// sliceBoundary returns the index nearest want in (0, len(ents)) at which
// the key slice changes, so that no slice group straddles the split.
func sliceBoundary(ents []borderEntry, want int) int {
	isBoundary := func(i int) bool {
		return i > 0 && i < len(ents) && ents[i-1].slice != ents[i].slice
	}
	if isBoundary(want) {
		return want
	}
	for d := 1; d < len(ents); d++ {
		if isBoundary(want + d) {
			return want + d
		}
		if isBoundary(want - d) {
			return want - d
		}
	}
	panic("core: border node holds a single slice group wider than fanout")
}

// ascend inserts the new sibling n2 (with separator slice sep) into n's
// parent, splitting interior nodes upward as needed (Figure 5). On entry n
// and n2 are locked with their splitting bits set; all locks are released by
// the time ascend returns. Locks are acquired up the tree, which prevents
// deadlock (§4.5).
//
//masstree:unlocks n n2
func (t *Tree) ascend(n, n2 *nodeHeader, sep uint64) {
	for {
		p := n.lockParent()
		if p == nil {
			// n was the root of its B+-tree: grow a new interior root.
			r := newInterior(rootBit)
			r.keyslice[0].Store(sep)
			r.child[0].Store(n)
			r.child[1].Store(n2)
			r.nkeys.Store(1)
			n.parent.Store(r)
			n2.parent.Store(r)
			n.clearRoot()
			t.root.CompareAndSwap(n, &r.h) // layer-0 root; inner layers fix lazily
			n.unlock()
			n2.unlock()
			return
		}
		if int(p.nkeys.Load()) < width {
			p.h.markInserting()
			nk := int(p.nkeys.Load())
			pos := 0
			for pos < nk && p.keyslice[pos].Load() < sep {
				pos++
			}
			for i := nk; i > pos; i-- {
				p.keyslice[i].Store(p.keyslice[i-1].Load())
			}
			for i := nk + 1; i > pos+1; i-- {
				p.child[i].Store(p.child[i-1].Load())
			}
			p.keyslice[pos].Store(sep)
			p.child[pos+1].Store(n2)
			n2.parent.Store(p)
			p.nkeys.Store(int32(nk + 1))
			n.unlock()
			n2.unlock()
			p.h.unlock()
			return
		}
		// Parent full: split it and keep ascending.
		p.h.markSplitting()
		n.unlock()
		p2 := newInterior(lockBit | splittingBit) //masstree:acquires p2.h
		sep2 := t.splitInterior(p, p2, sep, n2)
		n2.unlock()
		n, n2, sep = &p.h, &p2.h, sep2
		t.stats.Splits.Add(1)
	}
}

// splitInterior splits the full, locked interior node p while inserting
// separator sep with right child c. The median key is promoted (returned),
// the upper keys and children move to p2, and moved children's parent
// pointers are reassigned under p's and p2's locks (§4.5).
//
//masstree:locked p p2
func (t *Tree) splitInterior(p, p2 *interiorNode, sep uint64, c *nodeHeader) uint64 {
	nk := int(p.nkeys.Load()) // == width
	pos := 0
	for pos < nk && p.keyslice[pos].Load() < sep {
		pos++
	}
	var keys [width + 1]uint64
	var kids [width + 2]*nodeHeader
	for i := 0; i < pos; i++ {
		keys[i] = p.keyslice[i].Load()
	}
	keys[pos] = sep
	for i := pos; i < nk; i++ {
		keys[i+1] = p.keyslice[i].Load()
	}
	for i := 0; i <= pos; i++ {
		kids[i] = p.child[i].Load()
	}
	kids[pos+1] = c
	for i := pos + 1; i <= nk; i++ {
		kids[i+1] = p.child[i].Load()
	}

	total := nk + 1 // 16 keys, 17 children
	mid := total / 2
	promoted := keys[mid]

	for i := 0; i < mid; i++ {
		p.keyslice[i].Store(keys[i])
	}
	for i := 0; i <= mid; i++ {
		p.child[i].Store(kids[i])
	}
	p.nkeys.Store(int32(mid))

	rk := total - mid - 1
	for i := 0; i < rk; i++ {
		p2.keyslice[i].Store(keys[mid+1+i])
	}
	for i := 0; i <= rk; i++ {
		child := kids[mid+1+i]
		p2.child[i].Store(child)
		child.parent.Store(p2)
	}
	p2.nkeys.Store(int32(rk))

	// The pending child's parent: moved children were just set to p2; if it
	// stayed in the left half it still needs its parent assigned.
	if pos+1 <= mid {
		c.parent.Store(p)
	}
	return promoted
}
