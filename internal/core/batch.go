package core

import (
	"sort"

	"repro/internal/value"
)

// BatchScratch holds the reusable ordering state for GetBatchInto so a
// steady-state caller (one scratch per worker/connection) performs no
// allocations per batch. It implements sort.Interface over the index
// permutation so sorting itself is allocation-free (sort.Slice's closure
// and reflection path both allocate).
type BatchScratch struct {
	idx    []int
	slices []uint64
}

func (sc *BatchScratch) Len() int { return len(sc.idx) }

// Less orders by leading key slice, breaking ties by input index so the
// order is deterministic and, in particular, duplicate keys within one batch
// keep their request order (PutBatchInto relies on this to apply repeated
// puts to a key in submission order).
func (sc *BatchScratch) Less(a, b int) bool {
	sa, sb := sc.slices[sc.idx[a]], sc.slices[sc.idx[b]]
	if sa != sb {
		return sa < sb
	}
	return sc.idx[a] < sc.idx[b]
}
func (sc *BatchScratch) Swap(a, b int) { sc.idx[a], sc.idx[b] = sc.idx[b], sc.idx[a] }

// order sorts the index permutation for keys into the scratch; in steady
// state (scratch warmed to the batch size) it performs no allocations.
func (sc *BatchScratch) order(keys [][]byte) {
	n := len(keys)
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
		sc.slices = make([]uint64, n)
	}
	sc.idx = sc.idx[:n]
	sc.slices = sc.slices[:n]
	for i, k := range keys {
		sc.idx[i] = i
		sc.slices[i] = keySlice(k)
	}
	sort.Sort(sc)
}

// GetBatch looks up many keys in one call — the paper's PALM-inspired
// batched lookup (§4.8). PALM sorts a batch of queries so lookups that
// touch nearby tree paths run back to back, overlapping their DRAM fetches;
// Go exposes no prefetch intrinsic, but processing keys in tree order still
// shares the upper tree levels' cache lines between consecutive descents.
// The paper measured up to +34% on an Intel machine and nothing on AMD, so
// this is an optional path; the ablation benchmark quantifies it here.
//
// Results are returned in input order: vals[i], found[i] correspond to
// keys[i]. GetBatch allocates its result slices; hot paths should hold a
// BatchScratch and call GetBatchInto instead.
func (t *Tree) GetBatch(keys [][]byte) (vals []*value.Value, found []bool) {
	vals = make([]*value.Value, len(keys))
	found = make([]bool, len(keys))
	var sc BatchScratch
	t.GetBatchInto(keys, vals, found, &sc)
	return vals, found
}

// GetBatchInto is GetBatch writing into caller-provided slices (which must
// have len(keys) elements) and ordering scratch. In steady state — scratch
// warmed to the largest batch size — it performs no allocations.
//
//masstree:noalloc
func (t *Tree) GetBatchInto(keys [][]byte, vals []*value.Value, found []bool, sc *BatchScratch) {
	if len(keys) == 0 {
		return
	}
	// Order the batch by leading key slice (cheap proxy for tree order).
	sc.order(keys)
	for _, i := range sc.idx {
		vals[i], found[i] = t.Get(keys[i])
	}
}
