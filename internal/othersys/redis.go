package othersys

import (
	"encoding/binary"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/baseline/hashtable"
	"repro/internal/value"
)

// Redislike models Redis as the paper ran it: 16 single-threaded hash-table
// processes, each with its own append-only log (four SSDs in the paper;
// checkpointing and log rewriting disabled), no range queries, column
// updates via byte-range writes. The hiredis client pipelines both gets and
// puts, so a whole batch costs one dispatch per shard. Commands are
// serialized and parsed RESP-style on both sides of the dispatch, which is
// where Redis's per-op protocol cost lives.
type Redislike struct {
	shards []*shard
	tables []*hashtable.Table
	logs   []*aofLog
}

type aofLog struct {
	mu  sync.Mutex
	f   *os.File
	buf []byte
}

func (l *aofLog) append(cmd []byte) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.buf = append(l.buf, cmd...)
	if len(l.buf) >= 1<<16 {
		l.flush()
	}
	l.mu.Unlock()
}

func (l *aofLog) flush() {
	if l.f != nil && len(l.buf) > 0 {
		l.f.Write(l.buf)
	}
	l.buf = l.buf[:0]
}

// NewRedislike creates a store with the given shard count and capacity.
// dir, when non-empty, hosts per-shard append-only logs.
func NewRedislike(shards, capacity int, dir string) *Redislike {
	r := &Redislike{}
	for i := 0; i < shards; i++ {
		r.shards = append(r.shards, newShard())
		r.tables = append(r.tables, hashtable.New(3*capacity/shards+16))
		var l *aofLog
		if dir != "" {
			f, err := os.Create(filepath.Join(dir, "aof-"+string(rune('a'+i))+".log"))
			if err == nil {
				l = &aofLog{f: f}
			}
		}
		r.logs = append(r.logs, l)
	}
	return r
}

// Name implements Batcher.
func (r *Redislike) Name() string { return "redis-like" }

// SupportsRange implements Batcher.
func (r *Redislike) SupportsRange() bool { return false }

// SupportsColumnPut implements Batcher (byte-range SETRANGE writes).
func (r *Redislike) SupportsColumnPut() bool { return true }

func (r *Redislike) shardFor(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32()) % len(r.shards)
}

// respEncode serializes a command RESP-style (the real protocol work a
// Redis round trip performs).
func respEncode(verb string, key []byte, args ...[]byte) []byte {
	out := make([]byte, 0, 32+len(key))
	out = append(out, '*')
	out = binary.AppendVarint(out, int64(2+len(args)))
	out = append(out, '$')
	out = binary.AppendVarint(out, int64(len(verb)))
	out = append(out, verb...)
	out = append(out, '$')
	out = binary.AppendVarint(out, int64(len(key)))
	out = append(out, key...)
	for _, a := range args {
		out = append(out, '$')
		out = binary.AppendVarint(out, int64(len(a)))
		out = append(out, a...)
	}
	return out
}

// Exec implements Batcher: all ops pipeline, grouped by shard.
func (r *Redislike) Exec(worker int, ops []Op) []Result {
	res := make([]Result, len(ops))
	type idxOp struct {
		i  int
		op *Op
	}
	byShard := map[int][]idxOp{}
	for i := range ops {
		op := &ops[i]
		if op.Kind == OpScan {
			res[i] = Result{OK: false}
			continue
		}
		s := r.shardFor(op.Key)
		byShard[s] = append(byShard[s], idxOp{i, op})
	}
	for s, batch := range byShard {
		s, batch := s, batch
		r.shards[s].do(func() {
			for _, io := range batch {
				switch io.op.Kind {
				case OpGet:
					_ = respEncode("GET", io.op.Key)
					v, ok := r.tables[s].Get(io.op.Key)
					if !ok {
						res[io.i] = Result{OK: false}
						continue
					}
					res[io.i] = Result{OK: true, Cols: pickCols(v, io.op.Cols)}
				case OpPut:
					for _, p := range io.op.Puts {
						r.logs[s].append(respEncode("SETRANGE", io.op.Key, p.Data))
					}
					old, _ := r.tables[s].Get(io.op.Key)
					r.tables[s].Put(io.op.Key, value.Apply(old, io.op.Puts))
					res[io.i] = Result{OK: true}
				}
			}
		})
	}
	return res
}

// Close implements Batcher.
func (r *Redislike) Close() {
	for i, s := range r.shards {
		s.close()
		if l := r.logs[i]; l != nil {
			l.mu.Lock()
			l.flush()
			if l.f != nil {
				l.f.Close()
			}
			l.mu.Unlock()
		}
	}
}
