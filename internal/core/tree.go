// Package core implements Masstree, the paper's central data structure
// (§4): a trie with fanout 2^64 in which each trie node is a B+-tree of
// width 15. Each trie layer is indexed by a successive 8-byte slice of the
// key, so arbitrary-length binary keys — including keys with long shared
// prefixes — are handled efficiently while keys remain in sorted order for
// range queries.
//
// Concurrency follows the paper exactly: get operations are lock-free and
// never write shared memory, validating per-node version words before and
// after reading node contents (optimistic concurrency control); writers take
// only node-local spinlocks, publish border-node inserts through an atomic
// permutation word, and coordinate splits and removes with readers through
// split version counters and hand-over-hand validation.
//
// Values are *value.Value pointers; multi-column read-modify-writes execute
// under the owning border node's lock, making them atomic with respect to
// concurrent readers (§4.7).
package core

import (
	"bytes"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/value"
)

// Tree is a Masstree. It is safe for concurrent use by any number of
// readers and writers. The zero Tree is not usable; call New.
type Tree struct {
	root  atomic.Pointer[nodeHeader]
	count atomic.Int64
	stats Stats

	// maintenance tasks deferred by remove (§4.6.5): byte prefixes of trie
	// layers that may have become empty and should be collapsed.
	maintMu sync.Mutex
	maint   [][]byte
}

// New creates an empty Masstree. The trie's layer-0 root starts as a single
// empty border node; per §4.6.4 this initial node always remains the
// leftmost node of its tree and is never deleted.
func New() *Tree {
	t := &Tree{}
	root := newBorder(true, false)
	t.root.Store(&root.h)
	return t
}

// rootHeader returns the current layer-0 root, repairing the cached pointer
// if a root split left it stale (the paper updates the layer-0 global root
// immediately; doing it lazily here is equivalent because every descent
// re-validates the isroot bit).
func (t *Tree) rootHeader() *nodeHeader {
	h := t.root.Load()
	r := ascendToRoot(h)
	if r != h {
		t.root.CompareAndSwap(h, r)
	}
	return r
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return int(t.count.Load()) }

// Stats returns a snapshot of operation counters; see Stats.
func (t *Tree) Stats() StatsSnapshot { return t.stats.snapshot() }

// resolveLayer loads the next-layer root from a border slot and repairs the
// stored pointer if a layer-root split left it stale (§4.6.4: roots stored
// in border nodes' next_layer pointers are updated lazily during later
// operations).
func (t *Tree) resolveLayer(n *borderNode, slot int, lv unsafe.Pointer) *nodeHeader {
	h := (*nodeHeader)(lv)
	r := ascendToRoot(h)
	if r != h {
		n.casLV(slot, lv, unsafe.Pointer(r))
	}
	return r
}

// Get returns the value stored for key (§3: get). It takes no locks and
// writes no shared memory.
//
//masstree:noalloc
func (t *Tree) Get(key []byte) (*value.Value, bool) {
restart:
	root := t.rootHeader()
	k := key
	for {
		slice := keySlice(k)
		ord := keyOrd(k)
		n, v := t.findBorder(root, slice)
	forward:
		if isDeleted(v) {
			// The node was removed; its keys (none — only empty nodes are
			// deleted) and range moved. Retry the whole operation (§4.6.5).
			t.stats.RootRetries.Add(1)
			goto restart
		}
		perm := n.perm()
		rank, found := n.searchRank(perm, slice, ord)
		var (
			kl  uint32
			lvp unsafe.Pointer
			suf []byte
		)
		if found {
			slot := perm.slot(rank)
			// Bracket lv between two keylen reads: layer transitions
			// (§4.6.3) rewrite keylen→UNSTABLE→lv→keylen→LAYER without a
			// version change, so matching keylen reads guarantee lv was
			// consistent with the returned keylen.
			kl = n.keylen[slot].Load()
			lvp = n.loadLV(slot)
			if kl == klSuffix {
				if sp := n.suffix[slot].Load(); sp != nil {
					suf = *sp
				}
			}
			if kl2 := n.keylen[slot].Load(); kl2 != kl {
				kl = klUnstable
			}
		}
		if v2 := n.h.version.Load(); changed(v2, v) {
			// The node changed while we read it. Re-stabilize and chase
			// border links right: a concurrent split only ever moves keys
			// to new right siblings (Figure 7).
			t.stats.LocalRetries.Add(1)
			v = n.h.stable()
			for !isDeleted(v) {
				next := n.next.Load()
				if next == nil || !next.keyGEqLowkey(slice) {
					break
				}
				n = next
				v = n.h.stable()
			}
			goto forward
		}
		if !found {
			return nil, false
		}
		switch kl {
		case klLayer:
			slot := perm.slot(rank)
			root = t.resolveLayer(n, slot, lvp)
			k = k[8:]
		case klUnstable:
			goto forward
		case klSuffix:
			if !bytes.Equal(suf, k[8:]) {
				return nil, false
			}
			return (*value.Value)(lvp), true
		default: // keylen 0..8: the whole remaining key is inline
			return (*value.Value)(lvp), true
		}
	}
}
