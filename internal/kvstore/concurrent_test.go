package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/value"
)

// TestConcurrentSessionsWithLogging runs several sessions writing and
// reading concurrently with logging on, plus checkpoints, then verifies the
// store and a recovered copy agree.
func TestConcurrentSessionsWithLogging(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 4, FlushInterval: 2 * time.Millisecond, MaintainEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 2500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.Session(w)
			defer sess.Close()
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%d-%05d", w, i))
				sess.Put(k, []value.ColPut{{Col: 0, Data: k}, {Col: 1, Data: []byte{byte(w)}}})
				if i%7 == 0 {
					if got, ok := sess.Get(k, []int{0}); !ok || string(got[0]) != string(k) {
						panic("session read-own-write failed")
					}
				}
				if i%13 == 0 {
					sess.Remove([]byte(fmt.Sprintf("w%d-%05d", w, i/2)))
				}
			}
		}(w)
	}
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for i := 0; i < 3; i++ {
			if _, _, err := s.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-ckptDone

	liveBefore := s.Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Config{Dir: dir, Workers: 4, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != liveBefore {
		t.Fatalf("recovered %d keys, had %d", r.Len(), liveBefore)
	}
	// Spot-check values and columns survived with the right contents.
	for w := 0; w < workers; w++ {
		for i := perWorker - 50; i < perWorker; i++ {
			k := []byte(fmt.Sprintf("w%d-%05d", w, i))
			got, ok := r.Get(k, nil)
			if !ok || string(got[0]) != string(k) || got[1][0] != byte(w) {
				t.Fatalf("recovered %q wrong: %q %v", k, got, ok)
			}
		}
	}
}

// TestConcurrentGetRangeDuringPuts ensures range queries stay ordered and
// complete while writers insert.
func TestConcurrentGetRangeDuringPuts(t *testing.T) {
	s := openMem(t)
	for i := 0; i < 1000; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("stable%05d", i)), []byte("x"))
	}
	var stop bool
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			mu.Lock()
			if stop {
				mu.Unlock()
				return
			}
			mu.Unlock()
			s.PutSimple(0, []byte(fmt.Sprintf("churn%06d", i%5000)), []byte("y"))
		}
	}()
	for round := 0; round < 50; round++ {
		pairs := s.GetRange([]byte("stable"), 1000, []int{0})
		cnt := 0
		for _, p := range pairs {
			if string(p.Key) >= "stable" && string(p.Key) < "stablf" {
				cnt++
			}
		}
		if cnt != 1000 {
			t.Fatalf("round %d: saw %d stable keys", round, cnt)
		}
	}
	mu.Lock()
	stop = true
	mu.Unlock()
	wg.Wait()
}
