// Package obs is the store's observability subsystem: alloc-free
// log-bucketed latency histograms, a fixed-size flight recorder of binary
// trace events, and the snapshot/merge/rendering machinery behind the
// server's admin endpoints and the histogram keys on the wire Stats op.
// It depends only on the standard library and allocates nothing on its
// record paths — the same bar the hot ops it measures are held to.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of log-2 latency buckets per histogram. Bucket 0
// holds durations of at most 1ns (and the degenerate d <= 0); bucket b
// (b >= 1) holds durations in [2^b, 2^(b+1)) ns. 63 doublings span far past
// any latency this process can observe, so the top bucket never saturates
// semantically — it just catches outliers beyond ~146 years.
const NumBuckets = 64

// histShard is one worker's private slice of a histogram. The counts array
// is 512 bytes — eight cache lines — so adjacent shards never share a line,
// and the trailing sum keeps a per-shard total for mean extraction. The pad
// rounds the struct to a cache-line multiple (576 bytes) so shard k+1
// starts on its own line even inside a shards slice.
type histShard struct {
	counts [NumBuckets]uint64 // accessed only via atomic
	sum    uint64             // accessed only via atomic; total ns recorded
	_      [56]byte
}

// Hist is a fixed-shape latency histogram sharded per worker. Record is
// wait-free (one atomic add per bucket count, one for the running sum) and
// allocation-free; Snapshot is lock-free (atomic loads, no quiescence — a
// snapshot taken under load is some valid recent state, which is all a
// monitoring read needs). A nil *Hist is a valid no-op receiver, so
// disabled instrumentation costs a nil check and nothing else.
type Hist struct {
	name   string
	shards []histShard
}

// NewHist builds a histogram with one shard per worker. workers < 1 is
// clamped to 1.
func NewHist(name string, workers int) *Hist {
	if workers < 1 {
		workers = 1
	}
	return &Hist{name: name, shards: make([]histShard, workers)}
}

// Name reports the histogram's stats-key stem (e.g. "get" → lat_get_p50).
func (h *Hist) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Bucket returns the bucket index for a duration: 0 for d <= 1ns, else
// bits.Len64(ns) - 1 (so bucket b covers [2^b, 2^(b+1)) ns).
//
//masstree:noalloc
func Bucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d)) - 1
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketLow reports the inclusive lower bound of bucket b in nanoseconds.
func BucketLow(b int) uint64 {
	if b <= 0 {
		return 0
	}
	return 1 << uint(b)
}

// bucketMid is the representative value reported for samples that landed in
// bucket b: the midpoint 1.5*2^b ns (3 << (b-1)), 1 for the sub-2ns bucket.
// Quantile error is therefore bounded by the bucket width — a factor of 2,
// the standard log-bucket trade.
func bucketMid(b int) uint64 {
	if b <= 0 {
		return 1
	}
	return 3 << uint(b-1)
}

// Record adds one observation to the worker's shard. Safe on a nil
// receiver (no-op), concurrent with other recorders and with Snapshot.
//
//masstree:noalloc
func (h *Hist) Record(worker int, d time.Duration) {
	if h == nil {
		return
	}
	sh := &h.shards[uint(worker)%uint(len(h.shards))]
	atomic.AddUint64(&sh.counts[Bucket(d)], 1)
	if d > 0 {
		atomic.AddUint64(&sh.sum, uint64(d))
	}
}

// HistSnapshot is a point-in-time copy of a histogram: plain memory, safe
// to merge, serialize, and query without further synchronization.
type HistSnapshot struct {
	Name    string
	Buckets [NumBuckets]uint64
	Sum     uint64 // total nanoseconds recorded
}

// Snapshot copies the histogram with atomic loads, summing across shards.
// Nil-safe: a nil Hist snapshots as an empty histogram.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Name = h.name
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < NumBuckets; b++ {
			s.Buckets[b] += atomic.LoadUint64(&sh.counts[b])
		}
		s.Sum += atomic.LoadUint64(&sh.sum)
	}
	return s
}

// ShardSnapshot copies a single worker shard — cluster mode uses this for
// per-node quantiles out of its node-sharded RPC histogram.
func (h *Hist) ShardSnapshot(worker int) HistSnapshot {
	var s HistSnapshot
	if h == nil || len(h.shards) == 0 {
		return s
	}
	sh := &h.shards[uint(worker)%uint(len(h.shards))]
	s.Name = h.name
	for b := 0; b < NumBuckets; b++ {
		s.Buckets[b] = atomic.LoadUint64(&sh.counts[b])
	}
	s.Sum = atomic.LoadUint64(&sh.sum)
	return s
}

// Count is the total number of recorded observations.
func (s HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Buckets {
		n += c
	}
	return n
}

// Merge adds another snapshot's buckets into this one (cluster-wide
// aggregation: sum buckets, then re-derive quantiles — never average
// per-node quantiles).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for b := 0; b < NumBuckets; b++ {
		s.Buckets[b] += o.Buckets[b]
	}
	s.Sum += o.Sum
}

// Quantile reports the latency (ns) at quantile q in [0,1]: the
// representative midpoint of the bucket containing the q-th ranked sample.
// Zero observations → 0.
func (s HistSnapshot) Quantile(q float64) uint64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		cum += s.Buckets[b]
		if cum > rank {
			return bucketMid(b)
		}
	}
	return bucketMid(NumBuckets - 1)
}

// Mean reports the arithmetic mean latency in nanoseconds (exact, from the
// recorded sum — not bucket-quantized).
func (s HistSnapshot) Mean() uint64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	return s.Sum / total
}
