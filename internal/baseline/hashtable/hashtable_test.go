package hashtable

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/value"
)

func TestModel(t *testing.T) {
	tb := New(4096)
	model := map[string]string{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("%d", rng.Intn(2000))
		switch rng.Intn(4) {
		case 0, 1:
			v := fmt.Sprintf("v%d", i)
			replaced := tb.Put([]byte(k), value.New([]byte(v)))
			if _, had := model[k]; had != replaced {
				t.Fatalf("put %q replaced=%v want %v", k, replaced, had)
			}
			model[k] = v
		case 2:
			v, ok := tb.Get([]byte(k))
			want, wantOK := model[k]
			if ok != wantOK || (ok && string(v.Bytes()) != want) {
				t.Fatalf("get %q mismatch", k)
			}
		case 3:
			ok := tb.Remove([]byte(k))
			if _, had := model[k]; had != ok {
				t.Fatalf("remove %q = %v want %v", k, ok, had)
			}
			delete(model, k)
		}
		if tb.Len() != len(model) {
			t.Fatalf("len %d vs %d", tb.Len(), len(model))
		}
	}
}

func TestLowOccupancyProbes(t *testing.T) {
	// At the paper's ~30% occupancy, lookups inspect ~1.1 entries.
	const n = 10000
	tb := New(n * 3)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%08d", i))
		tb.Put(k, value.New(k))
	}
	if p := tb.AvgProbe(); p > 1.3 {
		t.Fatalf("average probe length %.3f, expected ~1.1", p)
	}
}

func TestConcurrent(t *testing.T) {
	tb := New(1 << 16)
	var wg sync.WaitGroup
	const workers, per = 4, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("w%d-%05d", w, i))
				tb.Put(k, value.New(k))
			}
		}(w)
	}
	wg.Wait()
	if tb.Len() != workers*per {
		t.Fatalf("len %d want %d", tb.Len(), workers*per)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			k := []byte(fmt.Sprintf("w%d-%05d", w, i))
			if v, ok := tb.Get(k); !ok || string(v.Bytes()) != string(k) {
				t.Fatalf("lost %q", k)
			}
		}
	}
}

func TestRemoveReinsert(t *testing.T) {
	tb := New(64)
	k := []byte("key")
	tb.Put(k, value.New([]byte("1")))
	if !tb.Remove(k) {
		t.Fatal("remove failed")
	}
	if tb.Remove(k) {
		t.Fatal("double remove succeeded")
	}
	if _, ok := tb.Get(k); ok {
		t.Fatal("tombstoned key visible")
	}
	tb.Put(k, value.New([]byte("2")))
	v, ok := tb.Get(k)
	if !ok || string(v.Bytes()) != "2" {
		t.Fatal("reinsert failed")
	}
	if tb.Len() != 1 {
		t.Fatalf("len %d", tb.Len())
	}
}
