// Package kvstore assembles Masstree the system (§3, §5): the core tree,
// multi-column values, per-worker logging with group commit, periodic
// checkpoints, recovery, and epoch-scheduled maintenance.
//
// The store supports the paper's four operations — get(k), put(k, v),
// remove(k), and getrange(k, n) — each with an optional list of column
// numbers. Multi-column puts are atomic: a concurrent get sees all or none
// of a put's column modifications (§4.7).
//
// Version numbers and timestamps: the store draws both from a single
// monotonic counter, assigned under the owning border node's lock, so
// sequential updates to a value obtain distinct increasing versions, log
// records are totally ordered per key (even across remove/re-insert), and
// recovery can apply each key's updates in increasing version order after
// cutting off at t = min over logs of the log's last timestamp (§5).
package kvstore

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/value"
	"repro/internal/wal"
)

// Config configures a Store.
type Config struct {
	// Dir is the persistence directory for logs and checkpoints. Empty
	// disables persistence entirely (a pure in-memory store).
	Dir string
	// Workers is the number of per-worker log files (the paper gives each
	// query thread its own log). Defaults to 1.
	Workers int
	// FlushInterval bounds how long a logged update may stay unforced
	// (200 ms in the paper). Defaults to wal.DefaultFlushInterval.
	FlushInterval time.Duration
	// SyncWrites forces logs to storage on each flush (fsync).
	SyncWrites bool
	// MaintainEvery is the epoch-advance and tree-maintenance period.
	// Defaults to 50 ms; 0 uses the default, negative disables.
	MaintainEvery time.Duration
}

// Pair is one key plus requested columns, returned by GetRange.
type Pair struct {
	Key  []byte
	Cols [][]byte
}

// Store is a persistent in-memory key-value store backed by a Masstree.
// All methods are safe for concurrent use.
type Store struct {
	cfg   Config
	tree  *core.Tree
	clock atomic.Uint64
	logs  *wal.Set // nil when persistence is disabled
	mgr   epoch.Manager

	ckptMu sync.Mutex // one checkpoint at a time

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open creates a store, recovering from the newest valid checkpoint plus
// logs when cfg.Dir holds a previous incarnation's state.
func Open(cfg Config) (*Store, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaintainEvery == 0 {
		cfg.MaintainEvery = 50 * time.Millisecond
	}
	s := &Store{cfg: cfg, tree: core.New(), stop: make(chan struct{})}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	if cfg.MaintainEvery > 0 {
		s.wg.Add(1)
		go s.maintainLoop()
	}
	return s, nil
}

// recover loads the latest valid checkpoint, replays the logs beyond it,
// restores the clock, and opens a fresh log generation (never appending to a
// file that may end in a torn record).
func (s *Store) recover() error {
	maxVersion := uint64(0)
	_, err := checkpoint.LoadLatest(s.cfg.Dir, func(e checkpoint.Entry) {
		s.tree.Put(e.Key, e.Value)
		if e.Value.Version() > maxVersion {
			maxVersion = e.Value.Version()
		}
	})
	if err != nil && err != checkpoint.ErrNone {
		return fmt.Errorf("kvstore: loading checkpoint: %w", err)
	}
	res, err := wal.RecoverDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("kvstore: scanning logs: %w", err)
	}
	res.Replay(4, func(r wal.Record) {
		switch r.Op {
		case wal.OpPut:
			s.tree.Update(r.Key, func(old *value.Value) *value.Value {
				if old != nil && old.Version() >= r.TS {
					return old // already reflected (e.g. via the checkpoint)
				}
				return value.ApplyAt(old, r.Puts, r.TS)
			})
		case wal.OpRemove:
			if v, ok := s.tree.Get(r.Key); ok && v.Version() < r.TS {
				s.tree.Remove(r.Key)
			}
		}
	})
	clock := res.MaxTS
	if maxVersion > clock {
		clock = maxVersion
	}
	s.clock.Store(clock)
	logs, err := wal.OpenSet(s.cfg.Dir, s.cfg.Workers, res.MaxGen+1, s.cfg.SyncWrites, s.cfg.FlushInterval)
	if err != nil {
		return err
	}
	s.logs = logs
	return nil
}

func (s *Store) maintainLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.MaintainEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Deferred structural clean-up runs through the epoch manager,
			// exactly as the paper schedules reclamation tasks (§4.6.5):
			// the collapse executes only after concurrent readers have
			// moved past the epoch in which the layer emptied.
			if s.tree.PendingMaintenance() > 0 {
				s.mgr.Retire(func() { s.tree.Maintain() })
			}
			s.mgr.Advance()
		case <-s.stop:
			return
		}
	}
}

// Tree exposes the underlying Masstree (benchmarks and tests).
func (s *Store) Tree() *core.Tree { return s.tree }

// Epoch exposes the store's epoch manager (sessions register handles).
func (s *Store) Epoch() *epoch.Manager { return &s.mgr }

// Len returns the number of keys.
func (s *Store) Len() int { return s.tree.Len() }

// Get returns the requested columns of key's value, or (nil, false) if the
// key is absent. cols == nil returns all columns.
func (s *Store) Get(key []byte, cols []int) ([][]byte, bool) {
	v, ok := s.tree.Get(key)
	if !ok {
		return nil, false
	}
	return pickCols(v, cols), true
}

// GetInto is Get appending the requested columns to dst instead of
// allocating a fresh slice; it returns the extended slice. With a reused
// dst the read path performs no allocations (the column contents alias the
// immutable value, so no byte copying happens either).
func (s *Store) GetInto(key []byte, cols []int, dst [][]byte) ([][]byte, bool) {
	v, ok := s.tree.Get(key)
	if !ok {
		return dst, false
	}
	return AppendCols(dst, v, cols), true
}

// GetValue returns the whole value object.
func (s *Store) GetValue(key []byte) (*value.Value, bool) { return s.tree.Get(key) }

// BatchScratch holds reusable state for GetBatchInto: the result slices and
// the core tree's batch-ordering scratch. One scratch per worker or
// connection makes steady-state batched reads allocation-free.
type BatchScratch struct {
	vals  []*value.Value
	found []bool
	core  core.BatchScratch
}

// GetBatch retrieves many keys at once, processing them in tree order to
// share cache paths between descents (§4.8's PALM-style batching). Results
// are in input order; cols == nil returns all columns.
func (s *Store) GetBatch(keys [][]byte, cols []int) (out [][][]byte, found []bool) {
	var sc BatchScratch
	vals, ok := s.GetBatchInto(keys, &sc)
	return extractBatchCols(vals, ok, cols), ok
}

// extractBatchCols materializes per-key column sets from batched values;
// shared by the allocating GetBatch wrappers.
func extractBatchCols(vals []*value.Value, ok []bool, cols []int) [][][]byte {
	out := make([][][]byte, len(vals))
	for i, v := range vals {
		if ok[i] {
			out[i] = pickCols(v, cols)
		}
	}
	return out
}

// GetBatchInto is the allocation-free batched lookup: values and found
// flags are written into sc's reusable slices and remain valid until the
// next call with the same scratch. Column extraction is left to the caller
// (each request in a batch may want different columns); use AppendCols.
func (s *Store) GetBatchInto(keys [][]byte, sc *BatchScratch) ([]*value.Value, []bool) {
	n := len(keys)
	if cap(sc.vals) < n {
		sc.vals = make([]*value.Value, n)
		sc.found = make([]bool, n)
	}
	sc.vals = sc.vals[:n]
	sc.found = sc.found[:n]
	s.tree.GetBatchInto(keys, sc.vals, sc.found, &sc.core)
	return sc.vals, sc.found
}

// AppendCols appends the requested columns of v (nil = all) to dst and
// returns the extended slice. The appended slices alias v's immutable
// columns and must not be mutated.
func AppendCols(dst [][]byte, v *value.Value, cols []int) [][]byte {
	if cols == nil {
		return append(dst, v.Cols()...)
	}
	for _, c := range cols {
		dst = append(dst, v.Col(c))
	}
	return dst
}

func pickCols(v *value.Value, cols []int) [][]byte {
	if cols == nil {
		return v.Cols()
	}
	return AppendCols(make([][]byte, 0, len(cols)), v, cols)
}

// Put applies the column modifications to key atomically, logging through
// the given worker's log, and returns the new value's version.
func (s *Store) Put(worker int, key []byte, puts []value.ColPut) uint64 {
	var ver uint64
	s.tree.Update(key, func(old *value.Value) *value.Value {
		ver = s.clock.Add(1)
		return value.ApplyAt(old, puts, ver)
	})
	if s.logs != nil {
		s.logs.Writer(worker).Append(&wal.Record{TS: ver, Op: wal.OpPut, Key: key, Puts: puts})
	}
	return ver
}

// PutSimple stores data as column 0 of key.
func (s *Store) PutSimple(worker int, key, data []byte) uint64 {
	return s.Put(worker, key, []value.ColPut{{Col: 0, Data: data}})
}

// Remove deletes key, logging through the given worker's log.
func (s *Store) Remove(worker int, key []byte) bool {
	var ver uint64
	_, ok := s.tree.RemoveWith(key, func(*value.Value) {
		ver = s.clock.Add(1)
	})
	if ok && s.logs != nil {
		s.logs.Writer(worker).Append(&wal.Record{TS: ver, Op: wal.OpRemove, Key: key})
	}
	return ok
}

// GetRange returns up to n pairs starting at the first key >= start,
// retrieving the requested columns (nil = all). Like the paper's getrange it
// is not atomic with respect to concurrent inserts and updates (§3).
func (s *Store) GetRange(start []byte, n int, cols []int) []Pair {
	if n <= 0 {
		return nil
	}
	out := make([]Pair, 0, n)
	s.tree.Scan(start, func(k []byte, v *value.Value) bool {
		out = append(out, Pair{Key: k, Cols: pickCols(v, cols)})
		return len(out) < n
	})
	return out
}

// Checkpoint writes a checkpoint of all keys and values, then reclaims log
// space and older checkpoints (§5). It runs in parallel with request
// processing.
func (s *Store) Checkpoint() (path string, n int, err error) {
	if s.cfg.Dir == "" {
		return "", 0, fmt.Errorf("kvstore: checkpointing requires a persistence directory")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	gen, err := s.logs.Rotate()
	if err != nil {
		return "", 0, err
	}
	startTS := s.clock.Load()

	// Stream the tree through a channel so the scan goroutine and the file
	// writer overlap; values are immutable so the dump is a consistent
	// fuzzy snapshot that log replay repairs.
	type kv struct {
		k []byte
		v *value.Value
	}
	ch := make(chan kv, 1024)
	go func() {
		s.tree.Scan(nil, func(k []byte, v *value.Value) bool {
			ch <- kv{k, v}
			return true
		})
		close(ch)
	}()
	path, n, err = checkpoint.Write(s.cfg.Dir, startTS, func() (checkpoint.Entry, bool) {
		e, ok := <-ch
		if !ok {
			return checkpoint.Entry{}, false
		}
		return checkpoint.Entry{Key: e.k, Value: e.v}, true
	})
	if err != nil {
		return "", 0, err
	}
	if err := checkpoint.Drop(s.cfg.Dir, startTS); err != nil {
		return path, n, err
	}
	if err := s.logs.DropBefore(gen); err != nil {
		return path, n, err
	}
	return path, n, nil
}

// Flush forces buffered log records to the operating system (and to storage
// when SyncWrites is set).
func (s *Store) Flush() error {
	if s.logs == nil {
		return nil
	}
	return s.logs.Flush()
}

// Close stops background work and flushes and closes the logs. A clean
// shutdown writes a timestamp mark to every log so recovery's cutoff does
// not discard the durable tail of busier logs (see wal.OpMark).
func (s *Store) Close() error {
	close(s.stop)
	s.wg.Wait()
	s.tree.Maintain()
	if s.logs != nil {
		s.logs.Mark(s.clock.Load())
		return s.logs.Close()
	}
	return nil
}

// Stats exposes tree operation counters.
func (s *Store) Stats() core.StatsSnapshot { return s.tree.Stats() }
