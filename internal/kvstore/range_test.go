package kvstore

import (
	"fmt"
	"testing"

	"repro/internal/value"
)

// TestGetRangeIntoMatchesGetRange checks the arena-based range path returns
// exactly what the allocating path returns, and that earlier windows stay
// valid as later ranges append into the same scratch (subslices of a grown
// arena keep aliasing the old backing memory, which is never rewritten).
func TestGetRangeIntoMatchesGetRange(t *testing.T) {
	s, err := Open(Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("range-key-%05d", i))
		s.Put(0, k, []value.ColPut{
			{Col: 0, Data: []byte(fmt.Sprintf("v%d", i))},
			{Col: 1, Data: []byte(fmt.Sprintf("c1-%d", i))},
		})
	}

	var sc RangeScratch
	cases := []struct {
		start string
		n     int
		cols  []int
	}{
		{"range-key-00000", 10, nil},
		{"range-key-00050", 25, []int{0}},
		{"range-key-00190", 100, []int{1, 0}},
		{"zzz", 5, nil},
	}
	var windows [][]Pair
	for _, c := range cases {
		windows = append(windows, s.GetRangeInto([]byte(c.start), c.n, c.cols, &sc))
	}
	for ci, c := range cases {
		want := s.GetRange([]byte(c.start), c.n, c.cols)
		got := windows[ci]
		if len(got) != len(want) {
			t.Fatalf("case %d: %d pairs, want %d", ci, len(got), len(want))
		}
		for i := range want {
			if string(got[i].Key) != string(want[i].Key) {
				t.Fatalf("case %d pair %d: key %q vs %q", ci, i, got[i].Key, want[i].Key)
			}
			if len(got[i].Cols) != len(want[i].Cols) {
				t.Fatalf("case %d pair %d: %d cols vs %d", ci, i, len(got[i].Cols), len(want[i].Cols))
			}
			for j := range want[i].Cols {
				if string(got[i].Cols[j]) != string(want[i].Cols[j]) {
					t.Fatalf("case %d pair %d col %d: %q vs %q", ci, i, j, got[i].Cols[j], want[i].Cols[j])
				}
			}
		}
	}
}
