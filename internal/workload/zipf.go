package workload

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
)

// Zipf draws items 0..n-1 with zipfian popularity (item 0 most popular),
// using the standard YCSB/Gray et al. rejection-free formula with
// theta = 0.99. Go's math/rand.Zipf requires exponent > 1 and cannot express
// YCSB's theta, so this is implemented from the formula.
type Zipf struct {
	rng        *rand.Rand
	items      uint64
	theta      float64
	zetan      float64
	zeta2theta float64
	alpha      float64
	eta        float64
}

// YCSBTheta is the zipfian constant used by YCSB and the paper's MYCSB.
const YCSBTheta = 0.99

// NewZipf creates a zipfian chooser over n items with the given theta.
func NewZipf(seed int64, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: zipf over zero items")
	}
	z := &Zipf{
		rng:   rand.New(rand.NewSource(seed)),
		items: n,
		theta: theta,
	}
	z.zetan = zeta(n, theta)
	z.zeta2theta = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next item, 0 <= item < n. Item 0 is the most popular.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// scramble spreads item popularity across the key space the way YCSB's
// scrambled zipfian does, so hot keys are not clustered in key order.
func scramble(item, n uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(item >> (8 * uint(i)))
	}
	h.Write(buf[:])
	return h.Sum64() % n
}

// RecordKey renders record number i as a MYCSB key: "user" plus the decimal
// id, giving the paper's 5-to-24-byte keys.
func RecordKey(i uint64) []byte {
	return strconv.AppendUint([]byte("user"), i, 10)
}

// ZipfKeys returns a KeyGen drawing MYCSB record keys over n records with
// scrambled zipfian popularity.
func ZipfKeys(seed int64, n uint64) KeyGen {
	z := NewZipf(seed, n, YCSBTheta)
	return funcGen(func() []byte {
		return RecordKey(scramble(z.Next(), n))
	})
}

// UniformRecordKeys returns a KeyGen drawing MYCSB record keys uniformly.
func UniformRecordKeys(seed int64, n uint64) KeyGen {
	rng := rand.New(rand.NewSource(seed))
	return funcGen(func() []byte {
		return RecordKey(uint64(rng.Int63n(int64(n))))
	})
}
