package binarytree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/value"
)

func variants() map[string]func() *Tree {
	return map[string]func() *Tree{
		"plain":        func() *Tree { return New() },
		"intcmp":       func() *Tree { return New(WithIntCmp()) },
		"arena":        func() *Tree { return New(WithArena()) },
		"intcmp+arena": func() *Tree { return New(WithIntCmp(), WithArena()) },
	}
}

func TestModel(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			model := map[string]string{}
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 5000; i++ {
				k := fmt.Sprintf("%d", rng.Intn(2000))
				switch rng.Intn(4) {
				case 0, 1:
					v := fmt.Sprintf("v%d", i)
					replaced := tr.Put([]byte(k), value.New([]byte(v)))
					if _, had := model[k]; had != replaced {
						t.Fatalf("put %q replaced=%v, want %v", k, replaced, had)
					}
					model[k] = v
				case 2:
					v, ok := tr.Get([]byte(k))
					want, wantOK := model[k]
					if ok != wantOK || (ok && string(v.Bytes()) != want) {
						t.Fatalf("get %q = %v,%v want %q,%v", k, v, ok, want, wantOK)
					}
				case 3:
					ok := tr.Remove([]byte(k))
					if _, had := model[k]; had != ok {
						t.Fatalf("remove %q = %v, want %v", k, ok, had)
					}
					delete(model, k)
				}
				if tr.Len() != len(model) {
					t.Fatalf("len %d vs %d", tr.Len(), len(model))
				}
			}
		})
	}
}

// TestIntCmpMatchesBytes: both comparison modes must produce identical
// results for mixed-length binary keys.
func TestIntCmpMatchesBytes(t *testing.T) {
	a, b := New(), New(WithIntCmp())
	rng := rand.New(rand.NewSource(2))
	var keys [][]byte
	for i := 0; i < 2000; i++ {
		k := make([]byte, rng.Intn(20))
		rng.Read(k)
		keys = append(keys, k)
		a.Put(k, value.New(k))
		b.Put(k, value.New(k))
	}
	for _, k := range keys {
		va, oka := a.Get(k)
		vb, okb := b.Get(k)
		if oka != okb || string(va.Bytes()) != string(vb.Bytes()) {
			t.Fatalf("mismatch for %q", k)
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("lens differ: %d vs %d", a.Len(), b.Len())
	}
}

func TestConcurrentInserts(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			var wg sync.WaitGroup
			const workers, per = 4, 3000
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						k := []byte(fmt.Sprintf("w%d-%05d", w, i))
						tr.Put(k, value.New(k))
					}
				}(w)
			}
			wg.Wait()
			if tr.Len() != workers*per {
				t.Fatalf("len %d, want %d", tr.Len(), workers*per)
			}
			for w := 0; w < workers; w++ {
				for i := 0; i < per; i++ {
					k := []byte(fmt.Sprintf("w%d-%05d", w, i))
					if v, ok := tr.Get(k); !ok || string(v.Bytes()) != string(k) {
						t.Fatalf("lost %q", k)
					}
				}
			}
		})
	}
}

func TestEmptyAndBinaryKeys(t *testing.T) {
	tr := New(WithIntCmp())
	keys := [][]byte{{}, {0}, {0, 0}, {0, 1}, {255}, []byte("ABCDEFG"), []byte("ABCDEFG\x00")}
	for i, k := range keys {
		tr.Put(k, value.New([]byte{byte(i)}))
	}
	for i, k := range keys {
		v, ok := tr.Get(k)
		if !ok || v.Bytes()[0] != byte(i) {
			t.Fatalf("key %q wrong", k)
		}
	}
}
