package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/value"
)

func TestShapeCountsMatchLen(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		k := []byte(fmt.Sprintf("%d", rng.Int63n(1<<31)))
		tr.Put(k, value.New(k))
	}
	s := tr.Shape()
	if s.TotalKeys() != tr.Len() {
		t.Fatalf("shape counts %d keys, Len says %d", s.TotalKeys(), tr.Len())
	}
	if s.Layers[0].Trees != 1 {
		t.Fatalf("layer 0 has %d trees", s.Layers[0].Trees)
	}
	if len(s.Layers) < 2 || s.Layers[1].Trees == 0 {
		t.Fatal("decimal keys should create layer-1 trees")
	}
}

// TestShapeDecimalWorkload checks §6.2's structural observation at laptop
// scale: the 1-to-10-byte decimal put workload pushes a substantial
// fraction of keys into layer-1 trees, but those trees stay tiny (the paper
// measured 33% of keys and 2.3 keys per layer-1 tree at 140M keys).
func TestShapeDecimalWorkload(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(9))
	const n = 60000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("%d", rng.Int63n(1<<31)))
		tr.Put(k, value.New(k))
	}
	s := tr.Shape()
	frac := s.KeysInLayer(1)
	if frac <= 0 {
		t.Fatal("no keys in layer 1")
	}
	avg := s.AvgKeysPerTree(1)
	if avg <= 1 || avg > 11 {
		t.Fatalf("avg keys per layer-1 tree = %.2f, expected small (paper: 2.3)", avg)
	}
	t.Logf("layer-1 key fraction %.2f (paper 0.33 at 140M), avg keys/layer-1 tree %.2f (paper 2.3)", frac, avg)
	// Layer-1 trees of a few keys each must be single border nodes.
	if s.Layers[1].InteriorNodes != 0 && avg < 5 {
		t.Fatalf("tiny layer-1 trees grew interiors: %+v", s.Layers[1])
	}
}

// TestShapeBorderFill checks node occupancy: B+-tree nodes built by random
// inserts average ~75% full (§6.2); sequential inserts approach 100% thanks
// to the §4.3 optimization. Keys are exactly 8 bytes so everything stays in
// layer 0 and the comparison isolates split behavior.
func TestShapeBorderFill(t *testing.T) {
	random := New()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		k := []byte(fmt.Sprintf("%08d", rng.Int63n(1e8)))
		random.Put(k, value.New(k))
	}
	fillRnd := random.Shape().BorderFill()
	if fillRnd < 0.55 || fillRnd > 0.95 {
		t.Fatalf("random-insert border fill %.2f, expected ~0.75", fillRnd)
	}

	seq := New()
	for i := 0; i < 30000; i++ {
		k := []byte(fmt.Sprintf("%08d", i))
		seq.Put(k, value.New(k))
	}
	fillSeq := seq.Shape().BorderFill()
	if fillSeq <= fillRnd {
		t.Fatalf("sequential fill %.2f not better than random %.2f (§4.3 optimization)", fillSeq, fillRnd)
	}
	if fillSeq < 0.9 {
		t.Fatalf("sequential fill %.2f, expected near-full nodes", fillSeq)
	}
	t.Logf("border fill: random %.2f (paper ~0.75), sequential %.2f", fillRnd, fillSeq)
}

func TestShapeEmptyTree(t *testing.T) {
	tr := New()
	s := tr.Shape()
	if s.TotalKeys() != 0 || len(s.Layers) != 1 || s.Layers[0].BorderNodes != 1 {
		t.Fatalf("empty tree shape wrong: %+v", s)
	}
}
