package backend

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// WrapConfig tunes the decorator stack. Zero values pick conservative
// defaults where one exists and disable the feature where "off" is
// meaningful (Timeout 0 = no per-attempt timeout, Concurrency 0 = no
// limiter, BreakerFailures 0 = no breaker).
type WrapConfig struct {
	// Timeout bounds each individual attempt (the retry loop multiplies
	// it). 0 leaves only the caller's context deadline.
	Timeout time.Duration
	// Retries is how many additional attempts follow a failed first one.
	Retries int
	// RetryBase is the first backoff step; doubling from there, capped at
	// RetryMax, with up to 50% random jitter added so herds of retriers
	// decorrelate. Defaults: 5ms base, 500ms cap.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Concurrency caps in-flight backend calls; excess callers park on the
	// semaphore (context-aware). 0 = unlimited.
	Concurrency int
	// BreakerFailures is the consecutive-failure threshold that trips the
	// circuit open. 0 disables the breaker.
	BreakerFailures int
	// BreakerOpenFor is how long the circuit stays open before a half-open
	// probe is admitted. Default 1s.
	BreakerOpenFor time.Duration
	// BreakerProbes is how many consecutive half-open probe successes close
	// the circuit again. Default 1.
	BreakerProbes int
}

// Breaker states as reported in Stats.BreakerState.
const (
	BreakerClosed   = 0
	BreakerOpen     = 1
	BreakerHalfOpen = 2
)

// Wrapped decorates a Backend with per-call timeouts, bounded jittered
// retries, a concurrency limiter, and a circuit breaker, in that nesting
// order: the breaker gates the whole call (one retried call is one breaker
// outcome, not one per attempt), the limiter bounds live calls, and the
// timeout bounds each attempt.
type Wrapped struct {
	b   Backend
	cfg WrapConfig
	sem chan struct{} // nil when unlimited

	loads, stores, deletes atomic.Uint64
	errors, retries        atomic.Uint64
	rejected               atomic.Uint64

	mu        sync.Mutex
	state     int
	fails     int       // consecutive failures while closed
	openUntil time.Time // when open, the earliest half-open probe time
	probing   bool      // a half-open probe is in flight
	probeWins int       // consecutive successful probes while half-open
	opens     uint64
}

// Wrap builds the decorator stack around b. A nil-adjustment pass fills in
// defaults; see WrapConfig.
func Wrap(b Backend, cfg WrapConfig) *Wrapped {
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 5 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 500 * time.Millisecond
	}
	if cfg.BreakerOpenFor <= 0 {
		cfg.BreakerOpenFor = time.Second
	}
	if cfg.BreakerProbes <= 0 {
		cfg.BreakerProbes = 1
	}
	w := &Wrapped{b: b, cfg: cfg}
	if cfg.Concurrency > 0 {
		w.sem = make(chan struct{}, cfg.Concurrency)
	}
	return w
}

// Load implements Backend.
func (w *Wrapped) Load(ctx context.Context, key []byte) (payload []byte, ttl time.Duration, ok bool, err error) {
	err = w.do(ctx, func(actx context.Context) error {
		var aerr error
		payload, ttl, ok, aerr = w.b.Load(actx, key)
		return aerr
	})
	if err != nil {
		return nil, 0, false, err
	}
	w.loads.Add(1)
	return payload, ttl, ok, nil
}

// Store implements Backend.
func (w *Wrapped) Store(ctx context.Context, key, payload []byte) error {
	err := w.do(ctx, func(actx context.Context) error {
		return w.b.Store(actx, key, payload)
	})
	if err == nil {
		w.stores.Add(1)
	}
	return err
}

// Delete implements Backend.
func (w *Wrapped) Delete(ctx context.Context, key []byte) error {
	err := w.do(ctx, func(actx context.Context) error {
		return w.b.Delete(actx, key)
	})
	if err == nil {
		w.deletes.Add(1)
	}
	return err
}

// Stats snapshots the health counters.
func (w *Wrapped) Stats() Stats {
	w.mu.Lock()
	state, opens := w.state, w.opens
	// An open breaker whose cool-down has lapsed reads as half-open: the
	// next call will probe, and observers (stale-if-error policy, the
	// degradation tests) care about that readiness, not the stale label.
	if state == BreakerOpen && !time.Now().Before(w.openUntil) {
		state = BreakerHalfOpen
	}
	w.mu.Unlock()
	return Stats{
		Loads:        w.loads.Load(),
		Stores:       w.stores.Load(),
		Deletes:      w.deletes.Load(),
		Errors:       w.errors.Load(),
		Retries:      w.retries.Load(),
		Rejected:     w.rejected.Load(),
		BreakerState: state,
		BreakerOpens: opens,
	}
}

// do runs one backend call through the full stack. One call is one breaker
// outcome regardless of how many attempts the retry loop burned.
func (w *Wrapped) do(ctx context.Context, op func(context.Context) error) error {
	probe, err := w.allow()
	if err != nil {
		w.rejected.Add(1)
		return err
	}
	if w.sem != nil {
		select {
		case w.sem <- struct{}{}:
		case <-ctx.Done():
			// Never reached the backend: the outcome says nothing about its
			// health, so a probe slot is handed back rather than judged.
			w.abort(probe)
			return ctx.Err()
		}
		defer func() { <-w.sem }()
	}
	for attempt := 0; ; attempt++ {
		err = w.attempt(ctx, op)
		if err == nil {
			w.record(probe, true)
			return nil
		}
		if ctx.Err() != nil {
			// The caller's own context expired or was canceled. The backend
			// was not proven sick (our per-attempt timeout never fired with
			// the parent still live), so the breaker stays untouched.
			w.abort(probe)
			w.errors.Add(1)
			return err
		}
		if attempt >= w.cfg.Retries {
			break
		}
		w.retries.Add(1)
		if serr := w.sleep(ctx, w.backoff(attempt)); serr != nil {
			w.abort(probe)
			w.errors.Add(1)
			return err
		}
	}
	w.record(probe, false)
	w.errors.Add(1)
	return err
}

// attempt runs op once under the per-attempt timeout.
func (w *Wrapped) attempt(ctx context.Context, op func(context.Context) error) error {
	if w.cfg.Timeout <= 0 {
		return op(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, w.cfg.Timeout)
	defer cancel()
	return op(actx)
}

// backoff returns the sleep before retry attempt+1: exponential from
// RetryBase, capped at RetryMax, plus up to 50% jitter.
func (w *Wrapped) backoff(attempt int) time.Duration {
	d := w.cfg.RetryBase
	for i := 0; i < attempt && d < w.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > w.cfg.RetryMax {
		d = w.cfg.RetryMax
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// sleep is a context-aware time.Sleep.
func (w *Wrapped) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// allow decides whether a call may proceed. probe reports that the call is
// a half-open probe whose outcome must be returned via record or abort.
func (w *Wrapped) allow() (probe bool, err error) {
	if w.cfg.BreakerFailures <= 0 {
		return false, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	switch w.state {
	case BreakerClosed:
		return false, nil
	case BreakerOpen:
		if time.Now().Before(w.openUntil) {
			return false, ErrUnavailable
		}
		w.state = BreakerHalfOpen
		w.probing = true
		w.probeWins = 0
		return true, nil
	default: // half-open
		if w.probing {
			return false, ErrUnavailable
		}
		w.probing = true
		return true, nil
	}
}

// record feeds one call outcome into the breaker state machine.
func (w *Wrapped) record(probe, ok bool) {
	if w.cfg.BreakerFailures <= 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if probe {
		w.probing = false
	}
	if ok {
		switch w.state {
		case BreakerHalfOpen:
			if probe {
				w.probeWins++
				if w.probeWins >= w.cfg.BreakerProbes {
					w.state = BreakerClosed
					w.fails = 0
				}
			}
		case BreakerClosed:
			w.fails = 0
		}
		return
	}
	switch w.state {
	case BreakerHalfOpen:
		if probe {
			w.trip()
		}
	case BreakerClosed:
		w.fails++
		if w.fails >= w.cfg.BreakerFailures {
			w.trip()
		}
	}
}

// abort hands back a probe slot without judging the backend (the call never
// produced a health signal — canceled before or during the attempt).
func (w *Wrapped) abort(probe bool) {
	if !probe {
		return
	}
	w.mu.Lock()
	w.probing = false
	w.mu.Unlock()
}

// trip opens the circuit; callers hold w.mu.
func (w *Wrapped) trip() {
	w.state = BreakerOpen
	w.openUntil = time.Now().Add(w.cfg.BreakerOpenFor)
	w.fails = 0
	w.probeWins = 0
	w.opens++
}
