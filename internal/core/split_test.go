package core

import (
	"fmt"
	"testing"
)

// TestSplitAtEveryRank fills a node with 15 keys and forces the 16th insert
// at every possible rank, verifying no key is lost.
func TestSplitAtEveryRank(t *testing.T) {
	for r := 0; r < 16; r++ {
		tr := New()
		var keys []string
		for i := 0; i < 16; i++ {
			keys = append(keys, fmt.Sprintf("k%02d", i*2))
		}
		newKey := fmt.Sprintf("k%02d", r*2+1) // lands at rank r+? among evens
		for i, k := range keys {
			if i == 15 {
				break
			}
			put(tr, k, k)
		}
		put(tr, newKey, newKey)
		for i := 0; i < 15; i++ {
			mustGet(t, tr, keys[i], keys[i])
		}
		mustGet(t, tr, newKey, newKey)
	}
}

// TestSplitLongKeys does the same with suffix-bearing keys.
func TestSplitLongKeys(t *testing.T) {
	for r := 0; r < 16; r++ {
		tr := New()
		var keys []string
		for i := 0; i < 15; i++ {
			keys = append(keys, fmt.Sprintf("longerkey-%02d-suffix", i*2))
		}
		for _, k := range keys {
			put(tr, k, k)
		}
		newKey := fmt.Sprintf("longerkey-%02d-newone", r*2+1)
		put(tr, newKey, newKey)
		for _, k := range keys {
			mustGet(t, tr, k, k)
		}
		mustGet(t, tr, newKey, newKey)
	}
}
