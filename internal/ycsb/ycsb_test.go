package ycsb

import (
	"bytes"
	"math"
	"testing"
)

func TestWorkloadMixes(t *testing.T) {
	cases := map[string]struct{ read, update, scan float64 }{
		"A": {0.50, 0.50, 0},
		"B": {0.95, 0.05, 0},
		"C": {1.00, 0, 0},
		"E": {0, 0.05, 0.95},
	}
	for name, want := range cases {
		t.Run(name, func(t *testing.T) {
			s, err := New(name, 10000, 1)
			if err != nil {
				t.Fatal(err)
			}
			counts := map[Kind]int{}
			const n = 50000
			for i := 0; i < n; i++ {
				op := s.Next()
				counts[op.Kind]++
				switch op.Kind {
				case Update:
					if len(op.Data) != ColumnSize || op.Col < 0 || op.Col >= NumColumns {
						t.Fatalf("bad update op: %+v", op)
					}
				case ScanOp:
					if op.ScanLen < 1 || op.ScanLen > MaxScanLen {
						t.Fatalf("scan length %d out of range", op.ScanLen)
					}
				}
			}
			check := func(kind Kind, frac float64) {
				got := float64(counts[kind]) / n
				if math.Abs(got-frac) > 0.02 {
					t.Fatalf("%s: kind %d fraction %.3f, want %.2f", name, kind, got, frac)
				}
			}
			check(Read, want.read)
			check(Update, want.update)
			check(ScanOp, want.scan)
		})
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("Z", 100, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestKeysInRecordSpace(t *testing.T) {
	s, _ := New("A", 1000, 2)
	for i := 0; i < 5000; i++ {
		op := s.Next()
		if !bytes.HasPrefix(op.Key, []byte("user")) {
			t.Fatalf("bad key %q", op.Key)
		}
		if len(op.Key) < 5 || len(op.Key) > 24 {
			t.Fatalf("key length %d outside 5-24", len(op.Key))
		}
	}
}

func TestZipfianSkewInOps(t *testing.T) {
	s, _ := New("C", 10000, 3)
	counts := map[string]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[string(s.Next().Key)]++
	}
	// The hottest key should be far above the uniform expectation.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5*(n/10000) {
		t.Fatalf("hottest key drawn %d times; expected zipfian skew", max)
	}
}

func TestLoadRecord(t *testing.T) {
	k, cols := LoadRecord(42)
	if !bytes.Equal(k, []byte("user42")) {
		t.Fatalf("key %q", k)
	}
	if len(cols) != NumColumns {
		t.Fatalf("%d columns", len(cols))
	}
	for _, c := range cols {
		if len(c) != ColumnSize {
			t.Fatalf("column size %d", len(c))
		}
	}
	// Distinct records produce distinct column data.
	_, cols2 := LoadRecord(43)
	if bytes.Equal(cols[0], cols2[0]) {
		t.Fatal("records not distinguishable")
	}
}

func TestDeterministicStream(t *testing.T) {
	a, _ := New("A", 1000, 7)
	b, _ := New("A", 1000, 7)
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Kind != ob.Kind || !bytes.Equal(oa.Key, ob.Key) {
			t.Fatal("same seed must give same stream")
		}
	}
}
