package kvstore

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/wal"
)

// TestPartialColumnReplayHole exercises the recovery hole that used to be
// recorded in ROADMAP.md (and kept this test skipped):
//
// Two workers writing *partial-column* puts to the same key through
// different logs could replay a later delta without an earlier one if the
// earlier log vanished entirely: an empty or missing log contributes no
// constraint to the recovery cutoff t = min over logs of the log's maximum
// durable timestamp, so nothing stopped replay from applying worker B's
// column-1 delta (ts_b) onto a state that never saw worker A's column-0
// delta (ts_a < ts_b). The paper's recovery has the same property.
//
// The fix closes the hole twice over. Cross-log handoff anchoring: worker
// B's put executes over a value stamped through worker A's log, so it is
// logged column-complete with prev == 0 — an anchor carrying both columns —
// and recovery rebuilds the full value from B's log alone. Chain
// validation: had the record been a plain linked delta, its prev link would
// not have matched the replayed state and the key would have rolled back to
// its last anchored prefix (counted in RecoveryStats.BrokenChains) instead
// of serving the mis-merge. Either way the logset file reports worker 0's
// log as missing. The one outcome that must never happen again is the one
// this test used to document: serving column 1's delta without column 0's.
func TestPartialColumnReplayHole(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 2, SyncWrites: true, FlushInterval: time.Hour, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("shared")
	// Worker 0 writes column 0, worker 1 then writes column 1 of the same
	// key: two partial-column deltas in two different logs, ts_a < ts_b.
	s.Put(0, key, []value.ColPut{{Col: 0, Data: []byte("from-worker-0")}})
	s.Put(1, key, []value.ColPut{{Col: 1, Data: []byte("from-worker-1")}})
	if err := s.Flush(); err != nil { // both deltas durable and acknowledged
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The adversity: worker 0's log vanishes wholesale (lost directory
	// entry, dead device — not a torn suffix). Worker 1's log survives.
	files, err := wal.ListLogFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if f.Worker == 0 {
			if err := os.Remove(filepath.Join(f.Path)); err != nil {
				t.Fatal(err)
			}
		}
	}

	r, err := Open(Config{Dir: dir, Workers: 2, SyncWrites: true, FlushInterval: time.Hour, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	stats := r.RecoveryStats()
	if stats.MissingLogs < 1 {
		t.Errorf("RecoveryStats.MissingLogs = %d, want >= 1: worker 0's log vanished", stats.MissingLogs)
	}
	cols, ok := r.Get(key, nil)
	switch {
	case ok && len(cols) >= 2 && string(cols[0]) == "from-worker-0" && string(cols[1]) == "from-worker-1":
		// The handoff anchor in worker 1's log carried both columns:
		// recovery rebuilt the exact acknowledged value.
		if stats.BrokenChains != 0 {
			t.Errorf("BrokenChains = %d on a fully rebuilt value, want 0", stats.BrokenChains)
		}
	case !ok || len(cols) == 0 || (len(cols) >= 1 && string(cols[0]) == "" && len(cols) < 2):
		// Rollback to the anchored prefix (here: nothing — the key's only
		// anchor was in the vanished log) is acceptable only if accounted.
		if stats.BrokenChains < 1 {
			t.Errorf("key rolled back (cols=%q ok=%v) but BrokenChains = %d, want >= 1",
				cols, ok, stats.BrokenChains)
		}
	default:
		// The outcome that must never recur: a mixed state no serial
		// execution produced — column 1's delta without column 0's data.
		t.Fatalf("partial-column replay hole reproduced: recovered %q (ok=%v), want the full value or an accounted rollback", cols, ok)
	}
}
