package core

import (
	"testing"
	"testing/quick"
)

func TestEmptyPermutation(t *testing.T) {
	p := emptyPermutation()
	if p.count() != 0 {
		t.Fatalf("count = %d, want 0", p.count())
	}
	seen := map[int]bool{}
	for i := 0; i < width; i++ {
		s := p.slot(i)
		if s < 0 || s >= width || seen[s] {
			t.Fatalf("slot(%d) = %d: not a permutation", i, s)
		}
		seen[s] = true
	}
}

// checkPermutation verifies the permutation invariant: nkeys in range and
// keyindex a permutation of 0..width-1.
func checkPermutation(t *testing.T, p permutation) {
	t.Helper()
	if p.count() < 0 || p.count() > width {
		t.Fatalf("count %d out of range", p.count())
	}
	seen := map[int]bool{}
	for i := 0; i < width; i++ {
		s := p.slot(i)
		if s < 0 || s >= width || seen[s] {
			t.Fatalf("keyindex not a permutation: %v", p.indexes())
		}
		seen[s] = true
	}
}

func TestPermutationInsertRemove(t *testing.T) {
	p := emptyPermutation()
	var slots []int
	// Fill front-insert, so ranks shift every time.
	for i := 0; i < width; i++ {
		var slot int
		p, slot = p.insert(0)
		checkPermutation(t, p)
		slots = append([]int{slot}, slots...)
		if p.count() != i+1 {
			t.Fatalf("count = %d, want %d", p.count(), i+1)
		}
	}
	for rank, slot := range slots {
		if got := p.slot(rank); got != slot {
			t.Fatalf("rank %d slot = %d, want %d", rank, got, slot)
		}
	}
	// Remove from the middle repeatedly.
	for p.count() > 0 {
		rank := p.count() / 2
		slot := p.slot(rank)
		p = p.remove(rank)
		checkPermutation(t, p)
		// Freed slot must be first on the free list.
		if got := p.slot(p.count()); got != slot {
			t.Fatalf("freed slot = %d, want %d", got, slot)
		}
	}
}

func TestPermutationInsertAtEveryRank(t *testing.T) {
	for fill := 0; fill < width; fill++ {
		for rank := 0; rank <= fill; rank++ {
			p := emptyPermutation()
			for i := 0; i < fill; i++ {
				p, _ = p.insert(p.count())
			}
			before := p.indexes()
			q, slot := p.insert(rank)
			checkPermutation(t, q)
			if q.count() != fill+1 {
				t.Fatalf("count = %d, want %d", q.count(), fill+1)
			}
			if q.slot(rank) != slot {
				t.Fatalf("inserted slot not at rank %d", rank)
			}
			// Earlier live entries unchanged; later shifted by one.
			for i := 0; i < rank; i++ {
				if q.slot(i) != before[i] {
					t.Fatalf("rank %d disturbed", i)
				}
			}
			for i := rank; i < fill; i++ {
				if q.slot(i+1) != before[i] {
					t.Fatalf("rank %d not shifted", i)
				}
			}
		}
	}
}

// TestPermutationQuick drives random insert/remove sequences and checks the
// permutation stays a permutation and mirrors a reference slice.
func TestPermutationQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		p := emptyPermutation()
		var ref []int // ref[rank] = slot
		for _, op := range ops {
			if op&1 == 0 && p.count() < width {
				rank := int(op>>1) % (p.count() + 1)
				var slot int
				p, slot = p.insert(rank)
				ref = append(ref[:rank], append([]int{slot}, ref[rank:]...)...)
			} else if p.count() > 0 {
				rank := int(op>>1) % p.count()
				p = p.remove(rank)
				ref = append(ref[:rank], ref[rank+1:]...)
			}
			if p.count() != len(ref) {
				return false
			}
			for i, slot := range ref {
				if p.slot(i) != slot {
					return false
				}
			}
			seen := 0
			for i := 0; i < width; i++ {
				seen |= 1 << uint(p.slot(i))
			}
			if seen != (1<<width)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityPerm(t *testing.T) {
	for c := 0; c <= width; c++ {
		p := identityPerm(c)
		checkPermutation(t, p)
		if p.count() != c {
			t.Fatalf("count = %d, want %d", p.count(), c)
		}
		for i := 0; i < c; i++ {
			if p.slot(i) != i {
				t.Fatalf("slot(%d) = %d, want identity", i, p.slot(i))
			}
		}
	}
}
