package server

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/wire"
)

func startUDPServer(t *testing.T, ports int) (*Server, []*net.UDPAddr) {
	t.Helper()
	store, err := kvstore.Open(kvstore.Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, ports)
	addrs, err := srv.ListenUDP("127.0.0.1", 0, ports)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return srv, addrs
}

func TestUDPEndToEnd(t *testing.T) {
	_, addrs := startUDPServer(t, 1)
	c, err := client.DialUDP(addrs[0].String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resps, err := c.Do([]wire.Request{
		{Op: wire.OpPut, Key: []byte("k"), Puts: []wire.ColData{{Col: 0, Data: []byte("v")}}},
		{Op: wire.OpGet, Key: []byte("k")},
		{Op: wire.OpGet, Key: []byte("missing")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Status != wire.StatusOK {
		t.Fatal("put failed")
	}
	if resps[1].Status != wire.StatusOK || string(resps[1].Cols[0]) != "v" {
		t.Fatalf("get: %+v", resps[1])
	}
	if resps[2].Status != wire.StatusNotFound {
		t.Fatal("phantom key over UDP")
	}
}

func TestUDPPerCorePorts(t *testing.T) {
	// The paper's per-core UDP ports: distinct sockets, each bound to one
	// worker's log stream; all serve the same store.
	_, addrs := startUDPServer(t, 3)
	if len(addrs) != 3 {
		t.Fatalf("got %d ports", len(addrs))
	}
	seen := map[int]bool{}
	for _, a := range addrs {
		if seen[a.Port] {
			t.Fatal("duplicate port")
		}
		seen[a.Port] = true
	}
	// Write through port 0, read through port 2: shared tree.
	c0, _ := client.DialUDP(addrs[0].String(), time.Second)
	defer c0.Close()
	c2, _ := client.DialUDP(addrs[2].String(), time.Second)
	defer c2.Close()
	if _, err := c0.Do([]wire.Request{{Op: wire.OpPut, Key: []byte("x"), Puts: []wire.ColData{{Col: 0, Data: []byte("1")}}}}); err != nil {
		t.Fatal(err)
	}
	resps, err := c2.Do([]wire.Request{{Op: wire.OpGet, Key: []byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Status != wire.StatusOK || string(resps[0].Cols[0]) != "1" {
		t.Fatal("cross-port read failed: store not shared")
	}
}

func TestUDPBatch(t *testing.T) {
	_, addrs := startUDPServer(t, 1)
	c, _ := client.DialUDP(addrs[0].String(), time.Second)
	defer c.Close()
	const batch = 200
	reqs := make([]wire.Request, batch)
	for i := range reqs {
		reqs[i] = wire.Request{Op: wire.OpPut, Key: []byte(fmt.Sprintf("b%04d", i)),
			Puts: []wire.ColData{{Col: 0, Data: []byte("v")}}}
	}
	resps, err := c.Do(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Status != wire.StatusOK {
			t.Fatalf("put %d failed", i)
		}
	}
}

func TestUDPMalformedDatagramIgnored(t *testing.T) {
	_, addrs := startUDPServer(t, 1)
	raw, err := net.Dial("udp", addrs[0].String())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("not-a-frame"))
	raw.Close()
	// Server must still serve valid clients.
	c, _ := client.DialUDP(addrs[0].String(), time.Second)
	defer c.Close()
	if _, err := c.Do([]wire.Request{{Op: wire.OpPut, Key: []byte("k"), Puts: []wire.ColData{{Col: 0, Data: []byte("v")}}}}); err != nil {
		t.Fatalf("server wedged by malformed datagram: %v", err)
	}
}

func TestTCPPipelining(t *testing.T) {
	_, addr := startServer(t, "")
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Three batches in flight before reading any responses.
	for b := 0; b < 3; b++ {
		reqs := make([]wire.Request, 10)
		for i := range reqs {
			reqs[i] = wire.Request{Op: wire.OpPut, Key: []byte(fmt.Sprintf("p%d-%d", b, i)),
				Puts: []wire.ColData{{Col: 0, Data: []byte("v")}}}
		}
		if err := c.Send(reqs); err != nil {
			t.Fatal(err)
		}
	}
	for b := 0; b < 3; b++ {
		resps, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(resps) != 10 {
			t.Fatalf("batch %d: %d responses", b, len(resps))
		}
		for _, r := range resps {
			if r.Status != wire.StatusOK {
				t.Fatal("pipelined put failed")
			}
		}
	}
	// All writes visible afterwards.
	got, ok, err := c.Get([]byte("p2-9"), nil)
	if err != nil || !ok || string(got[0]) != "v" {
		t.Fatalf("pipelined write lost: %v %v %v", got, ok, err)
	}
}

// UDP is v1-only: a hello datagram and a v2 tagged frame must both be
// dropped cleanly (no response, no crash), and the socket must keep
// serving v1 traffic afterwards.
func TestUDPRejectsV2Frames(t *testing.T) {
	_, addrs := startUDPServer(t, 1)
	raw, err := net.DialUDP("udp", nil, addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// A hello frame: its leading 0xFFFFFFFF is an impossible v1 length.
	if _, err := raw.Write(wire.AppendHello(nil, wire.Version2)); err != nil {
		t.Fatal(err)
	}
	// A v2 tagged request frame: the marked length word is likewise
	// rejected by ParseFrame before the tag can masquerade as a count.
	tagged, err := wire.AppendTaggedRequests(nil, 7, []wire.Request{{Op: wire.OpGet, Key: []byte("k")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(tagged); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 2048)
	if n, err := raw.Read(buf); err == nil {
		t.Fatalf("server answered a v2 datagram with %d bytes", n)
	}

	// The socket still serves v1.
	c, err := client.DialUDP(addrs[0].String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resps, err := c.Do([]wire.Request{{Op: wire.OpStats}})
	if err != nil || resps[0].Status != wire.StatusOK {
		t.Fatalf("v1 datagram after v2 junk: %v %+v", err, resps)
	}
}
