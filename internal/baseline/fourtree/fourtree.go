// Package fourtree implements the paper's "4-tree" baseline (§6.2,
// Figure 8): a tree with fanout 4 whose wider nodes nearly halve average
// depth relative to a binary tree and pack the routing information (four
// child pointers plus the first bytes of each key) into the leading cache
// lines.
//
// As in the paper, all internal nodes are full, reads are lockless and never
// retry, and inserts are lock-free using compare-and-swap: internal nodes
// are immutable once published (a k-ary search tree in the style of Brown
// and Helga), and leaves are replaced wholesale through their parent's child
// pointer. The tree never rebalances — 4-tree "would be difficult to
// balance", which is why the paper moves on to B-trees.
package fourtree

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"

	"repro/internal/value"
)

const fanout = 4

// Tree is a concurrent fanout-4 search tree.
type Tree struct {
	root  atomic.Pointer[node]
	count atomic.Int64
}

// node is either an immutable internal node (3 separator keys, 4 children)
// or a leaf (up to 3 sorted keys with values). Leaves are immutable too;
// mutation replaces the leaf via CAS in the parent. leads holds each key's
// first 8 bytes as a big-endian integer — Figure 8's ladder is cumulative,
// so 4-tree includes "+IntCmp"; it also mirrors the paper's layout, where
// the node's first cache line holds "the first 8 bytes of each of its keys".
type node struct {
	leaf  bool
	keys  [][]byte
	leads []uint64
	vals  []*value.Value // leaf only
	kids  [fanout]atomic.Pointer[node]
}

// leadOf derives a key's 8-byte lead integer without allocating.
func leadOf(k []byte) uint64 {
	if len(k) >= 8 {
		return binary.BigEndian.Uint64(k)
	}
	var buf [8]byte
	copy(buf[:], k)
	return binary.BigEndian.Uint64(buf[:])
}

func leadsOf(keys [][]byte) []uint64 {
	out := make([]uint64, len(keys))
	for i, k := range keys {
		out[i] = leadOf(k)
	}
	return out
}

// cmpKey orders probe (k, lead) against stored key i of n: lead integers
// first, bytes only on ties.
func (n *node) cmpKey(k []byte, lead uint64, i int) int {
	switch {
	case lead < n.leads[i]:
		return -1
	case lead > n.leads[i]:
		return 1
	}
	return bytes.Compare(k, n.keys[i])
}

// New creates an empty tree.
func New() *Tree {
	t := &Tree{}
	t.root.Store(&node{leaf: true})
	return t
}

// Len returns the number of keys.
func (t *Tree) Len() int { return int(t.count.Load()) }

// childIndex routes key k within an internal node: child i holds keys in
// [keys[i-1], keys[i]).
func (n *node) childIndex(k []byte, lead uint64) int {
	i := 0
	for i < len(n.keys) && n.cmpKey(k, lead, i) >= 0 {
		i++
	}
	return i
}

// Get returns the value for key. Reads never retry: every visited node is
// immutable.
func (t *Tree) Get(key []byte) (*value.Value, bool) {
	lead := leadOf(key)
	n := t.root.Load()
	for !n.leaf {
		n = n.kids[n.childIndex(key, lead)].Load()
	}
	for i := range n.keys {
		if n.cmpKey(key, lead, i) == 0 {
			return n.vals[i], true
		}
	}
	return nil, false
}

// Put stores v for key, reporting whether an existing value was replaced.
func (t *Tree) Put(key []byte, v *value.Value) bool {
	for {
		parent, idx, leaf := t.findLeaf(key)
		replacement, replaced := leaf.withPut(key, v)
		if t.swap(parent, idx, leaf, replacement) {
			if !replaced {
				t.count.Add(1)
			}
			return replaced
		}
	}
}

// Remove deletes key, reporting whether it was present.
func (t *Tree) Remove(key []byte) bool {
	for {
		parent, idx, leaf := t.findLeaf(key)
		replacement, removed := leaf.withRemove(key)
		if !removed {
			return false
		}
		if t.swap(parent, idx, leaf, replacement) {
			t.count.Add(-1)
			return true
		}
	}
}

// findLeaf descends to the leaf for key, returning its parent and child
// index (parent nil when the leaf is the root).
func (t *Tree) findLeaf(key []byte) (parent *node, idx int, leaf *node) {
	lead := leadOf(key)
	n := t.root.Load()
	for !n.leaf {
		parent = n
		idx = n.childIndex(key, lead)
		n = n.kids[idx].Load()
	}
	return parent, idx, n
}

// swap installs repl in place of old, via the root pointer or the parent's
// child slot.
func (t *Tree) swap(parent *node, idx int, old, repl *node) bool {
	if parent == nil {
		return t.root.CompareAndSwap(old, repl)
	}
	return parent.kids[idx].CompareAndSwap(old, repl)
}

// withPut returns a replacement for leaf n with key set to v. When the leaf
// overflows it becomes a full internal node over four single-key leaves
// (internal nodes are always created full).
func (n *node) withPut(key []byte, v *value.Value) (*node, bool) {
	lead := leadOf(key)
	for i := range n.keys {
		if n.cmpKey(key, lead, i) == 0 {
			repl := &node{leaf: true, keys: n.keys, leads: n.leads, vals: append([]*value.Value(nil), n.vals...)}
			repl.vals[i] = v
			return repl, true
		}
	}
	keys := make([][]byte, 0, len(n.keys)+1)
	vals := make([]*value.Value, 0, len(n.vals)+1)
	pos := 0
	for pos < len(n.keys) && bytes.Compare(n.keys[pos], key) < 0 {
		pos++
	}
	keys = append(keys, n.keys[:pos]...)
	keys = append(keys, append([]byte(nil), key...))
	keys = append(keys, n.keys[pos:]...)
	vals = append(vals, n.vals[:pos]...)
	vals = append(vals, v)
	vals = append(vals, n.vals[pos:]...)
	if len(keys) < fanout {
		return &node{leaf: true, keys: keys, leads: leadsOf(keys), vals: vals}, false
	}
	// Overflow: build a full internal node with four single-key leaves.
	in := &node{keys: keys[1:], leads: leadsOf(keys[1:])}
	for i := 0; i < fanout; i++ {
		in.kids[i].Store(&node{leaf: true, keys: keys[i : i+1], leads: leadsOf(keys[i : i+1]), vals: vals[i : i+1]})
	}
	return in, false
}

// withRemove returns a replacement leaf without key; removed reports whether
// the key was present.
func (n *node) withRemove(key []byte) (*node, bool) {
	lead := leadOf(key)
	for i := range n.keys {
		if n.cmpKey(key, lead, i) == 0 {
			repl := &node{leaf: true}
			repl.keys = append(append([][]byte(nil), n.keys[:i]...), n.keys[i+1:]...)
			repl.leads = leadsOf(repl.keys)
			repl.vals = append(append([]*value.Value(nil), n.vals[:i]...), n.vals[i+1:]...)
			return repl, true
		}
	}
	return nil, false
}
