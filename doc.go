// Package repro reproduces "Cache Craftiness for Fast Multicore Key-Value
// Storage" (Mao, Kohler, Morris — EuroSys 2012): the Masstree in-memory
// key-value store, its substrates (logging, checkpointing, networking), the
// paper's baseline data structures, and a benchmark harness that regenerates
// every table and figure of the paper's evaluation.
//
// Both halves of the request pipeline are batched and allocation-free in
// steady state. Reads: scratch-aliasing wire decoding, PALM-style batched
// lookups (§4.8), and arena-appended responses. Writes: runs of puts
// descend the tree in key order sharing one border-node lock acquisition
// per run (core.PutBatchInto), each put builds a single packed value
// allocation (value.BuildAt), versions come from per-worker loosely
// synchronized clocks instead of a global counter (§5.1, kvstore's
// shardedClock), and log records are encoded directly into per-worker
// double-buffered logs whose flushes never block appenders (§5, wal).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results. The implementation lives under internal/; runnable entry points
// are under cmd/ and examples/. BENCH_pipeline.json and
// BENCH_writepath.json record the read- and write-path pipeline numbers.
package repro
