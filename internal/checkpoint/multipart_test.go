package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/value"
	"repro/internal/vfs"
)

const mpDir = "/ckpt"

func memDir(t *testing.T) *vfs.MemFS {
	t.Helper()
	m := vfs.NewMemFS()
	if err := m.MkdirAll(mpDir, 0o755); err != nil {
		t.Fatal(err)
	}
	return m
}

// writePartsN writes es split into parts ranges by index.
func writePartsN(t *testing.T, fsys vfs.FS, startTS uint64, parts int, es []Entry) int {
	t.Helper()
	n, err := WriteParts(fsys, mpDir, startTS, parts, func(k int, emit func(Entry) error) error {
		lo, hi := k*len(es)/parts, (k+1)*len(es)/parts
		for _, e := range es[lo:hi] {
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func loadAll(t *testing.T, fsys vfs.FS) (uint64, []Entry, error) {
	t.Helper()
	var got []Entry
	ts, err := LoadLatestFS(fsys, mpDir, func(e Entry) {
		// Entries alias the load buffer; copy for comparison after return.
		got = append(got, Entry{Key: append([]byte(nil), e.Key...), Value: e.Value})
	})
	return ts, got, err
}

func TestWritePartsRoundTrip(t *testing.T) {
	for _, parts := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			m := memDir(t)
			es := entries(500)
			if n := writePartsN(t, m, 99, parts, es); n != 500 {
				t.Fatalf("wrote %d entries", n)
			}
			ts, got, err := loadAll(t, m)
			if err != nil || ts != 99 {
				t.Fatalf("ts=%d err=%v", ts, err)
			}
			if len(got) != len(es) {
				t.Fatalf("loaded %d entries, want %d", len(got), len(es))
			}
			sort.Slice(got, func(i, j int) bool { return bytes.Compare(got[i].Key, got[j].Key) < 0 })
			for i := range es {
				if !bytes.Equal(got[i].Key, es[i].Key) || !value.Equal(got[i].Value, es[i].Value) ||
					got[i].Value.Version() != es[i].Value.Version() {
					t.Fatalf("entry %d differs", i)
				}
			}
		})
	}
}

func TestMissingPartFallsBack(t *testing.T) {
	m := memDir(t)
	writePartsN(t, m, 10, 2, entries(100))
	writePartsN(t, m, 20, 3, entries(200))
	if err := m.Remove(filepath.Join(mpDir, PartName(20, 1))); err != nil {
		t.Fatal(err)
	}
	ts, got, err := loadAll(t, m)
	if err != nil || ts != 10 || len(got) != 100 {
		t.Fatalf("ts=%d n=%d err=%v; want fallback to ts=10", ts, len(got), err)
	}
}

func TestCorruptPartFallsBack(t *testing.T) {
	m := memDir(t)
	writePartsN(t, m, 10, 2, entries(100))
	writePartsN(t, m, 20, 2, entries(200))
	p := filepath.Join(mpDir, PartName(20, 0))
	b, _ := m.ReadFile(p)
	b[len(b)/2] ^= 0xff
	f, _ := m.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	f.Write(b)
	f.Close()
	ts, got, err := loadAll(t, m)
	if err != nil || ts != 10 || len(got) != 100 {
		t.Fatalf("ts=%d n=%d err=%v; want fallback to ts=10", ts, len(got), err)
	}
}

func TestCorruptManifestFallsBack(t *testing.T) {
	m := memDir(t)
	writePartsN(t, m, 10, 1, entries(50))
	writePartsN(t, m, 20, 2, entries(60))
	p := filepath.Join(mpDir, ManifestName(20))
	b, _ := m.ReadFile(p)
	f, _ := m.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	f.Write(b[:len(b)-3]) // truncate
	f.Close()
	ts, got, err := loadAll(t, m)
	if err != nil || ts != 10 || len(got) != 50 {
		t.Fatalf("ts=%d n=%d err=%v; want fallback to ts=10", ts, len(got), err)
	}
}

func TestOrphanPartsIgnored(t *testing.T) {
	// Parts without a manifest (a crashed multi-part write) are invisible.
	m := memDir(t)
	writePartsN(t, m, 10, 1, entries(50))
	writePartsN(t, m, 20, 2, entries(60))
	if err := m.Remove(filepath.Join(mpDir, ManifestName(20))); err != nil {
		t.Fatal(err)
	}
	ts, got, err := loadAll(t, m)
	if err != nil || ts != 10 || len(got) != 50 {
		t.Fatalf("ts=%d n=%d err=%v", ts, len(got), err)
	}
}

func TestManifestOutranksLegacyAtSameTS(t *testing.T) {
	m := memDir(t)
	es := entries(10)
	i := 0
	if _, _, err := WriteFS(m, mpDir, 30, func() (Entry, bool) {
		if i >= 3 {
			return Entry{}, false
		}
		e := es[i]
		i++
		return e, true
	}); err != nil {
		t.Fatal(err)
	}
	writePartsN(t, m, 30, 2, es)
	ts, got, err := loadAll(t, m)
	if err != nil || ts != 30 || len(got) != 10 {
		t.Fatalf("ts=%d n=%d err=%v; want the 10-entry manifest checkpoint", ts, len(got), err)
	}
}

func TestDropRemovesPartsManifestsAndTemps(t *testing.T) {
	m := memDir(t)
	writePartsN(t, m, 10, 3, entries(30))
	writePartsN(t, m, 20, 2, entries(30))
	// A stray temp from a crashed attempt and an orphan part.
	f, err := m.CreateTemp(mpDir, "ckpt-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("junk"))
	f.Close()
	if err := DropFS(m, mpDir, 20); err != nil {
		t.Fatal(err)
	}
	ents, _ := m.ReadDir(mpDir)
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	want := []string{PartName(20, 0), PartName(20, 1), ManifestName(20)} // ReadDir name order
	if len(names) != len(want) {
		t.Fatalf("after drop: %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("after drop: %v, want %v", names, want)
		}
	}
}

func TestWritePartsCommitLeavesNothingPending(t *testing.T) {
	m := memDir(t)
	writePartsN(t, m, 10, 4, entries(100))
	if n := len(m.PendingOps()); n != 0 {
		t.Fatalf("%d directory ops still volatile after WriteParts returned", n)
	}
	// And the whole checkpoint survives a conservative crash.
	m.Crash(nil)
	ts, got, err := loadAll(t, m)
	if err != nil || ts != 10 || len(got) != 100 {
		t.Fatalf("after crash: ts=%d n=%d err=%v", ts, len(got), err)
	}
}

// failNthCreate fails the n-th CreateTemp with a transient error (the
// process survives, unlike a vfs.Fault crash).
type failNthCreate struct {
	vfs.FS
	n     int64
	calls atomic.Int64
}

func (f *failNthCreate) CreateTemp(dir, pattern string) (vfs.File, error) {
	if f.calls.Add(1) == f.n {
		return nil, errors.New("transient: no space left on device")
	}
	return f.FS.CreateTemp(dir, pattern)
}

// TestWritePartsFailureLeaksNothing: when the manifest write fails after
// every part has been renamed into place, the renamed parts (a full store
// dump) must be removed — a periodically retried failing checkpoint must
// not monotonically fill the disk with orphans.
func TestWritePartsFailureLeaksNothing(t *testing.T) {
	m := memDir(t)
	fsys := &failNthCreate{FS: m, n: 4} // parts 1..3 succeed, manifest's temp fails
	_, err := WriteParts(fsys, mpDir, 10, 3, func(k int, emit func(Entry) error) error {
		for _, e := range entries(30)[k*10 : (k+1)*10] {
			if err := emit(e); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("manifest failure not reported")
	}
	ents, _ := m.ReadDir(mpDir)
	for _, e := range ents {
		t.Errorf("leaked file after failed checkpoint: %s", e.Name())
	}
}

func TestReadValidatesBeforeApply(t *testing.T) {
	// A checkpoint with a corrupt part must apply nothing at all — the
	// load is all-or-nothing even though three of four parts are intact.
	m := memDir(t)
	writePartsN(t, m, 10, 4, entries(400))
	p := filepath.Join(mpDir, PartName(10, 3))
	b, _ := m.ReadFile(p)
	b[len(b)-1] ^= 0xff
	f, _ := m.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	f.Write(b)
	f.Close()
	applied := 0
	_, err := LoadLatestFS(m, mpDir, func(Entry) { applied++ })
	if !errors.Is(err, ErrNone) {
		t.Fatalf("err = %v, want ErrNone (only checkpoint is torn)", err)
	}
	if applied != 0 {
		t.Fatalf("half-applied %d entries from a torn checkpoint", applied)
	}
}
