package walchain_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/walchain"
)

func TestWalchain(t *testing.T) {
	analysistest.Run(t, walchain.Analyzer, "a")
}
