// MYCSB: run the paper's modified YCSB workloads (§7) against an embedded
// Masstree store and print throughput per workload — a miniature of
// Figure 13's Masstree column.
//
//	go run ./examples/ycsb -records 100000 -ops 400000
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"repro/internal/kvstore"
	"repro/internal/value"
	"repro/internal/ycsb"
)

func main() {
	var (
		records = flag.Uint64("records", 100_000, "database size")
		ops     = flag.Int("ops", 400_000, "operations per workload")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent clients")
	)
	flag.Parse()

	store, err := kvstore.Open(kvstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	fmt.Printf("loading %d records (%d columns x %d bytes)...\n", *records, ycsb.NumColumns, ycsb.ColumnSize)
	for i := uint64(0); i < *records; i++ {
		key, cols := ycsb.LoadRecord(i)
		puts := make([]value.ColPut, len(cols))
		for c, col := range cols {
			puts[c] = value.ColPut{Col: c, Data: col}
		}
		store.Put(0, key, puts)
	}

	for _, name := range []string{"A", "B", "C", "E"} {
		perWorker := *ops / *workers
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				src, err := ycsb.New(name, *records, int64(w+1))
				if err != nil {
					log.Fatal(err)
				}
				for i := 0; i < perWorker; i++ {
					op := src.Next()
					switch op.Kind {
					case ycsb.Read:
						store.Get(op.Key, ycsb.AllCols)
					case ycsb.Update:
						store.Put(w, op.Key, []value.ColPut{{Col: op.Col, Data: op.Data}})
					case ycsb.ScanOp:
						store.GetRange(op.Key, op.ScanLen, []int{op.Col})
					}
				}
			}(w)
		}
		wg.Wait()
		el := time.Since(start)
		tput := float64(perWorker**workers) / el.Seconds()
		fmt.Printf("MYCSB-%s: %8.0f ops/s  (%d ops in %s, %d workers)\n",
			name, tput, perWorker**workers, el.Round(time.Millisecond), *workers)
	}
}
