// Package server implements the Masstree network server (§5): a TCP
// listener whose per-connection goroutines execute batched queries against
// the store. The paper's benchmarks use long-lived TCP query connections
// from few clients or client aggregators, "a common operating mode that is
// equally effective at avoiding network overhead"; batching many queries per
// message amortizes network and syscall costs.
//
// Execution is batch-aware in both directions: a run of consecutive OpGet
// requests within one message is served through Session.GetBatchInto, and a
// run of consecutive OpPut requests through Session.PutBatchInto — both
// descend the tree in key order so consecutive operations share the upper
// tree levels' cache lines (§4.8's PALM-style batching), and the put run
// additionally shares border-node lock acquisitions and log-buffer locks.
// The request path is built for steady-state zero allocation: each
// connection owns a connScratch whose wire decode buffers, response slice,
// column/pair/range arenas, and ColPut scratch are retained across
// messages, and decoded requests alias the frame body rather than copying
// it. Put data is not copied either — the store copies it into the packed
// value and the log buffer — so a put's only steady-state allocation is the
// value itself.
//
// Each connection is bound to a worker id (round-robin), which selects the
// log its puts append to — the paper's per-core logs mapped onto Go's
// scheduler.
package server

import (
	"bufio"
	"net"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/kvstore"
	"repro/internal/value"
	"repro/internal/wire"
)

// Server serves a kvstore over TCP.
type Server struct {
	store *kvstore.Store
	ln    net.Listener

	nextWorker atomic.Int64
	workers    int

	// batchedGets counts OpGet requests served through the batched
	// Session.GetBatch path (exported as the "batched_gets" stat);
	// batchedPuts is its write-side twin for Session.PutBatchInto
	// ("batched_puts").
	batchedGets atomic.Int64
	batchedPuts atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	udp   []*udpListener
	wg    sync.WaitGroup
	done  atomic.Bool
}

// New creates a server for store with the given number of logical workers
// (log streams). workers <= 0 defaults to 1.
func New(store *kvstore.Store, workers int) *Server {
	if workers <= 0 {
		workers = 1
	}
	return &Server{store: store, workers: workers, conns: map[net.Conn]struct{}{}}
}

// Listen starts accepting connections on addr ("host:port"; ":0" picks a
// free port). It returns immediately; Addr reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.done.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		worker := int(s.nextWorker.Add(1)-1) % s.workers
		s.wg.Add(1)
		go s.serveConn(conn, worker)
	}
}

// connScratch is one connection's reusable execution state. Every buffer is
// retained across messages, so a connection in steady state allocates only
// the packed values its puts publish and responses that outgrow every
// previous message.
type connScratch struct {
	dec     wire.DecodeBuf       // request decode buffers; requests alias the frame
	enc     []byte               // response encode buffer
	resps   []wire.Response      // response slice, one per request
	cols    [][]byte             // arena backing Response.Cols for this message
	keys    [][]byte             // key slice handed to batched session calls
	puts    []value.ColPut       // flat OpPut conversion arena
	putRuns [][]value.ColPut     // per-request windows into puts for PutBatchInto
	pairs   []wire.Pair          // arena backing Response.Pairs for this message
	rng     kvstore.RangeScratch // arenas behind Session.GetRangeInto
}

// minBatchRun is the shortest run of consecutive same-op requests routed
// through a batched path; a single get or put gains nothing from batch
// ordering.
const minBatchRun = 2

// maxRetainedScratch bounds how much scratch one connection keeps between
// messages: buffers grown past this by an unusually large message are
// released afterwards rather than pinned for the connection's lifetime.
const maxRetainedScratch = 1 << 20

// shrink releases oversized buffers after a message has been encoded.
func (sc *connScratch) shrink() {
	sc.dec.Shrink(maxRetainedScratch)
	if cap(sc.enc) > maxRetainedScratch {
		sc.enc = nil
	}
	if cap(sc.resps)*64 > maxRetainedScratch { // ~sizeof(wire.Response)
		sc.resps = nil
	}
	if cap(sc.cols)*24 > maxRetainedScratch {
		sc.cols = nil
	}
	if cap(sc.keys)*24 > maxRetainedScratch {
		sc.keys = nil
	}
	if cap(sc.puts)*32 > maxRetainedScratch { // ~sizeof(value.ColPut)
		sc.puts = nil
	}
	if cap(sc.putRuns)*24 > maxRetainedScratch {
		sc.putRuns = nil
	}
	if cap(sc.pairs)*48 > maxRetainedScratch {
		sc.pairs = nil
	}
	sc.rng.Shrink(maxRetainedScratch)
}

func (s *Server) serveConn(conn net.Conn, worker int) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess := s.store.Session(worker)
	defer sess.Close()
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	sc := &connScratch{}
	for {
		reqs, err := wire.ReadRequestsInto(r, &sc.dec)
		if err != nil {
			// EOF and friends are orderly shutdown; anything else is a
			// protocol error. Either way, drop the connection.
			return
		}
		s.executeBatch(sess, reqs, sc)
		if err := wire.WriteResponsesInto(w, sc.resps, &sc.enc); err != nil {
			return
		}
		sc.shrink()
	}
}

// executeBatch fills sc.resps with one response per request. Runs of
// consecutive OpGets (or OpPuts) of length >= minBatchRun are served
// through the session's batched lookup (or batched put); everything else
// executes one at a time.
func (s *Server) executeBatch(sess *kvstore.Session, reqs []wire.Request, sc *connScratch) {
	if cap(sc.resps) < len(reqs) {
		sc.resps = make([]wire.Response, len(reqs))
	}
	sc.resps = sc.resps[:len(reqs)]
	sc.cols = sc.cols[:0]
	sc.pairs = sc.pairs[:0]
	sc.rng.Reset()
	for i := 0; i < len(reqs); {
		if op := reqs[i].Op; op == wire.OpGet || op == wire.OpPut {
			j := i + 1
			for j < len(reqs) && reqs[j].Op == op {
				j++
			}
			if j-i >= minBatchRun {
				if op == wire.OpGet {
					s.executeGetRun(sess, reqs[i:j], sc.resps[i:j], sc)
				} else {
					s.executePutRun(sess, reqs[i:j], sc.resps[i:j], sc)
				}
				i = j
				continue
			}
		}
		sc.resps[i] = s.execute(sess, &reqs[i], sc)
		i++
	}
}

// executeGetRun serves a run of OpGet requests through Session.GetBatchInto
// (§4.8). Response columns are appended to sc.cols, a per-message arena.
func (s *Server) executeGetRun(sess *kvstore.Session, reqs []wire.Request, resps []wire.Response, sc *connScratch) {
	sc.keys = sc.keys[:0]
	for i := range reqs {
		sc.keys = append(sc.keys, reqs[i].Key)
	}
	vals, found := sess.GetBatchInto(sc.keys)
	s.batchedGets.Add(int64(len(reqs)))
	for i := range reqs {
		if !found[i] {
			resps[i] = wire.Response{Status: wire.StatusNotFound}
			continue
		}
		start := len(sc.cols)
		sc.cols = kvstore.AppendCols(sc.cols, vals[i], reqs[i].Cols)
		resps[i] = wire.Response{Status: wire.StatusOK, Cols: sc.cols[start:len(sc.cols):len(sc.cols)]}
	}
}

// executePutRun serves a run of OpPut requests through Session.PutBatchInto
// (§4.8 applied to writes): keys descend in tree order, co-located keys
// share one border-node lock acquisition, and all log records are encoded
// under one log-buffer lock. The decoded put data still aliases the frame —
// the store copies it into the packed value and the log, so no per-put copy
// is made here.
func (s *Server) executePutRun(sess *kvstore.Session, reqs []wire.Request, resps []wire.Response, sc *connScratch) {
	sc.keys = sc.keys[:0]
	sc.puts = sc.puts[:0]
	sc.putRuns = sc.putRuns[:0]
	for i := range reqs {
		sc.keys = append(sc.keys, reqs[i].Key)
		start := len(sc.puts)
		for _, p := range reqs[i].Puts {
			sc.puts = append(sc.puts, value.ColPut{Col: p.Col, Data: p.Data})
		}
		// The window stays valid even if sc.puts later reallocates: it
		// aliases the already-written backing array.
		sc.putRuns = append(sc.putRuns, sc.puts[start:len(sc.puts):len(sc.puts)])
	}
	vers := sess.PutBatchInto(sc.keys, sc.putRuns)
	s.batchedPuts.Add(int64(len(reqs)))
	for i := range reqs {
		resps[i] = wire.Response{Status: wire.StatusOK, Version: vers[i]}
	}
}

// execute serves one request. Responses may alias sc's arenas and the
// request's frame buffer; they are valid until the next message.
func (s *Server) execute(sess *kvstore.Session, r *wire.Request, sc *connScratch) wire.Response {
	switch r.Op {
	case wire.OpGet:
		start := len(sc.cols)
		cols, ok := sess.GetInto(r.Key, r.Cols, sc.cols)
		sc.cols = cols
		if !ok {
			return wire.Response{Status: wire.StatusNotFound}
		}
		return wire.Response{Status: wire.StatusOK, Cols: sc.cols[start:len(sc.cols):len(sc.cols)]}
	case wire.OpPut:
		// The decoded put data aliases the connection's frame buffer; that
		// is safe because the store copies it into the packed value and the
		// log buffer before returning.
		sc.puts = sc.puts[:0]
		for _, p := range r.Puts {
			sc.puts = append(sc.puts, value.ColPut{Col: p.Col, Data: p.Data})
		}
		ver := sess.Put(r.Key, sc.puts)
		return wire.Response{Status: wire.StatusOK, Version: ver}
	case wire.OpRemove:
		if sess.Remove(r.Key) {
			return wire.Response{Status: wire.StatusOK}
		}
		return wire.Response{Status: wire.StatusNotFound}
	case wire.OpGetRange:
		// Range results are appended into the connection's range arenas
		// (keys, columns, pairs all reused across messages); the wire pairs
		// alias them until the response is encoded.
		pairs := sess.GetRangeInto(r.Key, r.N, r.Cols, &sc.rng)
		start := len(sc.pairs)
		for _, p := range pairs {
			sc.pairs = append(sc.pairs, wire.Pair{Key: p.Key, Cols: p.Cols})
		}
		return wire.Response{Status: wire.StatusOK, Pairs: sc.pairs[start:len(sc.pairs):len(sc.pairs)]}
	case wire.OpStats:
		return s.statsResponse()
	default:
		return wire.Response{Status: wire.StatusError}
	}
}

// statsResponse reports store size, tree operation counters, batching
// counters, and logging health as metric name/value pairs. flush_errors is
// the count of failed log flushes (background group commits included); a
// non-zero value means acknowledged puts may not be durable.
func (s *Server) statsResponse() wire.Response {
	st := s.store.Stats()
	flushErrs, _ := s.store.FlushStats()
	metric := func(name string, v int64) wire.Pair {
		return wire.Pair{Key: []byte(name), Cols: [][]byte{[]byte(strconv.FormatInt(v, 10))}}
	}
	return wire.Response{Status: wire.StatusOK, Pairs: []wire.Pair{
		metric("keys", int64(s.store.Len())),
		metric("splits", st.Splits),
		metric("layer_creations", st.LayerCreations),
		metric("layer_collapses", st.LayerCollapses),
		metric("node_deletes", st.NodeDeletes),
		metric("root_retries", st.RootRetries),
		metric("local_retries", st.LocalRetries),
		metric("slot_reuses", st.SlotReuses),
		metric("batched_gets", s.batchedGets.Load()),
		metric("batched_puts", s.batchedPuts.Load()),
		metric("flush_errors", flushErrs),
	}}
}

// Close stops accepting, closes all connections and UDP sockets, and waits
// for handlers.
func (s *Server) Close() error {
	s.done.Store(true)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	for _, l := range s.udp {
		l.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
