package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, atomicfield.Analyzer, "a")
}
