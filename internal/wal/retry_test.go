package wal

import (
	"errors"
	"io/fs"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vfs"
)

// flakyFS wraps a vfs.FS and fails every File.Write while failing is set — a
// transiently sick device the writer must back off from, then drain cleanly
// once it heals. (vfs.Fault latches permanently, so it cannot model a device
// that recovers.)
type flakyFS struct {
	vfs.FS
	failing atomic.Bool
}

var errFlaky = errors.New("flaky: injected write failure")

func (f *flakyFS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, fs: f}, nil
}

type flakyFile struct {
	vfs.File
	fs *flakyFS
}

func (f *flakyFile) Write(p []byte) (int, error) {
	if f.fs.failing.Load() {
		return 0, errFlaky
	}
	return f.File.Write(p)
}

// Regression: a failed flush must (1) count into FlushStats, (2) arm a
// backoff window the background flusher honors (no hammering a sick device),
// (3) count foreground retries into FlushRetries, and (4) lose nothing —
// once the device heals, every appended record reaches the log exactly once.
func TestFlushRetryBackoff(t *testing.T) {
	fsys := &flakyFS{FS: vfs.NewMemFS()}
	if err := fsys.MkdirAll("wal", 0o755); err != nil {
		t.Fatal(err)
	}
	// flushEvery is huge so the ticker never races the test's explicit calls.
	w, err := newWriter(fsys, "wal", 0, 1, false, time.Hour, true)
	if err != nil {
		t.Fatal(err)
	}

	w.AppendPut(1, 0, []byte("a"), nil)
	fsys.failing.Store(true)
	if err := w.Flush(); err == nil {
		t.Fatal("expected injected write failure")
	}
	if errs, last := w.FlushStats(); errs != 1 || !errors.Is(last, errFlaky) {
		t.Fatalf("FlushStats = (%d, %v), want (1, errFlaky)", errs, last)
	}
	if w.backoff != retryBase {
		t.Fatalf("backoff = %v after first failure, want %v", w.backoff, retryBase)
	}
	if err := w.Flush(); err == nil {
		t.Fatal("expected second injected failure")
	}
	if got := w.FlushRetries(); got != 1 {
		t.Fatalf("FlushRetries = %d after one retry, want 1", got)
	}
	if w.backoff != 2*retryBase {
		t.Fatalf("backoff = %v after second failure, want %v", w.backoff, 2*retryBase)
	}

	// The device heals, but the backoff window is still pending: a background
	// flush must skip the attempt (deterministic — retryAt is ~100ms out).
	fsys.failing.Store(false)
	w.AppendPut(2, 0, []byte("b"), nil)
	w.flushBackground()
	if errs, _ := w.FlushStats(); errs != 2 {
		t.Fatalf("background flush ran inside the backoff window (errs=%d)", errs)
	}
	if data, err := fsys.ReadFile("wal/" + LogFileName(0, 1)); err == nil && len(data) > len(fileMagic) {
		t.Fatal("bytes reached the file during the backoff window")
	}

	// A foreground flush ignores the window, counts as a retry, drains the
	// held-back batch, and resets the backoff.
	if err := w.Flush(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	if got := w.FlushRetries(); got != 2 {
		t.Fatalf("FlushRetries = %d after healed retry, want 2", got)
	}
	if w.backoff != 0 || !w.retryAt.IsZero() {
		t.Fatalf("backoff not reset after success: %v until %v", w.backoff, w.retryAt)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Nothing lost, nothing duplicated: exactly records ts=1 and ts=2.
	data, err := fsys.ReadFile("wal/" + LogFileName(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	b := data[len(fileMagic):]
	for len(b) > 0 {
		rec, n := parseRecord(b, false)
		if n == 0 {
			t.Fatalf("corrupt record framing at offset %d", len(data)-len(b))
		}
		got = append(got, rec.TS)
		b = b[n:]
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("log holds records %v, want [1 2]", got)
	}
}

// Backoff growth is capped at retryMaxBackoff no matter how long the device
// stays down.
func TestFlushRetryBackoffCap(t *testing.T) {
	fsys := &flakyFS{FS: vfs.NewMemFS()}
	if err := fsys.MkdirAll("wal", 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := newWriter(fsys, "wal", 0, 1, false, time.Hour, true)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		fsys.failing.Store(false)
		w.Close()
	}()
	w.AppendPut(1, 0, []byte("a"), nil)
	fsys.failing.Store(true)
	for i := 0; i < 12; i++ {
		if err := w.Flush(); err == nil {
			t.Fatal("expected injected failure")
		}
	}
	if w.backoff != retryMaxBackoff {
		t.Fatalf("backoff = %v after 12 failures, want cap %v", w.backoff, retryMaxBackoff)
	}
}
