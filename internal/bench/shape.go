package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
)

// Shape reproduces §6.2's structural observations about the tree the
// 1-to-10-byte-decimal put workload builds: the fraction of keys pushed
// into layer-1 trie-nodes, how tiny those trees stay (paper: 33% of keys,
// 2.3 keys per layer-1 tree at 140M keys — both grow with slice-collision
// density, i.e. with key count), and border-node occupancy (paper: B-tree
// nodes average 75% full; sequential inserts fill nodes completely thanks
// to §4.3's optimization).
func Shape(sc Scale) *Table {
	sc = sc.withDefaults()
	t := &Table{
		ID:      "shape",
		Title:   fmt.Sprintf("tree shape under the decimal put workload, %d keys (§6.2)", sc.Keys),
		Headers: []string{"metric", "measured", "paper (140M keys)"},
	}
	tr := core.New()
	gen := workload.Decimal(55)
	for i := 0; i < sc.Keys; i++ {
		k := gen.Next()
		tr.Put(k, value.New(k))
	}
	s := tr.Shape()
	t.Rows = append(t.Rows,
		[]string{"keys", fmt.Sprintf("%d", s.TotalKeys()), "140M"},
		[]string{"trie layers", fmt.Sprintf("%d", len(s.Layers)), "2"},
		[]string{"layer-1 key fraction", fmt.Sprintf("%.3f", s.KeysInLayer(1)), "0.33"},
		[]string{"avg keys per layer-1 tree", fmt.Sprintf("%.2f", s.AvgKeysPerTree(1)), "2.3"},
		[]string{"border-node fill", fmt.Sprintf("%.2f", s.BorderFill()), "~0.75"},
	)

	// Sequential fill uses exactly-8-byte keys so the comparison isolates
	// split behavior (9-byte keys would measure layer-tree fill instead).
	seq := core.New()
	sgen := workload.Sequential("")
	for i := 0; i < sc.Keys; i++ {
		k := sgen.Next()
		seq.Put(k, value.New(k))
	}
	t.Rows = append(t.Rows,
		[]string{"border-node fill (sequential inserts)", fmt.Sprintf("%.2f", seq.Shape().BorderFill()), "~1.0 (§4.3)"},
	)
	t.Notes = append(t.Notes,
		"layer-1 population is driven by 8-byte slice collisions, so the fraction grows with key count; at laptop scale it is small but the per-tree size matches the paper",
	)
	return t
}
