package value

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNilValue(t *testing.T) {
	var v *Value
	if v.Version() != 0 || v.NumCols() != 0 || v.Col(0) != nil || v.Bytes() != nil {
		t.Fatal("nil value accessors should return zero values")
	}
	if v.String() != "<nil>" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestNewAndAccessors(t *testing.T) {
	v := New([]byte("a"), []byte("bb"))
	if v.Version() != 1 {
		t.Fatalf("version = %d", v.Version())
	}
	if v.NumCols() != 2 || string(v.Col(0)) != "a" || string(v.Col(1)) != "bb" {
		t.Fatalf("columns wrong: %v", v)
	}
	if v.Col(2) != nil || v.Col(-1) != nil {
		t.Fatal("out-of-range columns must be nil")
	}
	if string(v.Bytes()) != "a" {
		t.Fatal("Bytes should be column 0")
	}
}

func TestApplyGrowsColumns(t *testing.T) {
	v := New([]byte("a"))
	v2 := Apply(v, []ColPut{{Col: 3, Data: []byte("d")}})
	if v2.NumCols() != 4 {
		t.Fatalf("NumCols = %d, want 4", v2.NumCols())
	}
	if string(v2.Col(0)) != "a" || v2.Col(1) != nil || string(v2.Col(3)) != "d" {
		t.Fatalf("columns wrong: %v", v2)
	}
	if v2.Version() != 2 {
		t.Fatalf("version = %d, want 2", v2.Version())
	}
}

func TestApplyFromNil(t *testing.T) {
	v := Apply(nil, []ColPut{{Col: 0, Data: []byte("x")}})
	if v.Version() != 1 || string(v.Col(0)) != "x" {
		t.Fatalf("apply from nil: %v", v)
	}
}

// TestApplyImmutable checks the COW law (§4.7): applying puts must not
// change the old value, and the new value must not alias the old one or the
// put data (everything is copied into the new packed allocation).
func TestApplyImmutable(t *testing.T) {
	old := New([]byte("a"), []byte("b"), []byte("c"))
	putData := []byte("B")
	nv := Apply(old, []ColPut{{Col: 1, Data: putData}})
	if string(old.Col(1)) != "b" {
		t.Fatal("old value mutated")
	}
	if string(nv.Col(1)) != "B" || string(nv.Col(0)) != "a" || string(nv.Col(2)) != "c" {
		t.Fatalf("new value wrong: %v", nv)
	}
	// The packed value copies: mutating the caller's put data afterwards must
	// not change the published value.
	putData[0] = 'Z'
	if string(nv.Col(1)) != "B" {
		t.Fatal("put data retained instead of copied")
	}
	if &old.Col(0)[0] == &nv.Col(0)[0] {
		t.Fatal("new value aliases old value's allocation")
	}
}

// TestBuildSingleAllocation pins the packed representation's reason for
// existing: building a value costs exactly one allocation regardless of
// column count.
func TestBuildSingleAllocation(t *testing.T) {
	old := New([]byte("aaaa"), []byte("bbbb"), []byte("cccc"))
	puts := []ColPut{{Col: 1, Data: []byte("BBBB")}}
	allocs := testing.AllocsPerRun(200, func() {
		if v := BuildAt(old, puts, 7, 3); v == nil {
			t.Fatal("nil value")
		}
	})
	if allocs != 1 {
		t.Fatalf("BuildAt allocates %.1f times per run, want 1", allocs)
	}
}

// TestBuildAtWorkerTag checks the worker tag round-trips and that a put to a
// later column leaves earlier data intact in the packed layout.
func TestBuildAtWorkerTag(t *testing.T) {
	v := BuildAt(nil, []ColPut{{Col: 0, Data: []byte("x")}}, 42, 5)
	if v.Version() != 42 || v.Worker() != 5 {
		t.Fatalf("version/worker = %d/%d, want 42/5", v.Version(), v.Worker())
	}
	v2 := BuildAt(v, []ColPut{{Col: 2, Data: []byte("zz")}}, 43, 6)
	if string(v2.Col(0)) != "x" || v2.Col(1) != nil || string(v2.Col(2)) != "zz" {
		t.Fatalf("columns wrong: %v", v2)
	}
	if v2.Worker() != 6 {
		t.Fatalf("worker = %d, want 6", v2.Worker())
	}
	// A duplicate column index in one put list: the last write wins.
	v3 := Apply(nil, []ColPut{{Col: 0, Data: []byte("first")}, {Col: 0, Data: []byte("second")}})
	if string(v3.Col(0)) != "second" {
		t.Fatalf("Col(0) = %q, want last put to win", v3.Col(0))
	}
}

func TestApplyAt(t *testing.T) {
	v := ApplyAt(nil, []ColPut{{Col: 0, Data: []byte("x")}}, 42)
	if v.Version() != 42 {
		t.Fatalf("version = %d, want 42", v.Version())
	}
}

func TestNewAt(t *testing.T) {
	v := NewAt(7, []byte("x"))
	if v.Version() != 7 {
		t.Fatalf("version = %d", v.Version())
	}
}

func TestEqual(t *testing.T) {
	a := New([]byte("x"), []byte("y"))
	b := NewAt(9, []byte("x"), []byte("y"))
	if !Equal(a, b) {
		t.Fatal("values with same columns should be Equal regardless of version")
	}
	c := New([]byte("x"))
	if Equal(a, c) {
		t.Fatal("different widths must not be Equal")
	}
	d := New([]byte("x"), []byte("z"))
	if Equal(a, d) {
		t.Fatal("different columns must not be Equal")
	}
}

func TestApplyNegativeColPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative column")
		}
	}()
	Apply(nil, []ColPut{{Col: -1, Data: nil}})
}

// TestApplyQuick: after any sequence of Applies, each column equals the most
// recent put to it, versions strictly increase, and widths never shrink.
func TestApplyQuick(t *testing.T) {
	type op struct {
		Col  uint8
		Data []byte
	}
	f := func(ops []op) bool {
		var v *Value
		latest := map[int][]byte{}
		maxCol := -1
		for _, o := range ops {
			col := int(o.Col % 8)
			prevVer := v.Version()
			v = Apply(v, []ColPut{{Col: col, Data: o.Data}})
			if v.Version() != prevVer+1 {
				return false
			}
			latest[col] = o.Data
			if col > maxCol {
				maxCol = col
			}
			if v.NumCols() != maxCol+1 {
				return false
			}
			for c, want := range latest {
				if !bytes.Equal(v.Col(c), want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
