package server

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/vfs"
)

// TestFlushLastErrorOnlyOnV2 pins the stats compatibility rule: the one
// string-valued metric (flush_last_error) is served only on v2 connections.
// Pre-existing v1 client binaries parse every stats value with ParseInt and
// reject the whole response on the first non-numeric one — exactly when the
// operator most needs stats — so the v1 response must stay all-numeric even
// while a flush error is latched.
func TestFlushLastErrorOnlyOnV2(t *testing.T) {
	mem := vfs.NewMemFS()
	fault := vfs.NewFault(mem)
	store, err := kvstore.Open(kvstore.Config{
		Dir: "/data", Workers: 1, FS: fault, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 1)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})

	// Latch a flush failure: CrashAt resets the boundary counter, so arming
	// at 1 makes the very next filesystem op (the flush's write) fail.
	store.PutSimple(0, []byte("k"), []byte("v"))
	fault.CrashAt(1)
	if err := store.Flush(); err == nil {
		t.Fatal("flush unexpectedly succeeded")
	}
	if n, last := store.FlushStats(); n == 0 || last == nil {
		t.Fatalf("flush error not latched: n=%d last=%v", n, last)
	}

	addr := srv.Addr().String()
	v1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	rawV1, err := v1.StatsRaw()
	if err != nil {
		t.Fatal(err)
	}
	if _, present := rawV1["flush_last_error"]; present {
		t.Fatal("v1 stats carried the string-valued flush_last_error")
	}
	for k, v := range rawV1 { // an old binary's ParseInt loop must succeed
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			t.Fatalf("v1 stat %q=%q is not numeric", k, v)
		}
	}
	if rawV1["flush_errors"] == "0" {
		t.Fatal("flush_errors did not report the failure")
	}

	v2, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	rawV2, err := v2.StatsRaw()
	if err != nil {
		t.Fatal(err)
	}
	if msg, present := rawV2["flush_last_error"]; !present || msg == "" {
		t.Fatalf("v2 stats missing flush_last_error: %v", rawV2)
	}
	if _, err := v2.Stats(); err != nil { // numeric view skips the string
		t.Fatalf("v2 numeric Stats failed on the string metric: %v", err)
	}
}
