package server

import (
	"fmt"
	"net"

	"repro/internal/wire"
)

// UDP support (§5): "To support short connections efficiently, Masstree can
// configure per-core UDP ports that are each associated with a single core's
// receive queue." Each UDP socket here is owned by one worker goroutine
// bound to one worker id (one log stream), mirroring the paper's per-core
// receive queues. A datagram carries one framed request batch; the response
// batch returns in one datagram, so batches must fit the configured MTU.
//
// UDP remains protocol v1 only: pipelining exists to keep a stream busy
// across round trips, and a datagram exchange has no stream — each request
// datagram is its own "connection", so there is no hello to negotiate and
// no tag to match. v2 traffic is rejected cleanly rather than misread: a
// hello datagram's leading 0xFFFFFFFF and a tagged frame's marked length
// word both decode as impossible v1 lengths, so ParseFrame drops them (the
// client times out, the socket keeps serving).
type udpListener struct {
	conn   *net.UDPConn
	worker int
}

// maxUDPDatagram bounds request and response datagrams.
const maxUDPDatagram = 60 * 1024

// ListenUDP opens n consecutive UDP ports starting at basePort, one per
// worker, each served by its own goroutine. Port 0 with n == 1 picks a free
// port; Addrs reports the bound addresses.
func (s *Server) ListenUDP(host string, basePort, n int) ([]*net.UDPAddr, error) {
	if n <= 0 {
		n = 1
	}
	var addrs []*net.UDPAddr
	for i := 0; i < n; i++ {
		port := 0
		if basePort != 0 {
			port = basePort + i
		}
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(host), Port: port})
		if err != nil {
			return nil, fmt.Errorf("server: udp port %d: %w", port, err)
		}
		l := &udpListener{conn: conn, worker: i % s.workers}
		s.mu.Lock()
		s.udp = append(s.udp, l)
		s.mu.Unlock()
		addrs = append(addrs, conn.LocalAddr().(*net.UDPAddr))
		s.wg.Add(1)
		go s.serveUDP(l)
	}
	return addrs, nil
}

func (s *Server) serveUDP(l *udpListener) {
	defer s.wg.Done()
	sess := s.store.Session(l.worker)
	defer sess.Close()
	// One receive buffer, decode scratch, and encode buffer per socket,
	// reused across datagrams — the same steady-state zero-allocation
	// discipline as the TCP path's connScratch.
	buf := make([]byte, maxUDPDatagram)
	sc := &connScratch{}
	for {
		sc.shrink() // at loop top so the malformed-datagram continues hit it too
		n, peer, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		body, err := wire.ParseFrame(buf[:n])
		if err != nil {
			continue // drop malformed datagrams
		}
		reqs, err := wire.ParseRequests(body, &sc.dec)
		if err != nil {
			continue
		}
		s.executeBatch(sess, reqs, len(reqs), sc, false)
		out, err := wire.AppendResponses(sc.enc[:0], sc.resps)
		if err != nil {
			continue
		}
		sc.enc = out
		if len(out) > maxUDPDatagram {
			continue // response too large for a datagram; client times out
		}
		l.conn.WriteToUDP(out, peer)
	}
}
