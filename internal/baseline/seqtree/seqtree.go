// Package seqtree is the single-core Masstree variant of §6.4: the same
// trie-of-B+-trees design — width-15 nodes, 8-byte key slices compared as
// big-endian integers, per-slice suffixes, trie layers for conflicting
// suffixes — but with locking, node versions, and interlocked instructions
// removed. The paper measured concurrent Masstree within 13% of this
// variant on one core; it is also the per-partition store of the
// hard-partitioned configuration (§6.6), where each instance is owned by a
// single core.
//
// Not safe for concurrent use.
package seqtree

import (
	"bytes"
	"encoding/binary"

	"repro/internal/value"
)

const width = 15

const (
	klSuffix uint8 = 9  // key longer than 8 bytes: slice + stored suffix
	klLayer  uint8 = 10 // slot links to a deeper trie layer
)

func keySlice(k []byte) uint64 {
	if len(k) >= 8 {
		return binary.BigEndian.Uint64(k)
	}
	var buf [8]byte
	copy(buf[:], k)
	return binary.BigEndian.Uint64(buf[:])
}

func keyOrd(k []byte) int {
	if len(k) <= 8 {
		return len(k)
	}
	return 9
}

func ordOf(kl uint8) int {
	if kl <= 8 {
		return int(kl)
	}
	return 9
}

// node is either an interior or border node of one layer's B+-tree.
type node struct {
	border bool
	nkeys  int
	slices [width]uint64

	// interior
	child [width + 1]*node

	// border
	keylen [width]uint8
	suffix [width][]byte
	val    [width]*value.Value
	layer  [width]*node
}

// Tree is a sequential Masstree.
type Tree struct {
	root  *node
	count int
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: &node{border: true}}
}

// Len returns the number of keys.
func (t *Tree) Len() int { return t.count }

// descend walks interior nodes to the border node owning slice.
func descend(n *node, slice uint64) *node {
	for !n.border {
		i := 0
		for i < n.nkeys && slice >= n.slices[i] {
			i++
		}
		n = n.child[i]
	}
	return n
}

// search finds (slice, ord) in border node n; rank is the insertion point
// when not found.
func (n *node) search(slice uint64, ord int) (rank int, found bool) {
	for rank = 0; rank < n.nkeys; rank++ {
		if n.slices[rank] < slice {
			continue
		}
		if n.slices[rank] > slice {
			return rank, false
		}
		ko := ordOf(n.keylen[rank])
		if ko < ord {
			continue
		}
		return rank, ko == ord
	}
	return rank, false
}

// Get returns the value for key.
func (t *Tree) Get(key []byte) (*value.Value, bool) {
	root := t.root
	k := key
	for {
		n := descend(root, keySlice(k))
		rank, found := n.search(keySlice(k), keyOrd(k))
		if !found {
			return nil, false
		}
		switch n.keylen[rank] {
		case klLayer:
			root = n.layer[rank]
			k = k[8:]
		case klSuffix:
			if !bytes.Equal(n.suffix[rank], k[8:]) {
				return nil, false
			}
			return n.val[rank], true
		default:
			return n.val[rank], true
		}
	}
}

// Put stores v for key, returning the replaced value if any.
func (t *Tree) Put(key []byte, v *value.Value) (*value.Value, bool) {
	var old *value.Value
	replaced := false
	t.Update(key, func(o *value.Value) *value.Value {
		old, replaced = o, o != nil
		return v
	})
	return old, replaced
}

// Update performs a read-modify-write: f receives the current value (nil if
// absent) and returns the value to store.
func (t *Tree) Update(key []byte, f func(*value.Value) *value.Value) {
	rootp := &t.root
	k := key
	for {
		n := descend(*rootp, keySlice(k))
		slice, ord := keySlice(k), keyOrd(k)
		rank, found := n.search(slice, ord)
		if found {
			switch n.keylen[rank] {
			case klLayer:
				rootp = &n.layer[rank]
				k = k[8:]
				continue
			case klSuffix:
				if bytes.Equal(n.suffix[rank], k[8:]) {
					n.val[rank] = f(n.val[rank])
					return
				}
				// Conflicting suffix: push the old key down a layer and
				// continue inserting there (§4.6.3's sequential analog).
				l := &node{border: true, nkeys: 1}
				suf := n.suffix[rank]
				l.slices[0] = keySlice(suf)
				if len(suf) <= 8 {
					l.keylen[0] = uint8(len(suf))
				} else {
					l.keylen[0] = klSuffix
					l.suffix[0] = suf[8:]
				}
				l.val[0] = n.val[rank]
				n.keylen[rank] = klLayer
				n.layer[rank] = l
				n.suffix[rank] = nil
				n.val[rank] = nil
				rootp = &n.layer[rank]
				k = k[8:]
				continue
			default:
				n.val[rank] = f(n.val[rank])
				return
			}
		}
		// Insert.
		t.count++
		v := f(nil)
		if n.nkeys < width {
			n.insertAt(rank, slice, k, v)
			return
		}
		t.splitInsert(rootp, n, rank, slice, k, v)
		return
	}
}

func (n *node) insertAt(rank int, slice uint64, k []byte, v *value.Value) {
	copy(n.slices[rank+1:], n.slices[rank:n.nkeys])
	copy(n.keylen[rank+1:], n.keylen[rank:n.nkeys])
	copy(n.suffix[rank+1:], n.suffix[rank:n.nkeys])
	copy(n.val[rank+1:], n.val[rank:n.nkeys])
	copy(n.layer[rank+1:], n.layer[rank:n.nkeys])
	n.slices[rank] = slice
	n.layer[rank] = nil
	if len(k) <= 8 {
		n.keylen[rank] = uint8(len(k))
		n.suffix[rank] = nil
	} else {
		n.keylen[rank] = klSuffix
		n.suffix[rank] = append([]byte(nil), k[8:]...)
	}
	n.val[rank] = v
	n.nkeys++
}

// splitInsert splits full border node n (within the layer tree rooted at
// *rootp) and inserts the pending key, growing interior levels as needed.
// Splits fall on slice boundaries so slice groups stay together.
func (t *Tree) splitInsert(rootp **node, n *node, rank int, slice uint64, k []byte, v *value.Value) {
	// Build the 16-entry sequence.
	type ent struct {
		slice  uint64
		keylen uint8
		suffix []byte
		val    *value.Value
		layer  *node
	}
	var ents [width + 1]ent
	for i := 0; i < width; i++ {
		pos := i
		if i >= rank {
			pos = i + 1
		}
		ents[pos] = ent{n.slices[i], n.keylen[i], n.suffix[i], n.val[i], n.layer[i]}
	}
	ents[rank] = ent{slice: slice, val: v}
	if len(k) <= 8 {
		ents[rank].keylen = uint8(len(k))
	} else {
		ents[rank].keylen = klSuffix
		ents[rank].suffix = append([]byte(nil), k[8:]...)
	}
	total := width + 1
	// The boundary must fall where the slice changes so slice groups stay
	// together (§4.2); search outward from the middle.
	splitAt := -1
	for d := 0; d < total; d++ {
		if b := total/2 + d; b > 0 && b < total && ents[b-1].slice != ents[b].slice {
			splitAt = b
			break
		}
		if b := total/2 - d; b > 0 && b < total && ents[b-1].slice != ents[b].slice {
			splitAt = b
			break
		}
	}
	if splitAt < 0 {
		panic("seqtree: slice group wider than fanout")
	}

	n2 := &node{border: true}
	for i, e := range ents[splitAt:total] {
		n2.slices[i], n2.keylen[i], n2.suffix[i], n2.val[i], n2.layer[i] = e.slice, e.keylen, e.suffix, e.val, e.layer
	}
	n2.nkeys = total - splitAt
	for i, e := range ents[:splitAt] {
		n.slices[i], n.keylen[i], n.suffix[i], n.val[i], n.layer[i] = e.slice, e.keylen, e.suffix, e.val, e.layer
	}
	n.nkeys = splitAt
	for i := splitAt; i < width; i++ { // clear stale tails for GC
		n.suffix[i], n.val[i], n.layer[i] = nil, nil, nil
	}

	t.insertUp(rootp, n, n2, n2.slices[0])
}

// insertUp links the new right sibling under n's parent, splitting interior
// nodes recursively. Parents are located by path search from the layer root
// (sequential trees keep no parent pointers).
func (t *Tree) insertUp(rootp **node, left, right *node, sep uint64) {
	if *rootp == left {
		r := &node{nkeys: 1}
		r.slices[0] = sep
		r.child[0], r.child[1] = left, right
		*rootp = r
		return
	}
	path := pathTo(*rootp, left)
	for i := len(path) - 1; i >= 0; i-- {
		p := path[i]
		pos := 0
		for pos < p.nkeys && p.slices[pos] < sep {
			pos++
		}
		if p.nkeys < width {
			copy(p.slices[pos+1:], p.slices[pos:p.nkeys])
			copy(p.child[pos+2:], p.child[pos+1:p.nkeys+1])
			p.slices[pos] = sep
			p.child[pos+1] = right
			p.nkeys++
			return
		}
		// Split interior p.
		var keys [width + 1]uint64
		var kids [width + 2]*node
		copy(keys[:pos], p.slices[:pos])
		keys[pos] = sep
		copy(keys[pos+1:], p.slices[pos:p.nkeys])
		copy(kids[:pos+1], p.child[:pos+1])
		kids[pos+1] = right
		copy(kids[pos+2:], p.child[pos+1:p.nkeys+1])
		total := width + 1
		mid := total / 2
		promoted := keys[mid]
		p2 := &node{}
		copy(p2.slices[:], keys[mid+1:total])
		copy(p2.child[:], kids[mid+1:total+1])
		p2.nkeys = total - mid - 1
		copy(p.slices[:], keys[:mid])
		copy(p.child[:], kids[:mid+1])
		p.nkeys = mid
		for j := mid + 1; j <= width; j++ {
			p.child[j] = nil // release moved children for GC
		}
		left, right, sep = p, p2, promoted
		if i == 0 {
			r := &node{nkeys: 1}
			r.slices[0] = sep
			r.child[0], r.child[1] = left, right
			*rootp = r
			return
		}
	}
}

// pathTo returns target's ancestor chain (root first). Routing follows
// target's smallest slice, which uniquely locates it: slice groups never
// straddle nodes, so the node holding a slice is unique.
func pathTo(root, target *node) []*node {
	slice := target.slices[0]
	var path []*node
	n := root
	for !n.border && n != target {
		path = append(path, n)
		i := 0
		for i < n.nkeys && slice >= n.slices[i] {
			i++
		}
		n = n.child[i]
	}
	return path
}
