// Package wire defines the binary client/server protocol. Requests query
// and change the mapping of keys to values; values are divided into columns
// (§3). A single message carries a whole batch of queries — batching is
// vital for throughput (§7: "Batched query support is vital on these
// benchmarks") — and responses come back as a matching batch.
//
// # Protocol versions and framing
//
// Two frame layouts share one connection-level grammar, distinguished by
// the top bit of the leading length word (lengths are bounded by MaxMessage,
// far below 1<<31, so the bit is never part of an honest v1 length):
//
//	v1 frame:  length(4, LE)            | body
//	v2 frame:  length(4, LE) | 1<<31    | tag(4, LE) | body
//	hello:     0xFFFFFFFF | "MTKV"      | version(1)
//
// A body holds a 4-byte request/response count followed by that many
// requests or responses. A v1 connection allows one frame in flight: the
// client writes a batch and blocks for the matching batch of responses.
//
// Protocol v2 is negotiated by a hello exchange: the client's first bytes
// are a hello frame proposing a version, the server answers with a hello
// carrying the version it accepts (the minimum of both sides'), and every
// subsequent frame in both directions is tagged. Version2 is the oldest
// version a hello can negotiate — v1 clients simply send no hello — so a
// server drops a connection whose hello proposes anything lower rather
// than answering with a version the hello sender could not speak. Tags are opaque sequence
// numbers chosen by the client; the server echoes each request frame's tag
// on its response frame and answers frames in arrival order, so a client
// may keep many tagged batches in flight (pipelining) and match responses
// to requests by tag. A client that sends no hello speaks v1 verbatim —
// the hello magic decodes as an impossible v1 length, so the two first
// bytes streams cannot be confused.
//
// # Conditional writes
//
// OpCas is a versioned conditional put (Deuteronomy-style latch-free
// read-modify-write): the request carries ExpectVersion, the version the
// client last observed (0 meaning "key absent"), and the put applies only
// if the key's current version still equals it. A mismatch returns
// StatusConflict with the current version in Response.Version so the
// client can re-read, rebase, and retry. Get responses carry the value's
// version for exactly this purpose.
//
// # Decode/encode surfaces
//
// Two decode/encode surfaces exist. The legacy functions (ReadRequests,
// WriteRequests, ...) return self-contained values and are safe to retain;
// they draw their frame buffers from an internal pool. The scratch-based
// variants (ReadRequestsInto, WriteResponsesInto, the tagged v2 helpers,
// ...) reuse per-connection buffers across messages and decode by aliasing
// the frame body instead of copying, making the steady-state hot path
// allocation-free; their results are only valid until the next call with
// the same scratch. ParseRequestsLenient additionally decodes as much of a
// damaged batch as possible so a server can answer the undecodable suffix
// with StatusError instead of dropping the connection.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// OpCode identifies a request type.
type OpCode uint8

const (
	// OpGet retrieves (a subset of columns of) one key.
	OpGet OpCode = 1
	// OpPut modifies a subset of columns of one key.
	OpPut OpCode = 2
	// OpRemove deletes one key.
	OpRemove OpCode = 3
	// OpGetRange is the paper's getrange/scan: up to N pairs from a start key.
	OpGetRange OpCode = 4
	// OpStats requests server statistics; the response carries metric
	// name/value pairs in Pairs.
	OpStats OpCode = 5
	// OpCas is a versioned conditional put: the column writes in Puts apply
	// only if the key's current version equals ExpectVersion (0 = absent).
	// On success the response is an ordinary put response; on mismatch it is
	// StatusConflict with the current version.
	OpCas OpCode = 6
	// OpPutTTL is OpPut with a time-to-live: the request carries TTL
	// seconds (relative — the server computes the absolute deadline), after
	// which the key reads as absent and is eventually swept. TTL 0 stores a
	// value that never expires, exactly like OpPut. Cache-mode operations
	// are protocol v2 surface: a v1 connection answering them gets
	// StatusError (v1 semantics stay untouched).
	OpPutTTL OpCode = 7
	// OpTouch resets a key's TTL without changing its value (TTL 0 removes
	// the expiry). StatusNotFound if the key is absent or already expired.
	OpTouch OpCode = 8
	// OpGetOrLoad is OpGet reading through the server's backend tier on
	// miss: concurrent misses for one key coalesce into a single backend
	// load server-side. Responses may carry StatusStale when the backend is
	// unavailable and an expired resident value is served under the
	// max-stale window. Like the other cache-mode ops it is protocol v2
	// surface; v1 connections get StatusError. Encodes exactly like OpGet.
	OpGetOrLoad OpCode = 9
)

// Status codes.
const (
	StatusOK       uint8 = 0
	StatusNotFound uint8 = 1
	StatusError    uint8 = 2
	// StatusConflict answers an OpCas whose ExpectVersion no longer matches;
	// Response.Version carries the key's current version (0 if absent).
	StatusConflict uint8 = 3
	// StatusStale answers an OpGetOrLoad whose backend could not be reached
	// and whose value is a resident expired one served under the server's
	// max-stale degradation window; Cols/Version are otherwise as StatusOK.
	StatusStale uint8 = 4
)

// ColData is a column index with data (for puts and responses).
type ColData struct {
	Col  int
	Data []byte
}

// Request is one operation within a batch.
type Request struct {
	Op            OpCode
	Key           []byte
	Cols          []int     // columns to read (OpGet/OpGetRange); nil = all
	Puts          []ColData // column writes (OpPut/OpCas/OpPutTTL)
	N             int       // max pairs (OpGetRange)
	ExpectVersion uint64    // required current version (OpCas); 0 = absent
	TTL           uint32    // time-to-live seconds (OpPutTTL/OpTouch); 0 = never
}

// Pair is one key-value result of a range query.
type Pair struct {
	Key  []byte
	Cols [][]byte
}

// Response is one operation's result.
type Response struct {
	Status  uint8
	Version uint64   // OpPut
	Cols    [][]byte // OpGet
	Pairs   []Pair   // OpGetRange
}

// MaxMessage bounds a message body; larger frames are rejected as corrupt.
const MaxMessage = 64 << 20

var (
	errTooLarge     = errors.New("wire: message exceeds MaxMessage")
	errShort        = errors.New("wire: short message")
	errTrailingReq  = errors.New("wire: trailing request bytes")
	errTrailingResp = errors.New("wire: trailing response bytes")
	errFrameLen     = errors.New("wire: frame length mismatch")
)

// Minimum encoded sizes, used to sanity-bound batch counts before sizing
// decode buffers: a request is at least op + keylen (3 bytes), a response at
// least status + version + ncols + npairs (13 bytes).
const (
	minRequestSize  = 3
	minResponseSize = 13
)

// Approximate in-memory struct sizes, used by Shrink to bound *retained*
// scratch: a tiny wire request still occupies a full Request struct, so the
// cap math must use the struct size, not the wire size.
const (
	requestStructBytes  = 96 // Op + Key/Cols/Puts headers + N + ExpectVersion
	responseStructBytes = 64 // Status + Version + Cols/Pairs headers
)

// framePool recycles frame buffers for the legacy read/write entry points,
// so even callers without per-connection scratch avoid steady-state frame
// allocations. Oversized buffers are dropped rather than pinned in the pool.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

const maxPooledFrame = 1 << 20

func putFrameBuf(b *[]byte) {
	if cap(*b) <= maxPooledFrame {
		framePool.Put(b)
	}
}

// DecodeBuf is one connection's reusable request-decode state: the raw frame
// body plus arenas backing the decoded requests' Key, Cols, and Puts fields.
// Requests returned by ReadRequestsInto/ParseRequests alias these buffers
// and are valid only until the next call with the same DecodeBuf.
//
//masstree:scratch
type DecodeBuf struct {
	frame []byte
	reqs  []Request
	cols  []int
	puts  []ColData
}

// Shrink releases any of d's buffers grown past roughly max bytes, so one
// oversized message does not pin its peak footprint for the connection's
// lifetime. Call between messages (never while decoded requests are live).
func (d *DecodeBuf) Shrink(max int) {
	if cap(d.frame) > max {
		d.frame = nil
	}
	if cap(d.reqs)*requestStructBytes > max {
		d.reqs = nil
	}
	if cap(d.cols)*8 > max {
		d.cols = nil
	}
	if cap(d.puts)*32 > max {
		d.puts = nil
	}
}

// ReadRequestsInto reads one framed request batch into d's reusable buffers.
// The returned requests alias d and remain valid until the next call.
func ReadRequestsInto(r *bufio.Reader, d *DecodeBuf) ([]Request, error) {
	body, err := readFrameInto(r, &d.frame)
	if err != nil {
		return nil, err
	}
	return ParseRequests(body, d)
}

// ParseRequests decodes a request-batch body (the frame payload, without the
// 4-byte length header). Decoded Key and put Data fields alias body; Cols
// and Puts slices live in d's arenas. Results are valid until the next call
// with the same DecodeBuf or until body's buffer is reused.
//
//masstree:noalloc
func ParseRequests(body []byte, d *DecodeBuf) ([]Request, error) {
	n, body, err := readU32(body)
	if err != nil {
		return nil, err
	}
	if int(n) > len(body)/minRequestSize {
		// The count cannot be honest: each request encodes to at least
		// minRequestSize bytes. Reject before sizing d.reqs, so a forged
		// count cannot amplify a small frame into a huge allocation.
		return nil, errShort
	}
	if cap(d.reqs) < int(n) {
		d.reqs = make([]Request, n) //lint:allow noalloc scratch warm-up: amortized, sized by a count the frame length vouches for
	} else {
		d.reqs = d.reqs[:n]
	}
	d.cols = d.cols[:0]
	d.puts = d.puts[:0]
	for i := range d.reqs {
		body, err = parseRequestAlias(body, &d.reqs[i], d)
		if err != nil {
			return nil, err
		}
	}
	if len(body) != 0 {
		return nil, errTrailingReq
	}
	return d.reqs, nil
}

// ParseRequestsLenient decodes as much of a request-batch body as possible.
// It returns the decodable prefix of the batch plus the batch's claimed
// request count; a malformed request (unknown opcode, truncated payload)
// ends the prefix instead of failing the whole frame, so a server can
// answer the remaining claimed-len(reqs) requests with StatusError and keep
// the connection alive. The error is non-nil only when the frame itself
// cannot be trusted: a missing or dishonest count (each request encodes to
// at least minRequestSize bytes, so a count a small frame cannot hold is a
// forgery, not damage), or trailing bytes after a fully decoded batch.
// Aliasing and scratch lifetime match ParseRequests.
//
//masstree:noalloc
func ParseRequestsLenient(body []byte, d *DecodeBuf) (reqs []Request, claimed int, err error) {
	n, body, err := readU32(body)
	if err != nil {
		return nil, 0, err
	}
	if int(n) > len(body)/minRequestSize {
		return nil, 0, errShort
	}
	if cap(d.reqs) < int(n) {
		d.reqs = make([]Request, n) //lint:allow noalloc scratch warm-up: amortized, sized by a count the frame length vouches for
	} else {
		d.reqs = d.reqs[:n]
	}
	d.cols = d.cols[:0]
	d.puts = d.puts[:0]
	for i := range d.reqs {
		rest, err := parseRequestAlias(body, &d.reqs[i], d)
		if err != nil {
			return d.reqs[:i:i], int(n), nil
		}
		body = rest
	}
	if len(body) != 0 {
		return nil, 0, errTrailingReq
	}
	return d.reqs, int(n), nil
}

// parseRequestAlias decodes one request without copying: Key and put Data
// alias b, Cols/Puts slice into d's arenas. All fields of r are overwritten.
//
//masstree:noalloc
func parseRequestAlias(b []byte, r *Request, d *DecodeBuf) ([]byte, error) {
	*r = Request{}
	if len(b) < 3 {
		return nil, errShort
	}
	r.Op = OpCode(b[0])
	klen := int(binary.LittleEndian.Uint16(b[1:]))
	b = b[3:]
	if len(b) < klen {
		return nil, errShort
	}
	r.Key = b[:klen:klen]
	b = b[klen:]
	switch r.Op {
	case OpGet, OpGetRange, OpGetOrLoad:
		if len(b) < 1 {
			return nil, errShort
		}
		ncols := int(b[0])
		b = b[1:]
		if len(b) < 2*ncols {
			return nil, errShort
		}
		if ncols > 0 {
			start := len(d.cols)
			for i := 0; i < ncols; i++ {
				d.cols = append(d.cols, int(binary.LittleEndian.Uint16(b)))
				b = b[2:]
			}
			r.Cols = d.cols[start:len(d.cols):len(d.cols)]
		}
		if r.Op == OpGetRange {
			if len(b) < 2 {
				return nil, errShort
			}
			r.N = int(binary.LittleEndian.Uint16(b))
			b = b[2:]
		}
	case OpPut, OpCas, OpPutTTL:
		if r.Op == OpCas {
			if len(b) < 8 {
				return nil, errShort
			}
			r.ExpectVersion = binary.LittleEndian.Uint64(b)
			b = b[8:]
		}
		if r.Op == OpPutTTL {
			if len(b) < 4 {
				return nil, errShort
			}
			r.TTL = binary.LittleEndian.Uint32(b)
			b = b[4:]
		}
		if len(b) < 1 {
			return nil, errShort
		}
		nputs := int(b[0])
		b = b[1:]
		start := len(d.puts)
		for i := 0; i < nputs; i++ {
			if len(b) < 6 {
				return nil, errShort
			}
			col := int(binary.LittleEndian.Uint16(b))
			dlen := int(binary.LittleEndian.Uint32(b[2:]))
			b = b[6:]
			if len(b) < dlen {
				return nil, errShort
			}
			d.puts = append(d.puts, ColData{Col: col, Data: b[:dlen:dlen]})
			b = b[dlen:]
		}
		r.Puts = d.puts[start:len(d.puts):len(d.puts)]
	case OpTouch:
		if len(b) < 4 {
			return nil, errShort
		}
		r.TTL = binary.LittleEndian.Uint32(b)
		b = b[4:]
	case OpRemove, OpStats:
	default:
		return nil, fmt.Errorf("wire: unknown opcode %d", r.Op) //lint:allow noalloc malformed-input error path; a well-formed batch never reaches it
	}
	return b, nil
}

// RespDecodeBuf is the response-side analogue of DecodeBuf, used by clients
// that read many response batches on one connection.
//
//masstree:scratch
type RespDecodeBuf struct {
	frame []byte
	resps []Response
	cols  [][]byte
	pairs []Pair
}

// Shrink is DecodeBuf.Shrink for the response side.
func (d *RespDecodeBuf) Shrink(max int) {
	if cap(d.frame) > max {
		d.frame = nil
	}
	if cap(d.resps)*responseStructBytes > max {
		d.resps = nil
	}
	if cap(d.cols)*24 > max {
		d.cols = nil
	}
	if cap(d.pairs)*48 > max {
		d.pairs = nil
	}
}

// ReadResponsesInto reads one framed response batch into d's reusable
// buffers. The returned responses alias d and are valid until the next call.
func ReadResponsesInto(r *bufio.Reader, d *RespDecodeBuf) ([]Response, error) {
	body, err := readFrameInto(r, &d.frame)
	if err != nil {
		return nil, err
	}
	return ParseResponses(body, d)
}

// ParseResponses decodes a response-batch body; column data and pair keys
// alias body, slice headers live in d's arenas. Results are valid until the
// next call with the same RespDecodeBuf or until body's buffer is reused.
//
//masstree:noalloc
func ParseResponses(body []byte, d *RespDecodeBuf) ([]Response, error) {
	n, body, err := readU32(body)
	if err != nil {
		return nil, err
	}
	if int(n) > len(body)/minResponseSize {
		return nil, errShort
	}
	if cap(d.resps) < int(n) {
		d.resps = make([]Response, n) //lint:allow noalloc scratch warm-up: amortized, sized by a count the frame length vouches for
	} else {
		d.resps = d.resps[:n]
	}
	d.cols = d.cols[:0]
	d.pairs = d.pairs[:0]
	for i := range d.resps {
		body, err = parseResponseAlias(body, &d.resps[i], d)
		if err != nil {
			return nil, err
		}
	}
	if len(body) != 0 {
		return nil, errTrailingResp
	}
	return d.resps, nil
}

//masstree:noalloc
func parseResponseAlias(b []byte, r *Response, d *RespDecodeBuf) ([]byte, error) {
	*r = Response{}
	if len(b) < 13 {
		return nil, errShort
	}
	r.Status = b[0]
	r.Version = binary.LittleEndian.Uint64(b[1:])
	ncols := int(binary.LittleEndian.Uint16(b[9:]))
	b = b[11:]
	var err error
	if ncols > 0 {
		r.Cols, b, err = parseColsAlias(b, ncols, d)
		if err != nil {
			return nil, err
		}
	}
	if len(b) < 2 {
		return nil, errShort
	}
	npairs := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if npairs > 0 {
		start := len(d.pairs)
		for i := 0; i < npairs; i++ {
			var p Pair
			if len(b) < 2 {
				return nil, errShort
			}
			klen := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			if len(b) < klen+2 {
				return nil, errShort
			}
			p.Key = b[:klen:klen]
			b = b[klen:]
			nc := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			p.Cols, b, err = parseColsAlias(b, nc, d)
			if err != nil {
				return nil, err
			}
			d.pairs = append(d.pairs, p)
		}
		r.Pairs = d.pairs[start:len(d.pairs):len(d.pairs)]
	}
	return b, nil
}

// parseColsAlias reads n length-prefixed byte strings, aliasing b, with the
// [][]byte headers appended to d's cols arena.
//
//masstree:noalloc
func parseColsAlias(b []byte, n int, d *RespDecodeBuf) ([][]byte, []byte, error) {
	start := len(d.cols)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, nil, errShort
		}
		dlen := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < dlen {
			return nil, nil, errShort
		}
		d.cols = append(d.cols, b[:dlen:dlen])
		b = b[dlen:]
	}
	return d.cols[start:len(d.cols):len(d.cols)], b, nil
}

// AppendRequests appends a complete framed request batch (length header plus
// body) to dst, returning the extended slice.
func AppendRequests(dst []byte, reqs []Request) ([]byte, error) {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(reqs)))
	for i := range reqs {
		dst = appendRequest(dst, &reqs[i])
	}
	return finishFrame(dst, base)
}

// AppendResponses appends a complete framed response batch to dst.
func AppendResponses(dst []byte, resps []Response) ([]byte, error) {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(resps)))
	for i := range resps {
		dst = appendResponse(dst, &resps[i])
	}
	return finishFrame(dst, base)
}

// finishFrame patches the 4-byte length header reserved at base.
func finishFrame(dst []byte, base int) ([]byte, error) {
	n := len(dst) - base - 4
	if n > MaxMessage {
		return dst[:base], errTooLarge
	}
	binary.LittleEndian.PutUint32(dst[base:], uint32(n))
	return dst, nil
}

// WriteRequestsInto frames and writes a request batch, building the frame in
// *buf (grown as needed and retained for reuse across calls).
func WriteRequestsInto(w *bufio.Writer, reqs []Request, buf *[]byte) error {
	b, err := AppendRequests((*buf)[:0], reqs)
	if err != nil {
		return err
	}
	*buf = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.Flush()
}

// WriteResponsesInto frames and writes a response batch, building the frame
// in *buf (grown as needed and retained for reuse across calls).
func WriteResponsesInto(w *bufio.Writer, resps []Response, buf *[]byte) error {
	b, err := AppendResponses((*buf)[:0], resps)
	if err != nil {
		return err
	}
	*buf = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.Flush()
}

// WriteRequests frames and writes a request batch using a pooled buffer.
func WriteRequests(w *bufio.Writer, reqs []Request) error {
	bp := framePool.Get().(*[]byte)
	err := WriteRequestsInto(w, reqs, bp)
	putFrameBuf(bp)
	return err
}

// WriteResponses frames and writes a response batch using a pooled buffer.
func WriteResponses(w *bufio.Writer, resps []Response) error {
	bp := framePool.Get().(*[]byte)
	err := WriteResponsesInto(w, resps, bp)
	putFrameBuf(bp)
	return err
}

// ReadRequests reads one framed request batch. The returned requests own
// their memory (nothing aliases internal buffers); the frame is pooled.
func ReadRequests(r *bufio.Reader) ([]Request, error) {
	bp := framePool.Get().(*[]byte)
	defer putFrameBuf(bp)
	body, err := readFrameInto(r, bp)
	if err != nil {
		return nil, err
	}
	n, body, err := readU32(body)
	if err != nil {
		return nil, err
	}
	if int(n) > len(body)/minRequestSize {
		return nil, errShort
	}
	reqs := make([]Request, n)
	for i := range reqs {
		body, err = parseRequest(body, &reqs[i])
		if err != nil {
			return nil, err
		}
	}
	if len(body) != 0 {
		return nil, errTrailingReq
	}
	return reqs, nil
}

// ReadResponses reads one framed response batch. The returned responses own
// their memory; the frame is pooled.
func ReadResponses(r *bufio.Reader) ([]Response, error) {
	bp := framePool.Get().(*[]byte)
	defer putFrameBuf(bp)
	body, err := readFrameInto(r, bp)
	if err != nil {
		return nil, err
	}
	n, body, err := readU32(body)
	if err != nil {
		return nil, err
	}
	if int(n) > len(body)/minResponseSize {
		return nil, errShort
	}
	resps := make([]Response, n)
	for i := range resps {
		body, err = parseResponse(body, &resps[i])
		if err != nil {
			return nil, err
		}
	}
	if len(body) != 0 {
		return nil, errTrailingResp
	}
	return resps, nil
}

// ParseFrame validates a self-contained frame (one UDP datagram: 4-byte
// length header plus body filling the rest of the buffer) and returns the
// body, aliasing b.
//
//masstree:noalloc
func ParseFrame(b []byte) ([]byte, error) {
	if len(b) < 4 {
		return nil, errShort
	}
	n := binary.LittleEndian.Uint32(b)
	if n > MaxMessage {
		return nil, errTooLarge
	}
	if int(n) != len(b)-4 {
		return nil, errFrameLen
	}
	return b[4:], nil
}

// readFrameInto reads one length-prefixed frame body into *buf, growing it
// as needed; the buffer is retained across calls for reuse.
func readFrameInto(r *bufio.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxMessage {
		return nil, errTooLarge
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	} else {
		*buf = (*buf)[:n]
	}
	if _, err := io.ReadFull(r, *buf); err != nil {
		return nil, err
	}
	return *buf, nil
}

func appendRequest(b []byte, r *Request) []byte {
	b = append(b, byte(r.Op))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Key)))
	b = append(b, r.Key...)
	switch r.Op {
	case OpGet, OpGetRange, OpGetOrLoad:
		b = append(b, byte(len(r.Cols)))
		for _, c := range r.Cols {
			b = binary.LittleEndian.AppendUint16(b, uint16(c))
		}
		if r.Op == OpGetRange {
			b = binary.LittleEndian.AppendUint16(b, uint16(r.N))
		}
	case OpPut, OpCas, OpPutTTL:
		if r.Op == OpCas {
			b = binary.LittleEndian.AppendUint64(b, r.ExpectVersion)
		}
		if r.Op == OpPutTTL {
			b = binary.LittleEndian.AppendUint32(b, r.TTL)
		}
		b = append(b, byte(len(r.Puts)))
		for _, p := range r.Puts {
			b = binary.LittleEndian.AppendUint16(b, uint16(p.Col))
			b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Data)))
			b = append(b, p.Data...)
		}
	case OpTouch:
		b = binary.LittleEndian.AppendUint32(b, r.TTL)
	case OpRemove, OpStats:
	}
	return b
}

func parseRequest(b []byte, r *Request) ([]byte, error) {
	if len(b) < 3 {
		return nil, errShort
	}
	r.Op = OpCode(b[0])
	klen := int(binary.LittleEndian.Uint16(b[1:]))
	b = b[3:]
	if len(b) < klen {
		return nil, errShort
	}
	r.Key = append([]byte(nil), b[:klen]...)
	b = b[klen:]
	switch r.Op {
	case OpGet, OpGetRange, OpGetOrLoad:
		if len(b) < 1 {
			return nil, errShort
		}
		ncols := int(b[0])
		b = b[1:]
		if len(b) < 2*ncols {
			return nil, errShort
		}
		if ncols > 0 {
			r.Cols = make([]int, ncols)
			for i := range r.Cols {
				r.Cols[i] = int(binary.LittleEndian.Uint16(b))
				b = b[2:]
			}
		}
		if r.Op == OpGetRange {
			if len(b) < 2 {
				return nil, errShort
			}
			r.N = int(binary.LittleEndian.Uint16(b))
			b = b[2:]
		}
	case OpPut, OpCas, OpPutTTL:
		if r.Op == OpCas {
			if len(b) < 8 {
				return nil, errShort
			}
			r.ExpectVersion = binary.LittleEndian.Uint64(b)
			b = b[8:]
		}
		if r.Op == OpPutTTL {
			if len(b) < 4 {
				return nil, errShort
			}
			r.TTL = binary.LittleEndian.Uint32(b)
			b = b[4:]
		}
		if len(b) < 1 {
			return nil, errShort
		}
		nputs := int(b[0])
		b = b[1:]
		r.Puts = make([]ColData, nputs)
		for i := range r.Puts {
			if len(b) < 6 {
				return nil, errShort
			}
			r.Puts[i].Col = int(binary.LittleEndian.Uint16(b))
			dlen := int(binary.LittleEndian.Uint32(b[2:]))
			b = b[6:]
			if len(b) < dlen {
				return nil, errShort
			}
			r.Puts[i].Data = append([]byte(nil), b[:dlen]...)
			b = b[dlen:]
		}
	case OpTouch:
		if len(b) < 4 {
			return nil, errShort
		}
		r.TTL = binary.LittleEndian.Uint32(b)
		b = b[4:]
	case OpRemove, OpStats:
	default:
		return nil, fmt.Errorf("wire: unknown opcode %d", r.Op)
	}
	return b, nil
}

func appendResponse(b []byte, r *Response) []byte {
	b = append(b, r.Status)
	b = binary.LittleEndian.AppendUint64(b, r.Version)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Cols)))
	for _, c := range r.Cols {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(c)))
		b = append(b, c...)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Pairs)))
	for _, p := range r.Pairs {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Key)))
		b = append(b, p.Key...)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Cols)))
		for _, c := range p.Cols {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(c)))
			b = append(b, c...)
		}
	}
	return b
}

func parseResponse(b []byte, r *Response) ([]byte, error) {
	if len(b) < 13 {
		return nil, errShort
	}
	r.Status = b[0]
	r.Version = binary.LittleEndian.Uint64(b[1:])
	ncols := int(binary.LittleEndian.Uint16(b[9:]))
	b = b[11:]
	if ncols > 0 {
		r.Cols = make([][]byte, ncols)
		for i := range r.Cols {
			var err error
			r.Cols[i], b, err = readBytes32(b)
			if err != nil {
				return nil, err
			}
		}
	}
	if len(b) < 2 {
		return nil, errShort
	}
	npairs := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if npairs > 0 {
		r.Pairs = make([]Pair, npairs)
		for i := range r.Pairs {
			if len(b) < 2 {
				return nil, errShort
			}
			klen := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			if len(b) < klen+2 {
				return nil, errShort
			}
			r.Pairs[i].Key = append([]byte(nil), b[:klen]...)
			b = b[klen:]
			nc := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			r.Pairs[i].Cols = make([][]byte, nc)
			for j := 0; j < nc; j++ {
				var err error
				r.Pairs[i].Cols[j], b, err = readBytes32(b)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return b, nil
}

func readBytes32(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, errShort
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return nil, nil, errShort
	}
	return append([]byte(nil), b[:n]...), b[n:], nil
}

func readU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errShort
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}
