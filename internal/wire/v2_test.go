package wire

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	b := AppendHello(nil, Version2)
	if len(b) != HelloSize {
		t.Fatalf("hello size %d want %d", len(b), HelloSize)
	}
	if !IsHelloPrefix(b) {
		t.Fatal("hello not recognized by IsHelloPrefix")
	}
	ver, err := ReadHello(bytes.NewReader(b))
	if err != nil || ver != Version2 {
		t.Fatalf("ReadHello: %d %v", ver, err)
	}

	// A v1 frame must not look like a hello.
	frame, err := AppendRequests(nil, []Request{{Op: OpGet, Key: []byte("k")}})
	if err != nil {
		t.Fatal(err)
	}
	if IsHelloPrefix(frame) {
		t.Fatal("v1 frame mistaken for hello")
	}

	// Corrupt magic and version are rejected.
	bad := AppendHello(nil, Version2)
	bad[5] ^= 0xff
	if _, err := ReadHello(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadHello(bytes.NewReader(AppendHello(nil, 0))); err == nil {
		t.Fatal("version 0 accepted")
	}
}

// A v1 decoder must reject hello and v2 frames outright (they decode as
// impossible lengths), so a legacy endpoint — the UDP path included — can
// never misparse v2 traffic.
func TestV1DecodersRejectV2(t *testing.T) {
	tagged, err := AppendTaggedRequests(nil, 3, []Request{{Op: OpGet, Key: []byte("k")}})
	if err != nil {
		t.Fatal(err)
	}
	for name, frame := range map[string][]byte{
		"hello":  AppendHello(nil, Version2),
		"tagged": tagged,
	} {
		if _, err := ParseFrame(frame); err == nil {
			t.Fatalf("ParseFrame accepted a %s frame", name)
		}
		if _, err := ReadRequests(bufio.NewReader(bytes.NewReader(frame))); err == nil {
			t.Fatalf("ReadRequests accepted a %s frame", name)
		}
	}
	// And the v2 reader rejects v1 frames (missing marker bit).
	v1, err := AppendRequests(nil, []Request{{Op: OpGet, Key: []byte("k")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadTaggedHeader(bytes.NewReader(v1)); err == nil {
		t.Fatal("ReadTaggedHeader accepted a v1 frame")
	}
}

func TestTaggedRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: []byte("alpha"), Cols: []int{0, 2}},
		{Op: OpPut, Key: []byte("beta"), Puts: []ColData{{Col: 1, Data: []byte("data")}}},
		{Op: OpCas, Key: []byte("gamma"), ExpectVersion: 42, Puts: []ColData{{Col: 0, Data: []byte("cond")}}},
		{Op: OpPutTTL, Key: []byte("zeta"), TTL: 300, Puts: []ColData{{Col: 2, Data: []byte("exp")}}},
		{Op: OpTouch, Key: []byte("eta"), TTL: 86400},
		{Op: OpRemove, Key: []byte("delta")},
		{Op: OpGetRange, Key: []byte("eps"), N: 7},
		{Op: OpStats},
	}
	frame, err := AppendTaggedRequests(nil, 0xdeadbeef, reqs)
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(frame)
	tag, n, err := ReadTaggedHeader(r)
	if err != nil || tag != 0xdeadbeef {
		t.Fatalf("header: tag=%x err=%v", tag, err)
	}
	var d DecodeBuf
	body, err := ReadTaggedRequestBody(r, n, &d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRequests(body, &d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeReqs(got), normalizeReqs(reqs)) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, reqs)
	}
}

func TestTaggedResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, Version: 9, Cols: [][]byte{[]byte("one"), []byte("two")}},
		{Status: StatusNotFound},
		{Status: StatusConflict, Version: 17},
		{Status: StatusOK, Pairs: []Pair{{Key: []byte("k"), Cols: [][]byte{[]byte("v")}}}},
	}
	frame, err := AppendTaggedResponses(nil, 7, resps)
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(frame)
	tag, n, err := ReadTaggedHeader(r)
	if err != nil || tag != 7 {
		t.Fatalf("header: tag=%d err=%v", tag, err)
	}
	var d RespDecodeBuf
	got, err := ReadTaggedResponseBody(r, n, &d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(resps) {
		t.Fatalf("%d responses want %d", len(got), len(resps))
	}
	for i := range resps {
		if got[i].Status != resps[i].Status || got[i].Version != resps[i].Version {
			t.Fatalf("resp %d: %+v want %+v", i, got[i], resps[i])
		}
	}
	if string(got[0].Cols[1]) != "two" || string(got[3].Pairs[0].Key) != "k" {
		t.Fatalf("payload mismatch: %+v", got)
	}
}

// The CAS request must round-trip through the owning (v1) decoder too —
// OpCas is a body-level extension shared by both protocol versions.
func TestCasRequestV1RoundTrip(t *testing.T) {
	reqs := []Request{{Op: OpCas, Key: []byte("key"), ExpectVersion: 1 << 40,
		Puts: []ColData{{Col: 3, Data: []byte("v")}}}}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequests(w, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequests(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Op != OpCas || got[0].ExpectVersion != 1<<40 || got[0].Puts[0].Col != 3 {
		t.Fatalf("cas round trip: %+v", got[0])
	}
}

func TestParseRequestsLenient(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: []byte("a")},
		{Op: OpCode(200), Key: []byte("b")}, // unknown opcode: undecodable
		{Op: OpGet, Key: []byte("c")},
	}
	frame, err := AppendRequests(nil, reqs)
	if err != nil {
		t.Fatal(err)
	}
	body := frame[4:] // strip length header
	var d DecodeBuf
	got, claimed, err := ParseRequestsLenient(body, &d)
	if err != nil {
		t.Fatal(err)
	}
	if claimed != 3 || len(got) != 1 {
		t.Fatalf("claimed=%d decoded=%d want 3/1", claimed, len(got))
	}
	if string(got[0].Key) != "a" {
		t.Fatalf("decoded prefix wrong: %+v", got)
	}

	// A fully well-formed batch decodes whole.
	okFrame, _ := AppendRequests(nil, []Request{{Op: OpGet, Key: []byte("x")}, {Op: OpRemove, Key: []byte("y")}})
	got, claimed, err = ParseRequestsLenient(okFrame[4:], &d)
	if err != nil || claimed != 2 || len(got) != 2 {
		t.Fatalf("well-formed: %d/%d %v", len(got), claimed, err)
	}

	// A forged count is a frame-level error, not a per-request one.
	var forged []byte
	forged = append(forged, 0xff, 0xff, 0x00, 0x00) // claims 65535 requests
	forged = append(forged, 1, 0, 0, 'k')
	if _, _, err := ParseRequestsLenient(forged, &d); err == nil {
		t.Fatal("forged count accepted")
	}

	// Trailing bytes after a complete batch are a frame-level error too.
	trailing := append(append([]byte(nil), okFrame[4:]...), 0xAB)
	if _, _, err := ParseRequestsLenient(trailing, &d); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func normalizeReqs(in []Request) []Request {
	out := make([]Request, len(in))
	for i, r := range in {
		if len(r.Key) == 0 {
			r.Key = nil
		}
		if len(r.Cols) == 0 {
			r.Cols = nil
		}
		if len(r.Puts) == 0 {
			r.Puts = nil
		}
		out[i] = r
	}
	return out
}
