package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsSmoke runs every experiment at tiny scale, checking the
// tables are structurally complete (every row has a cell per header, no
// empty cells).
func TestAllExperimentsSmoke(t *testing.T) {
	sc := SmokeScale()
	for _, id := range IDs {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl := Registry[id](sc)
			if tbl.ID != id {
				t.Fatalf("table id %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Headers) {
					t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tbl.Headers))
				}
				for _, c := range row {
					if strings.TrimSpace(c) == "" {
						t.Fatalf("empty cell in row %v", row)
					}
				}
			}
			out := tbl.Render()
			if !strings.Contains(out, tbl.Title) {
				t.Fatal("render missing title")
			}
		})
	}
}

func TestFig13CapabilityCells(t *testing.T) {
	tbl := Fig13(SmokeScale())
	// memcached-like column must be n/a for MYCSB-A/B/E; redis-like n/a for E.
	find := func(name string) []string {
		for _, r := range tbl.Rows {
			if r[0] == name {
				return r
			}
		}
		t.Fatalf("row %q missing", name)
		return nil
	}
	memcachedCol := len(tbl.Headers) - 1
	redisCol := len(tbl.Headers) - 2
	if find("MYCSB-A")[memcachedCol] != "n/a" || find("MYCSB-B")[memcachedCol] != "n/a" {
		t.Fatal("memcached-like should not run MYCSB-A/B")
	}
	if find("MYCSB-E")[memcachedCol] != "n/a" || find("MYCSB-E")[redisCol] != "n/a" {
		t.Fatal("hash stores should not run MYCSB-E")
	}
	if find("MYCSB-E")[1] == "n/a" {
		t.Fatal("Masstree must run MYCSB-E")
	}
}

func TestDefaultScaleFill(t *testing.T) {
	sc := Scale{}.withDefaults()
	if sc.Keys == 0 || sc.Ops == 0 || sc.Workers == 0 || sc.Batch == 0 {
		t.Fatalf("defaults not applied: %+v", sc)
	}
}
