package server

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/client"
	"repro/internal/wire"
)

// TestBatchedGetsMatchPerKeyGets drives the batch-aware execution path
// (runs of OpGets served through Session.GetBatch) under concurrent writes
// and checks that every batched result is a value some writer actually
// stored for that key; once writers stop, batched and per-key gets must
// agree exactly. It also asserts, via the batched_gets stat, that the
// batched path really served the gets.
func TestBatchedGetsMatchPerKeyGets(t *testing.T) {
	srv, addr := startServer(t, "")
	const nkeys = 128
	const batch = 64

	key := func(i int) []byte { return []byte(fmt.Sprintf("batch-key-%04d", i)) }
	// Values are self-describing — "i#seq" — so a reader can verify any
	// observed value was genuinely written for that key.
	val := func(i, seq int) []byte { return []byte(fmt.Sprintf("%04d#%08d", i, seq)) }

	seed, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	for i := 0; i < nkeys; i++ {
		if _, err := seed.PutSimple(key(i), val(i, 0)); err != nil {
			t.Fatal(err)
		}
	}

	// Writers churn every key over their own connections.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wc, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer wc.Close()
		wg.Add(1)
		go func(wc *client.Client, w int) {
			defer wg.Done()
			for seq := 1; !stop.Load(); seq++ {
				i := (seq*7 + w*13) % nkeys
				if _, err := wc.PutSimple(key(i), val(i, seq)); err != nil {
					return
				}
			}
		}(wc, w)
	}

	reader, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	reqs := make([]wire.Request, batch)
	for round := 0; round < 50; round++ {
		for j := range reqs {
			reqs[j] = wire.Request{Op: wire.OpGet, Key: key((round*batch + j*3) % nkeys)}
		}
		resps, err := reader.DoReuse(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for j, r := range resps {
			if r.Status != wire.StatusOK || len(r.Cols) != 1 {
				t.Fatalf("round %d req %d: status %d cols %d", round, j, r.Status, len(r.Cols))
			}
			if !bytes.HasPrefix(r.Cols[0], reqs[j].Key[len("batch-key-"):]) {
				t.Fatalf("round %d: key %q returned foreign value %q", round, reqs[j].Key, r.Cols[0])
			}
		}
	}

	stop.Store(true)
	wg.Wait()

	// Quiescent: batched results must equal per-key gets exactly. Per-key
	// gets go out one request per message, below the batching threshold.
	for j := range reqs {
		reqs[j] = wire.Request{Op: wire.OpGet, Key: key(j * 2 % nkeys)}
	}
	batched, err := reader.Do(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for j := range reqs {
		single, ok, err := seed.Get(reqs[j].Key, nil)
		if err != nil || !ok {
			t.Fatalf("per-key get %q: %v %v", reqs[j].Key, ok, err)
		}
		if !bytes.Equal(batched[j].Cols[0], single[0]) {
			t.Fatalf("key %q: batched %q != per-key %q", reqs[j].Key, batched[j].Cols[0], single[0])
		}
	}

	if n := srv.batchedGets.Load(); n < int64(50*batch) {
		t.Fatalf("batched path served %d gets, want >= %d — runs are not using Session.GetBatch", n, 50*batch)
	}
}

// TestMixedBatchResponseArenas sends one message whose responses all share
// the per-connection arenas (two range queries, interleaved gets, a put)
// and checks nothing is clobbered before encoding.
func TestMixedBatchResponseArenas(t *testing.T) {
	_, addr := startServer(t, "")
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("ra%02d", i))
		if _, err := c.Put(k, []wire.ColData{{Col: 0, Data: append([]byte("v-"), k...)}, {Col: 1, Data: []byte("c1")}}); err != nil {
			t.Fatal(err)
		}
	}

	resps, err := c.Do([]wire.Request{
		{Op: wire.OpGetRange, Key: []byte("ra00"), N: 3},
		{Op: wire.OpGet, Key: []byte("ra05")},
		{Op: wire.OpGet, Key: []byte("ra06"), Cols: []int{1}},
		{Op: wire.OpPut, Key: []byte("ra99"), Puts: []wire.ColData{{Col: 0, Data: []byte("new")}}},
		{Op: wire.OpGetRange, Key: []byte("ra07"), N: 2},
		{Op: wire.OpGet, Key: []byte("ra99")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps[0].Pairs) != 3 || string(resps[0].Pairs[0].Key) != "ra00" || string(resps[0].Pairs[2].Cols[0]) != "v-ra02" {
		t.Fatalf("first range clobbered: %+v", resps[0].Pairs)
	}
	if string(resps[1].Cols[0]) != "v-ra05" || string(resps[1].Cols[1]) != "c1" {
		t.Fatalf("get all-cols: %q", resps[1].Cols)
	}
	if len(resps[2].Cols) != 1 || string(resps[2].Cols[0]) != "c1" {
		t.Fatalf("get col 1: %q", resps[2].Cols)
	}
	if len(resps[4].Pairs) != 2 || string(resps[4].Pairs[1].Key) != "ra08" {
		t.Fatalf("second range: %+v", resps[4].Pairs)
	}
	if string(resps[5].Cols[0]) != "new" {
		t.Fatalf("get after put: %q", resps[5].Cols)
	}
}
