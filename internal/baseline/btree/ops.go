package btree

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/baseline/occ"
	"repro/internal/value"
)

// ascendToRoot walks to the current root after a stale-root descent.
func ascendToRoot(h *nodeHeader) *nodeHeader {
	for !occ.Root(h.version.Load()) {
		p := h.parent.Load()
		if p == nil {
			return h
		}
		h = &p.h
	}
	return h
}

func (in *interiorNode) childFor(key []byte) *nodeHeader {
	nk := int(in.nkeys.Load())
	if nk < 0 {
		nk = 0
	} else if nk > width {
		nk = width
	}
	i := 0
	for i < nk {
		k := in.keys[i].Load()
		if k == nil || k.compare(key) < 0 { // key < separator: stop
			break
		}
		i++
	}
	return in.child[i].Load()
}

// findBorder descends with hand-over-hand validation (Figure 6).
func findBorder(root *nodeHeader, key []byte) (*borderNode, uint64) {
retry:
	n := root
	v := n.version.Stable()
	if !occ.Root(v) {
		root = ascendToRoot(root)
		goto retry
	}
	for {
		if occ.Border(v) {
			return n.border(), v
		}
		n1 := n.interior().childFor(key)
		if n1 == nil {
			v1 := n.version.Stable()
			if occ.VSplit(v1) != occ.VSplit(v) {
				goto retry
			}
			v = v1
			continue
		}
		v1 := n1.version.Stable()
		if !occ.Changed(n.version.Load(), v) {
			n, v = n1, v1
			continue
		}
		v2 := n.version.Stable()
		if occ.VSplit(v2) != occ.VSplit(v) {
			goto retry
		}
		v = v2
	}
}

// slotOf maps rank to slot under the current mode.
func (t *Tree) slotOf(n *borderNode, p perm, rank int) int {
	if t.permuter {
		return p.slot(rank)
	}
	return rank
}

// liveCount returns the number of live keys under the current mode.
func (t *Tree) liveCount(n *borderNode, p perm) int {
	if t.permuter {
		return p.count()
	}
	return int(n.nkeys.Load())
}

// search finds key among the node's live entries; rank is the insertion
// position when not found. Racy reads validated by version checks.
func (t *Tree) search(n *borderNode, p perm, key []byte) (rank int, found bool) {
	cnt := t.liveCount(n, p)
	if cnt < 0 {
		cnt = 0
	} else if cnt > width {
		cnt = width
	}
	for rank = 0; rank < cnt; rank++ {
		bk := n.keys[t.slotOf(n, p, rank)].Load()
		if bk == nil {
			return rank, false // mid-shift; version check will retry
		}
		c := bk.compare(key)
		if c == 0 {
			return rank, true
		}
		if c < 0 { // search key precedes this entry: insertion point
			return rank, false
		}
	}
	return cnt, false
}

// Get returns the value for key; lock-free.
func (t *Tree) Get(key []byte) (*value.Value, bool) {
	root := t.root.Load()
	n, v := findBorder(root, key)
forward:
	p := perm(n.permutation.Load())
	rank, found := t.search(n, p, key)
	var vp unsafe.Pointer
	if found {
		vp = atomic.LoadPointer(&n.vals[t.slotOf(n, p, rank)])
	}
	if v2 := n.h.version.Load(); occ.Changed(v2, v) {
		v = n.h.version.Stable()
		for {
			next := n.next.Load()
			if next == nil || next.lowkey == nil || next.lowkey.compare(key) < 0 {
				break
			}
			n = next
			v = n.h.version.Stable()
		}
		goto forward
	}
	if !found || vp == nil {
		return nil, false
	}
	return (*value.Value)(vp), true
}

// Put stores v for key, reporting replacement.
func (t *Tree) Put(key []byte, v *value.Value) bool {
	root := t.root.Load()
	n, _ := findBorder(root, key)
	n.h.version.Lock()
	for {
		next := n.next.Load()
		if next == nil || next.lowkey == nil || next.lowkey.compare(key) < 0 {
			break
		}
		next.h.version.Lock()
		n.h.version.Unlock()
		n = next
	}
	p := perm(n.permutation.Load())
	rank, found := t.search(n, p, key)
	if found {
		atomic.StorePointer(&n.vals[t.slotOf(n, p, rank)], unsafe.Pointer(v))
		n.h.version.Unlock()
		return true
	}
	if t.liveCount(n, p) < width {
		t.insertAt(n, p, rank, key, v)
		n.h.version.Unlock()
	} else {
		t.splitInsert(n, rank, key, v) // unlocks
	}
	t.count.Add(1)
	return false
}

// Remove deletes key, reporting presence. Nodes are never deleted (baseline
// scope; see package comment).
func (t *Tree) Remove(key []byte) bool {
	root := t.root.Load()
	n, _ := findBorder(root, key)
	n.h.version.Lock()
	for {
		next := n.next.Load()
		if next == nil || next.lowkey == nil || next.lowkey.compare(key) < 0 {
			break
		}
		next.h.version.Lock()
		n.h.version.Unlock()
		n = next
	}
	p := perm(n.permutation.Load())
	rank, found := t.search(n, p, key)
	if !found {
		n.h.version.Unlock()
		return false
	}
	if t.permuter {
		n.permutation.Store(uint64(p.remove(rank)))
	} else {
		n.h.version.MarkInserting()
		cnt := int(n.nkeys.Load())
		for i := rank; i < cnt-1; i++ {
			n.keys[i].Store(n.keys[i+1].Load())
			atomic.StorePointer(&n.vals[i], atomic.LoadPointer(&n.vals[i+1]))
		}
		n.nkeys.Store(int32(cnt - 1))
	}
	n.h.version.Unlock()
	t.count.Add(-1)
	return true
}

// insertAt writes a new key into the locked, non-full border node.
func (t *Tree) insertAt(n *borderNode, p perm, rank int, key []byte, v *value.Value) {
	bk := makeKey(key)
	if t.permuter {
		np, slot := p.insert(rank)
		if n.used&(1<<uint(slot)) != 0 {
			n.h.version.MarkInserting() // reused slot: §4.6.5
		}
		n.keys[slot].Store(bk)
		atomic.StorePointer(&n.vals[slot], unsafe.Pointer(v))
		n.used |= 1 << uint(slot)
		n.permutation.Store(uint64(np))
		return
	}
	// Plain B-tree: rearrange the sorted array in place under the dirty bit,
	// forcing concurrent readers to retry (the cost "+Permuter" removes).
	n.h.version.MarkInserting()
	cnt := int(n.nkeys.Load())
	for i := cnt; i > rank; i-- {
		n.keys[i].Store(n.keys[i-1].Load())
		atomic.StorePointer(&n.vals[i], atomic.LoadPointer(&n.vals[i-1]))
	}
	n.keys[rank].Store(bk)
	atomic.StorePointer(&n.vals[rank], unsafe.Pointer(v))
	n.nkeys.Store(int32(cnt + 1))
}
