package scratchalias_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/scratchalias"
)

func TestScratchalias(t *testing.T) {
	analysistest.Run(t, scratchalias.Analyzer, "a")
}
