// Package repro reproduces "Cache Craftiness for Fast Multicore Key-Value
// Storage" (Mao, Kohler, Morris — EuroSys 2012): the Masstree in-memory
// key-value store, its substrates (logging, checkpointing, networking), the
// paper's baseline data structures, and a benchmark harness that regenerates
// every table and figure of the paper's evaluation.
//
// Both halves of the request pipeline are batched and allocation-free in
// steady state. Reads: scratch-aliasing wire decoding, PALM-style batched
// lookups (§4.8), and arena-appended responses. Writes: runs of puts
// descend the tree in key order sharing one border-node lock acquisition
// per run (core.PutBatchInto), each put builds a single packed value
// allocation (value.BuildAt), versions come from per-worker loosely
// synchronized clocks instead of a global counter (§5.1, kvstore's
// shardedClock), and log records are encoded directly into per-worker
// double-buffered logs whose flushes never block appenders (§5, wal).
//
// The transport is protocol v2 (internal/wire): a hello exchange negotiates
// the version (clients that send no hello speak v1 verbatim), after which
// every frame carries a sequence tag and many batches ride one connection
// at once. The async client (client.Conn, Go/Wait) pipelines tagged batches
// behind one another, and the server turns each v2 connection into a
// reader → executor → writer pipeline over a recycled scratch ring, so
// decoding frame N+1 overlaps executing frame N and writing frame N−1 —
// batching fills each message, pipelining fills the gaps between messages
// (§7: "batched query support is vital on these benchmarks"). The API also
// exposes record versions end to end: gets return the value's version and
// OpCas applies a put only if the version still matches (checked under the
// same border-node lock as the write), giving clients lock-free
// read-modify-write across the network.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results. The implementation lives under internal/; runnable entry points
// are under cmd/ and examples/ (examples/pipeline demonstrates the async
// client and CAS). BENCH_pipeline.json, BENCH_writepath.json, and
// BENCH_pipeline_v2.json record the read-path, write-path, and pipelining
// numbers.
package repro
