package vfs

import "os"

// Open flags the persistence layer uses, aliased so MemFS and Fault can
// interpret the same values OS passes to os.OpenFile.
const (
	osCreate = os.O_CREATE
	osExcl   = os.O_EXCL
	osTrunc  = os.O_TRUNC
)
