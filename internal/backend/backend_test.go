package backend

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vfs"
)

func TestColsCodecRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{},
		{[]byte("hello")},
		{[]byte("a"), nil, []byte("ccc")},
		{nil, nil},
		{bytes.Repeat([]byte{0xab}, 4096)},
	}
	for _, cols := range cases {
		p := EncodeCols(cols)
		got, err := DecodeCols(p)
		if err != nil {
			t.Fatalf("DecodeCols(%q): %v", p, err)
		}
		if len(got) != len(cols) {
			t.Fatalf("ncols = %d, want %d", len(got), len(cols))
		}
		for i := range cols {
			if !bytes.Equal(got[i], cols[i]) {
				t.Fatalf("col %d = %q, want %q", i, got[i], cols[i])
			}
		}
	}
}

func TestColsCodecCorrupt(t *testing.T) {
	good := EncodeCols([][]byte{[]byte("abc"), []byte("de")})
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeCols(good[:cut]); err == nil && cut != 0 {
			// cut == 0 is not decodable either (empty uvarint), covered below.
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := DecodeCols(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
	if _, err := DecodeCols(append(EncodeCols(nil), 0xff)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// An absurd column count must be rejected before it sizes an allocation.
	if _, err := DecodeCols([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Fatal("huge column count accepted")
	}
}

func TestFileBackendRoundTrip(t *testing.T) {
	mem := vfs.NewMemFS()
	f, err := NewFile(mem, "/bk", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, ok, err := f.Load(ctx, []byte("nope")); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
	keys := [][]byte{
		[]byte("k1"),
		[]byte(""),
		bytes.Repeat([]byte("long"), 100), // hash-named
	}
	for i, k := range keys {
		want := []byte{byte(i), 1, 2, 3}
		if err := f.Store(ctx, k, want); err != nil {
			t.Fatalf("store %q: %v", k, err)
		}
		got, ttl, ok, err := f.Load(ctx, k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("load %q = %q,%v,%v,%v want %q", k, got, ttl, ok, err, want)
		}
		if ttl != 5*time.Second {
			t.Fatalf("ttl = %v", ttl)
		}
	}
	// Overwrite is a replace.
	if err := f.Store(ctx, []byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _, ok, _ := f.Load(ctx, []byte("k1"))
	if !ok || string(got) != "v2" {
		t.Fatalf("after overwrite: %q %v", got, ok)
	}
	if err := f.Delete(ctx, []byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := f.Load(ctx, []byte("k1")); ok || err != nil {
		t.Fatalf("after delete: ok=%v err=%v", ok, err)
	}
	if err := f.Delete(ctx, []byte("k1")); err != nil {
		t.Fatal("double delete should succeed")
	}
}

func TestWrapRetriesThenSucceeds(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	b := funcBackend{load: func(ctx context.Context, key []byte) ([]byte, time.Duration, bool, error) {
		if calls.Add(1) < 3 {
			return nil, 0, false, boom
		}
		return []byte("v"), 0, true, nil
	}}
	w := Wrap(b, WrapConfig{Retries: 3, RetryBase: time.Microsecond, RetryMax: time.Millisecond})
	got, _, ok, err := w.Load(context.Background(), []byte("k"))
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("load = %q,%v,%v", got, ok, err)
	}
	st := w.Stats()
	if st.Retries != 2 || st.Errors != 0 || st.Loads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWrapExhaustsRetries(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	b := funcBackend{load: func(ctx context.Context, key []byte) ([]byte, time.Duration, bool, error) {
		calls.Add(1)
		return nil, 0, false, boom
	}}
	w := Wrap(b, WrapConfig{Retries: 2, RetryBase: time.Microsecond, RetryMax: time.Millisecond})
	if _, _, _, err := w.Load(context.Background(), []byte("k")); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", calls.Load())
	}
	st := w.Stats()
	if st.Errors != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWrapTimeout(t *testing.T) {
	m := NewMock(0)
	release := m.Hang()
	defer release()
	w := Wrap(m, WrapConfig{Timeout: 10 * time.Millisecond})
	start := time.Now()
	_, _, _, err := w.Load(context.Background(), []byte("k"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v", d)
	}
}

func TestWrapParentCancelDoesNotTripBreaker(t *testing.T) {
	m := NewMock(0)
	release := m.Hang()
	defer release()
	w := Wrap(m, WrapConfig{BreakerFailures: 1, BreakerOpenFor: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, _, _, err := w.Load(ctx, []byte("k")); err == nil {
		t.Fatal("expected error")
	}
	if st := w.Stats(); st.BreakerState != BreakerClosed || st.BreakerOpens != 0 {
		t.Fatalf("caller cancellation tripped the breaker: %+v", st)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	boom := errors.New("down")
	m := NewMock(0)
	m.Seed("k", []byte("v"))
	m.SetError(boom)
	w := Wrap(m, WrapConfig{
		BreakerFailures: 3,
		BreakerOpenFor:  30 * time.Millisecond,
		BreakerProbes:   2,
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, _, err := w.Load(ctx, []byte("k")); !errors.Is(err, boom) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if st := w.Stats(); st.BreakerState != BreakerOpen || st.BreakerOpens != 1 {
		t.Fatalf("after threshold: %+v", st)
	}
	// While open: fail fast without touching the backend.
	before := m.Loads()
	if _, _, _, err := w.Load(ctx, []byte("k")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open call: %v", err)
	}
	if m.Loads() != before {
		t.Fatal("open breaker let a call through")
	}
	if st := w.Stats(); st.Rejected == 0 {
		t.Fatalf("rejection not counted: %+v", st)
	}
	// Heal the backend, wait out the cool-down: probes close it again.
	m.SetError(nil)
	time.Sleep(40 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if _, _, ok, err := w.Load(ctx, []byte("k")); err != nil || !ok {
			t.Fatalf("probe %d: ok=%v err=%v", i, ok, err)
		}
	}
	if st := w.Stats(); st.BreakerState != BreakerClosed {
		t.Fatalf("after probes: %+v", st)
	}
	// A failed probe reopens.
	m.SetError(boom)
	for i := 0; i < 3; i++ {
		w.Load(ctx, []byte("k"))
	}
	if st := w.Stats(); st.BreakerState != BreakerOpen || st.BreakerOpens != 2 {
		t.Fatalf("after refailure: %+v", st)
	}
	time.Sleep(40 * time.Millisecond)
	if _, _, _, err := w.Load(ctx, []byte("k")); !errors.Is(err, boom) {
		t.Fatalf("probe error: %v", err)
	}
	if st := w.Stats(); st.BreakerState != BreakerOpen || st.BreakerOpens != 3 {
		t.Fatalf("failed probe did not reopen: %+v", st)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	m := NewMock(0)
	m.Seed("k", []byte("v"))
	m.SetError(errors.New("down"))
	w := Wrap(m, WrapConfig{BreakerFailures: 1, BreakerOpenFor: 10 * time.Millisecond})
	ctx := context.Background()
	w.Load(ctx, []byte("k")) // trips
	time.Sleep(20 * time.Millisecond)
	// One hanging probe; concurrent calls must fail fast, not pile up.
	release := m.Hang()
	m.SetError(nil)
	var probeErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, probeErr = w.Load(ctx, []byte("k"))
	}()
	waitFor(t, func() bool { return m.Loads() == 2 }) // probe arrived at the mock
	for i := 0; i < 4; i++ {
		if _, _, _, err := w.Load(ctx, []byte("k")); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("concurrent half-open call %d: %v", i, err)
		}
	}
	release()
	wg.Wait()
	if probeErr != nil {
		t.Fatalf("probe: %v", probeErr)
	}
	if st := w.Stats(); st.BreakerState != BreakerClosed {
		t.Fatalf("after probe: %+v", st)
	}
}

func TestWrapConcurrencyLimiter(t *testing.T) {
	var live, peak atomic.Int64
	b := funcBackend{load: func(ctx context.Context, key []byte) ([]byte, time.Duration, bool, error) {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		live.Add(-1)
		return nil, 0, false, nil
	}}
	w := Wrap(b, WrapConfig{Concurrency: 3})
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Load(context.Background(), []byte("k"))
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d > limit 3", p)
	}
}

func TestMockSingleflightInstrumentation(t *testing.T) {
	m := NewMock(0)
	m.Seed("k", []byte("v"))
	release := m.Hang()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Load(context.Background(), []byte("k"))
		}()
	}
	waitFor(t, func() bool { return m.Loads() == 4 })
	release()
	wg.Wait()
	if m.MaxConcurrentLoads() != 4 {
		t.Fatalf("max concurrent = %d, want 4", m.MaxConcurrentLoads())
	}
	if m.LoadsFor("k") != 4 {
		t.Fatalf("loads for k = %d", m.LoadsFor("k"))
	}
}

// funcBackend adapts bare funcs to Backend for tests.
type funcBackend struct {
	load  func(ctx context.Context, key []byte) ([]byte, time.Duration, bool, error)
	store func(ctx context.Context, key, payload []byte) error
	del   func(ctx context.Context, key []byte) error
}

func (f funcBackend) Load(ctx context.Context, key []byte) ([]byte, time.Duration, bool, error) {
	if f.load == nil {
		return nil, 0, false, nil
	}
	return f.load(ctx, key)
}

func (f funcBackend) Store(ctx context.Context, key, payload []byte) error {
	if f.store == nil {
		return nil
	}
	return f.store(ctx, key, payload)
}

func (f funcBackend) Delete(ctx context.Context, key []byte) error {
	if f.del == nil {
		return nil
	}
	return f.del(ctx, key)
}

// waitFor polls cond for up to ~2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
