package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"

	"repro/internal/value"
	"repro/internal/vfs"
)

// The legacy MTLOG1 record layout, kept as the reference encoder for
// format-compatibility tests and fuzz seeding — the writer only produces
// MTLOG2 now, but every v1 log ever written must keep recovering, so the
// reader is exercised against bytes produced exactly the way the old
// encoder produced them.

// appendRecordV1 serializes a record in the legacy MTLOG1 layout: identical
// to appendRecord except that no op carries a prev link.
//
//	crc32(payload) u32 | payloadLen u32 | payload
//	payload: ts u64 | op u8 | [expiry u64, OpPutTTL/OpInsertTTL only] | keyLen u32 | key |
//	         ncols u16 | { col u16 | dataLen u32 | data }*
func appendRecordV1(buf []byte, ts uint64, op Op, key []byte, puts []value.ColPut, expiry uint64) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // crc + len, backfilled below
	buf = binary.LittleEndian.AppendUint64(buf, ts)
	buf = append(buf, byte(op))
	if op.HasExpiry() {
		buf = binary.LittleEndian.AppendUint64(buf, expiry)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(puts)))
	for _, p := range puts {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Col))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Data)))
		buf = append(buf, p.Data...)
	}
	payload := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(buf[start+4:], uint32(len(payload)))
	return buf
}

// WriteLegacyLogFS writes a complete MTLOG1-format log file holding recs at
// path, exactly as a pre-v2 writer would have. Record Prev/Unlinked fields
// are ignored (the format has no place for them). Test support only: it
// lets compatibility tests lay down genuine v1 directories without keeping
// old binaries around.
func WriteLegacyLogFS(fsys vfs.FS, path string, recs []Record) error {
	buf := append([]byte(nil), fileMagicV1...)
	for i := range recs {
		buf = appendRecordV1(buf, recs[i].TS, recs[i].Op, recs[i].Key, recs[i].Puts, recs[i].Expiry)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
