package kvstore

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/vfs"
)

// The crash-point torture harness: run a put/checkpoint/put workload over
// the injectable filesystem, kill the store at every write/fsync/rename
// boundary, recover from several legal post-crash disk images, and check
// the recovered store against a model of acknowledged writes.
//
// Model invariants, per key:
//   - No lost acks: the recovered state is never older than the last
//     acknowledged state (a write is acknowledged once a Flush with
//     SyncWrites, or a completed checkpoint, covered it).
//   - No resurrections: keys never written do not appear; acknowledged
//     removes stay removed (unless a later applied write re-created the
//     key).
//   - Exact states only: a recovered value's (version, columns) must
//     exactly equal some state the live store actually produced — versions
//     never mix with other states' data.

// kvState is one applied state of a key.
type kvState struct {
	ver  uint64
	data string // all columns joined; "" plus tomb for removals
	tomb bool
}

type keyHist struct {
	worker int
	states []kvState
	acked  int // index of the last acknowledged state; -1 if none
	// dropped marks a key the cache-mode maintenance passes evicted or
	// expired (observed against the live tree). Drops are clean — never
	// logged — so after a crash the key may be absent (checkpoint omitted
	// it, pre-checkpoint records skip replay) or present at an applied
	// state (its log record replayed); absence is not a lost ack.
	dropped bool
}

type torture struct {
	t       *testing.T
	mem     *vfs.MemFS
	fault   *vfs.Fault
	s       *Store
	hist    map[string]*keyHist
	workers int
	parts   int
}

const tortureDir = "/data"

// fatalDump fails the run after dumping the store's flight recorder: the
// event timeline (recovery phases, chain rollbacks, missing logs, eviction
// decisions) is the post-mortem context a torture invariant violation
// needs, and it is gone once the process exits.
func fatalDump(t *testing.T, s *Store, format string, args ...any) {
	t.Helper()
	t.Logf("store flight recorder at failure:\n%s", s.Obs().Recorder().DumpString())
	t.Fatalf(format, args...)
}

func joinCols(cols [][]byte) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = string(c)
	}
	return strings.Join(parts, "|")
}

func (tt *torture) histOf(key string) *keyHist {
	h := tt.hist[key]
	if h == nil {
		// put/remove pin a key to this default worker; the multi-writer
		// schedules (putW/removeW in torture_multiwriter_test.go) override
		// it per op, deliberately spreading one key's records across logs.
		h = &keyHist{worker: len(tt.hist) % tt.workers, acked: -1}
		tt.hist[key] = h
	}
	return h
}

func (tt *torture) put(key string, puts ...value.ColPut) {
	h := tt.histOf(key)
	ver := tt.s.Put(h.worker, []byte(key), puts)
	cols, ok := tt.s.Get([]byte(key), nil)
	if !ok {
		fatalDump(tt.t, tt.s, "key %q vanished right after put", key)
	}
	h.states = append(h.states, kvState{ver: ver, data: joinCols(cols)})
	h.dropped = false // present again, whatever a maintenance pass did before
}

func (tt *torture) putSimple(key, val string) {
	tt.put(key, value.ColPut{Col: 0, Data: []byte(val)})
}

func (tt *torture) remove(key string) {
	h := tt.histOf(key)
	if tt.s.Remove(h.worker, []byte(key)) {
		h.states = append(h.states, kvState{tomb: true})
	}
}

// ack makes everything applied so far durable: a timestamp mark in every
// log (so no idle log pins the recovery cutoff) followed by a synced
// flush. Only on success does the model consider the writes acknowledged.
func (tt *torture) ack() error {
	tt.s.logs.Mark(tt.s.clock.max())
	if err := tt.s.Flush(); err != nil {
		return err
	}
	tt.promote()
	return nil
}

func (tt *torture) promote() {
	for _, h := range tt.hist {
		h.acked = len(h.states) - 1
	}
}

// ckpt checkpoints; on success everything applied before it is durable
// (the fuzzy scan ran with no concurrent writers here).
func (tt *torture) ckpt() error {
	if _, _, err := tt.s.CheckpointN(tt.parts); err != nil {
		return err
	}
	tt.promote()
	return nil
}

// workload is the put/checkpoint/put sequence under torture. Any injected
// crash surfaces as an error from the first ack/ckpt it breaks.
func (tt *torture) workload() error {
	// Phase 1: initial population (short keys and layered long keys).
	for i := 0; i < 12; i++ {
		tt.putSimple(fmt.Sprintf("k%02d", i), fmt.Sprintf("r1-%d", i))
	}
	for i := 0; i < 8; i++ {
		tt.putSimple(fmt.Sprintf("shared-long-prefix-%04d", i), fmt.Sprintf("r1L-%d", i))
	}
	if err := tt.ack(); err != nil {
		return err
	}
	if err := tt.ckpt(); err != nil {
		return err
	}
	// Phase 2: overwrites, multi-column puts, removes.
	for i := 0; i < 6; i++ {
		tt.putSimple(fmt.Sprintf("k%02d", i), fmt.Sprintf("r2-%d", i))
	}
	tt.put("k03",
		value.ColPut{Col: 1, Data: []byte("extra-col")},
		value.ColPut{Col: 2, Data: []byte("third")})
	tt.remove("k07")
	tt.remove("shared-long-prefix-0002")
	if err := tt.ack(); err != nil {
		return err
	}
	// Phase 3: more writes, then a second checkpoint (reclaims logs).
	for i := 0; i < 8; i++ {
		tt.putSimple(fmt.Sprintf("shared-long-prefix-%04d", i+4), fmt.Sprintf("r3L-%d", i))
	}
	tt.putSimple("k07", "reborn") // re-insert past the remove
	if err := tt.ckpt(); err != nil {
		return err
	}
	// Phase 4: tail writes, acknowledged by flush only.
	for i := 0; i < 6; i++ {
		tt.putSimple(fmt.Sprintf("k%02d", i+6), fmt.Sprintf("r4-%d", i))
	}
	tt.remove("k01")
	if err := tt.ack(); err != nil {
		return err
	}
	// Phase 5: applied but never acknowledged (may or may not survive).
	tt.putSimple("k00", "r5-pending")
	tt.putSimple("pending-new", "r5-new")
	return nil
}

// verify recovers from one post-crash disk image and checks every model
// invariant.
func (tt *torture) verify(img *vfs.MemFS, label string) {
	t := tt.t
	r, err := Open(Config{
		Dir: tortureDir, Workers: tt.workers, FS: img, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: tt.parts,
	})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer r.Close()
	r.Tree().Scan(nil, func(k []byte, v *value.Value) bool {
		h := tt.hist[string(k)]
		if h == nil {
			fatalDump(t, r, "%s: recovered key %q that was never written", label, k)
		}
		idx := -1
		for j, st := range h.states {
			if !st.tomb && st.ver == v.Version() {
				idx = j
				break
			}
		}
		if idx < 0 {
			fatalDump(t, r, "%s: key %q recovered at version %d, matching no applied state", label, k, v.Version())
		}
		if got := joinCols(v.Cols()); got != h.states[idx].data {
			fatalDump(t, r, "%s: key %q version %d recovered %q, applied state was %q (mixed state)",
				label, k, v.Version(), got, h.states[idx].data)
		}
		if idx < h.acked {
			fatalDump(t, r, "%s: key %q recovered state %d older than acknowledged state %d (lost ack)",
				label, k, idx, h.acked)
		}
		return true
	})
	for k, h := range tt.hist {
		if _, ok := r.Get([]byte(k), nil); ok {
			continue
		}
		if h.acked < 0 {
			continue // never acknowledged; total loss is legal
		}
		lostOK := h.dropped // a clean-dropped (evicted/expired) key may vanish
		for j := h.acked; j < len(h.states); j++ {
			if h.states[j].tomb {
				lostOK = true // an applied remove at/after the ack explains absence
				break
			}
		}
		if !lostOK {
			fatalDump(t, r, "%s: acknowledged key %q lost (acked state %d of %d)", label, k, h.acked, len(h.states))
		}
	}
}

// crashImages are the post-crash directory-state choices each crash is
// checked against: no pending directory op persisted (the conservative
// journal), all of them, and — the adversarial POSIX case — only the
// removes, modeling a crash that remembers reclamation but forgets the
// renames and creates that preceded it.
var crashImages = []struct {
	name string
	keep func(vfs.DirOp) bool
}{
	{"keep-none", nil},
	{"keep-all", vfs.KeepAll},
	{"keep-removes", func(op vfs.DirOp) bool { return op.Kind == vfs.DirRemove }},
}

// runTorture executes the workload with a crash armed at boundary crashAt
// (0 = disarmed), then verifies recovery from every crash image. Returns
// the number of boundaries executed and whether the crash fired.
func runTorture(t *testing.T, crashAt, workers, parts int) (ops int, crashed bool) {
	mem := vfs.NewMemFS()
	fault := vfs.NewFault(mem)
	fault.CrashAt(crashAt)
	tt := &torture{t: t, mem: mem, fault: fault, hist: map[string]*keyHist{}, workers: workers, parts: parts}
	s, err := Open(Config{
		Dir: tortureDir, Workers: workers, FS: fault, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: parts,
	})
	if err != nil {
		if !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("crashAt=%d: open: %v", crashAt, err)
		}
	} else {
		tt.s = s
		if werr := tt.workload(); werr != nil && !errors.Is(werr, vfs.ErrCrashed) {
			t.Fatalf("crashAt=%d: workload: %v", crashAt, werr)
		}
		// Close is part of the tortured op stream too (flushes and marks).
		if cerr := s.Close(); cerr == nil && !fault.Crashed() {
			tt.promote() // clean shutdown acknowledges everything
		}
	}
	ops, crashed = fault.Ops(), fault.Crashed()
	for _, img := range crashImages {
		c := mem.Clone()
		c.Crash(img.keep)
		tt.verify(c, fmt.Sprintf("crashAt=%d/%s", crashAt, img.name))
	}
	return ops, crashed
}

// TestCrashTortureEveryBoundary enumerates every filesystem boundary of
// the single-worker, single-part workload — the op stream is deterministic
// — and crashes at each one in turn.
func TestCrashTortureEveryBoundary(t *testing.T) {
	total, crashed := runTorture(t, 0, 1, 1)
	if crashed {
		t.Fatal("disarmed run crashed")
	}
	t.Logf("workload executes %d crash boundaries x %d images", total, len(crashImages))
	for i := 1; i <= total; i++ {
		runTorture(t, i, 1, 1)
	}
}

// TestCrashTortureMultiWorkerMultiPart tortures the concurrent pipeline:
// three worker logs and four checkpoint part writers. Part writers race,
// so boundary numbering varies run to run — every crash still lands on
// *some* boundary, and the model must hold wherever it lands. The loop
// walks crash points until a run completes without reaching its boundary.
func TestCrashTortureMultiWorkerMultiPart(t *testing.T) {
	for i := 1; ; i++ {
		_, crashed := runTorture(t, i, 3, 4)
		if !crashed {
			t.Logf("concurrent workload exhausted after %d crash points", i-1)
			break
		}
		if i > 2000 {
			t.Fatal("boundary count runaway")
		}
	}
}
