package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
)

// serverLogs collects the re-exec'd server's stderr as cmd.Stderr. Handing
// exec a plain io.Writer (not StderrPipe) matters: exec's own copier then
// drains the pipe and cmd.Wait blocks until every byte has landed here, so
// post-exit assertions see the complete shutdown output. (The previous
// StderrPipe+scanner shape flaked — Wait closes the pipe on process exit
// and can discard still-buffered final log lines.)
type serverLogs struct {
	mu     sync.Mutex
	b      strings.Builder
	addrCh chan string
	sent   bool
}

func (l *serverLogs) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.b.Write(p)
	if !l.sent {
		s := l.b.String()
		if i := strings.Index(s, "serving on "); i >= 0 {
			rest := s[i+len("serving on "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 { // full line landed
				if fields := strings.Fields(rest[:j]); len(fields) > 0 {
					l.addrCh <- fields[0]
					l.sent = true
				}
			}
		}
	}
	return len(p), nil
}

func (l *serverLogs) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestMain lets the test binary double as the server binary: with the
// reexec marker set, it runs main's run() instead of the tests, so the
// shutdown tests exercise the real signal path in a real process.
func TestMain(m *testing.M) {
	if os.Getenv("MASSTREE_SERVER_REEXEC") == "1" {
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// startServer re-execs this test binary as a masstree-server with the given
// flags and waits until it logs its bound address.
func startServer(t *testing.T, args ...string) (cmd *exec.Cmd, addr string, logs *serverLogs) {
	t.Helper()
	cmd = exec.Command(os.Args[0], append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), "MASSTREE_SERVER_REEXEC=1")
	logs = &serverLogs{addrCh: make(chan string, 1)}
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	select {
	case addr = <-logs.addrCh:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("server did not report its address; logs:\n%s", logs.String())
	}
	return cmd, addr, logs
}

// exitCode SIGTERMs the server and returns its exit code, failing the test
// if it does not exit within 15s.
func exitCode(t *testing.T, cmd *exec.Cmd) int {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v", err)
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server did not exit within 15s of SIGTERM")
	}
	return -1
}

// A SIGTERM with no connections open drains cleanly: WAL flushed, final
// checkpoint taken, exit code 0.
func TestGracefulShutdownClean(t *testing.T) {
	data := t.TempDir()
	bdir := filepath.Join(t.TempDir(), "backend")
	cmd, addr, logs := startServer(t,
		"-data", data, "-workers", "2",
		"-backend", "file:"+bdir, "-write-behind", "64",
		"-drain-timeout", "5s")

	conn, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.PutSimple([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	conn.Close() // nothing in flight when the signal lands

	if code := exitCode(t, cmd); code != 0 {
		t.Fatalf("exit code %d, want 0; logs:\n%s", code, logs.String())
	}
	if out := logs.String(); !strings.Contains(out, "final checkpoint") {
		t.Fatalf("no final checkpoint in logs:\n%s", out)
	}
	// The checkpoint is real: files landed in the data dir.
	entries, err := os.ReadDir(data)
	if err != nil || len(entries) == 0 {
		t.Fatalf("data dir empty after shutdown checkpoint (err=%v)", err)
	}
}

// A connection that never goes away makes the drain time out: the server
// still exits (force-closing it) but reports failure with a nonzero code.
func TestGracefulShutdownDrainTimeout(t *testing.T) {
	cmd, addr, logs := startServer(t, "-drain-timeout", "300ms")
	conn, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.PutSimple([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// conn stays open across the SIGTERM.
	if code := exitCode(t, cmd); code != 1 {
		t.Fatalf("exit code %d, want 1; logs:\n%s", code, logs.String())
	}
	if out := logs.String(); !strings.Contains(out, "drain timed out") {
		t.Fatalf("no drain-timeout report in logs:\n%s", out)
	}
}
