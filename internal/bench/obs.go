package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/server"
)

// Obs measures what the observability subsystem costs the data plane: the
// same get/put round-trip workload runs twice over localhost TCP — once
// with the store opened NoObs (no registry, every instrument nil) and once
// with the default-on instrumentation (per-op latency histograms, WAL and
// maintenance timers, flight recorder armed) — and the ratio is the
// overhead. Two microbenchmark columns pin the per-record cost directly:
// nanoseconds per Hist.Record and heap allocations across a record loop
// (must be 0 — the record path is one atomic add into a preallocated
// shard, which is the whole design).
func Obs(sc Scale) *Table {
	sc = sc.withDefaults()
	t := &Table{
		ID:      "obs",
		Title:   "observability overhead: get/put round-trips with instrumentation off vs on",
		Headers: []string{"config", "ops/s", "vs_off", "record_ns", "record_allocs"},
	}
	offRate := obsRoundTripRate(sc, true)
	onRate := obsRoundTripRate(sc, false)
	recNS, recAllocs := obsRecordCost()
	t.Rows = append(t.Rows,
		[]string{"obs off (Config.NoObs)", fmt.Sprintf("%.0f", offRate), "1.00", "-", "-"},
		[]string{"obs on (default)", fmt.Sprintf("%.0f", onRate), ratio(onRate, offRate),
			fmt.Sprintf("%.1f", recNS), fmt.Sprintf("%d", recAllocs)},
	)
	t.Notes = append(t.Notes,
		"mix: 80% get / 20% put, one round trip per op over localhost TCP; vs_off ≥ 0.97 is the acceptance bar (<3% overhead)",
		"record_ns/record_allocs: direct Hist.Record microbenchmark — the per-observation cost every timed op pays, allocation-free by construction")
	return t
}

// obsRoundTripRate serves the mixed workload from an in-memory store behind
// a real server and returns ops/sec of single-op round trips.
func obsRoundTripRate(sc Scale, noObs bool) float64 {
	st, err := kvstore.Open(kvstore.Config{Workers: sc.Workers, MaintainEvery: -1, NoObs: noObs})
	if err != nil {
		panic(err)
	}
	defer st.Close()
	srv := server.New(st, sc.Workers)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		panic(err)
	}
	defer srv.Close()

	keys := sc.Keys
	if keys > 20_000 {
		keys = 20_000 // round trips, not batches: keep the seed phase cheap
	}
	clients := make([]*client.Client, sc.Workers)
	for w := range clients {
		c, err := client.Dial(srv.Addr().String())
		if err != nil {
			panic(err)
		}
		clients[w] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	val := []byte("obs-bench-value-0123456789abcdef")
	for i := 0; i < keys; i++ {
		if _, err := clients[i%len(clients)].PutSimple(obsKey(i, keys), val); err != nil {
			panic(err)
		}
	}

	perWorker := sc.Ops / sc.Workers
	if perWorker < 1 {
		perWorker = 1
	}
	return measure(sc.Workers, perWorker, func(w, i int) {
		c := clients[w]
		k := obsKey((w*perWorker+i)*13, keys)
		if i%5 == 0 {
			if _, err := c.PutSimple(k, val); err != nil {
				panic(err)
			}
		} else if _, _, err := c.Get(k, nil); err != nil {
			panic(err)
		}
	})
}

func obsKey(i, keys int) []byte {
	return []byte(fmt.Sprintf("ob%07d", i%keys))
}

// obsRecordCost times a tight Hist.Record loop and counts its heap
// allocations via runtime.MemStats deltas (the bench package stays outside
// the testing framework, so no AllocsPerRun).
func obsRecordCost() (nsPerRecord float64, allocs uint64) {
	h := obs.NewHist("bench", 1)
	const n = 1 << 20
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		// Spread observations across buckets so the loop is not one
		// perfectly-predicted branch pattern.
		h.Record(0, time.Duration(1+(i&0xffff)))
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(n), after.Mallocs - before.Mallocs
}
