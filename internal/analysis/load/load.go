// Package load typechecks Go packages for the analyzer suite without any
// dependency outside the standard library. Module packages are parsed and
// typechecked from source (so analyzers share one object world across the
// whole repository); imports outside the module — the standard library, here
// — resolve through compiled export data discovered with `go list -export`,
// read by go/importer's gc importer. This is the same division of labor as
// x/tools' go/packages driver, reimplemented in miniature because the module
// is dependency-free by policy.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepOnly    bool
}

// goList runs `go list -export -json -deps` for the patterns in dir and
// returns the packages in dependency order (dependencies first).
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths to compiled export data files.
type exportImporter struct {
	gc      types.Importer
	sources map[string]*types.Package // module packages typechecked from source
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{sources: map[string]*types.Package{}}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ei.sources[path]; ok {
		return pkg, nil
	}
	return ei.gc.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Packages loads the module packages matching the patterns (e.g. "./...")
// rooted at dir, fully typechecked from source with comments retained.
func Packages(dir string, patterns ...string) ([]*analysis.Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := newExportImporter(fset, exports)

	var out []*analysis.Package
	for _, p := range listed {
		if p.Module == nil || p.Standard {
			continue // non-module dep: resolved via export data
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		imp.sources[p.ImportPath] = tpkg
		out = append(out, &analysis.Package{
			PkgPath: p.ImportPath,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return out, nil
}

// Fixture loads test-fixture packages from srcRoot (a testdata/src-style
// tree: import path P lives in srcRoot/P). Imports resolve first against
// sibling fixture directories, then against the standard library via export
// data; modDir is any directory inside a Go module, used only as the
// working directory for `go list`. The returned slice holds the requested
// packages and any fixture packages they transitively import, dependencies
// first.
func Fixture(srcRoot, modDir string, paths ...string) ([]*analysis.Package, error) {
	fset := token.NewFileSet()
	type parsed struct {
		path  string
		files []*ast.File
	}
	var order []*parsed
	seen := map[string]*parsed{}
	stdNeeds := map[string]bool{}

	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] != nil {
			return nil
		}
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("fixture package %q: %v", path, err)
		}
		p := &parsed{path: path}
		seen[path] = p
		var imports []string
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			p.files = append(p.files, f)
			for _, spec := range f.Imports {
				ip, _ := strconv.Unquote(spec.Path.Value)
				imports = append(imports, ip)
			}
		}
		if len(p.files) == 0 {
			return fmt.Errorf("fixture package %q: no Go files", path)
		}
		for _, ip := range imports {
			if ip == "unsafe" {
				continue
			}
			if st, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(ip))); err == nil && st.IsDir() {
				if err := visit(ip); err != nil {
					return err
				}
			} else {
				stdNeeds[ip] = true
			}
		}
		order = append(order, p) // post-order: dependencies first
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	exports := map[string]string{}
	if len(stdNeeds) > 0 {
		var std []string
		for ip := range stdNeeds {
			std = append(std, ip)
		}
		sort.Strings(std)
		listed, err := goList(modDir, std)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)

	var out []*analysis.Package
	for _, p := range order {
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck fixture %s: %v", p.path, err)
		}
		imp.sources[p.path] = tpkg
		out = append(out, &analysis.Package{
			PkgPath: p.path,
			Fset:    fset,
			Files:   p.files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return out, nil
}
