package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Conn is a concurrency-safe pipelined connection speaking protocol v2.
// Every request batch goes out in a tagged frame, so many batches can be in
// flight at once; the server answers in arrival order and echoes each tag,
// and a reader goroutine matches responses back to their callers. Use Go to
// issue a batch without blocking and Pending.Wait to collect it later:
//
//	p1 := conn.Go(batch1)          // in flight
//	p2 := conn.Go(batch2)          // also in flight — no round-trip wait
//	resps, err := p1.Wait()
//	...use resps...
//	p1.Release()                   // recycle the batch's decode buffers
//
// All methods are safe for concurrent use. The number of in-flight batches
// is bounded by the window (WithWindow); Go blocks when the window is full,
// which is what keeps slow servers from buffering unbounded requests.
//
// In steady state a Go/Wait/Release cycle allocates nothing on the client:
// frames encode into a connection-owned buffer, Pendings are recycled
// through a free list, and each Pending decodes responses into its own
// reusable scratch (which is why responses are only valid until Release).
type Conn struct {
	nc net.Conn

	// timeout, when set (WithTimeout), is the per-batch I/O deadline: each
	// outgoing frame arms a write deadline, and the read side keeps a rolling
	// deadline armed while batches are in flight (cleared when the window
	// empties, so an idle connection never times out). A deadline firing is a
	// transport error: fail completes every in-flight Pending with it.
	timeout time.Duration

	wmu sync.Mutex // serializes frame encode+write across Go calls
	w   *bufio.Writer
	enc []byte // encode buffer, reused across Go calls (guarded by wmu)

	// slots bounds the in-flight window: Go acquires a slot, the reader
	// (or failure handling) releases it when the batch completes.
	slots chan struct{}

	// flushCh wakes the flusher goroutine after a Go buffered a frame.
	// Flushing out-of-line coalesces syscalls: while the flusher is inside
	// one Flush, any number of Go calls append to the buffered writer, and
	// the single pending signal (cap 1) flushes them all together. The
	// invariant is that a signal is sent only after its frame is fully
	// buffered under wmu, and the flusher takes wmu to flush, so every
	// buffered frame is covered by a flush that starts after it.
	flushCh chan struct{}

	mu      sync.Mutex
	pending map[uint32]*Pending // tag -> in-flight batch
	free    []*Pending          // recycled Pendings (with their scratch)
	nextTag uint32
	err     error // sticky transport error; set once, fails all later Gos

	readerDone chan struct{}
}

// Pending is one in-flight batch issued by Conn.Go. Exactly one Wait call
// must follow each Go; Release recycles the Pending (and the buffers its
// responses alias) for later Go calls.
//
//masstree:scratch
type Pending struct {
	c     *Conn
	tag   uint32
	nreq  int
	resps []wire.Response
	err   error
	dec   wire.RespDecodeBuf // per-Pending decode scratch; resps alias it
	done  chan struct{}      // cap 1; one signal per Go

	// state arbitrates completion against WaitCtx abandonment: the completer
	// CASes inFlight→completed before signaling done, WaitCtx CASes
	// inFlight→abandoned when its context fires first. Whoever loses the race
	// defers to the winner: an abandoned Pending is recycled by the completer
	// (its caller is gone and must not touch it again), a completed one hands
	// its buffered signal to the departing WaitCtx.
	state atomic.Int32
}

const (
	pendingInFlight  = 0
	pendingCompleted = 1
	pendingAbandoned = 2
)

// complete delivers p's result to its waiter — or, if a WaitCtx already
// abandoned p, recycles it directly (the waiter returned and relinquished
// ownership; nobody else will Release it).
func (p *Pending) complete() {
	if p.state.CompareAndSwap(pendingInFlight, pendingCompleted) {
		p.done <- struct{}{}
		return
	}
	p.Release()
}

// DefaultWindow is the default bound on in-flight batches per Conn.
const DefaultWindow = 16

var errConnClosed = errors.New("client: connection closed")

// ConnOption configures DialConn.
type ConnOption func(*connConfig)

type connConfig struct {
	window      int
	timeout     time.Duration
	dialTimeout time.Duration
}

// WithTimeout arms a per-batch I/O deadline: a frame that cannot be written
// within d, or a response the server does not produce within d of the last
// send or receive, fails the connection — and with it every in-flight
// Pending, each completed with the same transport error. Zero (the default)
// means no deadline: a dead peer is only detected when the kernel gives up
// the connection. An idle connection (empty window) never times out.
func WithTimeout(d time.Duration) ConnOption {
	return func(c *connConfig) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithDialTimeout bounds connection establishment: the TCP connect AND the
// hello exchange together must finish within d, or DialConn fails. Without
// it, an address that accepts the TCP handshake but never answers the hello
// — a blackholed route, a partitioned host, a frozen process — hangs
// DialConn indefinitely, which in a cluster means one dead node can wedge
// construction or a reconnect probe forever. Zero (the default) preserves
// the old behavior: only the OS connect timeout applies and the hello wait
// is unbounded.
func WithDialTimeout(d time.Duration) ConnOption {
	return func(c *connConfig) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithWindow bounds the number of batches in flight at once (>= 1). Window
// 1 degenerates to the blocking one-frame-at-a-time discipline of the v1
// client, which makes it the natural baseline for pipelining benchmarks.
func WithWindow(n int) ConnOption {
	return func(c *connConfig) {
		if n > 0 {
			c.window = n
		}
	}
}

// DialConn connects to a server and negotiates protocol v2 with a hello
// exchange. It fails if the server only speaks v1.
func DialConn(addr string, opts ...ConnOption) (*Conn, error) {
	cfg := connConfig{window: DefaultWindow}
	for _, o := range opts {
		o(&cfg)
	}
	d := net.Dialer{Timeout: cfg.dialTimeout}
	nc, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if cfg.dialTimeout > 0 {
		// The deadline covers the hello exchange too: a peer that accepts
		// the TCP handshake but never speaks (blackholed proxy, frozen
		// process) must fail DialConn within the dial budget, not hang it.
		nc.SetDeadline(time.Now().Add(cfg.dialTimeout))
	}
	w := bufio.NewWriterSize(nc, 1<<16)
	r := bufio.NewReaderSize(nc, 1<<16)
	if err := wire.WriteHello(w, wire.Version2); err == nil {
		err = w.Flush()
	}
	if err != nil {
		nc.Close()
		return nil, err
	}
	ver, err := wire.ReadHello(r)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	if cfg.dialTimeout > 0 {
		nc.SetDeadline(time.Time{}) // handshake done; per-batch deadlines take over
	}
	if ver != wire.Version2 {
		nc.Close()
		return nil, fmt.Errorf("client: server accepted protocol %d, need %d", ver, wire.Version2)
	}
	c := &Conn{
		nc:         nc,
		timeout:    cfg.timeout,
		w:          w,
		slots:      make(chan struct{}, cfg.window),
		flushCh:    make(chan struct{}, 1),
		pending:    make(map[uint32]*Pending, cfg.window),
		readerDone: make(chan struct{}),
	}
	go c.readLoop(r)
	go c.flushLoop()
	return c, nil
}

// flushLoop pushes buffered frames to the kernel; see flushCh. It exits
// with the reader (whose shutdown implies no response will ever need
// another flush).
func (c *Conn) flushLoop() {
	for {
		select {
		case <-c.flushCh:
			c.wmu.Lock()
			if c.timeout > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(c.timeout))
			}
			err := c.w.Flush()
			c.wmu.Unlock()
			if err != nil {
				c.fail(err)
			}
		case <-c.readerDone:
			return
		}
	}
}

// Go sends one request batch and returns immediately with a Pending for its
// responses. It blocks only while the in-flight window is full. The reqs
// slice and its contents are fully encoded before Go returns and may be
// reused by the caller immediately.
func (c *Conn) Go(reqs []wire.Request) *Pending {
	c.slots <- struct{}{}
	c.mu.Lock()
	p := c.takePending()
	p.nreq = len(reqs)
	if c.err != nil {
		p.err = c.err
		c.mu.Unlock()
		<-c.slots
		p.complete()
		return p
	}
	p.tag = c.nextTag
	c.nextTag++
	c.pending[p.tag] = p
	if c.timeout > 0 {
		// Roll the read deadline forward under c.mu: the reader adjusts it
		// under the same lock, so its clear-on-idle can never erase a
		// deadline armed for a batch it has not yet seen registered.
		c.nc.SetReadDeadline(time.Now().Add(c.timeout))
	}
	c.mu.Unlock()

	c.wmu.Lock()
	b, encErr := wire.AppendTaggedRequests(c.enc[:0], p.tag, reqs)
	var werr error
	if encErr == nil {
		if c.timeout > 0 {
			// A frame larger than the buffer writes through to the socket
			// here rather than in the flusher.
			c.nc.SetWriteDeadline(time.Now().Add(c.timeout))
		}
		_, werr = c.w.Write(b)
	}
	if cap(b) <= maxRetainedScratch {
		c.enc = b[:0]
	} else {
		c.enc = nil
	}
	c.wmu.Unlock()
	if encErr != nil {
		// Nothing reached the wire: this batch alone is unsendable (e.g.
		// it encodes past MaxMessage), the connection is still healthy.
		// Complete just this Pending — unless a concurrent transport
		// failure got to it first (completion belongs to whoever removes
		// it from the pending map).
		c.mu.Lock()
		_, mine := c.pending[p.tag]
		delete(c.pending, p.tag)
		c.mu.Unlock()
		if mine {
			p.err = encErr
			<-c.slots
			p.complete()
		}
		return p
	}
	if werr != nil {
		// p is registered, so fail covers it (and everything else in
		// flight) exactly once.
		c.fail(werr)
		return p
	}
	// Hand the actual syscall to the flusher; a signal already pending
	// covers this frame too (the flusher flushes after taking wmu, which
	// orders it behind the Write above).
	select {
	case c.flushCh <- struct{}{}:
	default:
	}
	return p
}

// takePending pops a recycled Pending or builds a fresh one. Caller holds
// c.mu.
func (c *Conn) takePending() *Pending {
	if n := len(c.free); n > 0 {
		p := c.free[n-1]
		c.free = c.free[:n-1]
		p.resps, p.err = nil, nil
		p.state.Store(pendingInFlight)
		return p
	}
	return &Pending{c: c, done: make(chan struct{}, 1)}
}

// readLoop owns the read half: it matches each tagged response frame to its
// Pending, decodes into that Pending's scratch, and completes it. Any
// transport or protocol error fails every in-flight batch and ends the
// connection.
func (c *Conn) readLoop(r *bufio.Reader) {
	defer close(c.readerDone)
	for {
		tag, n, err := wire.ReadTaggedHeader(r)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		p := c.pending[tag]
		delete(c.pending, tag)
		c.mu.Unlock()
		if p == nil {
			c.fail(fmt.Errorf("client: response for unknown tag %d", tag))
			return
		}
		p.dec.Shrink(maxRetainedScratch)
		resps, err := wire.ReadTaggedResponseBody(r, n, &p.dec)
		if err == nil && len(resps) != p.nreq {
			err = fmt.Errorf("client: %d responses for %d requests", len(resps), p.nreq)
		}
		if c.timeout > 0 {
			// Reset the rolling read deadline now that a full frame arrived:
			// extend it while batches remain in flight, clear it when the
			// window empties (an idle connection must not time out). Under
			// c.mu so a racing Go's arm-on-register cannot be erased.
			c.mu.Lock()
			if len(c.pending) == 0 {
				c.nc.SetReadDeadline(time.Time{})
			} else {
				c.nc.SetReadDeadline(time.Now().Add(c.timeout))
			}
			c.mu.Unlock()
		}
		p.resps, p.err = resps, err
		<-c.slots
		p.complete()
		if err != nil {
			c.fail(err)
			return
		}
	}
}

// fail records the connection's first error and completes every in-flight
// Pending with it. Safe to call from both the writer (Go) and reader sides;
// each Pending is completed exactly once because completion requires
// removing it from the pending map under c.mu.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	err = c.err
	failed := make([]*Pending, 0, len(c.pending))
	for tag, p := range c.pending {
		delete(c.pending, tag)
		failed = append(failed, p)
	}
	c.mu.Unlock()
	for _, p := range failed {
		p.resps, p.err = nil, err
		<-c.slots
		p.complete()
	}
}

// Wait blocks until the batch's responses arrive and returns them in
// request order. The responses (and every slice they reference) alias the
// Pending's reusable scratch: they are valid until Release. Call Wait
// exactly once per Go.
func (p *Pending) Wait() ([]wire.Response, error) {
	<-p.done
	return p.resps, p.err
}

// WaitCtx is Wait with an escape hatch: if ctx fires before the batch
// completes, it returns ctx's error and ownership of p transfers to the
// connection — the caller must NOT use p (no Release, no second Wait)
// afterwards; the connection recycles it when the response (or the
// connection's failure) eventually arrives. The request itself is not
// cancelled — it still occupies its window slot and executes on the server;
// WaitCtx only stops this caller from parking on it. A batch abandoned this
// way still counts against the window until it completes.
func (p *Pending) WaitCtx(ctx context.Context) ([]wire.Response, error) {
	select {
	case <-p.done:
		return p.resps, p.err
	case <-ctx.Done():
	}
	if p.state.CompareAndSwap(pendingInFlight, pendingAbandoned) {
		return nil, ctx.Err()
	}
	// The completer won the race: its signal is (or is about to be) in the
	// channel, so collect the result after all.
	<-p.done
	return p.resps, p.err
}

// Release recycles p for future Go calls on the same connection. The
// responses returned by Wait (and everything they reference) are invalid
// afterwards.
func (p *Pending) Release() {
	c := p.c
	p.resps = nil
	c.mu.Lock()
	c.free = append(c.free, p)
	c.mu.Unlock()
}

// Close tears the connection down, failing any in-flight batches with an
// error, and waits for the reader to exit.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.err == nil {
		c.err = errConnClosed
	}
	c.mu.Unlock()
	err := c.nc.Close()
	<-c.readerDone
	return err
}

// Do executes one batch and blocks for its responses — Go plus Wait for
// callers that don't pipeline. The returned responses own their memory and
// may be retained.
func (c *Conn) Do(reqs []wire.Request) ([]wire.Response, error) {
	p := c.Go(reqs)
	resps, err := p.Wait()
	if err != nil {
		p.Release()
		return nil, err
	}
	out := cloneResponses(resps)
	p.Release()
	return out, nil
}

// Get retrieves columns of one key (nil cols = all). It also returns the
// value's version — the token a subsequent CasPut expects — and ok false if
// the key is absent.
func (c *Conn) Get(key []byte, cols []int) (vals [][]byte, ver uint64, ok bool, err error) {
	p := c.Go([]wire.Request{{Op: wire.OpGet, Key: key, Cols: cols}})
	resps, err := p.Wait()
	if err != nil {
		p.Release()
		return nil, 0, false, err
	}
	r := &resps[0]
	if r.Status != wire.StatusOK {
		p.Release()
		return nil, 0, false, nil
	}
	vals = cloneCols(r.Cols)
	ver = r.Version
	p.Release()
	return vals, ver, true, nil
}

// GetOrLoad retrieves columns of one key, consulting the server's backend
// tier on a miss (read-through; see OpGetOrLoad). stale true marks a
// degraded answer: an expired resident value served because the backend
// could not be reached. ok false means the key is authoritatively absent.
// A server without a backend (or a backend failure with nothing resident)
// answers StatusError, surfaced here as an error.
func (c *Conn) GetOrLoad(key []byte, cols []int) (vals [][]byte, ver uint64, stale, ok bool, err error) {
	p := c.Go([]wire.Request{{Op: wire.OpGetOrLoad, Key: key, Cols: cols}})
	resps, err := p.Wait()
	if err != nil {
		p.Release()
		return nil, 0, false, false, err
	}
	r := &resps[0]
	switch r.Status {
	case wire.StatusOK, wire.StatusStale:
		vals = cloneCols(r.Cols)
		ver, stale = r.Version, r.Status == wire.StatusStale
		p.Release()
		return vals, ver, stale, true, nil
	case wire.StatusNotFound:
		p.Release()
		return nil, 0, false, false, nil
	}
	status := r.Status
	p.Release()
	return nil, 0, false, false, fmt.Errorf("client: getorload status %d", status)
}

// Put writes columns of one key and returns the new version.
func (c *Conn) Put(key []byte, puts []wire.ColData) (uint64, error) {
	p := c.Go([]wire.Request{{Op: wire.OpPut, Key: key, Puts: puts}})
	resps, err := p.Wait()
	if err != nil {
		p.Release()
		return 0, err
	}
	ver := resps[0].Version
	p.Release()
	return ver, nil
}

// PutSimple writes data as column 0 of key.
func (c *Conn) PutSimple(key, data []byte) (uint64, error) {
	return c.Put(key, []wire.ColData{{Col: 0, Data: data}})
}

// PutTTL writes columns of one key with a time-to-live in seconds (0 =
// never expires, like Put). After the TTL lapses the key reads as absent
// and the server's maintenance loop eventually sweeps it. Cache-mode
// operations are v2 surface, which Conn always speaks.
func (c *Conn) PutTTL(key []byte, puts []wire.ColData, ttlSeconds uint32) (uint64, error) {
	p := c.Go([]wire.Request{{Op: wire.OpPutTTL, Key: key, Puts: puts, TTL: ttlSeconds}})
	resps, err := p.Wait()
	if err != nil {
		p.Release()
		return 0, err
	}
	status, ver := resps[0].Status, resps[0].Version
	p.Release()
	if status != wire.StatusOK {
		return 0, fmt.Errorf("client: putttl status %d", status)
	}
	return ver, nil
}

// PutSimpleTTL writes data as column 0 of key with a TTL in seconds.
func (c *Conn) PutSimpleTTL(key, data []byte, ttlSeconds uint32) (uint64, error) {
	return c.PutTTL(key, []wire.ColData{{Col: 0, Data: data}}, ttlSeconds)
}

// Touch resets one key's TTL (seconds from now; 0 removes the expiry)
// without rewriting its value. ok is false if the key is absent or already
// expired.
func (c *Conn) Touch(key []byte, ttlSeconds uint32) (ver uint64, ok bool, err error) {
	p := c.Go([]wire.Request{{Op: wire.OpTouch, Key: key, TTL: ttlSeconds}})
	resps, err := p.Wait()
	if err != nil {
		p.Release()
		return 0, false, err
	}
	status, version := resps[0].Status, resps[0].Version
	p.Release()
	switch status {
	case wire.StatusOK:
		return version, true, nil
	case wire.StatusNotFound:
		return 0, false, nil
	}
	return 0, false, fmt.Errorf("client: touch status %d", status)
}

// CasPut conditionally writes columns of one key: the write applies only if
// the key's current version equals expect (0 = key absent, so expect 0 is
// create-if-absent). On success it returns the new version with ok true; on
// conflict, the key's current version with ok false so the caller can
// re-Get, rebase, and retry.
func (c *Conn) CasPut(key []byte, expect uint64, puts []wire.ColData) (ver uint64, ok bool, err error) {
	p := c.Go([]wire.Request{{Op: wire.OpCas, Key: key, ExpectVersion: expect, Puts: puts}})
	resps, err := p.Wait()
	if err != nil {
		p.Release()
		return 0, false, err
	}
	status, version := resps[0].Status, resps[0].Version
	p.Release()
	switch status {
	case wire.StatusOK:
		return version, true, nil
	case wire.StatusConflict:
		return version, false, nil
	}
	return 0, false, fmt.Errorf("client: cas status %d", status)
}

// Remove deletes one key; reports whether it existed.
func (c *Conn) Remove(key []byte) (bool, error) {
	p := c.Go([]wire.Request{{Op: wire.OpRemove, Key: key}})
	resps, err := p.Wait()
	if err != nil {
		p.Release()
		return false, err
	}
	ok := resps[0].Status == wire.StatusOK
	p.Release()
	return ok, nil
}

// GetRange returns up to n pairs starting at the first key >= start.
func (c *Conn) GetRange(start []byte, n int, cols []int) ([]wire.Pair, error) {
	p := c.Go([]wire.Request{{Op: wire.OpGetRange, Key: start, N: n, Cols: cols}})
	resps, err := p.Wait()
	if err != nil {
		p.Release()
		return nil, err
	}
	pairs := clonePairs(resps[0].Pairs)
	p.Release()
	return pairs, nil
}

// Stats returns the server's numeric metrics. Non-numeric metrics (e.g.
// flush_last_error, which carries an error string) are skipped; use
// StatsRaw to see everything.
func (c *Conn) Stats() (map[string]int64, error) {
	raw, err := c.StatsRaw()
	if err != nil {
		return nil, err
	}
	return numericStats(raw), nil
}

// StatsRaw returns every metric the server reports, verbatim, including
// non-numeric ones like flush_last_error.
func (c *Conn) StatsRaw() (map[string]string, error) {
	p := c.Go([]wire.Request{{Op: wire.OpStats}})
	resps, err := p.Wait()
	if err != nil {
		p.Release()
		return nil, err
	}
	out := make(map[string]string, len(resps[0].Pairs))
	for _, pair := range resps[0].Pairs {
		out[string(pair.Key)] = string(pair.Cols[0])
	}
	p.Release()
	return out, nil
}

// numericStats filters a raw stats map down to its parseable values.
func numericStats(raw map[string]string) map[string]int64 {
	out := make(map[string]int64, len(raw))
	for k, v := range raw {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			out[k] = n
		}
	}
	return out
}

// cloneCols deep-copies a column set out of reusable decode scratch.
func cloneCols(cols [][]byte) [][]byte {
	if cols == nil {
		return nil
	}
	out := make([][]byte, len(cols))
	for i, c := range cols {
		out[i] = append([]byte(nil), c...)
	}
	return out
}

// clonePairs deep-copies range-query pairs out of reusable decode scratch.
func clonePairs(pairs []wire.Pair) []wire.Pair {
	if pairs == nil {
		return nil
	}
	out := make([]wire.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = wire.Pair{Key: append([]byte(nil), p.Key...), Cols: cloneCols(p.Cols)}
	}
	return out
}

// cloneResponses deep-copies a response batch out of reusable decode
// scratch, for the blocking wrappers whose results may be retained.
func cloneResponses(resps []wire.Response) []wire.Response {
	out := make([]wire.Response, len(resps))
	for i, r := range resps {
		out[i] = wire.Response{
			Status:  r.Status,
			Version: r.Version,
			Cols:    cloneCols(r.Cols),
			Pairs:   clonePairs(r.Pairs),
		}
	}
	return out
}
