package bench

import (
	"fmt"

	"repro/internal/baseline/btree"
	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
)

// Fig9 reproduces Figure 9 (§6.4 "Keys with common prefixes"): get
// throughput as key length grows while only the final 8 bytes vary. The
// B-tree compares whole keys — beyond its 16 inline bytes every comparison
// chases the stored key (a DRAM fetch) — while Masstree walks one trie layer
// per 8 prefix bytes and then compares single slices, so its advantage grows
// with prefix length.
func Fig9(sc Scale) *Table {
	sc = sc.withDefaults()
	t := &Table{
		ID:      "fig9",
		Title:   fmt.Sprintf("shared-prefix key length vs get throughput, %d keys (Figure 9)", sc.Keys),
		Headers: []string{"key length", "Masstree Mreq/s", "+Permuter Mreq/s", "Masstree/+Permuter"},
		Notes: []string{
			"keys share their prefix; only the final 8 bytes vary (paper X axis 8..48)",
		},
	}
	for _, keyLen := range []int{8, 16, 24, 32, 40, 48} {
		keysPerWorker := sc.Keys / sc.Workers
		keys := make([][][]byte, sc.Workers)
		for w := range keys {
			keys[w] = workload.Keys(workload.Prefixed(int64(300+w), keyLen), keysPerWorker)
		}

		mt := core.New()
		bt := btree.New(btree.WithPermuter())
		for w := range keys {
			for _, k := range keys[w] {
				v := value.New(k)
				mt.Put(k, v)
				bt.Put(k, v)
			}
		}
		perWorker := sc.Ops / sc.Workers
		mtTput := measure(sc.Workers, perWorker, func(w, i int) {
			mt.Get(keys[w][(i*61)%keysPerWorker])
		})
		btTput := measure(sc.Workers, perWorker, func(w, i int) {
			bt.Get(keys[w][(i*61)%keysPerWorker])
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", keyLen), mops(mtTput), mops(btTput), ratio(mtTput, btTput),
		})
	}
	return t
}
