package client

import (
	"testing"
	"time"
)

// Connection-level behavior is covered end-to-end in internal/server's
// tests (TCP, UDP, pipelining); these tests cover the client's own error
// paths, which need no server.

func TestDialRefused(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("expected connection error")
	}
}

func TestDialUDPBadAddr(t *testing.T) {
	if _, err := DialUDP("not-an-address:::", time.Second); err == nil {
		t.Fatal("expected resolve error")
	}
}

func TestUDPTimeoutOnSilentPeer(t *testing.T) {
	// A UDP "connection" succeeds without a listener; the request must then
	// time out rather than hang.
	c, err := DialUDP("127.0.0.1:9", 20*time.Millisecond) // discard port, unused
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Do(nil); err == nil {
		t.Fatal("expected timeout")
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestDialConnRefused(t *testing.T) {
	if _, err := DialConn("127.0.0.1:1"); err == nil {
		t.Fatal("expected connection error")
	}
}
