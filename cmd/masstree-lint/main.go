// Command masstree-lint runs the repository's static-analysis suite — the
// machine-checked concurrency and allocation invariants under
// internal/analysis/passes — over the module and exits non-zero on any
// unsuppressed finding.
//
// Usage:
//
//	go run ./cmd/masstree-lint [-v] [packages...]
//
// With no package patterns it checks ./... . -v also lists findings
// suppressed by //lint:allow annotations, with their reasons.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/passes"
)

func main() {
	verbose := flag.Bool("v", false, "also list findings suppressed by //lint:allow")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "masstree-lint: %v\n", err)
		os.Exit(2)
	}

	findings := analysis.Run(pkgs, passes.All())
	failed := false
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if *verbose {
				fmt.Printf("%s [suppressed: %s]\n", f, f.Reason)
			}
			continue
		}
		failed = true
		fmt.Println(f)
	}
	if *verbose && suppressed > 0 {
		fmt.Printf("masstree-lint: %d finding(s) suppressed by //lint:allow\n", suppressed)
	}
	if failed {
		os.Exit(1)
	}
}
