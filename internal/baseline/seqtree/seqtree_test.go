package seqtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/value"
)

func TestBasic(t *testing.T) {
	tr := New()
	tr.Put([]byte("hello"), value.New([]byte("world")))
	v, ok := tr.Get([]byte("hello"))
	if !ok || string(v.Bytes()) != "world" {
		t.Fatal("basic get failed")
	}
	if _, ok := tr.Get([]byte("hell")); ok {
		t.Fatal("phantom")
	}
	old, replaced := tr.Put([]byte("hello"), value.New([]byte("there")))
	if !replaced || string(old.Bytes()) != "world" {
		t.Fatal("replace failed")
	}
	if tr.Len() != 1 {
		t.Fatalf("len %d", tr.Len())
	}
}

func TestLayers(t *testing.T) {
	tr := New()
	tr.Put([]byte("01234567AB"), value.New([]byte("1")))
	tr.Put([]byte("01234567XY"), value.New([]byte("2")))
	v, ok := tr.Get([]byte("01234567AB"))
	if !ok || string(v.Bytes()) != "1" {
		t.Fatal("layer get AB failed")
	}
	if _, ok := tr.Get([]byte("01234567")); ok {
		t.Fatal("phantom prefix")
	}
	if old, ok := tr.Remove([]byte("01234567XY")); !ok || string(old.Bytes()) != "2" {
		t.Fatal("layer remove failed")
	}
	if _, ok := tr.Get([]byte("01234567AB")); !ok {
		t.Fatal("AB lost after removing XY")
	}
	// Removing the last key collapses the layer immediately (sequential).
	tr.Remove([]byte("01234567AB"))
	if tr.Len() != 0 {
		t.Fatalf("len %d", tr.Len())
	}
	tr.Put([]byte("01234567CD"), value.New([]byte("3")))
	if _, ok := tr.Get([]byte("01234567CD")); !ok {
		t.Fatal("reinsert after collapse failed")
	}
}

func TestModel(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tr := New()
			model := map[string]string{}
			rng := rand.New(rand.NewSource(seed))
			gen := func() string {
				switch rng.Intn(3) {
				case 0:
					return fmt.Sprintf("%d", rng.Intn(4000))
				case 1:
					return fmt.Sprintf("shared-prefix-%05d", rng.Intn(2000))
				default:
					n := rng.Intn(4)
					b := make([]byte, n)
					for i := range b {
						b[i] = byte(rng.Intn(3))
					}
					return string(b)
				}
			}
			for i := 0; i < 12000; i++ {
				k := gen()
				switch rng.Intn(5) {
				case 0, 1, 2:
					v := fmt.Sprintf("v%d", i)
					_, replaced := tr.Put([]byte(k), value.New([]byte(v)))
					if _, had := model[k]; had != replaced {
						t.Fatalf("op %d: put %q replaced=%v want %v", i, k, replaced, had)
					}
					model[k] = v
				case 3:
					v, ok := tr.Get([]byte(k))
					want, wantOK := model[k]
					if ok != wantOK || (ok && string(v.Bytes()) != want) {
						t.Fatalf("op %d: get %q mismatch", i, k)
					}
				case 4:
					_, ok := tr.Remove([]byte(k))
					if _, had := model[k]; had != ok {
						t.Fatalf("op %d: remove %q = %v want %v", i, k, ok, had)
					}
					delete(model, k)
				}
				if tr.Len() != len(model) {
					t.Fatalf("op %d: len %d vs %d", i, tr.Len(), len(model))
				}
			}
			// Full scan must match the sorted model.
			var want []string
			for k := range model {
				want = append(want, k)
			}
			sort.Strings(want)
			var got []string
			tr.Scan(nil, func(k []byte, v *value.Value) bool {
				got = append(got, string(k))
				if model[string(k)] != string(v.Bytes()) {
					t.Fatalf("scan value mismatch for %q", k)
				}
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("scan %d keys, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("scan order at %d: %q vs %q", i, got[i], want[i])
				}
			}
			// Drain.
			for k := range model {
				if _, ok := tr.Remove([]byte(k)); !ok {
					t.Fatalf("drain remove %q failed", k)
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("len %d after drain", tr.Len())
			}
		})
	}
}

func TestGetRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		tr.Put(k, value.New(k))
	}
	keys, vals := tr.GetRange([]byte("k050"), 10)
	if len(keys) != 10 || len(vals) != 10 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i, k := range keys {
		want := fmt.Sprintf("k%03d", 50+i)
		if string(k) != want || !bytes.Equal(vals[i].Bytes(), []byte(want)) {
			t.Fatalf("range[%d] = %q", i, k)
		}
	}
}

func TestUpdateRMW(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Update([]byte("ctr"), func(old *value.Value) *value.Value {
			var n byte
			if old != nil {
				n = old.Bytes()[0]
			}
			return value.New([]byte{n + 1})
		})
	}
	v, _ := tr.Get([]byte("ctr"))
	if v.Bytes()[0] != 10 {
		t.Fatalf("counter %d", v.Bytes()[0])
	}
}
