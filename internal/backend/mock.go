package backend

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Mock is the in-process test backend with programmable failure: latency,
// error bursts, hangs (block until released or the context dies), and hard
// outage are all injected at runtime, mid-test, while calls are in flight.
// It additionally tracks per-key load concurrency so singleflight tests can
// assert that N racing misses reached the backend exactly once.
type Mock struct {
	mu   sync.Mutex
	data map[string][]byte
	ttl  time.Duration

	err     error         // non-nil: every call fails with it
	latency time.Duration // added to every call
	gate    chan struct{} // non-nil: calls park until the gate closes

	inflight    map[string]int // live Load calls per key
	maxInflight atomic.Int64   // high-water mark of any key's live loads
	loads       atomic.Int64
	loadsByKey  map[string]int64
	stores      atomic.Int64
	deletes     atomic.Int64
}

// NewMock returns an empty mock whose loads report the given TTL.
func NewMock(ttl time.Duration) *Mock {
	return &Mock{
		data:       make(map[string][]byte),
		ttl:        ttl,
		inflight:   make(map[string]int),
		loadsByKey: make(map[string]int64),
	}
}

// Seed installs a key upstream without counting as a Store.
func (m *Mock) Seed(key string, payload []byte) {
	m.mu.Lock()
	m.data[key] = append([]byte(nil), payload...)
	m.mu.Unlock()
}

// SetError makes every subsequent call fail with err (nil heals).
func (m *Mock) SetError(err error) {
	m.mu.Lock()
	m.err = err
	m.mu.Unlock()
}

// SetLatency adds d to every subsequent call.
func (m *Mock) SetLatency(d time.Duration) {
	m.mu.Lock()
	m.latency = d
	m.mu.Unlock()
}

// Hang makes subsequent calls park until the returned release function runs
// (or their context dies, in which case they return ctx.Err()).
func (m *Mock) Hang() (release func()) {
	gate := make(chan struct{})
	m.mu.Lock()
	m.gate = gate
	m.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			if m.gate == gate {
				m.gate = nil
			}
			m.mu.Unlock()
			close(gate)
		})
	}
}

// Loads returns the total completed-or-failed Load attempts that reached
// the mock (rejected breaker calls never arrive).
func (m *Mock) Loads() int64 { return m.loads.Load() }

// LoadsFor returns how many Load attempts arrived for one key.
func (m *Mock) LoadsFor(key string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.loadsByKey[key]
}

// Stores and Deletes count arrived calls.
func (m *Mock) Stores() int64  { return m.stores.Load() }
func (m *Mock) Deletes() int64 { return m.deletes.Load() }

// MaxConcurrentLoads reports the highest number of Load calls ever live at
// once for a single key — 1 under correct singleflight no matter the herd.
func (m *Mock) MaxConcurrentLoads() int64 { return m.maxInflight.Load() }

// Get reads the upstream copy of key (test assertions).
func (m *Mock) Get(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.data[key]
	return p, ok
}

// Len reports how many keys the upstream holds.
func (m *Mock) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.data)
}

// enter applies the injected behaviors in order: latency, hang, error.
func (m *Mock) enter(ctx context.Context) error {
	m.mu.Lock()
	latency, gate, err := m.latency, m.gate, m.err
	m.mu.Unlock()
	if latency > 0 {
		t := time.NewTimer(latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if err != nil {
		return err
	}
	return ctx.Err()
}

// Load implements Backend.
func (m *Mock) Load(ctx context.Context, key []byte) ([]byte, time.Duration, bool, error) {
	k := string(key)
	m.mu.Lock()
	m.inflight[k]++
	if n := int64(m.inflight[k]); n > m.maxInflight.Load() {
		m.maxInflight.Store(n)
	}
	m.loadsByKey[k]++
	m.mu.Unlock()
	m.loads.Add(1)
	defer func() {
		m.mu.Lock()
		m.inflight[k]--
		m.mu.Unlock()
	}()
	if err := m.enter(ctx); err != nil {
		return nil, 0, false, err
	}
	m.mu.Lock()
	p, ok := m.data[k]
	m.mu.Unlock()
	if !ok {
		return nil, 0, false, nil
	}
	return p, m.ttl, true, nil
}

// Store implements Backend.
func (m *Mock) Store(ctx context.Context, key, payload []byte) error {
	m.stores.Add(1)
	if err := m.enter(ctx); err != nil {
		return err
	}
	m.mu.Lock()
	m.data[string(key)] = append([]byte(nil), payload...)
	m.mu.Unlock()
	return nil
}

// Delete implements Backend.
func (m *Mock) Delete(ctx context.Context, key []byte) error {
	m.deletes.Add(1)
	if err := m.enter(ctx); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.data, string(key))
	m.mu.Unlock()
	return nil
}
