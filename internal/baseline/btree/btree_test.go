package btree

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/value"
)

func modes() map[string]func() *Tree {
	return map[string]func() *Tree{
		"plain":    func() *Tree { return New() },
		"permuter": func() *Tree { return New(WithPermuter()) },
		"prefetch": func() *Tree { return New(WithPrefetch(), WithPermuter()) },
	}
}

func TestKeyCompare(t *testing.T) {
	cases := []struct {
		stored, probe string
		want          int // sign of compare(probe, stored)
	}{
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "abb", -1},
		{"abc", "ab", -1},
		{"abc", "abcd", 1},
		{strings.Repeat("x", 20), strings.Repeat("x", 20), 0},
		{strings.Repeat("x", 20), strings.Repeat("x", 20) + "y", 1},
		{strings.Repeat("x", 20) + "y", strings.Repeat("x", 20), -1},
		{strings.Repeat("x", 16), strings.Repeat("x", 17), 1},
		{strings.Repeat("x", 17), strings.Repeat("x", 16), -1},
		{strings.Repeat("x", 16), strings.Repeat("x", 16), 0},
		{"", "", 0},
		{"", "a", 1},
	}
	for _, c := range cases {
		bk := makeKey([]byte(c.stored))
		got := bk.compare([]byte(c.probe))
		if sign(got) != c.want {
			t.Errorf("compare(%q, stored %q) = %d, want sign %d", c.probe, c.stored, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestModel(t *testing.T) {
	for name, mk := range modes() {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			model := map[string]string{}
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 10000; i++ {
				// Mix short keys and >16-byte keys (inline overflow).
				var k string
				if rng.Intn(2) == 0 {
					k = fmt.Sprintf("%d", rng.Intn(3000))
				} else {
					k = fmt.Sprintf("long-key-prefix-%08d", rng.Intn(3000))
				}
				switch rng.Intn(4) {
				case 0, 1:
					v := fmt.Sprintf("v%d", i)
					replaced := tr.Put([]byte(k), value.New([]byte(v)))
					if _, had := model[k]; had != replaced {
						t.Fatalf("op %d: put %q replaced=%v want %v", i, k, replaced, had)
					}
					model[k] = v
				case 2:
					v, ok := tr.Get([]byte(k))
					want, wantOK := model[k]
					if ok != wantOK || (ok && string(v.Bytes()) != want) {
						t.Fatalf("op %d: get %q = %v,%v want %q,%v", i, k, v, ok, want, wantOK)
					}
				case 3:
					ok := tr.Remove([]byte(k))
					if _, had := model[k]; had != ok {
						t.Fatalf("op %d: remove %q = %v want %v", i, k, ok, had)
					}
					delete(model, k)
				}
				if tr.Len() != len(model) {
					t.Fatalf("op %d: len %d vs %d", i, tr.Len(), len(model))
				}
			}
			for k, v := range model {
				got, ok := tr.Get([]byte(k))
				if !ok || string(got.Bytes()) != v {
					t.Fatalf("final: %q = %v,%v want %q", k, got, ok, v)
				}
			}
		})
	}
}

func TestSequentialAndReverse(t *testing.T) {
	for name, mk := range modes() {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			const n = 3000
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("s%06d", i))
				tr.Put(k, value.New(k))
			}
			for i := n - 1; i >= 0; i-- {
				k := []byte(fmt.Sprintf("r%06d", i))
				tr.Put(k, value.New(k))
			}
			for i := 0; i < n; i++ {
				for _, p := range []string{"s", "r"} {
					k := []byte(fmt.Sprintf("%s%06d", p, i))
					if v, ok := tr.Get(k); !ok || string(v.Bytes()) != string(k) {
						t.Fatalf("lost %q", k)
					}
				}
			}
		})
	}
}

func TestConcurrent(t *testing.T) {
	for name, mk := range modes() {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			var wg sync.WaitGroup
			const workers, per = 4, 4000
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						k := []byte(fmt.Sprintf("w%d-%05d", w, i))
						tr.Put(k, value.New(k))
					}
				}(w)
			}
			// Concurrent readers over a prepopulated stable range.
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("stable%04d", i))
				tr.Put(k, value.New(k))
			}
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 20000; i++ {
						k := []byte(fmt.Sprintf("stable%04d", rng.Intn(500)))
						if v, ok := tr.Get(k); !ok || string(v.Bytes()) != string(k) {
							panic(fmt.Sprintf("lost stable key %q", k))
						}
					}
				}(int64(r))
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				for i := 0; i < per; i++ {
					k := []byte(fmt.Sprintf("w%d-%05d", w, i))
					if v, ok := tr.Get(k); !ok || string(v.Bytes()) != string(k) {
						t.Fatalf("lost %q", k)
					}
				}
			}
		})
	}
}
