package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/wire"
)

// adminWorkout runs enough traffic through the execute paths to populate
// the get/put single-op and batch histograms.
func adminWorkout(t *testing.T, srv *Server, sess *kvstore.Session) {
	t.Helper()
	sc := &connScratch{}
	var reqs []wire.Request
	for i := 0; i < 32; i++ {
		key := []byte(fmt.Sprintf("admin-key-%04d", i))
		reqs = append(reqs, wire.Request{Op: wire.OpPut, Key: key,
			Puts: []wire.ColData{{Col: 0, Data: []byte("admin-value")}}})
	}
	srv.executeBatch(sess, reqs, len(reqs), sc, true) // batched put run
	for i := range reqs {
		reqs[i] = wire.Request{Op: wire.OpGet, Key: reqs[i].Key}
	}
	srv.executeBatch(sess, reqs, len(reqs), sc, true) // batched get run
	for i := range reqs[:4] {                         // singles: alternating ops break the batch runs
		srv.executeBatch(sess, []wire.Request{
			reqs[i],
			{Op: wire.OpGetRange, Key: []byte("admin-key-"), N: 4},
			{Op: wire.OpPut, Key: reqs[i].Key,
				Puts: []wire.ColData{{Col: 0, Data: []byte("admin-value2")}}},
			{Op: wire.OpCas, Key: reqs[i].Key, ExpectVersion: ^uint64(0),
				Puts: []wire.ColData{{Col: 0, Data: []byte("admin-value3")}}},
		}, 4, sc, true)
	}
}

// TestAdminSurfacesAgree pins the acceptance criterion that /metrics,
// /varz, and the wire Stats op report the same quantiles: all three render
// from one collectStats pass, and on a quiesced server three consecutive
// snapshots are identical, so every lat_* key must match across surfaces
// value-for-value.
func TestAdminSurfacesAgree(t *testing.T) {
	store, err := kvstore.Open(kvstore.Config{Workers: 2, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, 2)
	sess := store.Session(1)
	defer sess.Close()
	adminWorkout(t, srv, sess)

	// Surface 1: the wire Stats op (v2 view).
	wireStats := map[string]int64{}
	for _, p := range srv.statsResponse(true).Pairs {
		if string(p.Key) == "flush_last_error" {
			continue
		}
		v, err := strconv.ParseInt(string(p.Cols[0]), 10, 64)
		if err != nil {
			t.Fatalf("stats op key %q=%q not numeric: %v", p.Key, p.Cols[0], err)
		}
		wireStats[string(p.Key)] = v
	}
	if wireStats["lat_get_count"] == 0 || wireStats["lat_put_count"] == 0 ||
		wireStats["lat_get_batch_count"] == 0 || wireStats["lat_put_batch_count"] == 0 ||
		wireStats["lat_scan_count"] == 0 {
		t.Fatalf("workout left histograms empty: %v", wireStats)
	}
	for _, stem := range []string{"lat_get", "lat_put", "lat_scan"} {
		if wireStats[stem+"_p50"] == 0 || wireStats[stem+"_p999"] < wireStats[stem+"_p50"] {
			t.Fatalf("%s quantiles implausible: p50=%d p999=%d",
				stem, wireStats[stem+"_p50"], wireStats[stem+"_p999"])
		}
	}

	mux := srv.AdminMux()

	// Surface 2: /varz. The stats map must equal the Stats op exactly, and
	// each broken-out histogram's quantiles must equal its lat_* keys.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/varz", nil))
	var varz struct {
		Stats map[string]int64    `json:"stats"`
		Hists map[string]varzHist `json:"hists"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &varz); err != nil {
		t.Fatalf("varz not JSON: %v\n%s", err, rec.Body.String())
	}
	for k, v := range wireStats {
		if varz.Stats[k] != v {
			t.Errorf("varz stats[%q]=%d, Stats op says %d", k, varz.Stats[k], v)
		}
	}
	if len(varz.Stats) != len(wireStats) {
		t.Errorf("varz has %d stats keys, Stats op has %d", len(varz.Stats), len(wireStats))
	}
	for name, h := range varz.Hists {
		stem := "lat_" + name
		for suffix, got := range map[string]uint64{
			"_count": h.Count, "_sum": h.SumNS,
			"_p50": h.P50, "_p90": h.P90, "_p99": h.P99, "_p999": h.P999,
		} {
			if int64(got) != wireStats[stem+suffix] {
				t.Errorf("varz hist %s%s=%d, Stats op key says %d",
					stem, suffix, got, wireStats[stem+suffix])
			}
		}
	}

	// Surface 3: /metrics. Every scalar gauge must equal the Stats op key of
	// the same name; histogram _count lines must match lat_*_count.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	promVals := map[string]int64{}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed metrics line %q", line)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("metrics line %q value not integer: %v", line, err)
		}
		promVals[name] = n
	}
	for k, v := range wireStats {
		if strings.HasPrefix(k, "lat_") && obsIsBucket(k) {
			continue // raw buckets appear as histogram blocks instead
		}
		if promVals["masstree_"+k] != v {
			t.Errorf("/metrics masstree_%s=%d, Stats op says %d", k, promVals["masstree_"+k], v)
		}
	}
	for name, h := range varz.Hists {
		if got := promVals["masstree_lat_"+name+"_ns_count"]; got != int64(h.Count) {
			t.Errorf("/metrics histogram %s count=%d, varz says %d", name, got, h.Count)
		}
	}
}

// obsIsBucket mirrors obs.IsBucketKey for the test's skip logic without
// importing obs under a clashing name.
func obsIsBucket(k string) bool {
	i := strings.LastIndex(k, "_b")
	if i < 0 {
		return false
	}
	_, err := strconv.Atoi(k[i+2:])
	return err == nil
}

// TestAdminFlightRecorder exercises the /flightrecorder dump: an evicting
// store records eviction events, and the endpoint serves the merged
// timeline as text.
func TestAdminFlightRecorder(t *testing.T) {
	store, err := kvstore.Open(kvstore.Config{Workers: 1, MaxBytes: 4 << 10, MaintainEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, 1)
	for i := 0; i < 256; i++ {
		store.PutSimple(0, []byte(fmt.Sprintf("fr-key-%04d", i)), make([]byte, 128))
	}
	deadline := time.Now().Add(5 * time.Second)
	for store.CacheStats().Evictions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("maintenance never evicted past MaxBytes")
		}
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	srv.AdminMux().ServeHTTP(rec, httptest.NewRequest("GET", "/flightrecorder", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "evict") {
		t.Fatalf("flight recorder dump has no evict events:\n%s", body)
	}
	if strings.Contains(body, "disabled") {
		t.Fatalf("flight recorder reported disabled on a default-config store")
	}
}

// TestAdminObsDisabled pins the off switch: with NoObs set, the admin
// surface still answers — no lat_* keys, no histogram blocks, and the
// flight recorder reports itself disabled — and the Stats op still serves
// its counters.
func TestAdminObsDisabled(t *testing.T) {
	store, err := kvstore.Open(kvstore.Config{Workers: 1, MaintainEvery: -1, NoObs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, 1)
	sess := store.Session(0)
	defer sess.Close()
	adminWorkout(t, srv, sess)

	for _, p := range srv.statsResponse(false).Pairs {
		if strings.HasPrefix(string(p.Key), "lat_") {
			t.Fatalf("NoObs stats response carries histogram key %q", p.Key)
		}
	}
	rec := httptest.NewRecorder()
	srv.AdminMux().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), "lat_") {
		t.Fatalf("NoObs /metrics carries latency series:\n%s", rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "masstree_keys ") {
		t.Fatalf("NoObs /metrics lost its counters:\n%s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	srv.AdminMux().ServeHTTP(rec, httptest.NewRequest("GET", "/flightrecorder", nil))
	if !strings.Contains(rec.Body.String(), "disabled") {
		t.Fatalf("NoObs flight recorder did not report disabled: %s", rec.Body.String())
	}
}
