// Package wire defines the binary client/server protocol. Requests query
// and change the mapping of keys to values; values are divided into columns
// (§3). A single message carries a whole batch of queries — batching is
// vital for throughput (§7: "Batched query support is vital on these
// benchmarks") — and responses come back as a matching batch.
//
// Framing: every message is a 4-byte little-endian length followed by the
// body. Bodies hold a 4-byte request/response count followed by that many
// requests or responses.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// OpCode identifies a request type.
type OpCode uint8

const (
	// OpGet retrieves (a subset of columns of) one key.
	OpGet OpCode = 1
	// OpPut modifies a subset of columns of one key.
	OpPut OpCode = 2
	// OpRemove deletes one key.
	OpRemove OpCode = 3
	// OpGetRange is the paper's getrange/scan: up to N pairs from a start key.
	OpGetRange OpCode = 4
	// OpStats requests server statistics; the response carries metric
	// name/value pairs in Pairs.
	OpStats OpCode = 5
)

// Status codes.
const (
	StatusOK       uint8 = 0
	StatusNotFound uint8 = 1
	StatusError    uint8 = 2
)

// ColData is a column index with data (for puts and responses).
type ColData struct {
	Col  int
	Data []byte
}

// Request is one operation within a batch.
type Request struct {
	Op   OpCode
	Key  []byte
	Cols []int     // columns to read (OpGet/OpGetRange); nil = all
	Puts []ColData // column writes (OpPut)
	N    int       // max pairs (OpGetRange)
}

// Pair is one key-value result of a range query.
type Pair struct {
	Key  []byte
	Cols [][]byte
}

// Response is one operation's result.
type Response struct {
	Status  uint8
	Version uint64   // OpPut
	Cols    [][]byte // OpGet
	Pairs   []Pair   // OpGetRange
}

// MaxMessage bounds a message body; larger frames are rejected as corrupt.
const MaxMessage = 64 << 20

var errTooLarge = errors.New("wire: message exceeds MaxMessage")

// WriteRequests frames and writes a request batch.
func WriteRequests(w *bufio.Writer, reqs []Request) error {
	body := make([]byte, 0, 64*len(reqs))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(reqs)))
	for i := range reqs {
		body = appendRequest(body, &reqs[i])
	}
	return writeFrame(w, body)
}

// ReadRequests reads one framed request batch.
func ReadRequests(r *bufio.Reader) ([]Request, error) {
	body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	n, body, err := readU32(body)
	if err != nil {
		return nil, err
	}
	reqs := make([]Request, n)
	for i := range reqs {
		body, err = parseRequest(body, &reqs[i])
		if err != nil {
			return nil, err
		}
	}
	if len(body) != 0 {
		return nil, errors.New("wire: trailing request bytes")
	}
	return reqs, nil
}

// WriteResponses frames and writes a response batch.
func WriteResponses(w *bufio.Writer, resps []Response) error {
	body := make([]byte, 0, 32*len(resps))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(resps)))
	for i := range resps {
		body = appendResponse(body, &resps[i])
	}
	return writeFrame(w, body)
}

// ReadResponses reads one framed response batch.
func ReadResponses(r *bufio.Reader) ([]Response, error) {
	body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	n, body, err := readU32(body)
	if err != nil {
		return nil, err
	}
	resps := make([]Response, n)
	for i := range resps {
		body, err = parseResponse(body, &resps[i])
		if err != nil {
			return nil, err
		}
	}
	if len(body) != 0 {
		return nil, errors.New("wire: trailing response bytes")
	}
	return resps, nil
}

func writeFrame(w *bufio.Writer, body []byte) error {
	if len(body) > MaxMessage {
		return errTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxMessage {
		return nil, errTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

func appendRequest(b []byte, r *Request) []byte {
	b = append(b, byte(r.Op))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Key)))
	b = append(b, r.Key...)
	switch r.Op {
	case OpGet, OpGetRange:
		b = append(b, byte(len(r.Cols)))
		for _, c := range r.Cols {
			b = binary.LittleEndian.AppendUint16(b, uint16(c))
		}
		if r.Op == OpGetRange {
			b = binary.LittleEndian.AppendUint16(b, uint16(r.N))
		}
	case OpPut:
		b = append(b, byte(len(r.Puts)))
		for _, p := range r.Puts {
			b = binary.LittleEndian.AppendUint16(b, uint16(p.Col))
			b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Data)))
			b = append(b, p.Data...)
		}
	case OpRemove, OpStats:
	}
	return b
}

var errShort = errors.New("wire: short message")

func parseRequest(b []byte, r *Request) ([]byte, error) {
	if len(b) < 3 {
		return nil, errShort
	}
	r.Op = OpCode(b[0])
	klen := int(binary.LittleEndian.Uint16(b[1:]))
	b = b[3:]
	if len(b) < klen {
		return nil, errShort
	}
	r.Key = append([]byte(nil), b[:klen]...)
	b = b[klen:]
	switch r.Op {
	case OpGet, OpGetRange:
		if len(b) < 1 {
			return nil, errShort
		}
		ncols := int(b[0])
		b = b[1:]
		if len(b) < 2*ncols {
			return nil, errShort
		}
		if ncols > 0 {
			r.Cols = make([]int, ncols)
			for i := range r.Cols {
				r.Cols[i] = int(binary.LittleEndian.Uint16(b))
				b = b[2:]
			}
		}
		if r.Op == OpGetRange {
			if len(b) < 2 {
				return nil, errShort
			}
			r.N = int(binary.LittleEndian.Uint16(b))
			b = b[2:]
		}
	case OpPut:
		if len(b) < 1 {
			return nil, errShort
		}
		nputs := int(b[0])
		b = b[1:]
		r.Puts = make([]ColData, nputs)
		for i := range r.Puts {
			if len(b) < 6 {
				return nil, errShort
			}
			r.Puts[i].Col = int(binary.LittleEndian.Uint16(b))
			dlen := int(binary.LittleEndian.Uint32(b[2:]))
			b = b[6:]
			if len(b) < dlen {
				return nil, errShort
			}
			r.Puts[i].Data = append([]byte(nil), b[:dlen]...)
			b = b[dlen:]
		}
	case OpRemove, OpStats:
	default:
		return nil, fmt.Errorf("wire: unknown opcode %d", r.Op)
	}
	return b, nil
}

func appendResponse(b []byte, r *Response) []byte {
	b = append(b, r.Status)
	b = binary.LittleEndian.AppendUint64(b, r.Version)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Cols)))
	for _, c := range r.Cols {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(c)))
		b = append(b, c...)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Pairs)))
	for _, p := range r.Pairs {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Key)))
		b = append(b, p.Key...)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p.Cols)))
		for _, c := range p.Cols {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(c)))
			b = append(b, c...)
		}
	}
	return b
}

func parseResponse(b []byte, r *Response) ([]byte, error) {
	if len(b) < 13 {
		return nil, errShort
	}
	r.Status = b[0]
	r.Version = binary.LittleEndian.Uint64(b[1:])
	ncols := int(binary.LittleEndian.Uint16(b[9:]))
	b = b[11:]
	if ncols > 0 {
		r.Cols = make([][]byte, ncols)
		for i := range r.Cols {
			var err error
			r.Cols[i], b, err = readBytes32(b)
			if err != nil {
				return nil, err
			}
		}
	}
	if len(b) < 2 {
		return nil, errShort
	}
	npairs := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if npairs > 0 {
		r.Pairs = make([]Pair, npairs)
		for i := range r.Pairs {
			if len(b) < 2 {
				return nil, errShort
			}
			klen := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			if len(b) < klen+2 {
				return nil, errShort
			}
			r.Pairs[i].Key = append([]byte(nil), b[:klen]...)
			b = b[klen:]
			nc := int(binary.LittleEndian.Uint16(b))
			b = b[2:]
			r.Pairs[i].Cols = make([][]byte, nc)
			for j := 0; j < nc; j++ {
				var err error
				r.Pairs[i].Cols[j], b, err = readBytes32(b)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return b, nil
}

func readBytes32(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, errShort
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return nil, nil, errShort
	}
	return append([]byte(nil), b[:n]...), b[n:], nil
}

func readU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errShort
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}
