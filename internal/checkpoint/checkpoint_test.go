package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/value"
)

func entries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Key:   []byte(fmt.Sprintf("key%05d", i)),
			Value: value.NewAt(uint64(i+1), []byte(fmt.Sprintf("v%d", i)), []byte("col1")),
		}
	}
	return out
}

func writeAll(t *testing.T, dir string, startTS uint64, es []Entry) string {
	t.Helper()
	i := 0
	path, n, err := Write(dir, startTS, func() (Entry, bool) {
		if i >= len(es) {
			return Entry{}, false
		}
		e := es[i]
		i++
		return e, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(es) {
		t.Fatalf("wrote %d entries, want %d", n, len(es))
	}
	return path
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	es := entries(1000)
	writeAll(t, dir, 42, es)

	var got []Entry
	ts, err := LoadLatest(dir, func(e Entry) { got = append(got, e) })
	if err != nil {
		t.Fatal(err)
	}
	if ts != 42 {
		t.Fatalf("startTS = %d", ts)
	}
	if len(got) != len(es) {
		t.Fatalf("loaded %d entries", len(got))
	}
	for i := range es {
		if !bytes.Equal(got[i].Key, es[i].Key) {
			t.Fatalf("entry %d key mismatch", i)
		}
		if got[i].Value.Version() != es[i].Value.Version() {
			t.Fatalf("entry %d version mismatch", i)
		}
		if !value.Equal(got[i].Value, es[i].Value) {
			t.Fatalf("entry %d value mismatch", i)
		}
	}
}

func TestEmptyCheckpoint(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, 7, nil)
	n := 0
	ts, err := LoadLatest(dir, func(Entry) { n++ })
	if err != nil || ts != 7 || n != 0 {
		t.Fatalf("ts=%d n=%d err=%v", ts, n, err)
	}
}

func TestLoadLatestPicksNewest(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, 10, entries(5))
	writeAll(t, dir, 20, entries(7))
	n := 0
	ts, err := LoadLatest(dir, func(Entry) { n++ })
	if err != nil || ts != 20 || n != 7 {
		t.Fatalf("ts=%d n=%d err=%v", ts, n, err)
	}
}

func TestTornCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, 10, entries(5))
	p2 := writeAll(t, dir, 20, entries(7))
	// Truncate the newest checkpoint: it must be skipped entirely.
	b, _ := os.ReadFile(p2)
	os.WriteFile(p2, b[:len(b)-5], 0o644)
	n := 0
	ts, err := LoadLatest(dir, func(Entry) { n++ })
	if err != nil || ts != 10 || n != 5 {
		t.Fatalf("ts=%d n=%d err=%v", ts, n, err)
	}
}

func TestCorruptBodyDetected(t *testing.T) {
	dir := t.TempDir()
	p := writeAll(t, dir, 10, entries(100))
	b, _ := os.ReadFile(p)
	b[len(b)/2] ^= 0xff
	os.WriteFile(p, b, 0o644)
	_, err := Load(p, func(Entry) {})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// No valid checkpoint remains.
	if _, err := LoadLatest(dir, func(Entry) {}); !errors.Is(err, ErrNone) {
		t.Fatalf("LoadLatest err = %v, want ErrNone", err)
	}
}

func TestNoCheckpoint(t *testing.T) {
	if _, err := LoadLatest(t.TempDir(), func(Entry) {}); !errors.Is(err, ErrNone) {
		t.Fatalf("err = %v", err)
	}
}

func TestDropOld(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, 10, entries(1))
	writeAll(t, dir, 20, entries(1))
	writeAll(t, dir, 30, entries(1))
	if err := Drop(dir, 30); err != nil {
		t.Fatal(err)
	}
	infos, _ := List(dir)
	if len(infos) != 1 || infos[0].StartTS != 30 {
		t.Fatalf("after drop: %+v", infos)
	}
}

func TestNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	writeAll(t, dir, 10, entries(10))
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if e.Name() != FileName(10) {
			t.Fatalf("unexpected file %s", e.Name())
		}
	}
}
