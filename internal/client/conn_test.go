package client

import (
	"bufio"
	"context"
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/wire"
)

// hangingServer accepts one connection, completes the v2 hello exchange,
// then reads and discards frames forever without ever answering — a peer
// that is alive at the TCP level but dead at the protocol level.
func hangingServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var conn net.Conn
	connCh := make(chan net.Conn, 1)
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		connCh <- c
		r := bufio.NewReader(c)
		if _, err := wire.ReadHello(r); err != nil {
			return
		}
		w := bufio.NewWriter(c)
		if err := wire.WriteHello(w, wire.Version2); err != nil || w.Flush() != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		select {
		case conn = <-connCh:
			conn.Close()
		default:
		}
		<-done
	}
}

// echoServer accepts one connection, completes the hello exchange, and
// answers every tagged frame with a batch of StatusOK responses — just
// enough protocol to prove a healthy connection stays healthy.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		r := bufio.NewReader(c)
		w := bufio.NewWriter(c)
		if _, err := wire.ReadHello(r); err != nil {
			return
		}
		if err := wire.WriteHello(w, wire.Version2); err != nil || w.Flush() != nil {
			return
		}
		var dec wire.DecodeBuf
		for {
			tag, n, err := wire.ReadTaggedHeader(r)
			if err != nil {
				return
			}
			body, err := wire.ReadTaggedRequestBody(r, n, &dec)
			if err != nil {
				return
			}
			reqs, claimed, err := wire.ParseRequestsLenient(body, &dec)
			if err != nil {
				return
			}
			if claimed < len(reqs) {
				claimed = len(reqs)
			}
			resps := make([]wire.Response, claimed)
			for i := range resps {
				resps[i] = wire.Response{Status: wire.StatusOK}
			}
			out, err := wire.AppendTaggedResponses(nil, tag, resps)
			if err != nil {
				return
			}
			if _, err := w.Write(out); err != nil || w.Flush() != nil {
				return
			}
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		<-done
	}
}

// A dead peer must fail every in-flight Pending with one transport error
// once the WithTimeout deadline fires — not hang them forever, not fail
// them piecemeal with different errors.
func TestTimeoutFailsAllInFlight(t *testing.T) {
	addr, stop := hangingServer(t)
	defer stop()
	c, err := DialConn(addr, WithTimeout(100*time.Millisecond), WithWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var pendings []*Pending
	for i := 0; i < 5; i++ {
		pendings = append(pendings, c.Go([]wire.Request{{Op: wire.OpGet, Key: []byte{byte('a' + i)}}}))
	}
	deadline := time.Now().Add(5 * time.Second)
	var first error
	for i, p := range pendings {
		if time.Now().After(deadline) {
			t.Fatal("pendings did not fail within 5s")
		}
		resps, err := p.Wait()
		if err == nil {
			t.Fatalf("pending %d: got %d responses from a hanging server", i, len(resps))
		}
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("pending %d: error %v, want deadline exceeded", i, err)
		}
		if first == nil {
			first = err
		} else if err != first {
			t.Fatalf("pending %d failed with %v, others with %v — want one shared error", i, err, first)
		}
		p.Release()
	}
	// The connection is sticky-failed: later Gos fail immediately.
	p := c.Go([]wire.Request{{Op: wire.OpStats}})
	if _, err := p.Wait(); err == nil {
		t.Fatal("Go after transport failure succeeded")
	}
	p.Release()
}

// WaitCtx must return promptly when its context fires, transfer the
// abandoned Pending back to the connection, and leave the connection usable
// for the batches that eventually complete.
func TestWaitCtxAbandon(t *testing.T) {
	addr, stop := hangingServer(t)
	defer stop()
	// No WithTimeout: the batch genuinely never completes until Close.
	c, err := DialConn(addr, WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}

	p := c.Go([]wire.Request{{Op: wire.OpGet, Key: []byte("k")}})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	resps, werr := p.WaitCtx(ctx)
	if werr == nil || !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("WaitCtx = (%v, %v), want deadline exceeded", resps, werr)
	}
	if time.Since(start) > time.Second {
		t.Fatal("WaitCtx did not return promptly")
	}
	// p is abandoned: the connection owns it now. Closing fails the batch,
	// and the completer-side recycle must not double-signal or panic.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// WaitCtx with a context that never fires behaves exactly like Wait.
func TestWaitCtxCompletes(t *testing.T) {
	addr, stop := hangingServer(t)
	defer stop()
	c, err := DialConn(addr, WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := c.Go([]wire.Request{{Op: wire.OpGet, Key: []byte("k")}})
	if _, err := p.WaitCtx(context.Background()); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("WaitCtx error = %v, want deadline exceeded", err)
	}
	p.Release()
}

// An idle connection with a timeout configured must not spuriously fail:
// the rolling read deadline is cleared when the window empties.
func TestTimeoutIdleConnectionSurvives(t *testing.T) {
	// A live server answers the first batch; the connection then sits idle
	// for several timeout periods and must still be healthy.
	addr, stop := echoServer(t)
	defer stop()
	c, err := DialConn(addr, WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // 4x the timeout, idle
	if _, err := c.Stats(); err != nil {
		t.Fatalf("idle connection failed: %v", err)
	}
}
