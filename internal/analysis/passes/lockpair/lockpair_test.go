package lockpair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockpair"
)

func TestLockpair(t *testing.T) {
	analysistest.Run(t, lockpair.Analyzer, "a")
}
