package bench

import (
	"fmt"

	"repro/internal/baseline/btree"
	"repro/internal/baseline/hashtable"
	"repro/internal/baseline/seqtree"
	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
)

// Sec64 reproduces §6.4's flexibility-cost measurements:
//
//   - variable-length keys: Masstree vs a fixed-8-byte-key B-tree
//     ("+Permuter") on an 8-byte decimal get workload — the paper found only
//     0.8% difference;
//   - concurrency: single-worker put throughput, concurrent Masstree vs the
//     single-core variant with interlocked instructions removed — the paper
//     found a 13% penalty;
//   - range queries: a near-best-case hash table vs Masstree on 8-byte
//     alphabetical keys — the paper's table reached 2.5x.
func Sec64(sc Scale) *Table {
	sc = sc.withDefaults()
	t := &Table{
		ID:      "sec64",
		Title:   fmt.Sprintf("what flexibility costs, %d keys (§6.4)", sc.Keys),
		Headers: []string{"feature", "Masstree Mreq/s", "alternative Mreq/s", "alt/Masstree"},
	}

	// Variable-length keys: 8-byte decimal gets.
	keysPerWorker := sc.Keys / sc.Workers
	keys := make([][][]byte, sc.Workers)
	for w := range keys {
		keys[w] = workload.Keys(workload.Fixed8Decimal(int64(810+w)), keysPerWorker)
	}
	mt := core.New()
	bt := btree.New(btree.WithPermuter())
	for w := range keys {
		for _, k := range keys[w] {
			v := value.New(k)
			mt.Put(k, v)
			bt.Put(k, v)
		}
	}
	perWorker := sc.Ops / sc.Workers
	mtGet := measure(sc.Workers, perWorker, func(w, i int) { mt.Get(keys[w][(i*61)%keysPerWorker]) })
	btGet := measure(sc.Workers, perWorker, func(w, i int) { bt.Get(keys[w][(i*61)%keysPerWorker]) })
	t.Rows = append(t.Rows, []string{"variable-length keys (8B get)", mops(mtGet), mops(btGet), ratio(btGet, mtGet)})

	// Concurrency: one worker, put workload, concurrent vs sequential tree.
	seqKeys := workload.Keys(workload.Decimal(820), sc.Keys)
	mt2 := core.New()
	mtPut := measure(1, sc.Keys, func(_, i int) {
		k := seqKeys[i]
		mt2.Put(k, value.New(k))
	})
	st := seqtree.New()
	seqPut := measure(1, sc.Keys, func(_, i int) {
		k := seqKeys[i]
		st.Put(k, value.New(k))
	})
	t.Rows = append(t.Rows, []string{"concurrency (1-worker put)", mops(mtPut), mops(seqPut), ratio(seqPut, mtPut)})

	// Range-query support: hash table vs Masstree, 8-byte alpha keys.
	alpha := make([][][]byte, sc.Workers)
	for w := range alpha {
		alpha[w] = workload.Keys(workload.Alpha8(int64(830+w)), keysPerWorker)
	}
	mt3 := core.New()
	ht := hashtable.New(3 * sc.Keys) // ~30% occupancy, as in the paper
	for w := range alpha {
		for _, k := range alpha[w] {
			v := value.New(k)
			mt3.Put(k, v)
			ht.Put(k, v)
		}
	}
	mtGet3 := measure(sc.Workers, perWorker, func(w, i int) { mt3.Get(alpha[w][(i*61)%keysPerWorker]) })
	htGet := measure(sc.Workers, perWorker, func(w, i int) { ht.Get(alpha[w][(i*61)%keysPerWorker]) })
	t.Rows = append(t.Rows, []string{"range queries (hash get)", mops(mtGet3), mops(htGet), ratio(htGet, mtGet3)})
	return t
}
