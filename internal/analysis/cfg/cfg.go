// Package cfg builds a compact control-flow graph over a function body's
// statements, sufficient for the flow-sensitive analyzers in this suite
// (lock-pairing, epoch-pin tracking). It is a miniature, dependency-free
// stand-in for golang.org/x/tools/go/cfg.
//
// Blocks hold only "atomic" nodes — simple statements and bare expressions,
// never statements with nested bodies — so transfer functions can walk a
// node's full subtree safely. Branch conditions ride on edges together with
// the sense in which they were taken, which is how condition-dependent
// facts (tryLock success, nil checks of conditionally locked results) stay
// visible to the dataflow.
package cfg

import "go/ast"

// Edge is a control-flow successor. Cond is nil for unconditional edges;
// otherwise the edge is taken when Cond evaluates to Sense.
type Edge struct {
	To    *Block
	Cond  ast.Expr
	Sense bool
}

// Block is a straight-line run of atomic nodes.
type Block struct {
	Nodes []ast.Node
	Succs []Edge
	Index int
}

// Graph is one function body's control-flow graph. Exit is reached only by
// falling off the end of the body (an implicit return); explicit returns
// end their blocks with the *ast.ReturnStmt node and terminate the path, so
// analyses check return-site state at the node and implicit-return state at
// Exit without double-counting.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the graph for body. noReturn reports calls that never return
// (panic and equivalents); statements after them are treated as unreachable.
func New(body *ast.BlockStmt, noReturn func(*ast.CallExpr) bool) *Graph {
	if noReturn == nil {
		noReturn = func(*ast.CallExpr) bool { return false }
	}
	b := &builder{noReturn: noReturn, labels: map[string]*labelInfo{}}
	b.graph = &Graph{}
	b.graph.Entry = b.newBlock()
	b.graph.Exit = b.newBlock()
	b.cur = b.graph.Entry
	b.stmtList(body.List, "")
	b.jump(b.graph.Exit)
	return b.graph
}

type labelInfo struct {
	target *Block // goto / labeled-statement entry
	brk    *Block // break target when the label names a loop/switch
	cont   *Block // continue target when the label names a loop
}

type builder struct {
	graph    *Graph
	cur      *Block // nil after a terminating statement
	noReturn func(*ast.CallExpr) bool

	breaks    []*Block
	continues []*Block
	labels    map[string]*labelInfo
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// block returns the current block, materializing an unreachable one after a
// terminator so subsequent nodes still land somewhere.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) append(n ast.Node) { b.block().Nodes = append(b.block().Nodes, n) }

func (b *builder) jump(to *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, Edge{To: to})
	}
	b.cur = nil
}

func (b *builder) branch(cond ast.Expr, t, f *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs,
			Edge{To: t, Cond: cond, Sense: true},
			Edge{To: f, Cond: cond, Sense: false})
	}
	b.cur = nil
}

func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{target: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmtList(list []ast.Stmt, pendingLabel string) {
	for i, s := range list {
		lbl := ""
		if i == 0 {
			lbl = pendingLabel
		}
		b.stmt(s, lbl)
	}
}

// stmt builds one statement. label is non-empty when the statement is the
// direct body of a labeled statement (so loops can bind break/continue).
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List, "")

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		b.jump(li.target)
		b.cur = li.target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ExprStmt:
		b.append(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.noReturn(call) {
			b.cur = nil
		}

	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt:
		b.append(s)

	case *ast.EmptyStmt:
		// nothing

	case *ast.ReturnStmt:
		b.append(s)
		b.cur = nil

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		then, after := b.newBlock(), b.newBlock()
		alt := after
		if s.Else != nil {
			alt = b.newBlock()
		}
		b.branch(s.Cond, then, alt)
		b.cur = then
		b.stmtList(s.Body.List, "")
		b.jump(after)
		if s.Else != nil {
			b.cur = alt
			b.stmt(s.Else, "")
			b.jump(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		head := b.newBlock()
		body, after := b.newBlock(), b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.branch(s.Cond, body, after)
		} else {
			b.jump(body)
		}
		if label != "" {
			li := b.label(label)
			li.brk, li.cont = after, post
		}
		b.breaks = append(b.breaks, after)
		b.continues = append(b.continues, post)
		b.cur = body
		b.stmtList(s.Body.List, "")
		b.jump(post)
		if s.Post != nil {
			b.cur = post
			b.append(s.Post)
			b.jump(head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body, after := b.newBlock(), b.newBlock()
		b.append(rangeNode(s))
		b.jump(head)
		head.Succs = append(head.Succs, Edge{To: body}, Edge{To: after})
		if label != "" {
			li := b.label(label)
			li.brk, li.cont = after, head
		}
		b.breaks = append(b.breaks, after)
		b.continues = append(b.continues, head)
		b.cur = body
		b.stmtList(s.Body.List, "")
		b.jump(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		if s.Tag != nil {
			b.append(s.Tag)
		}
		b.caseClauses(s.Body.List, label, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		b.append(s.Assign)
		b.caseClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		b.caseClauses(s.Body.List, label, true)

	default:
		// Unknown statement kind: record it so analyzers can at least see
		// it, and continue straight-line.
		b.append(s)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	var to *Block
	switch s.Tok.String() {
	case "break":
		if s.Label != nil {
			to = b.label(s.Label.Name).brk
		} else if len(b.breaks) > 0 {
			to = b.breaks[len(b.breaks)-1]
		}
	case "continue":
		if s.Label != nil {
			to = b.label(s.Label.Name).cont
		} else if len(b.continues) > 0 {
			to = b.continues[len(b.continues)-1]
		}
	case "goto":
		to = b.label(s.Label.Name).target
	case "fallthrough":
		// Handled by caseClauses via fallthrough edges; terminate here.
	}
	if to != nil {
		b.jump(to)
	} else {
		b.cur = nil
	}
}

// caseClauses builds switch/select clause bodies. The dispatch block edges
// to every clause unconditionally (clause guards carry no semantics the
// analyzers need); a missing default also edges to after.
func (b *builder) caseClauses(clauses []ast.Stmt, label string, isSelect bool) {
	dispatch := b.block()
	after := b.newBlock()
	if label != "" {
		b.label(label).brk = after
	}
	b.breaks = append(b.breaks, after)

	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	for i, cl := range clauses {
		var body []ast.Stmt
		var comm ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			body = cl.Body
			if cl.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			body = cl.Body
			comm = cl.Comm
			if cl.Comm == nil {
				hasDefault = true
			}
		}
		dispatch.Succs = append(dispatch.Succs, Edge{To: blocks[i]})
		b.cur = blocks[i]
		if comm != nil {
			b.stmt(comm, "")
		}
		// fallthrough: a trailing fallthrough jumps to the next clause body.
		ft := -1
		for j, s := range body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && j == len(body)-1 {
				ft = i + 1
				body = body[:j]
				break
			}
		}
		b.stmtList(body, "")
		if ft >= 0 && ft < len(blocks) {
			b.jump(blocks[ft])
		} else {
			b.jump(after)
		}
	}
	// A switch without a default can skip every clause; a select without a
	// default blocks, but modeling the skip edge is sound for our analyses
	// either way.
	if !hasDefault || isSelect {
		dispatch.Succs = append(dispatch.Succs, Edge{To: after})
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// rangeNode exposes a RangeStmt's header (key/value assignment and ranged
// expression) as an atomic node without its body.
func rangeNode(s *ast.RangeStmt) ast.Node {
	if s.Key == nil && s.Value == nil {
		return s.X
	}
	// Synthesize an assignment so dataflow sees the header's bindings.
	lhs := []ast.Expr{}
	if s.Key != nil {
		lhs = append(lhs, s.Key)
	}
	if s.Value != nil {
		lhs = append(lhs, s.Value)
	}
	return &ast.AssignStmt{Lhs: lhs, Tok: s.Tok, TokPos: s.For, Rhs: []ast.Expr{s.X}}
}
