// Package epoch implements epoch-based reclamation (EBR) in the style the
// paper borrows from read-copy update (§4.6.1, citing Fraser's practical
// lock-freedom).
//
// Writers that unlink shared objects (removed border nodes, replaced values,
// empty layer trees) must not recycle them while a concurrent reader may
// still be examining them. Readers bracket their operations with
// Enter/Exit on a per-goroutine Handle; retired objects (and deferred
// maintenance tasks, §4.6.5) run only after every handle that was active at
// retirement time has moved past the retirement epoch.
//
// Go's garbage collector already guarantees memory safety, so unlike the C++
// original this manager is not needed to prevent use-after-free. It is still
// load-bearing for the paper's *semantic* deferrals: empty-layer collapse and
// deleted-node accounting are scheduled here exactly as the paper schedules
// "epoch-based reclamation tasks", and the kvstore uses it to bound how long
// superseded values are considered live.
package epoch

import (
	"sync"
	"sync/atomic"
)

// Manager coordinates a global epoch among registered handles.
// The zero Manager is ready to use.
type Manager struct {
	global atomic.Uint64 // current global epoch; 0 means epoch 1 not yet begun

	mu      sync.Mutex
	handles []*Handle
	retired []retiree
}

type retiree struct {
	epoch uint64
	fn    func()
}

// Handle is one participant's registration. A Handle may be used by one
// goroutine at a time; each worker goroutine that reads shared structures
// should own one.
type Handle struct {
	m      *Manager
	local  atomic.Uint64 // epoch observed at Enter
	active atomic.Bool
}

func (m *Manager) epoch() uint64 {
	if e := m.global.Load(); e != 0 {
		return e
	}
	m.global.CompareAndSwap(0, 1)
	return m.global.Load()
}

// Register creates a new Handle attached to the manager.
func (m *Manager) Register() *Handle {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := &Handle{m: m}
	m.handles = append(m.handles, h)
	return h
}

// Unregister removes the handle from the manager. The handle must be
// quiescent (not between Enter and Exit).
func (m *Manager) Unregister(h *Handle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, other := range m.handles {
		if other == h {
			m.handles = append(m.handles[:i], m.handles[i+1:]...)
			return
		}
	}
}

// Enter marks the handle active in the current global epoch. Must be paired
// with Exit.
func (h *Handle) Enter() {
	h.local.Store(h.m.epoch())
	h.active.Store(true)
}

// Exit marks the handle quiescent.
func (h *Handle) Exit() {
	h.active.Store(false)
}

// Retire schedules fn to run once every handle active now has exited its
// current critical section (concretely: after the global epoch has advanced
// twice past the current one). fn runs on a later Advance call's goroutine.
func (m *Manager) Retire(fn func()) {
	e := m.epoch()
	m.mu.Lock()
	m.retired = append(m.retired, retiree{epoch: e, fn: fn})
	m.mu.Unlock()
}

// Advance attempts to advance the global epoch: it succeeds only if every
// active handle has observed the current epoch. On success it runs all
// callbacks retired at least two epochs ago and reports true. On failure
// (a straggling reader pins the epoch) it reports false and runs nothing.
func (m *Manager) Advance() bool {
	m.mu.Lock()
	e := m.epoch()
	for _, h := range m.handles {
		if h.active.Load() && h.local.Load() < e {
			m.mu.Unlock()
			return false
		}
	}
	next := e + 1
	m.global.Store(next)
	// Callbacks retired in epochs <= next-2 can no longer be observed:
	// every active reader entered at epoch >= e = next-1.
	var ready []func()
	keep := m.retired[:0]
	for _, r := range m.retired {
		if r.epoch+2 <= next {
			ready = append(ready, r.fn)
		} else {
			keep = append(keep, r)
		}
	}
	m.retired = keep
	m.mu.Unlock()
	for _, fn := range ready {
		fn()
	}
	return true
}

// Barrier advances the epoch until all callbacks retired before the call
// have run, spinning past active readers. Intended for shutdown and tests;
// it blocks if a reader never exits.
func (m *Manager) Barrier() {
	for i := 0; i < 3; i++ {
		for !m.Advance() {
		}
	}
}

// Pending returns the number of retired callbacks not yet run.
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.retired)
}

// Epoch returns the current global epoch.
func (m *Manager) Epoch() uint64 { return m.global.Load() }
