// Pipeline: the protocol-v2 async client against an in-process server —
// many tagged batches in flight on one connection (the pipelining that §7's
// batched-query results depend on), plus versioned compare-and-swap for
// lock-free read-modify-write over the network.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	// An in-memory store served over TCP.
	store, err := kvstore.Open(kvstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	srv := server.New(store, 2)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// DialConn negotiates protocol v2: every frame carries a tag, so up to
	// `window` batches ride the connection at once and neither side idles
	// waiting for the other's round trip.
	conn, err := client.DialConn(srv.Addr().String(), client.WithWindow(8))
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// Issue 8 batches of 64 puts back-to-back — Go returns as soon as the
	// frame is written — then collect the responses afterwards.
	var pendings []*client.Pending
	for b := 0; b < 8; b++ {
		reqs := make([]wire.Request, 64)
		for i := range reqs {
			key := fmt.Sprintf("key-%02d-%03d", b, i)
			reqs[i] = wire.Request{Op: wire.OpPut, Key: []byte(key),
				Puts: []wire.ColData{{Col: 0, Data: []byte("value")}}}
		}
		pendings = append(pendings, conn.Go(reqs))
	}
	for b, p := range pendings {
		resps, err := p.Wait()
		if err != nil {
			log.Fatal(err)
		}
		if b == 0 {
			fmt.Printf("batch 0: %d puts acknowledged, first version %d\n",
				len(resps), resps[0].Version)
		}
		p.Release()
	}
	fmt.Println("8 batches x 64 puts pipelined on one connection")

	// Versioned CAS: get returns the value's version; CasPut applies only
	// if that version still stands, so concurrent increments never lose an
	// update — no locks, just retries on conflict.
	if _, ok, err := conn.CasPut([]byte("counter"), 0,
		[]wire.ColData{{Col: 0, Data: []byte("0")}}); err != nil || !ok {
		log.Fatalf("create counter: ok=%v err=%v", ok, err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for { // optimistic retry loop
					cols, ver, _, err := conn.Get([]byte("counter"), nil)
					if err != nil {
						log.Fatal(err)
					}
					var n int
					fmt.Sscanf(string(cols[0]), "%d", &n)
					_, ok, err := conn.CasPut([]byte("counter"), ver,
						[]wire.ColData{{Col: 0, Data: []byte(fmt.Sprint(n + 1))}})
					if err != nil {
						log.Fatal(err)
					}
					if ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	cols, _, _, err := conn.Get([]byte("counter"), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter after 4 goroutines x 25 CAS-increments: %s (no lost updates)\n", cols[0])
}
