package othersys

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"sort"

	"repro/internal/baseline/seqtree"
	"repro/internal/value"
)

// Voltlike models VoltDB as the paper ran it: data statically partitioned
// across single-threaded execution sites (four processes with four sites
// each = 16 executors; replication off), every operation running as a
// stored-procedure transaction. The client batches invocations (Figure 12),
// but each invocation still pays transaction dispatch: serialization of the
// procedure call into a command record, single-threaded execution at the
// owning site. Range queries work but must scatter-gather across sites,
// which is why VoltDB's getrange throughput lags its gets (§7).
type Voltlike struct {
	shards []*voltSite
}

type voltSite struct {
	tree *seqtree.Tree
	exec *shard
}

// NewVoltlike creates a store with the given number of execution sites.
func NewVoltlike(sites int) *Voltlike {
	v := &Voltlike{}
	for i := 0; i < sites; i++ {
		v.shards = append(v.shards, &voltSite{tree: seqtree.New(), exec: newShard()})
	}
	return v
}

// Name implements Batcher.
func (v *Voltlike) Name() string { return "voltdb-like" }

// SupportsRange implements Batcher.
func (v *Voltlike) SupportsRange() bool { return true }

// SupportsColumnPut implements Batcher (relational columns).
func (v *Voltlike) SupportsColumnPut() bool { return true }

func (v *Voltlike) siteFor(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32()) % len(v.shards)
}

// txnEncode serializes a stored-procedure invocation — the per-transaction
// command work every VoltDB operation performs.
func txnEncode(op *Op) []byte {
	out := make([]byte, 0, 24+len(op.Key))
	out = append(out, byte(op.Kind))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(op.Key)))
	out = append(out, op.Key...)
	for _, p := range op.Puts {
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Col))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Data)))
		out = append(out, p.Data...)
	}
	return out
}

// Exec implements Batcher: invocations group per site (client batching) and
// run serially at the owning site, one transaction each.
func (v *Voltlike) Exec(worker int, ops []Op) []Result {
	res := make([]Result, len(ops))
	type idxOp struct {
		i  int
		op *Op
	}
	bySite := map[int][]idxOp{}
	var scans []idxOp
	for i := range ops {
		op := &ops[i]
		if op.Kind == OpScan {
			scans = append(scans, idxOp{i, op})
			continue
		}
		s := v.siteFor(op.Key)
		bySite[s] = append(bySite[s], idxOp{i, op})
	}
	for s, batch := range bySite {
		site := v.shards[s]
		batch := batch
		site.exec.do(func() {
			for _, io := range batch {
				_ = txnEncode(io.op) // per-transaction command serialization
				switch io.op.Kind {
				case OpGet:
					val, ok := site.tree.Get(io.op.Key)
					if !ok {
						res[io.i] = Result{OK: false}
						continue
					}
					res[io.i] = Result{OK: true, Cols: pickCols(val, io.op.Cols)}
				case OpPut:
					site.tree.Update(io.op.Key, func(old *value.Value) *value.Value {
						return value.Apply(old, io.op.Puts)
					})
					res[io.i] = Result{OK: true}
				}
			}
		})
	}
	// Range queries: multi-partition transactions — scatter-gather.
	for _, io := range scans {
		res[io.i] = v.scanAll(io.op)
	}
	return res
}

func (v *Voltlike) scanAll(op *Op) Result {
	var all []Pair
	for _, site := range v.shards {
		site := site
		site.exec.do(func() {
			_ = txnEncode(op)
			cnt := 0
			site.tree.Scan(op.Key, func(k []byte, val *value.Value) bool {
				all = append(all, Pair{Key: append([]byte(nil), k...), Cols: pickCols(val, op.Cols)})
				cnt++
				return cnt < op.N // each site contributes at most N
			})
		})
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	if len(all) > op.N {
		all = all[:op.N]
	}
	return Result{OK: true, Pairs: all}
}

// Close implements Batcher.
func (v *Voltlike) Close() {
	for _, s := range v.shards {
		s.exec.close()
	}
}
