package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// crash simulates a crash: flush OS buffers but skip the clean-shutdown
// marks, leaving the logs exactly as a power failure after the last group
// commit would.
func crash(t *testing.T, s *Store) {
	t.Helper()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tear down without marks: close files directly via the wal set.
	close(s.stop)
	s.wg.Wait()
	if err := s.logs.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryConservativeCutoff(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	// Worker 0 logs ts 1..10 (keys a*), worker 1 logs nothing after its
	// early records; the tail beyond the slowest log's last timestamp must
	// be dropped.
	s.PutSimple(1, []byte("b0"), []byte("x")) // ts 1 on log 1
	for i := 0; i < 10; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("a%d", i)), []byte("y")) // ts 2..11 on log 0
	}
	crash(t, s)

	r := openDir(t, dir)
	defer r.Close()
	// Cutoff = min(last of log0=11, last of log1=1) = 1: only b0 survives.
	if r.Len() != 1 {
		t.Fatalf("recovered %d keys, want 1 (conservative cutoff)", r.Len())
	}
	if _, ok := r.Get([]byte("b0"), nil); !ok {
		t.Fatal("b0 lost")
	}
}

func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	for i := 0; i < 100; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	crash(t, s)

	// Tear the last few bytes off worker 0's log, as an interrupted write
	// would.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "log-0000") {
			p := filepath.Join(dir, e.Name())
			b, _ := os.ReadFile(p)
			os.WriteFile(p, b[:len(b)-7], 0o644)
		}
	}

	r := openDir(t, dir)
	defer r.Close()
	// The torn record (k099) is gone; everything before it survives.
	if r.Len() != 99 {
		t.Fatalf("recovered %d keys, want 99", r.Len())
	}
	if _, ok := r.Get([]byte("k099"), nil); ok {
		t.Fatal("torn record resurrected")
	}
}

func TestReopenAfterCleanCloseTwice(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	s.PutSimple(0, []byte("k"), []byte("v1"))
	s.Close()
	s2 := openDir(t, dir)
	s2.PutSimple(0, []byte("k"), []byte("v2"))
	s2.Close()
	s3 := openDir(t, dir)
	defer s3.Close()
	got, ok := s3.Get([]byte("k"), nil)
	if !ok || string(got[0]) != "v2" {
		t.Fatalf("after two generations: %q %v", got, ok)
	}
}

func TestRecoverySurvivesCheckpointPlusCrash(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	for i := 0; i < 200; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("k%03d", i)), []byte("pre"))
	}
	if _, _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("k%03d", i)), []byte("post"))
	}
	crash(t, s)

	r := openDir(t, dir)
	defer r.Close()
	if r.Len() != 200 {
		t.Fatalf("recovered %d keys", r.Len())
	}
	// Worker 1 logged nothing post-checkpoint, so its generation-2 log is
	// empty and does not constrain the cutoff; worker 0's updates survive.
	got, ok := r.Get([]byte("k000"), nil)
	if !ok || string(got[0]) != "post" {
		t.Fatalf("k000 = %q,%v want post", got, ok)
	}
	got, _ = r.Get([]byte("k100"), nil)
	if string(got[0]) != "pre" {
		t.Fatalf("k100 = %q want pre", got)
	}
}

func TestBackgroundFlushDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 1, FlushInterval: 2 * time.Millisecond, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s.PutSimple(0, []byte("k"), []byte("v"))
	time.Sleep(50 * time.Millisecond) // let the background flusher run
	// Simulate a hard crash with no explicit flush at all.
	close(s.stop)
	s.wg.Wait()
	s.logs.Close()

	r := openDir(t, dir)
	defer r.Close()
	if _, ok := r.Get([]byte("k"), nil); !ok {
		t.Fatal("update lost despite background flush")
	}
}
