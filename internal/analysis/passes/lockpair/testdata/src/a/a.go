// Package a is the lockpair golden fixture: a miniature border-node world
// with the same lock-discovery conventions as internal/core (a header type
// with lock/unlock/tryLock methods, node structs holding it in a field named
// h), exercising every diagnostic plus the clean idioms around each.
package a

import "errors"

var errFailed = errors.New("failed")

type nodeHeader struct {
	word uint32
}

func (h *nodeHeader) lock()         {}
func (h *nodeHeader) unlock()       {}
func (h *nodeHeader) tryLock() bool { return h.word == 0 }

type node struct {
	h    nodeHeader
	next *node
	val  int
}

// --- lock / unlock pairing ---

func balanced(n *node) { // clean: one lock, one unlock
	n.h.lock()
	n.val++
	n.h.unlock()
}

func double(n *node) {
	n.h.lock()
	n.h.lock() // want `double lock of n\.h`
	n.h.unlock()
}

func unheld(n *node) {
	n.h.unlock() // want `unlock of n\.h, which is not held`
}

func deferred(n *node) { // clean: deferred unlock credited at every exit
	n.h.lock()
	defer n.h.unlock()
	n.val++
}

// errPath drops its lock on the error return: the seeded missed-unlock bug.
func errPath(n *node, fail bool) error {
	n.h.lock()
	if fail {
		return errFailed // want `lock n\.h is not released on this return path`
	}
	n.h.unlock()
	return nil
}

// --- hand-over-hand transfer ---

func walk(n *node) { // clean: next.h renames to n.h through n = next
	n.h.lock()
	for n.next != nil {
		next := n.next
		next.h.lock()
		n.h.unlock()
		n = next
	}
	n.h.unlock()
}

func tryWalk(n *node) { // clean: tryLock acquires only on its true edge
	if n.h.tryLock() {
		n.h.unlock()
	}
}

// --- masstree:locked / masstree:unlocks contracts ---

// withLock mutates a node its caller locked.
//
//masstree:locked n
func withLock(n *node) {
	n.val++
}

// release consumes the caller's lock.
//
//masstree:unlocks n
func release(n *node) {
	n.h.unlock()
}

func useContracts(n *node) { // clean: contracts satisfied
	n.h.lock()
	withLock(n)
	release(n)
}

func badContracts(n *node) {
	withLock(n) // want `call to withLock requires n\.h held \(masstree:locked\)`
	release(n)  // want `call to release releases n\.h, which is not held`
}

// dropsContract violates its own contract: the lock must survive the call.
//
//masstree:locked n
func dropsContract(n *node) {
	n.h.unlock()
} // want `n\.h must be held at return \(masstree:locked\)`

// badName names a contract param that does not exist.
//
//masstree:locked q
func badName(n *node) { // want `masstree: contract names "q", which is not a lockable parameter`
	_ = n
}

// --- masstree:returns-locked ---

// newLocked returns a freshly locked node.
//
//masstree:returns-locked
func newLocked() *node {
	n := alloc()
	n.h.lock()
	return n
}

func useLocked() { // clean: nil-check resolves the conditional lock
	n := newLocked()
	if n != nil {
		n.h.unlock()
	}
}

func leak() {
	newLocked() // want `result of newLocked \(masstree:returns-locked\) discarded; the returned lock leaks`
}

// --- statement-level masstree:acquires / masstree:releases ---

func alloc() *node { return &node{} }

func constructorLocked() { // clean: the directive models the constructor's lock bit
	n := alloc() //masstree:acquires n.h
	n.h.unlock()
}

func stash(n *node) {}

var parked *node

func park(n *node) { // clean: the directive models a transfer the analyzer cannot see
	n.h.lock()
	stash(n) //masstree:releases n.h
}

// --- suppression ---

func suppressed(n *node) { // clean: the allow covers the unbalanced unlock
	n.h.unlock() //lint:allow lockpair fixture exercising the suppression path
}

// --- state explosion backstop ---

func use(ns ...*node) {}

func explode() { // want `lock state explosion; function not analyzed`
	v1 := newLocked()
	v2 := newLocked()
	v3 := newLocked()
	v4 := newLocked()
	v5 := newLocked()
	v6 := newLocked()
	v7 := newLocked()
	v8 := newLocked()
	v9 := newLocked()
	use(v1, v2, v3, v4, v5, v6, v7, v8, v9)
}
