package kvstore

import (
	"fmt"
	"testing"
)

// newAllocTestStore returns an in-memory store with background maintenance
// disabled, so AllocsPerRun measurements see only the operation under test.
func newAllocTestStore(t *testing.T, nkeys int) *Store {
	t.Helper()
	s, err := Open(Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for i := 0; i < nkeys; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("alloc-key-%06d", i)), []byte("column-zero-data"))
	}
	return s
}

// TestGetIntoAllocFree verifies the append-into read path allocates nothing
// in steady state, through both the store and an epoch-registered session.
func TestGetIntoAllocFree(t *testing.T) {
	s := newAllocTestStore(t, 1000)
	sess := s.Session(0)
	defer sess.Close()
	key := []byte("alloc-key-000123")
	cols := []int{0}
	dst := make([][]byte, 0, 4)

	allocs := testing.AllocsPerRun(200, func() {
		var ok bool
		dst, ok = sess.GetInto(key, cols, dst[:0])
		if !ok || len(dst) != 1 || string(dst[0]) != "column-zero-data" {
			t.Fatalf("GetInto: %q %v", dst, ok)
		}
	})
	if allocs != 0 {
		t.Fatalf("Session.GetInto allocates %.1f times per run, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(200, func() {
		var ok bool
		dst, ok = s.GetInto(key, nil, dst[:0])
		if !ok || len(dst) != 1 {
			t.Fatalf("GetInto all-cols: %q %v", dst, ok)
		}
	})
	if allocs != 0 {
		t.Fatalf("Store.GetInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestGetBatchIntoAllocFree verifies the session's batched lookup is
// allocation-free once its scratch has warmed to the batch size.
func TestGetBatchIntoAllocFree(t *testing.T) {
	s := newAllocTestStore(t, 1000)
	sess := s.Session(0)
	defer sess.Close()
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("alloc-key-%06d", i*13%1000))
	}

	allocs := testing.AllocsPerRun(200, func() {
		vals, found := sess.GetBatchInto(keys)
		for i := range keys {
			if !found[i] || vals[i] == nil {
				t.Fatalf("batch key %d missing", i)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Session.GetBatchInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestGetBatchMatchesGet pins the convenience wrapper's input-order results.
func TestGetBatchMatchesGet(t *testing.T) {
	s := newAllocTestStore(t, 100)
	sess := s.Session(0)
	defer sess.Close()
	keys := [][]byte{
		[]byte("alloc-key-000007"), []byte("no-such-key"), []byte("alloc-key-000099"),
	}
	out, found := sess.GetBatch(keys, nil)
	for i, k := range keys {
		cols, ok := sess.Get(k, nil)
		if ok != found[i] {
			t.Fatalf("key %q: found %v vs %v", k, found[i], ok)
		}
		if ok && string(out[i][0]) != string(cols[0]) {
			t.Fatalf("key %q: %q vs %q", k, out[i][0], cols[0])
		}
	}
}
