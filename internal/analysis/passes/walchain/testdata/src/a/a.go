// Package a is the walchain golden fixture: a miniature kvstore write path
// with the recognition conventions of the real one (tree write methods
// Update/Apply/PutBatchInto taking func literals, a version-drawing
// nextVersion method, a worker lock named lockWorker, and a WAL type named
// Writer with the chained append methods), exercising every diagnostic and
// the clean shapes.
package a

type Value struct{}

func (v *Value) Version() uint64 {
	if v == nil {
		return 0
	}
	return 1
}

type ColPut struct {
	Col  int
	Data []byte
}

type Tree struct{}

func (t *Tree) Update(key []byte, f func(*Value) *Value)               {}
func (t *Tree) Apply(key []byte, f func(*Value) *Value)                {}
func (t *Tree) PutBatchInto(keys [][]byte, f func(int, *Value) *Value) {}

type Writer struct{}

func (w *Writer) AppendPut(ts, prev uint64, key []byte, puts []ColPut)                            {}
func (w *Writer) AppendPutTTL(ts, prev uint64, key []byte, puts []ColPut, expiry uint64)          {}
func (w *Writer) AppendPutBatch(keys [][]byte, puts [][]ColPut, ts, prev []uint64, insert []bool) {}
func (w *Writer) AppendInsert(ts uint64, key []byte, puts []ColPut)                               {}

type Set struct{}

func (s *Set) Writer(i int) *Writer { return &Writer{} }

type mutex struct{}

func (m *mutex) Unlock() {}

type Store struct {
	tree *Tree
	logs *Set
}

func (s *Store) lockWorker(worker int) *mutex              { return &mutex{} }
func (s *Store) nextVersion(worker int, old *Value) uint64 { return 2 }

// goodPut is the canonical linked-put shape: prev and ver both drawn inside
// the Update callback, append under the worker lock.
func (s *Store) goodPut(worker int, key []byte, puts []ColPut) uint64 {
	mu := s.lockWorker(worker)
	defer mu.Unlock()
	var ver, prev uint64
	s.tree.Update(key, func(old *Value) *Value {
		prev = old.Version()
		ver = s.nextVersion(worker, old)
		return old
	})
	s.logs.Writer(worker).AppendPut(ver, prev, key, puts)
	return ver
}

// goodAnchor: the literal 0 is the one legal constant prev.
func (s *Store) goodAnchor(worker int, key []byte, puts []ColPut, expiry uint64) {
	mu := s.lockWorker(worker)
	defer mu.Unlock()
	var ver uint64
	s.tree.Apply(key, func(old *Value) *Value {
		ver = s.nextVersion(worker, old)
		return old
	})
	s.logs.Writer(worker).AppendPutTTL(ver, 0, key, puts, expiry)
}

type scratch struct {
	vers, prevs []uint64
	inserts     []bool
}

// goodBatch: scratch-rooted versions and prev links filled in the batch
// callback count as drawn under the border lock.
func (s *Store) goodBatch(worker int, keys [][]byte, puts [][]ColPut, sc *scratch) {
	mu := s.lockWorker(worker)
	defer mu.Unlock()
	s.tree.PutBatchInto(keys, func(i int, old *Value) *Value {
		sc.prevs[i] = old.Version()
		sc.vers[i] = s.nextVersion(worker, old)
		return old
	})
	s.logs.Writer(worker).AppendPutBatch(keys, puts, sc.vers, sc.prevs, sc.inserts)
}

// badPrevOutside reads the prev link before the critical section — the
// TOCTOU the chain invariant forbids.
func (s *Store) badPrevOutside(worker int, key []byte, puts []ColPut, cur *Value) {
	mu := s.lockWorker(worker)
	defer mu.Unlock()
	prev := cur.Version()
	var ver uint64
	s.tree.Update(key, func(old *Value) *Value {
		ver = s.nextVersion(worker, old)
		return old
	})
	s.logs.Writer(worker).AppendPut(ver, prev, key, puts) // want `prev link prev of AppendPut is not read in the border-lock critical section that draws the version`
}

// badNoLock appends outside the worker lock: nothing serializes the
// draw-to-append window against the next writer.
func (s *Store) badNoLock(worker int, key []byte, puts []ColPut) {
	var ver, prev uint64
	s.tree.Update(key, func(old *Value) *Value {
		prev = old.Version()
		ver = s.nextVersion(worker, old)
		return old
	})
	s.logs.Writer(worker).AppendPut(ver, prev, key, puts) // want `AppendPut without the worker lock: no lockWorker call precedes the append`
}

// badLiteralPrev forges a constant chain link.
func (s *Store) badLiteralPrev(worker int, key []byte, puts []ColPut) {
	mu := s.lockWorker(worker)
	defer mu.Unlock()
	var ver uint64
	s.tree.Update(key, func(old *Value) *Value {
		ver = s.nextVersion(worker, old)
		return old
	})
	s.logs.Writer(worker).AppendPut(ver, 7, key, puts) // want `constant prev 7 in AppendPut: only 0 \(a chain anchor\) may be a constant link`
}

// badVersionOutside draws the version outside any tree write, so it is
// unordered against the value it stamps — and the append's arguments are
// then both un-drawn.
func (s *Store) badVersionOutside(worker int, key []byte, puts []ColPut, cur *Value) {
	mu := s.lockWorker(worker)
	defer mu.Unlock()
	ver := s.nextVersion(worker, cur) // want `nextVersion outside a tree-write critical section`
	prev := cur.Version()
	s.tree.Update(key, func(old *Value) *Value { return old })
	s.logs.Writer(worker).AppendPut(ver, prev, key, puts) // want `version argument ver of AppendPut is not assigned in the border-lock critical section that draws it` `prev link prev of AppendPut is not read in the border-lock critical section that draws the version`
}

// goodAllowed: a deliberate exception carries an annotated reason.
func (s *Store) goodAllowed(worker int, key []byte, puts []ColPut, replayVer, replayPrev uint64) {
	mu := s.lockWorker(worker)
	defer mu.Unlock()
	//lint:allow walchain replay re-logs versions drawn by the original writer
	s.logs.Writer(worker).AppendPut(replayVer, replayPrev, key, puts)
}
