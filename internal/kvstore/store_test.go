package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/value"
)

func openMem(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func openDir(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, Workers: 2, FlushInterval: 5 * time.Millisecond, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBasicOps(t *testing.T) {
	s := openMem(t)
	s.PutSimple(0, []byte("k1"), []byte("v1"))
	got, ok := s.Get([]byte("k1"), nil)
	if !ok || string(got[0]) != "v1" {
		t.Fatalf("get: %v %v", got, ok)
	}
	if _, ok := s.Get([]byte("nope"), nil); ok {
		t.Fatal("phantom key")
	}
	if !s.Remove(0, []byte("k1")) {
		t.Fatal("remove failed")
	}
	if _, ok := s.Get([]byte("k1"), nil); ok {
		t.Fatal("key survived remove")
	}
}

func TestColumnOps(t *testing.T) {
	s := openMem(t)
	s.Put(0, []byte("k"), []value.ColPut{{Col: 0, Data: []byte("a")}, {Col: 2, Data: []byte("c")}})
	got, ok := s.Get([]byte("k"), []int{2, 0})
	if !ok || string(got[0]) != "c" || string(got[1]) != "a" {
		t.Fatalf("column get: %q %v", got, ok)
	}
	// Partial update keeps other columns.
	s.Put(0, []byte("k"), []value.ColPut{{Col: 0, Data: []byte("A")}})
	got, _ = s.Get([]byte("k"), nil)
	if string(got[0]) != "A" || string(got[2]) != "c" {
		t.Fatalf("after partial put: %q", got)
	}
}

func TestVersionsIncrease(t *testing.T) {
	s := openMem(t)
	v1 := s.PutSimple(0, []byte("k"), []byte("1"))
	v2 := s.PutSimple(0, []byte("k"), []byte("2"))
	v3 := s.PutSimple(1, []byte("other"), []byte("3"))
	if !(v1 < v2 && v2 < v3) {
		t.Fatalf("versions not increasing: %d %d %d", v1, v2, v3)
	}
}

func TestGetRange(t *testing.T) {
	s := openMem(t)
	for i := 0; i < 50; i++ {
		s.Put(0, []byte(fmt.Sprintf("key%03d", i)), []value.ColPut{
			{Col: 0, Data: []byte(fmt.Sprintf("a%d", i))},
			{Col: 1, Data: []byte(fmt.Sprintf("b%d", i))},
		})
	}
	pairs := s.GetRange([]byte("key010"), 5, []int{1})
	if len(pairs) != 5 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for i, p := range pairs {
		wantKey := fmt.Sprintf("key%03d", 10+i)
		if string(p.Key) != wantKey || string(p.Cols[0]) != fmt.Sprintf("b%d", 10+i) {
			t.Fatalf("pair %d = %q/%q", i, p.Key, p.Cols[0])
		}
	}
}

func TestRecoveryFromLogs(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	const n = 500
	maxSeen := uint64(0)
	for i := 0; i < n; i++ {
		v := s.PutSimple(i%2, []byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("v%d", i)))
		if v > maxSeen {
			maxSeen = v
		}
	}
	s.Remove(0, []byte("key0000"))
	if v := s.PutSimple(1, []byte("key0001"), []byte("updated")); v > maxSeen {
		maxSeen = v
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openDir(t, dir)
	defer r.Close()
	if r.Len() != n-1 {
		t.Fatalf("recovered %d keys, want %d", r.Len(), n-1)
	}
	if _, ok := r.Get([]byte("key0000"), nil); ok {
		t.Fatal("removed key resurrected")
	}
	got, ok := r.Get([]byte("key0001"), nil)
	if !ok || string(got[0]) != "updated" {
		t.Fatalf("key0001 = %q %v", got, ok)
	}
	for i := 2; i < n; i++ {
		k := []byte(fmt.Sprintf("key%04d", i))
		got, ok := r.Get(k, nil)
		if !ok || string(got[0]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("lost %q after recovery", k)
		}
	}
	// New writes must get versions above everything recovered (the sharded
	// clocks are seeded from the logs' maximum durable timestamp).
	v := r.PutSimple(0, []byte("fresh"), []byte("x"))
	if v <= maxSeen {
		t.Fatalf("clock not restored: new version %d <= pre-crash max %d", v, maxSeen)
	}
}

func TestRecoveryWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	for i := 0; i < 300; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("key%04d", i)), []byte("pre"))
	}
	if _, n, err := s.Checkpoint(); err != nil || n != 300 {
		t.Fatalf("checkpoint: n=%d err=%v", n, err)
	}
	// Post-checkpoint mutations live only in the logs.
	for i := 200; i < 400; i++ {
		s.PutSimple(1, []byte(fmt.Sprintf("key%04d", i)), []byte("post"))
	}
	s.Remove(0, []byte("key0000"))
	s.Close()

	r := openDir(t, dir)
	defer r.Close()
	if r.Len() != 399 {
		t.Fatalf("recovered %d keys, want 399", r.Len())
	}
	for i := 1; i < 400; i++ {
		k := []byte(fmt.Sprintf("key%04d", i))
		want := "pre"
		if i >= 200 {
			want = "post"
		}
		got, ok := r.Get(k, nil)
		if !ok || string(got[0]) != want {
			t.Fatalf("%q = %q,%v want %q", k, got, ok, want)
		}
	}
}

func TestCheckpointDuringWrites(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			s.PutSimple(0, []byte(fmt.Sprintf("bg%05d", i)), []byte("x"))
		}
	}()
	for i := 0; i < 3; i++ {
		if _, _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	s.Close()

	r := openDir(t, dir)
	defer r.Close()
	if r.Len() != 2000 {
		t.Fatalf("recovered %d keys, want 2000", r.Len())
	}
	for i := 0; i < 2000; i++ {
		if _, ok := r.Get([]byte(fmt.Sprintf("bg%05d", i)), nil); !ok {
			t.Fatalf("lost bg%05d", i)
		}
	}
}

// TestRecoveryRemoveReinsert checks version ordering across remove and
// re-insert of the same key (the global counter makes replay unambiguous).
func TestRecoveryRemoveReinsert(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	s.PutSimple(0, []byte("k"), []byte("first"))
	s.Remove(1, []byte("k"))
	s.PutSimple(0, []byte("k"), []byte("second"))
	s.Remove(1, []byte("k"))
	s.PutSimple(0, []byte("k"), []byte("third"))
	s.Close()

	r := openDir(t, dir)
	defer r.Close()
	got, ok := r.Get([]byte("k"), nil)
	if !ok || string(got[0]) != "third" {
		t.Fatalf("k = %q,%v want third", got, ok)
	}
}

// TestRecoveryPartialColumns checks that column deltas replay correctly.
func TestRecoveryPartialColumns(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	s.Put(0, []byte("k"), []value.ColPut{{Col: 0, Data: []byte("a")}, {Col: 1, Data: []byte("b")}})
	s.Put(1, []byte("k"), []value.ColPut{{Col: 1, Data: []byte("B")}})
	s.Put(0, []byte("k"), []value.ColPut{{Col: 2, Data: []byte("c")}})
	s.Close()

	r := openDir(t, dir)
	defer r.Close()
	got, ok := r.Get([]byte("k"), nil)
	if !ok || len(got) != 3 {
		t.Fatalf("k = %q,%v", got, ok)
	}
	if string(got[0]) != "a" || string(got[1]) != "B" || string(got[2]) != "c" {
		t.Fatalf("columns after recovery: %q", got)
	}
}

func TestSessionOps(t *testing.T) {
	s := openMem(t)
	ss := s.Session(0)
	defer ss.Close()
	ss.PutSimple([]byte("k"), []byte("v"))
	got, ok := ss.Get([]byte("k"), nil)
	if !ok || !bytes.Equal(got[0], []byte("v")) {
		t.Fatal("session get failed")
	}
	if !ss.Remove([]byte("k")) {
		t.Fatal("session remove failed")
	}
	if pairs := ss.GetRange(nil, 10, nil); len(pairs) != 0 {
		t.Fatalf("range after remove: %v", pairs)
	}
}

func TestCheckpointReclaimsLogs(t *testing.T) {
	dir := t.TempDir()
	s := openDir(t, dir)
	for i := 0; i < 100; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	s.Flush()
	if _, _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Only the current (post-rotation) generation of logs should remain,
	// and it should be nearly empty.
	r := openDir(t, dir)
	defer r.Close()
	if r.Len() != 100 {
		t.Fatalf("recovered %d keys", r.Len())
	}
}

func TestMaintainLoopCollapsesLayers(t *testing.T) {
	s, err := Open(Config{MaintainEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.PutSimple(0, []byte("01234567AB"), []byte("1"))
	s.PutSimple(0, []byte("01234567XY"), []byte("2"))
	s.Remove(0, []byte("01234567AB"))
	s.Remove(0, []byte("01234567XY"))
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().LayerCollapses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("maintenance loop never collapsed the empty layer")
		}
		time.Sleep(time.Millisecond)
	}
}
