package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestDecimalKeyShape(t *testing.T) {
	g := Decimal(1)
	longCount := 0
	const n = 10000
	for i := 0; i < n; i++ {
		k := g.Next()
		if len(k) < 1 || len(k) > 10 {
			t.Fatalf("decimal key length %d out of range: %q", len(k), k)
		}
		for _, c := range k {
			if c < '0' || c > '9' {
				t.Fatalf("non-digit in decimal key %q", k)
			}
		}
		if len(k) >= 9 {
			longCount++
		}
	}
	// §6.1 says ~80% of keys are 9-10 bytes; exact math for uniform
	// [0, 2^31) gives ~95%. Either way, most keys must be longer than
	// 8 bytes so that layer-1 trees are created.
	frac := float64(longCount) / n
	if frac < 0.7 {
		t.Fatalf("9-10 byte fraction = %.2f, expected most keys > 8 bytes", frac)
	}
}

func TestDecimalDeterministic(t *testing.T) {
	a, b := Decimal(7), Decimal(7)
	for i := 0; i < 100; i++ {
		if !bytes.Equal(a.Next(), b.Next()) {
			t.Fatal("same seed must give same stream")
		}
	}
	c := Decimal(8)
	same := 0
	a2 := Decimal(7)
	for i := 0; i < 100; i++ {
		if bytes.Equal(a2.Next(), c.Next()) {
			same++
		}
	}
	if same > 10 {
		t.Fatal("different seeds should give different streams")
	}
}

func TestFixed8Decimal(t *testing.T) {
	g := Fixed8Decimal(3)
	for i := 0; i < 1000; i++ {
		if k := g.Next(); len(k) != 8 {
			t.Fatalf("key %q not 8 bytes", k)
		}
	}
}

func TestPrefixed(t *testing.T) {
	for _, l := range []int{8, 16, 24, 48} {
		g := Prefixed(1, l)
		k1 := g.Next()
		k2 := g.Next()
		if len(k1) != l || len(k2) != l {
			t.Fatalf("length %d: got %d/%d", l, len(k1), len(k2))
		}
		if !bytes.Equal(k1[:l-8], k2[:l-8]) {
			t.Fatal("prefixes must be identical")
		}
	}
}

func TestPrefixedPanicsOnShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Prefixed(1, 7)
}

func TestAlpha8(t *testing.T) {
	g := Alpha8(2)
	for i := 0; i < 1000; i++ {
		k := g.Next()
		if len(k) != 8 {
			t.Fatalf("key %q not 8 bytes", k)
		}
		for _, c := range k {
			if c < 'a' || c > 'z' {
				t.Fatalf("non-alpha byte in %q", k)
			}
		}
	}
}

func TestSequential(t *testing.T) {
	g := Sequential("seq")
	prev := g.Next()
	for i := 0; i < 100; i++ {
		k := g.Next()
		if bytes.Compare(prev, k) >= 0 {
			t.Fatalf("not increasing: %q then %q", prev, k)
		}
		prev = k
	}
}

func TestUniqueKeys(t *testing.T) {
	ks := UniqueKeys(DecimalN(1, 500), 300)
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[string(k)] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[string(k)] = true
	}
	if len(ks) != 300 {
		t.Fatalf("got %d keys", len(ks))
	}
}

func TestZipfBounds(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := uint64(nRaw%1000) + 1
		z := NewZipf(seed, n, YCSBTheta)
		for i := 0; i < 200; i++ {
			if v := z.Next(); v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestZipfSkewShape: item 0 must be drawn far more often than the median
// item, and the head must carry a large share of the mass.
func TestZipfSkewShape(t *testing.T) {
	const n = 1000
	z := NewZipf(42, n, YCSBTheta)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[n/2]*10 {
		t.Fatalf("item 0 drawn %d times, median item %d: not zipfian", counts[0], counts[n/2])
	}
	head := 0
	for i := 0; i < n/100; i++ { // top 1%
		head += counts[i]
	}
	if frac := float64(head) / draws; frac < 0.15 {
		t.Fatalf("top 1%% carries only %.2f of mass", frac)
	}
}

func TestZipfKeysValid(t *testing.T) {
	g := ZipfKeys(1, 10000)
	for i := 0; i < 1000; i++ {
		k := g.Next()
		if !bytes.HasPrefix(k, []byte("user")) {
			t.Fatalf("bad record key %q", k)
		}
		if len(k) < 5 || len(k) > 24 {
			t.Fatalf("record key length %d out of the paper's 5-24 range", len(k))
		}
	}
}

func TestPartitionSkewShares(t *testing.T) {
	// §6.6: at delta = 9 with 16 partitions, the hot partition receives 40%
	// of requests and each other partition 4%.
	s := NewPartitionSkew(1, 16, 9)
	if got := s.HotShare(); math.Abs(got-0.40) > 1e-9 {
		t.Fatalf("hot share = %f, want 0.40", got)
	}
	counts := make([]int, 16)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.Next()]++
	}
	hot := float64(counts[15]) / draws
	if math.Abs(hot-0.40) > 0.02 {
		t.Fatalf("empirical hot share = %.3f", hot)
	}
	for i := 0; i < 15; i++ {
		if f := float64(counts[i]) / draws; math.Abs(f-0.04) > 0.01 {
			t.Fatalf("partition %d share = %.3f, want 0.04", i, f)
		}
	}
}

func TestPartitionSkewUniform(t *testing.T) {
	s := NewPartitionSkew(1, 4, 0)
	counts := make([]int, 4)
	for i := 0; i < 100000; i++ {
		counts[s.Next()]++
	}
	for i, c := range counts {
		if f := float64(c) / 100000; math.Abs(f-0.25) > 0.02 {
			t.Fatalf("partition %d share %.3f under delta=0", i, f)
		}
	}
}
