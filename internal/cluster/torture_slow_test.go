//go:build slowtest

package cluster

import (
	"testing"
	"time"
)

// TestPartitionTortureExhaustive runs every fault in the menu against every
// node in turn — blackhole partition, connection-refusing dead process,
// sub-timeout latency, orphaned frozen flows, mid-stream byte truncation,
// and a full process kill-and-rebirth — under continuous load, with hedged
// reads armed so the hedge path is tortured too. The same invariants as the
// base schedule are checked throughout and at the end: no acked write lost,
// no wrong-shard reply, bounded goroutines, every victim rejoining without
// a client restart.
func TestPartitionTortureExhaustive(t *testing.T) {
	faults := []struct {
		name  string
		apply func(tor *torture, v int)
		heal  func(tor *torture, v int)
	}{
		{"blackhole",
			func(tor *torture, v int) { tor.proxies[v].Blackhole() },
			func(tor *torture, v int) { tor.proxies[v].Heal() }},
		{"refuse",
			func(tor *torture, v int) { tor.proxies[v].Refuse() },
			func(tor *torture, v int) { tor.proxies[v].Heal() }},
		{"latency",
			func(tor *torture, v int) { tor.proxies[v].SetLatency(30 * time.Millisecond) },
			func(tor *torture, v int) { tor.proxies[v].Heal() }},
		{"freeze",
			func(tor *torture, v int) { tor.proxies[v].FreezeConns() },
			func(tor *torture, v int) { tor.proxies[v].Heal() }},
		{"truncate",
			func(tor *torture, v int) { tor.proxies[v].TruncateAfter(4096) },
			func(tor *torture, v int) { tor.proxies[v].Heal() }},
		{"kill-rebirth",
			func(tor *torture, v int) { tor.rebirth(v) },
			func(tor *torture, v int) {}},
	}

	tor := newTorture(t, 6, 5, func(c *Config) { c.HedgeAfter = 60 * time.Millisecond })
	tor.start()
	tor.run(200 * time.Millisecond) // clean baseline

	for v := range tor.nodes {
		for _, f := range faults {
			t.Logf("fault %s on node %d", f.name, v)
			f.apply(tor, v)
			tor.run(400 * time.Millisecond)
			f.heal(tor, v)
			tor.waitUp(v)
			tor.run(150 * time.Millisecond)
		}
	}

	tor.finish()

	st := tor.cl.ClusterStats()
	if st.Failovers != 0 {
		t.Errorf("failovers=%d with ReadFailover off — a read was answered by a non-owner", st.Failovers)
	}
	for v, ns := range st.Nodes {
		if ns.Trips == 0 {
			t.Errorf("node %d survived the whole schedule without tripping — faults not biting", v)
		}
	}
	t.Logf("exhaustive torture: trips=[%d %d %d] hedges=%d hedge_wins=%d peak_goroutines=%d (baseline %d)",
		st.Nodes[0].Trips, st.Nodes[1].Trips, st.Nodes[2].Trips,
		st.Hedges, st.HedgeWins, tor.maxG.Load(), tor.baseline)
}
