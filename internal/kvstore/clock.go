package kvstore

import "sync/atomic"

// shardedClock implements the paper's loosely synchronized per-worker
// version clocks (§5.1). The old design drew every version and log
// timestamp from one global atomic counter — a single cache line bounced
// between all writing cores on every put, which serialized the write path
// long before the tree did. Here each worker ticks its own cache-line-
// padded clock, so a steady-state put touches no shared clock state at all.
//
// The recovery invariant that matters is per key, not global: a key's
// updates must carry strictly increasing timestamps so log replay can apply
// them in version order (§5). tick guarantees that by lifting the worker's
// clock past a floor the caller derives under the owning border node's
// lock — the replaced value's version for updates and removes, and
// removeFloor for fresh inserts (see below). Values are worker-tagged
// (value.Worker) so merged logs can attribute a version to the clock that
// issued it.
//
// Clocks are "loosely synchronized": the store's maintenance loop
// periodically lifts every shard to the global maximum, so an idle worker's
// log timestamps do not fall arbitrarily behind and recovery's cutoff
// t = min over logs of the log's maximum durable timestamp stays fresh.
type shardedClock struct {
	shards []clockShard

	// removeFloor is the maximum version any remove has consumed. The tree
	// retains no memory of a removed key's last version, so a re-insert on a
	// cold worker clock could otherwise be assigned a version below the
	// remove's log timestamp and replay in the wrong order (resurrecting the
	// remove). Removes are the only writers; puts of existing keys never
	// touch it; inserts only load it — a read-mostly line that stays in
	// every core's cache, not the per-put RMW the global clock was.
	removeFloor atomic.Uint64
}

// clockShard pads each worker's clock to a cache line so neighboring
// workers' ticks do not false-share.
type clockShard struct {
	c atomic.Uint64
	_ [56]byte
}

func newShardedClock(workers int) *shardedClock {
	if workers < 1 {
		workers = 1
	}
	return &shardedClock{shards: make([]clockShard, workers)}
}

// tick returns the next version for worker w: one past both the worker's
// clock and floor. The CAS loop only contends when two sessions share a
// worker id; a dedicated worker's tick is an uncontended RMW on its own
// cache line.
func (c *shardedClock) tick(w int, floor uint64) uint64 {
	sh := &c.shards[w%len(c.shards)]
	for {
		cur := sh.c.Load()
		next := cur + 1
		if next <= floor {
			next = floor + 1
		}
		if sh.c.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// noteRemove lifts removeFloor to at least ver after a remove consumed it.
func (c *shardedClock) noteRemove(ver uint64) {
	for {
		cur := c.removeFloor.Load()
		if cur >= ver || c.removeFloor.CompareAndSwap(cur, ver) {
			return
		}
	}
}

// max returns the largest version issued so far (checkpoint start
// timestamps, shutdown marks).
func (c *shardedClock) max() uint64 {
	m := c.removeFloor.Load()
	for i := range c.shards {
		if v := c.shards[i].c.Load(); v > m {
			m = v
		}
	}
	return m
}

// seed lifts every shard and the remove floor to at least v; recovery uses
// it so fresh versions exceed everything replayed from disk.
func (c *shardedClock) seed(v uint64) {
	for i := range c.shards {
		c.lift(&c.shards[i], v)
	}
	c.noteRemove(v)
}

// synchronize is the periodic loose synchronization (§5.1): lift every
// shard to the current global maximum, returned for mark-writing.
func (c *shardedClock) synchronize() uint64 {
	m := c.max()
	c.seed(m)
	return m
}

func (c *shardedClock) lift(sh *clockShard, v uint64) {
	for {
		cur := sh.c.Load()
		if cur >= v || sh.c.CompareAndSwap(cur, v) {
			return
		}
	}
}
