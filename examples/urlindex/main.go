// URL index: the paper's motivating Bigtable-style workload (§1) — web-page
// metadata stored under permuted URL keys like
// "edu.harvard.seas.www/news-events", which group a domain's pages together
// so range queries can traverse one site. Such keys have long shared
// prefixes, the case Masstree's trie-of-trees design targets.
//
//	go run ./examples/urlindex
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/kvstore"
	"repro/internal/value"
)

// permute converts host/path into a permuted-host key: reversed host labels
// grouped before the path, exactly like Bigtable's row keys.
func permute(url string) string {
	host, path, _ := strings.Cut(url, "/")
	labels := strings.Split(host, ".")
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	return strings.Join(labels, ".") + "/" + path
}

func main() {
	store, err := kvstore.Open(kvstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	pages := map[string][2]string{ // url -> (title, content-type)
		"www.seas.harvard.edu/news-events":   {"News & Events", "text/html"},
		"www.seas.harvard.edu/academics":     {"Academics", "text/html"},
		"www.seas.harvard.edu/about":         {"About SEAS", "text/html"},
		"www.harvard.edu/":                   {"Harvard University", "text/html"},
		"api.harvard.edu/v1/courses":         {"Course API", "application/json"},
		"www.mit.edu/":                       {"MIT", "text/html"},
		"csail.mit.edu/research":             {"CSAIL Research", "text/html"},
		"pdos.csail.mit.edu/papers/masstree": {"Masstree paper", "application/pdf"},
		"pdos.csail.mit.edu/papers/silo":     {"Silo paper", "application/pdf"},
	}
	for url, meta := range pages {
		store.Put(0, []byte(permute(url)), []value.ColPut{
			{Col: 0, Data: []byte(meta[0])},
			{Col: 1, Data: []byte(meta[1])},
			{Col: 2, Data: []byte(url)},
		})
	}

	// Range query: everything under *.harvard.edu, in key order. The shared
	// "edu.harvard." prefix means these keys co-locate in the trie.
	fmt.Println("pages under edu.harvard.*:")
	for _, p := range store.GetRange([]byte("edu.harvard."), 100, []int{0, 2}) {
		if !strings.HasPrefix(string(p.Key), "edu.harvard.") {
			break
		}
		fmt.Printf("  %-40s %s\n", p.Key, p.Cols[0])
	}

	// Narrower range: one host's pages.
	fmt.Println("pages under edu.mit.csail.pdos (papers site):")
	for _, p := range store.GetRange([]byte("edu.mit.csail.pdos/"), 100, []int{0}) {
		if !strings.HasPrefix(string(p.Key), "edu.mit.csail.pdos/") {
			break
		}
		fmt.Printf("  %-40s %s\n", p.Key, p.Cols[0])
	}

	// Point lookup by original URL.
	k := permute("pdos.csail.mit.edu/papers/masstree")
	cols, _ := store.Get([]byte(k), []int{0, 1})
	fmt.Printf("lookup %q -> title=%q type=%q\n", k, cols[0], cols[1])

	fmt.Printf("tree stats: %+v\n", store.Stats())
}
