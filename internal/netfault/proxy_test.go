package netfault

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes lines back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				r := bufio.NewReader(c)
				for {
					line, err := r.ReadBytes('\n')
					if len(line) > 0 {
						if _, werr := c.Write(line); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func dialEcho(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, bufio.NewReader(c)
}

func roundTrip(t *testing.T, c net.Conn, r *bufio.Reader, msg string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c, "%s\n", msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return line[:len(line)-1]
}

func TestProxyForwards(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, r := dialEcho(t, p.Addr())
	if got := roundTrip(t, c, r, "hello"); got != "hello" {
		t.Fatalf("echo %q", got)
	}
}

func TestProxyLatency(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, r := dialEcho(t, p.Addr())
	roundTrip(t, c, r, "warm")
	p.SetLatency(50 * time.Millisecond)
	start := time.Now()
	roundTrip(t, c, r, "slow")
	// Two delayed hops (request + response) ≥ 100ms.
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Fatalf("latency fault not applied: round trip took %v", el)
	}
	p.Heal()
	start = time.Now()
	roundTrip(t, c, r, "fast")
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("heal did not clear latency: round trip took %v", el)
	}
}

// Blackhole freezes existing connections (writes succeed, nothing comes
// back) and silently accepts new ones that never answer.
func TestProxyBlackhole(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, r := dialEcho(t, p.Addr())
	roundTrip(t, c, r, "alive")
	p.Blackhole()
	if _, err := fmt.Fprintf(c, "into the void\n"); err != nil {
		t.Fatalf("write into blackhole should succeed at TCP level: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("read from blackholed conn returned data")
	}
	// A new dial is accepted (SYN completes) but never serviced.
	c2, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatalf("blackholed proxy must still accept: %v", err)
	}
	defer c2.Close()
	fmt.Fprintf(c2, "anyone?\n")
	c2.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := bufio.NewReader(c2).ReadString('\n'); err == nil {
		t.Fatal("blackholed proxy answered a new connection")
	}
	// Heal: new connections work again (the frozen ones stay dead).
	p.Heal()
	c3, r3 := dialEcho(t, p.Addr())
	if got := roundTrip(t, c3, r3, "healed"); got != "healed" {
		t.Fatalf("after heal: %q", got)
	}
}

func TestProxyRefuse(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, r := dialEcho(t, p.Addr())
	roundTrip(t, c, r, "alive")
	p.Refuse()
	// The existing connection was reset: the next read fails fast.
	c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("read on refused conn returned data")
	}
	// New connections are reset immediately, not hung.
	c2, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err == nil {
		defer c2.Close()
		c2.SetReadDeadline(time.Now().Add(time.Second))
		one := make([]byte, 1)
		if _, err := c2.Read(one); err == nil {
			t.Fatal("refused proxy delivered data")
		} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			t.Fatal("refused connection hung instead of resetting")
		}
	}
}

func TestProxyTruncate(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, r := dialEcho(t, p.Addr())
	// Budget lets the request (6 bytes) through and cuts the response after
	// 2 bytes: "tr" arrives, then the connection dies mid-message.
	p.TruncateAfter(6 + 2)
	if _, err := fmt.Fprintf(c, "trunc\n"); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := io.ReadAll(r)
	if err == nil && len(got) >= 6 {
		t.Fatalf("truncation did not cut the stream: got %q", got)
	}
	if len(got) > 2 {
		t.Fatalf("more bytes than the budget leaked through: %q", got)
	}
}

func TestProxySetTarget(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, r := dialEcho(t, p.Addr())
	roundTrip(t, c, r, "first incarnation")
	// Kill the node: retarget to a fresh listener (the old one keeps
	// running here; real harnesses close it) and verify new conns reach it.
	p.SetTarget(echoServer(t))
	c2, r2 := dialEcho(t, p.Addr())
	if got := roundTrip(t, c2, r2, "second incarnation"); got != "second incarnation" {
		t.Fatalf("retarget: %q", got)
	}
}
