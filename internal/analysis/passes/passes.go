// Package passes registers the masstree-lint analyzer suite.
package passes

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/atomicfield"
	"repro/internal/analysis/passes/epochguard"
	"repro/internal/analysis/passes/lockpair"
	"repro/internal/analysis/passes/noalloc"
	"repro/internal/analysis/passes/scratchalias"
	"repro/internal/analysis/passes/walchain"
)

// All returns every analyzer in the suite, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockpair.Analyzer,
		epochguard.Analyzer,
		noalloc.Analyzer,
		scratchalias.Analyzer,
		atomicfield.Analyzer,
		walchain.Analyzer,
	}
}
