package workload

import "math/rand"

// PartitionSkew models request skew across partitions with the single
// parameter delta of Hua and Lee, as used in §6.6: with P partitions,
// P-1 of them receive the same number of requests while the last receives
// delta times more than the others. At delta = 9 with 16 partitions, the hot
// partition handles 40% of requests and every other partition 4%.
type PartitionSkew struct {
	rng        *rand.Rand
	partitions int
	hotWeight  float64 // probability of the hot partition (index partitions-1)
}

// NewPartitionSkew creates a chooser over the given number of partitions.
// delta = 0 is uniform. Negative deltas panic.
func NewPartitionSkew(seed int64, partitions int, delta float64) *PartitionSkew {
	if partitions <= 0 {
		panic("workload: partitions must be positive")
	}
	if delta < 0 {
		panic("workload: delta must be non-negative")
	}
	// Weights: P-1 partitions get weight 1, the hot one gets 1 + delta.
	total := float64(partitions-1) + 1 + delta
	return &PartitionSkew{
		rng:        rand.New(rand.NewSource(seed)),
		partitions: partitions,
		hotWeight:  (1 + delta) / total,
	}
}

// Next returns the partition index for the next request. The hot partition
// is index partitions-1.
func (s *PartitionSkew) Next() int {
	if s.rng.Float64() < s.hotWeight {
		return s.partitions - 1
	}
	if s.partitions == 1 {
		return 0
	}
	return s.rng.Intn(s.partitions - 1)
}

// HotShare returns the fraction of requests the hot partition receives.
func (s *PartitionSkew) HotShare() float64 { return s.hotWeight }
