// Package value implements Masstree's value objects (§4.7 of the paper).
//
// A Value is a version number plus an array of variable-length byte strings
// called columns. Values are immutable once published: a put that modifies a
// subset of columns builds a fresh Value, copying unmodified columns from the
// old object, and swings a single pointer. Concurrent readers therefore see
// either all or none of a multi-column put.
//
// Sequential updates to a value obtain distinct, increasing version numbers;
// the version is written to the log and used during recovery to apply a
// value's updates in order (§5).
package value

import "fmt"

// Value is an immutable multi-column value. The zero Value has no columns.
//
// Values must not be mutated after they are published to a shared data
// structure; all update paths go through Apply, which copies.
type Value struct {
	version uint64
	cols    [][]byte
}

// ColPut describes a modification of one column.
type ColPut struct {
	Col  int    // column index, >= 0
	Data []byte // new column contents (retained; caller must not mutate)
}

// New returns a fresh Value with version 1 holding the given columns.
// The column slices are retained, not copied.
func New(cols ...[]byte) *Value {
	return &Value{version: 1, cols: cols}
}

// NewAt is New with an explicit version, used by log replay and checkpoint
// loading to reconstruct the exact pre-crash version numbers.
func NewAt(version uint64, cols ...[]byte) *Value {
	return &Value{version: version, cols: cols}
}

// Version returns the value's update version number.
func (v *Value) Version() uint64 {
	if v == nil {
		return 0
	}
	return v.version
}

// NumCols returns the number of columns.
func (v *Value) NumCols() int {
	if v == nil {
		return 0
	}
	return len(v.cols)
}

// Col returns column i, or nil if the column does not exist.
// The returned slice must not be mutated.
func (v *Value) Col(i int) []byte {
	if v == nil || i < 0 || i >= len(v.cols) {
		return nil
	}
	return v.cols[i]
}

// Cols returns all columns. The returned slice and its elements must not be
// mutated.
func (v *Value) Cols() [][]byte {
	if v == nil {
		return nil
	}
	return v.cols
}

// Bytes returns column 0; it is the natural accessor for single-column
// values, which is how simple get/put workloads use the store.
func (v *Value) Bytes() []byte { return v.Col(0) }

// Apply returns a new Value with the given column modifications applied and
// the version advanced past old's. old may be nil (pure insert). Unmodified
// columns are shared structurally with old, which is safe because values are
// immutable. Column indexes beyond the current width grow the column array;
// intervening columns are empty.
func Apply(old *Value, puts []ColPut) *Value {
	width := old.NumCols()
	for _, p := range puts {
		if p.Col < 0 {
			panic(fmt.Sprintf("value: negative column index %d", p.Col))
		}
		if p.Col+1 > width {
			width = p.Col + 1
		}
	}
	cols := make([][]byte, width)
	copy(cols, old.Cols())
	for _, p := range puts {
		cols[p.Col] = p.Data
	}
	return &Value{version: old.Version() + 1, cols: cols}
}

// ApplyAt is Apply with an explicit new version, used by log replay.
func ApplyAt(old *Value, puts []ColPut, version uint64) *Value {
	nv := Apply(old, puts)
	nv.version = version
	return nv
}

// Equal reports whether two values have identical columns (versions are not
// compared). Used by tests.
func Equal(a, b *Value) bool {
	if a.NumCols() != b.NumCols() {
		return false
	}
	for i := 0; i < a.NumCols(); i++ {
		if string(a.Col(i)) != string(b.Col(i)) {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer for debugging.
func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("v%d%q", v.version, v.cols)
}
