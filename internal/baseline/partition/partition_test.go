package partition

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/value"
)

func TestBasicRouting(t *testing.T) {
	s := New(4, 8)
	defer s.Close()
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key%04d", i))
		s.Put(k, value.New(k))
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key%04d", i))
		v, ok := s.Get(k)
		if !ok || string(v.Bytes()) != string(k) {
			t.Fatalf("lost %q", k)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("len %d", s.Len())
	}
	if !s.Remove([]byte("key0000")) {
		t.Fatal("remove failed")
	}
	if _, ok := s.Get([]byte("key0000")); ok {
		t.Fatal("key survived remove")
	}
}

func TestBatches(t *testing.T) {
	s := New(2, 4)
	defer s.Close()
	ops := make([]Op, 100)
	for i := range ops {
		k := []byte(fmt.Sprintf("b%03d", i))
		ops[i] = Op{Kind: OpPut, Key: k, Value: value.New(k)}
	}
	s.Do(0, ops)
	gets := make([]Op, 100)
	for i := range gets {
		gets[i] = Op{Kind: OpGet, Key: []byte(fmt.Sprintf("b%03d", i))}
	}
	res := s.Do(0, gets)
	for i, r := range res {
		if !r.OK || string(r.Value.Bytes()) != fmt.Sprintf("b%03d", i) {
			t.Fatalf("batch get %d failed", i)
		}
	}
	// Partition 1 never saw these keys.
	res = s.Do(1, gets[:1])
	if res[0].OK {
		t.Fatal("key leaked across partitions")
	}
}

func TestConcurrentClients(t *testing.T) {
	s := New(4, 16)
	defer s.Close()
	var wg sync.WaitGroup
	const clients, per = 8, 500
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("c%d-%04d", c, i))
				s.Put(k, value.New(k))
			}
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("c%d-%04d", c, i))
				if v, ok := s.Get(k); !ok || string(v.Bytes()) != string(k) {
					t.Errorf("lost %q", k)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if s.Len() != clients*per {
		t.Fatalf("len %d want %d", s.Len(), clients*per)
	}
}

func TestPartitionForStable(t *testing.T) {
	s := New(8, 4)
	defer s.Close()
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		p1 := s.PartitionFor(k)
		p2 := s.PartitionFor(k)
		if p1 != p2 || p1 < 0 || p1 >= 8 {
			t.Fatalf("unstable partition for %q: %d vs %d", k, p1, p2)
		}
	}
}
