// Command masstree-server runs the Masstree key-value server (§3, §5): a
// TCP server over a persistent in-memory Masstree with per-worker
// group-commit logging and periodic checkpoints. On startup it recovers
// from the newest valid checkpoint plus logs in -data.
//
// Usage:
//
//	masstree-server -listen :7500 -data /var/lib/masstree -workers 4 \
//	    -checkpoint-every 5m -checkpoint-parts 8 -sync
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/kvstore"
	"repro/internal/server"
)

func main() {
	var (
		listen    = flag.String("listen", ":7500", "TCP listen address")
		data      = flag.String("data", "", "persistence directory (empty = in-memory only)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "log streams / logical workers")
		syncWr    = flag.Bool("sync", false, "fsync logs on each group commit")
		flushMs   = flag.Duration("flush", 200*time.Millisecond, "log flush interval (group commit bound)")
		ckptEvery = flag.Duration("checkpoint-every", 0, "checkpoint period (0 = manual only)")
		ckptParts = flag.Int("checkpoint-parts", runtime.GOMAXPROCS(0),
			"concurrent checkpoint part writers (disjoint key ranges; recovery loads parts in parallel)")
		maxBytes = flag.Int64("max-bytes", 0,
			"cache mode: bound accounted live bytes (packed value sizes), evicting S3-FIFO-style; 0 = unbounded")
	)
	flag.Parse()

	store, err := kvstore.Open(kvstore.Config{
		Dir:             *data,
		Workers:         *workers,
		FlushInterval:   *flushMs,
		SyncWrites:      *syncWr,
		CheckpointParts: *ckptParts,
		MaxBytes:        int(*maxBytes),
	})
	if err != nil {
		log.Fatalf("masstree-server: open store: %v", err)
	}
	if *maxBytes > 0 {
		log.Printf("masstree-server: cache mode, max-bytes=%d", *maxBytes)
	}
	log.Printf("masstree-server: recovered %d keys", store.Len())

	srv := server.New(store, *workers)
	if err := srv.Listen(*listen); err != nil {
		log.Fatalf("masstree-server: listen: %v", err)
	}
	log.Printf("masstree-server: serving on %s (%d workers, data=%q)", srv.Addr(), *workers, *data)

	stopCkpt := make(chan struct{})
	if *ckptEvery > 0 && *data != "" {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					start := time.Now()
					if _, n, err := store.Checkpoint(); err != nil {
						log.Printf("masstree-server: checkpoint failed: %v", err)
					} else {
						log.Printf("masstree-server: checkpointed %d keys in %s", n, time.Since(start).Round(time.Millisecond))
					}
				case <-stopCkpt:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "masstree-server: shutting down")
	close(stopCkpt)
	srv.Close()
	if err := store.Close(); err != nil {
		log.Fatalf("masstree-server: close: %v", err)
	}
}
