package vfs

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DirOpKind classifies a volatile directory operation.
type DirOpKind uint8

const (
	// DirCreate is a file creation (OpenFile with O_CREATE, CreateTemp).
	DirCreate DirOpKind = iota + 1
	// DirRename is an atomic rename within one directory.
	DirRename
	// DirRemove is a file removal.
	DirRemove
)

func (k DirOpKind) String() string {
	switch k {
	case DirCreate:
		return "create"
	case DirRename:
		return "rename"
	case DirRemove:
		return "remove"
	}
	return "unknown"
}

// DirOp is one directory operation that has happened in the volatile
// namespace but is not yet durable (its directory has not been synced).
// Crash predicates select which pending operations a simulated crash
// persists — any subset is a legal POSIX outcome.
type DirOp struct {
	Kind DirOpKind
	// Name is the affected entry's full path (the new path for renames).
	Name string
	// Old is the renamed-from path; empty otherwise.
	Old  string
	file *memFile
}

// memFile is one file: volatile contents plus the contents as of the last
// Sync. The object is the "inode" — renames move it between names without
// touching content durability.
type memFile struct {
	data    []byte // volatile contents
	durable []byte // contents at last Sync; nil if never synced
	synced  bool
}

type memDir struct {
	durable map[string]*memFile // entry name -> file, as of last SyncDir
	pending []DirOp             // volatile ops since, in order
}

// MemFS is the crash-modeling in-memory filesystem. All methods are safe
// for concurrent use. See the package comment for the durability model.
type MemFS struct {
	mu       sync.Mutex
	files    map[string]*memFile // volatile namespace
	dirs     map[string]*memDir
	tempSeq  int
	crashGen int // bumped by Crash; outstanding handles go stale
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, dirs: map[string]*memDir{}}
}

func (m *MemFS) dirOf(name string) (*memDir, error) {
	d, ok := m.dirs[filepath.Dir(name)]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return d, nil
}

func (m *MemFS) MkdirAll(path string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	path = filepath.Clean(path)
	for p := path; ; p = filepath.Dir(p) {
		if m.dirs[p] == nil {
			m.dirs[p] = &memDir{durable: map[string]*memFile{}}
		}
		if parent := filepath.Dir(p); parent == p {
			break
		}
	}
	return nil
}

func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	d, err := m.dirOf(name)
	if err != nil {
		return nil, err
	}
	f, exists := m.files[name]
	switch {
	case !exists && flag&osCreate == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case exists && flag&osExcl != 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrExist}
	case !exists:
		f = &memFile{}
		m.files[name] = f
		d.pending = append(d.pending, DirOp{Kind: DirCreate, Name: name, file: f})
	case flag&osTrunc != 0:
		f.data = nil
	}
	return &memHandle{fs: m, f: f, name: name, gen: m.crashGen}, nil
}

func (m *MemFS) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	seq := m.tempSeq
	m.tempSeq++
	m.mu.Unlock()
	name := filepath.Join(dir, strings.Replace(pattern, "*", fmt.Sprintf("%09d", seq), 1))
	return m.OpenFile(name, osCreate|osExcl, 0o600)
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	if filepath.Dir(oldpath) != filepath.Dir(newpath) {
		return fmt.Errorf("vfs: cross-directory rename %q -> %q unsupported", oldpath, newpath)
	}
	d, err := m.dirOf(oldpath)
	if err != nil {
		return err
	}
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	d.pending = append(d.pending, DirOp{Kind: DirRename, Name: newpath, Old: oldpath, file: f})
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	d, err := m.dirOf(name)
	if err != nil {
		return err
	}
	f, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	d.pending = append(d.pending, DirOp{Kind: DirRemove, Name: name, file: f})
	return nil
}

func (m *MemFS) ReadDir(name string) ([]fs.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if m.dirs[name] == nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrNotExist}
	}
	var out []fs.DirEntry
	for p, f := range m.files {
		if filepath.Dir(p) == name {
			out = append(out, memDirEntry{name: filepath.Base(p), size: int64(len(f.data))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// SyncDir makes the directory's pending operations durable, in order.
func (m *MemFS) SyncDir(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.dirs[filepath.Clean(name)]
	if d == nil {
		return &fs.PathError{Op: "syncdir", Path: name, Err: fs.ErrNotExist}
	}
	for _, op := range d.pending {
		applyDirOp(d.durable, op)
	}
	d.pending = nil
	return nil
}

func applyDirOp(durable map[string]*memFile, op DirOp) {
	switch op.Kind {
	case DirCreate:
		durable[filepath.Base(op.Name)] = op.file
	case DirRename:
		delete(durable, filepath.Base(op.Old))
		durable[filepath.Base(op.Name)] = op.file
	case DirRemove:
		delete(durable, filepath.Base(op.Name))
	}
}

// PendingOps returns all directories' un-synced operations (debugging and
// assertions that a commit point left nothing at risk).
func (m *MemFS) PendingOps() []DirOp {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []DirOp
	for _, d := range m.dirs {
		out = append(out, d.pending...)
	}
	return out
}

// Crash simulates a power failure: un-synced file data is dropped and, of
// the pending directory operations, exactly those keep selects survive
// (applied in original order; keep == nil keeps none — the most
// conservative image; KeepAll keeps all). Outstanding handles go stale and
// fail all further operations. The filesystem then holds the post-crash
// disk image, ready to be recovered from.
func (m *MemFS) Crash(keep func(DirOp) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashGen++
	files := map[string]*memFile{}
	for path, d := range m.dirs {
		for _, op := range d.pending {
			if keep != nil && keep(op) {
				applyDirOp(d.durable, op)
			}
		}
		d.pending = nil
		for base, f := range d.durable {
			// Durable content only; never-synced files survive empty.
			f.data = append([]byte(nil), f.durable...)
			files[filepath.Join(path, base)] = f
		}
	}
	m.files = files
}

// KeepAll is a Crash predicate persisting every pending directory op.
func KeepAll(DirOp) bool { return true }

// Clone deep-copies the filesystem, so one pre-crash state can yield
// several different crash images.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &MemFS{files: map[string]*memFile{}, dirs: map[string]*memDir{}, tempSeq: m.tempSeq}
	copies := map[*memFile]*memFile{}
	cp := func(f *memFile) *memFile {
		if f == nil {
			return nil
		}
		if n, ok := copies[f]; ok {
			return n
		}
		n := &memFile{
			data:    append([]byte(nil), f.data...),
			durable: append([]byte(nil), f.durable...),
			synced:  f.synced,
		}
		copies[f] = n
		return n
	}
	for p, f := range m.files {
		c.files[p] = cp(f)
	}
	for p, d := range m.dirs {
		nd := &memDir{durable: map[string]*memFile{}}
		for base, f := range d.durable {
			nd.durable[base] = cp(f)
		}
		for _, op := range d.pending {
			op.file = cp(op.file)
			nd.pending = append(nd.pending, op)
		}
		c.dirs[p] = nd
	}
	return c
}

type memHandle struct {
	fs     *MemFS
	f      *memFile
	name   string
	gen    int
	closed bool
}

func (h *memHandle) stale() error {
	if h.closed {
		return fs.ErrClosed
	}
	if h.gen != h.fs.crashGen {
		return fmt.Errorf("vfs: handle %s stale after crash", h.name)
	}
	return nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.stale(); err != nil {
		return 0, err
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.stale(); err != nil {
		return err
	}
	h.f.durable = append(h.f.durable[:0], h.f.data...)
	h.f.synced = true
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

func (h *memHandle) Name() string { return h.name }

func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.stale(); err != nil {
		return 0, err
	}
	return int64(len(h.f.data)), nil
}

type memDirEntry struct {
	name string
	size int64
}

func (e memDirEntry) Name() string               { return e.name }
func (e memDirEntry) IsDir() bool                { return false }
func (e memDirEntry) Type() fs.FileMode          { return 0 }
func (e memDirEntry) Info() (fs.FileInfo, error) { return memFileInfo{e}, nil }

type memFileInfo struct{ e memDirEntry }

func (i memFileInfo) Name() string       { return i.e.name }
func (i memFileInfo) Size() int64        { return i.e.size }
func (i memFileInfo) Mode() fs.FileMode  { return 0o644 }
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return false }
func (i memFileInfo) Sys() any           { return nil }
