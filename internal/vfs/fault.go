package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
)

// ErrCrashed is returned by every operation once the injector's crash
// boundary has been hit: the simulated process is dead and nothing further
// reaches the disk.
var ErrCrashed = errors.New("vfs: injected crash")

// Fault wraps an FS and numbers every mutating operation — file create,
// write, fsync, rename, remove, dir-sync — as a crash boundary. Arming
// CrashAt(n) makes the n-th boundary (1-based) fail with ErrCrashed without
// reaching the inner filesystem, and latches the injector so all subsequent
// operations (reads included) fail too. A disarmed Fault (CrashAt(0)) just
// counts, which is how a torture test enumerates the boundaries of a
// workload before replaying it with a crash at each one.
type Fault struct {
	inner FS

	// SkipDirSyncs models a filesystem (or code path) where directory
	// fsyncs do nothing: the boundary is still counted, the inner SyncDir
	// is never called. Used to demonstrate lost-rename crash scenarios.
	SkipDirSyncs bool

	mu      sync.Mutex
	ops     int
	crashAt int
	crashed bool
	trace   []string
}

// NewFault wraps inner with a disarmed injector.
func NewFault(inner FS) *Fault { return &Fault{inner: inner} }

// CrashAt arms the injector to crash at the n-th mutating boundary from
// now (n <= 0 disarms). The operation counter is reset.
func (f *Fault) CrashAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.crashAt = n
	f.crashed = false
	f.trace = f.trace[:0]
}

// Ops returns how many mutating boundaries have executed since CrashAt.
func (f *Fault) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash boundary has been hit.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Trace returns descriptions of the boundaries executed since CrashAt
// (the crashing boundary last).
func (f *Fault) Trace() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.trace...)
}

// boundary counts one mutating operation and decides whether it crashes.
func (f *Fault) boundary(desc string, args ...any) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	f.trace = append(f.trace, fmt.Sprintf(desc, args...))
	if f.crashAt > 0 && f.ops == f.crashAt {
		f.crashed = true
		return ErrCrashed
	}
	return nil
}

// dead reports whether the simulated process has crashed (used by reads,
// which are not boundaries but must still fail after the crash).
func (f *Fault) dead() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *Fault) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&osCreate != 0 {
		if err := f.boundary("open-create %s", name); err != nil {
			return nil, err
		}
	} else if err := f.dead(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: inner}, nil
}

func (f *Fault) CreateTemp(dir, pattern string) (File, error) {
	if err := f.boundary("create-temp %s/%s", dir, pattern); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inner: inner}, nil
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if err := f.boundary("rename %s -> %s", oldpath, newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(name string) error {
	if err := f.boundary("remove %s", name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *Fault) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *Fault) ReadFile(name string) ([]byte, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *Fault) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.boundary("mkdir %s", path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Fault) SyncDir(name string) error {
	if err := f.boundary("syncdir %s", name); err != nil {
		return err
	}
	if f.SkipDirSyncs {
		return nil
	}
	return f.inner.SyncDir(name)
}

type faultFile struct {
	f     *Fault
	inner File
}

func (h *faultFile) Write(p []byte) (int, error) {
	if err := h.f.boundary("write %s (%d bytes)", h.inner.Name(), len(p)); err != nil {
		return 0, err
	}
	return h.inner.Write(p)
}

func (h *faultFile) Sync() error {
	if err := h.f.boundary("sync %s", h.inner.Name()); err != nil {
		return err
	}
	return h.inner.Sync()
}

func (h *faultFile) Close() error {
	// Closing is not a durability boundary (it neither writes nor syncs),
	// but a dead process cannot close files either.
	if err := h.f.dead(); err != nil {
		return err
	}
	return h.inner.Close()
}

func (h *faultFile) Name() string { return h.inner.Name() }

func (h *faultFile) Size() (int64, error) {
	if err := h.f.dead(); err != nil {
		return 0, err
	}
	return h.inner.Size()
}
