// Package btree implements the paper's concurrent B+-tree baseline (§6.2
// Figure 8 "B-tree", "+Prefetch", "+Permuter"; §6.4; Figure 9): a width-15
// B+-tree using the same optimistic concurrency control scheme as Masstree
// but storing whole keys instead of a trie of slices. Each node has space
// for the first 16 bytes of each key inline; longer keys keep a pointer to
// the full key, and comparisons that exhaust the inline prefix must chase
// that pointer — the extra DRAM fetch that motivates Masstree's design
// (Figure 9's gap).
//
// Options mirror the paper's ladder:
//
//   - WithPermuter publishes inserts through an atomic permutation word as
//     Masstree does (§4.6.2); without it, inserts shift the sorted key array
//     in place under the inserting dirty bit and force concurrent readers to
//     retry, which is the plain "B-tree" bar.
//   - WithPrefetch is accepted for completeness and is a documented no-op:
//     Go exposes no prefetch intrinsic (DESIGN.md). Node layout is already
//     four-cache-line sized, so hardware prefetchers see the same pattern.
//
// Gets are lock-free; puts lock only affected nodes; splits use
// hand-over-hand locking up the tree. Border nodes are B-link-chained with
// constant lowkeys. Remove shrinks nodes but (unlike Masstree) never
// deletes them — the paper's baseline needed only get/put workloads.
package btree

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"
	"unsafe"

	"repro/internal/baseline/occ"
)

const (
	width     = 15
	inlineLen = 16
)

// Option configures a Tree.
type Option func(*Tree)

// WithPermuter enables permutation-based insert publication ("+Permuter").
func WithPermuter() Option { return func(t *Tree) { t.permuter = true } }

// WithPrefetch is the "+Prefetch" rung; a documented no-op in Go.
func WithPrefetch() Option { return func(t *Tree) { t.prefetch = true } }

// bkey is an immutable stored key: an inline prefix plus, for keys longer
// than 16 bytes, the complete key in a separately-allocated block. lead is
// the first 8 bytes as a big-endian integer — Figure 8's ladder is
// cumulative, so the B-tree rungs include the "+IntCmp" comparison trick.
type bkey struct {
	lead   uint64
	inline [inlineLen]byte
	ilen   uint8
	long   bool
	full   []byte // set only when long
}

// leadOf derives a key's 8-byte lead integer without allocating.
func leadOf(k []byte) uint64 {
	if len(k) >= 8 {
		return binary.BigEndian.Uint64(k)
	}
	var buf [8]byte
	copy(buf[:], k)
	return binary.BigEndian.Uint64(buf[:])
}

func makeKey(k []byte) *bkey {
	b := &bkey{lead: leadOf(k)}
	if len(k) <= inlineLen {
		b.ilen = uint8(len(k))
		copy(b.inline[:], k)
		return b
	}
	b.ilen = inlineLen
	copy(b.inline[:], k[:inlineLen])
	b.long = true
	b.full = append([]byte(nil), k...)
	return b
}

// compare orders search key k against b: the lead integers decide most
// comparisons (+IntCmp); equal leads fall back to byte comparison, and only
// equal-prefix long keys dereference the full key.
func (b *bkey) compare(k []byte) int {
	lead := leadOf(k)
	if lead < b.lead {
		return -1
	}
	if lead > b.lead {
		return 1
	}
	return b.compareBytes(k)
}

// compareBytes is the byte-wise comparison used after lead integers tie.
func (b *bkey) compareBytes(k []byte) int {
	n := len(k)
	if n > inlineLen {
		n = inlineLen
	}
	if c := bytes.Compare(k[:n], b.inline[:b.ilen]); c != 0 {
		return c
	}
	// Inline prefixes equal (up to the shorter).
	switch {
	case len(k) <= inlineLen && !b.long:
		// Both fully inline: prefixes equal, compare lengths.
		switch {
		case len(k) < int(b.ilen):
			return -1
		case len(k) > int(b.ilen):
			return 1
		}
		return 0
	case len(k) <= inlineLen:
		// k fully inline, b longer. If k is shorter than the prefix the
		// byte compare already decided; here k >= prefix length.
		return -1
	case !b.long:
		return 1
	default:
		// Both long: the expensive full-key fetch.
		return bytes.Compare(k, b.full)
	}
}

func (b *bkey) bytes() []byte {
	if b.long {
		return b.full
	}
	return b.inline[:b.ilen]
}

type nodeHeader struct {
	version occ.Version
	parent  atomic.Pointer[interiorNode]
}

func (h *nodeHeader) border() *borderNode     { return (*borderNode)(unsafe.Pointer(h)) }
func (h *nodeHeader) interior() *interiorNode { return (*interiorNode)(unsafe.Pointer(h)) }

type interiorNode struct {
	h     nodeHeader
	nkeys atomic.Int32
	keys  [width]atomic.Pointer[bkey]
	child [width + 1]atomic.Pointer[nodeHeader]
}

type borderNode struct {
	h    nodeHeader
	next atomic.Pointer[borderNode]

	// permutation publishes insert order when the permuter is enabled;
	// otherwise nkeys plus the sorted key array are maintained in place.
	permutation atomic.Uint64
	nkeys       atomic.Int32

	lowkey *bkey // immutable; nil = -inf

	keys [width]atomic.Pointer[bkey]
	vals [width]unsafe.Pointer

	// used tracks slots that ever held a visible key (permuter mode);
	// protected by the node lock (§4.6.5 slot-reuse hazard).
	used uint16
}

// Tree is a concurrent B+-tree over whole keys.
type Tree struct {
	root     atomic.Pointer[nodeHeader]
	count    atomic.Int64
	permuter bool
	prefetch bool
}

// New creates an empty tree.
func New(opts ...Option) *Tree {
	t := &Tree{}
	for _, o := range opts {
		o(t)
	}
	b := &borderNode{}
	b.h.version.Init(occ.BorderBit | occ.RootBit)
	b.permutation.Store(uint64(emptyPerm))
	t.root.Store(&b.h)
	return t
}

// Len returns the number of keys.
func (t *Tree) Len() int { return int(t.count.Load()) }

// ---- permutation helpers (subset of Masstree's, §4.6.2) ----

type perm uint64

var emptyPerm = func() perm {
	var p uint64
	for i := 0; i < width; i++ {
		p |= uint64(i) << (4 * uint(i+1))
	}
	return perm(p)
}()

func (p perm) count() int        { return int(p & 0xf) }
func (p perm) slot(rank int) int { return int(p >> (4 * uint(rank+1)) & 0xf) }

func (p perm) insert(rank int) (perm, int) {
	n := p.count()
	var a [width]int
	for i := 0; i < width; i++ {
		a[i] = p.slot(i)
	}
	slot := a[n]
	copy(a[rank+1:n+1], a[rank:n])
	a[rank] = slot
	q := uint64(n + 1)
	for i := 0; i < width; i++ {
		q |= uint64(a[i]) << (4 * uint(i+1))
	}
	return perm(q), slot
}

func (p perm) remove(rank int) perm {
	n := p.count()
	var a [width]int
	for i := 0; i < width; i++ {
		a[i] = p.slot(i)
	}
	slot := a[rank]
	copy(a[rank:n-1], a[rank+1:n])
	a[n-1] = slot
	q := uint64(n - 1)
	for i := 0; i < width; i++ {
		q |= uint64(a[i]) << (4 * uint(i+1))
	}
	return perm(q)
}
