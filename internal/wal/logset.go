package wal

import (
	"encoding/binary"
	"hash/crc32"
	"path/filepath"

	"repro/internal/vfs"
)

// The logset file records which log files recovery should expect: the
// worker count and the current generation. Without it, a directory listing
// cannot distinguish "worker w never logged" (its file exists, possibly
// empty) from "worker w's log vanished" (no file at all) — and a vanished
// log contributes no constraint to the recovery cutoff, so its absence
// would otherwise go entirely unnoticed. RecoverDirAboveFS reports files
// the logset expects but the directory lacks as RecoveryResult.MissingLogs.
//
// The file is committed like a checkpoint manifest — temp file, data sync,
// rename into place, directory sync — so a crash leaves either the old
// expectation or the new one, never a torn file. It is written only after
// the log files it names have had their directory entries synced
// (OpenSetFS and Set.Rotate batch-sync creations first), so the
// expectation never runs ahead of reality and a missing-log report is
// never a false positive. An absent or unparseable logset (directories
// written before the file existed, or a torn rename target on a
// non-atomic filesystem) disables the check rather than failing recovery.

// LogSetFileName is the name of the expected-log-set file within a log
// directory.
const LogSetFileName = "logset"

var logSetMagic = []byte("MTLSET1\n")

// writeLogSet durably records that recovery should expect one log file per
// worker in [0, workers) at generation gen.
func writeLogSet(fsys vfs.FS, dir string, workers int, gen uint64) error {
	buf := make([]byte, 0, len(logSetMagic)+16)
	buf = append(buf, logSetMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(workers))
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[len(logSetMagic):]))
	f, err := fsys.CreateTemp(dir, "logset-*.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	tmp := f.Name()
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, LogSetFileName)); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// readLogSet reads the expected log set. ok is false when the file is
// absent or does not parse, in which case missing-log detection is
// disabled (the directory predates the logset, or the file itself was
// lost — which the caller cannot tell apart from never-written).
func readLogSet(fsys vfs.FS, dir string) (workers int, gen uint64, ok bool) {
	b, err := fsys.ReadFile(filepath.Join(dir, LogSetFileName))
	if err != nil || len(b) != len(logSetMagic)+16 {
		return 0, 0, false
	}
	if string(b[:len(logSetMagic)]) != string(logSetMagic) {
		return 0, 0, false
	}
	payload := b[len(logSetMagic) : len(logSetMagic)+12]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[len(logSetMagic)+12:]) {
		return 0, 0, false
	}
	return int(binary.LittleEndian.Uint32(payload)), binary.LittleEndian.Uint64(payload[4:]), true
}
