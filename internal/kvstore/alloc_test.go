package kvstore

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/value"
)

// newAllocTestStore returns an in-memory store with background maintenance
// disabled, so AllocsPerRun measurements see only the operation under test.
func newAllocTestStore(t *testing.T, nkeys int) *Store {
	t.Helper()
	s, err := Open(Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for i := 0; i < nkeys; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("alloc-key-%06d", i)), []byte("column-zero-data"))
	}
	return s
}

// TestGetIntoAllocFree verifies the append-into read path allocates nothing
// in steady state, through both the store and an epoch-registered session.
func TestGetIntoAllocFree(t *testing.T) {
	s := newAllocTestStore(t, 1000)
	sess := s.Session(0)
	defer sess.Close()
	key := []byte("alloc-key-000123")
	cols := []int{0}
	dst := make([][]byte, 0, 4)

	allocs := testing.AllocsPerRun(200, func() {
		var ok bool
		dst, ok = sess.GetInto(key, cols, dst[:0])
		if !ok || len(dst) != 1 || string(dst[0]) != "column-zero-data" {
			t.Fatalf("GetInto: %q %v", dst, ok)
		}
	})
	if allocs != 0 {
		t.Fatalf("Session.GetInto allocates %.1f times per run, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(200, func() {
		var ok bool
		dst, ok = s.GetInto(key, nil, dst[:0])
		if !ok || len(dst) != 1 {
			t.Fatalf("GetInto all-cols: %q %v", dst, ok)
		}
	})
	if allocs != 0 {
		t.Fatalf("Store.GetInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestGetBatchIntoAllocFree verifies the session's batched lookup is
// allocation-free once its scratch has warmed to the batch size.
func TestGetBatchIntoAllocFree(t *testing.T) {
	s := newAllocTestStore(t, 1000)
	sess := s.Session(0)
	defer sess.Close()
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("alloc-key-%06d", i*13%1000))
	}

	allocs := testing.AllocsPerRun(200, func() {
		vals, found := sess.GetBatchInto(keys)
		for i := range keys {
			if !found[i] || vals[i] == nil {
				t.Fatalf("batch key %d missing", i)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Session.GetBatchInto allocates %.1f times per run, want 0", allocs)
	}
}

// TestGetBatchMatchesGet pins the convenience wrapper's input-order results.
func TestGetBatchMatchesGet(t *testing.T) {
	s := newAllocTestStore(t, 100)
	sess := s.Session(0)
	defer sess.Close()
	keys := [][]byte{
		[]byte("alloc-key-000007"), []byte("no-such-key"), []byte("alloc-key-000099"),
	}
	out, found := sess.GetBatch(keys, nil)
	for i, k := range keys {
		cols, ok := sess.Get(k, nil)
		if ok != found[i] {
			t.Fatalf("key %q: found %v vs %v", k, found[i], ok)
		}
		if ok && string(out[i][0]) != string(cols[0]) {
			t.Fatalf("key %q: %q vs %q", k, out[i][0], cols[0])
		}
	}
}

// TestPutSimpleAllocs pins the logging-disabled put hot path at exactly one
// allocation: the packed value (value.BuildAt). The tree descent, version
// tick, and scratch are all allocation-free.
func TestPutSimpleAllocs(t *testing.T) {
	s := newAllocTestStore(t, 1000)
	sess := s.Session(0)
	defer sess.Close()
	key := []byte("alloc-key-000123")
	data := []byte("updated-column-data!")

	allocs := testing.AllocsPerRun(200, func() {
		if sess.PutSimple(key, data) == 0 {
			t.Fatal("put failed")
		}
	})
	if allocs > 1 {
		t.Fatalf("Session.PutSimple allocates %.1f times per run, want <= 1 (the packed value)", allocs)
	}
}

// TestPutSimpleLoggedAllocs pins the logged put path: one packed value plus
// amortized-zero log encoding into the warmed double buffer.
func TestPutSimpleLoggedAllocs(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Workers: 1, FlushInterval: time.Hour, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	sess := s.Session(0)
	defer sess.Close()
	key := []byte("logged-alloc-key")
	data := []byte("logged-column-data")
	// Warm both log buffers past the measured append volume.
	for round := 0; round < 2; round++ {
		for i := 0; i < 300; i++ {
			sess.PutSimple(key, data)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		sess.PutSimple(key, data)
	})
	if allocs > 1 {
		t.Fatalf("logged Session.PutSimple allocates %.1f times per run, want <= 1", allocs)
	}
}

// TestPutBatchIntoAllocs pins the batched put at one packed value per key
// once the scratch is warm.
func TestPutBatchIntoAllocs(t *testing.T) {
	s := newAllocTestStore(t, 1000)
	sess := s.Session(0)
	defer sess.Close()
	const batch = 64
	keys := make([][]byte, batch)
	puts := make([][]value.ColPut, batch)
	flat := make([]value.ColPut, batch)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("alloc-key-%06d", i*13%1000))
		flat[i] = value.ColPut{Col: 0, Data: []byte("batched-column-data")}
		puts[i] = flat[i : i+1]
	}
	sess.PutBatchInto(keys, puts) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		vers := sess.PutBatchInto(keys, puts)
		if len(vers) != batch || vers[0] == 0 {
			t.Fatal("batch put failed")
		}
	})
	if allocs > batch {
		t.Fatalf("Session.PutBatchInto allocates %.1f per %d-key batch, want <= %d (one packed value per key)", allocs, batch, batch)
	}
}

// TestGetRangeIntoReducesAllocs verifies the arena-based range path cuts
// per-request garbage well below the allocating GetRange: the pair slice,
// key copies, and column slices all come from the reused scratch. (The core
// scan's internal per-node snapshot entries still allocate; only the
// kvstore-level garbage is eliminated here.)
func TestGetRangeIntoReducesAllocs(t *testing.T) {
	s := newAllocTestStore(t, 1000)
	sess := s.Session(0)
	defer sess.Close()
	var sc RangeScratch
	start := []byte("alloc-key-000100")
	cols := []int{0}
	const n = 50
	sess.GetRangeInto(start, n, cols, &sc) // warm the arenas

	legacy := testing.AllocsPerRun(100, func() {
		if pairs := sess.GetRange(start, n, cols); len(pairs) != n {
			t.Fatalf("range: %d pairs", len(pairs))
		}
	})
	into := testing.AllocsPerRun(100, func() {
		sc.Reset()
		pairs := sess.GetRangeInto(start, n, cols, &sc)
		if len(pairs) != n || string(pairs[0].Key) != "alloc-key-000100" {
			t.Fatalf("range: %d pairs", len(pairs))
		}
	})
	if into > legacy/2 {
		t.Fatalf("GetRangeInto allocates %.1f/run vs GetRange's %.1f — want at most half", into, legacy)
	}
	if into > 2*n {
		t.Fatalf("GetRangeInto allocates %.1f per %d-pair range, want <= %d", into, n, 2*n)
	}
}
