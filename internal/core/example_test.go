package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/value"
)

// Example shows the tree's basic operations: arbitrary binary keys, atomic
// read-modify-write, and ordered range queries.
func Example() {
	tr := core.New()

	tr.Put([]byte("apple"), value.New([]byte("red")))
	tr.Put([]byte("banana"), value.New([]byte("yellow")))
	tr.Put([]byte("cherry"), value.New([]byte("dark red")))

	if v, ok := tr.Get([]byte("banana")); ok {
		fmt.Println("banana is", string(v.Bytes()))
	}

	// Atomic read-modify-write under the border-node lock.
	tr.Update([]byte("apple"), func(old *value.Value) *value.Value {
		return value.Apply(old, []value.ColPut{{Col: 1, Data: []byte("fruit")}})
	})

	// Range query in key order.
	for _, kv := range tr.GetRange([]byte("b"), 10) {
		fmt.Printf("%s = %s\n", kv.Key, kv.Value.Bytes())
	}

	tr.Remove([]byte("cherry"))
	fmt.Println("keys left:", tr.Len())

	// Output:
	// banana is yellow
	// banana = yellow
	// cherry = dark red
	// keys left: 2
}

// Example_sharedPrefixes shows the trie-of-trees handling of long common
// prefixes (§4.1), the workload Masstree is designed for.
func Example_sharedPrefixes() {
	tr := core.New()
	urls := []string{
		"edu.harvard.seas.www/news-events",
		"edu.harvard.seas.www/academics",
		"edu.harvard.www/",
	}
	for _, u := range urls {
		tr.Put([]byte(u), value.New([]byte("page")))
	}
	n := 0
	tr.Scan([]byte("edu.harvard.seas."), func(k []byte, _ *value.Value) bool {
		if string(k) > "edu.harvard.seas.zzz" {
			return false
		}
		n++
		return true
	})
	fmt.Println("seas pages:", n)
	fmt.Println("layers created:", tr.Stats().LayerCreations > 0)
	// Output:
	// seas pages: 2
	// layers created: true
}
