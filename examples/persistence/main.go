// Persistence: logging, checkpointing, and crash recovery (§5). The example
// writes through per-worker logs, takes a checkpoint, keeps writing, then
// simulates a restart and shows the store recovering the checkpoint plus the
// log tail.
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/kvstore"
)

func main() {
	dir, err := os.MkdirTemp("", "masstree-persistence-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("data directory:", dir)

	// Phase 1: write, checkpoint, write more, shut down.
	store, err := kvstore.Open(kvstore.Config{
		Dir:           dir,
		Workers:       2,
		FlushInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		store.PutSimple(i%2, []byte(fmt.Sprintf("key%05d", i)), []byte("before-checkpoint"))
	}
	start := time.Now()
	_, n, err := store.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d keys in %s (log space reclaimed)\n", n, time.Since(start).Round(time.Millisecond))

	for i := 4000; i < 6000; i++ {
		store.PutSimple(i%2, []byte(fmt.Sprintf("key%05d", i)), []byte("after-checkpoint"))
	}
	store.Remove(0, []byte("key00000"))
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("store closed (logs flushed)")

	// Phase 2: reopen — recovery = newest valid checkpoint + log replay in
	// per-key version order with the cutoff t = min over logs of the last
	// timestamp (§5).
	start = time.Now()
	recovered, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	fmt.Printf("recovered %d keys in %s\n", recovered.Len(), time.Since(start).Round(time.Millisecond))

	for _, probe := range []struct{ key, want string }{
		{"key00001", "before-checkpoint"},
		{"key04500", "after-checkpoint"},
		{"key05999", "after-checkpoint"},
	} {
		cols, ok := recovered.Get([]byte(probe.key), nil)
		fmt.Printf("  %s = %q (found=%v, want %q)\n", probe.key, cols, ok, probe.want)
	}
	_, ok := recovered.Get([]byte("key00000"), nil)
	fmt.Printf("  key00000 (removed pre-shutdown): found=%v\n", ok)
}
