package bench

import (
	"fmt"

	"repro/internal/baseline/binarytree"
	"repro/internal/baseline/btree"
	"repro/internal/baseline/fourtree"
	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
)

// store is the minimal interface the factor analysis drives.
type store interface {
	Get(key []byte) (*value.Value, bool)
	Put(key []byte, v *value.Value)
}

type putAdapter struct {
	get func([]byte) (*value.Value, bool)
	put func([]byte, *value.Value)
}

func (a putAdapter) Get(k []byte) (*value.Value, bool) { return a.get(k) }
func (a putAdapter) Put(k []byte, v *value.Value)      { a.put(k, v) }

// fig8Ladder returns Figure 8's design-feature ladder: each rung a named
// constructor. Go-specific substitutions (+Flow/+Superpage → node arena,
// +Prefetch → no-op) are flagged in the table notes.
func fig8Ladder() []struct {
	name string
	mk   func() store
} {
	wrapBin := func(opts ...binarytree.Option) func() store {
		return func() store {
			t := binarytree.New(opts...)
			return putAdapter{t.Get, func(k []byte, v *value.Value) { t.Put(k, v) }}
		}
	}
	wrapBtree := func(opts ...btree.Option) func() store {
		return func() store {
			t := btree.New(opts...)
			return putAdapter{t.Get, func(k []byte, v *value.Value) { t.Put(k, v) }}
		}
	}
	return []struct {
		name string
		mk   func() store
	}{
		{"Binary", wrapBin()},
		{"+Flow", wrapBin(binarytree.WithArena())},
		{"+Superpage", wrapBin(binarytree.WithArena())},
		{"+IntCmp", wrapBin(binarytree.WithArena(), binarytree.WithIntCmp())},
		{"4-tree", func() store {
			t := fourtree.New()
			return putAdapter{t.Get, func(k []byte, v *value.Value) { t.Put(k, v) }}
		}},
		{"B-tree", wrapBtree()},
		{"+Prefetch", wrapBtree()},
		{"+Permuter", wrapBtree(btree.WithPermuter())},
		{"Masstree", func() store {
			t := core.New()
			return putAdapter{t.Get, func(k []byte, v *value.Value) { t.Put(k, v) }}
		}},
	}
}

// Fig8 reproduces Figure 8 (§6.2): contributions of design features to
// Masstree's performance on 1-to-10-byte decimal get and put workloads.
// Numbers are throughput in Mreq/s plus the paper-style ratio relative to
// the binary tree running the get workload.
func Fig8(sc Scale) *Table {
	sc = sc.withDefaults()
	t := &Table{
		ID:      "fig8",
		Title:   fmt.Sprintf("factor analysis, %d keys, %d workers (Figure 8)", sc.Keys, sc.Workers),
		Headers: []string{"design", "get Mreq/s", "get rel", "put Mreq/s", "put rel"},
		Notes: []string{
			"+Flow/+Superpage realized as a chunked node arena (Go cannot swap allocators); the two rungs coincide here",
			"+Prefetch is a documented no-op (no prefetch intrinsic in Go); node layout is unchanged",
			"relative columns are normalized to Binary's get throughput, as in the paper",
		},
	}

	var baseGet float64
	for _, rung := range fig8Ladder() {
		getTput, putTput := fig8Measure(sc, rung.mk)
		if rung.name == "Binary" {
			baseGet = getTput
		}
		t.Rows = append(t.Rows, []string{
			rung.name, mops(getTput), ratio(getTput, baseGet), mops(putTput), ratio(putTput, baseGet),
		})
	}
	return t
}

func fig8Measure(sc Scale, mk func() store) (getTput, putTput float64) {
	// Pre-materialize per-worker key streams so workload generation cost is
	// identical (and negligible) for every rung.
	keysPerWorker := sc.Keys / sc.Workers
	keys := make([][][]byte, sc.Workers)
	vals := make([][]*value.Value, sc.Workers)
	for w := range keys {
		keys[w] = workload.Keys(workload.Decimal(int64(1000+w)), keysPerWorker)
		vals[w] = make([]*value.Value, keysPerWorker)
		for i, k := range keys[w] {
			vals[w][i] = value.New(k)
		}
	}

	// Put workload: fresh store, insert all keys (about 10% of decimal keys
	// collide and become updates, as in §6.1).
	st := mk()
	putTput = measure(sc.Workers, keysPerWorker, func(w, i int) {
		st.Put(keys[w][i], vals[w][i])
	})

	// Get workload: random hits against the populated store.
	getTput = measure(sc.Workers, sc.Ops/sc.Workers, func(w, i int) {
		st.Get(keys[w][(i*61)%keysPerWorker])
	})
	return getTput, putTput
}
