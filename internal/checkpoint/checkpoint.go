// Package checkpoint implements Masstree's checkpoint facility (§5):
// periodic dumps of all keys and values that speed recovery and allow log
// space to be reclaimed.
//
// Checkpoints are fuzzy: they run in parallel with request processing by
// scanning the tree's immutable value objects, and they record the timestamp
// at which they began. Recovery loads the latest valid checkpoint and then
// replays logs; because every value carries a version (== log timestamp) and
// replay applies each key's updates in increasing version order with a
// version guard, overlap between checkpoint contents and retained log
// records is harmless.
//
// A checkpoint is written as T part files over disjoint key ranges
// (ckpt-<ts>-part<K>.ckpt, each with its own CRC footer) so T threads can
// write — and recovery can load — the parts concurrently, exactly as the
// paper checkpoints with multiple threads over subranges of the key space.
// A small manifest (ckpt-<ts>.mf) naming the parts is written last and
// renamed into place, and the directory is fsynced before the checkpoint is
// considered durable: the manifest rename is the commit point, so a crash
// mid-checkpoint leaves only ignorable part/temp orphans, and no log space
// is reclaimed before the checkpoint the reclamation depends on has truly
// reached the disk. The single-file format of earlier versions
// (ckpt-<ts>.ckpt) is still read.
//
// All filesystem access goes through an injectable vfs.FS, so crash-point
// torture tests can kill the writer at every write/fsync/rename boundary
// and prove recovery safe.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/value"
	"repro/internal/vfs"
)

var (
	// fileMagic is the current body-file format: each entry carries the
	// value's expiry timestamp (cache-mode TTLs survive checkpoints).
	// fileMagicV1 bodies — written before TTLs existed — are still read;
	// their entries load with expiry 0.
	fileMagic   = []byte("MTCKPT2\n")
	fileMagicV1 = []byte("MTCKPT1\n")
	mfMagic     = []byte("MTCKMF1\n")
	fileEnd     = []byte("MTCKEND\n")

	// ErrNone reports that no valid checkpoint exists.
	ErrNone = errors.New("checkpoint: none found")
	// ErrCorrupt reports an invalid or truncated checkpoint file.
	ErrCorrupt = errors.New("checkpoint: corrupt")
)

var (
	nameRE = regexp.MustCompile(`^ckpt-(\d{20})\.ckpt$`)
	partRE = regexp.MustCompile(`^ckpt-(\d{20})-part(\d{3})\.ckpt$`)
	mfRE   = regexp.MustCompile(`^ckpt-(\d{20})\.mf$`)
)

// FileName names a legacy single-file checkpoint that began at timestamp ts.
func FileName(ts uint64) string { return fmt.Sprintf("ckpt-%020d.ckpt", ts) }

// PartName names part k of the checkpoint that began at timestamp ts.
func PartName(ts uint64, k int) string { return fmt.Sprintf("ckpt-%020d-part%03d.ckpt", ts, k) }

// ManifestName names the manifest of the checkpoint that began at ts.
func ManifestName(ts uint64) string { return fmt.Sprintf("ckpt-%020d.mf", ts) }

// MaxParts bounds a checkpoint's part count (the part-name field is three
// digits). WriteParts rejects larger counts; callers clamp before
// partitioning.
const MaxParts = 1000

// Entry is one key-value pair in a checkpoint. Key and the value's column
// data alias the loaded file buffer; copy them if retained beyond the
// apply callback (the tree copies what it keeps).
type Entry struct {
	Key   []byte
	Value *value.Value
}

// writePartFile streams one checkpoint body (legacy file or part) into a
// temp file in dir: magic, startTS, entries, then a count/CRC/end footer.
// The synced, closed temp file's name is returned for the caller to rename
// into place. feed supplies the entries through emit.
func writePartFile(fsys vfs.FS, dir string, startTS uint64, feed func(emit func(Entry) error) error) (tmp string, n int, err error) {
	f, err := fsys.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return "", 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(f.Name())
		}
	}()
	crc := crc32.NewIEEE()
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)
	if _, err = w.Write(fileMagic); err != nil {
		return "", 0, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], startTS)
	if _, err = w.Write(hdr[:]); err != nil {
		return "", 0, err
	}
	count := 0
	if err = feed(func(e Entry) error {
		count++
		return writeEntry(w, e)
	}); err != nil {
		return "", 0, err
	}
	// Footer: count, crc of everything before the footer, end magic.
	var foot [12]byte
	binary.LittleEndian.PutUint64(foot[:8], uint64(count))
	if _, err = w.Write(foot[:8]); err != nil {
		return "", 0, err
	}
	if err = w.Flush(); err != nil {
		return "", 0, err
	}
	sum := crc.Sum32()
	binary.LittleEndian.PutUint32(foot[8:], sum)
	if _, err = f.Write(foot[8:]); err != nil {
		return "", 0, err
	}
	if _, err = f.Write(fileEnd); err != nil {
		return "", 0, err
	}
	if err = f.Sync(); err != nil {
		return "", 0, err
	}
	if err = f.Close(); err != nil {
		return "", 0, err
	}
	return f.Name(), count, nil
}

// WriteFS streams a legacy single-file checkpoint that began at timestamp
// startTS into dir, reading entries from next until it returns false. The
// file is written to a temporary name, synced, atomically renamed, and the
// directory is synced, so a crash mid-checkpoint leaves no partially
// visible checkpoint and a completed one cannot be forgotten by the
// directory.
func WriteFS(fsys vfs.FS, dir string, startTS uint64, next func() (Entry, bool)) (path string, n int, err error) {
	tmp, n, err := writePartFile(fsys, dir, startTS, func(emit func(Entry) error) error {
		for {
			e, ok := next()
			if !ok {
				return nil
			}
			if err := emit(e); err != nil {
				return err
			}
		}
	})
	if err != nil {
		return "", 0, err
	}
	final := filepath.Join(dir, FileName(startTS))
	if err = fsys.Rename(tmp, final); err != nil {
		return "", 0, err
	}
	if err = fsys.SyncDir(dir); err != nil {
		return "", 0, err
	}
	return final, n, nil
}

// Write is WriteFS on the real filesystem.
func Write(dir string, startTS uint64, next func() (Entry, bool)) (path string, n int, err error) {
	return WriteFS(vfs.OS{}, dir, startTS, next)
}

// WriteParts writes a multi-part checkpoint: scan(k, emit) must stream part
// k's entries (the caller partitions the key space into disjoint ranges).
// Parts are written concurrently, each to its own temp file, synced, and
// renamed; the manifest is renamed into place last and the directory is
// fsynced — only then is the checkpoint committed. Returns the total entry
// count.
func WriteParts(fsys vfs.FS, dir string, startTS uint64, parts int, scan func(part int, emit func(Entry) error) error) (n int, err error) {
	if parts < 1 {
		parts = 1
	}
	if parts > MaxParts {
		// Refuse rather than silently shrink: the caller partitioned the
		// key space for this count, and writing fewer parts would commit a
		// checkpoint missing every range past the last written part.
		return 0, fmt.Errorf("checkpoint: %d parts exceeds the maximum %d", parts, MaxParts)
	}
	tmps := make([]string, parts)
	counts := make([]uint64, parts)
	errs := make([]error, parts)
	run := func(k int) {
		tmp, c, err := writePartFile(fsys, dir, startTS, func(emit func(Entry) error) error {
			return scan(k, emit)
		})
		tmps[k], counts[k], errs[k] = tmp, uint64(c), err
	}
	if parts == 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		for k := 0; k < parts; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				run(k)
			}(k)
		}
		wg.Wait()
	}
	for _, e := range errs {
		if e != nil {
			for _, tmp := range tmps {
				if tmp != "" {
					fsys.Remove(tmp)
				}
			}
			return 0, e
		}
	}
	// Until the manifest commits, renamed parts are invisible orphans; on
	// any failure past this point remove whatever was published so a
	// failing checkpoint (ENOSPC, say) does not leak a full store dump
	// that only the next *successful* checkpoint's Drop would reclaim —
	// monotonically worsening the very condition that made it fail.
	published := 0
	unpublish := func() {
		for k := 0; k < published; k++ {
			fsys.Remove(filepath.Join(dir, PartName(startTS, k)))
		}
	}
	total := 0
	for k := 0; k < parts; k++ {
		if err := fsys.Rename(tmps[k], filepath.Join(dir, PartName(startTS, k))); err != nil {
			unpublish()
			for _, tmp := range tmps[k:] {
				fsys.Remove(tmp)
			}
			return 0, err
		}
		published++
		total += int(counts[k])
	}
	if err := writeManifest(fsys, dir, startTS, counts); err != nil {
		unpublish()
		return 0, err
	}
	// Commit point: every part rename and the manifest rename become
	// durable together. Without this sync a crash could remember a later
	// log reclamation while forgetting the checkpoint it depends on.
	if err := fsys.SyncDir(dir); err != nil {
		// Uncommitted: the caller will treat the checkpoint as failed and
		// reclaim nothing, so take the (visible but unsynced) manifest and
		// parts back out rather than leak a full store dump.
		fsys.Remove(filepath.Join(dir, ManifestName(startTS)))
		unpublish()
		return 0, err
	}
	return total, nil
}

// writeManifest writes and atomically publishes ckpt-<ts>.mf:
//
//	mfMagic | startTS u64 | parts u32 | count u64 per part | crc u32 | end
func writeManifest(fsys vfs.FS, dir string, startTS uint64, counts []uint64) error {
	b := append([]byte(nil), mfMagic...)
	b = binary.LittleEndian.AppendUint64(b, startTS)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(counts)))
	for _, c := range counts {
		b = binary.LittleEndian.AppendUint64(b, c)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	b = append(b, fileEnd...)
	f, err := fsys.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		fsys.Remove(f.Name())
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(f.Name())
		return err
	}
	return fsys.Rename(f.Name(), filepath.Join(dir, ManifestName(startTS)))
}

// parseManifest validates a manifest's framing and checksum.
func parseManifest(b []byte) (startTS uint64, counts []uint64, err error) {
	if len(b) < len(mfMagic)+8+4+4+len(fileEnd) {
		return 0, nil, fmt.Errorf("%w: short manifest", ErrCorrupt)
	}
	if string(b[:len(mfMagic)]) != string(mfMagic) {
		return 0, nil, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	if string(b[len(b)-len(fileEnd):]) != string(fileEnd) {
		return 0, nil, fmt.Errorf("%w: missing manifest end marker", ErrCorrupt)
	}
	crcOff := len(b) - len(fileEnd) - 4
	if crc32.ChecksumIEEE(b[:crcOff]) != binary.LittleEndian.Uint32(b[crcOff:]) {
		return 0, nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	startTS = binary.LittleEndian.Uint64(b[len(mfMagic):])
	parts := int(binary.LittleEndian.Uint32(b[len(mfMagic)+8:]))
	if parts < 1 || parts > MaxParts || len(b) != len(mfMagic)+8+4+8*parts+4+len(fileEnd) {
		return 0, nil, fmt.Errorf("%w: manifest part count %d does not match length", ErrCorrupt, parts)
	}
	counts = make([]uint64, parts)
	for i := range counts {
		counts[i] = binary.LittleEndian.Uint64(b[len(mfMagic)+12+8*i:])
	}
	return startTS, counts, nil
}

func writeEntry(w *bufio.Writer, e Entry) error {
	var buf [10]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(e.Key)))
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	if _, err := w.Write(e.Key); err != nil {
		return err
	}
	var vh [18]byte
	binary.LittleEndian.PutUint64(vh[:8], e.Value.Version())
	binary.LittleEndian.PutUint64(vh[8:16], e.Value.ExpiresAt())
	binary.LittleEndian.PutUint16(vh[16:], uint16(e.Value.NumCols()))
	if _, err := w.Write(vh[:]); err != nil {
		return err
	}
	for i := 0; i < e.Value.NumCols(); i++ {
		col := e.Value.Col(i)
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(col)))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
		if _, err := w.Write(col); err != nil {
			return err
		}
	}
	return nil
}

// Info describes one on-disk checkpoint: a manifest plus Parts part files,
// or (Parts == 0) a legacy single file.
type Info struct {
	Path    string // manifest path, or the legacy checkpoint file
	StartTS uint64
	Parts   int
}

// ListFS returns the checkpoints in dir, oldest first. Part files without
// their manifest (a crashed multi-part write) are not listed.
func ListFS(fsys vfs.FS, dir string) ([]Info, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Info
	for _, e := range ents {
		if m := nameRE.FindStringSubmatch(e.Name()); m != nil {
			ts, _ := strconv.ParseUint(m[1], 10, 64)
			out = append(out, Info{Path: filepath.Join(dir, e.Name()), StartTS: ts})
			continue
		}
		if m := mfRE.FindStringSubmatch(e.Name()); m != nil {
			ts, _ := strconv.ParseUint(m[1], 10, 64)
			out = append(out, Info{Path: filepath.Join(dir, e.Name()), StartTS: ts, Parts: -1})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartTS != out[j].StartTS {
			return out[i].StartTS < out[j].StartTS
		}
		// At equal timestamps the manifest sorts last, so LoadLatestFS
		// (which walks the list backwards) prefers it over a legacy file.
		return out[i].Parts > out[j].Parts
	})
	return out, nil
}

// List is ListFS on the real filesystem.
func List(dir string) ([]Info, error) { return ListFS(vfs.OS{}, dir) }

// Read loads and validates one checkpoint completely before returning:
// every part's checksum and framing must check out, so the result is
// all-or-nothing (a torn or corrupt checkpoint returns ErrCorrupt and can
// be skipped in favor of an older one). Parts are read and parsed
// concurrently. The returned entries alias the loaded file buffers.
func Read(fsys vfs.FS, in Info) (startTS uint64, parts [][]Entry, err error) {
	if in.Parts == 0 { // legacy single file
		b, err := readCkptFile(fsys, in.Path)
		if err != nil {
			return 0, nil, err
		}
		ts, es, err := parseCkptFile(b)
		if err != nil {
			return 0, nil, err
		}
		return ts, [][]Entry{es}, nil
	}
	mb, err := readCkptFile(fsys, in.Path)
	if err != nil {
		return 0, nil, err
	}
	ts, counts, err := parseManifest(mb)
	if err != nil {
		return 0, nil, err
	}
	dir := filepath.Dir(in.Path)
	parts = make([][]Entry, len(counts))
	errs := make([]error, len(counts))
	var wg sync.WaitGroup
	for k := range counts {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			b, err := readCkptFile(fsys, filepath.Join(dir, PartName(ts, k)))
			if err != nil {
				errs[k] = err
				return
			}
			pts, es, err := parseCkptFile(b)
			if err != nil {
				errs[k] = err
				return
			}
			if pts != ts || uint64(len(es)) != counts[k] {
				errs[k] = fmt.Errorf("%w: part %d does not match manifest", ErrCorrupt, k)
				return
			}
			parts[k] = es
		}(k)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, nil, e
		}
	}
	return ts, parts, nil
}

// readCkptFile maps a missing file onto ErrCorrupt: a manifest whose part
// vanished (or a listed file racing a Drop) is a torn checkpoint to fall
// back from, not a fatal recovery error.
func readCkptFile(fsys vfs.FS, path string) ([]byte, error) {
	b, err := fsys.ReadFile(path)
	if errors.Is(err, iofs.ErrNotExist) {
		return nil, fmt.Errorf("%w: missing %s", ErrCorrupt, filepath.Base(path))
	}
	return b, err
}

// LoadLatestFS loads the newest valid checkpoint in dir, streaming entries
// to apply. It returns the checkpoint's start timestamp, or ErrNone if no
// valid checkpoint exists. Invalid (torn) checkpoints are skipped in favor
// of older valid ones. Each checkpoint is fully validated before the first
// apply call, so apply never sees a half-valid checkpoint.
func LoadLatestFS(fsys vfs.FS, dir string, apply func(Entry)) (startTS uint64, err error) {
	infos, err := ListFS(fsys, dir)
	if err != nil {
		return 0, err
	}
	for i := len(infos) - 1; i >= 0; i-- {
		ts, parts, loadErr := Read(fsys, infos[i])
		if loadErr != nil {
			if errors.Is(loadErr, ErrCorrupt) {
				continue
			}
			return 0, loadErr
		}
		for _, es := range parts {
			for _, e := range es {
				apply(e)
			}
		}
		return ts, nil
	}
	return 0, ErrNone
}

// LoadLatest is LoadLatestFS on the real filesystem.
func LoadLatest(dir string, apply func(Entry)) (startTS uint64, err error) {
	return LoadLatestFS(vfs.OS{}, dir, apply)
}

// LoadFS reads one checkpoint body file (legacy or a single part),
// validating the whole file — checksum and every entry — before applying
// anything (a checkpoint is all-or-nothing, never half-applied).
func LoadFS(fsys vfs.FS, path string, apply func(Entry)) (startTS uint64, err error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return 0, err
	}
	ts, es, err := parseCkptFile(b)
	if err != nil {
		return 0, err
	}
	for _, e := range es {
		apply(e)
	}
	return ts, nil
}

// Load is LoadFS on the real filesystem.
func Load(path string, apply func(Entry)) (startTS uint64, err error) {
	return LoadFS(vfs.OS{}, path, apply)
}

// parseCkptFile validates framing, checksum, and every entry of one body
// file, returning the decoded entries. Entries alias b. Both the current
// (expiry-carrying) and the v1 entry layout are accepted, keyed by magic.
func parseCkptFile(b []byte) (startTS uint64, es []Entry, err error) {
	if len(b) < len(fileMagic)+8+8+4+len(fileEnd) {
		return 0, nil, fmt.Errorf("%w: short file", ErrCorrupt)
	}
	v1 := string(b[:len(fileMagicV1)]) == string(fileMagicV1)
	if !v1 && string(b[:len(fileMagic)]) != string(fileMagic) {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if string(b[len(b)-len(fileEnd):]) != string(fileEnd) {
		return 0, nil, fmt.Errorf("%w: missing end marker", ErrCorrupt)
	}
	crcOff := len(b) - len(fileEnd) - 4
	wantCRC := binary.LittleEndian.Uint32(b[crcOff:])
	if crc32.ChecksumIEEE(b[:crcOff]) != wantCRC {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	body := b[len(fileMagic):crcOff]
	if len(body) < 16 {
		return 0, nil, fmt.Errorf("%w: short body", ErrCorrupt)
	}
	startTS = binary.LittleEndian.Uint64(body[:8])
	count := binary.LittleEndian.Uint64(body[len(body)-8:])
	body = body[8 : len(body)-8]
	// A tiny body cannot honestly hold a huge claimed count (each entry is
	// at least 14 bytes); bound the allocation by what could fit.
	if count > uint64(len(body)/14)+1 {
		return 0, nil, fmt.Errorf("%w: claimed count %d exceeds body", ErrCorrupt, count)
	}
	es = make([]Entry, 0, count)
	var puts []value.ColPut // reused scratch; BuildTTLAt copies
	for i := uint64(0); i < count; i++ {
		var e Entry
		var n int
		e, n, puts, err = parseEntry(body, puts, v1)
		if err != nil {
			return 0, nil, err
		}
		es = append(es, e)
		body = body[n:]
	}
	if len(body) != 0 {
		return 0, nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return startTS, es, nil
}

// parseEntry decodes one entry. The key aliases b; the value is built as a
// single packed allocation (the same representation the write path builds),
// so loading performs exactly one allocation per entry. v1 entries carry no
// expiry field and load with expiry 0.
func parseEntry(b []byte, scratch []value.ColPut, v1 bool) (Entry, int, []value.ColPut, error) {
	vhLen := 18 // version u64 | expiry u64 | ncols u16
	if v1 {
		vhLen = 10 // version u64 | ncols u16
	}
	if len(b) < 4 {
		return Entry{}, 0, scratch, fmt.Errorf("%w: short entry", ErrCorrupt)
	}
	klen := int(binary.LittleEndian.Uint32(b))
	p := 4
	if klen < 0 || len(b) < p+klen+vhLen {
		return Entry{}, 0, scratch, fmt.Errorf("%w: short entry", ErrCorrupt)
	}
	key := b[p : p+klen]
	p += klen
	version := binary.LittleEndian.Uint64(b[p:])
	p += 8
	expiry := uint64(0)
	if !v1 {
		expiry = binary.LittleEndian.Uint64(b[p:])
		p += 8
	}
	ncols := int(binary.LittleEndian.Uint16(b[p:]))
	p += 2
	scratch = scratch[:0]
	for i := 0; i < ncols; i++ {
		if len(b) < p+4 {
			return Entry{}, 0, scratch, fmt.Errorf("%w: short column", ErrCorrupt)
		}
		clen := int(binary.LittleEndian.Uint32(b[p:]))
		p += 4
		if clen < 0 || len(b) < p+clen {
			return Entry{}, 0, scratch, fmt.Errorf("%w: short column data", ErrCorrupt)
		}
		scratch = append(scratch, value.ColPut{Col: i, Data: b[p : p+clen]})
		p += clen
	}
	return Entry{Key: key, Value: value.BuildTTLAt(nil, scratch, version, 0, expiry)}, p, scratch, nil
}

// DropFS removes all checkpoints older than the one at keepTS, plus any
// orphaned part and temp files from crashed checkpoint attempts. Manifests
// go before their parts so a crash mid-drop leaves orphans, never a
// manifest whose parts are missing.
func DropFS(fsys vfs.FS, dir string, keepTS uint64) error {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	var parts, tmps []string
	for _, e := range ents {
		name := e.Name()
		if m := mfRE.FindStringSubmatch(name); m != nil {
			if ts, _ := strconv.ParseUint(m[1], 10, 64); ts < keepTS {
				if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
					return err
				}
			}
			continue
		}
		if m := nameRE.FindStringSubmatch(name); m != nil {
			if ts, _ := strconv.ParseUint(m[1], 10, 64); ts < keepTS {
				if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
					return err
				}
			}
			continue
		}
		if m := partRE.FindStringSubmatch(name); m != nil {
			if ts, _ := strconv.ParseUint(m[1], 10, 64); ts < keepTS {
				parts = append(parts, filepath.Join(dir, name))
			}
			continue
		}
		if strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".tmp") {
			tmps = append(tmps, filepath.Join(dir, name))
		}
	}
	for _, p := range append(parts, tmps...) {
		if err := fsys.Remove(p); err != nil {
			return err
		}
	}
	return nil
}

// Drop is DropFS on the real filesystem.
func Drop(dir string, keepTS uint64) error { return DropFS(vfs.OS{}, dir, keepTS) }
