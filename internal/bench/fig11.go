package bench

import (
	"fmt"
	"runtime"

	"repro/internal/baseline/partition"
	"repro/internal/core"
	"repro/internal/value"
	"repro/internal/workload"
)

// Fig11 reproduces Figure 11 (§6.6 partitioning and skew): get throughput of
// shared Masstree versus hard-partitioned Masstree as request skew grows.
// Skew follows Hua–Lee's single parameter delta: P-1 partitions receive
// equal load and the last receives delta times more. The partitioned
// store's hot instance saturates (its clients queue), throttling the whole
// system, while Masstree's shared tree absorbs the skew.
//
// The paper runs 16 partitions on 16 cores — one core each, so the hot
// partition can absorb at most 1/16 of the machine. The partition count
// here scales with GOMAXPROCS for the same reason: with more partitions
// than cores, goroutine executors are not core-bound and the bottleneck the
// experiment measures cannot form.
func Fig11(sc Scale) *Table {
	sc = sc.withDefaults()
	fig11Partitions := runtime.GOMAXPROCS(0)
	if fig11Partitions < 2 {
		fig11Partitions = 2
	}
	t := &Table{
		ID:      "fig11",
		Title:   fmt.Sprintf("skew tolerance, %d keys, %d partitions (Figure 11)", sc.Keys, fig11Partitions),
		Headers: []string{"delta", "Masstree Mreq/s", "hard-partitioned Mreq/s", "partitioned/shared"},
		Notes: []string{
			fmt.Sprintf("hard-partitioned = %d single-core Masstree instances (one per core, as in the paper) behind single-threaded executors, batched dispatch", fig11Partitions),
			"clients preserve the skew ratio, so a saturated hot partition throttles total throughput (§6.6)",
			fmt.Sprintf("at delta=9 the hot partition receives %.0f%% of requests", 100*10.0/float64(fig11Partitions+9)),
		},
	}

	// Pre-build per-partition key sets: keys are assigned by hash so both
	// systems see identical key->partition mapping.
	ps := partition.New(fig11Partitions, 8)
	defer ps.Close()
	perPart := make([][][]byte, fig11Partitions)
	mt := core.New()
	gen := workload.Decimal(42)
	for n := 0; n < sc.Keys; n++ {
		k := gen.Next()
		p := ps.PartitionFor(k)
		perPart[p] = append(perPart[p], k)
		v := value.New(k)
		mt.Put(k, v)
		ps.Do(p, []partition.Op{{Kind: partition.OpPut, Key: k, Value: v}})
	}

	for delta := 0; delta <= 9; delta++ {
		batches := sc.Ops / sc.Workers / sc.Batch
		if batches == 0 {
			batches = 1
		}

		// Shared Masstree: workers draw keys with the same partition-skewed
		// popularity; the shared tree does not care (flat line).
		skews := make([]*workload.PartitionSkew, sc.Workers)
		for w := range skews {
			skews[w] = workload.NewPartitionSkew(int64(w+1), fig11Partitions, float64(delta))
		}
		mtTput := measure(sc.Workers, batches*sc.Batch, func(w, i int) {
			p := skews[w].Next()
			keys := perPart[p]
			if len(keys) == 0 {
				return
			}
			mt.Get(keys[(i*61)%len(keys)])
		})

		// Hard-partitioned: each client message is a batch addressed to one
		// partition, chosen with skew; blocking dispatch preserves the ratio.
		for w := range skews {
			skews[w] = workload.NewPartitionSkew(int64(w+1), fig11Partitions, float64(delta))
		}
		ops := make([][]partition.Op, sc.Workers)
		for w := range ops {
			ops[w] = make([]partition.Op, sc.Batch)
		}
		hpTput := measure(sc.Workers, batches, func(w, i int) {
			p := skews[w].Next()
			keys := perPart[p]
			if len(keys) == 0 {
				return
			}
			batch := ops[w]
			for j := range batch {
				batch[j] = partition.Op{Kind: partition.OpGet, Key: keys[(i*sc.Batch+j)%len(keys)]}
			}
			ps.Do(p, batch)
		}) * float64(sc.Batch)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", delta), mops(mtTput), mops(hpTput), ratio(hpTput, mtTput),
		})
	}
	return t
}
