package core

import (
	"sync/atomic"
	"unsafe"
)

// width is the B+-tree fanout: keys per node (paper §4.2). Nodes of four
// 64-byte cache lines allow a fanout of 15, which the paper measured as the
// best total performance; wide nodes are prefetched in one DRAM round trip.
const width = 15

// nodeHeader is the common prefix of interior and border nodes: the version
// word and the parent pointer. It must be the first field of both node types
// so that a *nodeHeader can be converted back to the concrete node; the
// isborder version bit discriminates.
//
// A node's parent pointer is protected by the *parent's* lock (§4.5), so an
// interior split can reassign its children's parents without their locks.
type nodeHeader struct {
	version atomic.Uint64
	parent  atomic.Pointer[interiorNode]
}

// border converts the header back to its border node. The caller must know
// (via the isborder bit) that the node is a border node.
func (h *nodeHeader) border() *borderNode { return (*borderNode)(unsafe.Pointer(h)) }

// interior converts the header back to its interior node.
func (h *nodeHeader) interior() *interiorNode { return (*interiorNode)(unsafe.Pointer(h)) }

// interiorNode is an internal B+-tree node (Figure 2): nkeys key slices and
// nkeys+1 children. keyslice[i] is the inclusive lower bound of child[i+1].
// All fields after the header are written only under the node lock and read
// optimistically (validated by version snapshots), hence the atomics.
type interiorNode struct {
	h        nodeHeader
	nkeys    atomic.Int32
	keyslice [width]atomic.Uint64
	child    [width + 1]atomic.Pointer[nodeHeader]
}

// borderNode is a leaf-level node (Figure 2). Border nodes of a tree are
// doubly linked; next/prev speed range queries and are required by concurrent
// remove. A border node's prev pointer is protected by its previous sibling's
// lock; next by its own.
//
// lv[i] is the paper's link_or_value union: it holds either a *value.Value
// or, when keylen[i] == klLayer, a *nodeHeader for the next trie layer.
// keylen discriminates; lv is accessed only with atomic pointer operations.
type borderNode struct {
	h           nodeHeader
	permutation atomic.Uint64
	next        atomic.Pointer[borderNode]
	prev        atomic.Pointer[borderNode]

	// lowSlice/lowOrd form lowkey(n), the inclusive lower bound of the
	// node's key range. lowkey is constant over a node's lifetime (§4.6.4);
	// lowOrd == -1 means negative infinity (the tree's initial, leftmost
	// node, which is never deleted while the tree exists).
	lowSlice uint64
	lowOrd   int

	keyslice [width]atomic.Uint64
	keylen   [width]atomic.Uint32
	suffix   [width]atomic.Pointer[[]byte]
	lv       [width]unsafe.Pointer

	// usedMask tracks slots that have ever held a visible key. Reusing such
	// a slot must dirty the version (inserting) so concurrent readers that
	// located the old key in this slot retry (§4.6.5). Protected by the
	// node lock.
	usedMask uint16
}

// newBorder allocates a border node. rootTree marks it the root of a
// (possibly new) B+-tree layer; locked determines whether it starts locked.
func newBorder(rootTree, locked bool) *borderNode {
	n := &borderNode{lowOrd: -1}
	v := borderBit
	if rootTree {
		v |= rootBit
	}
	if locked {
		v |= lockBit
	}
	n.h.initVersion(v)
	n.permutation.Store(uint64(emptyPermutation()))
	return n
}

// newInterior allocates an interior node with the given extra version bits.
func newInterior(bits uint64) *interiorNode {
	n := &interiorNode{}
	n.h.initVersion(bits)
	return n
}

func (n *borderNode) perm() permutation { return permutation(n.permutation.Load()) }

func (n *borderNode) loadLV(slot int) unsafe.Pointer {
	return atomic.LoadPointer(&n.lv[slot])
}

func (n *borderNode) storeLV(slot int, p unsafe.Pointer) {
	atomic.StorePointer(&n.lv[slot], p)
}

func (n *borderNode) casLV(slot int, old, new unsafe.Pointer) bool {
	return atomic.CompareAndSwapPointer(&n.lv[slot], old, new)
}

// searchRank scans the live keys in permutation order for the search key
// (slice, ord). It returns the key's rank if found, or the rank at which the
// key would be inserted. Linear search: the paper found it as fast or faster
// than binary search at this fanout due to locality (§4.8).
//
// The reads race with writers; callers must validate the node version before
// trusting the result.
func (n *borderNode) searchRank(p permutation, slice uint64, ord int) (rank int, found bool) {
	cnt := p.count()
	for rank = 0; rank < cnt; rank++ {
		slot := p.slot(rank)
		ks := n.keyslice[slot].Load()
		if ks < slice {
			continue
		}
		if ks > slice {
			return rank, false
		}
		ko := ordOf(n.keylen[slot].Load())
		if ko < ord {
			continue
		}
		return rank, ko == ord
	}
	return cnt, false
}

// keyGEqLowkey reports whether a key with the given slice is at or beyond
// lowkey(n), i.e. could live in n or to its right. Because splits only ever
// fall on slice boundaries (§4.2: all keys with one slice share a border
// node), lowkey comparisons consider the slice alone: a node whose first key
// is (S, len 3) still owns every key with slice S, including shorter ones
// inserted later.
func (n *borderNode) keyGEqLowkey(slice uint64) bool {
	if n.lowOrd < 0 {
		return true
	}
	return slice >= n.lowSlice
}

// childFor returns the child covering the given key slice: child index is
// the number of keys <= slice, since keyslice[i] is the inclusive lower
// bound of child[i+1]. Races are validated by the caller's version checks;
// torn reads can only misroute, never crash, because stale children remain
// structurally valid.
func (in *interiorNode) childFor(slice uint64) *nodeHeader {
	nk := int(in.nkeys.Load())
	if nk < 0 {
		nk = 0
	} else if nk > width {
		nk = width
	}
	i := 0
	for i < nk && slice >= in.keyslice[i].Load() {
		i++
	}
	return in.child[i].Load()
}

// lockParent implements Figure 4's lockedparent: lock n's parent, retrying
// if the parent changes underneath us (an interior split can move n to a new
// parent without n's lock). Returns nil if n is a root. The caller must hold
// n's lock, which pins a nil parent (only n's own split can give it one).
//
//masstree:returns-locked
func (h *nodeHeader) lockParent() *interiorNode {
	for {
		p := h.parent.Load()
		if p == nil {
			return nil
		}
		p.h.lock()
		if h.parent.Load() == p {
			return p
		}
		p.h.unlock()
	}
}

// ascendToRoot walks parent pointers until reaching a node marked isroot
// (or with no parent). Used to recover from stale root pointers after root
// splits, which are repaired lazily (§4.6.4).
func ascendToRoot(h *nodeHeader) *nodeHeader {
	for !isRoot(h.version.Load()) {
		p := h.parent.Load()
		if p == nil {
			return h
		}
		h = &p.h
	}
	return h
}

// findBorder descends from root to the border node responsible for the key
// slice, using hand-over-hand version validation (Figure 6): a child's
// version is loaded before double-checking the parent's, so any split that
// could have moved the key is detected. A split retries from the root
// (counted in Stats.RootRetries); other changes retry from the current node
// (Stats.LocalRetries).
func (t *Tree) findBorder(root *nodeHeader, slice uint64) (*borderNode, uint64) {
retry:
	n := root
	v := n.stable()
	if !isRoot(v) {
		root = ascendToRoot(root)
		goto retry
	}
	for {
		if isBorder(v) {
			return n.border(), v
		}
		n1 := n.interior().childFor(slice)
		if n1 == nil {
			// Mid-shift or deleted interior; revalidate and retry.
			v1 := n.stable()
			if vsplit(v1) != vsplit(v) {
				t.stats.RootRetries.Add(1)
				goto retry
			}
			v = v1
			t.stats.LocalRetries.Add(1)
			continue
		}
		v1 := n1.stable()
		if !changed(n.version.Load(), v) {
			n = n1
			v = v1
			continue
		}
		v2 := n.stable()
		if vsplit(v2) != vsplit(v) {
			t.stats.RootRetries.Add(1)
			goto retry // split moved our range; retry from the root
		}
		v = v2 // an insert; retry from this node
		t.stats.LocalRetries.Add(1)
	}
}
