package btree

import (
	"bytes"
	"sync/atomic"

	"repro/internal/baseline/occ"
	"repro/internal/value"
)

// Scan visits keys >= start in order until fn returns false. Like
// Masstree's getrange it is not atomic: each border node is snapshotted
// under version validation and the border list is followed rightward.
func (t *Tree) Scan(start []byte, fn func(key []byte, v *value.Value) bool) {
	n, v := findBorder(t.root.Load(), start)
	resume := start
	inclusive := true
	type ent struct {
		k []byte
		v *value.Value
	}
	var ents []ent
	for {
		ents = ents[:0]
		ok := true
		p := perm(n.permutation.Load())
		cnt := t.liveCount(n, p)
		if cnt < 0 || cnt > width {
			ok = false
		}
		for rank := 0; ok && rank < cnt; rank++ {
			slot := t.slotOf(n, p, rank)
			bk := n.keys[slot].Load()
			vp := atomic.LoadPointer(&n.vals[slot])
			if bk == nil || vp == nil {
				ok = false
				break
			}
			ents = append(ents, ent{k: append([]byte(nil), bk.bytes()...), v: (*value.Value)(vp)})
		}
		next := n.next.Load()
		if v2 := n.h.version.Load(); !ok || occ.Changed(v2, v) {
			v = n.h.version.Stable()
			continue
		}
		for _, e := range ents {
			if resume != nil {
				if c := bytes.Compare(e.k, resume); c < 0 || (c == 0 && !inclusive) {
					continue
				}
			}
			if !fn(e.k, e.v) {
				return
			}
			resume = e.k
			inclusive = false
		}
		if next == nil {
			return
		}
		n = next
		v = n.h.version.Stable()
	}
}

// GetRange returns up to n pairs from the first key >= start.
func (t *Tree) GetRange(start []byte, n int) (keys [][]byte, vals []*value.Value) {
	t.Scan(start, func(k []byte, v *value.Value) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return len(keys) < n
	})
	return keys, vals
}
