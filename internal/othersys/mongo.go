package othersys

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/baseline/btree"
	"repro/internal/value"
)

// Mongolike models MongoDB 2.0 as the paper ran it: eight processes, each a
// B-tree "_id" index over documents on an in-memory filesystem, with the
// era's per-process global readers-writer lock and BSON document encoding
// and decoding on every operation. Its client library does not batch
// queries (Figure 12), so every op pays its own dispatch. Range queries are
// supported (it is a tree store — one of only two comparators that can run
// MYCSB-E).
type Mongolike struct {
	shards []*mongoShard
}

type mongoShard struct {
	mu   sync.RWMutex
	tree *btree.Tree
	exec *shard
}

// NewMongolike creates a store with the given shard (process) count.
func NewMongolike(shards int) *Mongolike {
	m := &Mongolike{}
	for i := 0; i < shards; i++ {
		m.shards = append(m.shards, &mongoShard{tree: btree.New(btree.WithPermuter()), exec: newShard()})
	}
	return m
}

// Name implements Batcher.
func (m *Mongolike) Name() string { return "mongodb-like" }

// SupportsRange implements Batcher.
func (m *Mongolike) SupportsRange() bool { return true }

// SupportsColumnPut implements Batcher (named-column documents).
func (m *Mongolike) SupportsColumnPut() bool { return true }

func (m *Mongolike) shardFor(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32()) % len(m.shards)
}

// bsonEncode flattens columns into a BSON-ish document blob: the real
// serialization work MongoDB performs per document write.
func bsonEncode(cols [][]byte) []byte {
	n := 4
	for _, c := range cols {
		n += 8 + len(c)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(cols)))
	for i, c := range cols {
		out = binary.LittleEndian.AppendUint32(out, uint32(i))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(c)))
		out = append(out, c...)
	}
	return out
}

// bsonDecode parses a document blob back into columns.
func bsonDecode(b []byte) [][]byte {
	if len(b) < 4 {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	cols := make([][]byte, n)
	for i := 0; i < n && len(b) >= 8; i++ {
		idx := int(binary.LittleEndian.Uint32(b))
		l := int(binary.LittleEndian.Uint32(b[4:]))
		b = b[8:]
		if l > len(b) || idx >= n {
			break
		}
		cols[idx] = b[:l]
		b = b[l:]
	}
	return cols
}

// Exec implements Batcher: no client batching, so each op dispatches alone
// through its shard's executor, taking the shard-global lock.
func (m *Mongolike) Exec(worker int, ops []Op) []Result {
	res := make([]Result, len(ops))
	for i := range ops {
		op := &ops[i]
		s := m.shards[m.shardFor(op.Key)]
		i := i
		s.exec.do(func() {
			switch op.Kind {
			case OpGet:
				s.mu.RLock()
				v, ok := s.tree.Get(op.Key)
				s.mu.RUnlock()
				if !ok {
					res[i] = Result{OK: false}
					return
				}
				doc := bsonDecode(v.Bytes())
				res[i] = Result{OK: true, Cols: pickColsSlice(doc, op.Cols)}
			case OpPut:
				s.mu.Lock()
				old, _ := s.tree.Get(op.Key)
				var doc [][]byte
				if old != nil {
					doc = bsonDecode(old.Bytes())
				}
				doc = applyPuts(doc, op.Puts)
				s.tree.Put(op.Key, value.New(bsonEncode(doc)))
				s.mu.Unlock()
				res[i] = Result{OK: true}
			case OpScan:
				res[i] = m.scanAll(op)
			}
		})
	}
	return res
}

// scanAll serves a range query: because keys are hash-partitioned, every
// shard must contribute (scatter-gather) and the results merge by key.
func (m *Mongolike) scanAll(op *Op) Result {
	var all []Pair
	for _, s := range m.shards {
		s.mu.RLock()
		keys, vals := s.tree.GetRange(op.Key, op.N)
		s.mu.RUnlock()
		for i, k := range keys {
			all = append(all, Pair{Key: k, Cols: pickColsSlice(bsonDecode(vals[i].Bytes()), op.Cols)})
		}
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	if len(all) > op.N {
		all = all[:op.N]
	}
	return Result{OK: true, Pairs: all}
}

func pickColsSlice(doc [][]byte, cols []int) [][]byte {
	if cols == nil {
		return doc
	}
	out := make([][]byte, len(cols))
	for i, c := range cols {
		if c < len(doc) {
			out[i] = doc[c]
		}
	}
	return out
}

func applyPuts(doc [][]byte, puts []value.ColPut) [][]byte {
	width := len(doc)
	for _, p := range puts {
		if p.Col+1 > width {
			width = p.Col + 1
		}
	}
	out := make([][]byte, width)
	copy(out, doc)
	for _, p := range puts {
		out[p.Col] = p.Data
	}
	return out
}

// Close implements Batcher.
func (m *Mongolike) Close() {
	for _, s := range m.shards {
		s.exec.close()
	}
}
