// Package kvstore assembles Masstree the system (§3, §5): the core tree,
// multi-column values, per-worker logging with group commit, periodic
// checkpoints, recovery, and epoch-scheduled maintenance.
//
// The store supports the paper's four operations — get(k), put(k, v),
// remove(k), and getrange(k, n) — each with an optional list of column
// numbers. Multi-column puts are atomic: a concurrent get sees all or none
// of a put's column modifications (§4.7).
//
// Version numbers and timestamps: the store draws both from per-worker
// loosely synchronized clocks (§5.1, see shardedClock), assigned under the
// owning border node's lock and lifted past the replaced value's version
// (and past every remove, for fresh inserts). Sequential updates to a value
// therefore obtain distinct increasing versions, log records are totally
// ordered per key (even across remove/re-insert), and recovery can apply
// each key's updates in increasing version order after cutting off at
// t = min over logs of the log's maximum durable timestamp (§5) — all
// without the global clock cache line every writer used to bounce.
//
// The write path mirrors the read path's batching and allocation
// discipline: PutBatchInto applies a batch in tree order with one border-
// node lock acquisition per run of co-located keys (§4.8), each put builds
// exactly one packed value allocation (value.BuildAt), and log records are
// encoded directly into the worker's double-buffered log (§5), so the
// steady-state put pipeline allocates only the value itself.
package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/obs"
	"repro/internal/value"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Config configures a Store.
type Config struct {
	// Dir is the persistence directory for logs and checkpoints. Empty
	// disables persistence entirely (a pure in-memory store).
	Dir string
	// Workers is the number of per-worker log files (the paper gives each
	// query thread its own log). Defaults to 1.
	Workers int
	// FlushInterval bounds how long a logged update may stay unforced
	// (200 ms in the paper). Defaults to wal.DefaultFlushInterval.
	FlushInterval time.Duration
	// SyncWrites forces logs to storage on each flush (fsync).
	SyncWrites bool
	// MaintainEvery is the epoch-advance and tree-maintenance period.
	// Defaults to 50 ms; 0 uses the default, negative disables.
	MaintainEvery time.Duration
	// CheckpointParts is how many concurrent part writers a checkpoint
	// uses — the key space is partitioned into that many disjoint ranges,
	// written as one part file each (§5: checkpoints are taken by multiple
	// threads over subranges), and recovery loads the parts concurrently.
	// 0 defaults to GOMAXPROCS; 1 writes a single part.
	CheckpointParts int
	// FS is the filesystem seam for logs and checkpoints. Nil means the
	// real filesystem; tests inject vfs.MemFS/vfs.Fault to model crashes
	// at every write/fsync/rename boundary.
	FS vfs.FS
	// MaxBytes switches the store into cache mode: accounted live bytes
	// (packed value sizes) are kept at or below this bound by the
	// S3-FIFO-inspired eviction policy running from the maintenance loop.
	// 0 disables eviction (the store only grows, as before). Evictions are
	// clean drops — no WAL remove is written — so after a crash evicted
	// keys may replay back; recovery then re-enforces the bound. See
	// internal/cache and the package comment's cache-mode section.
	MaxBytes int
	// Backend, when non-nil, arms the read-through tier: Session.GetOrLoad
	// resolves misses by loading from it (one flight per key, concurrent
	// misses coalesce), and Remove/eviction feed the write-behind queue.
	// Wrap it with backend.Wrap to get timeouts, retries, and the circuit
	// breaker; the store calls whatever it is given.
	Backend backend.Backend
	// NegativeTTL is how long an authoritative backend miss is remembered,
	// so absent hot keys cannot herd the backend either. 0 defaults to 1s;
	// negative disables negative caching.
	NegativeTTL time.Duration
	// MaxStale bounds stale-if-error: when the backend cannot answer,
	// GetOrLoad may serve a resident value whose TTL lapsed no more than
	// this long ago, flagged stale. 0 disables (errors propagate).
	MaxStale time.Duration
	// WriteBehind is the spill queue's depth in keys; eviction's clean
	// drops and Remove's tombstones queue here and drain to the Backend
	// asynchronously, coalescing per key, dropping the oldest entry (and
	// counting the drop) when full. 0 disables write-behind.
	WriteBehind int
	// NoObs disables the observability subsystem (the per-worker latency
	// histograms and the flight recorder, see internal/obs). Instrumentation
	// is on by default: its record paths are allocation-free and wait-free,
	// and the alloc pins and the obs bench experiment both run with it
	// armed. Turning it off exists for measuring its own overhead.
	NoObs bool
}

// Pair is one key plus requested columns, returned by GetRange.
type Pair struct {
	Key  []byte
	Cols [][]byte
}

// Store is a persistent in-memory key-value store backed by a Masstree.
// All methods are safe for concurrent use.
type Store struct {
	cfg   Config
	fsys  vfs.FS
	tree  *core.Tree
	clock *shardedClock
	logs  *wal.Set // nil when persistence is disabled
	mgr   epoch.Manager
	cache *cache.Cache

	// loader/wb are the read-through and write-behind tiers; both nil when
	// no Backend is configured (wb additionally requires WriteBehind > 0).
	loader *loader
	wb     *writeBehind

	// ttlUsed arms the maintenance loop's expiry sweep the first time any
	// value carries an expiry (PutTTL/Touch, or a recovered TTL record), so
	// TTL-free stores never pay for tree sweeps.
	ttlUsed atomic.Bool
	// evictH is the maintenance loop's epoch handle: evictions and expiry
	// sweeps run inside Enter/Exit so deferred structural reclamation waits
	// for them like for any session's operation.
	evictH *epoch.Handle
	// sweepCursor/sweepKeys are the incremental expiry sweep's position and
	// reusable victim buffer; owned by the maintenance context.
	sweepCursor []byte
	sweepKeys   [][]byte
	sweepArena  []byte
	sweepBuf    []byte

	// workerMu[w] serializes worker w's version-draw-to-log-append window
	// (only taken when logging is enabled). Sessions sharing a worker id
	// would otherwise interleave draw and append, letting a key's records
	// reach the shared log out of timestamp order — after a crash the log's
	// maximum durable timestamp would then claim a lost record as durable
	// and replay a later delta onto an earlier state. With one session per
	// worker (the paper's arrangement) the mutex is uncontended and stays
	// on its own cache line. It also gates timestamp marks: the maintenance
	// loop marks a log only when it can TryLock the worker, proving no
	// drawn-but-unappended version exists below the mark.
	workerMu []paddedMutex

	ckptMu sync.Mutex // one checkpoint at a time

	// obs is the observability registry: latency histograms for every
	// internal stage plus the flight recorder. Nil when Config.NoObs — and
	// every record site tolerates that, so "off" costs one nil check.
	obs *obs.Registry

	// recovered is what Open's recovery observed; immutable afterwards.
	recovered RecoveryStats

	stop chan struct{}
	wg   sync.WaitGroup
}

// RecoveryStats reports what Open's recovery observed. Both counts are
// zero on a clean restart; nonzero values mean log state vanished between
// the crash and the reopen (operator intervention, device loss) and
// recovery detected it instead of serving a mis-merged value.
type RecoveryStats struct {
	// BrokenChains counts keys whose replay chain had a broken prev link —
	// a partial-column record whose base was never rebuilt because a
	// predecessor's log vanished. Each such key was rolled back to its
	// last anchored prefix rather than mis-merged.
	BrokenChains int64
	// MissingLogs counts log files the directory's logset expected but
	// recovery could not find (wal.RecoveryResult.MissingLogs).
	MissingLogs int64
}

// RecoveryStats reports what the last Open's recovery observed.
func (s *Store) RecoveryStats() RecoveryStats { return s.recovered }

// Obs returns the store's observability registry — latency histograms and
// the flight recorder. Nil when Config.NoObs; obs instruments are nil-safe,
// so callers may chain without checking (s.Obs().Hist(...).Record(...)).
func (s *Store) Obs() *obs.Registry { return s.obs }

// obsRecoveryPhase records one recovery phase: its duration lands in the
// recovery histogram and as a flight-recorder event, and the phase clock
// advances so the next phase measures only itself.
func (s *Store) obsRecoveryPhase(phase uint64, start *time.Time) {
	d := time.Since(*start)
	*start = time.Now()
	s.obs.Hist(obs.HRecovery).Record(0, d)
	s.obs.Recorder().Record(0, obs.EvRecoveryPhase, phase, uint64(d))
}

// Open creates a store, recovering from the newest valid checkpoint plus
// logs when cfg.Dir holds a previous incarnation's state.
func Open(cfg Config) (*Store, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaintainEvery == 0 {
		cfg.MaintainEvery = 50 * time.Millisecond
	}
	if cfg.NegativeTTL == 0 {
		cfg.NegativeTTL = time.Second
	}
	s := &Store{
		cfg:      cfg,
		fsys:     cfg.FS,
		tree:     core.New(),
		clock:    newShardedClock(cfg.Workers),
		cache:    cache.New(cfg.Workers, cfg.MaxBytes),
		workerMu: make([]paddedMutex, cfg.Workers),
		stop:     make(chan struct{}),
	}
	if s.fsys == nil {
		s.fsys = vfs.OS{}
	}
	if !cfg.NoObs {
		// Built before recovery so the recovery phases are themselves timed
		// and replay's chain rollbacks land in the flight recorder.
		s.obs = obs.NewRegistry(cfg.Workers)
	}
	if cfg.Dir != "" {
		if err := s.fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	s.evictH = s.mgr.Register()
	if cfg.Backend != nil {
		s.loader = newLoader(s, cfg.Backend)
		if cfg.WriteBehind > 0 {
			s.wb = newWriteBehind(cfg.Backend, cfg.WriteBehind)
		}
	}
	// Cache mode re-enforces the bound over recovered state: replay may have
	// brought back evicted keys (their drops were never logged) and the
	// accounted total starts from whatever survived, so seed the policy with
	// every recovered key and evict straight back down to the budget before
	// serving.
	s.seedCache()
	if cfg.MaintainEvery > 0 {
		s.wg.Add(1)
		go s.maintainLoop()
	}
	return s, nil
}

// seedCache charges the accounting shards for every key already in the tree
// (recovered state) and, in cache mode, admits the keys to the eviction
// policy and enforces the byte bound synchronously. Runs before any
// concurrent access exists.
func (s *Store) seedCache() {
	var total int64
	buf := make([]byte, 0, 64)
	//lint:allow epochguard seedCache runs during Open, before any concurrent access or reclamation exists
	s.tree.ScanInto(nil, buf, func(k []byte, v *value.Value) bool {
		total += int64(v.Size())
		if v.ExpiresAt() != 0 {
			s.ttlUsed.Store(true)
		}
		s.cache.Seed(k, v.Size())
		return true
	})
	if total != 0 {
		s.cache.Account(-1, total)
	}
	if s.cache.EvictionEnabled() {
		s.cacheMaintain()
	}
}

// recover loads the latest valid checkpoint — all parts concurrently, each
// batch-inserted so runs of adjacent keys share one border-node lock
// acquisition — then replays the logs beyond it in parallel, restores the
// clock, and opens a fresh log generation (never appending to a file that
// may end in a torn record).
func (s *Store) recover() error {
	phase := time.Now()
	var maxVersion atomic.Uint64
	ckptTS, fromManifest, err := s.loadCheckpoint(&maxVersion)
	if err != nil && err != checkpoint.ErrNone {
		return fmt.Errorf("kvstore: loading checkpoint: %w", err)
	}
	s.obsRecoveryPhase(obs.RecPhaseCheckpoint, &phase)
	// Only manifest-format checkpoints were written under CheckpointN's
	// synchronize-and-drain protocol, the precondition for treating every
	// record at or below the checkpoint timestamp as fully reflected in
	// it. For those, records <= ckptTS are excluded from replay AND from
	// the cutoff computation: replaying one could resurrect a key whose
	// remove only the checkpoint remembers (absence cannot version-guard),
	// and letting a crash-resurrected old-generation log constrain the
	// cutoff with pre-checkpoint timestamps would discard the durable
	// post-checkpoint tail of busier logs. A legacy single-file checkpoint
	// (an earlier incarnation's data) gives no such guarantee — a lagging
	// clock shard could have issued ts <= ckptTS for a write the fuzzy
	// scan missed — so for those everything replays under the version
	// guard, as before.
	replayCut := uint64(0)
	if fromManifest {
		replayCut = ckptTS
	}
	res, err := wal.RecoverDirAboveFS(s.fsys, s.cfg.Dir, replayCut)
	if err != nil {
		return fmt.Errorf("kvstore: scanning logs: %w", err)
	}
	s.obsRecoveryPhase(obs.RecPhaseLogParse, &phase)
	// Chain-validated replay: each key's records arrive in increasing TS
	// order, and a linked (v2, non-anchor) record merges only when its prev
	// link matches the state replay rebuilt. A mismatch means the record's
	// base was never rebuilt — a predecessor's log vanished wholesale, so
	// the vanished log constrained neither the cutoff nor anything else —
	// and merging anyway would fabricate a column mix no execution
	// produced. The key stays at its last anchored prefix instead (refusal
	// IS the rollback: records replay in version order, so whatever the
	// key holds when a link breaks is the longest prefix the surviving
	// logs can vouch for), and the rollback is counted in BrokenChains.
	// Once a link breaks, later linked records cannot spuriously match the
	// stale state (versions strictly increase past it); only an anchor —
	// an insert, or a column-complete prev==0 record — resumes the key.
	// Values are rebuilt with the record's originating worker as their
	// worker tag, so cross-log handoff detection stays exact after a
	// restart.
	var brokenChains atomic.Int64
	res.ReplayByKey(max(4, runtime.GOMAXPROCS(0)), func(recs []wal.Record) {
		broken := false
		for _, r := range recs {
			switch r.Op {
			case wal.OpPut, wal.OpPutTTL, wal.OpInsert, wal.OpInsertTTL:
				s.tree.Update(r.Key, func(old *value.Value) *value.Value {
					if old != nil && old.Version() >= r.TS {
						return old // already reflected (e.g. via the checkpoint)
					}
					if r.Op.IsInsert() || (!r.Unlinked && r.Prev == 0) {
						// Chain anchor: executed against an absent (or
						// lazily-expired) base, or carrying every column of
						// the value it published (handoff anchors, Touch).
						// Replace rather than merge, so stale records of a
						// cleanly-dropped (evicted/swept) predecessor cannot
						// fold their columns into the recovered value.
						return value.BuildTTLAt(nil, r.Puts, r.TS, uint32(r.Worker), r.Expiry)
					}
					if !r.Unlinked && old.Version() != r.Prev {
						broken = true
						return old // broken chain: hold the anchored prefix
					}
					return value.BuildTTLAt(old, r.Puts, r.TS, uint32(r.Worker), r.Expiry)
				})
			case wal.OpRemove:
				if v, ok := s.tree.Get(r.Key); ok && v.Version() < r.TS {
					s.tree.Remove(r.Key)
				}
			}
		}
		if broken {
			brokenChains.Add(1)
			s.obs.Recorder().Record(int(recs[0].Worker), obs.EvChainBreak, obs.KeyHash(recs[0].Key), 0)
		}
	})
	s.obsRecoveryPhase(obs.RecPhaseReplay, &phase)
	s.recovered.BrokenChains = brokenChains.Load()
	s.recovered.MissingLogs = int64(res.MissingLogs)
	if res.MissingLogs > 0 {
		s.obs.Recorder().Record(0, obs.EvLogMissing, uint64(res.MissingLogs), 0)
	}
	// Seed the clocks past everything the previous incarnation could have
	// issued: replayed log timestamps, checkpointed value versions, and the
	// checkpoint's own start timestamp. The last matters when removes (whose
	// timestamps live in no value) lifted the clock before a checkpoint
	// reclaimed the logs that recorded them — without it, a later checkpoint
	// could carry a lower start timestamp than a surviving older one and
	// LoadLatest would restore the stale state.
	clock := res.MaxTS
	if mv := maxVersion.Load(); mv > clock {
		clock = mv
	}
	if ckptTS > clock {
		clock = ckptTS
	}
	s.clock.seed(clock)
	logs, err := wal.OpenSetFS(s.fsys, s.cfg.Dir, s.cfg.Workers, res.MaxGen+1, s.cfg.SyncWrites, s.cfg.FlushInterval)
	if err != nil {
		return err
	}
	logs.Observe(s.obs.Hist(obs.HWALFlush), s.obs.Recorder())
	s.logs = logs
	return nil
}

// loadCheckpoint finds the newest fully valid checkpoint and loads its
// parts concurrently, one goroutine per part. Parts cover disjoint key
// ranges, so the inserts never contend on a key; the version guard keeps
// the load idempotent against anything else in the tree. fromManifest
// reports whether the loaded checkpoint was the manifest (multi-part)
// format, i.e. written by CheckpointN's synchronize-and-drain protocol.
func (s *Store) loadCheckpoint(maxVersion *atomic.Uint64) (ts uint64, fromManifest bool, err error) {
	infos, err := checkpoint.ListFS(s.fsys, s.cfg.Dir)
	if err != nil {
		return 0, false, err
	}
	for i := len(infos) - 1; i >= 0; i-- {
		ts, parts, err := checkpoint.Read(s.fsys, infos[i])
		if err != nil {
			if errors.Is(err, checkpoint.ErrCorrupt) {
				continue // torn or damaged: fall back to an older checkpoint
			}
			return 0, false, err
		}
		var wg sync.WaitGroup
		for _, es := range parts {
			wg.Add(1)
			go func(es []checkpoint.Entry) {
				defer wg.Done()
				s.insertCheckpointPart(es, maxVersion)
			}(es)
		}
		wg.Wait()
		return ts, infos[i].Parts != 0, nil
	}
	return 0, false, checkpoint.ErrNone
}

// insertCheckpointPart inserts one part's entries in batched chunks:
// entries arrive in key order, so PutBatchInto applies whole runs of
// adjacent keys under a single border-node lock acquisition instead of one
// full descent per key.
func (s *Store) insertCheckpointPart(es []checkpoint.Entry, maxVersion *atomic.Uint64) {
	const chunk = 256
	var sc core.BatchScratch
	keys := make([][]byte, 0, chunk)
	localMax := uint64(0)
	for base := 0; base < len(es); base += chunk {
		end := min(base+chunk, len(es))
		keys = keys[:0]
		for _, e := range es[base:end] {
			keys = append(keys, e.Key)
		}
		s.tree.PutBatchInto(keys, &sc, func(i int, old *value.Value) *value.Value {
			e := es[base+i]
			if v := e.Value.Version(); v > localMax {
				localMax = v
			}
			if old != nil && old.Version() >= e.Value.Version() {
				return nil // already reflected; decline
			}
			return e.Value
		})
	}
	for {
		cur := maxVersion.Load()
		if localMax <= cur || maxVersion.CompareAndSwap(cur, localMax) {
			return
		}
	}
}

func (s *Store) maintainLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.MaintainEvery)
	defer t.Stop()
	lastMark := uint64(0)
	for {
		select {
		case <-s.cache.Wake():
			// A worker's accounting probe saw the byte budget exceeded:
			// evict now instead of waiting out the tick, bounding overshoot
			// to roughly one eviction batch. (Wake() is nil — and this case
			// inert — when eviction is disabled.)
			s.cacheMaintain()
		case <-t.C:
			s.cacheMaintain()
			// Deferred structural clean-up runs through the epoch manager,
			// exactly as the paper schedules reclamation tasks (§4.6.5):
			// the collapse executes only after concurrent readers have
			// moved past the epoch in which the layer emptied.
			if s.tree.PendingMaintenance() > 0 {
				s.mgr.Retire(func() { s.tree.Maintain() })
			}
			s.mgr.Advance()
			// Loose clock synchronization (§5.1): lift lagging worker
			// clocks to the global maximum, and write that maximum as a
			// timestamp mark to each log. The marks are what keep the
			// recovery cutoff fresh — an idle worker's log otherwise
			// retains a stale maximum durable timestamp and t = min over
			// logs would discard every busier log's tail.
			//
			// Soundness: shards are lifted to m first, so any operation
			// drawing a version after this point exceeds m; and a log is
			// only marked while its worker's draw-to-append mutex is free
			// (TryLock), so the mark never claims durability for a drawn-
			// but-unappended record. Unchanged m means no new writes:
			// skip, so idle stores do not grow their logs.
			if m := s.clock.synchronize(); s.logs != nil && m > lastMark {
				all := true
				for w := 0; w < s.logs.Workers(); w++ {
					if mu := &s.workerMu[w]; mu.TryLock() {
						s.logs.Writer(w).AppendMark(m)
						mu.Unlock()
					} else {
						all = false // busy worker: retry next tick
					}
				}
				if all {
					lastMark = m
				}
			}
		case <-s.stop:
			return
		}
	}
}

// cacheMaintain runs one cache-mode maintenance pass: the incremental TTL
// sweep, then the policy drain-and-evict. Both remove keys through the
// border-lock remove path under the maintenance epoch handle, so deferred
// structural reclamation treats them like any session's operation.
func (s *Store) cacheMaintain() {
	if !s.ttlUsed.Load() && !s.cache.EvictionEnabled() {
		return
	}
	if h := s.obs.Hist(obs.HEvict); h != nil {
		start := time.Now()
		defer func() { h.Record(0, time.Since(start)) }()
	}
	s.evictH.Enter()
	defer s.evictH.Exit()
	if s.ttlUsed.Load() {
		// Adaptive catch-up: one batch per tick suffices when expirations
		// trickle, but a TTL-heavy store (especially with eviction disabled,
		// where nothing else reclaims memory) can lapse keys faster than
		// sweepBatchKeys per tick. Keep sweeping while batches come back
		// dense with expired keys, up to a bounded number of rounds, so the
		// sweep rate scales with the backlog instead of pinning at one
		// batch regardless of it.
		now := time.Now().UnixNano()
		for round := 0; round < maxSweepRounds; round++ {
			if s.sweepExpired(now) < sweepBatchKeys/8 {
				break
			}
		}
	}
	s.cache.Maintain(s.evictKey)
}

// evictKey is the policy's remove callback: a clean drop through the same
// border-lock remove path as Remove, minus the WAL record. The predicate
// accepts whatever value is current — a put racing the eviction decision
// may see its value dropped immediately, which cache semantics permit
// (indistinguishable from evicting the key a moment after the put; the
// torture model's dropped-key rule covers exactly this). The remove floor
// is still lifted under the lock — a later re-insert of the key must draw a
// version above the dropped value's, or log replay would apply the new put
// before (and thus lose it to) the old one's higher version guard.
func (s *Store) evictKey(key []byte) bool {
	var delta int64
	var spill *value.Value
	_, ok := s.tree.RemoveIf(key, func(old *value.Value) bool {
		s.clock.noteRemove(old.Version())
		delta = -int64(old.Size())
		// Write-behind turns the clean drop into a spill: the evicted value
		// (immutable, so retaining the pointer is free) queues for the
		// backend unless it is already dead by TTL.
		if s.wb != nil && !expired(old) {
			spill = old
		}
		return true
	})
	if ok {
		s.cache.Account(-1, delta)
		s.obs.Recorder().Record(0, obs.EvEvict, obs.KeyHash(key), uint64(-delta))
		if spill != nil {
			s.wb.enqueue(key, spill)
		}
	}
	return ok
}

// sweepBatchKeys bounds how many keys one sweep batch inspects for expiry;
// maxSweepRounds bounds how many batches one maintenance tick chains when
// the batches keep coming back dense with expired keys (see cacheMaintain).
// Together they cap a tick's sweep work while letting the reclaim rate
// grow ~32x under backlog.
const (
	sweepBatchKeys = 512
	maxSweepRounds = 32
)

// sweepExpired scans up to sweepBatchKeys keys from the sweep cursor,
// physically removing values whose expiry has lapsed, and returns how many
// it dropped. Removals are clean drops (no WAL record): the expiry travels
// inside every logged value, so a replayed copy simply re-expires. RemoveIf
// re-checks expiry under the border lock — a concurrent fresh put between
// scan and removal wins.
//
// With a backend and MaxStale configured, the sweep horizon moves back by
// MaxStale: an expired-but-recent value is the stale-if-error reserve the
// loader serves during a backend outage, so the sweeper must not reclaim it
// until the stale window has also lapsed. (Reads still treat it as expired;
// only physical removal is deferred. Cache-pressure eviction is not — under
// a byte budget, memory wins over the stale reserve.) Runs under the
// maintenance epoch handle (cacheMaintain pins evictH).
//
//masstree:pinned
func (s *Store) sweepExpired(now int64) int {
	if s.loader != nil && s.cfg.MaxStale > 0 {
		now -= int64(s.cfg.MaxStale)
	}
	s.sweepKeys = s.sweepKeys[:0]
	s.sweepArena = s.sweepArena[:0]
	seen := 0
	var last []byte // copied per key: the scan's key buffer is reused
	if s.sweepBuf == nil {
		s.sweepBuf = make([]byte, 0, 64)
	}
	s.sweepBuf = s.tree.ScanInto(s.sweepCursor, s.sweepBuf, func(k []byte, v *value.Value) bool {
		seen++
		if v.Expired(now) {
			off := len(s.sweepArena)
			s.sweepArena = append(s.sweepArena, k...)
			s.sweepKeys = append(s.sweepKeys, s.sweepArena[off:len(s.sweepArena):len(s.sweepArena)])
		}
		last = append(last[:0], k...)
		return seen < sweepBatchKeys
	})
	if seen < sweepBatchKeys {
		s.sweepCursor = s.sweepCursor[:0] // reached the end: wrap to the start
	} else {
		// Resume just past the last visited key (append a 0 byte: the
		// smallest strictly-greater key).
		s.sweepCursor = append(append(s.sweepCursor[:0], last...), 0)
	}
	var dropped int64
	for _, k := range s.sweepKeys {
		var delta int64
		_, ok := s.tree.RemoveIf(k, func(old *value.Value) bool {
			if !old.Expired(now) {
				return false // re-put since the scan: keep it
			}
			s.clock.noteRemove(old.Version())
			delta = -int64(old.Size())
			return true
		})
		if ok {
			s.cache.Account(-1, delta)
			s.cache.NoteRemove(0, k)
			dropped++
		}
	}
	if dropped != 0 {
		s.cache.NoteExpirations(dropped)
		s.obs.Recorder().Record(0, obs.EvExpire, uint64(dropped), 0)
	}
	return int(dropped)
}

// CacheStats snapshots the cache-mode counters: accounted live bytes,
// evictions, expirations, and ghost hits. BytesLive is meaningful (and
// cheap) in every mode; the rest stay zero unless MaxBytes/TTLs are in use.
func (s *Store) CacheStats() cache.Stats { return s.cache.Stats() }

// MaxBytes reports the configured cache-mode byte budget (0 = unbounded).
func (s *Store) MaxBytes() int64 { return s.cache.MaxBytes() }

// Tree exposes the underlying Masstree (benchmarks and tests).
func (s *Store) Tree() *core.Tree { return s.tree }

// Epoch exposes the store's epoch manager (sessions register handles).
func (s *Store) Epoch() *epoch.Manager { return &s.mgr }

// Len returns the number of keys.
func (s *Store) Len() int { return s.tree.Len() }

// expired reports whether v carries a lapsed expiry — the lazy half of TTL
// enforcement: every read path treats an expired value as absent the moment
// its deadline passes, without waiting for the background sweep to remove
// it physically. time.Now is only consulted for values that carry an expiry
// at all, so TTL-free workloads pay one header load and a branch.
func expired(v *value.Value) bool {
	e := v.ExpiresAt()
	return e != 0 && e <= uint64(time.Now().UnixNano())
}

// Get returns the requested columns of key's value, or (nil, false) if the
// key is absent. cols == nil returns all columns. The caller must hold an
// epoch pin (Session.Get does).
//
//masstree:pinned
func (s *Store) Get(key []byte, cols []int) ([][]byte, bool) {
	v, ok := s.tree.Get(key)
	if !ok || expired(v) {
		return nil, false
	}
	return pickCols(v, cols), true
}

// GetInto is Get appending the requested columns to dst instead of
// allocating a fresh slice; it returns the extended slice. With a reused
// dst the read path performs no allocations (the column contents alias the
// immutable value, so no byte copying happens either). The caller must hold
// an epoch pin.
//
//masstree:pinned
//masstree:noalloc
func (s *Store) GetInto(key []byte, cols []int, dst [][]byte) ([][]byte, bool) {
	v, ok := s.tree.Get(key)
	if !ok || expired(v) {
		return dst, false
	}
	return AppendCols(dst, v, cols), true
}

// GetValue returns the whole value object. The caller must hold an epoch
// pin.
//
//masstree:pinned
func (s *Store) GetValue(key []byte) (*value.Value, bool) {
	v, ok := s.tree.Get(key)
	if !ok || expired(v) {
		return nil, false
	}
	return v, true
}

// BatchScratch holds reusable state for GetBatchInto and PutBatchInto: the
// result slices and the core tree's batch-ordering scratch. One scratch per
// worker or connection makes steady-state batched reads and writes
// allocation-free (beyond the packed values a put must build).
type BatchScratch struct {
	vals    []*value.Value
	found   []bool
	vers    []uint64
	sizes   []int          // packed sizes of a put batch's new values (cache admission)
	inserts []bool         // which batch entries executed against an absent base
	prevs   []uint64       // replaced-value versions (wal chain links; 0 for inserts)
	anchors []*value.Value // new values of cross-log handoff entries (nil otherwise)
	core    core.BatchScratch
}

// GetBatch retrieves many keys at once, processing them in tree order to
// share cache paths between descents (§4.8's PALM-style batching). Results
// are in input order; cols == nil returns all columns. The caller must hold
// an epoch pin.
//
//masstree:pinned
func (s *Store) GetBatch(keys [][]byte, cols []int) (out [][][]byte, found []bool) {
	var sc BatchScratch
	vals, ok := s.GetBatchInto(keys, &sc)
	return extractBatchCols(vals, ok, cols), ok
}

// extractBatchCols materializes per-key column sets from batched values;
// shared by the allocating GetBatch wrappers.
func extractBatchCols(vals []*value.Value, ok []bool, cols []int) [][][]byte {
	out := make([][][]byte, len(vals))
	for i, v := range vals {
		if ok[i] {
			out[i] = pickCols(v, cols)
		}
	}
	return out
}

// GetBatchInto is the allocation-free batched lookup: values and found
// flags are written into sc's reusable slices and remain valid until the
// next call with the same scratch. Column extraction is left to the caller
// (each request in a batch may want different columns); use AppendCols.
// The caller must hold an epoch pin.
//
//masstree:pinned
//masstree:noalloc
func (s *Store) GetBatchInto(keys [][]byte, sc *BatchScratch) ([]*value.Value, []bool) {
	n := len(keys)
	if cap(sc.vals) < n {
		sc.vals = make([]*value.Value, n) //lint:allow noalloc scratch warm-up: amortized over the scratch lifetime
		sc.found = make([]bool, n)        //lint:allow noalloc scratch warm-up: amortized over the scratch lifetime
	}
	sc.vals = sc.vals[:n]
	sc.found = sc.found[:n]
	s.tree.GetBatchInto(keys, sc.vals, sc.found, &sc.core)
	for i := range sc.found {
		if sc.found[i] && expired(sc.vals[i]) {
			sc.vals[i], sc.found[i] = nil, false
		}
	}
	return sc.vals, sc.found
}

// AppendCols appends the requested columns of v (nil = all) to dst and
// returns the extended slice. The appended slices alias v's immutable
// packed allocation and must not be mutated.
func AppendCols(dst [][]byte, v *value.Value, cols []int) [][]byte {
	if cols == nil {
		for i, n := 0, v.NumCols(); i < n; i++ {
			dst = append(dst, v.Col(i))
		}
		return dst
	}
	for _, c := range cols {
		dst = append(dst, v.Col(c))
	}
	return dst
}

func pickCols(v *value.Value, cols []int) [][]byte {
	if cols == nil {
		return v.Cols()
	}
	return AppendCols(make([][]byte, 0, len(cols)), v, cols)
}

// nextVersion draws key's next version from worker's clock. It runs under
// the owning border node's lock: updates lift the clock past the replaced
// value's version, inserts past every remove (see shardedClock).
func (s *Store) nextVersion(worker int, old *value.Value) uint64 {
	if old == nil {
		return s.clock.tick(worker, s.clock.removeFloor.Load())
	}
	return s.clock.tick(worker, old.Version())
}

// expireBase implements the write-side half of lazy expiry, under the
// owning border node's lock. An expired old value reads as absent, so a
// write over it must behave like a write over an absent key: the new value
// builds on a nil base (a partial-column put must not resurrect the dead
// value's other columns) and is logged as an insert record, which replay
// applies as a replacement (wal.OpInsert) so recovery rebuilds the same
// columns the live store served. The physical old value still orders the
// clock — an implicit remove's timestamp is drawn past its version and the
// remove floor lifted, exactly like Remove — so the caller's subsequent
// version draw (against the nil base, flooring on removeFloor) lands above
// everything the dead value logged. Returns the base to build on.
func (s *Store) expireBase(worker int, old *value.Value) *value.Value {
	if old == nil || !expired(old) {
		return old
	}
	s.clock.noteRemove(s.clock.tick(worker, old.Version()))
	return nil
}

// anchorPuts materializes every column of nv as a ColPut slice, for logging
// a column-complete chain-anchor record (cross-log handoffs, Touch). The
// Data slices alias nv's immutable packed allocation; the log writer copies
// them into its buffer. One slice allocation — the handoff path's second
// alloc, pinned by TestHandoffAnchorAllocs.
func anchorPuts(nv *value.Value) []value.ColPut {
	puts := make([]value.ColPut, nv.NumCols())
	for i := range puts {
		puts[i] = value.ColPut{Col: i, Data: nv.Col(i)}
	}
	return puts
}

// Put applies the column modifications to key atomically, logging through
// the given worker's log, and returns the new value's version. Neither puts
// nor the Data slices are retained: both are copied into the packed value
// and the log buffer.
//
// Logging chains the record to the replaced value's version (wal format
// v2), with one exception: when the replaced value's version was stamped
// through a different worker's log (base.Worker() != worker — a cross-log
// handoff), the record is logged column-complete with prev == 0, anchoring
// the key's chain in this log. No replay chain ever spans log files without
// an anchor, so a vanished log is always detectable at recovery.
func (s *Store) Put(worker int, key []byte, puts []value.ColPut) uint64 {
	if s.logs != nil {
		mu := s.lockWorker(worker)
		defer mu.Unlock()
	}
	var ver, prev uint64
	var delta int64
	var size int
	var nv *value.Value
	insert, handoff := false, false
	s.tree.Update(key, func(old *value.Value) *value.Value {
		base := s.expireBase(worker, old)
		insert = base == nil
		prev = base.Version() // nil-safe: 0 for absent keys
		handoff = base != nil && base.Worker() != uint32(worker)
		ver = s.nextVersion(worker, base)
		nv = value.BuildAt(base, puts, ver, uint32(worker))
		size = nv.Size()
		delta = int64(size - old.Size())
		return nv
	})
	if s.logs != nil {
		switch {
		case insert:
			s.logs.Writer(worker).AppendInsert(ver, key, puts)
		case handoff:
			s.logs.Writer(worker).AppendPut(ver, 0, key, anchorPuts(nv))
		default:
			s.logs.Writer(worker).AppendPut(ver, prev, key, puts)
		}
	}
	s.noteWrite(key)
	s.cache.Account(worker, delta)
	s.cache.NotePut(worker, key, size)
	s.cache.HelpEnforce(s.evictKey)
	return ver
}

// noteWrite tells the read-through tier a key now exists (negative-cache
// invalidation); free when no backend is configured.
func (s *Store) noteWrite(key []byte) {
	if s.loader != nil {
		s.loader.noteWrite(key)
	}
}

// PutTTL is Put with an expiry deadline (unix nanoseconds; 0 behaves like
// Put): after expiresAt the key reads as absent (lazy expiry on every get
// and scan) and the maintenance loop's background sweep eventually removes
// it physically — a clean drop that writes no WAL record, since the expiry
// rides in the logged value itself (wal.OpPutTTL) and replay re-expires it.
// A write over a lazily-expired value builds on an absent base (see
// expireBase): dead columns are never resurrected.
func (s *Store) PutTTL(worker int, key []byte, puts []value.ColPut, expiresAt uint64) uint64 {
	if s.logs != nil {
		mu := s.lockWorker(worker)
		defer mu.Unlock()
	}
	var ver, prev uint64
	var delta int64
	var size int
	var nv *value.Value
	insert, handoff := false, false
	s.tree.Update(key, func(old *value.Value) *value.Value {
		base := s.expireBase(worker, old)
		insert = base == nil
		prev = base.Version() // nil-safe: 0 for absent keys
		handoff = base != nil && base.Worker() != uint32(worker)
		ver = s.nextVersion(worker, base)
		nv = value.BuildTTLAt(base, puts, ver, uint32(worker), expiresAt)
		size = nv.Size()
		delta = int64(size - old.Size())
		return nv
	})
	if s.logs != nil {
		switch {
		case insert:
			s.logs.Writer(worker).AppendInsertTTL(ver, key, puts, expiresAt)
		case handoff:
			// Cross-log handoff: anchor the chain in this log (see Put).
			s.logs.Writer(worker).AppendPutTTL(ver, 0, key, anchorPuts(nv), expiresAt)
		default:
			s.logs.Writer(worker).AppendPutTTL(ver, prev, key, puts, expiresAt)
		}
	}
	if expiresAt != 0 {
		s.ttlUsed.Store(true)
	}
	s.noteWrite(key)
	s.cache.Account(worker, delta)
	s.cache.NotePut(worker, key, size)
	s.cache.HelpEnforce(s.evictKey)
	return ver
}

// Touch resets key's expiry (unix nanoseconds; 0 = never expire again)
// without changing its columns, publishing a fresh value under a new
// version. Returns the new version and ok false if the key is absent (or
// already expired — touching the dead does not revive them).
func (s *Store) Touch(worker int, key []byte, expiresAt uint64) (ver uint64, ok bool) {
	if s.logs != nil {
		mu := s.lockWorker(worker)
		defer mu.Unlock()
	}
	var delta int64
	var size int
	var nv *value.Value
	s.tree.Apply(key, func(old *value.Value) *value.Value {
		if old == nil || old.Expired(time.Now().UnixNano()) {
			return nil // absent or already expired: decline
		}
		ok = true
		ver = s.nextVersion(worker, old)
		nv = value.BuildTTLAt(old, nil, ver, uint32(worker), expiresAt)
		size = nv.Size()
		delta = int64(size - old.Size())
		return nv
	})
	if !ok {
		return 0, false
	}
	if s.logs != nil {
		// Log the touch column-complete with prev == 0 — a chain anchor:
		// the record carries every column of the republished value, not an
		// empty delta. A zero-column OpPutTTL would replay as an empty
		// value if the log holding the key's original put vanished
		// wholesale (the vanished-log hole) — recovering found-but-empty,
		// worse than absent. Carrying the full value keeps Touch out of
		// that hole entirely, and replay applies the anchor as a
		// replacement regardless of what precedes it.
		s.logs.Writer(worker).AppendPutTTL(ver, 0, key, anchorPuts(nv), expiresAt)
	}
	if expiresAt != 0 {
		s.ttlUsed.Store(true)
	}
	s.cache.Account(worker, delta)
	s.cache.NotePut(worker, key, size)
	return ver, true
}

// CasPut is a versioned conditional Put (Deuteronomy-style latch-free
// read-modify-write exposed through the API): the column modifications
// apply only if key's current version equals expect, with expect == 0
// meaning "key absent" (so expect 0 is an atomic create-if-absent). The
// comparison runs under the owning border node's lock — the same lock the
// write publishes under, shared with the batched put path — so no window
// exists between check and write. On success it behaves exactly like Put
// (logged as an ordinary put through worker's log) and returns the new
// version with ok true; on mismatch nothing changes and it returns the
// current version (0 if absent) with ok false, letting the caller re-read
// and rebase. Neither puts nor their Data slices are retained.
func (s *Store) CasPut(worker int, key []byte, expect uint64, puts []value.ColPut) (ver uint64, ok bool) {
	if s.logs != nil {
		mu := s.lockWorker(worker)
		defer mu.Unlock()
	}
	var cur, newVer, prev uint64
	var delta int64
	var size int
	var nv *value.Value
	insert, handoff := false, false
	s.tree.Apply(key, func(old *value.Value) *value.Value {
		// A lazily-expired value reads as absent everywhere, so CAS must
		// see it as absent too: cur = 0, and expect == 0 (create-if-absent)
		// succeeds over it instead of livelocking on a version no read can
		// observe.
		base := old
		if old != nil && expired(old) {
			base = nil
		}
		cur = base.Version() // Version is nil-safe: 0 for absent keys
		if cur != expect {
			return nil
		}
		ok = true
		base = s.expireBase(worker, old)
		insert = base == nil
		prev = base.Version()
		handoff = base != nil && base.Worker() != uint32(worker)
		newVer = s.nextVersion(worker, base)
		nv = value.BuildAt(base, puts, newVer, uint32(worker))
		size = nv.Size()
		delta = int64(size - old.Size())
		return nv
	})
	if !ok {
		return cur, false
	}
	if s.logs != nil {
		switch {
		case insert:
			s.logs.Writer(worker).AppendInsert(newVer, key, puts)
		case handoff:
			// Cross-log handoff: anchor the chain in this log (see Put).
			s.logs.Writer(worker).AppendPut(newVer, 0, key, anchorPuts(nv))
		default:
			s.logs.Writer(worker).AppendPut(newVer, prev, key, puts)
		}
	}
	s.noteWrite(key)
	s.cache.Account(worker, delta)
	s.cache.NotePut(worker, key, size)
	s.cache.HelpEnforce(s.evictKey)
	return newVer, true
}

// installLoaded publishes a backend-loaded value for key: built on an
// absent base (a load is by definition the key's whole upstream state),
// versioned from the worker's clock, logged as an insert so replay
// reconstructs it as a replacement, and cache-accounted like any put. A
// racing real put wins — if a live value is already resident the install
// declines and returns the winner, so a load can never clobber a write that
// raced past it. Runs under the caller's epoch (see loader.install).
func (s *Store) installLoaded(worker int, key []byte, cols [][]byte, expiresAt uint64) *value.Value {
	if s.logs != nil {
		mu := s.lockWorker(worker)
		defer mu.Unlock()
	}
	var out *value.Value
	var ver uint64
	var delta int64
	var size int
	var puts []value.ColPut
	installed := false
	s.tree.Apply(key, func(old *value.Value) *value.Value {
		if old != nil && !expired(old) {
			out = old // a concurrent put made the key live: it wins
			return nil
		}
		base := s.expireBase(worker, old) // nil; orders the clock past the corpse
		ver = s.nextVersion(worker, base)
		puts = make([]value.ColPut, len(cols))
		for i := range cols {
			puts[i] = value.ColPut{Col: i, Data: cols[i]}
		}
		nv := value.BuildTTLAt(nil, puts, ver, uint32(worker), expiresAt)
		out = nv
		size = nv.Size()
		delta = int64(size - old.Size())
		installed = true
		return nv
	})
	if !installed {
		return out
	}
	if s.logs != nil {
		s.logs.Writer(worker).AppendInsertTTL(ver, key, puts, expiresAt)
	}
	if expiresAt != 0 {
		s.ttlUsed.Store(true)
	}
	s.cache.Account(worker, delta)
	s.cache.NotePut(worker, key, size)
	s.cache.HelpEnforce(s.evictKey)
	return out
}

// lockWorker serializes worker's draw-to-append window; see workerMu.
func (s *Store) lockWorker(worker int) *paddedMutex {
	mu := &s.workerMu[worker%len(s.workerMu)]
	mu.Lock()
	return mu
}

// paddedMutex keeps per-worker mutexes off each other's cache lines.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// PutSimple stores data as column 0 of key.
func (s *Store) PutSimple(worker int, key, data []byte) uint64 {
	return s.Put(worker, key, []value.ColPut{{Col: 0, Data: data}})
}

// PutBatchInto applies one put per key in a single batched tree pass
// (§4.8's batching applied to writes): keys are processed in tree order,
// runs of keys owned by the same border node execute under one lock
// acquisition, and all log records are encoded under one log-buffer lock.
// puts[i] lists key i's column modifications; the returned versions (one
// per key, input order) live in sc and are valid until the next batched
// call with the same scratch. Duplicate keys apply in input order.
func (s *Store) PutBatchInto(worker int, keys [][]byte, puts [][]value.ColPut, sc *BatchScratch) []uint64 {
	if s.logs != nil {
		mu := s.lockWorker(worker)
		defer mu.Unlock()
	}
	n := len(keys)
	if cap(sc.vers) < n {
		sc.vers = make([]uint64, n)
	}
	if cap(sc.sizes) < n {
		sc.sizes = make([]int, n)
	}
	sc.vers = sc.vers[:n]
	sc.sizes = sc.sizes[:n]
	if cap(sc.inserts) < n {
		sc.inserts = make([]bool, n)
	}
	sc.inserts = sc.inserts[:n]
	if cap(sc.prevs) < n {
		sc.prevs = make([]uint64, n)
	}
	sc.prevs = sc.prevs[:n]
	if cap(sc.anchors) < n {
		sc.anchors = make([]*value.Value, n)
	}
	sc.anchors = sc.anchors[:n]
	var delta int64
	handoffs := false
	s.tree.PutBatchInto(keys, &sc.core, func(i int, old *value.Value) *value.Value {
		base := s.expireBase(worker, old)
		sc.inserts[i] = base == nil
		sc.prevs[i] = base.Version() // nil-safe: 0 for absent keys
		ver := s.nextVersion(worker, base)
		sc.vers[i] = ver
		nv := value.BuildAt(base, puts[i], ver, uint32(worker))
		sc.anchors[i] = nil
		if base != nil && base.Worker() != uint32(worker) {
			// Cross-log handoff: this entry must be logged column-complete
			// with prev == 0 (see Put), so remember the built value.
			sc.anchors[i] = nv
			handoffs = true
		}
		sc.sizes[i] = nv.Size()
		delta += int64(nv.Size() - old.Size())
		return nv
	})
	if s.logs != nil {
		if !handoffs {
			s.logs.Writer(worker).AppendPutBatch(keys, puts, sc.vers, sc.prevs, sc.inserts)
		} else {
			// Handoff entries swap in column-complete anchor puts, so the
			// batch falls back to per-record appends. Intra-batch record
			// order is preserved; replay orders a key's records by version
			// anyway, and all records land before workerMu is released, so
			// the log's durable-timestamp claim stays sound.
			w := s.logs.Writer(worker)
			for i := range keys {
				switch {
				case sc.inserts[i]:
					w.AppendInsert(sc.vers[i], keys[i], puts[i])
				case sc.anchors[i] != nil:
					w.AppendPut(sc.vers[i], 0, keys[i], anchorPuts(sc.anchors[i]))
				default:
					w.AppendPut(sc.vers[i], sc.prevs[i], keys[i], puts[i])
				}
			}
		}
	}
	if s.loader != nil {
		for i := range keys {
			s.loader.noteWrite(keys[i])
		}
	}
	// One accounting add covers the whole batch; admissions stay per key.
	s.cache.Account(worker, delta)
	if s.cache.EvictionEnabled() {
		for i := range keys {
			s.cache.NotePut(worker, keys[i], sc.sizes[i])
		}
		s.cache.HelpEnforce(s.evictKey)
	}
	return sc.vers
}

// PutBatch is PutBatchInto with an internal scratch, returning a fresh
// versions slice.
func (s *Store) PutBatch(worker int, keys [][]byte, puts [][]value.ColPut) []uint64 {
	var sc BatchScratch
	vers := s.PutBatchInto(worker, keys, puts, &sc)
	out := make([]uint64, len(vers))
	copy(out, vers)
	return out
}

// Remove deletes key, logging through the given worker's log.
func (s *Store) Remove(worker int, key []byte) bool {
	if s.logs != nil {
		mu := s.lockWorker(worker)
		defer mu.Unlock()
	}
	var ver uint64
	var delta int64
	wasExpired := false
	_, ok := s.tree.RemoveWith(key, func(old *value.Value) {
		ver = s.clock.tick(worker, old.Version())
		// Lift the remove floor while the border lock is still held: the
		// tree forgets the key's version history once it is unlinked, so a
		// re-insert racing with this remove must already see the floor when
		// it acquires the lock — lifting it after RemoveWith returns would
		// let that insert draw a version below the remove's timestamp and
		// replay in the wrong order.
		s.clock.noteRemove(ver)
		delta = -int64(old.Size())
		wasExpired = expired(old)
	})
	if ok {
		if s.logs != nil {
			s.logs.Writer(worker).AppendRemove(ver, key)
		}
		s.cache.Account(worker, delta)
		s.cache.NoteRemove(worker, key)
		// Read-through stores propagate the delete upstream (a tombstone in
		// the write-behind queue); without it the next GetOrLoad would
		// resurrect the removed key from the backend.
		if s.wb != nil {
			s.wb.enqueue(key, nil)
		}
	}
	// A lazily-expired value reads as absent on every path, so removing it
	// must report "did not exist" too (memcached's delete-of-expired is a
	// miss). The physical removal and its log record still happen above —
	// the remove is correct cleanup either way.
	return ok && !wasExpired
}

// maxRangeScanVisits bounds how many entries one range query may visit,
// results and lazily-expired skips combined. Without it a small-n range
// whose start lands in a large freshly-lapsed region would walk the whole
// dead span inside one request (the sweep reclaims it only incrementally) —
// unbounded CPU for a cheap-looking query. Hitting the cap needs tens of
// thousands of consecutive expired entries; the documented cost is that
// such a query may return short before the sweep catches up.
const maxRangeScanVisits = 1 << 16

// GetRange returns up to n pairs starting at the first key >= start,
// retrieving the requested columns (nil = all). Like the paper's getrange it
// is not atomic with respect to concurrent inserts and updates (§3).
// Lazily-expired values are skipped without counting toward n; a scan
// crossing an extremely large expired region (see maxRangeScanVisits) may
// return fewer than n pairs before the background sweep reclaims it.
// The caller must hold an epoch pin.
//
//masstree:pinned
func (s *Store) GetRange(start []byte, n int, cols []int) []Pair {
	if n <= 0 {
		return nil
	}
	out := make([]Pair, 0, n)
	visited := 0
	s.tree.Scan(start, func(k []byte, v *value.Value) bool {
		visited++
		if expired(v) {
			return visited < maxRangeScanVisits // lazily dead: skip without counting toward n
		}
		out = append(out, Pair{Key: k, Cols: pickCols(v, cols)})
		return len(out) < n && visited < maxRangeScanVisits
	})
	return out
}

// RangeScratch holds reusable arenas for GetRangeInto: the pair slice, a
// column-slice arena, a key-byte arena, and the tree scan's key assembly
// buffer. One scratch per connection makes steady-state range queries
// allocation-free (arena growth aside).
type RangeScratch struct {
	pairs []Pair
	cols  [][]byte
	keys  []byte
	kbuf  []byte
}

// Reset forgets accumulated pairs (typically once per request batch). The
// backing arrays are retained for reuse.
func (sc *RangeScratch) Reset() {
	sc.pairs = sc.pairs[:0]
	sc.cols = sc.cols[:0]
	sc.keys = sc.keys[:0]
}

// Shrink releases arenas grown past roughly max bytes so one huge range
// query does not pin scratch for a connection's lifetime.
func (sc *RangeScratch) Shrink(max int) {
	if cap(sc.pairs)*48 > max { // ~sizeof(Pair)
		sc.pairs = nil
	}
	if cap(sc.cols)*24 > max {
		sc.cols = nil
	}
	if cap(sc.keys) > max {
		sc.keys = nil
	}
	if cap(sc.kbuf) > max {
		sc.kbuf = nil
	}
}

// GetRangeInto is GetRange appending into sc's reusable arenas instead of
// allocating per request: keys are copied into a byte arena, columns into
// the column arena, pairs into the pair slice. The returned window aliases
// sc and stays valid until sc.Reset (appends never rewrite established
// backing memory, so earlier windows survive arena growth). The caller must
// hold an epoch pin.
//
//masstree:pinned
func (s *Store) GetRangeInto(start []byte, n int, cols []int, sc *RangeScratch) []Pair {
	if n <= 0 {
		return nil
	}
	base := len(sc.pairs)
	visited := 0
	sc.kbuf = s.tree.ScanInto(start, sc.kbuf, func(k []byte, v *value.Value) bool {
		visited++
		if expired(v) {
			return visited < maxRangeScanVisits // lazily dead: skip, not counted toward n
		}
		ks := len(sc.keys)
		sc.keys = append(sc.keys, k...)
		cs := len(sc.cols)
		sc.cols = AppendCols(sc.cols, v, cols)
		sc.pairs = append(sc.pairs, Pair{
			Key:  sc.keys[ks:len(sc.keys):len(sc.keys)],
			Cols: sc.cols[cs:len(sc.cols):len(sc.cols)],
		})
		return len(sc.pairs)-base < n && visited < maxRangeScanVisits
	})
	return sc.pairs[base:len(sc.pairs):len(sc.pairs)]
}

// Checkpoint writes a checkpoint of all keys and values, then reclaims log
// space and older checkpoints (§5). It runs in parallel with request
// processing, with cfg.CheckpointParts concurrent part writers.
func (s *Store) Checkpoint() (path string, n int, err error) {
	return s.CheckpointN(s.cfg.CheckpointParts)
}

// CheckpointN is Checkpoint with an explicit part count: the key space is
// partitioned into parts disjoint ranges at evenly spaced key ranks, each
// range is scanned and written concurrently to its own part file (§5's
// multi-threaded checkpoint), and the manifest commits them atomically.
// The scans are fuzzy — they run in parallel with request processing over
// the tree's immutable values — and log replay repairs whatever they miss.
// parts <= 0 uses GOMAXPROCS. Returns the manifest path.
func (s *Store) CheckpointN(parts int) (path string, n int, err error) {
	if s.cfg.Dir == "" {
		return "", 0, fmt.Errorf("kvstore: checkpointing requires a persistence directory")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	ckptStart := time.Now()
	if parts <= 0 {
		parts = runtime.GOMAXPROCS(0)
	}
	if parts > checkpoint.MaxParts {
		// Clamp before partitioning: the bounds and the part files must
		// agree on the count, or keys past the last written part's end
		// bound would silently vanish from the checkpoint.
		parts = checkpoint.MaxParts
	}

	gen, err := s.logs.Rotate()
	if err != nil {
		return "", 0, err
	}
	// Synchronize (not just read) the worker clocks, then drain every
	// worker's draw-to-append window by bouncing through its mutex. After
	// the barrier, (a) any write with a version <= startTS has fully
	// applied and appended — its tree effect is visible to the scans below
	// and its log record sits in a position the checkpoint supersedes —
	// and (b) any write the scans can miss (applied after a scan read its
	// node) must draw from a lifted clock, giving it a version > startTS
	// in a retained log generation. Recovery exploits the dichotomy:
	// replay skips records with ts <= startTS outright, because replaying
	// them could resurrect state (a stale put whose superseding remove is
	// only recorded by the checkpoint as absence has nothing to
	// version-guard against), while everything above startTS replays
	// normally.
	startTS := s.clock.synchronize()
	s.obs.Recorder().Record(0, obs.EvCkptBegin, startTS, uint64(parts))
	for w := range s.workerMu {
		mu := &s.workerMu[w]
		mu.Lock()
		//lint:ignore SA2001 empty critical section is the barrier
		mu.Unlock()
	}

	bounds := s.partitionBounds(parts)
	parts = len(bounds) + 1
	// Expired values are dead weight: skip them so checkpoints shrink to the
	// live set and recovery never resurrects them (their pre-checkpoint log
	// records are skipped wholesale by the ts <= startTS rule). The deadline
	// is sampled once so every part applies the same cut.
	ckptNow := time.Now().UnixNano()
	n, err = checkpoint.WriteParts(s.fsys, s.cfg.Dir, startTS, parts, func(k int, emit func(checkpoint.Entry) error) error {
		var start, end []byte
		if k > 0 {
			start = bounds[k-1]
		}
		if k < len(bounds) {
			end = bounds[k]
		}
		var emitErr error
		buf := make([]byte, 0, 64)
		s.tree.ScanInto(start, buf, func(key []byte, v *value.Value) bool {
			if end != nil && bytes.Compare(key, end) >= 0 {
				return false // next part's range
			}
			if v.Expired(ckptNow) {
				return true // dead by TTL: checkpoints carry only live data
			}
			if err := emit(checkpoint.Entry{Key: key, Value: v}); err != nil {
				emitErr = err
				return false
			}
			return true
		})
		return emitErr
	})
	if err != nil {
		return "", 0, err
	}
	// WriteParts' directory sync was the commit point: record the commit and
	// the whole write's latency before moving on to reclamation.
	s.obs.Hist(obs.HCheckpoint).Record(0, time.Since(ckptStart))
	s.obs.Recorder().Record(0, obs.EvCkptCommit, startTS, uint64(n))
	path = filepath.Join(s.cfg.Dir, checkpoint.ManifestName(startTS))
	// The WriteParts directory sync above is the commit point; only now is
	// it safe to reclaim the state the new checkpoint supersedes.
	if err := checkpoint.DropFS(s.fsys, s.cfg.Dir, startTS); err != nil {
		return path, n, err
	}
	if err := s.logs.DropBefore(gen); err != nil {
		return path, n, err
	}
	// Make the reclamation removes durable too. Recovery tolerates a
	// resurrected old log (its pre-checkpoint records neither replay nor
	// constrain the cutoff, see recover), but leaving the removes volatile
	// for the whole inter-checkpoint interval costs disk space across
	// crashes for no benefit.
	if err := s.fsys.SyncDir(s.cfg.Dir); err != nil {
		return path, n, err
	}
	return path, n, nil
}

// partitionBounds samples parts-1 keys at evenly spaced ranks, splitting
// the key space into contiguous ranges of roughly equal population. The
// sampling scan is fuzzy (concurrent writes shift ranks harmlessly): all
// that matters is that the bounds are strictly increasing, which a single
// ordered scan guarantees, so the ranges are disjoint and cover everything.
func (s *Store) partitionBounds(parts int) [][]byte {
	n := s.tree.Len()
	if parts <= 1 || n < 2*parts {
		return nil
	}
	bounds := make([][]byte, 0, parts-1)
	stride := n / parts
	i, next := 0, stride
	//lint:allow epochguard checkpoint scans run unpinned by design: a minutes-long pin would stall reclamation, and GC keeps detached nodes readable
	s.tree.ScanInto(nil, make([]byte, 0, 64), func(k []byte, _ *value.Value) bool {
		if i == next {
			bounds = append(bounds, append([]byte(nil), k...))
			next += stride
			if len(bounds) == parts-1 {
				return false
			}
		}
		i++
		return true
	})
	return bounds
}

// Flush forces buffered log records to the operating system (and to storage
// when SyncWrites is set).
func (s *Store) Flush() error {
	if s.logs == nil {
		return nil
	}
	return s.logs.Flush()
}

// FlushStats reports accumulated log flush failures: the total count across
// all workers' logs (including background group commits, whose errors have
// no caller to return to) and the most recent error. A non-zero count means
// acknowledged puts may not be durable even though the store kept serving.
func (s *Store) FlushStats() (errs int64, last error) {
	if s.logs == nil {
		return 0, nil
	}
	return s.logs.FlushStats()
}

// FlushRetries reports how many log flush attempts were retries made under a
// failure backoff (see the wal writer's capped exponential retry pacing).
func (s *Store) FlushRetries() int64 {
	if s.logs == nil {
		return 0
	}
	return s.logs.FlushRetries()
}

// DrainWriteBehind blocks until the write-behind spill queue is empty or
// the timeout lapses, reporting whether it fully drained. A no-op (true)
// without a write-behind queue. Graceful shutdown calls this before Close
// with its own drain budget; Close itself also performs a bounded drain.
func (s *Store) DrainWriteBehind(timeout time.Duration) bool {
	if s.wb == nil {
		return true
	}
	return s.wb.drain(timeout)
}

// closeDrainTimeout bounds Close's final write-behind drain: long enough to
// flush a healthy queue, short enough that a dead backend cannot wedge
// shutdown. Callers who need a larger budget drain explicitly first.
const closeDrainTimeout = 2 * time.Second

// Close stops background work and flushes and closes the logs. A clean
// shutdown writes a timestamp mark to every log so recovery's cutoff does
// not discard the durable tail of busier logs (see wal.OpMark); with
// write-behind armed, pending spills get a bounded final drain first.
func (s *Store) Close() error {
	if s.wb != nil {
		s.wb.close(closeDrainTimeout)
	}
	close(s.stop)
	s.wg.Wait()
	s.mgr.Unregister(s.evictH)
	s.tree.Maintain()
	if s.logs != nil {
		s.logs.Mark(s.clock.max())
		return s.logs.Close()
	}
	return nil
}

// Stats exposes tree operation counters.
func (s *Store) Stats() core.StatsSnapshot { return s.tree.Stats() }
