package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/value"
)

// putBatchSimple applies one single-column put per key through PutBatchInto.
func putBatchSimple(tr *Tree, sc *BatchScratch, keys [][]byte) {
	tr.PutBatchInto(keys, sc, func(i int, old *value.Value) *value.Value {
		return value.Apply(old, []value.ColPut{{Col: 0, Data: keys[i]}})
	})
}

// TestPutBatchMatchesPut drives a random mixed workload through PutBatchInto
// and checks the final tree against a reference tree built with individual
// puts. The key mix exercises inserts, replacements, suffixes, shared
// 8-byte prefixes (layer descents), node splits, and duplicate keys.
func TestPutBatchMatchesPut(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	genKey := func() []byte {
		switch rng.Intn(4) {
		case 0: // short keys, all in one slice group
			return []byte(fmt.Sprintf("k%d", rng.Intn(2000)))
		case 1: // long keys sharing an 8-byte prefix: forces trie layers
			return []byte(fmt.Sprintf("prefix00-%06d", rng.Intn(2000)))
		case 2: // two nested layers
			return []byte(fmt.Sprintf("prefix00deeper00%06d", rng.Intn(500)))
		default: // 9..16 byte keys with varied prefixes: suffix slots
			return []byte(fmt.Sprintf("p%07d-%04d", rng.Intn(50), rng.Intn(500)))
		}
	}
	batched, reference := New(), New()
	var sc BatchScratch
	for round := 0; round < 60; round++ {
		batch := make([][]byte, 0, 128)
		for i := 0; i < 128; i++ {
			batch = append(batch, genKey())
		}
		if rng.Intn(4) == 0 && len(batch) > 2 {
			batch[1] = batch[0] // guaranteed duplicate within the batch
		}
		putBatchSimple(batched, &sc, batch)
		for _, k := range batch {
			reference.Update(k, func(old *value.Value) *value.Value {
				return value.Apply(old, []value.ColPut{{Col: 0, Data: k}})
			})
		}
	}
	if batched.Len() != reference.Len() {
		t.Fatalf("batched tree has %d keys, reference %d", batched.Len(), reference.Len())
	}
	n := 0
	reference.Scan(nil, func(k []byte, want *value.Value) bool {
		got, ok := batched.Get(k)
		if !ok {
			t.Fatalf("batched tree lost key %q", k)
		}
		if string(got.Bytes()) != string(want.Bytes()) {
			t.Fatalf("key %q: %q vs %q", k, got.Bytes(), want.Bytes())
		}
		n++
		return true
	})
	if n != reference.Len() {
		t.Fatalf("scanned %d keys, want %d", n, reference.Len())
	}
}

// TestPutBatchDuplicateOrder pins that duplicate keys within one batch apply
// in input order: the last request wins and versions increase in request
// order.
func TestPutBatchDuplicateOrder(t *testing.T) {
	tr := New()
	var sc BatchScratch
	key := []byte("dup-key")
	batch := [][]byte{key, []byte("other"), key, key}
	var order []int
	tr.PutBatchInto(batch, &sc, func(i int, old *value.Value) *value.Value {
		if string(batch[i]) == "dup-key" {
			order = append(order, i)
		}
		return value.Apply(old, []value.ColPut{{Col: 0, Data: []byte(fmt.Sprintf("w%d", i))}})
	})
	if len(order) != 3 || order[0] != 0 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("duplicate keys applied in order %v, want [0 2 3]", order)
	}
	v, ok := tr.Get(key)
	if !ok || string(v.Bytes()) != "w3" {
		t.Fatalf("dup-key = %q, want last write w3", v.Bytes())
	}
	if v.Version() != 3 {
		t.Fatalf("dup-key version = %d, want 3 (three sequential applies)", v.Version())
	}
}

// TestPutBatchUpdateSeesOld verifies apply receives the pre-put value for
// replacements and nil for inserts, under single-lock runs.
func TestPutBatchUpdateSeesOld(t *testing.T) {
	tr := New()
	var sc BatchScratch
	seed := [][]byte{[]byte("a1"), []byte("a2"), []byte("a3")}
	putBatchSimple(tr, &sc, seed)
	batch := [][]byte{[]byte("a1"), []byte("b1"), []byte("a3")}
	sawOld := map[string]bool{}
	tr.PutBatchInto(batch, &sc, func(i int, old *value.Value) *value.Value {
		sawOld[string(batch[i])] = old != nil
		return value.Apply(old, []value.ColPut{{Col: 0, Data: []byte("x")}})
	})
	if !sawOld["a1"] || !sawOld["a3"] || sawOld["b1"] {
		t.Fatalf("old-value visibility wrong: %v", sawOld)
	}
}

// TestPutBatchConcurrentWithGetsAndScans races batched writers against
// lock-free readers and scanners; run with -race in CI. Readers check only
// invariants that hold mid-batch: a stable key is always present with one of
// its possible values, and scans never observe torn values.
func TestPutBatchConcurrentWithGetsAndScans(t *testing.T) {
	tr := New()
	var stable [][]byte
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("stable%05d", i))
		tr.Put(k, value.New(k))
		stable = append(stable, k)
	}
	const writers = 3
	var writerWG, scanWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var sc BatchScratch
			for r := 0; r < 60; r++ {
				batch := make([][]byte, 64)
				for i := range batch {
					// Mix of churn inserts (incl. layered keys) and stable
					// overwrites that always rewrite the key as its value.
					if i%4 == 0 {
						batch[i] = stable[rng.Intn(len(stable))]
					} else {
						batch[i] = []byte(fmt.Sprintf("churn%02d-%05d", w, rng.Intn(2000)))
					}
				}
				putBatchSimple(tr, &sc, batch)
			}
		}(w)
	}
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := 0
			tr.Scan(nil, func(k []byte, v *value.Value) bool {
				if v == nil {
					t.Error("scan observed nil value")
					return false
				}
				n++
				return n < 2000
			})
		}
	}()
	for round := 0; round < 40; round++ {
		for _, k := range stable {
			v, ok := tr.Get(k)
			if !ok || string(v.Bytes()) != string(k) {
				t.Fatalf("stable key %q lost or torn: %v", k, v)
			}
		}
	}
	writerWG.Wait()
	close(stop)
	scanWG.Wait()
}
