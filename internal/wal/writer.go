package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/value"
	"repro/internal/vfs"
)

// Writer is one worker's log: an in-memory buffer plus a file, written out
// by a background logging goroutine (§5). A put encodes its record directly
// into the worker-owned append buffer and returns; the flusher swaps that
// buffer with a second one (double-buffering) and writes it out without
// blocking appenders, batching appends to exploit sequential device
// bandwidth and forcing the log to storage at least every FlushInterval.
type Writer struct {
	fsys   vfs.FS
	dir    string
	worker int
	sync   bool

	// mu guards only the append buffer; appenders hold it just long enough
	// to encode a record, never across a file write.
	mu  sync.Mutex
	buf []byte

	// fmu serializes flushers and guards the flush-side state: the second
	// buffer, the file, the generation, and the closed flag. A flush holds
	// fmu across the (possibly slow) file write while appenders keep filling
	// buf under mu. fbufOff marks how much of fbuf a partially-failed write
	// already handed to the file; retrying resumes there so no byte is ever
	// written twice, and a full success resets the offset so the buffer's
	// capacity is preserved for the next swap.
	fmu     sync.Mutex
	fbuf    []byte
	fbufOff int
	f       vfs.File
	gen     uint64
	closed  bool
	// needDirSync records that the current file was created with its
	// directory sync deferred to the Set's batch sync. If that batch sync
	// never ran (a mid-rotation error), the next writeOut performs it
	// before claiming durability — Flush must never acknowledge records
	// into a file whose directory entry a crash could forget.
	needDirSync bool

	// Flush failures must not vanish into the background goroutine: they are
	// counted and the most recent one is kept for Store.FlushStats (a lost
	// group commit is a durability failure even though puts keep succeeding).
	flushErrs atomic.Int64
	lastErr   atomic.Pointer[error]

	// Retry pacing for a sick device: after a failed flush the background
	// flusher waits out an exponentially growing window (retryBase doubling
	// up to retryMaxBackoff, guarded by fmu) before re-attempting, instead of
	// hammering the device every tick while records pile up safely in the
	// append buffer. Foreground flushes (Flush, Rotate, Close) always attempt
	// immediately — a checkpoint or shutdown must not wait out the window.
	// flushRetries counts attempts made while a failure's backoff was
	// pending, foreground or background.
	backoff      time.Duration
	retryAt      time.Time
	flushRetries atomic.Int64

	// Observability hooks (both nil until Set.Observe): flush latency per
	// non-empty flush, plus flight-recorder events for retries under backoff
	// and outright failures. Guarded by fmu like the rest of the flush state.
	obsHist *obs.Hist
	obsRec  *obs.Recorder

	flushCh chan struct{} // kicks the flusher
	done    chan struct{}
	wg      sync.WaitGroup
}

// DefaultFlushInterval is the paper's 200 ms group-commit bound.
const DefaultFlushInterval = 200 * time.Millisecond

// maxRetainedLogBuf bounds how much buffer space a log keeps across flushes:
// one huge put grows the buffers transiently, but they are released after
// the flush rather than pinned for the writer's lifetime (mirroring the
// wire layer's scratch caps).
const maxRetainedLogBuf = 1 << 20

// kickThreshold is the buffered-bytes level past which an append wakes the
// flusher early instead of waiting for the interval tick.
const kickThreshold = 1 << 20

// retryBase and retryMaxBackoff bound the background flusher's retry pacing
// after a failed flush: the wait doubles from retryBase per consecutive
// failure and caps at retryMaxBackoff.
const (
	retryBase       = 50 * time.Millisecond
	retryMaxBackoff = 5 * time.Second
)

// newWriter opens (creating or appending) the generation-gen log file for a
// worker.
func newWriter(fsys vfs.FS, dir string, worker int, gen uint64, syncWrites bool, flushEvery time.Duration, dirSync bool) (*Writer, error) {
	if flushEvery <= 0 {
		flushEvery = DefaultFlushInterval
	}
	w := &Writer{
		fsys:    fsys,
		dir:     dir,
		worker:  worker,
		sync:    syncWrites,
		gen:     gen,
		flushCh: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if err := w.openFile(dirSync); err != nil {
		return nil, err
	}
	w.wg.Add(1)
	go w.flushLoop(flushEvery)
	return w, nil
}

// LogFileName names worker w's generation-g log file.
func LogFileName(worker int, gen uint64) string {
	return fmt.Sprintf("log-%04d.%06d.wal", worker, gen)
}

// openFile opens (creating if needed) the current generation's file. When
// dirSync is false the caller batches one directory sync for several
// creations (OpenSetFS, Set.Rotate) instead of paying one per file.
func (w *Writer) openFile(dirSync bool) error {
	path := filepath.Join(w.dir, LogFileName(w.worker, w.gen))
	f, err := w.fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	if size == 0 {
		if _, err := f.Write(fileMagic); err != nil {
			f.Close()
			return err
		}
		// Make the file's existence durable before anything is logged
		// through it: a synced record in a file whose directory entry a
		// crash forgets is a lost acknowledged write. (The magic itself is
		// covered by the first data flush's sync.)
		if dirSync {
			if err := w.fsys.SyncDir(w.dir); err != nil {
				f.Close()
				return err
			}
		} else {
			w.needDirSync = true
		}
	}
	w.f = f
	return nil
}

// kickIfBig wakes the flusher when the append buffer has grown large.
func (w *Writer) kickIfBig(n int) {
	if n < kickThreshold {
		return
	}
	select {
	case w.flushCh <- struct{}{}:
	default:
	}
}

// AppendPut queues a put record, encoding it directly into the worker-owned
// log buffer — no intermediate Record or payload allocation. It does not
// block on storage; durability arrives with the next flush (group commit).
//
// prev is the version of the value the put was applied over, read under the
// same border-lock critical section that drew ts. Pass prev == 0 only for a
// chain anchor: a record whose puts carry every column of the value it
// published, so replay can apply it as a replacement (see Record.Prev).
func (w *Writer) AppendPut(ts, prev uint64, key []byte, puts []value.ColPut) {
	w.mu.Lock()
	w.buf = appendRecord(w.buf, ts, prev, OpPut, key, puts, 0)
	n := len(w.buf)
	w.mu.Unlock()
	w.kickIfBig(n)
}

// AppendPutTTL queues a put record carrying an expiry timestamp (see
// OpPutTTL). prev is as in AppendPut; Touch logs through here with prev == 0
// and the republished value's full column set, so the record is a chain
// anchor and stands alone at replay.
func (w *Writer) AppendPutTTL(ts, prev uint64, key []byte, puts []value.ColPut, expiry uint64) {
	w.mu.Lock()
	w.buf = appendRecord(w.buf, ts, prev, OpPutTTL, key, puts, expiry)
	n := len(w.buf)
	w.mu.Unlock()
	w.kickIfBig(n)
}

// AppendInsert queues an insert record: a put that executed against an
// absent or lazily-expired base and must replay as a replacement (see
// OpInsert). Inserts are chain anchors by op and carry no prev link.
func (w *Writer) AppendInsert(ts uint64, key []byte, puts []value.ColPut) {
	w.mu.Lock()
	w.buf = appendRecord(w.buf, ts, 0, OpInsert, key, puts, 0)
	n := len(w.buf)
	w.mu.Unlock()
	w.kickIfBig(n)
}

// AppendInsertTTL is AppendInsert with an expiry timestamp.
func (w *Writer) AppendInsertTTL(ts uint64, key []byte, puts []value.ColPut, expiry uint64) {
	w.mu.Lock()
	w.buf = appendRecord(w.buf, ts, 0, OpInsertTTL, key, puts, expiry)
	n := len(w.buf)
	w.mu.Unlock()
	w.kickIfBig(n)
}

// AppendPutBatch queues one put record per key under a single buffer-lock
// acquisition — the logging counterpart of the tree's batched put. keys,
// puts, ts, prev, and insert are parallel arrays (insert may be nil: all
// updates); records are encoded in input order, so a key's records keep
// their version order within this worker's log. insert[i] logs key i as
// OpInsert (built on an absent base; replays as a replacement); prev[i] is
// as in AppendPut and is ignored for inserts.
func (w *Writer) AppendPutBatch(keys [][]byte, puts [][]value.ColPut, ts, prev []uint64, insert []bool) {
	w.mu.Lock()
	for i := range keys {
		op := OpPut
		p := prev[i]
		if insert != nil && insert[i] {
			op, p = OpInsert, 0
		}
		w.buf = appendRecord(w.buf, ts[i], p, op, keys[i], puts[i], 0)
	}
	n := len(w.buf)
	w.mu.Unlock()
	w.kickIfBig(n)
}

// AppendRemove queues a remove record.
func (w *Writer) AppendRemove(ts uint64, key []byte) {
	w.mu.Lock()
	w.buf = appendRecord(w.buf, ts, 0, OpRemove, key, nil, 0)
	n := len(w.buf)
	w.mu.Unlock()
	w.kickIfBig(n)
}

// AppendMark queues a timestamp heartbeat (see OpMark). The caller asserts
// every record this worker acknowledged with a timestamp <= ts has already
// been appended.
func (w *Writer) AppendMark(ts uint64) {
	w.mu.Lock()
	w.buf = appendRecord(w.buf, ts, 0, OpMark, nil, nil, 0)
	w.mu.Unlock()
}

// Append queues r in the log buffer; see AppendPut. Retained for callers
// that already hold a Record (marks, tests). r.Prev is written as given;
// r.Unlinked is ignored — the writer always encodes format v2.
func (w *Writer) Append(r *Record) {
	w.mu.Lock()
	w.buf = appendRecord(w.buf, r.TS, r.Prev, r.Op, r.Key, r.Puts, r.Expiry)
	n := len(w.buf)
	w.mu.Unlock()
	w.kickIfBig(n)
}

// Flush writes buffered records to the file and, when sync is enabled,
// forces them to storage. Appenders are blocked only for the buffer swap,
// not for the file write.
func (w *Writer) Flush() error {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.flushLocked()
}

// flushLocked swaps the append buffer with the (normally empty) flush
// buffer and writes the swapped-out contents. A failed write keeps the
// batch in the flush buffer and retries it before taking more records, so
// a transient device error loses nothing and log order always matches
// append order. Caller holds fmu.
func (w *Writer) flushLocked() error {
	if w.backoff > 0 {
		// A prior flush failed and its backoff window is (or was) pending:
		// this attempt is a retry, whatever its outcome.
		w.flushRetries.Add(1)
		w.obsRec.Record(w.worker, obs.EvFlushRetry, uint64(w.worker), uint64(w.backoff))
	}
	if w.fbufOff < len(w.fbuf) {
		// A previous flush failed; drain its remaining bytes first.
		if err := w.writeOut(); err != nil {
			return err
		}
	}
	w.mu.Lock()
	w.buf, w.fbuf = w.fbuf[:0], w.buf
	w.mu.Unlock()
	if len(w.fbuf) == 0 {
		return nil // nothing new: an empty flush is not a latency sample
	}
	var start time.Time
	if w.obsHist != nil {
		start = time.Now()
	}
	err := w.writeOut()
	if w.obsHist != nil {
		w.obsHist.Record(w.worker, time.Since(start))
	}
	return err
}

// writeOut writes the flush buffer's unwritten tail to the file, retaining
// exactly the bytes the file did not take: a partial write (ENOSPC and
// friends) advances the offset past the written prefix, so the retry
// continues mid-stream instead of splicing duplicate bytes into the record
// framing. Caller holds fmu.
func (w *Writer) writeOut() error {
	if w.fbufOff >= len(w.fbuf) {
		return nil
	}
	if w.f == nil {
		return w.noteErr(errors.New("wal: log file unavailable"))
	}
	if w.needDirSync {
		// The batch directory sync that should have covered this file's
		// creation never succeeded; self-heal before making any record
		// durable through it.
		if err := w.fsys.SyncDir(w.dir); err != nil {
			return w.noteErr(err)
		}
		w.needDirSync = false
	}
	n, err := w.f.Write(w.fbuf[w.fbufOff:])
	w.fbufOff += n
	if err != nil {
		return w.noteErr(err)
	}
	w.fbufOff = 0
	if cap(w.fbuf) > maxRetainedLogBuf {
		w.fbuf = nil
	} else {
		w.fbuf = w.fbuf[:0]
	}
	if w.sync {
		// The bytes are handed off even if the force fails; the next
		// flush's Sync covers them (rewriting would duplicate records).
		// The buffer was consumed above, so the failure never leaves a
		// stale offset behind to swallow the next batch.
		if err := w.f.Sync(); err != nil {
			return w.noteErr(err)
		}
	}
	w.backoff, w.retryAt = 0, time.Time{}
	return nil
}

// noteErr records a flush failure for FlushStats, grows the retry backoff
// window, and returns the error. Caller holds fmu.
func (w *Writer) noteErr(err error) error {
	w.flushErrs.Add(1)
	w.lastErr.Store(&err)
	if w.backoff == 0 {
		w.backoff = retryBase
	} else if w.backoff < retryMaxBackoff {
		w.backoff *= 2
		if w.backoff > retryMaxBackoff {
			w.backoff = retryMaxBackoff
		}
	}
	w.retryAt = time.Now().Add(w.backoff)
	w.obsRec.Record(w.worker, obs.EvFlushError, uint64(w.worker), uint64(w.flushErrs.Load()))
	return err
}

// flushBackground is the flush loop's entry point: it honors the retry
// backoff window, skipping the attempt while a failed batch's wait is still
// pending (records keep accumulating in the append buffer meanwhile).
func (w *Writer) flushBackground() {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if !w.retryAt.IsZero() && time.Now().Before(w.retryAt) {
		return
	}
	w.flushLocked() // failures are recorded by noteErr for FlushStats
}

// FlushStats reports how many background or foreground flushes have failed
// and the most recent failure (nil if none).
func (w *Writer) FlushStats() (errs int64, last error) {
	if p := w.lastErr.Load(); p != nil {
		last = *p
	}
	return w.flushErrs.Load(), last
}

// FlushRetries reports how many flush attempts were retries made under a
// pending failure backoff.
func (w *Writer) FlushRetries() int64 { return w.flushRetries.Load() }

func (w *Writer) flushLoop(every time.Duration) {
	defer w.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.flushBackground()
		case <-w.flushCh:
			w.flushBackground()
		case <-w.done:
			return
		}
	}
}

// Rotate flushes and switches the writer to generation gen. Used at
// checkpoint start so pre-checkpoint log files can be reclaimed once the
// checkpoint is durable.
func (w *Writer) Rotate(gen uint64) error { return w.rotate(gen, true) }

func (w *Writer) rotate(gen uint64, dirSync bool) error {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if err := w.flushLocked(); err != nil {
		return err
	}
	if w.f != nil {
		w.f.Close()
	}
	w.gen = gen
	return w.openFile(dirSync)
}

// dirSynced clears the deferred-directory-sync obligation after the Set's
// batch sync covered this writer's file creation.
func (w *Writer) dirSynced() {
	w.fmu.Lock()
	w.needDirSync = false
	w.fmu.Unlock()
}

// Close flushes and closes the log.
func (w *Writer) Close() error {
	w.fmu.Lock()
	if w.closed {
		w.fmu.Unlock()
		return nil
	}
	w.closed = true
	w.fmu.Unlock()
	close(w.done)
	w.wg.Wait()
	w.fmu.Lock()
	defer w.fmu.Unlock()
	err := w.flushLocked()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	return err
}

// Set is the collection of per-worker log writers of one store.
type Set struct {
	mu      sync.Mutex
	fsys    vfs.FS
	dir     string
	writers []*Writer
	gen     uint64
}

// OpenSetFS creates (or reopens) n per-worker logs in dir at the given
// starting generation, with all file access through fsys.
func OpenSetFS(fsys vfs.FS, dir string, n int, gen uint64, syncWrites bool, flushEvery time.Duration) (*Set, error) {
	if flushEvery <= 0 {
		flushEvery = DefaultFlushInterval
	}
	s := &Set{fsys: fsys, dir: dir, gen: gen}
	for i := 0; i < n; i++ {
		w, err := newWriter(fsys, dir, i, gen, syncWrites, flushEvery, false)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.writers = append(s.writers, w)
	}
	// One directory sync covers all n creations.
	if err := fsys.SyncDir(dir); err != nil {
		s.Close()
		return nil, err
	}
	for _, w := range s.writers {
		w.dirSynced()
	}
	// The log files are durable; now (and only now) commit the expectation
	// that recovery should find them (see logset.go).
	if err := writeLogSet(fsys, dir, n, gen); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// OpenSet is OpenSetFS on the real filesystem.
func OpenSet(dir string, n int, gen uint64, syncWrites bool, flushEvery time.Duration) (*Set, error) {
	return OpenSetFS(vfs.OS{}, dir, n, gen, syncWrites, flushEvery)
}

// Writer returns worker i's log.
func (s *Set) Writer(i int) *Writer { return s.writers[i%len(s.writers)] }

// Observe arms flush instrumentation on every writer: h records each
// non-empty flush's latency (by worker shard), rec traces flush retries and
// failures. Either may be nil (that instrument stays off). Called once by
// the store right after opening the set; safe against concurrent background
// flushes.
func (s *Set) Observe(h *obs.Hist, rec *obs.Recorder) {
	for _, w := range s.writers {
		w.fmu.Lock()
		w.obsHist, w.obsRec = h, rec
		w.fmu.Unlock()
	}
}

// Workers returns the number of per-worker logs.
func (s *Set) Workers() int { return len(s.writers) }

// Rotate flushes all logs and advances every writer to a new generation,
// returning the new generation number.
func (s *Set) Rotate() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	for _, w := range s.writers {
		if err := w.rotate(s.gen, false); err != nil {
			return 0, err
		}
	}
	// One directory sync covers every writer's new generation file. On any
	// error (here or mid-rotation above) already-rotated writers keep
	// needDirSync set and self-heal on their next flush.
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return 0, err
	}
	for _, w := range s.writers {
		w.dirSynced()
	}
	// Advance the expected log set to the new generation now that the new
	// files' directory entries are durable — and before the caller's
	// checkpoint reclaims the old generation, so the expectation never
	// names files a completed DropBefore has removed.
	if err := writeLogSet(s.fsys, s.dir, len(s.writers), s.gen); err != nil {
		return 0, err
	}
	return s.gen, nil
}

// DropBefore removes all log files with generation < gen. Called after a
// checkpoint that began at generation gen becomes durable.
func (s *Set) DropBefore(gen uint64) error {
	files, err := ListLogFilesFS(s.fsys, s.dir)
	if err != nil {
		return err
	}
	for _, f := range files {
		if f.Gen < gen {
			if err := s.fsys.Remove(f.Path); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush flushes every writer.
func (s *Set) Flush() error {
	for _, w := range s.writers {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// FlushStats aggregates flush failures across the set: the total count and
// the most recent error observed on any writer.
func (s *Set) FlushStats() (errs int64, last error) {
	for _, w := range s.writers {
		n, e := w.FlushStats()
		errs += n
		if e != nil {
			last = e
		}
	}
	return errs, last
}

// FlushRetries sums backoff-pending flush retries across the set.
func (s *Set) FlushRetries() (n int64) {
	for _, w := range s.writers {
		n += w.FlushRetries()
	}
	return n
}

// Close flushes and closes every writer.
func (s *Set) Close() error {
	var first error
	for _, w := range s.writers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
