package core

import "sync/atomic"

// Stats holds always-on operation counters. They are cheap (contended only
// on rare paths) and power the paper's §4.6.4 retry-rate measurements and
// the maintenance/ablation benchmarks.
type Stats struct {
	RootRetries    atomic.Int64 // retries from the root (observed splits/deletes)
	LocalRetries   atomic.Int64 // local retries (observed inserts, link chases)
	Splits         atomic.Int64 // border + interior node splits
	LayerCreations atomic.Int64 // new trie layers created (§4.6.3)
	NodeDeletes    atomic.Int64 // border/interior nodes removed (§4.6.5)
	LayerCollapses atomic.Int64 // empty layers collapsed by maintenance
	SlotReuses     atomic.Int64 // inserts into previously-used slots (vinsert bumps)
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	RootRetries    int64
	LocalRetries   int64
	Splits         int64
	LayerCreations int64
	NodeDeletes    int64
	LayerCollapses int64
	SlotReuses     int64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		RootRetries:    s.RootRetries.Load(),
		LocalRetries:   s.LocalRetries.Load(),
		Splits:         s.Splits.Load(),
		LayerCreations: s.LayerCreations.Load(),
		NodeDeletes:    s.NodeDeletes.Load(),
		LayerCollapses: s.LayerCollapses.Load(),
		SlotReuses:     s.SlotReuses.Load(),
	}
}
