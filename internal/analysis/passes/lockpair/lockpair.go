// Package lockpair verifies the hand-over-hand border-lock discipline of the
// tree's write paths: every lock() acquired in a function is released on
// every path out of it, transfers between functions follow the declared
// //masstree: contracts, and unlocks always target locks actually held.
//
// The analysis runs a forward dataflow over each function's CFG. A state is
// a set of possible locksets; each lockset is a set of canonical lock keys
// ("n.h" for n *borderNode, "n" for n *nodeHeader) plus nil-ness facts about
// variables bound to conditionally-locked results. The moves it understands:
//
//   - x.lock() / x.unlock() / x.tryLock(): the spinlock primitives, by
//     method name. tryLock acquires only on the true edge of the branch it
//     guards.
//   - hand-over-hand transfer: next.h.lock(); n.h.unlock(); n = next renames
//     the lock "next.h" to "n.h" through the assignment.
//   - //masstree:locked n — callee requires (and keeps) n locked.
//   - //masstree:unlocks n — callee consumes n's lock on every path.
//   - //masstree:returns-locked — the non-nil result is locked; the state
//     splits and nil-check branches resolve it.
//   - //masstree:acquires k / //masstree:releases k — statement-level
//     escape hatch for lock transitions the analyzer cannot see, e.g.
//     constructor-locked nodes (newBorder(..., true)).
//
// Limitations (documented, deliberate): locks stored into fields or reached
// through calls are not tracked; a tryLock result assigned to a variable is
// not tracked (use it directly in the condition); deferred unlocks are
// credited on every exit path.
package lockpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the lockpair pass.
var Analyzer = &analysis.Analyzer{
	Name:     "lockpair",
	Doc:      "check that every node lock is released on all paths and lock transfers follow masstree: contracts",
	Packages: []string{"internal/core"},
	Run:      run,
}

// maxStates bounds the per-block state set; beyond it the function is
// abandoned with a diagnostic rather than risking non-termination.
const maxStates = 256

// primitives whose bodies implement the lock word itself and are exempt.
var primitiveNames = map[string]bool{"lock": true, "unlock": true, "tryLock": true, "stable": true}

func run(pass *analysis.Pass) {
	decls := analysis.FuncDecls(pass.All)
	for _, file := range pass.Pkg.Files {
		dirs := analysis.LineDirectives(pass.Pkg.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || primitiveNames[fd.Name.Name] {
				continue
			}
			analyzeFunc(pass, fd, decls, dirs)
		}
	}
}

// lockset is one possible program state: the locks held plus what is known
// about the nil-ness of variables holding conditionally-locked results
// (true = known non-nil, false = known nil).
type lockset struct {
	locks map[string]bool
	facts map[string]bool
}

func newLockset() *lockset {
	return &lockset{locks: map[string]bool{}, facts: map[string]bool{}}
}

func (ls *lockset) clone() *lockset {
	c := newLockset()
	for k := range ls.locks {
		c.locks[k] = true
	}
	for k, v := range ls.facts {
		c.facts[k] = v
	}
	return c
}

func (ls *lockset) key() string {
	locks := make([]string, 0, len(ls.locks))
	for k := range ls.locks {
		locks = append(locks, k)
	}
	sort.Strings(locks)
	facts := make([]string, 0, len(ls.facts))
	for k, v := range ls.facts {
		if v {
			facts = append(facts, k+"+")
		} else {
			facts = append(facts, k+"-")
		}
	}
	sort.Strings(facts)
	return strings.Join(locks, ",") + "|" + strings.Join(facts, ",")
}

type funcAnalysis struct {
	pass     *analysis.Pass
	info     *types.Info
	decls    map[*types.Func]*ast.FuncDecl
	dirs     map[int][]analysis.LineDirective
	facts    analysis.FuncFacts
	expected map[string]bool // keys that must be held at every return
	deferred map[string]bool // keys released by deferred calls
	reported map[string]bool
	exploded bool
}

func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl, dirs map[int][]analysis.LineDirective) {
	fa := &funcAnalysis{
		pass:     pass,
		info:     pass.Pkg.Info,
		decls:    decls,
		dirs:     dirs,
		facts:    analysis.FuncFactsOf(fd),
		expected: map[string]bool{},
		deferred: map[string]bool{},
		reported: map[string]bool{},
	}

	entry := newLockset()
	for _, contract := range []struct {
		names []string
		keep  bool
	}{{fa.facts.Locked, true}, {fa.facts.Unlocks, false}} {
		for _, name := range contract.names {
			key := fa.paramKey(fd, name)
			if key == "" {
				fa.reportf(fd.Pos(), "masstree: contract names %q, which is not a lockable parameter", name)
				continue
			}
			entry.locks[key] = true
			if contract.keep {
				fa.expected[key] = true
			}
		}
	}

	// Deferred releases are credited at every exit (core never defers
	// unlocks; this keeps the analyzer honest on code that does).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for key := range fa.callReleases(d.Call) {
			fa.deferred[key] = true
		}
		return true
	})

	g := cfg.New(fd.Body, func(call *ast.CallExpr) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		_, builtin := fa.info.Uses[id].(*types.Builtin)
		return builtin && id.Name == "panic"
	})

	in := make([]map[string]*lockset, len(g.Blocks))
	for i := range in {
		in[i] = map[string]*lockset{}
	}
	in[g.Entry.Index][entry.key()] = entry

	work := []*cfg.Block{g.Entry}
	queued := map[int]bool{g.Entry.Index: true}
	for len(work) > 0 && !fa.exploded {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		states := make([]*lockset, 0, len(in[b.Index]))
		for _, ls := range in[b.Index] {
			states = append(states, ls.clone())
		}
		for _, n := range b.Nodes {
			states = fa.transfer(states, n)
		}
		for _, e := range b.Succs {
			changed := false
			for _, ls := range states {
				out := ls
				if e.Cond != nil {
					filtered, feasible := fa.filterEdge(ls.clone(), e.Cond, e.Sense)
					if !feasible {
						continue
					}
					out = filtered
				}
				k := out.key()
				if _, ok := in[e.To.Index][k]; !ok {
					if len(in[e.To.Index]) >= maxStates {
						fa.reportf(fd.Pos(), "lock state explosion; function not analyzed")
						fa.exploded = true
						break
					}
					in[e.To.Index][k] = out.clone()
					changed = true
				}
			}
			if changed && !queued[e.To.Index] {
				queued[e.To.Index] = true
				work = append(work, e.To)
			}
		}
	}
	if fa.exploded {
		return
	}

	// Exit is reached only by falling off the end of the body.
	for _, ls := range in[g.Exit.Index] {
		fa.checkExit(ls, fd.Body.Rbrace)
	}
}

// transfer folds one atomic CFG node through every state.
func (fa *funcAnalysis) transfer(states []*lockset, node ast.Node) []*lockset {
	switch s := node.(type) {
	case *ast.AssignStmt:
		states = fa.handleAssign(states, s)
	case *ast.DeclStmt:
		states = fa.handleDecl(states, s)
	case *ast.ReturnStmt:
		states = fa.applyCalls(states, s, nil)
		for _, ls := range states {
			fa.checkExit(ls, s.Pos())
		}
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred releases are handled at exits; goroutine bodies run
		// elsewhere.
	default:
		states = fa.applyCalls(states, node, nil)
	}
	return fa.applyLineDirectives(states, node)
}

// applyLineDirectives folds //masstree:acquires and :releases annotations on
// the node's line into every state.
func (fa *funcAnalysis) applyLineDirectives(states []*lockset, node ast.Node) []*lockset {
	line := fa.pass.Fset().Position(node.Pos()).Line
	for _, d := range fa.dirs[line] {
		for _, key := range strings.Fields(d.Args) {
			for _, ls := range states {
				switch d.Verb {
				case "acquires":
					if ls.locks[key] {
						fa.reportf(node.Pos(), "double lock of %s", key)
					}
					ls.locks[key] = true
				case "releases":
					if !ls.locks[key] {
						fa.reportf(node.Pos(), "unlock of %s, which is not held", key)
					}
					delete(ls.locks, key)
				}
			}
		}
	}
	return states
}

// applyCalls processes every call in the node's subtree (skipping function
// literals, which execute elsewhere). resultUsed marks calls whose
// returns-locked result is consumed by the caller of applyCalls.
func (fa *funcAnalysis) applyCalls(states []*lockset, node ast.Node, resultUsed map[*ast.CallExpr]bool) []*lockset {
	var calls []*ast.CallExpr
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	for _, call := range calls {
		states = fa.applyCall(states, call, resultUsed[call])
	}
	return states
}

// applyCall folds one call's lock effects through every state.
func (fa *funcAnalysis) applyCall(states []*lockset, call *ast.CallExpr, resultUsed bool) []*lockset {
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	callee := analysis.CalleeOf(fa.info, call)
	if sel != nil && callee != nil && callee.Signature().Recv() != nil {
		switch sel.Sel.Name {
		case "lock":
			if key := render(sel.X); key != "" {
				for _, ls := range states {
					if ls.locks[key] {
						fa.reportf(call.Pos(), "double lock of %s", key)
					}
					ls.locks[key] = true
				}
			}
			return states
		case "unlock":
			if key := render(sel.X); key != "" {
				for _, ls := range states {
					if !ls.locks[key] {
						fa.reportf(call.Pos(), "unlock of %s, which is not held", key)
					}
					delete(ls.locks, key)
				}
			}
			return states
		case "tryLock":
			// Acquisition happens on the true edge of the guarding branch;
			// a discarded or variable-bound result is not tracked.
			return states
		}
	}
	if callee == nil {
		return states
	}
	facts := analysis.FuncFactsOf(fa.decls[callee])
	if facts.Empty() {
		return states
	}
	actuals := bindActuals(fa.decls[callee], call)
	for _, name := range facts.Locked {
		key := fa.actualKey(actuals[name])
		if key == "" {
			continue
		}
		for _, ls := range states {
			if !ls.locks[key] {
				fa.reportf(call.Pos(), "call to %s requires %s held (masstree:locked)", callee.Name(), key)
			}
		}
	}
	for _, name := range facts.Unlocks {
		key := fa.actualKey(actuals[name])
		if key == "" {
			continue
		}
		for _, ls := range states {
			if !ls.locks[key] {
				fa.reportf(call.Pos(), "call to %s releases %s, which is not held", callee.Name(), key)
			}
			delete(ls.locks, key)
		}
	}
	if facts.ReturnsLocked && !resultUsed {
		fa.reportf(call.Pos(), "result of %s (masstree:returns-locked) discarded; the returned lock leaks", callee.Name())
	}
	return states
}

// callReleases returns the keys a call releases (its own unlock, or its
// masstree:unlocks contract), for crediting deferred calls.
func (fa *funcAnalysis) callReleases(call *ast.CallExpr) map[string]bool {
	keys := map[string]bool{}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "unlock" {
		if key := render(sel.X); key != "" {
			keys[key] = true
		}
		return keys
	}
	callee := analysis.CalleeOf(fa.info, call)
	if callee == nil {
		return keys
	}
	facts := analysis.FuncFactsOf(fa.decls[callee])
	actuals := bindActuals(fa.decls[callee], call)
	for _, name := range facts.Unlocks {
		if key := fa.actualKey(actuals[name]); key != "" {
			keys[key] = true
		}
	}
	return keys
}

func (fa *funcAnalysis) handleAssign(states []*lockset, s *ast.AssignStmt) []*lockset {
	// A single-assign from a returns-locked call splits the state below
	// instead of reporting a discarded result.
	var special *ast.CallExpr
	var specialLHS *ast.Ident
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if callee := analysis.CalleeOf(fa.info, call); callee != nil {
				if analysis.FuncFactsOf(fa.decls[callee]).ReturnsLocked {
					if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						special, specialLHS = call, id
					}
				}
			}
		}
	}
	used := map[*ast.CallExpr]bool{}
	if special != nil {
		used[special] = true
	}
	states = fa.applyCalls(states, s, used)

	// Simultaneous rename: hand-over-hand transfers (n = next) and lock
	// rebinding (n, n2, sep = &p.h, &p2.h, sep2) move keys to their new
	// names; other assignments drop the overwritten variable's stale keys.
	var pairs []renamePair
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		p := renamePair{lhs: id.Name}
		if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) {
			p.rhsKey = render(s.Rhs[i])
			if rid, ok := ast.Unparen(s.Rhs[i]).(*ast.Ident); ok {
				p.rhsVar = rid.Name
			}
		}
		pairs = append(pairs, p)
	}
	if len(pairs) > 0 {
		for i, ls := range states {
			states[i] = renameState(ls, pairs)
		}
	}

	if special != nil {
		key := fa.actualTypeKey(specialLHS.Name, fa.identType(specialLHS))
		if key != "" {
			var split []*lockset
			for _, ls := range states {
				held := ls.clone()
				held.locks[key] = true
				held.facts[specialLHS.Name] = true
				ls.facts[specialLHS.Name] = false
				split = append(split, held, ls)
			}
			states = split
		}
	}
	return states
}

func (fa *funcAnalysis) handleDecl(states []*lockset, s *ast.DeclStmt) []*lockset {
	states = fa.applyCalls(states, s, nil)
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return states
	}
	var pairs []renamePair
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			if name.Name != "_" {
				pairs = append(pairs, renamePair{lhs: name.Name})
			}
		}
	}
	for i, ls := range states {
		states[i] = renameState(ls, pairs)
	}
	return states
}

type renamePair struct {
	lhs    string
	rhsKey string // canonical key of the RHS ("" when untrackable)
	rhsVar string // RHS identifier name, for fact propagation
}

func renameState(ls *lockset, pairs []renamePair) *lockset {
	out := newLockset()
	overwritten := map[string]bool{}
	for _, p := range pairs {
		overwritten[p.lhs] = true
	}
	for k := range ls.locks {
		renamed := false
		for _, p := range pairs {
			if p.rhsKey != "" && (k == p.rhsKey || strings.HasPrefix(k, p.rhsKey+".")) {
				out.locks[p.lhs+k[len(p.rhsKey):]] = true
				renamed = true
				break
			}
		}
		if !renamed && !overwritten[root(k)] {
			out.locks[k] = true
		}
	}
	for v, known := range ls.facts {
		if !overwritten[v] {
			out.facts[v] = known
		}
	}
	for _, p := range pairs {
		if p.rhsVar != "" {
			if known, ok := ls.facts[p.rhsVar]; ok {
				out.facts[p.lhs] = known
			}
		}
	}
	return out
}

// filterEdge refines a state along a conditional edge: nil checks resolve
// conditionally-held locks, tryLock acquires on its true edge, and
// &&/|| decompose when the taken sense determines both operands.
func (fa *funcAnalysis) filterEdge(ls *lockset, cond ast.Expr, sense bool) (*lockset, bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return fa.filterEdge(ls, e.X, !sense)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if sense {
				ls, ok := fa.filterEdge(ls, e.X, true)
				if !ok {
					return nil, false
				}
				return fa.filterEdge(ls, e.Y, true)
			}
		case token.LOR:
			if !sense {
				ls, ok := fa.filterEdge(ls, e.X, false)
				if !ok {
					return nil, false
				}
				return fa.filterEdge(ls, e.Y, false)
			}
		case token.EQL, token.NEQ:
			other, ok := nilComparand(fa.info, e)
			if !ok {
				break
			}
			name := render(other)
			if name == "" {
				break
			}
			isNil := (e.Op == token.EQL) == sense
			if known, ok := ls.facts[name]; ok && known == isNil {
				return nil, false // contradiction: this edge is infeasible
			}
			ls.facts[name] = !isNil
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "tryLock" && sense {
			if key := render(sel.X); key != "" {
				ls.locks[key] = true
			}
		}
	}
	return ls, true
}

// nilComparand returns the non-nil side of an x ==/!= nil comparison.
func nilComparand(info *types.Info, e *ast.BinaryExpr) (ast.Expr, bool) {
	if isNilExpr(info, e.Y) {
		return e.X, true
	}
	if isNilExpr(info, e.X) {
		return e.Y, true
	}
	return nil, false
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil || id.Name == "nil"
}

// checkExit verifies one path's lockset against the function contract at a
// return site (or the implicit return at the closing brace).
func (fa *funcAnalysis) checkExit(ls *lockset, pos token.Pos) {
	held := map[string]bool{}
	for k := range ls.locks {
		if !fa.deferred[k] {
			held[k] = true
		}
	}
	var extra []string
	for k := range held {
		if !fa.expected[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	if fa.facts.ReturnsLocked && len(extra) == 1 {
		extra = nil // the lock handed to the caller
	}
	for _, k := range extra {
		fa.reportf(pos, "lock %s is not released on this return path", k)
	}
	for k := range fa.expected {
		if !held[k] {
			fa.reportf(pos, "%s must be held at return (masstree:locked)", k)
		}
	}
}

func (fa *funcAnalysis) reportf(pos token.Pos, format string, args ...any) {
	key := fa.pass.Fset().Position(pos).String() + "|" + format + sprintArgs(args)
	if fa.reported[key] {
		return
	}
	fa.reported[key] = true
	fa.pass.Reportf(pos, format, args...)
}

func sprintArgs(args []any) string {
	var b strings.Builder
	for _, a := range args {
		b.WriteByte('|')
		if s, ok := a.(string); ok {
			b.WriteString(s)
		}
	}
	return b.String()
}

// paramKey resolves a contract name to its canonical lock key using the
// parameter's (or receiver's) declared type.
func (fa *funcAnalysis) paramKey(fd *ast.FuncDecl, name string) string {
	var fields []*ast.Field
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, f := range fields {
		for _, id := range f.Names {
			if id.Name != name {
				continue
			}
			if obj := fa.info.Defs[id]; obj != nil {
				return fa.actualTypeKey(name, obj.Type())
			}
		}
	}
	return ""
}

// actualKey computes the canonical lock key of a call argument.
func (fa *funcAnalysis) actualKey(e ast.Expr) string {
	if e == nil {
		return ""
	}
	base := render(e)
	if base == "" {
		return ""
	}
	tv, ok := fa.info.Types[e]
	if !ok {
		return ""
	}
	return fa.actualTypeKey(base, tv.Type)
}

// actualTypeKey appends ".h" when the value's lock lives in an embedded
// header field rather than on the type itself.
func (fa *funcAnalysis) actualTypeKey(base string, typ types.Type) string {
	if base == "" || typ == nil {
		return ""
	}
	t := typ
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if hasLockMethod(t) {
		return base
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "h" && hasLockMethod(f.Type()) {
				return base + ".h"
			}
		}
	}
	return ""
}

func hasLockMethod(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		return hasLockMethod(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, n.Obj().Pkg(), "lock")
	fn, ok := obj.(*types.Func)
	return ok && fn != nil
}

func (fa *funcAnalysis) identType(id *ast.Ident) types.Type {
	if obj := fa.info.Defs[id]; obj != nil {
		return obj.Type()
	}
	if obj := fa.info.Uses[id]; obj != nil {
		return obj.Type()
	}
	return nil
}

// bindActuals maps a callee's receiver and parameter names to the caller's
// argument expressions.
func bindActuals(decl *ast.FuncDecl, call *ast.CallExpr) map[string]ast.Expr {
	m := map[string]ast.Expr{}
	if decl == nil {
		return m
	}
	if decl.Recv != nil && len(decl.Recv.List) > 0 && len(decl.Recv.List[0].Names) > 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			m[decl.Recv.List[0].Names[0].Name] = sel.X
		}
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if i < len(call.Args) {
				m[name.Name] = call.Args[i]
			}
			i++
		}
	}
	return m
}

// render prints an expression as a canonical lock key: identifiers and
// selector chains only; &x renders as x. Anything else is untrackable.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := render(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return render(e.X)
	case *ast.StarExpr:
		return render(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return render(e.X)
		}
	}
	return ""
}

func root(key string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return key
}
