package kvstore

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/value"
	"repro/internal/vfs"
)

// openLoaderStore opens an in-memory store fronting the given backend.
func openLoaderStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestGetOrLoadReadThrough(t *testing.T) {
	m := backend.NewMock(0)
	m.Seed("k", backend.EncodeCols([][]byte{[]byte("v0"), []byte("v1")}))
	s := openLoaderStore(t, Config{Backend: m})
	ss := s.Session(0)
	defer ss.Close()
	ctx := context.Background()

	v, stale, err := ss.GetOrLoad(ctx, []byte("k"))
	if err != nil || stale || v == nil {
		t.Fatalf("GetOrLoad = %v,%v,%v", v, stale, err)
	}
	if string(v.Col(0)) != "v0" || string(v.Col(1)) != "v1" {
		t.Fatalf("cols = %q %q", v.Col(0), v.Col(1))
	}
	// Installed: a plain Get now hits without touching the backend.
	if _, ok := ss.Get([]byte("k"), nil); !ok {
		t.Fatal("loaded value not installed")
	}
	before := m.Loads()
	if v2, _, err := ss.GetOrLoad(ctx, []byte("k")); err != nil || v2 == nil {
		t.Fatalf("second GetOrLoad: %v %v", v2, err)
	}
	if m.Loads() != before {
		t.Fatal("hit path touched the backend")
	}
	st := s.LoaderStats()
	if st.Loads != 1 || st.LoadErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrLoadTTLRidesHeader(t *testing.T) {
	m := backend.NewMock(30 * time.Millisecond)
	m.Seed("k", backend.EncodeCols([][]byte{[]byte("v")}))
	s := openLoaderStore(t, Config{Backend: m, NegativeTTL: -1})
	ss := s.Session(0)
	defer ss.Close()
	ctx := context.Background()
	v, _, err := ss.GetOrLoad(ctx, []byte("k"))
	if err != nil || v == nil {
		t.Fatalf("load: %v %v", v, err)
	}
	if v.ExpiresAt() == 0 {
		t.Fatal("backend TTL not stamped on the value")
	}
	time.Sleep(40 * time.Millisecond)
	if _, ok := ss.Get([]byte("k"), nil); ok {
		t.Fatal("value survived its backend TTL")
	}
	// Re-load after expiry fetches again.
	if v, _, err := ss.GetOrLoad(ctx, []byte("k")); err != nil || v == nil {
		t.Fatalf("reload: %v %v", v, err)
	}
	if m.Loads() != 2 {
		t.Fatalf("loads = %d, want 2", m.Loads())
	}
}

func TestGetOrLoadHerd(t *testing.T) {
	m := backend.NewMock(0)
	m.Seed("hot", backend.EncodeCols([][]byte{[]byte("v")}))
	release := m.Hang()
	s := openLoaderStore(t, Config{Backend: m})
	ctx := context.Background()

	const herd = 128
	var wg sync.WaitGroup
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ss := s.Session(0)
			defer ss.Close()
			v, _, err := ss.GetOrLoad(ctx, []byte("hot"))
			if err == nil && v == nil {
				err = errors.New("nil value")
			}
			errs[i] = err
		}(i)
	}
	// Wait until every miss has either led or parked, then release the
	// backend: coalesced must equal herd-1 at that point.
	waitUntil(t, func() bool {
		return s.LoaderStats().HerdCoalesced == herd-1
	})
	release()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if n := m.LoadsFor("hot"); n != 1 {
		t.Fatalf("backend loads = %d, want exactly 1", n)
	}
	if n := m.MaxConcurrentLoads(); n != 1 {
		t.Fatalf("max concurrent loads = %d, want 1", n)
	}
	st := s.LoaderStats()
	if st.HerdCoalesced != herd-1 {
		t.Fatalf("herd_coalesced = %d, want %d", st.HerdCoalesced, herd-1)
	}
}

func TestGetOrLoadWaiterHonorsContext(t *testing.T) {
	m := backend.NewMock(0)
	m.Seed("k", backend.EncodeCols([][]byte{[]byte("v")}))
	release := m.Hang()
	defer release()
	s := openLoaderStore(t, Config{Backend: m})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		ss := s.Session(0)
		defer ss.Close()
		ss.GetOrLoad(context.Background(), []byte("k"))
	}()
	waitUntil(t, func() bool { return m.Loads() == 1 })
	ss := s.Session(0)
	defer ss.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := ss.GetOrLoad(ctx, []byte("k")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v", err)
	}
	release()
	<-leaderDone
}

func TestGetOrLoadNegativeCache(t *testing.T) {
	m := backend.NewMock(0)
	s := openLoaderStore(t, Config{Backend: m, NegativeTTL: 50 * time.Millisecond})
	ss := s.Session(0)
	defer ss.Close()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if v, _, err := ss.GetOrLoad(ctx, []byte("ghost")); v != nil || err != nil {
			t.Fatalf("miss %d: %v %v", i, v, err)
		}
	}
	if n := m.LoadsFor("ghost"); n != 1 {
		t.Fatalf("backend loads = %d, want 1 (negative-cached)", n)
	}
	st := s.LoaderStats()
	if st.NegativeHits != 4 {
		t.Fatalf("negative hits = %d, want 4", st.NegativeHits)
	}
	time.Sleep(60 * time.Millisecond)
	ss.GetOrLoad(ctx, []byte("ghost"))
	if n := m.LoadsFor("ghost"); n != 2 {
		t.Fatalf("backend loads after TTL = %d, want 2", n)
	}
}

func TestPutInvalidatesNegativeCache(t *testing.T) {
	m := backend.NewMock(0)
	s := openLoaderStore(t, Config{
		Backend:     m,
		NegativeTTL: time.Hour, // a put must not wait this out
		WriteBehind: 16,
		MaxBytes:    1, // evict aggressively: the put's only survival is the spill path
	})
	ss := s.Session(0)
	defer ss.Close()
	ctx := context.Background()
	if v, _, err := ss.GetOrLoad(ctx, []byte("k")); v != nil || err != nil {
		t.Fatalf("prime miss: %v %v", v, err)
	}
	ss.PutSimple([]byte("k"), []byte("acked"))
	// Whether the key is resident or already evicted-and-spilled, GetOrLoad
	// must find it: the negative verdict died with the put.
	waitUntil(t, func() bool {
		v, _, err := ss.GetOrLoad(ctx, []byte("k"))
		return err == nil && v != nil && string(v.Col(0)) == "acked"
	})
}

func TestStaleIfErrorAndBreakerRecovery(t *testing.T) {
	down := errors.New("backend down")
	m := backend.NewMock(20 * time.Millisecond)
	m.Seed("k", backend.EncodeCols([][]byte{[]byte("v")}))
	w := backend.Wrap(m, backend.WrapConfig{
		BreakerFailures: 2,
		BreakerOpenFor:  40 * time.Millisecond,
	})
	s := openLoaderStore(t, Config{
		Backend:     w,
		MaxStale:    time.Hour,
		NegativeTTL: -1,
	})
	ss := s.Session(0)
	defer ss.Close()
	ctx := context.Background()

	// Load once while healthy; value carries a 20ms TTL.
	if v, _, err := ss.GetOrLoad(ctx, []byte("k")); err != nil || v == nil {
		t.Fatalf("healthy load: %v %v", v, err)
	}
	time.Sleep(30 * time.Millisecond) // expire it in place
	m.SetError(down)

	// Expired + backend down -> stale-if-error, flagged.
	v, stale, err := ss.GetOrLoad(ctx, []byte("k"))
	if err != nil || v == nil || !stale {
		t.Fatalf("stale serve = %v,%v,%v", v, stale, err)
	}
	if string(v.Col(0)) != "v" {
		t.Fatalf("stale value = %q", v.Col(0))
	}
	ss.GetOrLoad(ctx, []byte("k")) // second failure trips the breaker
	if st := s.LoaderStats(); st.StaleServed < 2 || st.Backend.BreakerOpens != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Breaker open: a miss with nothing resident fails fast with the
	// breaker error, without reaching the backend.
	before := m.Loads()
	if _, _, err := ss.GetOrLoad(ctx, []byte("absent")); !errors.Is(err, backend.ErrUnavailable) {
		t.Fatalf("fail-fast err = %v", err)
	}
	if m.Loads() != before {
		t.Fatal("open breaker let a load through")
	}
	// Heal; after the cool-down the half-open probe restores service.
	m.SetError(nil)
	time.Sleep(50 * time.Millisecond)
	waitUntil(t, func() bool {
		v, stale, err := ss.GetOrLoad(ctx, []byte("k"))
		return err == nil && v != nil && !stale
	})
	if st := s.LoaderStats(); st.Backend.BreakerState != backend.BreakerClosed {
		t.Fatalf("breaker did not close: %+v", st)
	}
}

func TestGetOrLoadFailFastNoGoroutinePileup(t *testing.T) {
	down := errors.New("hard down")
	m := backend.NewMock(0)
	w := backend.Wrap(m, backend.WrapConfig{BreakerFailures: 1, BreakerOpenFor: time.Hour})
	s := openLoaderStore(t, Config{Backend: w, NegativeTTL: -1})
	ss := s.Session(0)
	defer ss.Close()
	ctx := context.Background()
	ss.PutSimple([]byte("resident"), []byte("v"))
	m.SetError(down)
	ss.GetOrLoad(ctx, []byte("absent")) // trips the breaker

	base := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := s.Session(0)
			defer sess.Close()
			for j := 0; j < 50; j++ {
				// Resident keys keep serving...
				if _, ok := sess.Get([]byte("resident"), nil); !ok {
					t.Error("resident read failed")
					return
				}
				if v, _, _ := sess.GetOrLoad(ctx, []byte("resident")); v == nil {
					t.Error("resident GetOrLoad failed")
					return
				}
				// ...absent keys fail fast instead of queueing.
				if _, _, err := sess.GetOrLoad(ctx, []byte("absent")); err == nil {
					t.Error("absent GetOrLoad succeeded with backend down")
					return
				}
			}
		}()
	}
	wg.Wait()
	// Nothing may be left parked behind the dead backend.
	waitUntil(t, func() bool { return runtime.NumGoroutine() <= base+8 })
}

func TestWriteBehindSpillAndReload(t *testing.T) {
	m := backend.NewMock(0)
	s := openLoaderStore(t, Config{
		Backend:     m,
		WriteBehind: 64,
		MaxBytes:    1, // evict everything the maintenance loop sees
	})
	ss := s.Session(0)
	defer ss.Close()
	ctx := context.Background()
	ss.PutSimple([]byte("spillme"), []byte("payload"))
	// Eviction (budget 1 byte) must spill the key to the backend...
	waitUntil(t, func() bool {
		_, ok := m.Get("spillme")
		return ok
	})
	// ...and once it leaves memory, GetOrLoad reads it back through.
	waitUntil(t, func() bool {
		_, resident := ss.Get([]byte("spillme"), nil)
		return !resident
	})
	v, stale, err := ss.GetOrLoad(ctx, []byte("spillme"))
	if err != nil || stale || v == nil || string(v.Col(0)) != "payload" {
		t.Fatalf("reload = %v,%v,%v", v, stale, err)
	}
}

func TestWriteBehindPendingVisibleToLoad(t *testing.T) {
	m := backend.NewMock(0)
	release := m.Hang() // spills park in the queue
	defer release()
	s := openLoaderStore(t, Config{Backend: m, WriteBehind: 64, MaxBytes: 1})
	ss := s.Session(0)
	defer ss.Close()
	ctx := context.Background()
	ss.PutSimple([]byte("k"), []byte("newest"))
	// Wait for eviction to queue the spill (key gone from memory, store hung).
	waitUntil(t, func() bool {
		_, resident := ss.Get([]byte("k"), nil)
		return !resident && s.LoaderStats().WriteBehindDepth > 0
	})
	// The backend has nothing yet; the pending spill must answer the load.
	v, _, err := ss.GetOrLoad(ctx, []byte("k"))
	if err != nil || v == nil || string(v.Col(0)) != "newest" {
		t.Fatalf("pending-spill load = %v,%v", v, err)
	}
}

func TestRemoveTombstonePropagates(t *testing.T) {
	m := backend.NewMock(0)
	m.Seed("k", backend.EncodeCols([][]byte{[]byte("old")}))
	s := openLoaderStore(t, Config{Backend: m, WriteBehind: 16, NegativeTTL: -1})
	ss := s.Session(0)
	defer ss.Close()
	ctx := context.Background()
	if v, _, err := ss.GetOrLoad(ctx, []byte("k")); err != nil || v == nil {
		t.Fatalf("prime: %v %v", v, err)
	}
	ss.Remove([]byte("k"))
	// Immediately after the remove the tombstone may still be queued: the
	// load must see it and answer miss, never resurrect the backend copy.
	if v, _, err := ss.GetOrLoad(ctx, []byte("k")); v != nil || err != nil {
		t.Fatalf("post-remove load = %v %v", v, err)
	}
	// Eventually the delete lands upstream too.
	waitUntil(t, func() bool {
		_, ok := m.Get("k")
		return !ok
	})
}

func TestWriteBehindDropsCounted(t *testing.T) {
	m := backend.NewMock(0)
	release := m.Hang()
	defer release()
	s := openLoaderStore(t, Config{Backend: m, WriteBehind: 2, NegativeTTL: -1})
	ss := s.Session(0)
	defer ss.Close()
	for i := 0; i < 6; i++ {
		ss.PutSimple([]byte{byte('a' + i)}, []byte("v"))
		ss.Remove([]byte{byte('a' + i)}) // tombstones queue up behind the hang
	}
	st := s.LoaderStats()
	if st.WriteBehindDrops == 0 {
		t.Fatalf("expected drops with depth 2, got %+v", st)
	}
	if st.WriteBehindDepth > 3 {
		t.Fatalf("depth exceeded bound: %+v", st)
	}
}

func TestDrainWriteBehindOnShutdown(t *testing.T) {
	mem := vfs.NewMemFS()
	fb, err := backend.NewFile(mem, "/bk", 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{Backend: fb, WriteBehind: 64})
	if err != nil {
		t.Fatal(err)
	}
	ss := s.Session(0)
	ss.PutSimple([]byte("k"), []byte("v"))
	ss.Remove([]byte("k")) // queue a tombstone
	ss.PutSimple([]byte("k2"), []byte("v2"))
	ss.Close()
	if !s.DrainWriteBehind(2 * time.Second) {
		t.Fatal("drain timed out")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if d := s.LoaderStats().WriteBehindDepth; d != 0 {
		t.Fatalf("depth after close = %d", d)
	}
}

func TestGetOrLoadHitPathAllocFree(t *testing.T) {
	m := backend.NewMock(0)
	s := openLoaderStore(t, Config{Backend: m})
	ss := s.Session(0)
	defer ss.Close()
	ss.PutSimple([]byte("hot"), []byte("v"))
	ctx := context.Background()
	key := []byte("hot")
	allocs := testing.AllocsPerRun(200, func() {
		v, stale, err := ss.GetOrLoad(ctx, key)
		if v == nil || stale || err != nil {
			t.Fatal("hit path failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("GetOrLoad hit path allocates %.1f/op, want 0", allocs)
	}
}

func TestGetOrLoadNoBackend(t *testing.T) {
	s := openLoaderStore(t, Config{})
	ss := s.Session(0)
	defer ss.Close()
	ss.PutSimple([]byte("k"), []byte("v"))
	if v, _, err := ss.GetOrLoad(context.Background(), []byte("k")); err != nil || v == nil {
		t.Fatalf("resident hit: %v %v", v, err)
	}
	if _, _, err := ss.GetOrLoad(context.Background(), []byte("absent")); !errors.Is(err, ErrNoBackend) {
		t.Fatalf("err = %v, want ErrNoBackend", err)
	}
}

func TestLoadDoesNotClobberRacingPut(t *testing.T) {
	m := backend.NewMock(0)
	m.Seed("k", backend.EncodeCols([][]byte{[]byte("from-backend")}))
	release := m.Hang()
	s := openLoaderStore(t, Config{Backend: m})
	ssLoad := s.Session(0)
	defer ssLoad.Close()
	done := make(chan *value.Value, 1)
	go func() {
		v, _, _ := ssLoad.GetOrLoad(context.Background(), []byte("k"))
		done <- v
	}()
	waitUntil(t, func() bool { return m.Loads() == 1 })
	// A real put lands while the load is in flight.
	ssPut := s.Session(0)
	defer ssPut.Close()
	ssPut.PutSimple([]byte("k"), []byte("from-put"))
	release()
	v := <-done
	if v == nil || string(v.Col(0)) != "from-put" {
		t.Fatalf("load returned %v, want the racing put's value", v)
	}
	if got, _ := ssPut.Get([]byte("k"), nil); string(got[0]) != "from-put" {
		t.Fatalf("resident value = %q, put was clobbered", got[0])
	}
}

// waitUntil polls cond for up to ~5s.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
