// Quickstart: the Masstree store's four operations (§3) used as an embedded
// library — get, put (with columns), remove, and getrange.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/kvstore"
	"repro/internal/value"
)

func main() {
	// An in-memory store (no persistence directory).
	store, err := kvstore.Open(kvstore.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// put(k, v): values are arrays of columns; a put of several columns is
	// atomic with respect to concurrent readers (§4.7).
	store.Put(0, []byte("user:alice"), []value.ColPut{
		{Col: 0, Data: []byte("Alice")},
		{Col: 1, Data: []byte("alice@example.org")},
	})
	store.PutSimple(0, []byte("user:bob"), []byte("Bob"))
	store.PutSimple(0, []byte("user:carol"), []byte("Carol"))

	// get(k) with a column subset.
	cols, ok := store.Get([]byte("user:alice"), []int{1})
	fmt.Printf("alice email: %q (found=%v)\n", cols[0], ok)

	// Arbitrary binary keys are fine — including embedded NULs and long
	// shared prefixes, Masstree's specialty (§4.1).
	store.PutSimple(0, []byte("bin\x00key"), []byte("binary!"))
	v, _ := store.Get([]byte("bin\x00key"), nil)
	fmt.Printf("binary key: %q\n", v[0])

	// getrange(k, n): ordered traversal from a start key (§3).
	fmt.Println("users in order:")
	for _, pair := range store.GetRange([]byte("user:"), 10, []int{0}) {
		fmt.Printf("  %s = %s\n", pair.Key, pair.Cols[0])
	}

	// remove(k).
	store.Remove(0, []byte("user:bob"))
	_, ok = store.Get([]byte("user:bob"), nil)
	fmt.Printf("bob after remove: found=%v\n", ok)
}
