package core

// Ablation benchmarks for §4.8's design discussion:
//
//   - linear vs binary search within a border node ("linear search has
//     higher complexity ... but exhibits better locality"; the paper saw
//     ±0-5% depending on architecture);
//   - batched vs one-at-a-time lookups (PALM-style, §4.8);
//   - value update via one atomic pointer write vs full put path.
import (
	"fmt"
	"testing"

	"repro/internal/value"
	"repro/internal/workload"
)

// searchRankBinary is the binary-search alternative to searchRank, used only
// by this ablation.
func (n *borderNode) searchRankBinary(p permutation, slice uint64, ord int) (rank int, found bool) {
	lo, hi := 0, p.count()
	for lo < hi {
		mid := (lo + hi) / 2
		slot := p.slot(mid)
		c := cmpKey(n.keyslice[slot].Load(), ordOf(n.keylen[slot].Load()), slice, ord)
		switch {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

func buildFullBorder(b *testing.B) (*borderNode, []uint64) {
	tr := New()
	var slices []uint64
	for i := 0; i < width; i++ {
		k := []byte(fmt.Sprintf("key%02d", i*3))
		tr.Put(k, value.New(k))
		slices = append(slices, keySlice(k))
	}
	root := tr.rootHeader()
	if !isBorder(root.version.Load()) {
		b.Fatal("expected a single border node")
	}
	return root.border(), slices
}

func BenchmarkBorderSearchLinear(b *testing.B) {
	n, slices := buildFullBorder(b)
	p := n.perm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.searchRank(p, slices[i%len(slices)], 5)
	}
}

func BenchmarkBorderSearchBinary(b *testing.B) {
	n, slices := buildFullBorder(b)
	p := n.perm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.searchRankBinary(p, slices[i%len(slices)], 5)
	}
}

// TestSearchBinaryMatchesLinear keeps the ablation honest: both search
// strategies must agree on every (slice, ord) probe.
func TestSearchBinaryMatchesLinear(t *testing.T) {
	tr := New()
	for i := 0; i < width; i++ {
		k := []byte(fmt.Sprintf("key%02d", i*3))
		tr.Put(k, value.New(k))
	}
	n := tr.rootHeader().border()
	p := n.perm()
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key%02d", i))
		slice, ord := keySlice(k), keyOrd(k)
		r1, f1 := n.searchRank(p, slice, ord)
		r2, f2 := n.searchRankBinary(p, slice, ord)
		if r1 != r2 || f1 != f2 {
			t.Fatalf("probe %q: linear (%d,%v) binary (%d,%v)", k, r1, f1, r2, f2)
		}
	}
}

func BenchmarkGetVsGetBatch(b *testing.B) {
	tr := New()
	keys := workload.Keys(workload.Decimal(10), 100_000)
	for _, k := range keys {
		tr.Put(k, value.New(k))
	}
	const batch = 256
	b.Run("get-one-at-a-time", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				tr.Get(keys[(i*batch+j*61)%len(keys)])
			}
		}
	})
	b.Run("getbatch", func(b *testing.B) {
		buf := make([][]byte, batch)
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				buf[j] = keys[(i*batch+j*61)%len(keys)]
			}
			tr.GetBatch(buf)
		}
	})
}

func BenchmarkValueUpdateInPlace(b *testing.B) {
	tr := New()
	k := []byte("hotkey")
	tr.Put(k, value.New([]byte("v")))
	v := value.New([]byte("v2"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(k, v) // replaces via one atomic pointer store (§4.6.1)
	}
}
