//go:build slowtest

package kvstore

import "testing"

// TestCrashTortureBackendEveryBoundary is the exhaustive variant of
// TestBackendFaultTorture: it enumerates every filesystem boundary of the
// backend-fault workload and crashes at each one in turn, verifying the
// full model (and the read-through recovery mode) at every landing point.
// Run with: go test -tags slowtest -race -run CrashTortureBackend ./internal/kvstore
func TestCrashTortureBackendEveryBoundary(t *testing.T) {
	total, crashed := runTortureBackend(t, 0)
	if crashed {
		t.Fatal("disarmed run crashed")
	}
	t.Logf("backend workload executes %d crash boundaries", total)
	for i := 1; i <= total; i++ {
		runTortureBackend(t, i)
	}
}
