package core
