// Package server implements the Masstree network server (§5): a TCP
// listener whose per-connection goroutines execute batched queries against
// the store. The paper's benchmarks use long-lived TCP query connections
// from few clients or client aggregators, "a common operating mode that is
// equally effective at avoiding network overhead"; batching many queries per
// message amortizes network and syscall costs.
//
// Each connection is bound to a worker id (round-robin), which selects the
// log its puts append to — the paper's per-core logs mapped onto Go's
// scheduler.
package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/kvstore"
	"repro/internal/value"
	"repro/internal/wire"
)

// Server serves a kvstore over TCP.
type Server struct {
	store *kvstore.Store
	ln    net.Listener

	nextWorker atomic.Int64
	workers    int

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	udp   []*udpListener
	wg    sync.WaitGroup
	done  atomic.Bool
}

// New creates a server for store with the given number of logical workers
// (log streams). workers <= 0 defaults to 1.
func New(store *kvstore.Store, workers int) *Server {
	if workers <= 0 {
		workers = 1
	}
	return &Server{store: store, workers: workers, conns: map[net.Conn]struct{}{}}
}

// Listen starts accepting connections on addr ("host:port"; ":0" picks a
// free port). It returns immediately; Addr reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.done.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		worker := int(s.nextWorker.Add(1)-1) % s.workers
		s.wg.Add(1)
		go s.serveConn(conn, worker)
	}
}

func (s *Server) serveConn(conn net.Conn, worker int) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess := s.store.Session(worker)
	defer sess.Close()
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	resps := make([]wire.Response, 0, 64)
	for {
		reqs, err := wire.ReadRequests(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				// Protocol error: drop the connection.
				return
			}
			return
		}
		resps = resps[:0]
		for i := range reqs {
			resps = append(resps, s.execute(sess, &reqs[i]))
		}
		if err := wire.WriteResponses(w, resps); err != nil {
			return
		}
	}
}

func (s *Server) execute(sess *kvstore.Session, r *wire.Request) wire.Response {
	switch r.Op {
	case wire.OpGet:
		cols, ok := sess.Get(r.Key, r.Cols)
		if !ok {
			return wire.Response{Status: wire.StatusNotFound}
		}
		return wire.Response{Status: wire.StatusOK, Cols: cols}
	case wire.OpPut:
		puts := make([]value.ColPut, len(r.Puts))
		for i, p := range r.Puts {
			puts[i] = value.ColPut{Col: p.Col, Data: p.Data}
		}
		ver := sess.Put(r.Key, puts)
		return wire.Response{Status: wire.StatusOK, Version: ver}
	case wire.OpRemove:
		if sess.Remove(r.Key) {
			return wire.Response{Status: wire.StatusOK}
		}
		return wire.Response{Status: wire.StatusNotFound}
	case wire.OpGetRange:
		pairs := sess.GetRange(r.Key, r.N, r.Cols)
		out := make([]wire.Pair, len(pairs))
		for i, p := range pairs {
			out[i] = wire.Pair{Key: p.Key, Cols: p.Cols}
		}
		return wire.Response{Status: wire.StatusOK, Pairs: out}
	case wire.OpStats:
		return s.statsResponse()
	default:
		return wire.Response{Status: wire.StatusError}
	}
}

// statsResponse reports store size and tree operation counters as metric
// name/value pairs.
func (s *Server) statsResponse() wire.Response {
	st := s.store.Stats()
	metric := func(name string, v int64) wire.Pair {
		return wire.Pair{Key: []byte(name), Cols: [][]byte{[]byte(strconv.FormatInt(v, 10))}}
	}
	return wire.Response{Status: wire.StatusOK, Pairs: []wire.Pair{
		metric("keys", int64(s.store.Len())),
		metric("splits", st.Splits),
		metric("layer_creations", st.LayerCreations),
		metric("layer_collapses", st.LayerCollapses),
		metric("node_deletes", st.NodeDeletes),
		metric("root_retries", st.RootRetries),
		metric("local_retries", st.LocalRetries),
		metric("slot_reuses", st.SlotReuses),
	}}
}

// Close stops accepting, closes all connections and UDP sockets, and waits
// for handlers.
func (s *Server) Close() error {
	s.done.Store(true)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	for _, l := range s.udp {
		l.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
