package kvstore

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Regression tests for the directory-fsync bugs: checkpoint.Write used to
// fsync the checkpoint file but never the directory after the rename, and
// the wal never fsynced the directory after creating a log file. A crash
// could then remember the log reclamation that followed a checkpoint while
// forgetting the checkpoint itself — losing acknowledged writes.

func openTortureStore(t *testing.T, fsys vfs.FS) *Store {
	t.Helper()
	s, err := Open(Config{
		Dir: tortureDir, Workers: 1, FS: fsys, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkpointThenCrash acks one write, checkpoints (which reclaims the log
// that held it), and crashes keeping only the pending remove ops — the
// adversarial but POSIX-legal image where reclamation persisted and
// nothing else did.
func checkpointThenCrash(t *testing.T, mem *vfs.MemFS, fsys vfs.FS) *vfs.MemFS {
	t.Helper()
	s := openTortureStore(t, fsys)
	s.PutSimple(0, []byte("precious"), []byte("acked"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// The flush was synced: the write is acknowledged as durable.
	if _, _, err := s.CheckpointN(1); err != nil {
		t.Fatal(err)
	}
	img := mem.Clone()
	img.Crash(func(op vfs.DirOp) bool { return op.Kind == vfs.DirRemove })
	s.Close()
	return img
}

// TestLostCheckpointWithoutDirSync proves the pre-fix scenario: with
// directory fsyncs elided (vfs.Fault.SkipDirSyncs — exactly what the code
// did before it issued any), the checkpoint rename and the log file
// creation are volatile while the log removal persists, and the
// acknowledged write is gone after recovery.
func TestLostCheckpointWithoutDirSync(t *testing.T) {
	mem := vfs.NewMemFS()
	fault := vfs.NewFault(mem)
	fault.SkipDirSyncs = true
	img := checkpointThenCrash(t, mem, fault)

	r := openTortureStore(t, img)
	defer r.Close()
	if _, ok := r.Get([]byte("precious"), nil); ok {
		t.Fatal("write survived without dir syncs — the lost-checkpoint scenario no longer reproduces, " +
			"so this regression test has lost its teeth")
	}
}

// TestCheckpointSurvivesDirSyncedCrash is the post-fix half: the same
// sequence on a filesystem with working directory fsyncs keeps the
// acknowledged write under every crash image, because the checkpoint
// commit (rename + dir sync) is ordered before log reclamation.
func TestCheckpointSurvivesDirSyncedCrash(t *testing.T) {
	mem := vfs.NewMemFS()
	img := checkpointThenCrash(t, mem, mem)

	r := openTortureStore(t, img)
	defer r.Close()
	if got, ok := r.Get([]byte("precious"), nil); !ok || string(got[0]) != "acked" {
		t.Fatalf("acknowledged write lost across checkpoint+crash: %q, %v", got, ok)
	}
}

// TestCheckpointLeavesNothingPending asserts the commit-point invariant
// directly: once Checkpoint returns, no directory operation is volatile —
// the checkpoint (part and manifest renames) and the new log generation
// were dir-synced at the commit point, and the reclamation removes were
// dir-synced after it, so no crash image can differ from the steady state.
func TestCheckpointLeavesNothingPending(t *testing.T) {
	mem := vfs.NewMemFS()
	s := openTortureStore(t, mem)
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.PutSimple(0, []byte{byte('a' + i)}, []byte("v"))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CheckpointN(1); err != nil {
		t.Fatal(err)
	}
	for _, op := range mem.PendingOps() {
		t.Errorf("volatile %s of %s after checkpoint returned", op.Kind, op.Name)
	}
}

// TestResurrectedOldLogDoesNotDragCutoff: a checkpoint's reclamation
// removes are volatile directory ops until synced, so a crash can bring a
// pre-checkpoint log generation back from the dead. Its stale timestamps
// must not constrain the recovery cutoff — otherwise an idle worker's
// resurrected log (max ts far below the checkpoint) would discard every
// busier log's durable post-checkpoint tail.
func TestResurrectedOldLogDoesNotDragCutoff(t *testing.T) {
	mem := vfs.NewMemFS()
	s, err := Open(Config{
		Dir: tortureDir, Workers: 2, FS: mem, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1, CheckpointParts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.PutSimple(1, []byte("idle-worker-key"), []byte("old")) // worker 1 then goes idle
	for i := 0; i < 5; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("busy%02d", i)), []byte("pre"))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Acked post-checkpoint tail on worker 0 only; worker 1 logs nothing.
	for i := 0; i < 5; i++ {
		s.PutSimple(0, []byte(fmt.Sprintf("busy%02d", i)), []byte("post"))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate the resurrection: recreate worker 1's generation-1 log
	// holding only its stale pre-checkpoint record, exactly as a crash
	// image that forgot the reclamation remove would contain.
	old, err := wal.OpenSetFS(mem, tortureDir, 2, 1, true, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	old.Writer(1).AppendPut(1, 0, []byte("idle-worker-key"), []value.ColPut{{Col: 0, Data: []byte("old")}})
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	crash(t, s)

	rec, err := Open(Config{Dir: tortureDir, Workers: 2, FS: mem, MaintainEvery: -1, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	for i := 0; i < 5; i++ {
		got, ok := rec.Get([]byte(fmt.Sprintf("busy%02d", i)), nil)
		if !ok || string(got[0]) != "post" {
			t.Fatalf("busy%02d = %q,%v; resurrected idle log dragged the cutoff below the acked tail", i, got, ok)
		}
	}
	if got, ok := rec.Get([]byte("idle-worker-key"), nil); !ok || string(got[0]) != "old" {
		t.Fatalf("idle-worker-key = %q,%v", got, ok)
	}
}

// TestAckedFlushSurvivesConservativeCrash: the wal half of the fix. A
// synced flush into a freshly created log file must survive the most
// conservative crash image (no pending directory op persisted) — which it
// only does because log creation dir-syncs before anything is logged.
func TestAckedFlushSurvivesConservativeCrash(t *testing.T) {
	mem := vfs.NewMemFS()
	s := openTortureStore(t, mem)
	s.PutSimple(0, []byte("k"), []byte("v"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	img := mem.Clone()
	img.Crash(nil)
	s.Close()

	r := openTortureStore(t, img)
	defer r.Close()
	if _, ok := r.Get([]byte("k"), nil); !ok {
		t.Fatal("synced flush lost: log file creation was not made durable")
	}
}
