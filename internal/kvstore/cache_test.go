package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/workload"
)

func nowNanos() uint64 { return uint64(time.Now().UnixNano()) }

// TestTTLLazyExpiry pins the read-side TTL semantics: a lapsed value reads
// as absent on every path (Get, GetInto, GetValue, GetBatch, GetRange)
// before any sweep runs, a TTL-free put clears the expiry, and Touch
// extends and declines correctly.
func TestTTLLazyExpiry(t *testing.T) {
	s, err := Open(Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.Session(0)
	defer sess.Close()

	past := nowNanos() - uint64(time.Second)
	future := nowNanos() + uint64(time.Hour)
	sess.PutSimpleTTL([]byte("dead"), []byte("x"), past)
	sess.PutSimpleTTL([]byte("live"), []byte("y"), future)
	sess.PutSimple([]byte("plain"), []byte("z"))

	if _, ok := sess.Get([]byte("dead"), nil); ok {
		t.Fatal("expired key visible via Get")
	}
	if _, ok := s.GetInto([]byte("dead"), nil, nil); ok {
		t.Fatal("expired key visible via GetInto")
	}
	if _, ok := sess.GetValue([]byte("dead")); ok {
		t.Fatal("expired key visible via GetValue")
	}
	if _, found := sess.GetBatchInto([][]byte{[]byte("dead"), []byte("live")}); found[0] || !found[1] {
		t.Fatalf("batched lookup: dead=%v live=%v, want false/true", found[0], found[1])
	}
	for _, p := range s.GetRange(nil, 10, nil) {
		if string(p.Key) == "dead" {
			t.Fatal("expired key visible via GetRange")
		}
	}
	var sc RangeScratch
	for _, p := range s.GetRangeInto(nil, 10, nil, &sc) {
		if string(p.Key) == "dead" {
			t.Fatal("expired key visible via GetRangeInto")
		}
	}
	if _, ok := sess.Get([]byte("live"), nil); !ok {
		t.Fatal("unexpired TTL key missing")
	}

	// A plain put over a TTL key clears the expiry.
	sess.PutSimpleTTL([]byte("cleared"), []byte("a"), future)
	sess.PutSimple([]byte("cleared"), []byte("b"))
	if v, ok := s.Tree().Get([]byte("cleared")); !ok || v.ExpiresAt() != 0 {
		t.Fatalf("plain put kept expiry %d", v.ExpiresAt())
	}

	// Touch: extends live keys, declines absent and expired ones.
	if _, ok := sess.Touch([]byte("live"), nowNanos()+2*uint64(time.Hour)); !ok {
		t.Fatal("touch of live key declined")
	}
	if v, ok := s.Tree().Get([]byte("live")); !ok || string(v.Bytes()) != "y" {
		t.Fatal("touch changed the value's columns")
	}
	if _, ok := sess.Touch([]byte("dead"), future); ok {
		t.Fatal("touch revived an expired key")
	}
	if _, ok := sess.Touch([]byte("absent"), future); ok {
		t.Fatal("touch created a key")
	}

	// Removing an expired key reports "did not exist", like every read path
	// (the physical cleanup still happens).
	sess.PutSimpleTTL([]byte("dead-rm"), []byte("x"), past)
	if sess.Remove([]byte("dead-rm")) {
		t.Fatal("remove of an expired key reported it existed")
	}
	if _, ok := s.Tree().Get([]byte("dead-rm")); ok {
		t.Fatal("remove of an expired key left it in the tree")
	}
	if !sess.Remove([]byte("plain")) {
		t.Fatal("remove of a live key reported absent")
	}
}

// TestTTLSweepRemoves verifies the background sweep physically removes
// lapsed keys (clean drop: Len shrinks, expirations counted) while leaving
// live and TTL-free keys alone, across multiple incremental batches.
func TestTTLSweepRemoves(t *testing.T) {
	s, err := Open(Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.Session(0)
	defer sess.Close()
	past := nowNanos() - 1
	future := nowNanos() + uint64(time.Hour)
	const n = sweepBatchKeys + 100 // force more than one sweep batch
	for i := 0; i < n; i++ {
		sess.PutSimpleTTL([]byte(fmt.Sprintf("dead-%05d", i)), []byte("x"), past)
	}
	sess.PutSimpleTTL([]byte("live"), []byte("y"), future)
	sess.PutSimple([]byte("plain"), []byte("z"))

	// One maintenance pass suffices: the adaptive sweep chains batches while
	// they come back dense with expired keys (catch-up under backlog).
	s.cacheMaintain()
	if got := s.Len(); got != 2 {
		t.Fatalf("after one adaptive sweep pass Len = %d, want 2 (live + plain)", got)
	}
	if exp := s.CacheStats().Expirations; exp != n {
		t.Fatalf("expirations = %d, want %d", exp, n)
	}
	if _, ok := sess.Get([]byte("live"), nil); !ok {
		t.Fatal("sweep removed a live key")
	}
	if s.CacheStats().BytesLive <= 0 {
		t.Fatal("accounting went non-positive with live keys present")
	}
}

// TestTTLSurvivesRecovery verifies the expiry rides the WAL (OpPutTTL) and
// checkpoints: after a restart a live TTL key keeps its deadline, an
// already-expired key stays invisible, and a checkpoint written after the
// expiry omits the dead key entirely.
func TestTTLSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	future := nowNanos() + uint64(time.Hour)
	past := nowNanos() - 1

	s, err := Open(Config{Dir: dir, Workers: 2, MaintainEvery: -1, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	sess := s.Session(1)
	sess.PutSimpleTTL([]byte("live"), []byte("y"), future)
	sess.PutSimpleTTL([]byte("dead"), []byte("x"), past)
	sess.PutSimple([]byte("plain"), []byte("z"))
	if _, ok := sess.Touch([]byte("plain"), future); !ok {
		t.Fatal("touch failed")
	}
	sess.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Log-only restart: everything replays, expiries intact.
	r, err := Open(Config{Dir: dir, Workers: 2, MaintainEvery: -1, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Tree().Get([]byte("live")); !ok || v.ExpiresAt() != future {
		t.Fatalf("live key lost its expiry across restart: %v", v)
	}
	if v, ok := r.Tree().Get([]byte("plain")); !ok || v.ExpiresAt() != future {
		t.Fatalf("touched key lost its expiry across restart: %v", v)
	}
	if _, ok := r.Get([]byte("dead"), nil); ok {
		t.Fatal("expired key visible after restart")
	}
	// Checkpoint skips the expired key; restart from it has no trace left.
	if _, _, err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(Config{Dir: dir, Workers: 2, MaintainEvery: -1, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.Tree().Get([]byte("dead")); ok {
		t.Fatal("checkpoint carried an expired key")
	}
	if v, ok := r2.Tree().Get([]byte("live")); !ok || v.ExpiresAt() != future {
		t.Fatalf("checkpointed TTL key lost its expiry: %v", v)
	}
}

// TestEvictionVersionMonotonic pins the clean-drop ordering rule: a key
// re-inserted after an eviction must draw a version above the evicted
// value's, or log replay would apply the re-insert below the old put's
// version guard and lose it.
func TestEvictionVersionMonotonic(t *testing.T) {
	s, err := Open(Config{MaintainEvery: -1, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v1 := s.PutSimple(0, []byte("k"), []byte("a"))
	if !s.evictKey([]byte("k")) {
		t.Fatal("evictKey failed on a present key")
	}
	if _, ok := s.Get([]byte("k"), nil); ok {
		t.Fatal("evicted key still visible")
	}
	v2 := s.PutSimple(0, []byte("k"), []byte("b"))
	if v2 <= v1 {
		t.Fatalf("post-eviction version %d not above evicted version %d", v2, v1)
	}
	if got := s.CacheStats().BytesLive; got <= 0 {
		t.Fatalf("accounting after evict+reinsert = %d, want > 0", got)
	}
}

// TestCacheBoundZipfian is the system half of the acceptance criterion: a
// store bounded at 64 MiB sustains an over-capacity zipfian TTL workload
// with bytes_live never exceeding the bound by more than one eviction
// batch, while the policy records evictions and ghost hits.
func TestCacheBoundZipfian(t *testing.T) {
	const (
		maxBytes = 64 << 20
		valSize  = 4096
		nkeys    = 60_000 // ~234 MiB footprint, 3.7x over budget
		workers  = 2
		opsPer   = 160_000
	)
	s, err := Open(Config{Workers: workers, MaintainEvery: time.Millisecond, MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// One eviction batch is the enforce pass's low-watermark stride plus
	// whatever lands between an overshoot probe and the wakeup; allow the
	// batch (maxBytes/32) plus a probe window of worker puts.
	slack := int64(maxBytes/32 + workers*64*valSize)
	var maxSeen int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.Session(w)
			defer sess.Close()
			zipf := workload.ZipfKeys(int64(1000+w), nkeys)
			val := make([]byte, valSize)
			future := nowNanos() + uint64(time.Hour)
			for i := 0; i < opsPer; i++ {
				k := zipf.Next()
				if i%4 == 0 {
					sess.PutSimpleTTL(k, val, future)
				} else if _, ok := sess.Get(k, nil); !ok {
					sess.PutSimple(k, val)
				}
				if i%512 == 0 {
					live := s.CacheStats().BytesLive
					mu.Lock()
					if live > maxSeen {
						maxSeen = live
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.CacheStats()
	t.Logf("bytes_live=%d max_seen=%d bound=%d slack=%d evictions=%d ghost_hits=%d expirations=%d admit_drops=%d keys=%d",
		st.BytesLive, maxSeen, int64(maxBytes), slack, st.Evictions, st.GhostHits, st.Expirations, st.AdmitDrops, s.Len())
	if maxSeen > maxBytes+slack {
		t.Fatalf("bytes_live peaked at %d, more than one eviction batch (%d) over the %d bound", maxSeen, slack, int64(maxBytes))
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under a 3.7x over-capacity workload")
	}
	if st.GhostHits == 0 {
		t.Fatal("no ghost hits under a zipfian workload")
	}
	// The accounted total matches a direct walk of the tree.
	var walked int64
	s.Tree().Scan(nil, func(k []byte, v *value.Value) bool {
		walked += int64(v.Size())
		return true
	})
	if walked != st.BytesLive {
		t.Fatalf("accounting drift: walked %d, accounted %d", walked, st.BytesLive)
	}
}

// TestCacheRecoveryReenforcesBound builds an over-budget store (eviction
// disabled by MaintainEvery < 0 so nothing runs), restarts it in cache
// mode, and requires the bound to hold before Open returns — replay first,
// then re-enforce.
func TestCacheRecoveryReenforcesBound(t *testing.T) {
	dir := t.TempDir()
	const maxBytes = 1 << 20
	s, err := Open(Config{Dir: dir, Workers: 1, MaintainEvery: -1, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 4096)
	for i := 0; i < 1024; i++ { // ~4 MiB, 4x over the reopen budget
		s.PutSimple(0, []byte(fmt.Sprintf("key-%05d", i)), val)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Config{Dir: dir, Workers: 1, MaintainEvery: -1, FlushInterval: time.Hour, MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.CacheStats()
	if st.BytesLive > maxBytes {
		t.Fatalf("bound not re-enforced after recovery: bytes_live %d > %d", st.BytesLive, maxBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("recovery enforcement recorded no evictions")
	}
	if r.Len() == 0 {
		t.Fatal("recovery evicted everything")
	}
	// Survivors must read back intact.
	found := 0
	r.Tree().Scan(nil, func(k []byte, v *value.Value) bool {
		if len(v.Bytes()) != 4096 {
			t.Fatalf("survivor %q has wrong value length %d", k, len(v.Bytes()))
		}
		found++
		return true
	})
	if found != r.Len() {
		t.Fatalf("scan found %d keys, Len says %d", found, r.Len())
	}
}

// TestCacheModeAllocs pins the hot paths with accounting, admission, and
// access recording all enabled: a put still costs at most one allocation
// (the packed value; ring arenas are amortized), a warmed GetInto stays at
// zero.
func TestCacheModeAllocs(t *testing.T) {
	s, err := Open(Config{MaintainEvery: -1, MaxBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.Session(0)
	defer sess.Close()
	key := []byte("cache-alloc-key")
	data := []byte("cache-column-data")
	// Warm both admission-ring swap buffers past the measured append volume
	// (the ring double-buffers: each drain swaps in the previously drained
	// slice, so two warmed rounds leave both sides with capacity).
	for round := 0; round < 2; round++ {
		for i := 0; i < 1000; i++ {
			sess.PutSimple(key, data)
		}
		s.cacheMaintain()
	}

	allocs := testing.AllocsPerRun(200, func() {
		sess.PutSimple(key, data)
	})
	if allocs > 1 {
		t.Fatalf("cache-mode PutSimple allocates %.1f times per run, want <= 1", allocs)
	}

	dst := make([][]byte, 0, 4)
	allocs = testing.AllocsPerRun(200, func() {
		var ok bool
		dst, ok = sess.GetInto(key, nil, dst[:0])
		if !ok {
			t.Fatal("key missing")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-mode GetInto allocates %.1f times per run, want 0", allocs)
	}

	// TTL put: same discipline, one packed value.
	s.cacheMaintain() // fresh swap buffer for the next measured block
	future := nowNanos() + uint64(time.Hour)
	allocs = testing.AllocsPerRun(200, func() {
		sess.PutSimpleTTL(key, data, future)
	})
	if allocs > 1 {
		t.Fatalf("cache-mode PutSimpleTTL allocates %.1f times per run, want <= 1", allocs)
	}
}
