// Package checkpoint implements Masstree's checkpoint facility (§5):
// periodic dumps of all keys and values that speed recovery and allow log
// space to be reclaimed.
//
// Checkpoints are fuzzy: they run in parallel with request processing by
// scanning the tree's immutable value objects, and they record the timestamp
// at which they began. Recovery loads the latest valid checkpoint and then
// replays logs; because every value carries a version (== log timestamp) and
// replay applies each key's updates in increasing version order with a
// version guard, overlap between checkpoint contents and retained log
// records is harmless.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/value"
)

var (
	fileMagic = []byte("MTCKPT1\n")
	fileEnd   = []byte("MTCKEND\n")

	// ErrNone reports that no valid checkpoint exists.
	ErrNone = errors.New("checkpoint: none found")
	// ErrCorrupt reports an invalid or truncated checkpoint file.
	ErrCorrupt = errors.New("checkpoint: corrupt")
)

var nameRE = regexp.MustCompile(`^ckpt-(\d{20})\.ckpt$`)

// FileName names the checkpoint that began at timestamp ts.
func FileName(ts uint64) string { return fmt.Sprintf("ckpt-%020d.ckpt", ts) }

// Entry is one key-value pair in a checkpoint.
type Entry struct {
	Key   []byte
	Value *value.Value
}

// Write streams a checkpoint that began at timestamp startTS into dir,
// reading entries from next until it returns false. The file is written to a
// temporary name and atomically renamed, so a crash mid-checkpoint leaves no
// partially-visible checkpoint.
func Write(dir string, startTS uint64, next func() (Entry, bool)) (path string, n int, err error) {
	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return "", 0, err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	crc := crc32.NewIEEE()
	w := bufio.NewWriterSize(io.MultiWriter(tmp, crc), 1<<20)
	if _, err = w.Write(fileMagic); err != nil {
		return "", 0, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], startTS)
	if _, err = w.Write(hdr[:]); err != nil {
		return "", 0, err
	}
	count := 0
	for {
		e, ok := next()
		if !ok {
			break
		}
		if err = writeEntry(w, e); err != nil {
			return "", 0, err
		}
		count++
	}
	// Footer: count, crc of everything before the footer, end magic.
	var foot [12]byte
	binary.LittleEndian.PutUint64(foot[:8], uint64(count))
	if _, err = w.Write(foot[:8]); err != nil {
		return "", 0, err
	}
	if err = w.Flush(); err != nil {
		return "", 0, err
	}
	sum := crc.Sum32()
	binary.LittleEndian.PutUint32(foot[8:], sum)
	if _, err = tmp.Write(foot[8:]); err != nil {
		return "", 0, err
	}
	if _, err = tmp.Write(fileEnd); err != nil {
		return "", 0, err
	}
	if err = tmp.Sync(); err != nil {
		return "", 0, err
	}
	if err = tmp.Close(); err != nil {
		return "", 0, err
	}
	final := filepath.Join(dir, FileName(startTS))
	if err = os.Rename(tmp.Name(), final); err != nil {
		return "", 0, err
	}
	return final, count, nil
}

func writeEntry(w *bufio.Writer, e Entry) error {
	var buf [10]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(e.Key)))
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	if _, err := w.Write(e.Key); err != nil {
		return err
	}
	var vh [10]byte
	binary.LittleEndian.PutUint64(vh[:8], e.Value.Version())
	binary.LittleEndian.PutUint16(vh[8:], uint16(e.Value.NumCols()))
	if _, err := w.Write(vh[:]); err != nil {
		return err
	}
	for i := 0; i < e.Value.NumCols(); i++ {
		col := e.Value.Col(i)
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(col)))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
		if _, err := w.Write(col); err != nil {
			return err
		}
	}
	return nil
}

// Info describes one on-disk checkpoint.
type Info struct {
	Path    string
	StartTS uint64
}

// List returns the checkpoints in dir, oldest first.
func List(dir string) ([]Info, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Info
	for _, e := range ents {
		m := nameRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		ts, _ := strconv.ParseUint(m[1], 10, 64)
		out = append(out, Info{Path: filepath.Join(dir, e.Name()), StartTS: ts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartTS < out[j].StartTS })
	return out, nil
}

// LoadLatest loads the newest valid checkpoint in dir, streaming entries to
// apply. It returns the checkpoint's start timestamp, or ErrNone if no valid
// checkpoint exists. Invalid (torn) checkpoints are skipped in favor of
// older valid ones.
func LoadLatest(dir string, apply func(Entry)) (startTS uint64, err error) {
	infos, err := List(dir)
	if err != nil {
		return 0, err
	}
	for i := len(infos) - 1; i >= 0; i-- {
		ts, loadErr := Load(infos[i].Path, apply)
		if loadErr == nil {
			return ts, nil
		}
		if !errors.Is(loadErr, ErrCorrupt) {
			return 0, loadErr
		}
	}
	return 0, ErrNone
}

// Load reads one checkpoint file, validating its footer before applying any
// entries (a checkpoint is all-or-nothing).
func Load(path string, apply func(Entry)) (startTS uint64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(b) < len(fileMagic)+8+8+4+len(fileEnd) {
		return 0, fmt.Errorf("%w: short file", ErrCorrupt)
	}
	if string(b[:len(fileMagic)]) != string(fileMagic) {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if string(b[len(b)-len(fileEnd):]) != string(fileEnd) {
		return 0, fmt.Errorf("%w: missing end marker", ErrCorrupt)
	}
	crcOff := len(b) - len(fileEnd) - 4
	wantCRC := binary.LittleEndian.Uint32(b[crcOff:])
	if crc32.ChecksumIEEE(b[:crcOff]) != wantCRC {
		return 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	body := b[len(fileMagic):crcOff]
	if len(body) < 16 {
		return 0, fmt.Errorf("%w: short body", ErrCorrupt)
	}
	startTS = binary.LittleEndian.Uint64(body[:8])
	count := binary.LittleEndian.Uint64(body[len(body)-8:])
	body = body[8 : len(body)-8]
	for i := uint64(0); i < count; i++ {
		var e Entry
		var n int
		e, n, err = parseEntry(body)
		if err != nil {
			return 0, err
		}
		apply(e)
		body = body[n:]
	}
	if len(body) != 0 {
		return 0, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return startTS, nil
}

func parseEntry(b []byte) (Entry, int, error) {
	if len(b) < 4 {
		return Entry{}, 0, fmt.Errorf("%w: short entry", ErrCorrupt)
	}
	klen := int(binary.LittleEndian.Uint32(b))
	p := 4
	if len(b) < p+klen+10 {
		return Entry{}, 0, fmt.Errorf("%w: short entry", ErrCorrupt)
	}
	key := append([]byte(nil), b[p:p+klen]...)
	p += klen
	version := binary.LittleEndian.Uint64(b[p:])
	ncols := int(binary.LittleEndian.Uint16(b[p+8:]))
	p += 10
	cols := make([][]byte, ncols)
	for i := 0; i < ncols; i++ {
		if len(b) < p+4 {
			return Entry{}, 0, fmt.Errorf("%w: short column", ErrCorrupt)
		}
		clen := int(binary.LittleEndian.Uint32(b[p:]))
		p += 4
		if len(b) < p+clen {
			return Entry{}, 0, fmt.Errorf("%w: short column data", ErrCorrupt)
		}
		cols[i] = append([]byte(nil), b[p:p+clen]...)
		p += clen
	}
	return Entry{Key: key, Value: value.NewAt(version, cols...)}, p, nil
}

// Drop removes all checkpoints older than the one at keepTS.
func Drop(dir string, keepTS uint64) error {
	infos, err := List(dir)
	if err != nil {
		return err
	}
	for _, in := range infos {
		if in.StartTS < keepTS {
			if err := os.Remove(in.Path); err != nil {
				return err
			}
		}
	}
	return nil
}
