package core

import "encoding/binary"

// Key slices (§4.2). Each trie layer is indexed by an 8-byte slice of the
// key, stored as a big-endian uint64 so that native integer less-than gives
// the same order as lexicographic string comparison ("+IntCmp" in Figure 8).
// Short slices are padded with zero bytes; because NUL is a valid key byte,
// a per-key length distinguishes e.g. "ABCDEFG" from "ABCDEFG\x00".
//
// Within a border node a key is (slice, keylen[, suffix]):
//
//	keylen 0..8       — the remaining key is exactly keylen bytes, all in
//	                    the slice; no suffix.
//	keylen klSuffix   — the remaining key is longer than 8 bytes: slice
//	                    holds the first 8, suffix the rest.
//	keylen klLayer    — lv points to a deeper trie layer holding all keys
//	                    that continue past this slice.
//	keylen klUnstable — the slot is mid-transition from suffix to layer;
//	                    readers must retry (§4.6.3).
//
// For ordering, klSuffix/klLayer/klUnstable all occupy the single
// "longer than 8 bytes" position after keylen 8: the invariants guarantee at
// most one such key per slice (a second would force a deeper layer).
const (
	klSuffix   uint32 = 9
	klLayer    uint32 = 10
	klUnstable uint32 = 11
)

// keySlice returns the leading 8-byte slice of k as a big-endian integer.
func keySlice(k []byte) uint64 {
	if len(k) >= 8 {
		return binary.BigEndian.Uint64(k)
	}
	var buf [8]byte
	copy(buf[:], k)
	return binary.BigEndian.Uint64(buf[:])
}

// keyOrd returns the ordering position of the remaining key k within its
// slice group: its length if <= 8, else 9 (the suffix/layer class).
func keyOrd(k []byte) int {
	if len(k) <= 8 {
		return len(k)
	}
	return 9
}

// ordOf returns the ordering position of a stored keylen value.
func ordOf(kl uint32) int {
	if kl <= 8 {
		return int(kl)
	}
	return 9
}

// sliceBytes materializes a slice integer back into at most n bytes (n <= 8).
func sliceBytes(s uint64, n int) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], s)
	b := make([]byte, n)
	copy(b, buf[:n])
	return b
}

// appendSliceBytes appends the first n bytes of slice s to dst.
func appendSliceBytes(dst []byte, s uint64, n int) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], s)
	return append(dst, buf[:n]...)
}

// cmpKey compares (s1, o1) to (s2, o2) in tree order: by slice, then by
// ordering position within the slice group.
func cmpKey(s1 uint64, o1 int, s2 uint64, o2 int) int {
	switch {
	case s1 < s2:
		return -1
	case s1 > s2:
		return 1
	case o1 < o2:
		return -1
	case o1 > o2:
		return 1
	}
	return 0
}
