package client

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"time"

	"repro/internal/wire"
)

// UDPClient speaks the batch protocol over UDP to one of the server's
// per-core ports (§5). Datagrams carry one framed batch each; requests that
// receive no response within the timeout return an error (UDP is lossy by
// design — the paper uses it for cheap short connections, not reliability).
type UDPClient struct {
	conn    *net.UDPConn
	timeout time.Duration
	buf     []byte
}

// DialUDP connects (in the UDP sense) to a server port.
func DialUDP(addr string, timeout time.Duration) (*UDPClient, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	return &UDPClient{conn: conn, timeout: timeout, buf: make([]byte, 64*1024)}, nil
}

// Close closes the socket.
func (c *UDPClient) Close() error { return c.conn.Close() }

// Do executes one batch in one datagram round trip.
func (c *UDPClient) Do(reqs []wire.Request) ([]wire.Response, error) {
	var out bytes.Buffer
	w := bufio.NewWriter(&out)
	if err := wire.WriteRequests(w, reqs); err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(out.Bytes()); err != nil {
		return nil, err
	}
	if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	n, err := c.conn.Read(c.buf)
	if err != nil {
		return nil, fmt.Errorf("client: udp response: %w", err)
	}
	resps, err := wire.ReadResponses(bufio.NewReader(bytes.NewReader(c.buf[:n])))
	if err != nil {
		return nil, err
	}
	if len(resps) != len(reqs) {
		return nil, fmt.Errorf("client: %d responses for %d requests", len(resps), len(reqs))
	}
	return resps, nil
}
