package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/value"
)

func TestGetBatch(t *testing.T) {
	s := openMem(t)
	for i := 0; i < 500; i++ {
		s.Put(0, []byte(fmt.Sprintf("k%03d", i)), []value.ColPut{
			{Col: 0, Data: []byte(fmt.Sprintf("a%d", i))},
			{Col: 1, Data: []byte(fmt.Sprintf("b%d", i))},
		})
	}
	keys := [][]byte{
		[]byte("k010"), []byte("missing"), []byte("k499"), []byte("k000"), []byte("k010"),
	}
	out, found := s.GetBatch(keys, []int{1})
	wantFound := []bool{true, false, true, true, true}
	wantCol := []string{"b10", "", "b499", "b0", "b10"}
	for i := range keys {
		if found[i] != wantFound[i] {
			t.Fatalf("key %q found=%v want %v", keys[i], found[i], wantFound[i])
		}
		if found[i] && !bytes.Equal(out[i][0], []byte(wantCol[i])) {
			t.Fatalf("key %q col = %q want %q", keys[i], out[i][0], wantCol[i])
		}
	}
}

func TestGetBatchAllColumns(t *testing.T) {
	s := openMem(t)
	s.Put(0, []byte("k"), []value.ColPut{{Col: 0, Data: []byte("x")}, {Col: 2, Data: []byte("z")}})
	out, found := s.GetBatch([][]byte{[]byte("k")}, nil)
	if !found[0] || len(out[0]) != 3 {
		t.Fatalf("batch all-cols: %v %v", out, found)
	}
	if string(out[0][0]) != "x" || out[0][1] != nil || string(out[0][2]) != "z" {
		t.Fatalf("columns wrong: %q", out[0])
	}
}
