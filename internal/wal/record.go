// Package wal implements Masstree's logging and log recovery (§5).
//
// Each server query worker owns its own log file and in-memory log buffer.
// A put appends to the worker's buffer and responds to the client without
// forcing the buffer to storage; a background logging goroutine writes out
// batches, forcing logs to storage at least every FlushInterval (200 ms in
// the paper) for safety. Different logs may live on different devices for
// higher total throughput.
//
// Value version numbers and log record timestamps aid recovery. This
// implementation draws both from per-worker loosely synchronized clocks
// (§5.1): a worker's clock lives on its own cache line, is assigned under
// the owning border node's lock, and is lifted past the replaced value's
// version (and, for inserts, past every prior remove's timestamp), so each
// key's log records are strictly ordered by timestamp even across
// remove/re-insert cycles and across workers. Timestamps in one log are not
// globally ordered against other logs, and concurrent appenders sharing a
// log may interleave slightly out of order, so recovery computes the cutoff
// t = min over logs of that log's maximum durable timestamp, drops records
// beyond t, and replays each key's surviving updates in increasing version
// order.
//
// The cutoff alone cannot defend against a log vanishing wholesale: a
// missing log contributes no constraint to the minimum, so a partial-column
// put logged elsewhere could be merged onto a base that never saw the
// vanished log's delta. Format v2 (MTLOG2) therefore chains every
// OpPut/OpPutTTL record to the version of the value it was applied over
// (Record.Prev). Prev == 0 marks a chain anchor — an insert, or a
// column-complete record carrying every column of the value it published —
// which replays as a replacement; any other record is applied only when its
// prev link matches the replayed state, so a vanished predecessor is
// detected (the key rolls back to its last anchored prefix) instead of
// silently mis-merged. The companion logset file records which log files
// recovery should expect, distinguishing "this worker never logged" from
// "this worker's log vanished".
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/value"
)

// Op identifies a logged operation.
type Op uint8

const (
	// OpPut logs a (possibly partial, multi-column) put.
	OpPut Op = 1
	// OpRemove logs a key removal.
	OpRemove Op = 2
	// OpMark is a timestamp heartbeat carrying no data. A clean shutdown
	// writes one to every log at the store's current clock so the recovery
	// cutoff t = min over logs of the last timestamp does not discard the
	// durable tail of logs that happened to receive more traffic. After a
	// crash, logs without a trailing mark make the cutoff conservative,
	// exactly as the paper intends: an update beyond t may causally depend
	// on an update some other log never made durable.
	OpMark Op = 3
	// OpPutTTL is OpPut with an expiry timestamp (unix nanoseconds) in the
	// payload, so replay rebuilds the value with its TTL intact. A Touch is
	// logged as a column-complete OpPutTTL (every column of the republished
	// value), so the record stands alone even if the log holding the key's
	// original put is lost wholesale.
	OpPutTTL Op = 4
	// OpInsert is a put that executed against an absent (or lazily-expired)
	// base: the resulting value was built from the record's columns alone,
	// so replay applies it as a REPLACEMENT, not a merge. This is what
	// keeps cache mode's clean drops sound: evictions and expiry sweeps
	// write no record, so the records of a dropped value may survive in the
	// log — and the first write after the drop executes against nil. Were
	// it replayed as a merge (like OpPut), recovery would fold the dropped
	// value's stale columns into the new one, fabricating a mixed state no
	// serial execution produced. The insert record anchors the key's replay
	// chain instead: whatever stale records precede it, the version guard
	// applies them first and the insert then replaces them wholesale,
	// reproducing exactly the value the live store built. (A clean drop
	// with no subsequent write may still replay the dropped key back, which
	// cache semantics permit; the store re-expires or re-evicts it.)
	OpInsert Op = 5
	// OpInsertTTL is OpInsert carrying an expiry, the insert counterpart of
	// OpPutTTL.
	OpInsertTTL Op = 6
)

// IsInsert reports whether op replays as a replacement (see OpInsert).
func (op Op) IsInsert() bool { return op == OpInsert || op == OpInsertTTL }

// HasExpiry reports whether op's payload carries an expiry timestamp.
func (op Op) HasExpiry() bool { return op == OpPutTTL || op == OpInsertTTL }

// HasPrev reports whether op's v2 payload carries a prev-version chain link.
// Only the merge ops need one: inserts replace their base by definition, so
// they are chain anchors without spending the eight bytes.
func (op Op) HasPrev() bool { return op == OpPut || op == OpPutTTL }

// Record is one logged update.
type Record struct {
	TS  uint64 // timestamp == value version (global monotonic counter)
	Op  Op
	Key []byte
	// Prev is the version of the value this put was applied over — the
	// chain link that lets replay prove the record's base was rebuilt
	// before merging the record's (possibly partial) columns onto it.
	// Prev == 0 marks a chain anchor: the record was built on no base
	// (inserts) or carries every column of the value it published
	// (handoff anchors, Touch), so replay applies it as a replacement.
	// Meaningful only for OpPut/OpPutTTL in v2 logs; see Unlinked.
	Prev uint64
	// Unlinked marks a record parsed from a v1 (MTLOG1) log, which carried
	// no prev link. Replay merges unlinked records unvalidated, exactly as
	// the v1 reader did — they are neither anchors nor checkable links.
	Unlinked bool
	// Worker is the id of the log file the record was recovered from. It is
	// not serialized (the filename carries it); RecoverDirAboveFS fills it
	// so replay can rebuild each value's worker tag, keeping cross-log
	// handoff detection exact across a restart.
	Worker int
	Puts   []value.ColPut // column modifications; nil for OpRemove
	Expiry uint64         // unix nanoseconds, OpPutTTL only; 0 = never
}

// fileMagic begins every log file written by this version (format v2:
// OpPut/OpPutTTL payloads carry a prev-version chain link). fileMagicV1
// begins logs written before the chain link existed; they are still read
// (their records parse as Unlinked) but never written.
var (
	fileMagic   = []byte("MTLOG2\n")
	fileMagicV1 = []byte("MTLOG1\n")
)

var (
	// ErrCorrupt reports a log whose header or a leading record is invalid.
	ErrCorrupt = errors.New("wal: corrupt log")
)

// appendRecord serializes a v2 record onto buf in place — no intermediate
// payload buffer, so a warmed log buffer makes appends allocation-free.
// Layout (little endian):
//
//	crc32(payload) u32 | payloadLen u32 | payload
//	payload: ts u64 | op u8 | [prev u64, OpPut/OpPutTTL only] |
//	         [expiry u64, OpPutTTL/OpInsertTTL only] | keyLen u32 | key |
//	         ncols u16 | { col u16 | dataLen u32 | data }*
//
// The crc and length are backfilled after the payload is written. A torn
// tail write invalidates the crc, so recovery stops cleanly at the last
// complete record (group commit may lose the unforced tail, which the paper
// accepts — those puts were never durable).
func appendRecord(buf []byte, ts, prev uint64, op Op, key []byte, puts []value.ColPut, expiry uint64) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // crc + len, backfilled below
	buf = binary.LittleEndian.AppendUint64(buf, ts)
	buf = append(buf, byte(op))
	if op.HasPrev() {
		buf = binary.LittleEndian.AppendUint64(buf, prev)
	}
	if op.HasExpiry() {
		buf = binary.LittleEndian.AppendUint64(buf, expiry)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(puts)))
	for _, p := range puts {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Col))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Data)))
		buf = append(buf, p.Data...)
	}
	payload := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(buf[start+4:], uint32(len(payload)))
	return buf
}

// parseRecord decodes one record from b, returning the record and the number
// of bytes consumed. A short or corrupt prefix returns n == 0. v1 selects
// the MTLOG1 payload layout (no prev link); records parsed that way come
// back Unlinked.
func parseRecord(b []byte, v1 bool) (Record, int) {
	if len(b) < 8 {
		return Record{}, 0
	}
	crc := binary.LittleEndian.Uint32(b)
	plen := int(binary.LittleEndian.Uint32(b[4:]))
	if plen < 15 || len(b) < 8+plen {
		return Record{}, 0
	}
	payload := b[8 : 8+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, 0
	}
	var r Record
	r.TS = binary.LittleEndian.Uint64(payload)
	r.Op = Op(payload[8])
	p := 9
	if v1 {
		r.Unlinked = true
	} else if r.Op.HasPrev() {
		if p+8 > plen {
			return Record{}, 0
		}
		r.Prev = binary.LittleEndian.Uint64(payload[p:])
		p += 8
	}
	if r.Op.HasExpiry() {
		if p+8 > plen {
			return Record{}, 0
		}
		r.Expiry = binary.LittleEndian.Uint64(payload[p:])
		p += 8
	}
	if p+4 > plen {
		return Record{}, 0
	}
	klen := int(binary.LittleEndian.Uint32(payload[p:]))
	p += 4
	if p+klen+2 > plen {
		return Record{}, 0
	}
	r.Key = append([]byte(nil), payload[p:p+klen]...)
	p += klen
	ncols := int(binary.LittleEndian.Uint16(payload[p:]))
	p += 2
	for i := 0; i < ncols; i++ {
		if p+6 > plen {
			return Record{}, 0
		}
		col := int(binary.LittleEndian.Uint16(payload[p:]))
		dlen := int(binary.LittleEndian.Uint32(payload[p+2:]))
		p += 6
		if p+dlen > plen {
			return Record{}, 0
		}
		data := append([]byte(nil), payload[p:p+dlen]...)
		p += dlen
		r.Puts = append(r.Puts, value.ColPut{Col: col, Data: data})
	}
	if p != plen {
		return Record{}, 0
	}
	return r, 8 + plen
}

// parseLog decodes all complete records from a log file's contents
// (including the file header). Both the current (MTLOG2) and the legacy
// (MTLOG1) formats are read; records from a v1 log come back Unlinked. It
// stops silently at the first torn or corrupt record, which recovery treats
// as the end of the durable log.
//
// A file holding only a (possibly torn) prefix of either header magic
// parses as an empty log: a crash right after log creation can leave the
// directory entry durable with none of the file's bytes — that worker
// durably logged nothing, which must not brick recovery. Bytes that
// contradict both magics still report corruption.
func parseLog(b []byte) ([]Record, error) {
	v1 := false
	switch {
	case len(b) < len(fileMagic):
		if string(b) == string(fileMagic[:len(b)]) || string(b) == string(fileMagicV1[:len(b)]) {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: bad file magic", ErrCorrupt)
	case string(b[:len(fileMagic)]) == string(fileMagic):
	case string(b[:len(fileMagicV1)]) == string(fileMagicV1):
		v1 = true
	default:
		return nil, fmt.Errorf("%w: bad file magic", ErrCorrupt)
	}
	b = b[len(fileMagic):]
	var out []Record
	for len(b) > 0 {
		r, n := parseRecord(b, v1)
		if n == 0 {
			break
		}
		out = append(out, r)
		b = b[n:]
	}
	return out, nil
}
