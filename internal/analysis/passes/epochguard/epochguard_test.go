package epochguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/epochguard"
)

func TestEpochguard(t *testing.T) {
	analysistest.Run(t, epochguard.Analyzer, "a")
}
