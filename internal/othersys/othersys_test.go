package othersys

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/value"
)

func systems(t *testing.T) map[string]Batcher {
	t.Helper()
	return map[string]Batcher{
		"memcached": NewMemcachedlike(4, 1000),
		"redis":     NewRedislike(4, 1000, t.TempDir()),
		"mongo":     NewMongolike(2),
		"volt":      NewVoltlike(4),
	}
}

func fullPut(key []byte, cols ...[]byte) Op {
	puts := make([]value.ColPut, len(cols))
	for i, c := range cols {
		puts[i] = value.ColPut{Col: i, Data: c}
	}
	return Op{Kind: OpPut, Key: key, Puts: puts}
}

func TestPutGetAcrossSystems(t *testing.T) {
	for name, sys := range systems(t) {
		t.Run(name, func(t *testing.T) {
			defer sys.Close()
			var ops []Op
			for i := 0; i < 200; i++ {
				ops = append(ops, fullPut([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("a%d", i)), []byte("b")))
			}
			res := sys.Exec(0, ops)
			for i, r := range res {
				if !r.OK {
					t.Fatalf("put %d failed", i)
				}
			}
			var gets []Op
			for i := 0; i < 200; i++ {
				gets = append(gets, Op{Kind: OpGet, Key: []byte(fmt.Sprintf("k%04d", i)), Cols: []int{0}})
			}
			res = sys.Exec(0, gets)
			for i, r := range res {
				if !r.OK || string(r.Cols[0]) != fmt.Sprintf("a%d", i) {
					t.Fatalf("get %d: %+v", i, r)
				}
			}
			// Missing keys.
			res = sys.Exec(0, []Op{{Kind: OpGet, Key: []byte("missing")}})
			if res[0].OK {
				t.Fatal("phantom key")
			}
		})
	}
}

func TestColumnPutSupport(t *testing.T) {
	for name, sys := range systems(t) {
		t.Run(name, func(t *testing.T) {
			defer sys.Close()
			sys.Exec(0, []Op{fullPut([]byte("k"), []byte("a"), []byte("b"), []byte("c"))})
			// Partial column update.
			res := sys.Exec(0, []Op{{Kind: OpPut, Key: []byte("k"), Puts: []value.ColPut{{Col: 1, Data: []byte("B")}}}})
			if sys.SupportsColumnPut() {
				if !res[0].OK {
					t.Fatal("column put failed on supporting system")
				}
				got := sys.Exec(0, []Op{{Kind: OpGet, Key: []byte("k")}})
				if string(got[0].Cols[0]) != "a" || string(got[0].Cols[1]) != "B" || string(got[0].Cols[2]) != "c" {
					t.Fatalf("columns after partial put: %q", got[0].Cols)
				}
			} else if res[0].OK {
				t.Fatal("column put succeeded on non-supporting system")
			}
		})
	}
}

func TestRangeSupport(t *testing.T) {
	for name, sys := range systems(t) {
		t.Run(name, func(t *testing.T) {
			defer sys.Close()
			var ops []Op
			var want []string
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("r%04d", i)
				want = append(want, k)
				ops = append(ops, fullPut([]byte(k), []byte("v")))
			}
			sys.Exec(0, ops)
			sort.Strings(want)
			res := sys.Exec(0, []Op{{Kind: OpScan, Key: []byte("r0010"), N: 20, Cols: []int{0}}})
			if !sys.SupportsRange() {
				if res[0].OK {
					t.Fatal("range query succeeded on hash store")
				}
				return
			}
			if !res[0].OK {
				t.Fatal("range query failed on tree store")
			}
			if len(res[0].Pairs) != 20 {
				t.Fatalf("got %d pairs", len(res[0].Pairs))
			}
			for i, p := range res[0].Pairs {
				if string(p.Key) != fmt.Sprintf("r%04d", 10+i) {
					t.Fatalf("pair %d = %q", i, p.Key)
				}
				if !bytes.Equal(p.Cols[0], []byte("v")) {
					t.Fatalf("pair %d value mismatch", i)
				}
			}
		})
	}
}

func TestBatchingDeclarations(t *testing.T) {
	// Figure 12's table: batched gets/puts per system.
	m := NewMemcachedlike(1, 10)
	defer m.Close()
	if m.SupportsColumnPut() || m.SupportsRange() {
		t.Fatal("memcachedlike capabilities wrong")
	}
	r := NewRedislike(1, 10, "")
	defer r.Close()
	if !r.SupportsColumnPut() || r.SupportsRange() {
		t.Fatal("redislike capabilities wrong")
	}
	mg := NewMongolike(1)
	defer mg.Close()
	if !mg.SupportsRange() {
		t.Fatal("mongolike capabilities wrong")
	}
	v := NewVoltlike(1)
	defer v.Close()
	if !v.SupportsRange() || !v.SupportsColumnPut() {
		t.Fatal("voltlike capabilities wrong")
	}
}

func TestConcurrentWorkers(t *testing.T) {
	for name, sys := range systems(t) {
		t.Run(name, func(t *testing.T) {
			defer sys.Close()
			done := make(chan bool, 4)
			for w := 0; w < 4; w++ {
				go func(w int) {
					ok := true
					for i := 0; i < 200; i++ {
						k := []byte(fmt.Sprintf("w%d-%03d", w, i))
						res := sys.Exec(w, []Op{fullPut(k, k)})
						ok = ok && res[0].OK
					}
					for i := 0; i < 200; i++ {
						k := []byte(fmt.Sprintf("w%d-%03d", w, i))
						res := sys.Exec(w, []Op{{Kind: OpGet, Key: k}})
						ok = ok && res[0].OK && bytes.Equal(res[0].Cols[0], k)
					}
					done <- ok
				}(w)
			}
			for w := 0; w < 4; w++ {
				if !<-done {
					t.Fatal("concurrent worker failed")
				}
			}
		})
	}
}
