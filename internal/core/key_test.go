package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestKeySliceOrderIsomorphism is the property behind the paper's "+IntCmp"
// trick (§4.2): comparing big-endian slice integers plus the within-slice
// ordinal must equal lexicographic byte comparison, for any binary keys.
func TestKeySliceOrderIsomorphism(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 8 {
			a = a[:8] // the property concerns single-slice keys
		}
		if len(b) > 8 {
			b = b[:8]
		}
		want := bytes.Compare(a, b)
		got := cmpKey(keySlice(a), keyOrd(a), keySlice(b), keyOrd(b))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestKeySliceClassOrder checks that keys longer than 8 bytes (ordinal class
// 9) sort after all keys of the same slice with length <= 8.
func TestKeySliceClassOrder(t *testing.T) {
	short := []byte("ABCDEFGH")  // exactly 8: ordinal 8
	long := []byte("ABCDEFGHxy") // ordinal 9
	if cmpKey(keySlice(short), keyOrd(short), keySlice(long), keyOrd(long)) >= 0 {
		t.Fatal("8-byte key should order before longer key with same slice")
	}
	if keyOrd(long) != 9 {
		t.Fatalf("keyOrd(long) = %d, want 9", keyOrd(long))
	}
}

func TestNulDistinguished(t *testing.T) {
	// "ABCDEFG\x00" (8 bytes) and "ABCDEFG" (7 bytes) share a slice
	// representation; the length must distinguish them (§4.2).
	a := []byte("ABCDEFG\x00")
	b := []byte("ABCDEFG")
	if keySlice(a) != keySlice(b) {
		t.Fatal("padded slices should be equal")
	}
	if keyOrd(a) == keyOrd(b) {
		t.Fatal("ordinals must differ")
	}
	if cmpKey(keySlice(b), keyOrd(b), keySlice(a), keyOrd(a)) >= 0 {
		t.Fatal("shorter key must order first")
	}
}

func TestSliceBytesRoundTrip(t *testing.T) {
	f := func(k []byte) bool {
		if len(k) > 8 {
			k = k[:8]
		}
		got := sliceBytes(keySlice(k), len(k))
		return bytes.Equal(got, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendSliceBytes(t *testing.T) {
	out := appendSliceBytes([]byte("pre"), keySlice([]byte("abc")), 3)
	if !bytes.Equal(out, []byte("preabc")) {
		t.Fatalf("got %q", out)
	}
}

func TestOrdOf(t *testing.T) {
	for kl := uint32(0); kl <= 8; kl++ {
		if ordOf(kl) != int(kl) {
			t.Fatalf("ordOf(%d) = %d", kl, ordOf(kl))
		}
	}
	for _, kl := range []uint32{klSuffix, klLayer, klUnstable} {
		if ordOf(kl) != 9 {
			t.Fatalf("ordOf(%d) = %d, want 9", kl, ordOf(kl))
		}
	}
}
