// Package a is the scratchalias golden fixture: a miniature decode-buffer
// world in the shape of wire.DecodeBuf, exercising the taint sources, every
// sink variant, the sanctioner copy idioms, and the ownership exemptions
// (pointer out-params, frame-local structs, scratch-object lifecycle).
package a

import "bytes"

// DecodeBuf hands out slices into its reusable arena; they are valid only
// until the next decode.
//
//masstree:scratch
type DecodeBuf struct {
	arena []byte
}

func (d *DecodeBuf) Bytes() []byte { return d.arena }

type holder struct {
	b     []byte
	items [][]byte
}

var (
	global    []byte
	globalStr string
	firstByte byte
	freeList  []*DecodeBuf
)

// --- sinks ---

func storeGlobal(d *DecodeBuf) {
	b := d.Bytes()
	global = b // want `stores a slice aliasing a scratch buffer into package variable global`
}

func storeField(d *DecodeBuf) {
	h := &holder{}
	h.b = d.Bytes() // want `stores a slice aliasing a scratch buffer into field b`
}

func storeElem(d *DecodeBuf) {
	h := &holder{items: make([][]byte, 1)}
	h.items[0] = d.Bytes() // want `stores a slice aliasing a scratch buffer into element of field items`
}

func storeMap(d *DecodeBuf, m map[string][]byte) {
	m["k"] = d.Bytes() // want `stores a slice aliasing a scratch buffer into map`
}

func send(d *DecodeBuf, ch chan []byte) {
	ch <- d.Bytes() // want `sends a slice aliasing a scratch buffer on a channel`
}

// Taint survives slicing, so a sub-slice of an alias is still an alias.
func viaSlice(d *DecodeBuf) {
	b := d.Bytes()
	global = b[1:3] // want `stores a slice aliasing a scratch buffer into package variable global`
}

// --- sanitizers: the documented copy idioms ---

func copies(d *DecodeBuf) {
	b := d.Bytes()
	global = append([]byte(nil), b...) // clean: append(dst, src...) copies
	global = bytes.Clone(b)            // clean
	globalStr = string(b)              // clean: conversion copies
	firstByte = b[0]                   // clean: a scalar carries no alias
}

// --- ownership exemptions ---

func intoOut(d *DecodeBuf, out *holder) { // clean: caller-owned storage
	out.b = d.Bytes()
}

func frameLocal(d *DecodeBuf) int { // clean: taints the local, frame-bounded
	var p holder
	p.b = d.Bytes()
	return len(p.b)
}

// Storing the scratch object itself — a free list, a pool — is lifecycle
// management, not a leaked alias.
func recycle(d *DecodeBuf) { // clean
	d.arena = d.arena[:0]
	freeList = append(freeList, d)
}

func handOff(d *DecodeBuf, pool chan *DecodeBuf) { // clean
	d.arena = d.arena[:0]
	pool <- d
}

// --- suppression ---

func allowed(d *DecodeBuf) { // clean: the allow covers the store
	global = d.Bytes() //lint:allow scratchalias fixture exercising the suppression path
}
