package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/kvstore"
	"repro/internal/netfault"
	"repro/internal/server"
	"repro/internal/wire"
)

// Cluster measures the client-side sharding layer along its two interesting
// axes:
//
//   - Batch fan-out: GetBatch throughput through a 3-node cluster (batches
//     split by owner and fanned out concurrently) against the same workload
//     through a single-node cluster (batches forwarded verbatim). On one
//     machine the three "nodes" share cores, so this measures the cost and
//     win of split+merge, not 3x hardware.
//   - Hedged reads under an orphaned flow: one node sits behind a netfault
//     proxy; before each timed read the pool's established connections are
//     frozen (bytes swallowed, nothing closed — the TCP picture of a
//     transient partition). The unhedged client only recovers by burning
//     read timeouts until the pool drains; the hedged client escapes on a
//     fresh dial after HedgeAfter. p50/p99 of time-to-answer tell the story.
func Cluster(sc Scale) *Table {
	sc = sc.withDefaults()
	t := &Table{
		ID:      "cluster",
		Title:   "cluster mode: 3-node batch fan-out and hedged reads under an orphaned flow",
		Headers: []string{"config", "batch_keys_per_s", "vs_single", "read_p50", "read_p99"},
	}

	keys := sc.Keys
	if keys > 20_000 {
		keys = 20_000
	}

	// --- batch fan-out: single node vs 3-node split ---
	single := clusterBatchRate(sc, 1, keys)
	multi := clusterBatchRate(sc, 3, keys)
	t.Rows = append(t.Rows,
		[]string{"1-node cluster (verbatim forward)", fmt.Sprintf("%.0f", single), "1.00", "-", "-"},
		[]string{"3-node cluster (split+fan-out)", fmt.Sprintf("%.0f", multi), ratio(multi, single), "-", "-"},
	)

	// --- hedged vs unhedged time-to-answer with the pool's flows frozen ---
	trials := 8
	if sc.Ops >= 100_000 {
		trials = 20
	}
	unp50, unp99 := hedgeTrials(trials, 0)
	hp50, hp99 := hedgeTrials(trials, 4*time.Millisecond)
	t.Rows = append(t.Rows,
		[]string{"unhedged read, frozen pool", "-", "-", unp50.String(), unp99.String()},
		[]string{"hedged read (HedgeAfter=4ms)", "-", "-", hp50.String(), hp99.String()},
	)

	t.Notes = append(t.Notes,
		"fan-out rows: same total GetBatch workload; the 3-node row pays split+merge and wins back concurrency (all nodes share this machine's cores, so the ratio is protocol overhead vs parallelism, not hardware scaling)",
		"hedge rows: every trial freezes the established flows to one node, then times one read to success; unhedged recovery costs ~2 read timeouts (each pooled connection must fail before a fresh dial), hedged recovery costs ~HedgeAfter + one fresh dial")
	return t
}

// clusterBatchRate seeds keys across n nodes and measures GetBatch keys/sec
// with sc.Batch-sized batches striding the keyspace (so multi-node batches
// genuinely split across owners).
func clusterBatchRate(sc Scale, n, keyCount int) float64 {
	addrs, stop := startClusterNodes(n, sc.Workers)
	defer stop()
	cl, err := cluster.New(cluster.Config{Addrs: addrs, Window: 64})
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	keys := make([][]byte, keyCount)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("ck%07d", i))
	}
	const seedBatch = 512
	for off := 0; off < len(keys); off += seedBatch {
		end := off + seedBatch
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		puts := make([][]wire.ColData, len(chunk))
		for i, k := range chunk {
			puts[i] = []wire.ColData{{Col: 0, Data: k}} // value = key
		}
		if _, err := cl.PutBatch(chunk, puts); err != nil {
			panic(err)
		}
	}

	batch := sc.Batch
	perWorker := sc.Ops / sc.Workers / batch
	if perWorker < 1 {
		perWorker = 1
	}
	rate := measure(sc.Workers, perWorker, func(w, i int) {
		kb := make([][]byte, batch)
		start := (w*perWorker + i) * batch * 7
		for j := range kb {
			kb[j] = keys[(start+j*13)%len(keys)]
		}
		if _, err := cl.GetBatch(kb, nil); err != nil {
			panic(err)
		}
	})
	return rate * float64(batch)
}

// hedgeTrials runs the orphaned-flow scenario `trials` times against a
// fresh cluster each trial (so no frozen connection leaks between trials)
// and returns p50/p99 of time from issuing the read to a successful answer.
func hedgeTrials(trials int, hedgeAfter time.Duration) (p50, p99 time.Duration) {
	addrs, stop := startClusterNodes(3, 2)
	defer stop()
	proxy, err := netfault.New(addrs[0])
	if err != nil {
		panic(err)
	}
	defer proxy.Close()
	addrs[0] = proxy.Addr()

	// One throwaway cluster to find a key owned by the proxied node and seed it.
	scout, err := cluster.New(cluster.Config{Addrs: addrs})
	if err != nil {
		panic(err)
	}
	var victim []byte
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("hedge-%d", i))
		if scout.Owner(k) == 0 {
			victim = k
			break
		}
	}
	if _, err := scout.PutSimple(victim, []byte("v")); err != nil {
		panic(err)
	}
	scout.Close()

	opTimeout := 120 * time.Millisecond
	samples := make([]time.Duration, 0, trials)
	for tr := 0; tr < trials; tr++ {
		cl, err := cluster.New(cluster.Config{
			Addrs:        addrs,
			OpTimeout:    opTimeout,
			DialTimeout:  time.Second,
			NodeFailures: 1 << 20, // latency experiment: the breaker must not hide the slow path
			HedgeAfter:   hedgeAfter,
		})
		if err != nil {
			panic(err)
		}
		// Warm both pool slots so the freeze catches the whole pool.
		for i := 0; i < 2; i++ {
			if _, _, ok, err := cl.Get(victim, nil); err != nil || !ok {
				panic(fmt.Sprintf("warm read: ok=%v err=%v", ok, err))
			}
		}
		proxy.FreezeConns()
		start := time.Now()
		for {
			if _, _, ok, err := cl.Get(victim, nil); err == nil {
				if !ok {
					panic("victim key vanished")
				}
				break
			}
		}
		samples = append(samples, time.Since(start))
		cl.Close()
		proxy.Heal() // reset fault bookkeeping between trials
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p int) time.Duration {
		return samples[(len(samples)-1)*p/100].Round(100 * time.Microsecond)
	}
	return pct(50), pct(99)
}

// startClusterNodes brings up n in-memory stores behind their own servers.
func startClusterNodes(n, workers int) ([]string, func()) {
	stores := make([]*kvstore.Store, n)
	srvs := make([]*server.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		st, err := kvstore.Open(kvstore.Config{Workers: workers, MaintainEvery: -1})
		if err != nil {
			panic(err)
		}
		srv := server.New(st, workers)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			panic(err)
		}
		stores[i], srvs[i], addrs[i] = st, srv, srv.Addr().String()
	}
	return addrs, func() {
		for i := range srvs {
			srvs[i].Close()
			stores[i].Close()
		}
	}
}
