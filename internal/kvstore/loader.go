package kvstore

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/obs"
	"repro/internal/value"
)

// loader is the read-through tier: on a cache miss, Session.GetOrLoad
// funnels into here, where exactly one flight per key runs the backend load
// while every concurrent miss for the same key parks on the flight's result
// (the thundering-herd protection ROADMAP calls for). Loaded values install
// through the ordinary put path — TTL in the packed header, an insert record
// in the WAL — so a loaded key is indistinguishable from a put key from then
// on. Authoritative backend misses are negative-cached briefly so an absent
// hot key cannot herd either.
//
// Degradation: when the backend cannot answer (circuit open, timeout,
// error), a resident value whose TTL lapsed no more than MaxStale ago may be
// served with a stale flag instead of an error; true misses propagate the
// error immediately — by construction a rejected call never queued behind
// the dead backend.
type loader struct {
	s  *Store
	be backend.Backend

	mu      sync.Mutex
	flights map[string]*flight

	negMu sync.Mutex
	neg   map[string]int64 // key -> negative-cache deadline (unix nanos)

	negN atomic.Int64 // len(neg), readable without the lock

	loads         atomic.Uint64 // values installed from backend loads
	loadErrors    atomic.Uint64 // flights that ended in a backend error
	herdCoalesced atomic.Uint64 // misses that joined an existing flight
	staleServed   atomic.Uint64 // stale-if-error responses
	negativeHits  atomic.Uint64 // misses answered by the negative cache

	// lastBreaker is the breaker state the last load observed, so state
	// transitions (trip, heal) become flight-recorder events without
	// touching the backend wrapper's seam.
	lastBreaker atomic.Int32
}

// flight is one in-progress backend load; waiters park on done.
type flight struct {
	done  chan struct{}
	val   *value.Value // nil: authoritative miss (or err != nil)
	stale bool
	err   error
}

// negMax bounds the negative cache; one arbitrary entry is evicted per
// insert beyond it, which suffices to keep it from growing without bound
// under a scan of absent keys.
const negMax = 4096

func newLoader(s *Store, be backend.Backend) *loader {
	return &loader{
		s:       s,
		be:      be,
		flights: make(map[string]*flight),
		neg:     make(map[string]int64),
	}
}

// load resolves a miss for key: join an existing flight or lead a new one.
// Callers hold no epoch — a flight parks for up to the backend's timeout
// budget, and pinning an epoch that long would stall reclamation storewide.
func (l *loader) load(ctx context.Context, ss *Session, key []byte) (*value.Value, bool, error) {
	if l.negHit(key) {
		l.negativeHits.Add(1)
		return nil, false, nil
	}
	k := string(key)
	l.mu.Lock()
	if f, ok := l.flights[k]; ok {
		l.mu.Unlock()
		l.herdCoalesced.Add(1)
		select {
		case <-f.done:
			return f.val, f.stale, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	l.flights[k] = f
	l.mu.Unlock()
	f.val, f.stale, f.err = l.runFlight(ctx, ss, key)
	// Unpublish before release: a miss arriving after close(done) must start
	// a fresh flight, not join a finished one.
	l.mu.Lock()
	delete(l.flights, k)
	l.mu.Unlock()
	close(f.done)
	return f.val, f.stale, f.err
}

// runFlight is the flight leader's body.
func (l *loader) runFlight(ctx context.Context, ss *Session, key []byte) (*value.Value, bool, error) {
	// Re-check residency: a put or a competing earlier flight may have landed
	// between the caller's miss and this flight winning the table slot.
	if v, stale, ok := l.resident(ss, key, false); ok {
		return v, stale, nil
	}
	// A value parked in the write-behind queue is newer than anything the
	// backend holds — the spill that created it may still be in flight.
	// Serving the backend's copy here would time-travel an acked write.
	if wb := l.s.wb; wb != nil {
		if v, pending := wb.peek(key); pending {
			if v == nil || expired(v) {
				return nil, false, nil // pending delete (or dead by TTL): miss
			}
			return l.install(ss, key, v.Cols(), v.ExpiresAt()), false, nil
		}
	}
	var loadStart time.Time
	if l.s.obs != nil {
		loadStart = time.Now()
	}
	payload, ttl, ok, err := l.be.Load(ctx, key)
	if l.s.obs != nil {
		l.s.obs.Hist(obs.HBackendLoad).Record(ss.worker, time.Since(loadStart))
		l.noteBreaker(ss.worker)
	}
	if err != nil {
		l.loadErrors.Add(1)
		l.s.obs.Recorder().Record(ss.worker, obs.EvLoadError, obs.KeyHash(key), 0)
		if v, _, ok := l.resident(ss, key, true); ok {
			l.staleServed.Add(1)
			return v, true, nil
		}
		return nil, false, err
	}
	if !ok {
		l.noteNegative(key)
		return nil, false, nil
	}
	cols, err := backend.DecodeCols(payload)
	if err != nil {
		l.loadErrors.Add(1)
		return nil, false, err
	}
	var expiresAt uint64
	if ttl > 0 {
		expiresAt = uint64(time.Now().Add(ttl).UnixNano())
	}
	v := l.install(ss, key, cols, expiresAt)
	l.loads.Add(1)
	return v, false, nil
}

// noteBreaker traces a breaker state change since the last load observed
// it: a trip into BreakerOpen and a heal out of it both become flight
// events, detected by state comparison so the backend wrapper's seam stays
// untouched. Called only with obs armed, after each backend load.
func (l *loader) noteBreaker(worker int) {
	bs, ok := l.be.(interface{ Stats() backend.Stats })
	if !ok {
		return
	}
	st := bs.Stats()
	prev := l.lastBreaker.Swap(int32(st.BreakerState))
	if prev == int32(st.BreakerState) {
		return
	}
	if st.BreakerState == backend.BreakerOpen {
		l.s.obs.Recorder().Record(worker, obs.EvBreakerOpen, st.BreakerOpens, 0)
	} else {
		l.s.obs.Recorder().Record(worker, obs.EvBreakerHeal, uint64(st.BreakerState), 0)
	}
}

// resident checks the tree for a servable value under the session's epoch.
// With allowStale false only a live value qualifies; with true (the
// stale-if-error path) a value whose expiry lapsed no more than MaxStale
// ago qualifies too, and the stale return distinguishes the two.
func (l *loader) resident(ss *Session, key []byte, allowStale bool) (v *value.Value, stale, ok bool) {
	ss.h.Enter()
	defer ss.h.Exit()
	v, found := l.s.tree.Get(key)
	if !found {
		return nil, false, false
	}
	e := v.ExpiresAt()
	if e == 0 {
		return v, false, true
	}
	now := uint64(time.Now().UnixNano())
	if e > now {
		return v, false, true
	}
	if allowStale && l.s.cfg.MaxStale > 0 && now-e <= uint64(l.s.cfg.MaxStale) {
		return v, true, true
	}
	return nil, false, false
}

// install publishes a loaded value through the store's put path (epoch-
// protected, logged as an insert, cache-accounted) unless a racing real put
// already made the key live — the put wins and is served instead.
func (l *loader) install(ss *Session, key []byte, cols [][]byte, expiresAt uint64) *value.Value {
	ss.h.Enter()
	defer ss.h.Exit()
	v := l.s.installLoaded(ss.worker, key, cols, expiresAt)
	l.s.cache.NoteAccess(ss.worker, key)
	return v
}

// negHit reports whether key is inside its negative-cache window.
func (l *loader) negHit(key []byte) bool {
	if l.s.cfg.NegativeTTL <= 0 || l.negN.Load() == 0 {
		return false
	}
	l.negMu.Lock()
	dl, ok := l.neg[string(key)]
	if ok && time.Now().UnixNano() >= dl {
		delete(l.neg, string(key))
		l.negN.Add(-1)
		ok = false
	}
	l.negMu.Unlock()
	return ok
}

// noteNegative records an authoritative backend miss for NegativeTTL.
func (l *loader) noteNegative(key []byte) {
	if l.s.cfg.NegativeTTL <= 0 {
		return
	}
	dl := time.Now().Add(l.s.cfg.NegativeTTL).UnixNano()
	l.negMu.Lock()
	if len(l.neg) >= negMax {
		for k := range l.neg {
			delete(l.neg, k)
			l.negN.Add(-1)
			break
		}
	}
	if _, ok := l.neg[string(key)]; !ok {
		l.negN.Add(1)
	}
	l.neg[string(key)] = dl
	l.negMu.Unlock()
}

// noteWrite drops key's negative-cache entry. Every put path calls this: a
// write makes the key exist, and letting a pre-write "absent upstream"
// verdict survive would turn an acked put into a miss if eviction dropped
// the key inside the negative-TTL window. The atomic emptiness check keeps
// the cost off backend-free and negative-free write paths.
func (l *loader) noteWrite(key []byte) {
	if l.s.cfg.NegativeTTL <= 0 || l.negN.Load() == 0 {
		return
	}
	l.negMu.Lock()
	if _, ok := l.neg[string(key)]; ok {
		delete(l.neg, string(key))
		l.negN.Add(-1)
	}
	l.negMu.Unlock()
}

// writeBehind is the bounded, per-key-coalescing spill queue: eviction's
// clean drops (and Remove's tombstones) enqueue here and an asynchronous
// drainer pushes them to the backend. An entry stays visible to peek while
// its store is in flight, so a read-through load can never resurrect the
// pre-spill copy of a key whose newest value is still on its way upstream.
type writeBehind struct {
	be  backend.Backend
	cap int

	mu   sync.Mutex
	keys []string                // FIFO of keys with a pending spill
	vals map[string]*value.Value // pending value per key; nil = delete

	drops atomic.Uint64 // entries evicted from a full queue
	kick  chan struct{}
	stop  chan struct{}
	done  chan struct{}
}

func newWriteBehind(be backend.Backend, depth int) *writeBehind {
	wb := &writeBehind{
		be:   be,
		cap:  depth,
		vals: make(map[string]*value.Value, depth),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go wb.drainLoop()
	return wb
}

// enqueue queues key's last published value (nil = delete upstream). Values
// are immutable, so retaining the pointer is safe and free. A same-key
// entry already queued is coalesced in place; a full queue drops its oldest
// entry (counted) — the spill is best-effort by contract.
func (wb *writeBehind) enqueue(key []byte, v *value.Value) {
	k := string(key)
	wb.mu.Lock()
	if _, queued := wb.vals[k]; queued {
		wb.vals[k] = v
		wb.mu.Unlock()
		return
	}
	if len(wb.keys) >= wb.cap {
		oldest := wb.keys[0]
		wb.keys = wb.keys[1:]
		delete(wb.vals, oldest)
		wb.drops.Add(1)
	}
	wb.keys = append(wb.keys, k)
	wb.vals[k] = v
	wb.mu.Unlock()
	select {
	case wb.kick <- struct{}{}:
	default:
	}
}

// peek returns key's pending spill value (nil, true for a pending delete).
func (wb *writeBehind) peek(key []byte) (*value.Value, bool) {
	wb.mu.Lock()
	v, ok := wb.vals[string(key)]
	wb.mu.Unlock()
	return v, ok
}

// depth reports how many keys have a pending (or in-flight) spill.
func (wb *writeBehind) depth() int {
	wb.mu.Lock()
	n := len(wb.vals)
	wb.mu.Unlock()
	return n
}

// drainLoop pushes pending entries upstream one at a time. The entry stays
// in vals while its store runs (peek visibility); if a newer value coalesced
// in meanwhile, the key is re-queued instead of dropped.
func (wb *writeBehind) drainLoop() {
	defer close(wb.done)
	for {
		if !wb.drainOne(context.Background()) {
			select {
			case <-wb.kick:
			case <-wb.stop:
				return
			}
		}
	}
}

// drainOne spills the queue's front entry; false means the queue was empty.
func (wb *writeBehind) drainOne(ctx context.Context) bool {
	wb.mu.Lock()
	if len(wb.keys) == 0 {
		wb.mu.Unlock()
		return false
	}
	k := wb.keys[0]
	wb.keys = wb.keys[1:]
	v, ok := wb.vals[k]
	wb.mu.Unlock()
	if !ok {
		return true // dropped by a full-queue eviction after being popped
	}
	// Success or failure, the entry completes: write-behind is best-effort
	// (Wrap already retried), and holding a failed entry forever would wedge
	// the queue behind a dead backend. The wrapper's error counters record
	// the loss. Dead-by-TTL values are not worth shipping.
	if v == nil {
		_ = wb.be.Delete(ctx, []byte(k))
	} else if !expired(v) {
		_ = wb.be.Store(ctx, []byte(k), backend.EncodeCols(v.Cols()))
	}
	// A value that coalesced in while the store ran re-queues.
	wb.mu.Lock()
	if cur, still := wb.vals[k]; still {
		if cur == v {
			delete(wb.vals, k)
		} else {
			wb.keys = append(wb.keys, k)
		}
	}
	wb.mu.Unlock()
	return true
}

// drain blocks until the queue is empty or the timeout lapses; it reports
// whether the queue fully drained. Used by graceful shutdown.
func (wb *writeBehind) drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for wb.depth() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		select {
		case wb.kick <- struct{}{}:
		default:
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// close stops the drainer after a best-effort final drain.
func (wb *writeBehind) close(timeout time.Duration) bool {
	ok := wb.drain(timeout)
	close(wb.stop)
	<-wb.done
	return ok
}

// LoaderStats snapshots the read-through tier's counters. Zero-valued when
// no backend is configured. Backend carries the Wrap decorator's health
// counters when the configured backend exposes them (see backend.Stats).
type LoaderStats struct {
	Loads            uint64
	LoadErrors       uint64
	HerdCoalesced    uint64
	StaleServed      uint64
	NegativeHits     uint64
	WriteBehindDepth int
	WriteBehindDrops uint64
	Backend          backend.Stats
	HasBackend       bool
}

// LoaderStats reports the read-through/write-behind tier's counters.
func (s *Store) LoaderStats() LoaderStats {
	var st LoaderStats
	if s.loader == nil {
		return st
	}
	st.HasBackend = true
	st.Loads = s.loader.loads.Load()
	st.LoadErrors = s.loader.loadErrors.Load()
	st.HerdCoalesced = s.loader.herdCoalesced.Load()
	st.StaleServed = s.loader.staleServed.Load()
	st.NegativeHits = s.loader.negativeHits.Load()
	if s.wb != nil {
		st.WriteBehindDepth = s.wb.depth()
		st.WriteBehindDrops = s.wb.drops.Load()
	}
	if bs, ok := s.loader.be.(interface{ Stats() backend.Stats }); ok {
		st.Backend = bs.Stats()
	}
	return st
}
