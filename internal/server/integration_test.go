package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/value"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

// TestIntegrationYCSBOverNetwork drives MYCSB-A (50% get, 50% column put)
// through real TCP connections against a store with logging enabled, then
// restarts the server and verifies recovery preserved every key.
func TestIntegrationYCSBOverNetwork(t *testing.T) {
	dir := t.TempDir()
	store, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2, FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 2)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	const records = 2000
	// Load phase over the network, batched.
	loader, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	var batch []wire.Request
	for i := uint64(0); i < records; i++ {
		key, cols := ycsb.LoadRecord(i)
		puts := make([]wire.ColData, len(cols))
		for c, col := range cols {
			puts[c] = wire.ColData{Col: c, Data: col}
		}
		batch = append(batch, wire.Request{Op: wire.OpPut, Key: key, Puts: puts})
		if len(batch) == 100 {
			if _, err := loader.Do(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if _, err := loader.Do(batch); err != nil {
			t.Fatal(err)
		}
	}
	loader.Close()

	// Run phase: several clients, mixed gets and single-column updates.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			src, err := ycsb.New("A", records, int64(w+1))
			if err != nil {
				t.Error(err)
				return
			}
			reqs := make([]wire.Request, 50)
			for round := 0; round < 40; round++ {
				for i := range reqs {
					op := src.Next()
					switch op.Kind {
					case ycsb.Read:
						reqs[i] = wire.Request{Op: wire.OpGet, Key: op.Key}
					case ycsb.Update:
						reqs[i] = wire.Request{Op: wire.OpPut, Key: op.Key,
							Puts: []wire.ColData{{Col: op.Col, Data: op.Data}}}
					}
				}
				resps, err := c.Do(reqs)
				if err != nil {
					t.Error(err)
					return
				}
				for i, r := range resps {
					if reqs[i].Op == wire.OpGet && r.Status == wire.StatusOK && len(r.Cols) != ycsb.NumColumns {
						t.Errorf("get returned %d columns", len(r.Cols))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: every record must survive with all columns.
	store2, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Len() != records {
		t.Fatalf("recovered %d records, want %d", store2.Len(), records)
	}
	for i := uint64(0); i < records; i++ {
		key, _ := ycsb.LoadRecord(i)
		cols, ok := store2.Get(key, nil)
		if !ok || len(cols) != ycsb.NumColumns {
			t.Fatalf("record %d damaged after recovery: ok=%v cols=%d", i, ok, len(cols))
		}
	}
}

// TestIntegrationCheckpointUnderNetworkLoad checkpoints while network
// clients write, then recovers and cross-checks against client-side ground
// truth.
func TestIntegrationCheckpointUnderNetworkLoad(t *testing.T) {
	dir := t.TempDir()
	store, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2, FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 2)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	var wg sync.WaitGroup
	truth := make([]map[string]string, 2)
	for w := 0; w < 2; w++ {
		truth[w] = map[string]string{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("w%d-%05d", w, i%1500)
				v := fmt.Sprintf("v%d", i)
				if _, err := c.PutSimple([]byte(k), []byte(v)); err != nil {
					t.Error(err)
					return
				}
				truth[w][k] = v
			}
		}(w)
	}
	ckpts := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
		default:
			if _, _, err := store.Checkpoint(); err != nil {
				t.Error(err)
			}
			ckpts++
			continue
		}
		break
	}
	srv.Close()
	store.Close()
	if ckpts == 0 {
		t.Fatal("no checkpoint ran during load")
	}

	store2, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: 2, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	for w := range truth {
		for k, v := range truth[w] {
			got, ok := store2.Get([]byte(k), nil)
			if !ok || string(got[0]) != v {
				t.Fatalf("key %q = %q,%v want %q after recovery (%d checkpoints ran)", k, got, ok, v, ckpts)
			}
		}
	}
}

// TestIntegrationValueColumnsAtomicOverNetwork verifies §4.7 end to end:
// multi-column puts are never observed torn by concurrent network readers.
func TestIntegrationValueColumnsAtomicOverNetwork(t *testing.T) {
	store, err := kvstore.Open(kvstore.Config{MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 2)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	defer func() {
		srv.Close()
		store.Close()
	}()

	key := []byte("pair")
	store.Put(0, key, []value.ColPut{{Col: 0, Data: []byte("0")}, {Col: 1, Data: []byte("0")}})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer keeps both columns equal, updated atomically
		defer wg.Done()
		c, _ := client.Dial(addr)
		defer c.Close()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := []byte(fmt.Sprintf("%d", i))
			c.Put(key, []wire.ColData{{Col: 0, Data: v}, {Col: 1, Data: v}})
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := client.Dial(addr)
			defer c.Close()
			for i := 0; i < 2000; i++ {
				cols, ok, err := c.Get(key, nil)
				if err != nil || !ok {
					t.Errorf("get failed: %v", err)
					return
				}
				if string(cols[0]) != string(cols[1]) {
					t.Errorf("torn multi-column read: %q vs %q", cols[0], cols[1])
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
