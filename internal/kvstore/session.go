package kvstore

import (
	"repro/internal/epoch"
	"repro/internal/value"
)

// Session is one worker's handle onto the store: it binds operations to the
// worker's log (each query thread maintains its own log file and in-memory
// log buffer, §5) and registers an epoch handle so deferred reclamation
// waits for the session's in-flight operations (§4.6.1).
//
// A Session is not safe for concurrent use; create one per worker goroutine.
type Session struct {
	s      *Store
	worker int
	h      *epoch.Handle
}

// Session creates a session bound to the given worker's log.
func (s *Store) Session(worker int) *Session {
	return &Session{s: s, worker: worker, h: s.mgr.Register()}
}

// Close unregisters the session from the epoch manager.
func (ss *Session) Close() {
	ss.s.mgr.Unregister(ss.h)
}

// Get returns the requested columns of key (nil cols = all).
func (ss *Session) Get(key []byte, cols []int) ([][]byte, bool) {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.Get(key, cols)
}

// Put applies column modifications atomically via this session's log.
func (ss *Session) Put(key []byte, puts []value.ColPut) uint64 {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.Put(ss.worker, key, puts)
}

// PutSimple stores data as column 0.
func (ss *Session) PutSimple(key, data []byte) uint64 {
	return ss.Put(key, []value.ColPut{{Col: 0, Data: data}})
}

// Remove deletes key via this session's log.
func (ss *Session) Remove(key []byte) bool {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.Remove(ss.worker, key)
}

// GetRange returns up to n pairs from start (nil cols = all columns).
func (ss *Session) GetRange(start []byte, n int, cols []int) []Pair {
	ss.h.Enter()
	defer ss.h.Exit()
	return ss.s.GetRange(start, n, cols)
}
