// Command masstree-server runs the Masstree key-value server (§3, §5): a
// TCP server over a persistent in-memory Masstree with per-worker
// group-commit logging and periodic checkpoints. On startup it recovers
// from the newest valid checkpoint plus logs in -data.
//
// With -backend the store becomes the fast tier of a read-through
// hierarchy: misses consult the backend (thundering herds coalesced into
// one load per key), evicted values spill to it asynchronously when
// -write-behind is set, and a failing backend degrades to stale-if-error
// service behind a circuit breaker instead of hanging requests.
//
// With -admin the server additionally exposes an observability listener —
// never on the data-plane port — serving /metrics (Prometheus text), /varz
// (JSON stats + latency histograms), /flightrecorder (the merged trace of
// internal transitions), and /debug/pprof/*. The admin endpoint and the
// wire Stats op render from the same snapshot machinery, so a dashboard and
// an old stats script cannot disagree.
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops accepting,
// gives connections -drain-timeout to finish, flushes the WAL, drains the
// write-behind queue, takes a final checkpoint (when -data is set), and
// exits 0 — or 1 if any drain step ran out its budget, meaning clients may
// have seen resets or spilled values may not have reached the backend.
//
// Usage:
//
//	masstree-server -listen :7500 -data /var/lib/masstree -workers 4 \
//	    -checkpoint-every 5m -checkpoint-parts 8 -sync \
//	    -backend file:/var/lib/masstree-backend -write-behind 1024
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/kvstore"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen    = flag.String("listen", ":7500", "TCP listen address")
		data      = flag.String("data", "", "persistence directory (empty = in-memory only)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "log streams / logical workers")
		syncWr    = flag.Bool("sync", false, "fsync logs on each group commit")
		flushMs   = flag.Duration("flush", 200*time.Millisecond, "log flush interval (group commit bound)")
		ckptEvery = flag.Duration("checkpoint-every", 0, "checkpoint period (0 = manual only)")
		ckptParts = flag.Int("checkpoint-parts", runtime.GOMAXPROCS(0),
			"concurrent checkpoint part writers (disjoint key ranges; recovery loads parts in parallel)")
		maxBytes = flag.Int64("max-bytes", 0,
			"cache mode: bound accounted live bytes (packed value sizes), evicting S3-FIFO-style; 0 = unbounded")

		backendSpec = flag.String("backend", "",
			"read-through backend tier; \"file:<dir>\" serves misses from one-file-per-key storage")
		backendTimeout = flag.Duration("backend-timeout", 2*time.Second, "per-call backend timeout")
		backendRetries = flag.Int("backend-retries", 2, "backend retry budget per call (jittered exponential backoff)")
		backendBreaker = flag.Int("backend-breaker", 5,
			"consecutive backend failures that open the circuit breaker (0 = breaker off)")
		backendConc = flag.Int("backend-concurrency", 64, "max concurrent backend calls (0 = unlimited)")
		loadTTL     = flag.Duration("load-ttl", 0,
			"TTL stamped on backend-loaded values (0 = loaded values never expire)")
		negativeTTL = flag.Duration("negative-ttl", time.Second,
			"how long an authoritative backend miss is remembered (negative cache)")
		maxStale = flag.Duration("max-stale", 0,
			"stale-if-error window: serve a value expired at most this long ago when the backend is down (0 = off)")
		writeBehind = flag.Int("write-behind", 0,
			"async write-behind queue capacity: evicted values spill to the backend (0 = off)")

		drainTimeout = flag.Duration("drain-timeout", 5*time.Second,
			"graceful-shutdown budget for each drain step (connections, write-behind queue)")

		adminAddr = flag.String("admin", "",
			"admin HTTP listen address serving /metrics, /varz, /flightrecorder, /debug/pprof/* (empty = off)")
	)
	flag.Parse()

	be, err := openBackend(*backendSpec, *loadTTL, backend.WrapConfig{
		Timeout:         *backendTimeout,
		Retries:         *backendRetries,
		Concurrency:     *backendConc,
		BreakerFailures: *backendBreaker,
	})
	if err != nil {
		log.Printf("masstree-server: backend: %v", err)
		return 1
	}

	store, err := kvstore.Open(kvstore.Config{
		Dir:             *data,
		Workers:         *workers,
		FlushInterval:   *flushMs,
		SyncWrites:      *syncWr,
		CheckpointParts: *ckptParts,
		MaxBytes:        int(*maxBytes),
		Backend:         be,
		NegativeTTL:     *negativeTTL,
		MaxStale:        *maxStale,
		WriteBehind:     *writeBehind,
	})
	if err != nil {
		log.Printf("masstree-server: open store: %v", err)
		return 1
	}
	if *maxBytes > 0 {
		log.Printf("masstree-server: cache mode, max-bytes=%d", *maxBytes)
	}
	if be != nil {
		log.Printf("masstree-server: read-through backend %q (write-behind=%d)", *backendSpec, *writeBehind)
	}
	log.Printf("masstree-server: recovered %d keys", store.Len())

	// Catch shutdown signals before the address is announced: anyone who
	// saw the "serving on" line may signal us, and an uninstalled handler
	// would let the default action kill the process mid-drain.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	srv := server.New(store, *workers)
	if err := srv.Listen(*listen); err != nil {
		log.Printf("masstree-server: listen: %v", err)
		store.Close()
		return 1
	}
	log.Printf("masstree-server: serving on %s (%d workers, data=%q)", srv.Addr(), *workers, *data)

	var admin *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Printf("masstree-server: admin listen: %v", err)
			srv.Close()
			store.Close()
			return 1
		}
		admin = &http.Server{Handler: srv.AdminMux()}
		go func() {
			if err := admin.Serve(aln); err != nil && err != http.ErrServerClosed {
				log.Printf("masstree-server: admin: %v", err)
			}
		}()
		log.Printf("masstree-server: admin endpoint on %s (/metrics /varz /flightrecorder /debug/pprof)", aln.Addr())
	}

	stopCkpt := make(chan struct{})
	if *ckptEvery > 0 && *data != "" {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					start := time.Now()
					if _, n, err := store.Checkpoint(); err != nil {
						log.Printf("masstree-server: checkpoint failed: %v", err)
					} else {
						log.Printf("masstree-server: checkpointed %d keys in %s", n, time.Since(start).Round(time.Millisecond))
					}
				case <-stopCkpt:
					return
				}
			}
		}()
	}

	<-sig
	fmt.Fprintln(os.Stderr, "masstree-server: shutting down")
	close(stopCkpt)
	if admin != nil {
		// The admin plane goes first: a scrape arriving mid-teardown would
		// read a store being closed. Bounded like every other drain step.
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		admin.Shutdown(ctx)
		cancel()
	}
	return shutdown(srv, store, *data != "", *drainTimeout)
}

// shutdown runs the graceful teardown sequence and returns the process exit
// code: 0 for a clean drain, 1 when any step exhausted its budget or failed
// (acknowledged work may not have reached its destination).
func shutdown(srv *server.Server, store *kvstore.Store, persistent bool, drainTimeout time.Duration) int {
	code := 0
	if !srv.Shutdown(drainTimeout) {
		log.Printf("masstree-server: connection drain timed out after %s", drainTimeout)
		code = 1
	}
	// The network is quiet: no new writes can arrive. Make what was
	// acknowledged durable, in dependency order — WAL first (it covers every
	// acked put), then the write-behind spill queue, then a final checkpoint
	// so restart recovery is cheap.
	if err := store.Flush(); err != nil {
		log.Printf("masstree-server: final WAL flush: %v", err)
		code = 1
	}
	if !store.DrainWriteBehind(drainTimeout) {
		log.Printf("masstree-server: write-behind drain timed out after %s", drainTimeout)
		code = 1
	}
	if persistent {
		if _, n, err := store.Checkpoint(); err != nil {
			log.Printf("masstree-server: final checkpoint: %v", err)
			code = 1
		} else {
			log.Printf("masstree-server: final checkpoint: %d keys", n)
		}
	}
	if err := store.Close(); err != nil {
		log.Printf("masstree-server: close: %v", err)
		code = 1
	}
	return code
}

// openBackend parses the -backend spec. Only the "file:<dir>" scheme exists
// today; the Wrap decorator stack (timeout, retries, concurrency cap,
// circuit breaker) is applied to whatever the spec names.
func openBackend(spec string, loadTTL time.Duration, cfg backend.WrapConfig) (backend.Backend, error) {
	if spec == "" {
		return nil, nil
	}
	dir, ok := strings.CutPrefix(spec, "file:")
	if !ok || dir == "" {
		return nil, fmt.Errorf("unsupported backend spec %q (want file:<dir>)", spec)
	}
	fb, err := backend.NewFile(nil, dir, loadTTL)
	if err != nil {
		return nil, err
	}
	return backend.Wrap(fb, cfg), nil
}
