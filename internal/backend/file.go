package backend

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"time"

	"repro/internal/vfs"
)

// File is the reference durable backend: one file per key on a vfs.FS, so
// tests exercise the full decorator stack against the same crash-injectable
// filesystem seam the WAL uses. Stores are atomic (temp + sync + rename);
// loads verify the stored key against the requested one, so a hash-named
// file can never answer for the wrong key.
//
// It is deliberately simple — no compaction, no sharded directories — the
// point is a real, fallible source of truth, not a second storage engine.
type File struct {
	fsys vfs.FS
	dir  string
	ttl  time.Duration // TTL stamped on every loaded value; 0 = none
}

// NewFile builds a file backend rooted at dir, creating it if absent. A nil
// fsys means the real filesystem. loadTTL, when non-zero, is the TTL the
// backend reports for every load — the knob that turns a read-through entry
// into an expiring cache entry.
func NewFile(fsys vfs.FS, dir string, loadTTL time.Duration) (*File, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &File{fsys: fsys, dir: dir, ttl: loadTTL}, nil
}

// hexNameMax bounds hex-named keys; longer keys fall back to a hash name
// (the stored header disambiguates, and sha256 collisions are not a
// practical concern).
const hexNameMax = 96

// keyPath maps a key to its file path: short keys hex-encode reversibly
// ("k<hex>"), long keys hash ("h<hex of sha256>").
func (f *File) keyPath(key []byte) string {
	if len(key) <= hexNameMax {
		return filepath.Join(f.dir, "k"+hex.EncodeToString(key))
	}
	sum := sha256.Sum256(key)
	return filepath.Join(f.dir, "h"+hex.EncodeToString(sum[:]))
}

// Load implements Backend. The file layout is [u32 klen][key][payload];
// the embedded key is verified so hash-named files answer only for their
// own key (a mismatch reads as a miss, exactly what a hash collision is).
func (f *File) Load(_ context.Context, key []byte) ([]byte, time.Duration, bool, error) {
	b, err := f.fsys.ReadFile(f.keyPath(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, false, nil
		}
		return nil, 0, false, err
	}
	if len(b) < 4 {
		return nil, 0, false, fmt.Errorf("backend: truncated file for key %q", key)
	}
	klen := int(binary.LittleEndian.Uint32(b))
	if len(b)-4 < klen {
		return nil, 0, false, fmt.Errorf("backend: truncated key in file for %q", key)
	}
	if string(b[4:4+klen]) != string(key) {
		return nil, 0, false, nil
	}
	return b[4+klen:], f.ttl, true, nil
}

// Store implements Backend: write-temp, sync, rename, sync-dir — the same
// atomic-publish idiom the checkpoint writer uses, so a crash leaves either
// the old payload or the new one, never a torn file.
func (f *File) Store(_ context.Context, key, payload []byte) error {
	tmp, err := f.fsys.CreateTemp(f.dir, "put-*")
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(key)))
	_, err = tmp.Write(hdr[:])
	if err == nil {
		_, err = tmp.Write(key)
	}
	if err == nil {
		_, err = tmp.Write(payload)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = f.fsys.Remove(tmp.Name())
		return err
	}
	if err := f.fsys.Rename(tmp.Name(), f.keyPath(key)); err != nil {
		_ = f.fsys.Remove(tmp.Name())
		return err
	}
	return f.fsys.SyncDir(f.dir)
}

// Delete implements Backend; deleting an absent key succeeds.
func (f *File) Delete(_ context.Context, key []byte) error {
	if err := f.fsys.Remove(f.keyPath(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return f.fsys.SyncDir(f.dir)
}
