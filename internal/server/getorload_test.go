package server

import (
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/wire"
)

// startBackendServer runs a server over a store wired to a mock backend,
// returning all three so tests can seed the backend and inject faults.
func startBackendServer(t *testing.T, cfg kvstore.Config, m *backend.Mock) (*Server, string) {
	t.Helper()
	cfg.Backend = m
	if cfg.MaintainEvery == 0 {
		cfg.MaintainEvery = time.Millisecond
	}
	store, err := kvstore.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 2)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return srv, srv.Addr().String()
}

// TestGetOrLoadOverV2 exercises the read-through surface end to end: a miss
// loads from the backend and installs, a second read is a pure cache hit
// (no second backend load), an absent key answers NotFound, and the
// backend-tier stats keys are reported.
func TestGetOrLoadOverV2(t *testing.T) {
	m := backend.NewMock(0)
	m.Seed("k", backend.EncodeCols([][]byte{[]byte("from-backend")}))
	_, addr := startBackendServer(t, kvstore.Config{}, m)
	conn, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	vals, ver, stale, ok, err := conn.GetOrLoad([]byte("k"), nil)
	if err != nil || !ok || stale {
		t.Fatalf("GetOrLoad = (ok=%v stale=%v err=%v)", ok, stale, err)
	}
	if ver == 0 || len(vals) != 1 || string(vals[0]) != "from-backend" {
		t.Fatalf("loaded value = %q version %d", vals, ver)
	}
	if _, _, _, ok, err := conn.GetOrLoad([]byte("k"), nil); err != nil || !ok {
		t.Fatalf("second GetOrLoad: ok=%v err=%v", ok, err)
	}
	if got := m.LoadsFor("k"); got != 1 {
		t.Fatalf("backend loaded %d times, want 1 (second read must hit the tree)", got)
	}
	if _, _, _, ok, err := conn.GetOrLoad([]byte("absent"), nil); err != nil || ok {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
	// A plain Get still misses: read-through is opt-in per request.
	if _, _, ok, _ := conn.Get([]byte("absent"), nil); ok {
		t.Fatal("plain Get found a key that only a load could produce")
	}

	raw, err := conn.StatsRaw()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"loads", "load_errors", "herd_coalesced", "stale_served",
		"negative_hits", "breaker_state", "breaker_opens", "writebehind_depth",
		"writebehind_drops", "flush_retries"} {
		if _, ok := raw[want]; !ok {
			t.Fatalf("stats missing %q: %v", want, raw)
		}
	}
	stats, err := conn.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["loads"] != 1 {
		t.Fatalf("loads stat = %d, want 1", stats["loads"])
	}
}

// TestGetOrLoadStaleOverWire drives the degradation path through the wire:
// a value expires, the backend goes down, and GetOrLoad answers StatusStale
// with the expired value instead of an error.
func TestGetOrLoadStaleOverWire(t *testing.T) {
	m := backend.NewMock(0)
	_, addr := startBackendServer(t, kvstore.Config{MaxStale: time.Minute}, m)
	conn, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.PutSimpleTTL([]byte("k"), []byte("old"), 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok, err := conn.Get([]byte("k"), nil); err != nil {
			t.Fatal(err)
		} else if !ok {
			break // expired
		}
		if time.Now().After(deadline) {
			t.Fatal("1s TTL did not lapse within 5s")
		}
		time.Sleep(50 * time.Millisecond)
	}
	m.SetError(backend.ErrUnavailable)
	vals, _, stale, ok, err := conn.GetOrLoad([]byte("k"), nil)
	if err != nil || !ok || !stale {
		t.Fatalf("GetOrLoad during outage = (ok=%v stale=%v err=%v), want stale hit", ok, stale, err)
	}
	if len(vals) != 1 || string(vals[0]) != "old" {
		t.Fatalf("stale value = %q, want the expired resident one", vals)
	}
	// A key with nothing resident fails fast with an error status.
	if _, _, _, _, err := conn.GetOrLoad([]byte("nothing"), nil); err == nil {
		t.Fatal("GetOrLoad of absent key during outage did not error")
	}
}

// TestGetOrLoadRejectedOnV1 pins the protocol boundary: OpGetOrLoad is v2
// surface; a v1 connection gets StatusError while the rest of the batch
// executes normally.
func TestGetOrLoadRejectedOnV1(t *testing.T) {
	m := backend.NewMock(0)
	m.Seed("k", backend.EncodeCols([][]byte{[]byte("v")}))
	srv, addr := startBackendServer(t, kvstore.Config{}, m)
	c, err := client.Dial(addr) // v1: no hello
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resps, err := c.Do([]wire.Request{
		{Op: wire.OpGetOrLoad, Key: []byte("k")},
		{Op: wire.OpPut, Key: []byte("p"), Puts: []wire.ColData{{Col: 0, Data: []byte("v")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Status != wire.StatusError {
		t.Fatalf("OpGetOrLoad not rejected on v1: %+v", resps[0])
	}
	if resps[1].Status != wire.StatusOK {
		t.Fatalf("plain v1 op broken: %+v", resps[1])
	}
	if got := srv.erroredRequests.Load(); got != 1 {
		t.Fatalf("errored_requests = %d, want 1", got)
	}
	if got := m.Loads(); got != 0 {
		t.Fatalf("rejected v1 OpGetOrLoad reached the backend (%d loads)", got)
	}
}
