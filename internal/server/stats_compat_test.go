package server

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/vfs"
)

// TestFlushLastErrorOnlyOnV2 pins the stats compatibility rule: the one
// string-valued metric (flush_last_error) is served only on v2 connections.
// Pre-existing v1 client binaries parse every stats value with ParseInt and
// reject the whole response on the first non-numeric one — exactly when the
// operator most needs stats — so the v1 response must stay all-numeric even
// while a flush error is latched.
func TestFlushLastErrorOnlyOnV2(t *testing.T) {
	mem := vfs.NewMemFS()
	fault := vfs.NewFault(mem)
	store, err := kvstore.Open(kvstore.Config{
		Dir: "/data", Workers: 1, FS: fault, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 1)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})

	// Latch a flush failure: CrashAt resets the boundary counter, so arming
	// at 1 makes the very next filesystem op (the flush's write) fail.
	store.PutSimple(0, []byte("k"), []byte("v"))
	fault.CrashAt(1)
	if err := store.Flush(); err == nil {
		t.Fatal("flush unexpectedly succeeded")
	}
	if n, last := store.FlushStats(); n == 0 || last == nil {
		t.Fatalf("flush error not latched: n=%d last=%v", n, last)
	}

	addr := srv.Addr().String()
	v1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	rawV1, err := v1.StatsRaw()
	if err != nil {
		t.Fatal(err)
	}
	if _, present := rawV1["flush_last_error"]; present {
		t.Fatal("v1 stats carried the string-valued flush_last_error")
	}
	for k, v := range rawV1 { // an old binary's ParseInt loop must succeed
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			t.Fatalf("v1 stat %q=%q is not numeric", k, v)
		}
	}
	if rawV1["flush_errors"] == "0" {
		t.Fatal("flush_errors did not report the failure")
	}

	v2, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	rawV2, err := v2.StatsRaw()
	if err != nil {
		t.Fatal(err)
	}
	if msg, present := rawV2["flush_last_error"]; !present || msg == "" {
		t.Fatalf("v2 stats missing flush_last_error: %v", rawV2)
	}
	if _, err := v2.Stats(); err != nil { // numeric view skips the string
		t.Fatalf("v2 numeric Stats failed on the string metric: %v", err)
	}
}

// TestStatsNumericWithBreakerTripped audits the state-machine metrics
// against the same compatibility rule while they are *non-zero*: with the
// backend breaker freshly tripped, breaker_state must report its state as
// an integer (1 = open, never a name like "open") and every other v1 stat
// must stay ParseInt-clean. The cluster client's node_state follows the
// identical convention (pinned by TestClusterStatsAllNumeric); this is the
// server half of that audit, taken at the worst moment — mid-outage, when
// an operator's old binary is most likely to be pointed at the stats
// endpoint.
func TestStatsNumericWithBreakerTripped(t *testing.T) {
	m := backend.NewMock(0)
	w := backend.Wrap(m, backend.WrapConfig{BreakerFailures: 1, BreakerOpenFor: time.Hour})
	store, err := kvstore.Open(kvstore.Config{Workers: 1, MaintainEvery: -1, Backend: w})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 1)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})

	// Trip the breaker through the wire path: one failing read-through load.
	m.SetError(errors.New("backend down"))
	v2, err := client.DialConn(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if _, _, _, _, err := v2.GetOrLoad([]byte("absent"), nil); err == nil {
		t.Fatal("getorload against a dead backend succeeded")
	}
	if st := store.LoaderStats(); st.Backend.BreakerState != backend.BreakerOpen {
		t.Fatalf("breaker not open: %+v", st.Backend)
	}

	v1, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	raw, err := v1.StatsRaw()
	if err != nil {
		t.Fatal(err)
	}
	state, present := raw["breaker_state"]
	if !present {
		t.Fatal("breaker_state missing from v1 stats")
	}
	if n, err := strconv.ParseInt(state, 10, 64); err != nil || n != int64(backend.BreakerOpen) {
		t.Fatalf("breaker_state=%q, want the integer %d", state, backend.BreakerOpen)
	}
	for k, v := range raw { // the old binary's ParseInt loop, mid-outage
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			t.Fatalf("v1 stat %q=%q is not numeric", k, v)
		}
	}
}

// TestStatsHistogramKeysV1Numeric sweeps the histogram-derived stats keys
// through a v1 connection: every lat_* key (counts, sums, quantiles, raw
// buckets) must be a base-10 integer an old binary's ParseInt loop accepts,
// and traffic must actually surface them — the keys ride the same stats
// response v1 clients have always parsed, so shipping a non-numeric or
// missing key here would break the oldest deployed tooling first.
func TestStatsHistogramKeysV1Numeric(t *testing.T) {
	store, err := kvstore.Open(kvstore.Config{Workers: 1, MaintainEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store, 1)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 8; i++ {
		key := []byte("compat-key-" + strconv.Itoa(i))
		if _, err := c.PutSimple(key, []byte("compat-value")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get(key, nil); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := c.StatsRaw()
	if err != nil {
		t.Fatal(err)
	}
	lat := 0
	for k, v := range raw {
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			t.Fatalf("v1 stat %q=%q is not numeric", k, v)
		}
		if strings.HasPrefix(k, "lat_") {
			lat++
		}
	}
	if lat == 0 {
		t.Fatal("v1 stats carry no histogram keys")
	}
	for _, k := range []string{"lat_get_count", "lat_get_p50", "lat_get_p999", "lat_put_count"} {
		if raw[k] == "" || raw[k] == "0" {
			t.Fatalf("%s=%q after traffic, want non-zero", k, raw[k])
		}
	}
}
