// Package occ provides the optimistic-concurrency-control version word used
// by the baseline trees (it mirrors internal/core's version word, Figure 3,
// which stays unexported to keep the Masstree hot path self-contained).
package occ

import (
	"runtime"
	"sync/atomic"
)

// Version-word bits; see paper Figure 3.
const (
	LockBit      uint64 = 1 << 0
	InsertingBit uint64 = 1 << 1
	SplittingBit uint64 = 1 << 2
	DeletedBit   uint64 = 1 << 3
	RootBit      uint64 = 1 << 4
	BorderBit    uint64 = 1 << 5

	DirtyMask = InsertingBit | SplittingBit

	vinsertShift        = 6
	vinsertBits         = 16
	vinsertMask  uint64 = ((1 << vinsertBits) - 1) << vinsertShift
	vinsertOne   uint64 = 1 << vinsertShift

	vsplitShift        = vinsertShift + vinsertBits
	vsplitOne   uint64 = 1 << vsplitShift
	vsplitMask  uint64 = ^uint64(0) &^ (vsplitOne - 1)
)

// Version is an atomic node version word.
type Version struct {
	v atomic.Uint64
}

// Init sets the initial bits (not concurrency safe; construction only).
func (n *Version) Init(bits uint64) { n.v.Store(bits) }

// Load returns the current word.
func (n *Version) Load() uint64 { return n.v.Load() }

// Stable spins until the version is not dirty and returns the snapshot.
func (n *Version) Stable() uint64 {
	for spins := 0; ; spins++ {
		v := n.v.Load()
		if v&DirtyMask == 0 {
			return v
		}
		if spins%128 == 127 {
			runtime.Gosched()
		}
	}
}

// Lock acquires the node spinlock.
func (n *Version) Lock() {
	for spins := 0; ; spins++ {
		v := n.v.Load()
		if v&LockBit == 0 && n.v.CompareAndSwap(v, v|LockBit) {
			return
		}
		if spins%128 == 127 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the lock, bumping vsplit or vinsert per the dirty bits.
func (n *Version) Unlock() {
	v := n.v.Load()
	if v&SplittingBit != 0 {
		v += vsplitOne
	} else if v&InsertingBit != 0 {
		v = (v &^ vinsertMask) | ((v + vinsertOne) & vinsertMask)
	}
	v &^= LockBit | InsertingBit | SplittingBit
	n.v.Store(v)
}

// MarkInserting/MarkSplitting/MarkDeleted set state bits under the lock.
func (n *Version) MarkInserting() { n.v.Store(n.v.Load() | InsertingBit) }
func (n *Version) MarkSplitting() { n.v.Store(n.v.Load() | SplittingBit) }
func (n *Version) MarkDeleted()   { n.v.Store(n.v.Load() | DeletedBit) }
func (n *Version) ClearRoot()     { n.v.Store(n.v.Load() &^ RootBit) }

// Changed reports whether two snapshots differ beyond the lock bit.
func Changed(a, b uint64) bool { return (a^b)&^LockBit != 0 }

// VSplit extracts the split counter.
func VSplit(v uint64) uint64 { return v & vsplitMask }

// Helpers for predicate bits.
func Locked(v uint64) bool  { return v&LockBit != 0 }
func Deleted(v uint64) bool { return v&DeletedBit != 0 }
func Root(v uint64) bool    { return v&RootBit != 0 }
func Border(v uint64) bool  { return v&BorderBit != 0 }
