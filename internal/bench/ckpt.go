package bench

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/workload"
)

// Ckpt reproduces §5's checkpoint and recovery measurements: time to write a
// checkpoint of the full store, time to recover from it, and put throughput
// while a checkpoint runs relative to undisturbed throughput (the paper
// reports 72% due to disk contention).
func Ckpt(sc Scale) *Table {
	sc = sc.withDefaults()
	t := &Table{
		ID:      "ckpt",
		Title:   fmt.Sprintf("checkpoint and recovery, %d keys (§5)", sc.Keys),
		Headers: []string{"metric", "value"},
	}
	dir, err := os.MkdirTemp("", "ckpt-bench-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	st, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: sc.Workers})
	if err != nil {
		panic(err)
	}
	keys := workload.UniqueKeys(workload.Decimal(77), sc.Keys)
	for i, k := range keys {
		st.PutSimple(i%sc.Workers, k, k)
	}

	// Baseline put throughput (updates of existing keys).
	perWorker := sc.Ops / sc.Workers / 4
	if perWorker == 0 {
		perWorker = 1
	}
	base := measure(sc.Workers, perWorker, func(w, i int) {
		k := keys[(w*perWorker+i*61)%len(keys)]
		st.PutSimple(w, k, k)
	})

	// Checkpoint alone.
	start := time.Now()
	_, n, err := st.Checkpoint()
	if err != nil {
		panic(err)
	}
	ckptDur := time.Since(start)

	// Put throughput while a checkpoint runs concurrently.
	var running atomic.Bool
	running.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for running.Load() {
			if _, _, err := st.Checkpoint(); err != nil {
				return
			}
		}
	}()
	during := measure(sc.Workers, perWorker, func(w, i int) {
		k := keys[(w*perWorker+i*61)%len(keys)]
		st.PutSimple(w, k, k)
	})
	running.Store(false)
	<-done
	if err := st.Close(); err != nil {
		panic(err)
	}

	// Recovery from checkpoint + logs.
	start = time.Now()
	st2, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: sc.Workers})
	if err != nil {
		panic(err)
	}
	recDur := time.Since(start)
	recovered := st2.Len()
	st2.Close()

	t.Rows = append(t.Rows,
		[]string{"keys checkpointed", fmt.Sprintf("%d", n)},
		[]string{"checkpoint time", ckptDur.Round(time.Millisecond).String()},
		[]string{"recovery time", recDur.Round(time.Millisecond).String()},
		[]string{"keys recovered", fmt.Sprintf("%d", recovered)},
		[]string{"put Mreq/s undisturbed", mops(base)},
		[]string{"put Mreq/s during checkpoint", mops(during)},
		[]string{"throughput retained", pct(during, base) + "%"},
	)
	t.Notes = append(t.Notes, "paper: 58 s checkpoint / 38 s recovery at 140M keys; 72% put throughput during checkpoints")
	return t
}
