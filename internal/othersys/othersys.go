// Package othersys provides architectural stand-ins for the closed or
// external systems of Figure 13 — MongoDB, VoltDB, Redis, and memcached —
// so the paper's system comparison can be regenerated in-process
// (substitution documented in DESIGN.md).
//
// Each stand-in keeps the property the paper credits for the original's
// behaviour, with overheads implemented as real work rather than sleeps:
//
//   - memcachedlike: hash-table shards behind single-threaded event loops;
//     gets batch per shard, but each put pays its own dispatch round trip
//     (the paper's memcached client library "does not support batched
//     puts"). Whole-value only: no per-column puts (so no MYCSB-A/B) and no
//     range queries. No persistence.
//   - redislike: hash-table shards behind single-threaded event loops with
//     an append-only log per shard (Redis's AOF; checkpointing and log
//     rewriting disabled as in §7); commands are RESP-style serialized and
//     parsed; gets and puts both pipeline. Column puts supported (the paper
//     used Redis byte-range writes). No range queries.
//   - mongolike: one B-tree index (the paper's "_id" B-tree) per shard
//     guarded by a shard-global readers-writer lock (MongoDB 2.0's global
//     lock), with BSON-style document encoding and decoding on every
//     operation and no query batching. Range queries supported.
//   - voltlike: statically partitioned single-threaded executors over
//     sequential trees; every batch is dispatched as a stored-procedure
//     transaction with per-transaction command serialization. Range queries
//     scatter-gather across partitions. Batching supported.
//
// Absolute gaps versus the real systems are out of scope; the shapes the
// experiment needs (hash stores win only uniform gets, partitioned stores
// collapse under zipfian skew, unbatched puts crater throughput, only tree
// stores serve ranges) follow from these structures.
package othersys

import (
	"repro/internal/value"
)

// Pair is one range-query result.
type Pair struct {
	Key  []byte
	Cols [][]byte
}

// System is the uniform interface the Figure 13 harness drives.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Get returns the requested columns (nil = all).
	Get(worker int, key []byte, cols []int) ([][]byte, bool)
	// Put applies column modifications. Unsupported column granularity
	// returns false (memcachedlike accepts only full-width puts).
	Put(worker int, key []byte, puts []value.ColPut) bool
	// GetRange returns up to n pairs from start with the given columns;
	// ok is false if the system cannot serve range queries.
	GetRange(worker int, start []byte, n int, cols []int) ([]Pair, bool)
	// BatchedGets/BatchedPuts report client batching support (Figure 12).
	BatchedGets() bool
	BatchedPuts() bool
	// Close releases executors and files.
	Close()
}
