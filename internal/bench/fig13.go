package bench

import (
	"fmt"
	"os"
	"runtime"

	"repro/internal/kvstore"
	"repro/internal/othersys"
	"repro/internal/value"
	"repro/internal/workload"
	"repro/internal/ycsb"
)

// masstreeBatcher drives the full Masstree system (logging on) through the
// same batch interface as the comparator stand-ins.
type masstreeBatcher struct {
	store    *kvstore.Store
	sessions []*kvstore.Session
}

func newMasstreeBatcher(dir string, workers int) (*masstreeBatcher, error) {
	st, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: workers})
	if err != nil {
		return nil, err
	}
	m := &masstreeBatcher{store: st}
	for w := 0; w < workers; w++ {
		m.sessions = append(m.sessions, st.Session(w))
	}
	return m, nil
}

func (m *masstreeBatcher) Name() string            { return "Masstree" }
func (m *masstreeBatcher) SupportsRange() bool     { return true }
func (m *masstreeBatcher) SupportsColumnPut() bool { return true }

func (m *masstreeBatcher) Exec(worker int, ops []othersys.Op) []othersys.Result {
	sess := m.sessions[worker%len(m.sessions)]
	res := make([]othersys.Result, len(ops))
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case othersys.OpGet:
			cols, ok := sess.Get(op.Key, op.Cols)
			res[i] = othersys.Result{OK: ok, Cols: cols}
		case othersys.OpPut:
			sess.Put(op.Key, op.Puts)
			res[i] = othersys.Result{OK: true}
		case othersys.OpScan:
			pairs := sess.GetRange(op.Key, op.N, op.Cols)
			out := make([]othersys.Pair, len(pairs))
			for j, p := range pairs {
				out[j] = othersys.Pair{Key: p.Key, Cols: p.Cols}
			}
			res[i] = othersys.Result{OK: true, Pairs: out}
		}
	}
	return res
}

func (m *masstreeBatcher) Close() {
	for _, s := range m.sessions {
		s.Close()
	}
	m.store.Close()
}

// Fig13 reproduces Figure 13 (§7): Masstree versus the comparator stand-ins
// on uniform get/put (multi-core and one worker) and MYCSB-A/B/C/E. Cells
// are Mreq/s; per-column percentages of Masstree follow the paper's layout.
// "n/a" marks unsupported workloads (no range queries, no column puts —
// exactly the paper's empty cells).
func Fig13(sc Scale) *Table {
	sc = sc.withDefaults()
	records := uint64(sc.Keys / 10)
	if records < 1000 {
		records = 1000
	}
	t := &Table{
		ID:      "fig13",
		Title:   fmt.Sprintf("system comparison, %d records, %d workers, batch %d (Figure 13)", records, sc.Workers, sc.Batch),
		Headers: []string{"workload", "Masstree", "mongodb-like", "voltdb-like", "redis-like", "memcached-like"},
		Notes: []string{
			"comparators are in-process architectural stand-ins (DESIGN.md substitution #2); Masstree runs with logging enabled",
			"cells: Mreq/s (and % of Masstree); n/a = workload unsupported by that system, as in the paper",
		},
	}

	dir, err := os.MkdirTemp("", "fig13-masstree-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	redisDir, err := os.MkdirTemp("", "fig13-redis-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(redisDir)

	mt, err := newMasstreeBatcher(dir, sc.Workers)
	if err != nil {
		panic(err)
	}
	systems := []othersys.Batcher{
		mt,
		othersys.NewMongolike(8),
		othersys.NewVoltlike(16),
		othersys.NewRedislike(16, int(records)*2, redisDir),
		othersys.NewMemcachedlike(16, int(records)*2),
	}
	defer func() {
		for _, s := range systems {
			s.Close()
		}
	}()

	// Pre-populate every system with the MYCSB record set.
	for _, sys := range systems {
		var batch []othersys.Op
		for i := uint64(0); i < records; i++ {
			key, cols := ycsb.LoadRecord(i)
			puts := make([]value.ColPut, len(cols))
			for c, col := range cols {
				puts[c] = value.ColPut{Col: c, Data: col}
			}
			batch = append(batch, othersys.Op{Kind: othersys.OpPut, Key: key, Puts: puts})
			if len(batch) == 256 {
				sys.Exec(0, batch)
				batch = batch[:0]
			}
		}
		if len(batch) > 0 {
			sys.Exec(0, batch)
		}
	}

	rows := []struct {
		name    string
		workers int
		mkOps   func(worker int) func(i int, ops []othersys.Op)
		colPut  bool // requires column puts
		scan    bool // requires range queries
	}{
		{"uniform get", sc.Workers, uniformOps(records, true), false, false},
		{"uniform put", sc.Workers, uniformOps(records, false), false, false},
		{"1-core get", 1, uniformOps(records, true), false, false},
		{"1-core put", 1, uniformOps(records, false), false, false},
		{"MYCSB-A", sc.Workers, mycsbOps("A", records), true, false},
		{"MYCSB-B", sc.Workers, mycsbOps("B", records), true, false},
		{"MYCSB-C", sc.Workers, mycsbOps("C", records), false, false},
		{"MYCSB-E", sc.Workers, mycsbOps("E", records), true, true},
	}

	for _, row := range rows {
		cells := []string{row.name}
		var masstreeTput float64
		for si, sys := range systems {
			if (row.colPut && !sys.SupportsColumnPut()) || (row.scan && !sys.SupportsRange()) {
				cells = append(cells, "n/a")
				continue
			}
			batches := sc.Ops / row.workers / sc.Batch
			if batches == 0 {
				batches = 1
			}
			fills := make([]func(i int, ops []othersys.Op), row.workers)
			for w := range fills {
				fills[w] = row.mkOps(w)
			}
			opsBuf := make([][]othersys.Op, row.workers)
			for w := range opsBuf {
				opsBuf[w] = make([]othersys.Op, sc.Batch)
			}
			tput := measure(row.workers, batches, func(w, i int) {
				fills[w](i, opsBuf[w])
				sys.Exec(w, opsBuf[w])
			}) * float64(sc.Batch)
			if si == 0 {
				masstreeTput = tput
				cells = append(cells, mops(tput))
			} else {
				cells = append(cells, fmt.Sprintf("%s (%s%%)", mops(tput), pct(tput, masstreeTput)))
			}
		}
		t.Rows = append(t.Rows, cells)
	}
	runtime.KeepAlive(systems)
	return t
}

func pct(x, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", 100*x/base)
}

// uniformOps fills batches with uniform-popularity single-column gets or
// puts over the record space (the paper's "uniform key popularity" rows).
func uniformOps(records uint64, get bool) func(worker int) func(i int, ops []othersys.Op) {
	return func(worker int) func(i int, ops []othersys.Op) {
		gen := workload.UniformRecordKeys(int64(worker+700), records)
		payload := []byte("8bytedat")
		return func(i int, ops []othersys.Op) {
			for j := range ops {
				k := gen.Next()
				if get {
					ops[j] = othersys.Op{Kind: othersys.OpGet, Key: k, Cols: []int{0}}
				} else {
					ops[j] = othersys.Op{Kind: othersys.OpPut, Key: k,
						Puts: []value.ColPut{{Col: 0, Data: payload}}}
				}
			}
		}
	}
}

// mycsbOps fills batches from a MYCSB source.
func mycsbOps(name string, records uint64) func(worker int) func(i int, ops []othersys.Op) {
	return func(worker int) func(i int, ops []othersys.Op) {
		src, err := ycsb.New(name, records, int64(worker+900))
		if err != nil {
			panic(err)
		}
		return func(i int, ops []othersys.Op) {
			for j := range ops {
				op := src.Next()
				switch op.Kind {
				case ycsb.Read:
					ops[j] = othersys.Op{Kind: othersys.OpGet, Key: op.Key, Cols: ycsb.AllCols}
				case ycsb.Update:
					ops[j] = othersys.Op{Kind: othersys.OpPut, Key: op.Key,
						Puts: []value.ColPut{{Col: op.Col, Data: op.Data}}}
				case ycsb.ScanOp:
					ops[j] = othersys.Op{Kind: othersys.OpScan, Key: op.Key, N: op.ScanLen, Cols: []int{op.Col}}
				}
			}
		}
	}
}
