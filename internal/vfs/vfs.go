// Package vfs is the filesystem seam under the persistence layer (wal and
// checkpoint). Production code runs on OS, a thin veneer over package os;
// tests run on MemFS, an in-memory filesystem that models crash-consistency
// the way a conservative POSIX filesystem behaves:
//
//   - File data written but not fsynced is lost at a crash.
//   - Directory operations (create, rename, remove) are volatile until the
//     directory itself is fsynced (SyncDir); a crash may persist any subset
//     of the un-synced operations, in any combination the test chooses.
//
// Fault wraps any FS and turns every mutating call — write, fsync, rename,
// remove, create, dir-sync — into a numbered crash boundary: arming the
// injector at boundary N makes operation N (and everything after it) fail
// with ErrCrashed, after which the MemFS can produce post-crash disk images
// to recover from. This is the engine behind the crash-point torture tests:
// enumerate the boundaries, kill the store at each one, recover, and check
// the result against a model of acknowledged writes.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// FS is the set of filesystem operations the persistence layer uses.
type FS interface {
	// OpenFile opens name with os.O_* flags. Files are written
	// sequentially (append-style); implementations need not support
	// seeking.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new unique file in dir from pattern, as
	// os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames oldpath to newpath (same directory).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// MkdirAll creates a directory and its parents.
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir forces a directory's entries (renames, creates, removes) to
	// storage. Without it a crash may forget — or arbitrarily reorder —
	// preceding directory operations.
	SyncDir(name string) error
}

// File is an open file handle. Writes always append.
type File interface {
	io.Writer
	// Sync forces written data to storage.
	Sync() error
	Close() error
	Name() string
	// Size returns the file's current length.
	Size() (int64, error)
}

// OS is the production FS, delegating to package os.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error             { return os.Remove(name) }

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }

func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir fsyncs the directory so preceding renames, creates, and removes
// within it are durable. Filesystems that cannot fsync a directory report
// the failure; Linux filesystems support it.
func (OS) SyncDir(name string) error {
	d, err := os.Open(filepath.Clean(name))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

type osFile struct{ f *os.File }

func (o osFile) Write(p []byte) (int, error) { return o.f.Write(p) }
func (o osFile) Sync() error                 { return o.f.Sync() }
func (o osFile) Close() error                { return o.f.Close() }
func (o osFile) Name() string                { return o.f.Name() }

func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// NewOSFile wraps an *os.File as a vfs.File (tests that need to substitute
// a raw descriptor, e.g. a pipe whose Sync fails).
func NewOSFile(f *os.File) File { return osFile{f} }
