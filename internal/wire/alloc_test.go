package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// TestRequestRoundTripAllocFree verifies the scratch-based encode/decode
// path allocates nothing in steady state: requests are framed into a reused
// buffer and parsed back by aliasing it.
func TestRequestRoundTripAllocFree(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: []byte("some-key-1")},
		{Op: OpGet, Key: []byte("some-key-2"), Cols: []int{0, 2}},
		{Op: OpPut, Key: []byte("some-key-3"), Puts: []ColData{{Col: 0, Data: []byte("payload")}, {Col: 1, Data: []byte("more")}}},
		{Op: OpRemove, Key: []byte("some-key-4")},
		{Op: OpGetRange, Key: []byte("some"), N: 10, Cols: []int{1}},
	}
	var enc []byte
	var dec DecodeBuf

	allocs := testing.AllocsPerRun(200, func() {
		out, err := AppendRequests(enc[:0], reqs)
		if err != nil {
			t.Fatal(err)
		}
		enc = out
		body, err := ParseFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseRequests(body, &dec)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(reqs) || string(got[2].Puts[1].Data) != "more" {
			t.Fatalf("bad decode: %+v", got)
		}
	})
	if allocs != 0 {
		t.Fatalf("request round trip allocates %.1f times per run, want 0", allocs)
	}
}

// TestResponseRoundTripAllocFree is the response-side analogue, covering
// the client's DoReuse decode path.
func TestResponseRoundTripAllocFree(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, Cols: [][]byte{[]byte("col0"), []byte("col1")}},
		{Status: StatusNotFound},
		{Status: StatusOK, Version: 42},
		{Status: StatusOK, Pairs: []Pair{
			{Key: []byte("k1"), Cols: [][]byte{[]byte("v1")}},
			{Key: []byte("k2"), Cols: [][]byte{[]byte("v2"), []byte("v2b")}},
		}},
	}
	var enc []byte
	var dec RespDecodeBuf

	allocs := testing.AllocsPerRun(200, func() {
		out, err := AppendResponses(enc[:0], resps)
		if err != nil {
			t.Fatal(err)
		}
		enc = out
		body, err := ParseFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseResponses(body, &dec)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(resps) || string(got[3].Pairs[1].Cols[1]) != "v2b" {
			t.Fatalf("bad decode: %+v", got)
		}
	})
	if allocs != 0 {
		t.Fatalf("response round trip allocates %.1f times per run, want 0", allocs)
	}
}

// TestScratchDecodeMatchesLegacy cross-checks the aliasing decoder against
// the copying one over a stream carrying every request shape.
func TestScratchDecodeMatchesLegacy(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: []byte("alpha")},
		{Op: OpGet, Key: []byte("beta"), Cols: []int{3}},
		{Op: OpPut, Key: []byte("gamma"), Puts: []ColData{{Col: 2, Data: []byte("data-2")}}},
		{Op: OpRemove, Key: []byte("delta")},
		{Op: OpGetRange, Key: []byte("eps"), N: 7},
		{Op: OpStats},
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequests(w, reqs); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	legacy, err := ReadRequests(bufio.NewReader(bytes.NewReader(stream)))
	if err != nil {
		t.Fatal(err)
	}
	var dec DecodeBuf
	scratch, err := ReadRequestsInto(bufio.NewReader(bytes.NewReader(stream)), &dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != len(scratch) {
		t.Fatalf("count mismatch: %d vs %d", len(legacy), len(scratch))
	}
	for i := range legacy {
		a, b := legacy[i], scratch[i]
		if a.Op != b.Op || !bytes.Equal(a.Key, b.Key) || a.N != b.N ||
			len(a.Cols) != len(b.Cols) || len(a.Puts) != len(b.Puts) {
			t.Fatalf("request %d mismatch:\n%+v\n%+v", i, a, b)
		}
		for j := range a.Cols {
			if a.Cols[j] != b.Cols[j] {
				t.Fatalf("request %d col %d mismatch", i, j)
			}
		}
		for j := range a.Puts {
			if a.Puts[j].Col != b.Puts[j].Col || !bytes.Equal(a.Puts[j].Data, b.Puts[j].Data) {
				t.Fatalf("request %d put %d mismatch", i, j)
			}
		}
	}
}

// TestDecodeBufReuse verifies that consecutive messages through one
// DecodeBuf don't bleed state into each other (stale Cols/Puts/N fields).
func TestDecodeBufReuse(t *testing.T) {
	var dec DecodeBuf
	first := []Request{
		{Op: OpPut, Key: []byte("a"), Puts: []ColData{{Col: 0, Data: []byte("x")}}},
		{Op: OpGetRange, Key: []byte("b"), N: 9, Cols: []int{1, 2}},
	}
	second := []Request{
		{Op: OpGet, Key: []byte("c")},
		{Op: OpRemove, Key: []byte("d")},
	}
	for _, batch := range [][]Request{first, second, first} {
		enc, err := AppendRequests(nil, batch)
		if err != nil {
			t.Fatal(err)
		}
		body, err := ParseFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseRequests(body, &dec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch {
			want := batch[i]
			if got[i].Op != want.Op || !bytes.Equal(got[i].Key, want.Key) ||
				got[i].N != want.N || len(got[i].Cols) != len(want.Cols) || len(got[i].Puts) != len(want.Puts) {
				t.Fatalf("batch reuse: request %d decoded as %+v, want %+v", i, got[i], want)
			}
		}
	}
}

// TestForgedCountRejected sends a frame whose batch count is wildly larger
// than the body could hold; the decoders must reject it before sizing any
// buffer (a forged count must not amplify a tiny frame into a huge
// allocation).
func TestForgedCountRejected(t *testing.T) {
	body := []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6, 7, 8}
	var dec DecodeBuf
	if _, err := ParseRequests(body, &dec); err == nil {
		t.Fatal("ParseRequests accepted a forged request count")
	}
	var rdec RespDecodeBuf
	if _, err := ParseResponses(body, &rdec); err == nil {
		t.Fatal("ParseResponses accepted a forged response count")
	}
	frame := append([]byte{byte(len(body)), 0, 0, 0}, body...)
	if _, err := ReadRequests(bufio.NewReader(bytes.NewReader(frame))); err == nil {
		t.Fatal("ReadRequests accepted a forged request count")
	}
	if _, err := ReadResponses(bufio.NewReader(bytes.NewReader(frame))); err == nil {
		t.Fatal("ReadResponses accepted a forged response count")
	}
}
