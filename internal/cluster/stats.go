package cluster

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// clusterCounters are the cluster-side health counters, all monotonic.
type clusterCounters struct {
	failovers    atomic.Uint64 // idempotent reads retried on the ring successor
	hedges       atomic.Uint64 // hedged second attempts launched
	hedgeWins    atomic.Uint64 // hedges whose answer arrived first
	splitBatches atomic.Uint64 // Do/GetBatch/PutBatch calls spanning >1 shard
}

// NodeStats is one node's health as the cluster sees it.
type NodeStats struct {
	Addr  string
	State int32 // NodeUp / NodeDown / NodeProbing
	Trips uint64
	// DownFor is how long the node has been non-Up (0 when Up) — the
	// operator's "how stale is this shard" number.
	DownFor time.Duration
}

// Stats is the cluster's aggregate client-side health snapshot.
type Stats struct {
	Nodes        []NodeStats
	Failovers    uint64
	Hedges       uint64
	HedgeWins    uint64
	SplitBatches uint64
}

// ClusterStats snapshots per-node health and the cluster counters. Purely
// local: no network I/O.
func (c *Cluster) ClusterStats() Stats {
	s := Stats{
		Failovers:    c.stats.failovers.Load(),
		Hedges:       c.stats.hedges.Load(),
		HedgeWins:    c.stats.hedgeWins.Load(),
		SplitBatches: c.stats.splitBatches.Load(),
	}
	for _, n := range c.nodes {
		ns := NodeStats{Addr: n.addr, State: n.state.Load(), Trips: n.trips.Load()}
		if ns.State != NodeUp {
			n.mu.Lock()
			if !n.downSince.IsZero() {
				ns.DownFor = time.Since(n.downSince)
			}
			n.mu.Unlock()
		}
		s.Nodes = append(s.Nodes, ns)
	}
	return s
}

// StatsAggregate fans an OpStats out to every reachable node and returns
// the numeric server metrics summed across nodes, plus the cluster-side
// view: node<i>_state (numeric, 0/1/2 — same all-numeric rule as
// breaker_state, so integer-parsing consumers never break; see
// stats_compat_test.go's precedent), nodes_up, nodes_total, stats_partial,
// failovers, hedges, hedge_wins, split_batches, and the client-observed
// per-node RPC latency (node<i>_rpc_count/_p50/_p99 plus merged lat_rpc_*
// keys). Down nodes contribute only their state; the call fails only if
// every node is unreachable.
//
// Two aggregation rules matter here. First, histogram-derived keys cannot
// be summed like counters — adding two p99s is meaningless — so after the
// summing pass the quantile and count keys are rebuilt from the summed
// lat_*_b<i> bucket keys (obs.RecomputeQuantiles): the aggregate p99 is the
// p99 of the merged distribution, not an average of per-node quantiles.
// Second, a partial aggregate is *labeled*, never silently passed off as a
// cluster total: stats_partial reports how many nodes did not contribute
// (down, or failing mid-aggregate), so a consumer reading "keys" while a
// shard is dark knows the number undercounts rather than concluding the
// shard holds zero keys.
func (c *Cluster) StatsAggregate() (map[string]int64, error) {
	out := map[string]int64{}
	reachable := 0
	var lastErr error
	for i, n := range c.nodes {
		out[fmt.Sprintf("node%d_state", i)] = int64(n.state.Load())
		if n.state.Load() != NodeUp {
			continue
		}
		resps, err := c.exec(n, []wire.Request{{Op: wire.OpStats}})
		if err != nil {
			lastErr = err
			continue
		}
		reachable++
		for _, pair := range resps[0].Pairs {
			if v, ok := parseInt(pair.Cols[0]); ok {
				out[string(pair.Key)] += v
			}
			// Non-numeric metrics (flush_last_error) are per-node strings;
			// summing is meaningless, so the aggregate view skips them —
			// the same "numeric only" contract client.Conn.Stats applies.
		}
	}
	if reachable == 0 {
		if lastErr == nil {
			lastErr = fmt.Errorf("%w (all nodes)", ErrNodeDown)
		}
		return nil, lastErr
	}
	obs.RecomputeQuantiles(out)
	out["nodes_up"] = int64(reachable)
	out["nodes_total"] = int64(len(c.nodes))
	out["stats_partial"] = int64(len(c.nodes) - reachable)
	out["failovers"] = int64(c.stats.failovers.Load())
	out["hedges"] = int64(c.stats.hedges.Load())
	out["hedge_wins"] = int64(c.stats.hedgeWins.Load())
	out["split_batches"] = int64(c.stats.splitBatches.Load())
	// Client-observed RPC latency: merged keys under the lat_ prefix (the
	// same shape as server histograms) and per-node quantiles from the
	// node-sharded histogram.
	for _, st := range obs.AppendStats(nil, c.rpcHist.Snapshot()) {
		out[st.Name] = st.Value
	}
	for i := range c.nodes {
		ns := c.rpcHist.ShardSnapshot(i)
		out[fmt.Sprintf("node%d_rpc_count", i)] = int64(ns.Count())
		out[fmt.Sprintf("node%d_rpc_p50", i)] = int64(ns.Quantile(0.50))
		out[fmt.Sprintf("node%d_rpc_p99", i)] = int64(ns.Quantile(0.99))
	}
	return out, nil
}

// parseInt is a minimal base-10 signed parse over raw stat bytes.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, false
		}
	}
	var v int64
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		v = v*10 + int64(b[i]-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}
