package vfs

import (
	"errors"
	"io/fs"
	"os"
	"testing"
)

func writeFile(t *testing.T, m FS, name, data string, sync bool) {
	t.Helper()
	f, err := m.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func newDir(t *testing.T) *MemFS {
	t.Helper()
	m := NewMemFS()
	if err := m.MkdirAll("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemFSUnsyncedDataLostAtCrash(t *testing.T) {
	m := newDir(t)
	writeFile(t, m, "/data/a", "hello", true)
	if err := m.SyncDir("/data"); err != nil {
		t.Fatal(err)
	}
	// Append more without syncing.
	f, _ := m.OpenFile("/data/a", os.O_WRONLY, 0)
	f.Write([]byte(" world"))
	f.Close()
	m.Crash(nil)
	b, err := m.ReadFile("/data/a")
	if err != nil || string(b) != "hello" {
		t.Fatalf("after crash: %q, %v (want synced prefix only)", b, err)
	}
}

func TestMemFSCreateNotDurableWithoutDirSync(t *testing.T) {
	m := newDir(t)
	writeFile(t, m, "/data/a", "hello", true) // file data synced, dir not
	m.Crash(nil)
	if _, err := m.ReadFile("/data/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("file created without dir sync survived crash: %v", err)
	}
}

func TestMemFSRenameRollsBackWithoutDirSync(t *testing.T) {
	m := newDir(t)
	writeFile(t, m, "/data/tmp1", "v", true)
	if err := m.SyncDir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("/data/tmp1", "/data/final"); err != nil {
		t.Fatal(err)
	}
	m.Crash(nil)
	if _, err := m.ReadFile("/data/final"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("un-synced rename survived crash")
	}
	if b, err := m.ReadFile("/data/tmp1"); err != nil || string(b) != "v" {
		t.Fatalf("old name lost: %q, %v", b, err)
	}
}

func TestMemFSCrashCanPersistAnySubset(t *testing.T) {
	// The dangerous POSIX reality: a crash may persist a later remove while
	// forgetting an earlier rename.
	m := newDir(t)
	writeFile(t, m, "/data/log", "records", true)
	if err := m.SyncDir("/data"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, m, "/data/ckpt.tmp", "ckpt", true)
	if err := m.Rename("/data/ckpt.tmp", "/data/ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("/data/log"); err != nil {
		t.Fatal(err)
	}
	img := m.Clone()
	img.Crash(func(op DirOp) bool { return op.Kind == DirRemove })
	if _, err := img.ReadFile("/data/log"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("remove selected by the crash predicate did not persist")
	}
	if _, err := img.ReadFile("/data/ckpt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("rename not selected by the crash predicate persisted anyway")
	}
	// The conservative image of the same pre-crash state keeps the log.
	m.Crash(nil)
	if b, err := m.ReadFile("/data/log"); err != nil || string(b) != "records" {
		t.Fatalf("conservative image lost the log: %q, %v", b, err)
	}
}

func TestMemFSSyncDirMakesOpsDurable(t *testing.T) {
	m := newDir(t)
	writeFile(t, m, "/data/a", "v1", true)
	if err := m.Rename("/data/a", "/data/b"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("/data"); err != nil {
		t.Fatal(err)
	}
	if n := len(m.PendingOps()); n != 0 {
		t.Fatalf("%d ops still pending after SyncDir", n)
	}
	m.Crash(nil)
	if b, err := m.ReadFile("/data/b"); err != nil || string(b) != "v1" {
		t.Fatalf("synced rename lost: %q, %v", b, err)
	}
}

func TestMemFSHandleStaleAfterCrash(t *testing.T) {
	m := newDir(t)
	f, err := m.OpenFile("/data/a", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	m.Crash(nil)
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write through pre-crash handle succeeded")
	}
}

func TestMemFSDurableEntryNeverSyncedContentIsEmpty(t *testing.T) {
	m := newDir(t)
	writeFile(t, m, "/data/log", "unsynced bytes", false)
	if err := m.SyncDir("/data"); err != nil { // entry durable, content not
		t.Fatal(err)
	}
	m.Crash(nil)
	b, err := m.ReadFile("/data/log")
	if err != nil || len(b) != 0 {
		t.Fatalf("never-synced file content after crash: %q, %v (want empty)", b, err)
	}
}

func TestFaultCrashAtEachBoundary(t *testing.T) {
	workload := func(m FS) error {
		f, err := m.OpenFile("/data/a", os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("x")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := m.Rename("/data/a", "/data/b"); err != nil {
			return err
		}
		return m.SyncDir("/data")
	}
	// Count pass.
	fault := NewFault(newDir(t))
	if err := workload(fault); err != nil {
		t.Fatal(err)
	}
	total := fault.Ops()
	if total != 4 { // create, write, sync, rename, syncdir minus... create+write+sync+rename+syncdir = 5
		t.Logf("boundaries: %v", fault.Trace())
	}
	if total < 4 {
		t.Fatalf("expected >= 4 boundaries, got %d", total)
	}
	for i := 1; i <= total; i++ {
		mem := newDir(t)
		fault := NewFault(mem)
		fault.CrashAt(i)
		err := workload(fault)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashAt=%d: err = %v, want ErrCrashed", i, err)
		}
		if !fault.Crashed() {
			t.Fatalf("crashAt=%d: not latched", i)
		}
		// Post-crash: everything fails.
		if _, err := fault.ReadFile("/data/a"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashAt=%d: read after crash: %v", i, err)
		}
		mem.Crash(nil)
		// The conservative image never contains the un-committed rename.
		if _, err := mem.ReadFile("/data/b"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("crashAt=%d: rename leaked into conservative image: %v", i, err)
		}
	}
}

func TestFaultSkipDirSyncs(t *testing.T) {
	mem := newDir(t)
	fault := NewFault(mem)
	fault.SkipDirSyncs = true
	writeFile(t, fault, "/data/a", "v", true)
	if err := fault.SyncDir("/data"); err != nil {
		t.Fatal(err)
	}
	if n := len(mem.PendingOps()); n != 1 {
		t.Fatalf("SkipDirSyncs: %d pending ops, want 1 (create still volatile)", n)
	}
}

func TestOSFSSmoke(t *testing.T) {
	dir := t.TempDir()
	var o OS
	f, err := o.CreateTemp(dir, "t-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz, err := f.Size(); err != nil || sz != 3 {
		t.Fatalf("size %d, %v", sz, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Rename(f.Name(), dir+"/final"); err != nil {
		t.Fatal(err)
	}
	if err := o.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	b, err := o.ReadFile(dir + "/final")
	if err != nil || string(b) != "abc" {
		t.Fatalf("%q %v", b, err)
	}
	ents, err := o.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("%v %v", ents, err)
	}
	if err := o.Remove(dir + "/final"); err != nil {
		t.Fatal(err)
	}
}
