// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against expectations written in the fixtures, in
// the manner of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live in testdata/src/<importpath>/ next to the analyzer's test.
// A line that should be flagged carries a trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// with one regexp per expected diagnostic on that line (quoted or
// backquoted). Diagnostics and expectations must match one-to-one: an
// unmatched diagnostic and an unsatisfied expectation are both test
// failures. Findings suppressed by a well-formed //lint:allow are dropped
// before matching, so suppression fixtures simply carry no want.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run loads the fixture packages at testdata/src/<path> for each path,
// applies the analyzer, and reports any mismatch between its diagnostics
// and the fixtures' want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := load.Fixture("testdata/src", ".", paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}

	// Fixtures need not mimic repository import paths: bypass the filter.
	unscoped := *a
	unscoped.Packages = nil
	findings := analysis.Run(pkgs, []*analysis.Analyzer{&unscoped})

	wants := collectWants(t, pkgs)
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		if !wants.match(f) {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s: no diagnostic matched want %q", w.pos, w.re)
	}
}

type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

type wantSet struct {
	byFileLine map[string]map[int][]*want
}

func (s wantSet) match(f analysis.Finding) bool {
	for _, w := range s.byFileLine[f.Pos.Filename][f.Pos.Line] {
		if !w.matched && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (s wantSet) unmatched() []*want {
	var out []*want
	for _, lines := range s.byFileLine {
		for _, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					out = append(out, w)
				}
			}
		}
	}
	return out
}

func collectWants(t *testing.T, pkgs []*analysis.Package) wantSet {
	t.Helper()
	s := wantSet{byFileLine: map[string]map[int][]*want{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, expr := range splitWant(rest) {
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
						}
						lines := s.byFileLine[pos.Filename]
						if lines == nil {
							lines = map[int][]*want{}
							s.byFileLine[pos.Filename] = lines
						}
						lines[pos.Line] = append(lines[pos.Line], &want{pos: pos, re: re})
					}
				}
			}
		}
	}
	return s
}

// splitWant parses the space-separated quoted or backquoted regexps of a
// want comment.
func splitWant(text string) []string {
	var out []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
				end++
			}
			if end >= len(rest) {
				return append(out, rest) // unterminated: surface as a bad regexp
			}
			if s, err := strconv.Unquote(rest[:end+1]); err == nil {
				out = append(out, s)
			} else {
				out = append(out, rest[:end+1])
			}
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return append(out, rest)
			}
			out = append(out, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return out // trailing prose after the regexps: ignore
		}
	}
	return out
}
