package core

import (
	"bytes"
	"unsafe"

	"repro/internal/value"
)

// PutBatchInto applies read-modify-writes to many keys in one call — the
// write-path counterpart of GetBatchInto (§4.8's PALM-style batching).
// Keys are processed in tree order so consecutive descents share the upper
// trie and B+-tree levels' cache lines, and — the part a sorted get batch
// cannot do — every maximal run of batch keys that resolves to the same
// border node is applied under a single acquisition of that node's lock,
// amortizing the lock word's cache-line bounce across the run.
//
// apply is called once per key, under the owning border node's lock, with
// the key's original batch index and its current value (nil if absent), and
// returns the value to store — exactly Apply's contract (§4.7): returning
// nil declines the write and leaves the key untouched (conditional puts),
// so multi-column puts stay atomic and version assignment or version
// comparison can happen under the lock (§5). Duplicate keys in one batch
// are applied in input order (BatchScratch.order breaks slice ties by input
// index).
func (t *Tree) PutBatchInto(keys [][]byte, sc *BatchScratch, apply func(i int, old *value.Value) *value.Value) {
	if len(keys) == 0 {
		return
	}
	sc.order(keys)
	for pos := 0; pos < len(keys); {
		pos = t.putRun(keys, sc.idx, pos, apply)
	}
}

// putRun performs the put for keys[idx[pos]] — the same descend/lock/chase
// protocol as put — and then, while the border node lock is still held,
// greedily applies subsequent batch keys that fall into the same node (see
// extendRun). Returns the position after the last key applied.
func (t *Tree) putRun(keys [][]byte, idx []int, pos int, apply func(int, *value.Value) *value.Value) int {
	key := keys[idx[pos]]
restart:
	root := t.rootHeader()
	k := key
	depth := 0
	for {
		slice := keySlice(k)
		ord := keyOrd(k)
		n := t.lockBorder(root, slice)
		if n == nil {
			goto restart
		}
		perm := n.perm()
		rank, found := n.searchRank(perm, slice, ord)
		if found {
			slot := perm.slot(rank)
			switch kl := n.keylen[slot].Load(); kl {
			case klLayer:
				lvp := n.loadLV(slot)
				n.h.unlock()
				root = t.resolveLayer(n, slot, lvp)
				k = k[8:]
				depth++
				continue
			case klSuffix:
				var suf []byte
				if sp := n.suffix[slot].Load(); sp != nil {
					suf = *sp
				}
				if bytes.Equal(suf, k[8:]) {
					old := (*value.Value)(n.loadLV(slot))
					if v := apply(idx[pos], old); v != nil {
						n.storeLV(slot, unsafe.Pointer(v))
					}
					return t.extendRun(n, keys, idx, pos+1, depth, key, apply)
				}
				// Conflicting suffix: push the old key one layer down
				// (§4.6.3), then continue inserting into the new layer.
				layer := t.makeLayer(n, slot, suf)
				n.h.unlock()
				root = layer
				k = k[8:]
				depth++
				continue
			case klUnstable:
				panic("core: unstable slot observed under lock")
			default:
				old := (*value.Value)(n.loadLV(slot))
				if v := apply(idx[pos], old); v != nil {
					n.storeLV(slot, unsafe.Pointer(v))
				}
				return t.extendRun(n, keys, idx, pos+1, depth, key, apply)
			}
		}
		// Key absent: insert it — unless apply declines (conditional writes).
		stored := apply(idx[pos], nil)
		if stored == nil {
			return t.extendRun(n, keys, idx, pos+1, depth, key, apply)
		}
		if perm.count() < width {
			t.insertSlot(n, perm, rank, slice, k, stored)
			t.count.Add(1)
			return t.extendRun(n, keys, idx, pos+1, depth, key, apply)
		}
		t.splitInsert(n, rank, slice, k, stored) // unlocks
		t.count.Add(1)
		return pos + 1
	}
}

// extendRun applies batch keys starting at idx[pos] to the locked border
// node n while they keep resolving to it, then unlocks and returns the next
// unprocessed position. prev is the previous key applied, whose leading
// depth*8 bytes are the trie prefix that routed the descent to n's layer.
//
// A key extends the run only if it (a) shares that prefix (so it descends
// to the same layer), (b) falls inside n's key range — lowkey(n) <= slice,
// and n's next sibling does not own the slice — and (c) needs neither a
// layer descent, a suffix push-down, nor a split. Anything else ends the
// run; the key is handled by its own fresh descent, which keeps this loop
// free of nested locking (no deadlock: at most one node lock is ever held).
//
//masstree:unlocks n
func (t *Tree) extendRun(n *borderNode, keys [][]byte, idx []int, pos int, depth int, prev []byte, apply func(int, *value.Value) *value.Value) int {
	prefix := prev[:8*depth]
	for pos < len(idx) {
		full := keys[idx[pos]]
		// Keys at this trie depth must be longer than the consumed prefix: an
		// equal-length key would have been stored inline a layer up.
		if len(full) <= len(prefix) || !bytes.Equal(full[:len(prefix)], prefix) {
			break
		}
		k := full[len(prefix):]
		slice := keySlice(k)
		ord := keyOrd(k)
		if !n.keyGEqLowkey(slice) {
			break
		}
		if next := n.next.Load(); next != nil && next.keyGEqLowkey(slice) {
			break
		}
		perm := n.perm()
		rank, found := n.searchRank(perm, slice, ord)
		if found {
			slot := perm.slot(rank)
			switch kl := n.keylen[slot].Load(); kl {
			case klSuffix:
				var suf []byte
				if sp := n.suffix[slot].Load(); sp != nil {
					suf = *sp
				}
				if !bytes.Equal(suf, k[8:]) {
					goto done // needs a push-down; new descent handles it
				}
				old := (*value.Value)(n.loadLV(slot))
				if v := apply(idx[pos], old); v != nil {
					n.storeLV(slot, unsafe.Pointer(v))
				}
			case klLayer:
				goto done // needs a layer descent
			case klUnstable:
				panic("core: unstable slot observed under lock")
			default:
				old := (*value.Value)(n.loadLV(slot))
				if v := apply(idx[pos], old); v != nil {
					n.storeLV(slot, unsafe.Pointer(v))
				}
			}
		} else {
			if perm.count() >= width {
				goto done // needs a split
			}
			if stored := apply(idx[pos], nil); stored != nil {
				t.insertSlot(n, perm, rank, slice, k, stored)
				t.count.Add(1)
			}
		}
		pos++
	}
done:
	n.h.unlock()
	return pos
}

// PutBatch is PutBatchInto with an internal scratch, updating each key with
// f under its border node's lock. Hot paths should hold a BatchScratch and
// call PutBatchInto.
func (t *Tree) PutBatch(keys [][]byte, f func(i int, old *value.Value) *value.Value) {
	var sc BatchScratch
	t.PutBatchInto(keys, &sc, f)
}
