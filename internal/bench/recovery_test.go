package bench

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/kvstore"
)

// BenchmarkRecoveryRestart measures restart time — checkpoint load plus log
// replay — against a store checkpointed with T parts (§5: recovery must be
// as parallel as the run-time path or it becomes the availability
// bottleneck). The store holds MASSTREE_RECOVERY_KEYS keys (default 60k for
// CI smoke; the recorded BENCH_recovery.json run uses 500k) with a 10% log
// tail beyond the checkpoint.
//
//	MASSTREE_RECOVERY_KEYS=500000 go test -run '^$' -bench RecoveryRestart ./internal/bench
func BenchmarkRecoveryRestart(b *testing.B) {
	keys := 60_000
	if v := os.Getenv("MASSTREE_RECOVERY_KEYS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			keys = n
		}
	}
	for _, parts := range []int{1, 8} {
		b.Run(fmt.Sprintf("keys=%d/parts=%d", keys, parts), func(b *testing.B) {
			dir := b.TempDir()
			cfg := kvstore.Config{Dir: dir, Workers: 4, MaintainEvery: -1, CheckpointParts: parts}
			s, err := kvstore.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < keys; i++ {
				k := []byte(fmt.Sprintf("user%012d", i*7))
				s.PutSimple(i%4, k, k)
			}
			if _, _, err := s.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < keys/10; i++ {
				k := []byte(fmt.Sprintf("user%012d", i*7))
				s.PutSimple(i%4, k, append([]byte("u-"), k...))
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := kvstore.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if r.Len() != keys {
					b.Fatalf("recovered %d keys, want %d", r.Len(), keys)
				}
				b.StopTimer()
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
