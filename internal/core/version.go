package core

import "runtime"

// Version word layout (paper Figure 3). A node's version is a single 64-bit
// word manipulated with atomic operations:
//
//	bit 0   locked     — claimed by update or insert
//	bit 1   inserting  — dirty: an insert is creating intermediate state
//	bit 2   splitting  — dirty: a split/remove is creating intermediate state
//	bit 3   deleted    — node has been removed from the tree
//	bit 4   isroot     — node is the root of some B+-tree (trie layer)
//	bit 5   isborder   — node is a border (leaf) node, not interior
//	6..21   vinsert    — counter incremented after each insert
//	22..63  vsplit     — counter incremented after each split
//
// Readers snapshot a node's version before reading its contents and compare
// after; a dirty or changed version forces a retry (§4.6). The paper notes a
// 32-bit counter could wrap if a reader blocked for 2^22 inserts; we use
// 64 bits, which never wraps in practice.
const (
	lockBit      uint64 = 1 << 0
	insertingBit uint64 = 1 << 1
	splittingBit uint64 = 1 << 2
	deletedBit   uint64 = 1 << 3
	rootBit      uint64 = 1 << 4
	borderBit    uint64 = 1 << 5

	dirtyMask = insertingBit | splittingBit

	vinsertShift        = 6
	vinsertBits         = 16
	vinsertMask  uint64 = ((1 << vinsertBits) - 1) << vinsertShift
	vinsertOne   uint64 = 1 << vinsertShift

	vsplitShift        = vinsertShift + vinsertBits
	vsplitOne   uint64 = 1 << vsplitShift
	vsplitMask  uint64 = ^uint64(0) &^ (vsplitOne - 1)
)

func isLocked(v uint64) bool  { return v&lockBit != 0 }
func isDirty(v uint64) bool   { return v&dirtyMask != 0 }
func isDeleted(v uint64) bool { return v&deletedBit != 0 }
func isRoot(v uint64) bool    { return v&rootBit != 0 }
func isBorder(v uint64) bool  { return v&borderBit != 0 }
func vsplit(v uint64) uint64  { return v & vsplitMask }
func vinsert(v uint64) uint64 { return v & vinsertMask }

// changed reports whether two version snapshots differ in anything but the
// lock bit. This is the "n.version ⊕ v > locked" test of Figures 6 and 7.
func changed(v1, v2 uint64) bool { return (v1^v2)&^lockBit != 0 }

// stable spins until the version is not dirty and returns the snapshot
// (Figure 4, stableversion). Spinning is bounded by the shortness of the
// writer's critical section; we yield the processor periodically so a
// descheduled writer can finish.
func (h *nodeHeader) stable() uint64 {
	for spins := 0; ; spins++ {
		v := h.version.Load()
		if !isDirty(v) {
			return v
		}
		if spins%128 == 127 {
			runtime.Gosched()
		}
	}
}

// lock acquires the node's spinlock (Figure 4). The caller must eventually
// call unlock. Locking a deleted node succeeds; callers must check the
// deleted bit after acquiring the lock.
func (h *nodeHeader) lock() {
	for spins := 0; ; spins++ {
		v := h.version.Load()
		if !isLocked(v) && h.version.CompareAndSwap(v, v|lockBit) {
			return
		}
		if spins%128 == 127 {
			runtime.Gosched()
		}
	}
}

// tryLock attempts a single lock acquisition and reports success.
func (h *nodeHeader) tryLock() bool {
	v := h.version.Load()
	return !isLocked(v) && h.version.CompareAndSwap(v, v|lockBit)
}

// unlock releases the lock, incrementing vsplit if the splitting bit is set,
// else vinsert if the inserting bit is set, and clearing all three bits in a
// single atomic store (Figure 4: "implemented with one memory write").
// The caller must hold the lock.
func (h *nodeHeader) unlock() {
	v := h.version.Load()
	if v&splittingBit != 0 {
		v += vsplitOne // top field: overflow wraps harmlessly
	} else if v&insertingBit != 0 {
		v = (v &^ vinsertMask) | ((v + vinsertOne) & vinsertMask)
	}
	v &^= lockBit | insertingBit | splittingBit
	h.version.Store(v)
}

// The mark* helpers set state bits; the caller must hold the node lock.

//masstree:locked h
func (h *nodeHeader) markInserting() { h.version.Store(h.version.Load() | insertingBit) }

//masstree:locked h
func (h *nodeHeader) markSplitting() { h.version.Store(h.version.Load() | splittingBit) }

//masstree:locked h
func (h *nodeHeader) markDeleted() { h.version.Store(h.version.Load() | deletedBit) }

//masstree:locked h
func (h *nodeHeader) setRoot() { h.version.Store(h.version.Load() | rootBit) }

//masstree:locked h
func (h *nodeHeader) clearRoot() { h.version.Store(h.version.Load() &^ rootBit) }

// initVersion writes a freshly allocated node's initial version word. The
// node is private to its constructor, so this is the one version write that
// needs no lock; keeping it here preserves the invariant that version bits
// change only in this file.
func (h *nodeHeader) initVersion(v uint64) { h.version.Store(v) }
