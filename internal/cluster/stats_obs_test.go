package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
)

// TestStatsAggregatePartialOnNodeDown pins the partial-aggregate contract:
// when a node is Down mid-aggregate, its metrics are *absent* from the sums
// and the aggregate says so (stats_partial, nodes_up vs nodes_total) —
// never summed in as zero, which would let a consumer read "keys" during an
// outage and conclude the dark shard holds nothing.
func TestStatsAggregatePartialOnNodeDown(t *testing.T) {
	nodes := startNodes(t, 2)
	cl := newCluster(t, fastConfig(addrsOf(nodes)))

	// Seed each store directly so per-node key counts are known regardless
	// of ring placement: node0 holds 5 keys, node1 holds 3.
	for i := 0; i < 5; i++ {
		nodes[0].store.PutSimple(0, []byte(fmt.Sprintf("n0-key-%d", i)), []byte("v"))
	}
	for i := 0; i < 3; i++ {
		nodes[1].store.PutSimple(0, []byte(fmt.Sprintf("n1-key-%d", i)), []byte("v"))
	}

	full, err := cl.StatsAggregate()
	if err != nil {
		t.Fatal(err)
	}
	if full["keys"] != 8 {
		t.Fatalf("full aggregate keys=%d, want 8", full["keys"])
	}
	if full["stats_partial"] != 0 || full["nodes_up"] != 2 || full["nodes_total"] != 2 {
		t.Fatalf("full aggregate mislabeled: partial=%d up=%d total=%d",
			full["stats_partial"], full["nodes_up"], full["nodes_total"])
	}

	// Take node1 down: kill its server and trip the breaker directly (the
	// failover tests cover organic tripping; this test is about what the
	// aggregate reports once the node *is* down).
	nodes[1].srv.Close()
	cl.nodes[1].mu.Lock()
	cl.nodes[1].downSince = time.Now()
	cl.nodes[1].downUntil = time.Now().Add(time.Hour) // keep probes away
	cl.nodes[1].mu.Unlock()
	cl.nodes[1].state.Store(NodeDown)

	partial, err := cl.StatsAggregate()
	if err != nil {
		t.Fatalf("aggregate with one node up failed: %v", err)
	}
	if partial["keys"] != 5 {
		t.Fatalf("partial aggregate keys=%d, want node0's 5 (node1 absent, not zero-summed)", partial["keys"])
	}
	if partial["stats_partial"] != 1 {
		t.Fatalf("stats_partial=%d with a node down, want 1", partial["stats_partial"])
	}
	if partial["nodes_up"] != 1 || partial["nodes_total"] != 2 {
		t.Fatalf("nodes_up=%d nodes_total=%d, want 1/2", partial["nodes_up"], partial["nodes_total"])
	}
	if partial["node1_state"] != int64(NodeDown) {
		t.Fatalf("node1_state=%d, want %d (down)", partial["node1_state"], NodeDown)
	}
	// The trip was forced without feedback, so no EvNodeDown is expected —
	// but the recorder must still be live and dumpable.
	if cl.Recorder() == nil {
		t.Fatal("cluster recorder is nil")
	}
}

// TestStatsAggregateRecomputesQuantiles pins the histogram merge rule: the
// aggregate's lat_* quantiles must equal the quantiles of the *merged*
// distribution (buckets summed across nodes, then re-derived), byte-for-
// byte what RecomputeQuantiles produces from the per-node stats — never a
// sum or average of per-node quantiles.
func TestStatsAggregateRecomputesQuantiles(t *testing.T) {
	nodes := startNodes(t, 2)
	cl := newCluster(t, fastConfig(addrsOf(nodes)))

	// Drive timed ops through the cluster until both nodes have recorded
	// get latencies (the ring decides placement, so spray keys).
	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("q-key-%03d", i))
		if _, err := cl.PutSimple(key, []byte("quantile-value")); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := cl.Get(key, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Quiesced: rebuild the expected merged histogram by summing the two
	// nodes' numeric stats maps and recomputing, exactly as an external
	// aggregator would.
	want := map[string]int64{}
	perNodeCounts := make([]int64, 2)
	for i, n := range nodes {
		conn, err := client.DialConn(n.addr)
		if err != nil {
			t.Fatal(err)
		}
		m, err := conn.Stats()
		conn.Close()
		if err != nil {
			t.Fatal(err)
		}
		perNodeCounts[i] = m["lat_get_count"]
		if perNodeCounts[i] == 0 {
			t.Fatalf("node %d recorded no gets; ring never routed there", i)
		}
		for k, v := range m {
			want[k] += v
		}
	}
	obs.RecomputeQuantiles(want)

	got, err := cl.StatsAggregate()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"lat_get_count", "lat_get_sum",
		"lat_get_p50", "lat_get_p90", "lat_get_p99", "lat_get_p999"} {
		if got[k] != want[k] {
			t.Errorf("%s=%d, merged-distribution value is %d", k, got[k], want[k])
		}
	}
	if got["lat_get_count"] != perNodeCounts[0]+perNodeCounts[1] {
		t.Errorf("lat_get_count=%d, want %d+%d", got["lat_get_count"], perNodeCounts[0], perNodeCounts[1])
	}
	// Client-observed RPC latency rides along, per node and merged.
	if got["node0_rpc_count"] == 0 || got["node1_rpc_count"] == 0 {
		t.Errorf("per-node rpc counts missing: n0=%d n1=%d", got["node0_rpc_count"], got["node1_rpc_count"])
	}
	if got["lat_rpc_count"] != got["node0_rpc_count"]+got["node1_rpc_count"] {
		t.Errorf("merged rpc count %d != per-node parts %d+%d",
			got["lat_rpc_count"], got["node0_rpc_count"], got["node1_rpc_count"])
	}
	if got["lat_rpc_p50"] == 0 {
		t.Errorf("lat_rpc_p50=0 after %d RPCs", got["lat_rpc_count"])
	}
}
