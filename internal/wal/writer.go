package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Writer is one worker's log: an in-memory buffer plus a file, written out
// by a background logging goroutine (§5). A put appends to the buffer and
// returns; the flusher batches appends to exploit sequential device
// bandwidth and forces the log to storage at least every FlushInterval.
type Writer struct {
	dir    string
	worker int
	sync   bool

	mu     sync.Mutex
	buf    []byte
	f      *os.File
	gen    uint64
	closed bool

	flushCh chan struct{} // kicks the flusher
	done    chan struct{}
	wg      sync.WaitGroup
}

// DefaultFlushInterval is the paper's 200 ms group-commit bound.
const DefaultFlushInterval = 200 * time.Millisecond

// newWriter opens (creating or appending) the generation-gen log file for a
// worker.
func newWriter(dir string, worker int, gen uint64, syncWrites bool, flushEvery time.Duration) (*Writer, error) {
	w := &Writer{
		dir:     dir,
		worker:  worker,
		sync:    syncWrites,
		gen:     gen,
		flushCh: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if err := w.openFile(); err != nil {
		return nil, err
	}
	w.wg.Add(1)
	go w.flushLoop(flushEvery)
	return w, nil
}

// LogFileName names worker w's generation-g log file.
func LogFileName(worker int, gen uint64) string {
	return fmt.Sprintf("log-%04d.%06d.wal", worker, gen)
}

func (w *Writer) openFile() error {
	path := filepath.Join(w.dir, LogFileName(w.worker, w.gen))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if st.Size() == 0 {
		if _, err := f.Write(fileMagic); err != nil {
			f.Close()
			return err
		}
	}
	w.f = f
	return nil
}

// Append queues a record in the log buffer. It does not block on storage;
// durability arrives with the next flush (group commit).
func (w *Writer) Append(r *Record) {
	w.mu.Lock()
	w.buf = appendRecord(w.buf, r)
	big := len(w.buf) >= 1<<20
	w.mu.Unlock()
	if big {
		select {
		case w.flushCh <- struct{}{}:
		default:
		}
	}
}

// Flush writes the buffer to the file and, when sync is enabled, forces it
// to storage.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *Writer) flushLocked() error {
	if len(w.buf) == 0 || w.f == nil {
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

func (w *Writer) flushLoop(every time.Duration) {
	defer w.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.Flush()
		case <-w.flushCh:
			w.Flush()
		case <-w.done:
			return
		}
	}
}

// Rotate flushes and switches the writer to generation gen. Used at
// checkpoint start so pre-checkpoint log files can be reclaimed once the
// checkpoint is durable.
func (w *Writer) Rotate(gen uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.flushLocked(); err != nil {
		return err
	}
	if w.f != nil {
		w.f.Close()
	}
	w.gen = gen
	return w.openFile()
}

// Close flushes and closes the log.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.flushLocked()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	return err
}

// Set is the collection of per-worker log writers of one store.
type Set struct {
	mu      sync.Mutex
	dir     string
	writers []*Writer
	gen     uint64
}

// OpenSet creates (or reopens) n per-worker logs in dir at the given
// starting generation.
func OpenSet(dir string, n int, gen uint64, syncWrites bool, flushEvery time.Duration) (*Set, error) {
	if flushEvery <= 0 {
		flushEvery = DefaultFlushInterval
	}
	s := &Set{dir: dir, gen: gen}
	for i := 0; i < n; i++ {
		w, err := newWriter(dir, i, gen, syncWrites, flushEvery)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.writers = append(s.writers, w)
	}
	return s, nil
}

// Writer returns worker i's log.
func (s *Set) Writer(i int) *Writer { return s.writers[i%len(s.writers)] }

// Workers returns the number of per-worker logs.
func (s *Set) Workers() int { return len(s.writers) }

// Rotate flushes all logs and advances every writer to a new generation,
// returning the new generation number.
func (s *Set) Rotate() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	for _, w := range s.writers {
		if err := w.Rotate(s.gen); err != nil {
			return 0, err
		}
	}
	return s.gen, nil
}

// DropBefore removes all log files with generation < gen. Called after a
// checkpoint that began at generation gen becomes durable.
func (s *Set) DropBefore(gen uint64) error {
	files, err := ListLogFiles(s.dir)
	if err != nil {
		return err
	}
	for _, f := range files {
		if f.Gen < gen {
			if err := os.Remove(f.Path); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush flushes every writer.
func (s *Set) Flush() error {
	for _, w := range s.writers {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every writer.
func (s *Set) Close() error {
	var first error
	for _, w := range s.writers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
