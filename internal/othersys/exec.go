package othersys

import "repro/internal/value"

// OpKind selects an operation in a batch.
type OpKind uint8

// Operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	OpScan
)

// Op is one operation of a client batch.
type Op struct {
	Kind OpKind
	Key  []byte
	Cols []int
	Puts []value.ColPut
	N    int // OpScan
}

// Result is one operation's outcome.
type Result struct {
	OK    bool
	Cols  [][]byte
	Pairs []Pair
}

// Batcher is the batch-oriented interface the Figure 13 harness drives: a
// batch corresponds to one client message. Systems without batched puts pay
// an internal dispatch round trip per put; systems without range queries or
// column puts fail those ops.
type Batcher interface {
	Name() string
	Exec(worker int, ops []Op) []Result
	SupportsRange() bool
	SupportsColumnPut() bool
	Close()
}

// shard is a single-threaded executor: a goroutine applying closures in
// order, modeling one event-loop process of a partitioned store.
type shard struct {
	ch chan shardReq
}

type shardReq struct {
	fn   func()
	done chan struct{}
}

func newShard() *shard {
	s := &shard{ch: make(chan shardReq, 64)}
	go func() {
		for r := range s.ch {
			r.fn()
			close(r.done)
		}
	}()
	return s
}

// do runs fn on the shard's executor and waits — one dispatch round trip.
func (s *shard) do(fn func()) {
	r := shardReq{fn: fn, done: make(chan struct{})}
	s.ch <- r
	<-r.done
}

func (s *shard) close() { close(s.ch) }
