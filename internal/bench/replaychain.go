package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/kvstore"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Replaychain measures what the version-chained log format costs and what it
// buys. Cost side: bytes per logged put (the v2 prev link is 8 bytes the v1
// layout did not carry) and put throughput on the two write paths — the
// same-writer linked put (prev filled from the replaced value, one alloc)
// and the cross-writer handoff put (the record re-logs every column as a
// prev=0 anchor, two allocs). Benefit side: recovery over an intact
// directory replays with zero broken chains, and recovery after one
// worker's log vanishes wholesale — the partial-column replay hole — now
// rolls affected keys back to an anchored prefix and says so in
// broken_chains/missing_logs instead of silently merging columns from
// different versions.
func Replaychain(sc Scale) *Table {
	sc = sc.withDefaults()
	if sc.Workers < 2 {
		sc.Workers = 2 // handoffs need at least two logs
	}
	t := &Table{
		ID:      "replaychain",
		Title:   fmt.Sprintf("version-chained WAL: write cost and accounted recovery, %d keys", sc.Keys),
		Headers: []string{"metric", "value"},
	}
	dir, err := os.MkdirTemp("", "replaychain-bench-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	st, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: sc.Workers})
	if err != nil {
		panic(err)
	}
	keys := workload.UniqueKeys(workload.Decimal(77), sc.Keys)
	for i, k := range keys {
		st.PutSimple(i%sc.Workers, k, k)
	}
	if err := st.Flush(); err != nil {
		panic(err)
	}

	logBytes := func() int64 {
		files, err := wal.ListLogFiles(dir)
		if err != nil {
			panic(err)
		}
		var n int64
		for _, f := range files {
			fi, err := os.Stat(f.Path)
			if err != nil {
				panic(err)
			}
			n += fi.Size()
		}
		return n
	}

	// Same-writer linked puts: every record carries prev = the version it
	// replaces, drawn from its own log's history. Single-threaded so the
	// two paths are compared without scheduler noise.
	iters := sc.Ops / 2
	if iters == 0 {
		iters = 1
	}
	before := logBytes()
	start := time.Now()
	for i := 0; i < iters; i++ {
		st.PutSimple(0, keys[0], keys[0])
	}
	linkedRate := float64(iters) / time.Since(start).Seconds()
	if err := st.Flush(); err != nil {
		panic(err)
	}
	linkedBytes := float64(logBytes()-before) / float64(iters)

	// Cross-writer handoff puts: alternating workers on one key, so every
	// put replaces a value stamped through the other worker's log and must
	// log a column-complete prev=0 anchor.
	before = logBytes()
	start = time.Now()
	for i := 0; i < iters; i++ {
		st.PutSimple(i%2, keys[0], keys[0])
	}
	handoffRate := float64(iters) / time.Since(start).Seconds()
	if err := st.Flush(); err != nil {
		panic(err)
	}
	handoffBytes := float64(logBytes()-before) / float64(iters)
	if err := st.Close(); err != nil {
		panic(err)
	}

	// Recovery over the intact directory: chain validation on every linked
	// record, zero broken chains.
	start = time.Now()
	st2, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: sc.Workers})
	if err != nil {
		panic(err)
	}
	intactDur := time.Since(start)
	intactKeys := st2.Len()
	intactStats := st2.RecoveryStats()
	if err := st2.Close(); err != nil {
		panic(err)
	}

	// The replay hole: worker 0's log vanishes wholesale. Keys whose chains
	// dangle roll back and are counted; nothing mis-merges.
	files, err := wal.ListLogFiles(dir)
	if err != nil {
		panic(err)
	}
	for _, f := range files {
		if f.Worker == 0 {
			if err := os.Remove(f.Path); err != nil {
				panic(err)
			}
		}
	}
	start = time.Now()
	st3, err := kvstore.Open(kvstore.Config{Dir: dir, Workers: sc.Workers})
	if err != nil {
		panic(err)
	}
	vanishDur := time.Since(start)
	vanishKeys := st3.Len()
	vanishStats := st3.RecoveryStats()
	st3.Close()

	// Broken chains at scale: every key anchors in generation 1; in
	// generation 2 a tenth of the keys log a *linked* delta while the rest
	// re-anchor. Generation 1 then vanishes, so the linked tenth dangles —
	// each must roll back (to absence: its anchor is gone) and be counted —
	// while the re-anchored rest replay as replacements.
	dir2, err := os.MkdirTemp("", "replaychain-broken-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir2)
	put1 := []value.ColPut{{Col: 0, Data: []byte("anchored")}}
	set1, err := wal.OpenSet(dir2, 1, 1, true, time.Hour)
	if err != nil {
		panic(err)
	}
	for i, k := range keys {
		set1.Writer(0).AppendInsert(uint64(2*i+1), []byte(k), put1)
	}
	if err := set1.Close(); err != nil {
		panic(err)
	}
	set2, err := wal.OpenSet(dir2, 1, 2, true, time.Hour)
	if err != nil {
		panic(err)
	}
	for i, k := range keys {
		if i%10 == 0 {
			set2.Writer(0).AppendPut(uint64(2*i+2), uint64(2*i+1), []byte(k), put1)
		} else {
			set2.Writer(0).AppendPut(uint64(2*i+2), 0, []byte(k), put1)
		}
	}
	if err := set2.Close(); err != nil {
		panic(err)
	}
	if err := os.Remove(filepath.Join(dir2, wal.LogFileName(0, 1))); err != nil {
		panic(err)
	}
	start = time.Now()
	st4, err := kvstore.Open(kvstore.Config{Dir: dir2, Workers: 1})
	if err != nil {
		panic(err)
	}
	brokenDur := time.Since(start)
	brokenKeys := st4.Len()
	brokenStats := st4.RecoveryStats()
	st4.Close()

	t.Rows = append(t.Rows,
		[]string{"same-writer linked put Mreq/s", mops(linkedRate)},
		[]string{"cross-writer handoff put Mreq/s", mops(handoffRate)},
		[]string{"log bytes/put, linked", fmt.Sprintf("%.1f", linkedBytes)},
		[]string{"log bytes/put, handoff anchor", fmt.Sprintf("%.1f", handoffBytes)},
		[]string{"intact recovery time", intactDur.Round(time.Millisecond).String()},
		[]string{"intact keys recovered", fmt.Sprintf("%d", intactKeys)},
		[]string{"intact broken_chains", fmt.Sprintf("%d", intactStats.BrokenChains)},
		[]string{"vanished-log recovery time", vanishDur.Round(time.Millisecond).String()},
		[]string{"vanished-log keys recovered", fmt.Sprintf("%d", vanishKeys)},
		[]string{"vanished-log broken_chains", fmt.Sprintf("%d", vanishStats.BrokenChains)},
		[]string{"vanished-log missing_logs", fmt.Sprintf("%d", vanishStats.MissingLogs)},
		[]string{"10%-broken-chain recovery time", brokenDur.Round(time.Millisecond).String()},
		[]string{"10%-broken-chain keys recovered", fmt.Sprintf("%d", brokenKeys)},
		[]string{"10%-broken-chain broken_chains", fmt.Sprintf("%d", brokenStats.BrokenChains)},
	)
	t.Notes = append(t.Notes,
		"the prev link is the entire v2 format overhead: a linked put record is 8 bytes larger than the v1 layout",
		"handoff anchors re-log every column; on single-column values the anchor costs one extra alloc and no extra columns",
		"vanished-log recovery must report broken_chains+missing_logs > 0; pre-v2 recovery silently merged partial columns here",
	)
	return t
}
