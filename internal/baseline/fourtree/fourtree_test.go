package fourtree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/value"
)

func TestModel(t *testing.T) {
	tr := New()
	model := map[string]string{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8000; i++ {
		k := fmt.Sprintf("%d", rng.Intn(3000))
		switch rng.Intn(4) {
		case 0, 1:
			v := fmt.Sprintf("v%d", i)
			replaced := tr.Put([]byte(k), value.New([]byte(v)))
			if _, had := model[k]; had != replaced {
				t.Fatalf("put %q replaced=%v want %v", k, replaced, had)
			}
			model[k] = v
		case 2:
			v, ok := tr.Get([]byte(k))
			want, wantOK := model[k]
			if ok != wantOK || (ok && string(v.Bytes()) != want) {
				t.Fatalf("get %q mismatch", k)
			}
		case 3:
			ok := tr.Remove([]byte(k))
			if _, had := model[k]; had != ok {
				t.Fatalf("remove %q = %v want %v", k, ok, had)
			}
			delete(model, k)
		}
		if tr.Len() != len(model) {
			t.Fatalf("len %d vs model %d", tr.Len(), len(model))
		}
	}
}

func TestInternalNodesFull(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("%04d", i))
		tr.Put(k, value.New(k))
	}
	// Walk: every internal node must have exactly 3 keys and 4 children.
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if len(n.keys) > 3 {
				t.Fatalf("leaf with %d keys", len(n.keys))
			}
			return
		}
		if len(n.keys) != 3 {
			t.Fatalf("internal node with %d keys", len(n.keys))
		}
		for i := 0; i < fanout; i++ {
			c := n.kids[i].Load()
			if c == nil {
				t.Fatal("nil child in internal node")
			}
			walk(c)
		}
	}
	walk(tr.root.Load())
}

func TestConcurrentInserts(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	const workers, per = 4, 3000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("w%d-%05d", w, i))
				tr.Put(k, value.New(k))
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("len %d want %d", tr.Len(), workers*per)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			k := []byte(fmt.Sprintf("w%d-%05d", w, i))
			if v, ok := tr.Get(k); !ok || string(v.Bytes()) != string(k) {
				t.Fatalf("lost %q", k)
			}
		}
	}
}

func TestConcurrentMixed(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				k := []byte(fmt.Sprintf("hot%03d", rng.Intn(200)))
				switch rng.Intn(3) {
				case 0:
					tr.Put(k, value.New(k))
				case 1:
					if v, ok := tr.Get(k); ok && string(v.Bytes()) != string(k) {
						panic("wrong value")
					}
				case 2:
					tr.Remove(k)
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
