// Command masstree-client is a command-line client for masstree-server.
//
// Usage:
//
//	masstree-client -addr host:7500 get KEY [COL...]
//	masstree-client -addr host:7500 put KEY VALUE
//	masstree-client -addr host:7500 putcol KEY COL VALUE [COL VALUE...]
//	masstree-client -addr host:7500 cas KEY EXPECTVER VALUE
//	masstree-client -addr host:7500 putttl KEY VALUE TTL_SECONDS
//	masstree-client -addr host:7500 touch KEY TTL_SECONDS
//	masstree-client -addr host:7500 getorload KEY [COL...]
//	masstree-client -addr host:7500 del KEY
//	masstree-client -addr host:7500 scan START N
//
// get prints the value's version; cas writes column 0 only if the key's
// current version still equals EXPECTVER (0 = key must be absent), printing
// either the new version or the conflicting current version — the version a
// retry should expect after re-reading. putttl and touch are cache-mode
// (protocol v2) operations: putttl stores a value that expires TTL_SECONDS
// from now, touch resets an existing key's TTL without rewriting it, and
// getorload reads through to the server's -backend tier on a miss.
//
// Passing -addrs with a comma-separated node list switches the client into
// cluster mode: every keyed command routes to the key's consistent-hash
// owner (the same ring the cluster tests pin), stats sums numeric counters
// across all reachable nodes, and scan is refused because a range spans
// shards.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/wire"
)

func main() {
	var addr = flag.String("addr", "127.0.0.1:7500", "server address")
	var addrs = flag.String("addrs", "", "comma-separated server addresses; with more than one, keys route by consistent hash (cluster mode)")
	var jsonOut = flag.Bool("json", false, "stats: emit one JSON object (all keys, including raw histogram buckets) instead of grouped text")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	if *addrs != "" {
		runCluster(strings.Split(*addrs, ","), args, *jsonOut)
		return
	}
	c, err := client.Dial(*addr)
	if err != nil {
		log.Fatalf("masstree-client: %v", err)
	}
	defer c.Close()

	switch args[0] {
	case "get":
		if len(args) < 2 {
			usage()
		}
		var cols []int
		for _, a := range args[2:] {
			n, err := strconv.Atoi(a)
			if err != nil {
				log.Fatalf("masstree-client: bad column %q", a)
			}
			cols = append(cols, n)
		}
		vals, ver, ok, err := c.GetVer([]byte(args[1]), cols)
		check(err)
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Printf("version %d\n", ver)
		for i, v := range vals {
			fmt.Printf("col %d: %q\n", i, v)
		}
	case "put":
		if len(args) != 3 {
			usage()
		}
		ver, err := c.PutSimple([]byte(args[1]), []byte(args[2]))
		check(err)
		fmt.Printf("ok (version %d)\n", ver)
	case "putcol":
		if len(args) < 4 || len(args)%2 != 0 {
			usage()
		}
		var puts []wire.ColData
		for i := 2; i < len(args); i += 2 {
			col, err := strconv.Atoi(args[i])
			if err != nil {
				log.Fatalf("masstree-client: bad column %q", args[i])
			}
			puts = append(puts, wire.ColData{Col: col, Data: []byte(args[i+1])})
		}
		ver, err := c.Put([]byte(args[1]), puts)
		check(err)
		fmt.Printf("ok (version %d)\n", ver)
	case "cas":
		if len(args) != 4 {
			usage()
		}
		expect, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			log.Fatalf("masstree-client: bad expected version %q", args[2])
		}
		ver, ok, err := c.CasPut([]byte(args[1]), expect,
			[]wire.ColData{{Col: 0, Data: []byte(args[3])}})
		check(err)
		if !ok {
			fmt.Printf("conflict (current version %d)\n", ver)
			os.Exit(1)
		}
		fmt.Printf("ok (version %d)\n", ver)
	case "putttl":
		if len(args) != 4 {
			usage()
		}
		ttl := parseTTL(args[3])
		conn := dialV2(*addr)
		defer conn.Close()
		ver, err := conn.PutSimpleTTL([]byte(args[1]), []byte(args[2]), ttl)
		check(err)
		fmt.Printf("ok (version %d, ttl %ds)\n", ver, ttl)
	case "touch":
		if len(args) != 3 {
			usage()
		}
		ttl := parseTTL(args[2])
		conn := dialV2(*addr)
		defer conn.Close()
		ver, ok, err := conn.Touch([]byte(args[1]), ttl)
		check(err)
		if !ok {
			fmt.Println("(not found or expired)")
			os.Exit(1)
		}
		fmt.Printf("ok (version %d, ttl %ds)\n", ver, ttl)
	case "getorload":
		if len(args) < 2 {
			usage()
		}
		var cols []int
		for _, a := range args[2:] {
			n, err := strconv.Atoi(a)
			if err != nil {
				log.Fatalf("masstree-client: bad column %q", a)
			}
			cols = append(cols, n)
		}
		conn := dialV2(*addr)
		defer conn.Close()
		vals, ver, stale, ok, err := conn.GetOrLoad([]byte(args[1]), cols)
		check(err)
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		if stale {
			fmt.Printf("version %d (STALE: backend unreachable, value past its TTL)\n", ver)
		} else {
			fmt.Printf("version %d\n", ver)
		}
		for i, v := range vals {
			fmt.Printf("col %d: %q\n", i, v)
		}
	case "del":
		if len(args) != 2 {
			usage()
		}
		existed, err := c.Remove([]byte(args[1]))
		check(err)
		fmt.Println("removed:", existed)
	case "scan":
		if len(args) != 3 {
			usage()
		}
		n, err := strconv.Atoi(args[2])
		check(err)
		pairs, err := c.GetRange([]byte(args[1]), n, nil)
		check(err)
		for _, p := range pairs {
			fmt.Printf("%q: %q\n", p.Key, p.Cols)
		}
	case "stats":
		// Dial v2: flush_last_error (the one string-valued stat) is only
		// served on v2 connections, where clients are known to handle it.
		conn := dialV2(*addr)
		defer conn.Close()
		stats, err := conn.StatsRaw()
		check(err)
		printStats(stats, *jsonOut)
	default:
		usage()
	}
}

// runCluster serves the key-routed subset of commands over a cluster.Cluster:
// each key is served by its consistent-hash owner, and stats aggregates
// numeric counters across every reachable node. scan is refused — a range
// query spans shards and the cluster layer does not merge ranges.
func runCluster(addrs []string, args []string, jsonOut bool) {
	cl, err := cluster.New(cluster.Config{Addrs: addrs})
	if err != nil {
		log.Fatalf("masstree-client: %v", err)
	}
	defer cl.Close()

	parseCols := func(raw []string) []int {
		var cols []int
		for _, a := range raw {
			n, err := strconv.Atoi(a)
			if err != nil {
				log.Fatalf("masstree-client: bad column %q", a)
			}
			cols = append(cols, n)
		}
		return cols
	}

	switch args[0] {
	case "get":
		if len(args) < 2 {
			usage()
		}
		vals, ver, ok, err := cl.Get([]byte(args[1]), parseCols(args[2:]))
		check(err)
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Printf("version %d (node %d)\n", ver, cl.Owner([]byte(args[1])))
		for i, v := range vals {
			fmt.Printf("col %d: %q\n", i, v)
		}
	case "put":
		if len(args) != 3 {
			usage()
		}
		ver, err := cl.PutSimple([]byte(args[1]), []byte(args[2]))
		check(err)
		fmt.Printf("ok (version %d, node %d)\n", ver, cl.Owner([]byte(args[1])))
	case "putcol":
		if len(args) < 4 || len(args)%2 != 0 {
			usage()
		}
		var puts []wire.ColData
		for i := 2; i < len(args); i += 2 {
			col, err := strconv.Atoi(args[i])
			if err != nil {
				log.Fatalf("masstree-client: bad column %q", args[i])
			}
			puts = append(puts, wire.ColData{Col: col, Data: []byte(args[i+1])})
		}
		ver, err := cl.Put([]byte(args[1]), puts)
		check(err)
		fmt.Printf("ok (version %d, node %d)\n", ver, cl.Owner([]byte(args[1])))
	case "cas":
		if len(args) != 4 {
			usage()
		}
		expect, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			log.Fatalf("masstree-client: bad expected version %q", args[2])
		}
		ver, ok, err := cl.CasPut([]byte(args[1]), expect,
			[]wire.ColData{{Col: 0, Data: []byte(args[3])}})
		check(err)
		if !ok {
			fmt.Printf("conflict (current version %d)\n", ver)
			os.Exit(1)
		}
		fmt.Printf("ok (version %d)\n", ver)
	case "putttl":
		if len(args) != 4 {
			usage()
		}
		ttl := parseTTL(args[3])
		ver, err := cl.PutTTL([]byte(args[1]),
			[]wire.ColData{{Col: 0, Data: []byte(args[2])}}, ttl)
		check(err)
		fmt.Printf("ok (version %d, ttl %ds)\n", ver, ttl)
	case "touch":
		if len(args) != 3 {
			usage()
		}
		ttl := parseTTL(args[2])
		ver, ok, err := cl.Touch([]byte(args[1]), ttl)
		check(err)
		if !ok {
			fmt.Println("(not found or expired)")
			os.Exit(1)
		}
		fmt.Printf("ok (version %d, ttl %ds)\n", ver, ttl)
	case "getorload":
		if len(args) < 2 {
			usage()
		}
		vals, ver, stale, ok, err := cl.GetOrLoad([]byte(args[1]), parseCols(args[2:]))
		check(err)
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		if stale {
			fmt.Printf("version %d (STALE: backend unreachable, value past its TTL)\n", ver)
		} else {
			fmt.Printf("version %d\n", ver)
		}
		for i, v := range vals {
			fmt.Printf("col %d: %q\n", i, v)
		}
	case "del":
		if len(args) != 2 {
			usage()
		}
		existed, err := cl.Remove([]byte(args[1]))
		check(err)
		fmt.Println("removed:", existed)
	case "stats":
		agg, err := cl.StatsAggregate()
		check(err)
		stats := make(map[string]string, len(agg))
		for name, v := range agg {
			stats[name] = strconv.FormatInt(v, 10)
		}
		printStats(stats, jsonOut)
	case "scan":
		log.Fatalf("masstree-client: scan is not supported in cluster mode (a range spans shards); point -addr at one node")
	default:
		usage()
	}
}

// statsGroupOrder fixes the display order of subsystem groups: data-plane
// layers first (tree out through backend), observability-derived latency
// next, cluster health last.
var statsGroupOrder = []string{"tree", "server", "cache", "logging", "backend", "latency", "cluster", "other"}

// statsGroup maps a stat key to its subsystem group. Exact names are
// matched before prefixes: node_deletes is a tree counter even though the
// cluster's node<i>_* keys share its first four bytes.
func statsGroup(name string) string {
	switch name {
	case "keys", "splits", "layer_creations", "layer_collapses", "node_deletes",
		"root_retries", "local_retries", "slot_reuses":
		return "tree"
	case "batched_gets", "batched_puts", "errored_requests":
		return "server"
	case "bytes_live", "max_bytes", "evictions", "expirations", "ghost_hits", "admit_drops":
		return "cache"
	case "flush_errors", "flush_retries", "flush_last_error", "broken_chains", "missing_logs":
		return "logging"
	case "loads", "load_errors", "herd_coalesced", "stale_served", "negative_hits",
		"breaker_state", "breaker_opens", "writebehind_depth", "writebehind_drops":
		return "backend"
	case "nodes_up", "nodes_total", "stats_partial",
		"failovers", "hedges", "hedge_wins", "split_batches":
		return "cluster"
	}
	switch {
	case strings.HasPrefix(name, "lat_"):
		return "latency"
	case strings.HasPrefix(name, "node") && len(name) > 4 && name[4] >= '0' && name[4] <= '9':
		return "cluster" // node<i>_state, node<i>_rpc_*
	}
	return "other"
}

// printStats renders a stats map grouped by subsystem (each group sorted)
// or, with -json, as one JSON object carrying every key — including the
// raw lat_*_b<i> histogram buckets the grouped view elides in favor of the
// quantile summaries. Numeric values are emitted as JSON numbers so the
// output pipes straight into jq arithmetic.
func printStats(stats map[string]string, jsonOut bool) {
	if jsonOut {
		out := make(map[string]any, len(stats))
		for k, v := range stats {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				out[k] = n
			} else {
				out[k] = v
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(out))
		return
	}
	groups := map[string][]string{}
	for name := range stats {
		if obs.IsBucketKey(name) {
			continue // raw buckets: -json and /varz carry full histograms
		}
		g := statsGroup(name)
		groups[g] = append(groups[g], name)
	}
	first := true
	for _, g := range statsGroupOrder {
		names := groups[g]
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		if !first {
			fmt.Println()
		}
		first = false
		fmt.Printf("[%s]\n", g)
		for _, name := range names {
			fmt.Printf("  %-22s %s\n", name, stats[name])
		}
	}
}

func parseTTL(s string) uint32 {
	n, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		log.Fatalf("masstree-client: bad ttl %q", s)
	}
	return uint32(n)
}

func dialV2(addr string) *client.Conn {
	conn, err := client.DialConn(addr)
	if err != nil {
		log.Fatalf("masstree-client: %v", err)
	}
	return conn
}

func check(err error) {
	if err != nil {
		log.Fatalf("masstree-client: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: masstree-client [-addr host:port | -addrs a:7500,b:7500,...] [-json] COMMAND
  With -addrs, keys route to their consistent-hash owner across the listed
  nodes (cluster mode): get/put/putcol/cas/putttl/touch/getorload/del go to
  the key's owner, stats aggregates numeric counters across all reachable
  nodes, and scan is refused (ranges span shards).

  get KEY [COL...]             read a key (prints its version and columns)
  put KEY VALUE                write column 0
  putcol KEY COL VALUE [...]   write specific columns atomically
  cas KEY EXPECTVER VALUE      conditional write: applies only if the key's
                               version is still EXPECTVER (0 = absent)
  putttl KEY VALUE TTL         write column 0 expiring TTL seconds from now
  touch KEY TTL                reset a key's TTL without rewriting its value
  getorload KEY [COL...]       read a key, loading it from the server's
                               backend tier on a miss; a STALE answer means
                               the backend was unreachable and an expired
                               resident value was served instead
  del KEY                      remove a key
  scan START N                 range query: up to N pairs from START
  stats                        server statistics, grouped by subsystem and
                               sorted within each group; -json emits one
                               JSON object instead (every key, including
                               raw lat_*_b<i> histogram buckets).
                               Tree/batching counters, latency quantiles
                               (lat_<op>_p50/p90/p99/p999, nanoseconds),
                               cache mode (bytes_live, evictions, ...),
                               logging health (flush_errors, flush_retries,
                               flush_last_error), and the backend tier:
                                 loads             values loaded from the backend
                                 load_errors       backend loads that failed
                                 herd_coalesced    misses that joined a key's
                                                   in-flight load
                                 stale_served      stale-if-error responses
                                 negative_hits     misses answered by the
                                                   negative cache
                                 breaker_state     0 closed / 1 open / 2 half-open
                                 breaker_opens     times the breaker tripped
                                 writebehind_depth queued spilled values
                                 writebehind_drops spills dropped (queue full)`)
	os.Exit(2)
}
