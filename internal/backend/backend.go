// Package backend models the slow source of truth a cache fronts: a
// pluggable read-through/write-behind tier whose failure modes — latency,
// errors, hangs, total outage — are first-class inputs rather than
// afterthoughts. The kvstore loader (Session.GetOrLoad) consults a Backend
// on miss, installs what it loads, and spills evicted values back through
// Store; everything between the store and the backend's raw implementation
// is the Wrap decorator stack (timeouts, retries, a concurrency limiter,
// and a circuit breaker), so degradation policy lives in one place and is
// observable through Stats.
//
// Contract: Load returns (payload, ttl, ok, err). ok == false with a nil
// error is an authoritative miss — the key does not exist upstream — which
// callers may negative-cache; an error means the backend could not answer
// and says nothing about the key. A ttl of 0 means the loaded value does
// not expire. Store and Delete are best-effort spill operations: the cache
// remains correct if they fail (the value is simply lost to the backend),
// which is the write-behind ordering caveat documented in doc.go.
//
// Payloads are opaque bytes. Multi-column values round-trip through
// EncodeCols/DecodeCols, a dense length-prefixed packing, so a spilled
// value reloads with its column structure intact.
package backend

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Backend is the source-of-truth interface behind the cache. Implementations
// must be safe for concurrent use. Calls honor ctx cancellation and
// deadlines; the Wrap decorator arms per-call timeouts on top.
type Backend interface {
	// Load fetches key's payload. ok false with err nil is an authoritative
	// "key absent upstream"; err non-nil means the backend could not answer.
	Load(ctx context.Context, key []byte) (payload []byte, ttl time.Duration, ok bool, err error)
	// Store writes key's payload, replacing any previous one.
	Store(ctx context.Context, key, payload []byte) error
	// Delete removes key upstream. Deleting an absent key is not an error.
	Delete(ctx context.Context, key []byte) error
}

// ErrUnavailable is returned without touching the backend when the circuit
// breaker is open (or a half-open probe is already in flight): the backend
// is presumed down and callers should degrade — serve stale, fail fast —
// rather than queue behind a dead dependency.
var ErrUnavailable = errors.New("backend: unavailable (circuit open)")

// Stats is a point-in-time snapshot of a wrapped backend's health counters.
// The server exposes these through the stats op (loads, load_errors,
// breaker_state, breaker_opens, ...).
type Stats struct {
	Loads   uint64 // completed Load calls (success or authoritative miss)
	Stores  uint64 // completed Store calls
	Deletes uint64 // completed Delete calls
	Errors  uint64 // calls that failed after exhausting retries
	Retries uint64 // individual retry attempts across all calls

	Rejected     uint64 // calls refused outright while the breaker was open
	BreakerState int    // 0 closed, 1 open, 2 half-open
	BreakerOpens uint64 // closed/half-open -> open transitions
}

// EncodeCols packs a multi-column record into one payload: a uvarint column
// count followed by each column as uvarint length + bytes. A nil column and
// an empty column both decode as empty (matching value semantics, where the
// two are indistinguishable).
func EncodeCols(cols [][]byte) []byte {
	n := binary.MaxVarintLen64
	for _, c := range cols {
		n += binary.MaxVarintLen64 + len(c)
	}
	return AppendCols(make([]byte, 0, n), cols)
}

// AppendCols is EncodeCols appending to dst.
func AppendCols(dst []byte, cols [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cols)))
	for _, c := range cols {
		dst = binary.AppendUvarint(dst, uint64(len(c)))
		dst = append(dst, c...)
	}
	return dst
}

// maxPayloadCols bounds a decoded payload's column count, rejecting
// corrupt headers before they size an allocation.
const maxPayloadCols = 1 << 16

// DecodeCols unpacks an EncodeCols payload. The returned column slices
// alias payload; callers that retain them must not mutate the payload.
func DecodeCols(payload []byte) ([][]byte, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 || n > maxPayloadCols {
		return nil, fmt.Errorf("backend: corrupt payload header")
	}
	cols := make([][]byte, n)
	rest := payload[used:]
	for i := range cols {
		l, used := binary.Uvarint(rest)
		if used <= 0 || uint64(len(rest)-used) < l {
			return nil, fmt.Errorf("backend: corrupt payload column %d", i)
		}
		cols[i] = rest[used : used+int(l) : used+int(l)]
		rest = rest[used+int(l):]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("backend: %d trailing payload bytes", len(rest))
	}
	return cols, nil
}
