package kvstore

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/value"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// chainCfg opens a store over mem with logging armed and every background
// loop disabled, so tests control exactly what reaches the logs.
func chainCfg(mem vfs.FS) Config {
	return Config{Dir: "d", FS: mem, Workers: 2, SyncWrites: true,
		FlushInterval: time.Hour, MaintainEvery: -1}
}

// TestV1DirectoryRecovers is the end-to-end upgrade path: a directory whose
// only log predates the v2 format recovers exactly as it used to (unlinked
// records merge unvalidated), and the first cross-worker write over the
// recovered value anchors the chain in the new log.
func TestV1DirectoryRecovers(t *testing.T) {
	mem := vfs.NewMemFS()
	if err := mem.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	// A pre-v2 incarnation's log: worker 0 inserted col 0 then put col 1.
	v1 := []wal.Record{
		{TS: 5, Op: wal.OpInsert, Key: []byte("k"), Puts: []value.ColPut{{Col: 0, Data: []byte("a")}}},
		{TS: 7, Op: wal.OpPut, Key: []byte("k"), Puts: []value.ColPut{{Col: 1, Data: []byte("b")}}},
	}
	if err := wal.WriteLegacyLogFS(mem, filepath.Join("d", wal.LogFileName(0, 1)), v1); err != nil {
		t.Fatal(err)
	}
	s, err := Open(chainCfg(mem))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.RecoveryStats(); st.BrokenChains != 0 || st.MissingLogs != 0 {
		t.Fatalf("v1 recovery stats = %+v, want zero", st)
	}
	cols, ok := s.Get([]byte("k"), nil)
	if !ok || len(cols) != 2 || string(cols[0]) != "a" || string(cols[1]) != "b" {
		t.Fatalf("v1 records did not replay byte-identically: %q ok=%v", cols, ok)
	}
	// Worker 1 writes over the value worker 0's log produced: a cross-log
	// handoff, so the new record must anchor — after the old log vanishes,
	// recovery still rebuilds the whole value from worker 1's log.
	s.Put(1, []byte("k"), []value.ColPut{{Col: 1, Data: []byte("B")}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mem.Remove(filepath.Join("d", wal.LogFileName(0, 1))); err != nil {
		t.Fatal(err)
	}
	mem.SyncDir("d")
	r, err := Open(chainCfg(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cols, ok = r.Get([]byte("k"), nil)
	if !ok || len(cols) != 2 || string(cols[0]) != "a" || string(cols[1]) != "B" {
		t.Fatalf("handoff anchor did not carry the value: %q ok=%v (stats %+v)", cols, ok, r.RecoveryStats())
	}
	if st := r.RecoveryStats(); st.BrokenChains != 0 {
		t.Fatalf("BrokenChains = %d on an anchored rebuild, want 0", st.BrokenChains)
	}
}

// TestBrokenChainRollsBackToAnchoredPrefix hand-crafts logs whose chain is
// broken mid-key and checks replay refuses the dangling suffix: the key
// holds exactly its last anchored prefix, never a merge onto the wrong
// base, and the rollback is counted.
func TestBrokenChainRollsBackToAnchoredPrefix(t *testing.T) {
	mem := vfs.NewMemFS()
	if err := mem.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	set, err := wal.OpenSetFS(mem, "d", 1, 1, true, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	w := set.Writer(0)
	// Key "whole": its anchor will be in the vanished generation — every
	// surviving record dangles, so it must roll back to absence.
	w.AppendInsert(5, []byte("whole"), []value.ColPut{{Col: 0, Data: []byte("lost")}})
	if err := set.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	set2, err := wal.OpenSetFS(mem, "d", 1, 2, true, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	w = set2.Writer(0)
	w.AppendPut(9, 5, []byte("whole"), []value.ColPut{{Col: 1, Data: []byte("dangling")}})
	// Key "part": anchored in the surviving generation, then one good link
	// and one broken link (its prev names a version that never replays).
	w.AppendInsert(10, []byte("part"), []value.ColPut{{Col: 0, Data: []byte("x")}})
	w.AppendPut(12, 10, []byte("part"), []value.ColPut{{Col: 1, Data: []byte("y")}})
	w.AppendPut(14, 13, []byte("part"), []value.ColPut{{Col: 0, Data: []byte("BAD")}})
	if err := set2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := set2.Close(); err != nil {
		t.Fatal(err)
	}
	// The adversity: generation 1 vanishes wholesale.
	if err := mem.Remove(filepath.Join("d", wal.LogFileName(0, 1))); err != nil {
		t.Fatal(err)
	}
	mem.SyncDir("d")

	s, err := Open(chainCfg(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.Get([]byte("whole"), nil); ok {
		t.Error("key with no surviving anchor recovered non-absent: dangling record was applied")
	}
	cols, ok := s.Get([]byte("part"), nil)
	if !ok || len(cols) != 2 || string(cols[0]) != "x" || string(cols[1]) != "y" {
		t.Errorf("partially-anchored key = %q ok=%v, want exactly the anchored prefix {x, y}", cols, ok)
	}
	if v, ok := s.GetValue([]byte("part")); ok && v.Version() != 12 {
		t.Errorf("anchored prefix version = %d, want 12", v.Version())
	}
	if st := s.RecoveryStats(); st.BrokenChains != 2 {
		t.Errorf("BrokenChains = %d, want 2 (both keys had a broken link)", st.BrokenChains)
	}
}

// TestHandoffAnchorAllocs pins the cross-log handoff write path at two
// allocations per put: the packed value plus the column-complete anchor's
// ColPut slice. The plain logged path stays at one (TestPutSimpleLoggedAllocs).
func TestHandoffAnchorAllocs(t *testing.T) {
	mem := vfs.NewMemFS()
	if err := mem.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	s, err := Open(chainCfg(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := []byte("pingpong")
	data := []byte("some-column-data")
	puts := []value.ColPut{{Col: 0, Data: data}}
	// Warm the log buffers and the tree path so steady state is measured.
	for i := 0; i < 300; i++ {
		s.Put(i%2, key, puts)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Each iteration alternates workers, so every put replaces a value
	// stamped through the other worker's log: two handoff-anchor puts.
	allocs := testing.AllocsPerRun(200, func() {
		s.Put(0, key, puts)
		s.Put(1, key, puts)
	})
	if allocs > 4 {
		t.Fatalf("handoff-anchor Put allocates %.1f per pair (%.1f per put), want <= 2 per put", allocs, allocs/2)
	}
}
